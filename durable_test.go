package totoro

import (
	"sort"
	"testing"
	"time"

	"totoro/internal/ids"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/workload"
)

// durableCluster is a deployment where crash-restart recovery is the ONLY
// resilience path: every node journals to a durable store, but Replicas is
// zero, so a dead master has no successor to fail over to — training can
// resume only if the restarted node reconstructs its state from the WAL.
// ExactSizes routes all traffic accounting through the v2 codec at the
// same time, so these runs also exercise the byte-parity path end to end.
func durableCluster(seed int64, snapshotEvery int) *Cluster {
	return NewCluster(ClusterConfig{
		N:    60,
		Seed: seed,
		Ring: ring.Config{B: 4, ReliableHops: true, HopAckTimeout: 150 * time.Millisecond},
		PubSub: pubsub.Config{
			KeepAliveInterval: 100 * time.Millisecond,
			KeepAliveTimeout:  300 * time.Millisecond,
			AggTimeout:        2 * time.Second,
		},
		Bandwidth:     2 << 20,
		FailoverGrace: 500 * time.Millisecond,
		Durable:       true,
		SnapshotEvery: snapshotEvery,
		ExactSizes:    true,
	})
}

// durableResult captures one run of the crash-restart scenario.
type durableResult struct {
	prog       *workload.Progress
	recoveries int
	downFor    time.Duration
}

// runDurableRestart trains one app to 8 rounds. With kill set, the app's
// master is crashed as soon as two rounds have completed, left dead for a
// second of virtual time, and then restarted — rebooting with amnesia
// except for its durable store. killWorker crashes a worker instead.
func runDurableRestart(t *testing.T, seed int64, kill, killWorker bool, snapshotEvery int) durableResult {
	t.Helper()
	c := durableCluster(seed, snapshotEvery)
	app := testApps(1, seed)[0]
	app.MaxRounds = 8
	app.TargetAccuracy = 0.999 // unreachable: every run does all 8 rounds

	id := NewAppID(app.Name, "cluster")
	// Rank engines by closeness to the app key so the rendezvous master is
	// known up front; workers are placed off it (we crash the master by
	// hand, and the driver must be able to hand shards back on restart).
	order := make([]int, len(c.Engines))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return ids.Closer(id, c.Engines[order[a]].Self().ID, c.Engines[order[b]].Self().ID)
	})
	masterIdx := order[0]
	var workers []int
	for i := 0; i < len(c.Engines) && len(workers) < len(app.Shards); i++ {
		if i != masterIdx {
			workers = append(workers, i)
		}
	}
	if got := c.Deploy(app, workers[0], workers); got != id {
		t.Fatalf("deployed id %s != precomputed %s", got, id)
	}
	c.StartMaintenance(500 * time.Millisecond)
	c.Engines[workers[0]].StartTraining(id)

	victimIdx := masterIdx
	if killWorker {
		victimIdx = workers[0]
	}
	victim := c.Engines[victimIdx]
	preCrashID := victim.Self().ID
	victimAddr := victim.Self().Addr

	deadline := c.Net.Now() + 10*time.Minute
	var killedAt, restartedAt time.Duration
	killed, restarted := false, false
	for c.Net.Now() < deadline {
		c.Net.Run(c.Net.Now() + 100*time.Millisecond)
		if (kill || killWorker) && !killed {
			if m := c.Master(id); m != nil {
				if p, ok := m.Progress(id); ok && len(p.Points) >= 2 {
					c.Net.Fail(victimAddr)
					killed, killedAt = true, c.Net.Now()
				}
			}
		}
		if killed && !restarted && c.Net.Now() >= killedAt+time.Second {
			c.Restart(victimIdx)
			restarted, restartedAt = true, c.Net.Now()
		}
		if c.allDone([]AppID{id}) {
			break
		}
	}
	if kill || killWorker {
		if !killed {
			t.Fatal("victim never reached two completed rounds")
		}
		if !restarted {
			t.Fatal("victim was never restarted")
		}
		// The restart rebuilt the stack; the recovered engine must have
		// reclaimed its pre-crash ring identity from the WAL, not rolled a
		// fresh random one (a new ID would strand the app key's ownership).
		reborn := c.Engines[victimIdx]
		if reborn == victim {
			t.Fatal("restart did not rebuild the engine")
		}
		if reborn.Self().ID != preCrashID {
			t.Fatalf("recovered identity %s != pre-crash %s", reborn.Self().ID.Short(), preCrashID.Short())
		}
		if !reborn.Recovered() {
			t.Fatal("restarted engine does not report recovery from its store")
		}
	}
	prog := c.Progress(id)
	if prog == nil {
		t.Fatal("no progress recorded")
	}
	recoveries := 0
	for _, e := range c.Engines {
		recoveries += int(e.Metrics().Counter("engine.recoveries").Value())
	}
	return durableResult{prog: prog, recoveries: recoveries, downFor: restartedAt - killedAt}
}

// TestCrashRestartResumesTraining is the acceptance test for the
// durability tentpole: with no replicas configured, the master of a live
// app is crashed mid-round and restarted from its write-ahead log; the
// recovered master must resume training from the last committed round,
// finish all rounds gaplessly, and land within two accuracy points of an
// uninterrupted run.
func TestCrashRestartResumesTraining(t *testing.T) {
	const seed = 171
	base := runDurableRestart(t, seed, false, false, 64)
	killRun := runDurableRestart(t, seed, true, false, 64)

	if base.recoveries != 0 {
		t.Fatalf("baseline run recovered %d engines with nobody crashed", base.recoveries)
	}
	if killRun.recoveries < 1 {
		t.Fatalf("recoveries = %d, want >= 1", killRun.recoveries)
	}

	// Training resumed from the journaled round: one strictly increasing
	// sequence, no gap and no repeat across the crash, ending at MaxRounds.
	points := killRun.prog.Points
	if len(points) == 0 {
		t.Fatal("kill run recorded no rounds")
	}
	for i, pt := range points {
		if pt.Round != i+1 {
			t.Fatalf("round sequence broken at %d: %+v", i, pt)
		}
	}
	if last := points[len(points)-1].Round; last != 8 {
		t.Fatalf("kill run ended at round %d, want 8", last)
	}

	baseAcc := base.prog.Points[len(base.prog.Points)-1].Accuracy
	killAcc := points[len(points)-1].Accuracy
	diff := baseAcc - killAcc
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.02 {
		t.Fatalf("final accuracy diverged: baseline %.4f vs crash-restart %.4f (|diff| %.4f > 0.02)",
			baseAcc, killAcc, diff)
	}
}

// TestCrashRestartIsDeterministic replays the crash-restart scenario twice
// with the same seed: the recovered trajectories must be bit-identical.
func TestCrashRestartIsDeterministic(t *testing.T) {
	const seed = 173
	a := runDurableRestart(t, seed, true, false, 64)
	b := runDurableRestart(t, seed, true, false, 64)
	if a.recoveries != b.recoveries {
		t.Fatalf("recoveries differ: %d vs %d", a.recoveries, b.recoveries)
	}
	if len(a.prog.Points) != len(b.prog.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.prog.Points), len(b.prog.Points))
	}
	for i := range a.prog.Points {
		if a.prog.Points[i] != b.prog.Points[i] {
			t.Fatalf("round %d diverged: %+v vs %+v", i+1, a.prog.Points[i], b.prog.Points[i])
		}
	}
}

// TestSnapshotCadenceInvariant pins that the snapshot schedule is purely a
// space/recovery-time trade: recovering from (snapshot + WAL tail) at
// cadence 1 must reconstruct exactly the state that cadence 64 — which
// replays nearly the whole log — reconstructs. Any divergence means the
// snapshot fold and the record replay disagree about engine state.
func TestSnapshotCadenceInvariant(t *testing.T) {
	const seed = 177
	everyRecord := runDurableRestart(t, seed, true, false, 1)
	rarely := runDurableRestart(t, seed, true, false, 64)
	if len(everyRecord.prog.Points) != len(rarely.prog.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(everyRecord.prog.Points), len(rarely.prog.Points))
	}
	for i := range everyRecord.prog.Points {
		if everyRecord.prog.Points[i] != rarely.prog.Points[i] {
			t.Fatalf("round %d diverged across snapshot cadences: %+v vs %+v",
				i+1, everyRecord.prog.Points[i], rarely.prog.Points[i])
		}
	}
}

// TestWorkerCrashRestartRejoins crashes a data-holding worker instead of
// the master: the restarted worker must recover its subscription from the
// WAL, be handed its shard back by the driver, and rejoin the tree — and
// the app (whose master kept running on partial aggregates in the
// meantime) must still complete every round.
func TestWorkerCrashRestartRejoins(t *testing.T) {
	const seed = 179
	res := runDurableRestart(t, seed, false, true, 64)
	if res.recoveries < 1 {
		t.Fatalf("recoveries = %d, want >= 1", res.recoveries)
	}
	points := res.prog.Points
	if len(points) == 0 {
		t.Fatal("run recorded no rounds")
	}
	for i, pt := range points {
		if pt.Round != i+1 {
			t.Fatalf("round sequence broken at %d: %+v", i, pt)
		}
	}
	if last := points[len(points)-1].Round; last != 8 {
		t.Fatalf("run ended at round %d, want 8", last)
	}
}

// TestRecoveredStateMatchesLive kills and restarts the master, then
// compares the recovered master's durable image against what an engine
// that never crashed would journal: the WAL's fold of the mutation stream
// must equal the live engine's in-memory state at every commit point. The
// telemetry counters make the journaling itself observable — every run
// with a store must append, and a cadence-1 run must snapshot.
func TestRecoveredStateMatchesLive(t *testing.T) {
	const seed = 181
	c := durableCluster(seed, 1)
	app := testApps(1, seed)[0]
	app.MaxRounds = 4
	app.TargetAccuracy = 0.999
	id := c.DeployOnRandomNodes(app)
	c.StartMaintenance(500 * time.Millisecond)
	c.TrainUntil(c.Net.Now()+4*time.Hour, id)

	appends, snapshots := 0, 0
	for _, e := range c.Engines {
		appends += int(e.Metrics().Counter("store.appends").Value())
		snapshots += int(e.Metrics().Counter("store.snapshots").Value())
	}
	if appends == 0 {
		t.Fatal("durable cluster trained without a single WAL append")
	}
	if snapshots == 0 {
		t.Fatal("snapshot cadence 1 trained without a single snapshot")
	}
	errs := 0
	for _, e := range c.Engines {
		errs += int(e.Metrics().Counter("store.errors").Value())
	}
	if errs != 0 {
		t.Fatalf("store.errors = %d, want 0", errs)
	}

	// Crash-restart the master and verify the reconstructed image: same
	// committed round, same epoch lineage, same recorded trajectory.
	m := c.Master(id)
	if m == nil {
		t.Fatal("no master after training")
	}
	var masterIdx int
	for i, e := range c.Engines {
		if e == m {
			masterIdx = i
		}
	}
	before, ok := m.Progress(id)
	if !ok {
		t.Fatal("master has no progress")
	}
	c.Net.Fail(m.Self().Addr)
	c.Net.Run(c.Net.Now() + time.Second)
	c.Restart(masterIdx)
	c.Net.Run(c.Net.Now() + 5*time.Second)

	reborn := c.Engines[masterIdx]
	if !reborn.Recovered() || !reborn.IsMaster(id) {
		t.Fatal("restarted master did not recover its mastership")
	}
	after, ok := reborn.Progress(id)
	if !ok {
		t.Fatal("recovered master has no progress")
	}
	if len(after.Points) != len(before.Points) {
		t.Fatalf("recovered %d trajectory points, live master had %d", len(after.Points), len(before.Points))
	}
	for i := range after.Points {
		if after.Points[i] != before.Points[i] {
			t.Fatalf("recovered point %d = %+v, live %+v", i, after.Points[i], before.Points[i])
		}
	}
	if after.Reached != before.Reached || after.Done != before.Done {
		t.Fatalf("recovered completion (%v,%v) != live (%v,%v)",
			after.Reached, after.Done, before.Reached, before.Done)
	}
}
