package totoro

import (
	"time"

	"totoro/internal/ids"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

// replicaMsg is the master's replicated round state: everything a leaf-set
// successor needs to take over an application if the master dies. It is
// sent directly (not routed) to the k leaf-set contacts closest to the app
// key — exactly the nodes the ring would promote to owner of the key after
// the master's failure, so whoever inherits the key also holds the state.
//
// Epoch orders successive masterships: each promotion increments it, so a
// revived old master can tell that it was superseded (a replica with a
// higher epoch than its own demotes it back to replica holder).
type replicaMsg struct {
	Spec   AppSpec
	Master ring.Contact // sender, for same-epoch tie-breaks
	Epoch  int
	Round  int // last completed round
	Global []float64
	Points []workload.AccuracyPoint

	Started bool
	Done    bool
	Reached bool
	DoneAt  time.Duration
}

func (r replicaMsg) WireSize() int {
	return 64 + r.Spec.WireSize() + 8*len(r.Global) + 32*len(r.Points)
}

// newerReplica reports whether a supersedes b.
func newerReplica(a, b replicaMsg) bool {
	if a.Epoch != b.Epoch {
		return a.Epoch > b.Epoch
	}
	if a.Round != b.Round {
		return a.Round > b.Round
	}
	if a.Done != b.Done {
		return a.Done
	}
	if a.Started != b.Started {
		return a.Started
	}
	return true // same version: accept the fresher copy
}

// masterImage captures a mastership as a replicaMsg: the unit of both
// network replication (replicateRound) and durable journaling
// (walMaster/walSnapshot in durable.go).
func (e *Engine) masterImage(m *masterState) replicaMsg {
	return replicaMsg{
		Spec:    m.spec,
		Master:  e.Self(),
		Epoch:   m.epoch,
		Round:   m.round,
		Global:  append([]float64(nil), m.global...),
		Points:  append([]workload.AccuracyPoint(nil), m.progress.Points...),
		Started: m.started,
		Done:    m.done,
		Reached: m.progress.Reached,
		DoneAt:  m.progress.Done,
	}
}

// replicateRound ships the master's current round state to its leaf-set
// successors. Called after becoming master, on training start, and after
// every completed round — so a replica is never more than one round stale.
func (e *Engine) replicateRound(m *masterState) {
	if e.AckHook != nil {
		e.AckHook(m.spec.ID, m.epoch, m.round, 0, false)
	}
	k := e.opts.Replicas
	if k <= 0 {
		return // replication disabled (the default)
	}
	rep := e.masterImage(m)
	for _, c := range e.ring.ClosestLeaves(m.spec.ID, k) {
		e.env.Send(c.Addr, rep)
	}
}

// handleReplica stores (or refreshes) a replica, demoting this node first
// if the replica proves a higher-epoch master exists elsewhere.
func (e *Engine) handleReplica(rep replicaMsg) {
	app := rep.Spec.ID
	// Journal before applying: replay folds the record through the same
	// guards below (durableState.apply), reaching the same masters/replicas
	// split a live engine holds.
	e.journal(walReplica{Rep: rep})
	if m, ok := e.masters[app]; ok {
		switch {
		case rep.Epoch < m.epoch:
			// A stale master is still replicating: a partition healed and the
			// loser of an epoch race doesn't know it lost. Beat it back with
			// our newer image — handleReplica on its side demotes it, which
			// discards (not merges) its divergent in-flight round. Without
			// this reply the loser only reconciles if it happens to sit in
			// our leaf set; with it, heal resolves within one of the loser's
			// replication attempts.
			e.nackStaleMaster(m, rep)
			return
		case rep.Epoch == m.epoch:
			if rep.Master.Addr == e.Self().Addr {
				return // echo of our own replication
			}
			// Two masters promoted from the same replica (inconsistent ring
			// views). Deterministic tie-break: the one closer to the app key
			// is the rightful rendezvous node; the other steps down.
			if ids.Closer(app, e.Self().ID, rep.Master.ID) {
				e.nackStaleMaster(m, rep) // same-epoch tie-break: tell the loser
				return
			}
			delete(e.masters, app)
			e.ps.Disown(app)
		default:
			// A higher-epoch master exists (we are a revived old master or
			// lost an epoch race): step down, keep the state as a replica.
			delete(e.masters, app)
			e.ps.Disown(app)
		}
	}
	if cur, ok := e.replicas[app]; ok && !newerReplica(rep, *cur) {
		return
	}
	delete(e.suspect, app) // a fresh image is proof of a live master
	e.replicas[app] = &rep
	if rep.Started && !rep.Done {
		e.ensureReplicaCheck(app)
	}
}

// masterPing asks an application's last-known master to prove it is still
// alive and in charge. A replica holder sends it before promoting itself:
// overlay routing state can scrub a live master on a single dropped
// hop-ack, and promoting on ring evidence alone forks the app into a
// spurious higher-epoch lineage that — by the epoch rule — later *wins*
// reconciliation with nearly untrained state. The master answers with its
// current image (a replicaMsg), which both refreshes the replica and
// resets the holder's suspicion; silence across masterProbeTries
// consecutive checks clears the node to promote.
type masterPing struct {
	App  AppID
	From transport.Addr
}

func (masterPing) WireSize() int { return 24 }

// masterProbeTries is how many consecutive unanswered masterPings a
// replica holder needs before concluding the master is gone. Two checks
// tolerate one dropped ping or reply without delaying real failover by
// more than one ReplicaCheckInterval.
const masterProbeTries = 2

// handleMasterPing answers a replica holder's liveness probe: if this node
// masters the app, reply with the current image (proof plus refresh).
// Anything else stays silent — the prober's timeout is the signal.
func (e *Engine) handleMasterPing(p masterPing) {
	m, ok := e.masters[p.App]
	if !ok || p.From == e.Self().Addr || p.From == "" {
		return
	}
	img := e.masterImage(m)
	if m.inFlight {
		// Unlike replicateRound (which only runs right after a commit),
		// a ping can catch the master mid-round. Report the last
		// *committed* round: an image claiming an unacked round would put
		// the replica ahead of the master's acks.
		img.Round = m.round - 1
	}
	e.env.Send(p.From, img)
}

// nackStaleMaster answers a losing master's replication with this
// master's own winning image, sent straight back to the sender. The
// loser's handleReplica demotes it by the normal epoch/tie-break rules;
// its in-flight round dies with the demotion (the replica it keeps is
// OUR image, so nothing of its divergent state merges into the app).
func (e *Engine) nackStaleMaster(m *masterState, stale replicaMsg) {
	if stale.Master.Addr == e.Self().Addr || stale.Master.Addr == "" {
		return
	}
	e.env.Send(stale.Master.Addr, e.masterImage(m))
}

// ensureReplicaCheck runs a periodic ownership probe while this node holds
// a replica of a live (started, unfinished) application: if the ring now
// routes the app key to us — the master died and was scrubbed from our
// routing state — we promote. The loop stops as soon as the replica is
// gone, finished, or we became master, so it never keeps the event queue
// busy after training ends (replicas of finished apps carry Done).
func (e *Engine) ensureReplicaCheck(app AppID) {
	if e.checking[app] {
		return
	}
	interval := e.opts.ReplicaCheckInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	e.checking[app] = true
	var tick func()
	tick = func() {
		rep, ok := e.replicas[app]
		if !ok || rep.Done || e.IsMaster(app) {
			delete(e.checking, app)
			return
		}
		if e.maybePromote(app) {
			delete(e.checking, app)
			return
		}
		e.env.After(interval, tick)
	}
	e.env.After(interval, tick)
}

// maybePromote makes this node the application's master from its stored
// replica — but only if the ring says this node now owns the app key
// (NextHop returns no hop). It reclaims the tree root, resets any stale
// aggregation state left from this node's life as an interior aggregator,
// re-replicates at a higher epoch (demoting a revived predecessor), and
// resumes rounds after a grace period that lets orphaned workers re-attach.
func (e *Engine) maybePromote(app AppID) bool {
	rep, ok := e.replicas[app]
	if !ok {
		return false
	}
	if _, already := e.masters[app]; already {
		return false
	}
	if !e.ring.NextHop(app).IsZero() {
		delete(e.suspect, app) // the key routes elsewhere: not our call
		return false
	}
	// The ring routes the key to us — but that alone is weak evidence of
	// the master's death (see masterPing). Probe it directly and only
	// promote after masterProbeTries consecutive silent checks; any image
	// it sends back lands in handleReplica, which clears the suspicion.
	if rep.Master.Addr != "" && rep.Master.Addr != e.Self().Addr {
		if tries := e.suspect[app]; tries < masterProbeTries {
			e.suspect[app] = tries + 1
			e.env.Send(rep.Master.Addr, masterPing{App: app, From: e.Self().Addr})
			return false
		}
	}
	delete(e.suspect, app)
	delete(e.replicas, app)
	m := &masterState{
		spec:    rep.Spec,
		global:  append([]float64(nil), rep.Global...),
		round:   rep.Round,
		epoch:   rep.Epoch + 1,
		started: rep.Started,
		done:    rep.Done,
		progress: &workload.Progress{
			App:     rep.Spec.Name,
			Points:  append([]workload.AccuracyPoint(nil), rep.Points...),
			Done:    rep.DoneAt,
			Reached: rep.Reached,
		},
	}
	e.masters[app] = m
	e.ctrPromotions.Inc()
	// Journal the promotion before any network action: a crash mid-takeover
	// recovers as the (bumped-epoch) master and re-runs the takeover.
	e.journal(walMaster{Rep: e.masterImage(m)})
	// The bumped epoch restarts the tree's multicast stream: members reset
	// their dedup state instead of swallowing the new root's sequence
	// numbers (which restart from 1) as replays of the dead master's.
	e.ps.CreateWithConfig(app, pubsub.TreeConfig{
		MaxFanout:  m.spec.TreeFanout,
		AggTimeout: m.spec.RoundDeadline,
		Epoch:      uint64(m.epoch),
	})
	// As an interior node this engine may hold aggRounds already marked
	// flushed; a re-announced round must aggregate fresh.
	e.ps.ResetRounds(app)
	e.replicateRound(m)
	if m.started && !m.done {
		grace := e.opts.FailoverGrace
		if grace <= 0 {
			grace = time.Second
		}
		round := m.round
		e.env.After(grace, func() {
			// Resume only if nothing else moved the app meanwhile (we could
			// have been demoted, or a round could already be in flight).
			if cur, ok := e.masters[app]; ok && cur == m && !m.done && m.round == round {
				e.beginRound(m)
			}
		})
	}
	return true
}
