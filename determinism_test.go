package totoro

import (
	"testing"

	"totoro/internal/baseline"
	"totoro/internal/workload"
)

// trainOnce runs one app to completion on a fresh cluster and returns the
// master's final global parameters.
func trainOnce(t *testing.T, seed int64) []float64 {
	t.Helper()
	c := testCluster(50, seed)
	app := testApps(1, seed)[0]
	app.MaxRounds = 3
	app.TargetAccuracy = 0.999
	id := c.DeployOnRandomNodes(app)
	c.Train(id)
	params, ok := c.Master(id).GlobalParams(id)
	if !ok || len(params) == 0 {
		t.Fatal("no global params after training")
	}
	return params
}

// TestEngineRunsAreBitIdentical proves the decentralized engine is
// deterministic even though client training runs on a real worker pool:
// two identical deployments produce bit-identical global models. Under
// -race this is also the engine-level exercise of the training pool.
func TestEngineRunsAreBitIdentical(t *testing.T) {
	a := trainOnce(t, 61)
	b := trainOnce(t, 61)
	if len(a) != len(b) {
		t.Fatalf("param count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("param %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestMetricsSnapshotsAreBitIdentical extends the determinism guarantee to
// the telemetry substrate: two same-seed runs must produce bit-identical
// merged metrics snapshots — every counter, gauge, histogram bucket, and
// their deterministic text rendering. This is what makes the registry
// usable as a regression oracle: a telemetry diff between two runs of the
// same seed is always a behavior change, never noise.
func TestMetricsSnapshotsAreBitIdentical(t *testing.T) {
	run := func() string {
		c := testCluster(50, 64)
		app := testApps(1, 64)[0]
		app.MaxRounds = 3
		app.TargetAccuracy = 0.999
		id := c.DeployOnRandomNodes(app)
		c.Train(id)
		return c.Net.MergedSnapshot().String()
	}
	a, b := run(), run()
	if a == "" {
		t.Fatal("empty metrics snapshot")
	}
	if a != b {
		t.Fatalf("same-seed metrics snapshots differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestBaselineRunsAreBitIdentical does the same for the centralized
// baseline engine, whose clients also train on the pool.
func TestBaselineRunsAreBitIdentical(t *testing.T) {
	run := func() []workload.AccuracyPoint {
		apps := testApps(1, 62)
		apps[0].MaxRounds = 3
		apps[0].TargetAccuracy = 0.999
		e := baseline.New(apps, baseline.Config{Profile: baseline.OpenFL(), ClientNodes: 20, Seed: 62})
		return e.Run()[0].Points
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("point counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d diverged: %+v vs %+v", i+1, a[i], b[i])
		}
	}
}
