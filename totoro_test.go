package totoro

import (
	"testing"
	"time"

	"totoro/internal/baseline"
	"totoro/internal/fl"
	"totoro/internal/ids"
	"totoro/internal/ring"
	"totoro/internal/workload"
)

func testApps(n int, seed int64) []*workload.App {
	apps := workload.MakeApps(workload.Params{
		Task:             workload.TaskSpeech,
		Apps:             n,
		ClientsPerApp:    10,
		SamplesPerClient: 40,
		Seed:             seed,
	})
	for _, a := range apps {
		a.MaxRounds = 10
		a.TargetAccuracy = 0.40
	}
	return apps
}

func testCluster(n int, seed int64) *Cluster {
	return NewCluster(ClusterConfig{
		N:         n,
		Seed:      seed,
		Ring:      ring.Config{B: 4},
		Bandwidth: 2 << 20,
	})
}

func TestSingleAppTrainsOnCluster(t *testing.T) {
	c := testCluster(60, 1)
	app := testApps(1, 1)[0]
	id := c.DeployOnRandomNodes(app)

	// Exactly one master, and it is the rendezvous node.
	master := c.Master(id)
	if master == nil {
		t.Fatal("no master after deploy")
	}
	best := c.Engines[0]
	for _, e := range c.Engines[1:] {
		if ids.Closer(id, e.Self().ID, best.Self().ID) {
			best = e
		}
	}
	if master != best {
		t.Fatalf("master %s is not the rendezvous node %s", master.Self().Addr, best.Self().Addr)
	}

	prog := c.Train(id)[0]
	if len(prog.Points) == 0 {
		t.Fatal("no rounds recorded")
	}
	last := prog.Points[len(prog.Points)-1]
	first := prog.Points[0]
	if last.Accuracy <= first.Accuracy {
		t.Fatalf("no learning: %.3f -> %.3f", first.Accuracy, last.Accuracy)
	}
	if !prog.Reached && last.Round != app.MaxRounds {
		t.Fatalf("stopped early: %+v", last)
	}
	if last.Participants != len(app.Shards) {
		t.Fatalf("participants=%d want %d (full participation)", last.Participants, len(app.Shards))
	}
	// Virtual time advanced: rounds cost compute + communication.
	if prog.Done <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestConcurrentAppsFinishInParallel(t *testing.T) {
	// The headline property: because each app has its own master and tree,
	// N concurrent apps take barely longer than one.
	finish := func(n int, seed int64) time.Duration {
		c := testCluster(80, seed)
		appList := testApps(n, seed)
		idsList := make([]AppID, n)
		for i, a := range appList {
			idsList[i] = c.DeployOnRandomNodes(a)
		}
		var worst time.Duration
		for _, p := range c.Train(idsList...) {
			if p.Done > worst {
				worst = p.Done
			}
		}
		return worst
	}
	t1 := finish(1, 7)
	t4 := finish(4, 7)
	if t4 > time.Duration(float64(t1)*1.6) {
		t.Fatalf("4 concurrent apps (%v) degraded far beyond 1 app (%v)", t4, t1)
	}
}

func TestMastersAreDistributed(t *testing.T) {
	c := testCluster(100, 3)
	apps := testApps(12, 3)
	counts := map[string]int{}
	for _, a := range apps {
		a.MaxRounds = 0 // never train; just build trees
		id := c.DeployOnRandomNodes(a)
		m := c.Master(id)
		if m == nil {
			t.Fatal("missing master")
		}
		counts[string(m.Self().Addr)]++
	}
	for addr, n := range counts {
		if n > 4 {
			t.Fatalf("node %s masters %d of 12 apps", addr, n)
		}
	}
}

func TestTable2CustomBroadcastAggregate(t *testing.T) {
	c := testCluster(50, 4)
	topic := NewAppID("custom-sensor-fusion", "tester")
	got := map[string]int{}
	var rootSum int
	var rootCount int
	for _, e := range c.Engines {
		e := e
		e.SetCallbacks(Callbacks{
			OnBroadcast: func(app AppID, obj any, depth int, subscriber bool) {
				if subscriber {
					got[string(e.Self().Addr)]++
				}
			},
			Combine: func(app AppID, a, b any) any { return a.(int) + b.(int) },
			OnAggregate: func(app AppID, round int, obj any, count int) {
				rootSum = obj.(int)
				rootCount = count
			},
		})
	}
	subs := []int{3, 7, 11, 19, 23, 29, 31, 37}
	for _, i := range subs {
		c.Engines[i].SubscribeTopic(topic)
	}
	c.Net.RunUntilIdle()
	c.Engines[subs[0]].Broadcast(topic, "hello-workers")
	c.Net.RunUntilIdle()
	if len(got) != len(subs) {
		t.Fatalf("broadcast reached %d subscribers want %d", len(got), len(subs))
	}
	// Everyone attached contributes 1; the root should see the total.
	members := 0
	for _, e := range c.Engines {
		if info, ok := e.PubSub().TreeInfo(topic); ok && info.Attached {
			members++
			e.Aggregate(topic, 1, 1)
		}
	}
	c.Net.RunUntilIdle()
	if rootSum != members || rootCount != members {
		t.Fatalf("aggregate sum=%d count=%d want %d", rootSum, rootCount, members)
	}
}

func TestPartialParticipation(t *testing.T) {
	c := testCluster(70, 5)
	app := testApps(1, 5)[0]
	app.Participation = 0.5
	app.MaxRounds = 6
	app.TargetAccuracy = 0.999 // force all rounds
	id := c.DeployOnRandomNodes(app)
	prog := c.Train(id)[0]
	total := 0
	for _, pt := range prog.Points {
		total += pt.Participants
	}
	mean := float64(total) / float64(len(prog.Points))
	n := float64(len(app.Shards))
	if mean < n*0.2 || mean > n*0.8 {
		t.Fatalf("mean participants %.1f of %v not near 50%%", mean, n)
	}
}

func TestCompressedAppLearns(t *testing.T) {
	c := testCluster(60, 6)
	app := testApps(1, 6)[0]
	app.Comp = fl.QuantizeInt8{}
	id := c.DeployOnRandomNodes(app)
	prog := c.Train(id)[0]
	last := prog.Points[len(prog.Points)-1]
	if last.Accuracy <= prog.Points[0].Accuracy {
		t.Fatal("int8-compressed app did not learn")
	}
}

func TestNoisyUpdatesStillAggregate(t *testing.T) {
	c := testCluster(60, 7)
	app := testApps(1, 7)[0]
	app.MaxRounds = 4
	app.TargetAccuracy = 0.999
	id := NewAppID(app.Name, "cluster")
	spec := SpecFromWorkload(id, app)
	spec.NoiseSigma = 0.001
	c.apps[id] = &clusterApp{app: app, eval: app.Proto.Clone(), spec: spec, master: -1}
	c.Engines[0].CreateTree(spec)
	c.Net.RunUntilIdle()
	perm := c.rng.Perm(60)
	for i := range app.Shards {
		if err := c.Engines[perm[i]].Subscribe(id, app.Shards[i], false); err != nil {
			t.Fatal(err)
		}
	}
	c.Net.RunUntilIdle()
	prog := c.Train(id)[0]
	if len(prog.Points) != 4 {
		t.Fatalf("rounds=%d want 4", len(prog.Points))
	}
	if prog.Points[3].Participants != len(app.Shards) {
		t.Fatalf("participants %d", prog.Points[3].Participants)
	}
}

func TestZoneRestrictedSubscription(t *testing.T) {
	zoneOf := func(i int) uint64 { return uint64(i % 4) }
	c := NewCluster(ClusterConfig{
		N:        40,
		Seed:     8,
		Ring:     ring.Config{B: 4},
		ZoneBits: 4,
		ZoneOf:   zoneOf,
	})
	app := testApps(1, 8)[0]
	id := NewZonalAppID(app.Name, "cluster", 2, 4)
	spec := SpecFromWorkload(id, app)
	spec.ZoneRestricted = true
	// In-zone node subscribes fine; out-of-zone refused.
	var inZone, outZone *Engine
	for _, e := range c.Engines {
		switch e.Self().ID.ZonePrefix(4) {
		case 2:
			if inZone == nil {
				inZone = e
			}
		default:
			if outZone == nil {
				outZone = e
			}
		}
	}
	if inZone == nil || outZone == nil {
		t.Skip("zone layout degenerate")
	}
	if err := inZone.Subscribe(id, app.Shards[0], true); err != nil {
		t.Fatalf("in-zone subscribe failed: %v", err)
	}
	if err := outZone.Subscribe(id, app.Shards[1], true); err == nil {
		t.Fatal("out-of-zone subscribe was not refused")
	}
}

func TestOnTimerReportsProgress(t *testing.T) {
	c := testCluster(50, 9)
	app := testApps(1, 9)[0]
	app.MaxRounds = 5
	app.TargetAccuracy = 0.999
	id := c.DeployOnRandomNodes(app)
	master := c.Master(id)
	var ticks []TimerInfo
	master.OnTimer(id, 200*time.Millisecond, func(info TimerInfo) {
		ticks = append(ticks, info)
	})
	c.Train(id)
	if len(ticks) == 0 {
		t.Fatal("timer never fired")
	}
	lastInfo := ticks[len(ticks)-1]
	if lastInfo.Round == 0 {
		t.Fatalf("timer saw no rounds: %+v", lastInfo)
	}
}

func TestHeterogeneousSpeedsSlowTail(t *testing.T) {
	mk := func(speed func(int) float64, seed int64) time.Duration {
		c := NewCluster(ClusterConfig{
			N: 50, Seed: seed, Ring: ring.Config{B: 4}, SpeedOf: speed,
		})
		app := testApps(1, seed)[0]
		app.MaxRounds = 3
		app.TargetAccuracy = 0.999
		id := c.DeployOnRandomNodes(app)
		return c.Train(id)[0].Done
	}
	fast := mk(nil, 10)
	slow := mk(func(i int) float64 { return 0.25 }, 10)
	if slow <= fast {
		t.Fatalf("slower nodes did not lengthen rounds: %v vs %v", slow, fast)
	}
}

func TestTotoroBeatsCentralizedUnderConcurrency(t *testing.T) {
	// Qualitative Table 3 check at unit-test scale: with several concurrent
	// apps, Totoro's total completion beats the centralized baseline's.
	apps := func(seed int64) []*workload.App {
		as := workload.MakeApps(workload.Params{
			Task: workload.TaskSpeech, Apps: 6, ClientsPerApp: 10,
			SamplesPerClient: 40, Seed: seed,
		})
		for _, a := range as {
			a.MaxRounds = 8
			a.TargetAccuracy = 0.999
		}
		return as
	}
	c := testCluster(80, 11)
	var idsList []AppID
	for _, a := range apps(11) {
		idsList = append(idsList, c.DeployOnRandomNodes(a))
	}
	var totoroDone time.Duration
	for _, p := range c.Train(idsList...) {
		if p.Done > totoroDone {
			totoroDone = p.Done
		}
	}
	be := baseline.New(apps(11), baseline.Config{Profile: baseline.OpenFL(), ClientNodes: 80, Seed: 11})
	var centralDone time.Duration
	for _, p := range be.Run() {
		if p.Done > centralDone {
			centralDone = p.Done
		}
	}
	if totoroDone >= centralDone {
		t.Fatalf("totoro %v not faster than centralized %v for 6 concurrent apps", totoroDone, centralDone)
	}
}
