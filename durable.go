package totoro

import (
	"sort"
	"time"

	"totoro/internal/ids"
	"totoro/internal/ml"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/store"
	"totoro/internal/wire/codec"
	"totoro/internal/workload"
)

// Durable engine state: the WAL record types journaled through
// Options.Store and the boot-time replay that folds them back into a
// live engine. The granularity is the engine's own mutation points —
// identity claimed, worker subscribed, mastership assumed (announce,
// promotion, or restart re-claim), round begun, round committed, replica
// accepted — journaled *before* the corresponding network action, so a
// node never acknowledges state it could forget.
//
// Master images reuse replicaMsg wholesale: the failover layer already
// defines "everything needed to reconstruct a mastership" (spec, model,
// progress, epoch), and durability is failover against one's own death.
// An image's Round is always the last *completed* round — an in-flight
// round dies with the process and is simply re-run after recovery, which
// is exactly how failover promotion resumes too.

// walIdentity claims this node's permanent overlay identity; it is the
// first record of every journal, so a restarted node rejoins the ring
// under the ID its peers and trees already know.
type walIdentity struct {
	Self ring.Contact
}

// walSub records a worker subscription (the shard itself lives with the
// driver that owns the data and is re-attached after recovery).
type walSub struct {
	App        AppID
	Restricted bool
}

// walUnsub records leaving an application.
type walUnsub struct {
	App AppID
}

// walRound marks a round begun (the paper's round start): informational
// on replay — the in-flight round is re-run from the last committed
// image — but it makes the journal a complete round-event history.
type walRound struct {
	App   AppID
	Round int
}

// walMaster is a full mastership image: journaled when a mastership is
// assumed and at every round commit (the model update is the commit).
type walMaster struct {
	Rep replicaMsg
}

// walReplica records a remote master's round state accepted by this node
// as a leaf-set replica holder — after a restart the node resumes its
// ownership probes and can still promote.
type walReplica struct {
	Rep replicaMsg
}

// walSnapshot is the periodic full-state image that lets the WAL be
// truncated: everything the records since boot fold to, in sorted order
// so identical states serialize to identical bytes.
type walSnapshot struct {
	Self     ring.Contact
	Masters  []replicaMsg
	Replicas []replicaMsg
	Subs     []walSub
}

// Codec tags for the durable records, continuing the engine's block in
// the application range. Tags are storage contract: never reuse or
// renumber — journals on disk outlive binaries.
const (
	tagWalIdentity = tagReplica + 1 + iota
	tagWalSub
	tagWalUnsub
	tagWalRound
	tagWalMaster
	tagWalSnapshot
	tagWalReplica
)

func registerWalCodecs() {
	codec.RegisterCodec(tagWalIdentity, walIdentity{},
		func(e *codec.Enc, v any) { e.Contact(v.(walIdentity).Self) },
		func(d *codec.Dec) any { return walIdentity{Self: d.Contact()} })
	codec.RegisterCodec(tagWalSub, walSub{},
		func(e *codec.Enc, v any) {
			r := v.(walSub)
			e.ID(r.App)
			e.Bool(r.Restricted)
		},
		func(d *codec.Dec) any { return walSub{App: d.ID(), Restricted: d.Bool()} })
	codec.RegisterCodec(tagWalUnsub, walUnsub{},
		func(e *codec.Enc, v any) { e.ID(v.(walUnsub).App) },
		func(d *codec.Dec) any { return walUnsub{App: d.ID()} })
	codec.RegisterCodec(tagWalRound, walRound{},
		func(e *codec.Enc, v any) {
			r := v.(walRound)
			e.ID(r.App)
			e.Int(r.Round)
		},
		func(d *codec.Dec) any { return walRound{App: d.ID(), Round: d.Int()} })
	codec.RegisterCodec(tagWalMaster, walMaster{},
		func(e *codec.Enc, v any) { encReplica(e, v.(walMaster).Rep) },
		func(d *codec.Dec) any { return walMaster{Rep: decReplica(d)} })
	codec.RegisterCodec(tagWalReplica, walReplica{},
		func(e *codec.Enc, v any) { encReplica(e, v.(walReplica).Rep) },
		func(d *codec.Dec) any { return walReplica{Rep: decReplica(d)} })
	codec.RegisterCodec(tagWalSnapshot, walSnapshot{},
		func(e *codec.Enc, v any) {
			s := v.(walSnapshot)
			e.Contact(s.Self)
			e.Uvarint(uint64(len(s.Masters)))
			for _, r := range s.Masters {
				encReplica(e, r)
			}
			e.Uvarint(uint64(len(s.Replicas)))
			for _, r := range s.Replicas {
				encReplica(e, r)
			}
			e.Uvarint(uint64(len(s.Subs)))
			for _, w := range s.Subs {
				e.ID(w.App)
				e.Bool(w.Restricted)
			}
		},
		func(d *codec.Dec) any {
			s := walSnapshot{Self: d.Contact()}
			if n := d.SliceLen(16); n > 0 {
				s.Masters = make([]replicaMsg, n)
				for i := range s.Masters {
					s.Masters[i] = decReplica(d)
				}
			}
			if n := d.SliceLen(16); n > 0 {
				s.Replicas = make([]replicaMsg, n)
				for i := range s.Replicas {
					s.Replicas[i] = decReplica(d)
				}
			}
			if n := d.SliceLen(17); n > 0 {
				s.Subs = make([]walSub, n)
				for i := range s.Subs {
					s.Subs[i] = walSub{App: d.ID(), Restricted: d.Bool()}
				}
			}
			return s
		})
	store.RegisterRecords(
		walIdentity{}, walSub{}, walUnsub{}, walRound{},
		walMaster{}, walReplica{}, walSnapshot{},
	)
}

// durableState is the fold of a journal: the recovered engine image.
type durableState struct {
	self     ring.Contact
	masters  map[AppID]replicaMsg
	replicas map[AppID]replicaMsg
	subs     map[AppID]bool
	loaded   bool
}

func newDurableState() *durableState {
	return &durableState{
		masters:  make(map[AppID]replicaMsg),
		replicas: make(map[AppID]replicaMsg),
		subs:     make(map[AppID]bool),
	}
}

// loadDurable replays a store into a recovered engine image. Store-level
// errors (corrupt snapshot, unreadable journal) degrade to whatever
// replayed cleanly — a partially recovered node re-earns the rest
// through the normal protocols, which beats refusing to boot.
func loadDurable(st store.Store) (*durableState, error) {
	state, recs, err := st.Load()
	ds := newDurableState()
	if snap, ok := state.(walSnapshot); ok {
		ds.applySnapshot(snap)
	}
	for _, rec := range recs {
		ds.apply(rec)
	}
	return ds, err
}

func (ds *durableState) applySnapshot(s walSnapshot) {
	ds.loaded = true
	ds.self = s.Self
	for _, r := range s.Masters {
		ds.masters[r.Spec.ID] = r
	}
	for _, r := range s.Replicas {
		ds.replicas[r.Spec.ID] = r
	}
	for _, w := range s.Subs {
		ds.subs[w.App] = w.Restricted
	}
}

// apply folds one record, mirroring the live mutation it journaled —
// including the demotion rules of handleReplica, so a replayed journal
// reaches the same masters/replicas split the live engine held.
func (ds *durableState) apply(rec any) {
	ds.loaded = true
	switch r := rec.(type) {
	case walIdentity:
		ds.self = r.Self
	case walSub:
		ds.subs[r.App] = r.Restricted
	case walUnsub:
		delete(ds.subs, r.App)
	case walRound:
		// The begun round is in flight; recovery re-runs it from the last
		// committed image, so only the started flag matters here.
		if m, ok := ds.masters[r.App]; ok && !m.Started {
			m.Started = true
			ds.masters[r.App] = m
		}
	case walMaster:
		ds.masters[r.Rep.Spec.ID] = r.Rep
		delete(ds.replicas, r.Rep.Spec.ID)
	case walReplica:
		app := r.Rep.Spec.ID
		if m, ok := ds.masters[app]; ok {
			switch {
			case r.Rep.Epoch < m.Epoch:
				return
			case r.Rep.Epoch == m.Epoch:
				if r.Rep.Master.Addr == ds.self.Addr {
					return
				}
				if ids.Closer(app, ds.self.ID, r.Rep.Master.ID) {
					return
				}
				delete(ds.masters, app)
			default:
				delete(ds.masters, app)
			}
		}
		if cur, ok := ds.replicas[app]; ok && !newerReplica(r.Rep, cur) {
			return
		}
		ds.replicas[app] = r.Rep
	case walSnapshot:
		ds.applySnapshot(r)
	}
}

// --- engine integration ---

// journal appends one record to the durable store, folding the WAL into
// a snapshot every SnapshotEvery appends.
//
// The first append failure permanently degrades the engine to
// non-durable: it keeps serving from memory (availability over
// durability) but never journals again, raising the store.degraded
// gauge and firing Options.OnStoreFailure. Degrading — rather than
// retrying once the disk looks healthy again — is a safety rule: records
// lost inside a fault window would leave a gap, and a journal that
// resumes past a gap replays as a clean prefix after the next crash,
// silently dropping everything after the gap. That is ack-then-lose,
// the one failure mode the journal-before-ack contract exists to
// prevent. A deployment that prefers crash-stop installs an
// OnStoreFailure hook that halts the node.
func (e *Engine) journal(rec any) {
	if e.store == nil || e.degraded {
		return
	}
	if err := e.store.Append(rec); err != nil {
		e.ctrStoreErrors.Inc()
		e.degrade(err)
		return
	}
	e.ctrStoreAppends.Inc()
	e.walAppends++
	every := e.opts.SnapshotEvery
	if every <= 0 {
		every = 64
	}
	// The boot-time identity record can trip the cadence before the ring
	// exists; the next journaled mutation folds it into a snapshot.
	if e.walAppends >= every && e.ring != nil {
		e.snapshotDurable()
	}
}

// degrade drops durability for the rest of this engine's life (see
// journal for why the drop is permanent).
func (e *Engine) degrade(err error) {
	e.degraded = true
	e.gaugeDegraded.Set(1)
	if e.opts.OnStoreFailure != nil {
		e.opts.OnStoreFailure(err)
	}
}

// Degraded reports whether this engine has dropped to non-durable after
// a journal failure.
func (e *Engine) Degraded() bool { return e.degraded }

func (e *Engine) snapshotDurable() {
	e.walAppends = 0
	if err := e.store.Snapshot(e.buildSnapshot()); err != nil {
		// A failed snapshot is tolerable without degrading: the WAL is only
		// truncated after a snapshot lands, so the journal stays a clean
		// prefix and the next cadence retries.
		e.ctrStoreErrors.Inc()
		return
	}
	e.ctrStoreSnapshots.Inc()
}

// buildSnapshot captures the engine's durable state, sorted so the same
// state always serializes to the same bytes. A master's in-flight round
// is recorded as not yet begun: its aggregate would die with us anyway,
// and recovery re-runs it — the same contract a crash between rounds
// has.
func (e *Engine) buildSnapshot() walSnapshot {
	snap := walSnapshot{Self: e.Self()}
	for _, app := range sortedApps(e.masters) {
		m := e.masters[app]
		rep := e.masterImage(m)
		if m.inFlight {
			rep.Round--
		}
		snap.Masters = append(snap.Masters, rep)
	}
	for _, app := range sortedApps(e.replicas) {
		snap.Replicas = append(snap.Replicas, *e.replicas[app])
	}
	for _, app := range sortedApps(e.workers) {
		snap.Subs = append(snap.Subs, walSub{App: app, Restricted: e.workers[app].restricted})
	}
	return snap
}

func sortedApps[T any](m map[AppID]T) []AppID {
	out := make([]AppID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// restore installs a recovered image into a freshly built engine (called
// from NewEngine, before any traffic).
func (e *Engine) restore(ds *durableState) {
	for app, rep := range ds.masters {
		e.masters[app] = masterFromImage(rep)
	}
	for app, rep := range ds.replicas {
		r := rep
		e.replicas[app] = &r
	}
	for app, restricted := range ds.subs {
		e.workers[app] = &workerState{restricted: restricted}
	}
	e.recovered = true
	e.ctrRecoveries.Inc()
}

func masterFromImage(rep replicaMsg) *masterState {
	return &masterState{
		spec:    rep.Spec,
		global:  append([]float64(nil), rep.Global...),
		round:   rep.Round,
		epoch:   rep.Epoch,
		started: rep.Started,
		done:    rep.Done,
		progress: &workload.Progress{
			App:     rep.Spec.Name,
			Points:  append([]workload.AccuracyPoint(nil), rep.Points...),
			Done:    rep.DoneAt,
			Reached: rep.Reached,
		},
	}
}

// Recovered reports whether this engine booted from a non-empty durable
// store.
func (e *Engine) Recovered() bool { return e.recovered }

// AttachShard re-attaches a local data shard to a recovered worker
// subscription. Shards are the driver's data, not the engine's: the
// store journals *that* this node works for an app, and whoever owns the
// data re-supplies it after a restart.
func (e *Engine) AttachShard(app AppID, shard *ml.Dataset) {
	if w, ok := e.workers[app]; ok {
		w.shard = shard
	}
}

// ResumeAfterRestart re-establishes this node's live roles from its
// recovered state. Call it once the node has rejoined the overlay (the
// ring must know the node's neighbors before trees can be reclaimed):
//
//   - recovered worker subscriptions re-join their trees;
//   - recovered masterships are re-claimed at a bumped epoch — demoting
//     any successor that promoted itself during the outage — and
//     unfinished training resumes after the failover grace period, from
//     the last committed round;
//   - recovered replicas restart their ownership probes.
func (e *Engine) ResumeAfterRestart() {
	if !e.recovered || e.resumed {
		return
	}
	e.resumed = true
	for _, app := range sortedApps(e.workers) {
		e.ps.Subscribe(app)
	}
	for _, app := range sortedApps(e.masters) {
		m := e.masters[app]
		m.epoch++
		e.journal(walMaster{Rep: e.masterImage(m)})
		// The bumped epoch restarts the tree's multicast stream (sequence
		// numbers restart from 1 under a new generation); without it, every
		// member that saw the pre-crash stream would drop the recovered
		// master's broadcasts as replays until the sequence passed the old
		// high-water mark.
		e.ps.CreateWithConfig(app, pubsub.TreeConfig{
			MaxFanout:  m.spec.TreeFanout,
			AggTimeout: m.spec.RoundDeadline,
			Epoch:      uint64(m.epoch),
		})
		e.ps.ResetRounds(app)
		e.replicateRound(m)
		if m.started && !m.done {
			grace := e.opts.FailoverGrace
			if grace <= 0 {
				grace = time.Second
			}
			round := m.round
			var resume func()
			resume = func() {
				cur, ok := e.masters[app]
				if !ok || cur != m || m.done || m.round != round {
					return
				}
				// Don't begin a round into an empty tree: right after a
				// restart the workers are still parked under the interim
				// root (or mid-rejoin), and a childless root would complete
				// every remaining round instantly with zero participants.
				// Wait another grace period for the tree to hand back.
				if info, treeOK := e.ps.TreeInfo(app); treeOK && len(info.Children) == 0 {
					e.env.After(grace, resume)
					return
				}
				e.beginRound(m)
			}
			e.env.After(grace, resume)
		}
	}
	for _, app := range sortedApps(e.replicas) {
		rep := e.replicas[app]
		if rep.Started && !rep.Done {
			e.ensureReplicaCheck(app)
		}
	}
}
