// Secure aggregation: the privacy techniques of §4.4 over the Table 2 API.
//
// Ten wearable devices hold private health metrics and want their
// population average without any single node — including the aggregation
// tree's interior nodes and the master — ever seeing an individual value.
// The example combines two of the paper's privacy hooks:
//
//  1. pairwise-masking secure aggregation: every pair of participants
//     derives an antisymmetric mask; each device uploads value + Σ masks,
//     and because the tree's aggregation function is a plain sum, the
//     masks cancel exactly at the root; and
//  2. Gaussian differential-privacy noise on top, so even the exact sum
//     is perturbed.
//
// The roster needed for masking is established with one Broadcast/
// Aggregate round over the same tree (the master asks "who is in?").
//
//	go run ./examples/secureagg
package main

import (
	"fmt"
	"math/rand"
	"sort"

	totoro "totoro"
	"totoro/internal/fl"
	"totoro/internal/ring"
	"totoro/internal/transport"
)

func main() {
	cluster := totoro.NewCluster(totoro.ClusterConfig{
		N:    50,
		Seed: 7,
		Ring: ring.Config{B: 4},
	})
	topic := totoro.NewAppID("private-health-average", "hospital")

	const dim = 4 // four health metrics per device
	rng := rand.New(rand.NewSource(99))

	// Private per-device metric vectors (what we must never reveal).
	private := map[transport.Addr][]float64{}
	workers := cluster.Engines[:10]
	for _, e := range workers {
		v := make([]float64, dim)
		for i := range v {
			v[i] = 60 + rng.Float64()*40 // e.g. resting heart rate style values
		}
		private[e.Self().Addr] = v
	}

	// Shared state across the demo's callbacks.
	var (
		roster    []string
		sums      = map[int][]float64{} // round -> aggregated vector at root
		counts    = map[int]int{}
		rosterSet = map[string]bool{}
	)

	vecAdd := func(a, b []float64) []float64 {
		out := make([]float64, len(a))
		for i := range a {
			out[i] = a[i] + b[i]
		}
		return out
	}

	for _, e := range cluster.Engines {
		e := e
		e.SetCallbacks(totoro.Callbacks{
			Combine: func(app totoro.AppID, a, b any) any {
				av, aok := a.([]float64)
				bv, bok := b.([]float64)
				if aok && bok {
					return vecAdd(av, bv)
				}
				// Roster round: concatenate participant names.
				return append(append([]string{}, a.([]string)...), b.([]string)...)
			},
			OnAggregate: func(app totoro.AppID, round int, obj any, count int) {
				switch v := obj.(type) {
				case []string:
					for _, name := range v {
						if !rosterSet[name] {
							rosterSet[name] = true
							roster = append(roster, name)
						}
					}
				case []float64:
					sums[round] = v
					counts[round] = count
				}
			},
		})
	}

	for _, e := range workers {
		e.SubscribeTopic(topic)
	}
	cluster.Net.RunUntilIdle()

	// Round 1: establish the roster (each participant contributes its name).
	for _, e := range workers {
		e.Aggregate(topic, 1, []string{string(e.Self().Addr)})
	}
	// Forwarders and the root must close the round too.
	for _, e := range cluster.Engines {
		if info, ok := e.PubSub().TreeInfo(topic); ok && info.Attached && !info.Subscribed {
			e.Aggregate(topic, 1, nil)
		}
	}
	cluster.Net.RunUntilIdle()
	sort.Strings(roster)
	fmt.Printf("roster established over the tree: %d participants\n", len(roster))

	// Round 2: every device uploads its masked, noised vector.
	const round = 2
	const noiseSigma = 0.05
	for _, e := range workers {
		self := string(e.Self().Addr)
		v := private[e.Self().Addr]
		noised := totoro.GaussianNoise(v, noiseSigma, rng)
		masked := fl.MaskUpdateScaled(self, roster, round, noised, 1024)
		e.Aggregate(topic, round, masked)
	}
	for _, e := range cluster.Engines {
		if info, ok := e.PubSub().TreeInfo(topic); ok && info.Attached && !info.Subscribed {
			e.Aggregate(topic, round, nil)
		}
	}
	cluster.Net.RunUntilIdle()

	got := sums[round]
	fmt.Printf("root aggregated %d masked uploads\n", counts[round])

	// Ground truth (computed out-of-band only to validate the demo).
	want := make([]float64, dim)
	for _, v := range private {
		for i := range want {
			want[i] += v[i]
		}
	}
	fmt.Println("\nmetric  true-mean  secure-agg-mean  |error|")
	for i := 0; i < dim; i++ {
		t := want[i] / float64(len(workers))
		g := got[i] / float64(len(workers))
		fmt.Printf("  m%d     %8.3f        %8.3f   %7.4f\n", i, t, g, abs(t-g))
	}
	fmt.Println("\nindividual uploads were masked: a single intercepted vector is")
	one := fl.MaskUpdateScaled(roster[0], roster, round, private[transport.Addr(roster[0])], 1024)
	fmt.Printf("  e.g. %v\n  vs the private value %v\n", trunc(one), trunc(private[transport.Addr(roster[0])]))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func trunc(v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = float64(int(v[i]*100)) / 100
	}
	return out
}
