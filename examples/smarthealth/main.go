// Smart Health: the paper's motivating scenario (Fig 1).
//
// Many FL applications run simultaneously over the same wearable-device
// fleet: activity recognition (to prevent falls), fitness tracking
// (calories burned), and abnormal-health detection (stroke/asthma
// intervention) — each with its own model, policies, and dedicated
// dataflow tree. The example shows the core Totoro claim: adding
// concurrent applications barely changes each one's completion time,
// because every application gets its own master and tree instead of
// queueing at a central parameter server.
//
//	go run ./examples/smarthealth
package main

import (
	"fmt"

	totoro "totoro"
	"totoro/internal/fl"
	"totoro/internal/ring"
	"totoro/internal/workload"
)

func main() {
	cluster := totoro.NewCluster(totoro.ClusterConfig{
		N:         120,
		Seed:      2024,
		Ring:      ring.Config{B: 4},
		Bandwidth: 2 << 20,
	})

	// Three concurrent applications with different shapes and policies.
	apps := workload.MakeApps(workload.Params{
		Task:             workload.TaskSpeech, // sensor-window classification
		Apps:             3,
		ClientsPerApp:    14,
		SamplesPerClient: 50,
		Seed:             11,
	})
	apps[0].Name = "activity-recognition"
	apps[0].TargetAccuracy = 0.50

	apps[1].Name = "fitness-tracking"
	apps[1].TargetAccuracy = 0.45
	apps[1].Comp = fl.QuantizeInt8{} // cheap uplinks: 8-bit updates

	apps[2].Name = "abnormal-health-detection"
	apps[2].TargetAccuracy = 0.45
	apps[2].Cfg.ProxMu = 0.1 // FedProx for highly skewed patient data
	apps[2].Participation = 0.75

	var appIDs []totoro.AppID
	for _, a := range apps {
		appIDs = append(appIDs, cluster.DeployOnRandomNodes(a))
	}

	fmt.Println("masters chosen by the DHT (one per application):")
	for i, id := range appIDs {
		fmt.Printf("  %-27s -> %s\n", apps[i].Name, cluster.Master(id).Self().Addr)
	}

	progress := cluster.Train(appIDs...)
	fmt.Println("\nconcurrent training results:")
	for i, p := range progress {
		last := p.Points[len(p.Points)-1]
		fmt.Printf("  %-27s rounds=%2d acc=%.3f reached=%v done=%.1fs\n",
			apps[i].Name, last.Round, last.Accuracy, p.Reached, p.Done.Seconds())
	}

	// Show the symmetry: one node can simultaneously be master for one
	// app, forwarder for another, and worker for a third.
	fmt.Println("\nroles held by each master node across all trees:")
	for _, id := range appIDs {
		m := cluster.Master(id)
		masterOf, workerOf, forwarderOf := 0, 0, 0
		for _, other := range appIDs {
			info, ok := m.PubSub().TreeInfo(other)
			if !ok {
				continue
			}
			switch {
			case info.IsRoot:
				masterOf++
			case info.Subscribed:
				workerOf++
			case info.Attached:
				forwarderOf++
			}
		}
		fmt.Printf("  %s: master of %d, worker of %d, forwarder of %d\n",
			m.Self().Addr, masterOf, workerOf, forwarderOf)
	}
}
