// Churn: training through node failures (paper §4.5, §7.5).
//
// An FL application trains while 10% of its tree members crash mid-run.
// Keep-alive heartbeats detect the failed parents; orphaned children
// re-route their JOINs toward the AppId and splice back into the tree;
// aggregation timeouts keep rounds flowing while repairs happen. Training
// finishes despite the churn.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"time"

	totoro "totoro"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/workload"
)

func main() {
	cluster := totoro.NewCluster(totoro.ClusterConfig{
		N:    100,
		Seed: 31,
		Ring: ring.Config{B: 4, ReliableHops: true, HopAckTimeout: 150 * time.Millisecond},
		PubSub: pubsub.Config{
			KeepAliveInterval: 100 * time.Millisecond,
			KeepAliveTimeout:  300 * time.Millisecond,
			AggTimeout:        2 * time.Second,
		},
		Bandwidth: 2 << 20,
	})

	app := workload.MakeApps(workload.Params{
		Task: workload.TaskSpeech, Apps: 1, ClientsPerApp: 20, SamplesPerClient: 50, Seed: 3,
	})[0]
	app.Name = "churn-resilient-training"
	app.TargetAccuracy = 0 // run the full schedule
	app.MaxRounds = 14

	id := cluster.DeployOnRandomNodes(app)
	master := cluster.Master(id)
	fmt.Printf("master: %s, 20 workers subscribed\n", master.Self().Addr)

	// Start training, run the first seconds, then kill 10% of the tree.
	cluster.Engines[0].StartTraining(id)
	cluster.Net.Run(cluster.Net.Now() + 3*time.Second)

	killed := 0
	for _, e := range cluster.Engines {
		if killed >= 2 {
			break
		}
		info, ok := e.PubSub().TreeInfo(id)
		if !ok || !info.Attached || info.IsRoot || e == master {
			continue
		}
		if len(info.Children) > 0 { // interior nodes hurt the most
			fmt.Printf("t=%.1fs: failing interior node %s (had %d children)\n",
				cluster.Net.Now().Seconds(), e.Self().Addr, len(info.Children))
			cluster.Net.Fail(e.Self().Addr)
			killed++
		}
	}

	// Let keep-alive detection, re-joins, and the remaining rounds play out.
	cluster.StepUntilDone(cluster.Net.Now()+10*time.Minute, id)

	p := cluster.Progress(id)
	repairs := 0
	for _, e := range cluster.Engines {
		repairs += e.PubSub().Stats.Repairs
	}
	last := p.Points[len(p.Points)-1]
	fmt.Printf("\nsurvived: %d tree repairs triggered by keep-alive timeouts\n", repairs)
	fmt.Printf("training completed round %d with accuracy %.3f at t=%.1fs\n",
		last.Round, last.Accuracy, p.Done.Seconds())
	for _, pt := range p.Points {
		fmt.Printf("  round %2d  t=%6.1fs  acc=%.3f  participants=%d\n",
			pt.Round, pt.Time.Seconds(), pt.Accuracy, pt.Participants)
	}
}
