// Churn: training through node failures (paper §4.5, §7.5).
//
// An FL application trains while a seeded Poisson churn process keeps
// failing (and later reviving) nodes around it. Keep-alive heartbeats
// detect failed parents; orphaned children re-route their JOINs toward
// the AppId and splice back into the tree; aggregation timeouts keep
// rounds flowing while repairs happen. Training finishes despite the
// churn — and the whole fault schedule is deterministic, so every run of
// this example prints the same trajectory.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"math/rand"
	"time"

	totoro "totoro"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

func main() {
	cluster := totoro.NewCluster(totoro.ClusterConfig{
		N:    100,
		Seed: 31,
		Ring: ring.Config{B: 4, ReliableHops: true, HopAckTimeout: 150 * time.Millisecond},
		PubSub: pubsub.Config{
			KeepAliveInterval: 100 * time.Millisecond,
			KeepAliveTimeout:  300 * time.Millisecond,
			AggTimeout:        2 * time.Second,
		},
		Bandwidth: 2 << 20,
	})

	app := workload.MakeApps(workload.Params{
		Task: workload.TaskSpeech, Apps: 1, ClientsPerApp: 20, SamplesPerClient: 50, Seed: 3,
	})[0]
	app.Name = "churn-resilient-training"
	app.TargetAccuracy = 0 // run the full schedule
	app.MaxRounds = 14

	// Place the workers explicitly so the churn process can be told to spare
	// them: the point here is tree repair around failures, not data loss.
	perm := rand.New(rand.NewSource(31)).Perm(len(cluster.Engines))
	workers := perm[:len(app.Shards)]
	id := cluster.Deploy(app, workers[0], workers)
	master := cluster.Master(id)
	fmt.Printf("master: %s, %d workers subscribed\n", master.Self().Addr, len(workers))

	// Background churn: on average one failure every 400ms of virtual time,
	// each victim down for 5s. Master and workers are exempt — everything
	// else (including the tree's interior forwarders) is fair game.
	exempt := []transport.Addr{master.Self().Addr}
	for _, w := range workers {
		exempt = append(exempt, cluster.Engines[w].Self().Addr)
	}
	churn := cluster.Net.StartChurn(simnet.ChurnConfig{
		Seed:      12,
		FailEvery: 400 * time.Millisecond,
		Downtime:  5 * time.Second,
		Exempt:    exempt,
		OnFail: func(a transport.Addr, now time.Duration) {
			fmt.Printf("t=%5.1fs: node %s failed\n", now.Seconds(), a)
		},
	})
	defer churn.Stop()

	// Train to completion while the churn process runs underneath.
	cluster.Engines[workers[0]].StartTraining(id)
	cluster.StepUntilDone(cluster.Net.Now()+10*time.Minute, id)

	p := cluster.Progress(id)
	repairs := 0
	for _, e := range cluster.Engines {
		repairs += int(e.Metrics().Counter("pubsub.repairs").Value())
	}
	last := p.Points[len(p.Points)-1]
	fmt.Printf("\nchurn injected %d failures (%d revived); survivors ran %d tree repairs\n",
		churn.Fails, churn.Revives, repairs)
	fmt.Printf("training completed round %d with accuracy %.3f at t=%.1fs\n",
		last.Round, last.Accuracy, p.Done.Seconds())
	for _, pt := range p.Points {
		fmt.Printf("  round %2d  t=%6.1fs  acc=%.3f  participants=%d\n",
			pt.Round, pt.Time.Seconds(), pt.Accuracy, pt.Participants)
	}
}
