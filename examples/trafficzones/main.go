// Traffic zones: locality-aware multi-rings and administrative isolation
// (paper §4.2, §4.4).
//
// A road-traffic detection scenario over two edge providers: nodes are
// binned into geographic zones; a zone-restricted application (local
// congestion prediction with privacy constraints) may only recruit
// workers inside its own zone, while a multi-zone application (weather-
// aware routing) spans the map. The example also demonstrates packet-level
// isolation with the two-level multiring router.
//
//	go run ./examples/trafficzones
package main

import (
	"fmt"
	"math/rand"
	"time"

	totoro "totoro"
	"totoro/internal/ids"
	"totoro/internal/multiring"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

func main() {
	const zoneBits = 4

	// --- Part 1: zone-restricted vs multi-zone FL applications ---
	zones := 4
	cluster := totoro.NewCluster(totoro.ClusterConfig{
		N:        80,
		Seed:     99,
		Ring:     ring.Config{B: 4},
		ZoneBits: zoneBits,
		ZoneOf:   func(i int) uint64 { return uint64(i % zones) },
	})

	app := workload.MakeApps(workload.Params{
		Task: workload.TaskSpeech, Apps: 1, ClientsPerApp: 8, SamplesPerClient: 50, Seed: 5,
	})[0]
	app.Name = "congestion-zone2"
	app.TargetAccuracy = 0.45

	// A zonal AppID forces the rendezvous master inside zone 2.
	zonalID := totoro.NewZonalAppID(app.Name, "city-provider", 2, zoneBits)
	spec := totoro.SpecFromWorkload(zonalID, app)
	spec.ZoneRestricted = true

	var inZone, outZone *totoro.Engine
	for _, e := range cluster.Engines {
		if e.Self().ID.ZonePrefix(zoneBits) == 2 && inZone == nil {
			inZone = e
		}
		if e.Self().ID.ZonePrefix(zoneBits) != 2 && outZone == nil {
			outZone = e
		}
	}
	inZone.CreateTree(spec)
	cluster.Net.RunUntilIdle()

	if err := inZone.Subscribe(zonalID, app.Shards[0], true); err != nil {
		panic(err)
	}
	fmt.Printf("in-zone worker %s subscribed to zone-restricted app\n", inZone.Self().Addr)
	if err := outZone.Subscribe(zonalID, app.Shards[1], true); err != nil {
		fmt.Printf("out-of-zone worker %s refused: %v\n", outZone.Self().Addr, err)
	}
	masterZone := uint64(0)
	for _, e := range cluster.Engines {
		if e.IsMaster(zonalID) {
			masterZone = e.Self().ID.ZonePrefix(zoneBits)
		}
	}
	fmt.Printf("master lives in zone %d (forced by the zonal AppID)\n\n", masterZone)

	// --- Part 2: packet-level administrative isolation with the
	//     boundary-aware two-level routing tables ---
	rng := rand.New(rand.NewSource(7))
	net := simnet.New(simnet.Config{Seed: 7, Latency: simnet.ConstLatency(2 * time.Millisecond)})
	var nodes []*multiring.Node
	delivered := map[transport.Addr]int{}
	for z := 0; z < zones; z++ {
		for i := 0; i < 20; i++ {
			addr := transport.Addr(fmt.Sprintf("mr-z%d-n%d", z, i))
			id := ids.MakeZoned(uint64(z), zoneBits, ids.Random(rng))
			var n *multiring.Node
			net.AddNode(addr, func(e transport.Env) transport.Handler {
				n = multiring.NewNode(e, ring.Contact{ID: id, Addr: addr},
					multiring.Config{MBits: zoneBits},
					func(p multiring.Packet) { delivered[addr]++ })
				return n
			})
			nodes = append(nodes, n)
		}
	}
	multiring.BuildStatic(nodes, rng)

	src := nodes[0] // zone 0
	zonalKey := ids.MakeZoned(1, zoneBits, ids.Random(rng))
	src.Route(zonalKey, multiring.ScopeZonal, "private-telemetry")
	net.RunUntilIdle()
	fmt.Printf("zonal packet to another zone: blocked at the boundary (Blocked=%d)\n", src.Blocked())

	globalKey := ids.MakeZoned(1, zoneBits, ids.Random(rng))
	src.Route(globalKey, multiring.ScopeGlobal, "weather-model-request")
	net.RunUntilIdle()
	total := 0
	for _, c := range delivered {
		total += c
	}
	fmt.Printf("global packet to zone 1: delivered (deliveries=%d) via two-level routing\n", total)
}
