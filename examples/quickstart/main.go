// Quickstart: a five-minute tour of the Totoro public API.
//
// It builds a simulated 60-node edge deployment, launches one federated
// learning application (a 35-class speech-commands-like task), trains it
// to its target accuracy over the application's own dataflow tree, and
// prints the master's view of the run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	totoro "totoro"
	"totoro/internal/ring"
	"totoro/internal/workload"
)

func main() {
	// 1. A deployment: 60 edge nodes on a deterministic virtual network
	//    (5 ms links, 2 MB/s NICs), self-organized into a Pastry-style
	//    overlay with routing base 4 (tree fanout 16).
	cluster := totoro.NewCluster(totoro.ClusterConfig{
		N:         60,
		Seed:      42,
		Ring:      ring.Config{B: 4},
		Bandwidth: 2 << 20,
	})

	// 2. An application: 12 clients, each holding a non-IID shard of a
	//    synthetic speech-commands-like dataset.
	app := workload.MakeApps(workload.Params{
		Task:             workload.TaskSpeech,
		Apps:             1,
		ClientsPerApp:    12,
		SamplesPerClient: 60,
		Seed:             7,
	})[0]
	app.TargetAccuracy = 0.50
	app.MaxRounds = 40

	// 3. Deploy: the app's spec routes to the rendezvous node (the node
	//    whose ID is numerically closest to the AppId), which becomes this
	//    application's dedicated master; the 12 workers subscribe and the
	//    JOIN paths form the dataflow tree.
	id := cluster.DeployOnRandomNodes(app)
	master := cluster.Master(id)
	fmt.Printf("app %s\n", app.Name)
	fmt.Printf("  appId      %s…\n", id.Short())
	fmt.Printf("  master     %s (chosen by the DHT, not by us)\n", master.Self().Addr)

	// 4. Watch progress with the onTimer API while training runs.
	master.OnTimer(id, 2*time.Second, func(info totoro.TimerInfo) {
		fmt.Printf("  [t=%6.1fs] round %2d  accuracy %.3f\n",
			info.Now.Seconds(), info.Round, info.Accuracy)
	})

	// 5. Train: broadcast the model down the tree, train at the edge,
	//    aggregate gradients in-network back to the master, repeat.
	progress := cluster.Train(id)[0]

	last := progress.Points[len(progress.Points)-1]
	fmt.Printf("\nfinished in %.1fs of virtual time\n", progress.Done.Seconds())
	fmt.Printf("  rounds        %d\n", last.Round)
	fmt.Printf("  accuracy      %.3f (target %.3f, reached=%v)\n",
		last.Accuracy, app.TargetAccuracy, progress.Reached)
	fmt.Printf("  participants  %d workers per round\n", last.Participants)
}
