package totoro

import (
	"testing"
	"time"

	"totoro/internal/ring"
	"totoro/internal/workload"
)

// TestVirtualNodesAttractProportionalRoles checks the paper's
// heterogeneity mechanism (§7.5): a resource-rich host running k logical
// P2P nodes owns ~k× the ID space and therefore collects ~k× the master
// roles of a plain host.
func TestVirtualNodesAttractProportionalRoles(t *testing.T) {
	const hosts = 40
	c := NewCluster(ClusterConfig{
		N:    hosts,
		Seed: 17,
		Ring: ring.Config{B: 4},
		VirtualNodesOf: func(host int) int {
			if host == 0 {
				return 6 // one beefy machine
			}
			return 1
		},
	})
	if len(c.Engines) != hosts+5 {
		t.Fatalf("logical nodes = %d want %d", len(c.Engines), hosts+5)
	}
	// Host 0's engines share one compute queue.
	if c.Engines[0].queue != c.Engines[5].queue {
		t.Fatal("virtual nodes of host 0 do not share a compute queue")
	}
	if c.Engines[0].queue == c.Engines[6].queue {
		t.Fatal("different hosts share a compute queue")
	}

	apps := workload.MakeApps(workload.Params{
		Task: workload.TaskSpeech, Apps: 60, ClientsPerApp: 2, SamplesPerClient: 10, Seed: 17,
	})
	rootsPerHost := map[int]int{}
	for _, a := range apps {
		a.MaxRounds = 0
		id := c.DeployOnRandomNodes(a)
		for ei, e := range c.Engines {
			if e.IsMaster(id) {
				rootsPerHost[c.HostOf[ei]]++
			}
		}
	}
	beefy := rootsPerHost[0]
	others := 0
	for h, cnt := range rootsPerHost {
		if h != 0 {
			others += cnt
		}
	}
	meanOther := float64(others) / float64(hosts-1)
	// Expect roughly 6× the mean; allow generous slack for hash variance.
	if float64(beefy) < 2*meanOther {
		t.Fatalf("beefy host attracted %d masters vs mean %.2f — not proportional", beefy, meanOther)
	}
}

// TestSharedQueueSerializesCompute verifies that two logical nodes on one
// host cannot train simultaneously.
func TestSharedQueueSerializesCompute(t *testing.T) {
	q := &workload.ComputeQueue{}
	f1 := q.Start(0, 100*time.Millisecond)
	f2 := q.Start(0, 100*time.Millisecond)
	if f1 != 100*time.Millisecond || f2 != 200*time.Millisecond {
		t.Fatalf("queue did not serialize: %v %v", f1, f2)
	}
	// A task submitted after the queue drained starts immediately.
	f3 := q.Start(500*time.Millisecond, 50*time.Millisecond)
	if f3 != 550*time.Millisecond {
		t.Fatalf("idle queue delayed a task: %v", f3)
	}
}
