package totoro

import (
	"fmt"
	"time"

	"totoro/internal/fl"
	"totoro/internal/ids"
	"totoro/internal/ml"
	"totoro/internal/obs"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/store"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

// Options configures one Engine (one edge node's protocol stack).
type Options struct {
	// Ring configures the Pastry-style overlay (B controls tree fanout:
	// fanout = 2^B, the paper's 8/16/32 settings).
	Ring ring.Config
	// PubSub configures the forest layer (keep-alives, fanout caps,
	// aggregation timeouts).
	PubSub pubsub.Config
	// Cost models local compute time; zero value uses the default.
	Cost workload.CostModel
	// Speed is this node's compute speed factor (1 = nominal).
	Speed float64
	// ZoneBits is the multi-ring zone prefix width; 0 disables zone
	// enforcement.
	ZoneBits int
	// Queue, when set, is a compute queue shared with other engines on the
	// same physical host — the paper's virtual-node mechanism for
	// heterogeneous hardware (§7.5): a resource-rich machine runs several
	// logical P2P nodes that serialize their local training on the shared
	// CPU. Nil gives the engine its own queue.
	Queue *workload.ComputeQueue
	// Eval scores an application's global parameters (test accuracy). It
	// is instrumentation: typically installed by the Cluster, it runs at
	// round boundaries on the master and costs no simulated time.
	Eval func(app AppID, params []float64) float64
	// Replicas is how many leaf-set successors receive the master's
	// replicated round state each round, enabling master failover.
	// 0 (the default) disables replication: the replicas cost one model
	// upload per successor per round, which deployments that measure
	// bandwidth-bound behavior may not want to pay.
	Replicas int
	// ReplicaCheckInterval is how often a node holding a replica of a
	// live application probes ring ownership of the app key to detect a
	// dead master (0 = 500ms).
	ReplicaCheckInterval time.Duration
	// FailoverGrace is how long a freshly promoted master waits before
	// resuming rounds, giving orphaned workers time to re-attach to the
	// new tree root (0 = 1s).
	FailoverGrace time.Duration
	// Store, when set, journals every engine mutation (identity, worker
	// subscriptions, mastership images, round boundaries, accepted
	// replicas) so the node can recover its roles after a crash-restart.
	// Nil (the default) keeps the engine purely in-memory.
	Store store.Store
	// SnapshotEvery is how many WAL appends accumulate before the journal
	// is folded into a snapshot and truncated (0 = 64).
	SnapshotEvery int
	// OnStoreFailure fires once, when the first journal append fails and
	// the engine permanently degrades to non-durable (see durable.go).
	// Deployments that prefer crash-stop over degraded service halt the
	// node here. Nil just degrades loudly (store.degraded gauge).
	OnStoreFailure func(err error)
}

// Callbacks are the user-facing upcalls of Table 2 for custom
// (non-FL-driver) applications built directly on the forest.
type Callbacks struct {
	// OnBroadcast fires when a Broadcast object reaches this node
	// (Table 2 onBroadcast).
	OnBroadcast func(app AppID, obj any, depth int, subscriber bool)
	// OnAggregate fires at the tree root when a user aggregation round
	// completes (Table 2 onAggregate).
	OnAggregate func(app AppID, round int, obj any, count int)
	// Combine merges two user aggregation objects (owner's aggregation
	// function).
	Combine func(app AppID, a, b any) any
}

// TimerInfo is the progress snapshot handed to OnTimer callbacks
// (round_num, accuracy — Table 2 onTimer).
type TimerInfo struct {
	App      AppID
	Round    int
	Accuracy float64
	Done     bool
	Now      time.Duration
}

type masterState struct {
	spec     AppSpec
	global   []float64
	round    int
	epoch    int // mastership generation; bumped by every failover promotion
	progress *workload.Progress
	started  bool
	done     bool
	// inFlight marks a begun, uncommitted round: durable snapshots taken
	// mid-round record the previous round as the last completed one, so a
	// recovered master re-runs the interrupted round (durable.go).
	inFlight bool
	// holds counts how many times the current round's commit has been
	// deferred for lacking quorum (max(1, spec.MinParticipants) merged
	// client updates). A master whose tree is empty — typically a failover
	// promotion on the wrong side of a partition — would otherwise race
	// through every round vacuously and mark the app done on an untrained
	// model; with a configured quorum the same mechanism keeps the model
	// from taking a nearly-empty step while a fault window cuts workers
	// off. Transient: never journaled or replicated.
	holds int
	// pending accumulates the held round's aggregate across flushes: a
	// held round's tree keeps forwarding disjoint supplementary partials
	// (stragglers, workers back from a healed partition), one flush each,
	// and the eventual commit folds them all. Transient, like holds.
	pending updateAgg
	// retriedRound marks the one round number already re-announced under a
	// bumped epoch (see retryRound); a round is retried at most once so
	// liveness stays bounded. Transient, like holds.
	retriedRound int
}

// maxRoundHolds bounds how many times a below-quorum round is held open
// (one round deadline per hold) before the master commits whatever it
// merged. The bound preserves liveness when a participation-sampled round
// legitimately selects nobody or the fleet has genuinely shrunk; the
// holds give tree repair, stale stragglers, and failover reconciliation
// time to either deliver real updates or demote a vacuous master.
const maxRoundHolds = 3

type workerState struct {
	shard      *ml.Dataset
	proto      *ml.MLP
	restricted bool
	// gen counts roundStart announcements handled for this app. A training
	// job captures the generation it was started under and submits only if
	// no newer announcement superseded it meanwhile — otherwise a round
	// re-announced while the old instance's job is still in the compute
	// queue (master failover re-running the interrupted round, or a quorum
	// retry) would make this worker submit twice into the new aggregation
	// instance. Training is deterministic per (seed, round, client), so
	// dropping the superseded job loses nothing.
	gen int
}

// Engine is one edge node's full Totoro stack: overlay node, forest node,
// and the FL driver. Any engine can simultaneously be master for some
// applications, aggregator/forwarder for others, and worker for yet
// others — that symmetry is the core of the design.
type Engine struct {
	env  transport.Env
	opts Options
	ring *ring.Node
	ps   *pubsub.Node

	queue   *workload.ComputeQueue
	masters map[AppID]*masterState
	workers map[AppID]*workerState
	cb      Callbacks

	// replicas holds round state replicated to this node by masters whose
	// leaf set it belongs to; checking tracks which replicas currently run
	// an ownership-probe loop (see failover.go).
	replicas map[AppID]*replicaMsg
	checking map[AppID]bool
	// suspect counts consecutive unanswered masterPings per app while the
	// ring routes the app key here (promotion gate, see failover.go).
	suspect map[AppID]int

	// Cached handles into env.Metrics(): engine.promotions counts
	// replica→master failover promotions, engine.rounds counts completed
	// master rounds.
	ctrPromotions *obs.Counter
	ctrRounds     *obs.Counter

	// Durable state (durable.go). store journals engine mutations;
	// walAppends counts records since the last snapshot; recovered/resumed
	// track the boot-from-journal lifecycle.
	store             store.Store
	walAppends        int
	recovered         bool
	resumed           bool
	degraded          bool
	ctrStoreAppends   *obs.Counter
	ctrStoreSnapshots *obs.Counter
	ctrStoreErrors    *obs.Counter
	ctrRecoveries     *obs.Counter
	gaugeDegraded     *obs.Gauge

	// RoundHook, when set, observes every completed master round
	// (experiment instrumentation).
	RoundHook func(app AppID, round int, acc float64, now time.Duration)

	// AckHook, when set, observes every master-state acknowledgement:
	// commit=true fires synchronously at each committed round (with the
	// merged participant count), commit=false at every replication of a
	// mastership image (claim, promotion, restart re-claim, post-commit).
	// The chaos harness's invariant checker hangs off it (chaos.go).
	AckHook func(app AppID, epoch, round, participants int, commit bool)
}

// NewEngine builds an engine for the given environment and identity.
// The returned engine is the node's transport.Handler.
func NewEngine(env transport.Env, self ring.Contact, opts Options) *Engine {
	if opts.Cost.FLOPS == 0 {
		opts.Cost = workload.DefaultCostModel()
	}
	if opts.Speed == 0 {
		opts.Speed = 1
	}
	queue := opts.Queue
	if queue == nil {
		queue = &workload.ComputeQueue{}
	}
	e := &Engine{
		env:      env,
		opts:     opts,
		queue:    queue,
		masters:  make(map[AppID]*masterState),
		workers:  make(map[AppID]*workerState),
		replicas: make(map[AppID]*replicaMsg),
		checking: make(map[AppID]bool),
		suspect:  make(map[AppID]int),
	}
	e.ctrPromotions = env.Metrics().Counter("engine.promotions")
	e.ctrRounds = env.Metrics().Counter("engine.rounds")
	if opts.Store != nil {
		e.store = opts.Store
		e.ctrStoreAppends = env.Metrics().Counter("store.appends")
		e.ctrStoreSnapshots = env.Metrics().Counter("store.snapshots")
		e.ctrStoreErrors = env.Metrics().Counter("store.errors")
		e.ctrRecoveries = env.Metrics().Counter("engine.recoveries")
		e.gaugeDegraded = env.Metrics().Gauge("store.degraded")
		RegisterWire() // journals decode through the same codec registry
		ds, err := loadDurable(e.store)
		if err != nil {
			e.ctrStoreErrors.Inc()
		}
		if ds.loaded {
			// Rejoin under the identity the journal recorded: peers, trees,
			// and replicated state all key on it.
			if !ds.self.ID.IsZero() {
				self = ring.Contact{ID: ds.self.ID, Addr: self.Addr}
			}
			e.restore(ds)
		} else {
			e.journal(walIdentity{Self: self})
		}
	}
	e.ring = ring.New(env, self, opts.Ring)
	e.ps = pubsub.New(env, e.ring, opts.PubSub)
	// The engine interposes on the ring's upcalls to catch its own control
	// messages, delegating everything else to the pub/sub layer.
	e.ring.SetApp(e)
	e.ps.SetHandlers(pubsub.Handlers{
		OnDeliver:   e.onDeliver,
		Combine:     e.combine,
		OnAggregate: e.onAggregate,
	})
	return e
}

// Self returns this node's overlay contact.
func (e *Engine) Self() ring.Contact { return e.ring.Self() }

// Ring exposes the overlay node (diagnostics and experiments).
func (e *Engine) Ring() *ring.Node { return e.ring }

// PubSub exposes the forest node (diagnostics and experiments).
func (e *Engine) PubSub() *pubsub.Node { return e.ps }

// Metrics returns this node's telemetry registry: every layer of the
// stack (ring, pubsub, fl driver, transport) emits into it.
func (e *Engine) Metrics() *obs.Registry { return e.env.Metrics() }

// Promotions returns how many times this node promoted itself to master
// from a replica (failover instrumentation, "engine.promotions").
func (e *Engine) Promotions() int { return int(e.ctrPromotions.Value()) }

// SetCallbacks installs the custom-application upcalls.
func (e *Engine) SetCallbacks(cb Callbacks) { e.cb = cb }

// Receive implements transport.Handler, dispatching overlay and forest
// messages to their layers.
func (e *Engine) Receive(from transport.Addr, msg any) {
	if rep, ok := msg.(replicaMsg); ok {
		e.handleReplica(rep)
		return
	}
	if p, ok := msg.(masterPing); ok {
		e.handleMasterPing(p)
		return
	}
	if _, ok := msg.(ring.Message); ok {
		e.ring.Receive(from, msg)
		return
	}
	e.ps.Receive(from, msg)
}

// --- Table 2 API ---

// Join enters an existing overlay through any member node.
func (e *Engine) Join(bootstrap transport.Addr) { e.ring.Join(bootstrap) }

// CreateTree creates the application's dataflow tree: the spec is routed
// to the rendezvous node (numerically closest to the AppID), which becomes
// the application's master.
func (e *Engine) CreateTree(spec AppSpec) {
	if spec.ID.IsZero() {
		panic("totoro: CreateTree needs a non-zero AppID")
	}
	e.ring.Route(spec.ID, announceMsg{Spec: spec})
}

// Subscribe joins this node to an application's tree as a worker holding
// the given local shard. restricted enforces the zone boundary for
// zone-restricted applications.
func (e *Engine) Subscribe(app AppID, shard *ml.Dataset, restricted bool) error {
	if restricted && e.opts.ZoneBits > 0 {
		if app.ZonePrefix(e.opts.ZoneBits) != e.Self().ID.ZonePrefix(e.opts.ZoneBits) {
			return fmt.Errorf("totoro: node %s (zone %d) refused zone-restricted app in zone %d",
				e.Self().Addr, e.Self().ID.ZonePrefix(e.opts.ZoneBits), app.ZonePrefix(e.opts.ZoneBits))
		}
	}
	e.workers[app] = &workerState{shard: shard, restricted: restricted}
	e.journal(walSub{App: app, Restricted: restricted})
	e.ps.Subscribe(app)
	return nil
}

// SubscribeTopic joins a tree without a data shard (custom pub/sub use).
func (e *Engine) SubscribeTopic(app AppID) { e.ps.Subscribe(app) }

// Unsubscribe leaves an application.
func (e *Engine) Unsubscribe(app AppID) {
	delete(e.workers, app)
	e.journal(walUnsub{App: app})
	e.ps.Unsubscribe(app)
}

// StartTraining tells the application's master to begin rounds.
func (e *Engine) StartTraining(app AppID) { e.ring.Route(app, startMsg{App: app}) }

// Broadcast disseminates an object from the master down the tree
// (Table 2 Broadcast). Called anywhere, it first routes to the root.
func (e *Engine) Broadcast(app AppID, obj any) { e.ps.Publish(app, obj) }

// Aggregate contributes an object to an aggregation round (Table 2
// Aggregate); interior nodes fold contributions with the owner's
// aggregation function on the way to the root.
func (e *Engine) Aggregate(app AppID, round int, obj any) { e.ps.SubmitUpdate(app, round, obj) }

// OnTimer invokes fn with progress information every interval until the
// app finishes or cancel is called (Table 2 onTimer).
func (e *Engine) OnTimer(app AppID, interval time.Duration, fn func(TimerInfo)) (cancel func()) {
	stopped := false
	var tick func()
	var c func()
	tick = func() {
		if stopped {
			return
		}
		info := TimerInfo{App: app, Now: e.env.Now()}
		if m, ok := e.masters[app]; ok {
			info.Round = m.round
			info.Done = m.done
			if n := len(m.progress.Points); n > 0 {
				info.Accuracy = m.progress.Points[n-1].Accuracy
			}
		}
		fn(info)
		if info.Done {
			return
		}
		c = e.env.After(interval, tick)
	}
	c = e.env.After(interval, tick)
	return func() {
		stopped = true
		if c != nil {
			c()
		}
	}
}

// IsMaster reports whether this node is the application's master.
func (e *Engine) IsMaster(app AppID) bool {
	_, ok := e.masters[app]
	return ok
}

// Progress returns the master-side training trajectory for an app.
func (e *Engine) Progress(app AppID) (*workload.Progress, bool) {
	m, ok := e.masters[app]
	if !ok {
		return nil, false
	}
	return m.progress, true
}

// GlobalParams returns a copy of the master's current global parameters.
func (e *Engine) GlobalParams(app AppID) ([]float64, bool) {
	m, ok := e.masters[app]
	if !ok {
		return nil, false
	}
	return append([]float64(nil), m.global...), true
}

// MasterApps lists the applications this node currently masters.
func (e *Engine) MasterApps() []AppID {
	out := make([]AppID, 0, len(e.masters))
	for id := range e.masters {
		out = append(out, id)
	}
	return out
}

// --- ring.App interposition ---

// Deliver handles control messages addressed to this node as rendezvous,
// delegating pub/sub payloads onward.
func (e *Engine) Deliver(d ring.Delivery) {
	switch p := d.Payload.(type) {
	case announceMsg:
		e.becomeMaster(p.Spec)
	case startMsg:
		e.maybePromote(p.App)
		if m, ok := e.masters[p.App]; ok && !m.started && !m.done {
			m.started = true
			e.journal(walMaster{Rep: e.masterImage(m)})
			e.replicateRound(m)
			e.beginRound(m)
		}
	default:
		// Tree traffic arriving at the rendezvous node: if the previous
		// master died and we hold its replica, this is the moment the ring
		// has rerouted the app key to us — promote before the pub/sub layer
		// claims the root, so the tree and the FL master move together.
		switch q := d.Payload.(type) {
		case pubsub.JoinMsg:
			e.maybePromote(q.Topic)
		case pubsub.PublishMsg:
			e.maybePromote(q.Topic)
		}
		e.ps.Deliver(d)
	}
}

// Forward delegates to the pub/sub layer (JOIN interception).
func (e *Engine) Forward(d *ring.Delivery, next ring.Contact) bool {
	return e.ps.Forward(d, next)
}

func (e *Engine) becomeMaster(spec AppSpec) {
	if e.maybePromote(spec.ID) {
		return // a re-announced app resumes from the replica, not a fresh start
	}
	if _, dup := e.masters[spec.ID]; dup {
		return
	}
	m := &masterState{
		spec:     spec,
		global:   append([]float64(nil), spec.InitParams...),
		progress: &workload.Progress{App: spec.Name},
	}
	e.masters[spec.ID] = m
	// Journal the mastership before claiming the tree: a crash after this
	// point recovers as master, never as a node that half-claimed a root.
	e.journal(walMaster{Rep: e.masterImage(m)})
	// Claim the tree root so early subscribers splice below us, installing
	// the owner's tree parameters (fanout cap, semi-sync round deadline).
	e.ps.CreateWithConfig(spec.ID, pubsub.TreeConfig{
		MaxFanout:  spec.TreeFanout,
		AggTimeout: spec.RoundDeadline,
		Epoch:      uint64(m.epoch),
	})
	e.replicateRound(m)
}

func (e *Engine) beginRound(m *masterState) {
	m.round++
	m.inFlight = true
	e.journal(walRound{App: m.spec.ID, Round: m.round})
	params := append([]float64(nil), m.global...)
	e.ps.Publish(m.spec.ID, roundStart{
		App:           m.spec.ID,
		Round:         m.round,
		Sizes:         m.spec.Sizes,
		Params:        params,
		Cfg:           m.spec.Cfg,
		Participation: m.spec.Participation,
		Compressor:    m.spec.Compressor,
		TopK:          m.spec.TopK,
		NoiseSigma:    m.spec.NoiseSigma,
		Seed:          m.spec.Seed,
	})
}

// --- pub/sub upcalls ---

func (e *Engine) onDeliver(app ids.ID, obj any, depth int, subscriber bool) {
	if rs, ok := obj.(roundStart); ok {
		e.handleRoundStart(app, rs, subscriber)
		return
	}
	if e.cb.OnBroadcast != nil {
		e.cb.OnBroadcast(app, obj, depth, subscriber)
	}
}

func (e *Engine) combine(app ids.ID, a, b any) any {
	if _, ok := a.(updateAgg); ok {
		return mergeUpdates(a, b)
	}
	if _, ok := b.(updateAgg); ok {
		return mergeUpdates(a, b)
	}
	if e.cb.Combine != nil {
		return e.cb.Combine(app, a, b)
	}
	return b
}

func (e *Engine) onAggregate(app ids.ID, round int, obj any, count int) {
	m, isMaster := e.masters[app]
	u, isUpdate := obj.(updateAgg)
	if isMaster && (isUpdate || obj == nil) {
		e.completeRound(m, round, u)
		return
	}
	if e.cb.OnAggregate != nil {
		e.cb.OnAggregate(app, round, obj, count)
	}
}

// handleRoundStart is every tree member's reaction to a round broadcast:
// train and contribute if selected, otherwise report an empty
// contribution so in-network aggregation can complete.
func (e *Engine) handleRoundStart(app ids.ID, rs roundStart, subscriber bool) {
	w := e.workers[app]
	selected := subscriber && w != nil && w.shard != nil && w.shard.Len() > 0 &&
		participates(app, e.Self().Addr, rs.Round, rs.Participation)
	if w != nil {
		w.gen++
	}
	if !selected {
		e.ps.SubmitUpdate(app, rs.Round, nil)
		return
	}
	gen := w.gen
	if w.proto == nil || !sameSizes(w.proto.Sizes, rs.Sizes) {
		w.proto = ml.NewMLP(rs.Sizes, e.env.Rand())
	}
	dur := e.opts.Cost.Time(rs.Cfg.LocalEpochs, w.shard.Len(), w.proto.NumParams(), e.opts.Speed)
	now := e.env.Now()
	finish := e.queue.Start(now, dur)
	// Training inputs are fully determined here, so hand the pure job to
	// the real worker pool now and collect the result when the simulated
	// compute time elapses: clients across the ring train concurrently on
	// real CPUs while virtual time is unaffected. All randomness comes from
	// an rng derived from (app seed, round, node address), never from the
	// shared simulator stream, so the outcome is independent of pool
	// scheduling.
	proto, shard, params := w.proto, w.shard, rs.Params
	tag := fl.ClientTag(string(e.Self().Addr))
	var agg updateAgg
	fut := fl.Go(func(ws *ml.Workspace) {
		crng := fl.DeriveRNG(rs.Seed, rs.Round, tag)
		u := fl.LocalTrainWS(proto, params, shard, rs.Cfg, crng, ws)
		if u.Samples == 0 {
			return
		}
		if rs.NoiseSigma > 0 {
			addGaussianNoise(u.Delta, rs.NoiseSigma, crng)
		}
		spec := AppSpec{Compressor: rs.Compressor, TopK: rs.TopK}
		recon, bytes := spec.compressor().Apply(u.Delta)
		u.Delta = recon
		agg = updateAgg{Acc: fl.NewAccumOwning(u), Bytes: bytes}
	})
	e.env.After(finish-now, func() {
		fut.Wait()
		if w.gen != gen {
			return // a newer announcement superseded this job; see workerState.gen
		}
		if agg.Acc == nil {
			e.ps.SubmitUpdate(app, rs.Round, nil)
			return
		}
		e.ps.SubmitUpdate(app, rs.Round, agg)
	})
}

func (e *Engine) completeRound(m *masterState, round int, u updateAgg) {
	if m.done || round != m.round {
		return // stale flush, or supplementary partial for a committed round
	}
	// Fold this flush into the round's pending aggregate: while the round
	// is held below quorum, every later flush delivers a disjoint
	// supplementary partial (upstream dedup guarantees disjointness), and
	// the commit must merge them all.
	if u.Acc != nil && u.Acc.Count > 0 {
		if m.pending.Acc == nil {
			m.pending = u
		} else if merged, ok := mergeUpdates(m.pending, u).(updateAgg); ok {
			m.pending = merged
		}
	}
	count := 0
	if m.pending.Acc != nil {
		count = m.pending.Acc.Count
	}
	quorum := m.spec.MinParticipants
	if quorum < 1 {
		quorum = 1 // never commit a zero-participant round unheld (vacuous-master guard)
	}
	if count < quorum {
		if m.holds < maxRoundHolds {
			// Below quorum. Hold the round open instead of committing a
			// nearly-empty step: the round stays in flight, so supplementary
			// partials (a straggler subtree, workers rejoining after a
			// partition heals) re-enter here and commit for real — and a
			// master promoted into an empty tree stalls harmlessly until
			// reconciliation demotes it, rather than racing to MaxRounds on
			// an untrained model.
			m.holds++
			e.env.Metrics().Counter("fl.round_holds").Inc()
			wait := m.spec.RoundDeadline
			if wait <= 0 {
				wait = time.Second
			}
			epoch := m.epoch
			e.env.After(wait, func() {
				if cur, ok := e.masters[m.spec.ID]; ok && cur == m && !m.done &&
					m.round == round && m.inFlight && m.epoch == epoch {
					e.completeRound(m, round, updateAgg{})
				}
			})
			return
		}
		if m.spec.MinParticipants > 1 && m.retriedRound != round {
			// Holds exhausted and still below quorum: the missing updates
			// are not late, they are gone (the usual cause is partials lost
			// inside failed interior aggregators). Re-run the round once
			// under a bumped epoch instead of committing a starved step.
			e.retryRound(m, round)
			return
		}
		// Liveness: after maxRoundHolds deadlines (and at most one retry)
		// the round commits whatever it merged — participation sampling may
		// legitimately select no one, or the fleet has genuinely shrunk.
	}
	u = m.pending
	m.pending = updateAgg{}
	m.inFlight = false
	m.holds = 0
	if u.Acc != nil {
		if d := u.Acc.MeanDelta(); d != nil {
			fl.ApplyDelta(m.global, d)
		}
	}
	acc := 0.0
	if e.opts.Eval != nil {
		acc = e.opts.Eval(m.spec.ID, m.global)
	}
	now := e.env.Now()
	participants := 0
	if u.Acc != nil {
		participants = u.Acc.Count
	}
	// Round telemetry is emitted here, on the event loop, so it stays
	// deterministic under the simulator (never from training goroutines).
	reg := e.env.Metrics()
	e.ctrRounds.Inc()
	reg.Counter("fl.rounds").Inc()
	reg.Counter("fl.participants").Add(int64(participants))
	reg.Counter("fl.update_bytes").Add(int64(u.Bytes))
	reg.Histogram("fl.update_size", obs.ByteBuckets).Observe(float64(u.Bytes))
	reg.Gauge("fl.accuracy").Set(acc)
	m.progress.Points = append(m.progress.Points, workload.AccuracyPoint{
		Time: now, Round: m.round, Accuracy: acc, Participants: participants,
	})
	if e.RoundHook != nil {
		e.RoundHook(m.spec.ID, m.round, acc, now)
	}
	if e.AckHook != nil {
		e.AckHook(m.spec.ID, m.epoch, m.round, participants, true)
	}
	reached := m.spec.TargetAccuracy > 0 && acc >= m.spec.TargetAccuracy
	if reached || m.round >= m.spec.MaxRounds {
		m.done = true
		m.progress.Done = now
		m.progress.Reached = reached
		// The committed round is journaled before anything is replicated or
		// broadcast: a crash from here on recovers to this round, not the
		// previous one. The final replica carries Done, which also stops the
		// replica holders' ownership-probe loops.
		e.journal(walMaster{Rep: e.masterImage(m)})
		e.replicateRound(m)
		return
	}
	e.journal(walMaster{Rep: e.masterImage(m)})
	e.replicateRound(m)
	e.beginRound(m)
}

// retryRound re-runs a round that stayed below quorum through every hold.
// Holding longer cannot help: the missing client updates were typically
// merged into partials that died with a failed interior aggregator, and
// once partials have merged no resend can be deduplicated — a raw resend
// risks counting a client twice. So the master aborts the round's
// aggregation instance wholesale: it bumps its mastership epoch (exactly
// like a failover promotion onto itself), which makes every hop's
// upstream epoch gate discard the aborted instance's partials — dropped,
// never merged — and re-announces the same round number. Workers retrain
// deterministically (the per-round rng is derived from (seed, round,
// client)) and resubmit under the new epoch, so the retried commit is
// bit-identical to the round the fault erased. completeRound allows one
// retry per round, keeping liveness bounded.
func (e *Engine) retryRound(m *masterState, round int) {
	m.retriedRound = round
	m.epoch++
	m.round = round - 1 // beginRound advances it back to round
	m.inFlight = false
	m.pending = updateAgg{}
	m.holds = 0
	e.env.Metrics().Counter("fl.round_retries").Inc()
	// Journal the epoch bump before any network action, like a promotion:
	// a crash mid-retry must not recover into the aborted epoch.
	e.journal(walMaster{Rep: e.masterImage(m)})
	// The bumped epoch restarts the multicast stream; members clear their
	// per-round aggregation state when the re-announcement reaches them.
	e.ps.CreateWithConfig(m.spec.ID, pubsub.TreeConfig{
		MaxFanout:  m.spec.TreeFanout,
		AggTimeout: m.spec.RoundDeadline,
		Epoch:      uint64(m.epoch),
	})
	// This node's own aggRound for the aborted instance is flushed; the
	// re-announced round must aggregate fresh.
	e.ps.ResetRounds(m.spec.ID)
	e.replicateRound(m)
	e.beginRound(m)
}

func sameSizes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
