package simnet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"totoro/internal/transport"
)

type nopHandler struct{}

func (nopHandler) Receive(transport.Addr, any) {}

func churnNet(n int, seed int64) *Network {
	net := New(Config{Seed: seed})
	for i := 0; i < n; i++ {
		net.AddNode(transport.Addr(fmt.Sprintf("n%d", i)), func(transport.Env) transport.Handler {
			return nopHandler{}
		})
	}
	return net
}

// churnTrace runs a churn process for a fixed window and returns the
// ordered (event, addr, time) trace.
func churnTrace(seed int64, exempt []transport.Addr) []string {
	net := churnNet(40, 7)
	var trace []string
	ch := net.StartChurn(ChurnConfig{
		Seed:      seed,
		FailEvery: 200 * time.Millisecond,
		Downtime:  time.Second,
		Exempt:    exempt,
		OnFail: func(a transport.Addr, now time.Duration) {
			trace = append(trace, fmt.Sprintf("fail %s @%v", a, now))
		},
		OnRevive: func(a transport.Addr, now time.Duration) {
			trace = append(trace, fmt.Sprintf("revive %s @%v", a, now))
		},
	})
	net.Run(10 * time.Second)
	ch.Stop()
	return trace
}

func TestChurnIsDeterministic(t *testing.T) {
	a := churnTrace(3, nil)
	b := churnTrace(3, nil)
	if len(a) == 0 {
		t.Fatal("no churn events in 10s at 200ms mean interval")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// A different seed must give a different schedule.
	c := churnTrace(4, nil)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different churn seeds produced identical traces")
	}
}

func TestChurnRespectsExemptSet(t *testing.T) {
	exempt := []transport.Addr{"n0", "n1", "n2"}
	trace := churnTrace(5, exempt)
	if len(trace) == 0 {
		t.Fatal("no churn events recorded")
	}
	for _, ev := range trace {
		for _, a := range exempt {
			if strings.HasPrefix(ev, fmt.Sprintf("fail %s ", a)) {
				t.Fatalf("exempt node churned: %q", ev)
			}
		}
	}
}

func TestChurnRevivesAndStops(t *testing.T) {
	net := churnNet(30, 11)
	ch := net.StartChurn(ChurnConfig{
		Seed:      1,
		FailEvery: 100 * time.Millisecond,
		Downtime:  300 * time.Millisecond,
	})
	net.Run(5 * time.Second)
	if ch.Fails == 0 || ch.Revives == 0 {
		t.Fatalf("fails=%d revives=%d want both > 0", ch.Fails, ch.Revives)
	}
	ch.Stop()
	fails := ch.Fails
	net.Run(net.Now() + 5*time.Second)
	if ch.Fails != fails {
		t.Fatalf("failures injected after Stop: %d -> %d", fails, ch.Fails)
	}
	// The process must terminate: once stopped, its timers stop chaining.
	net.RunUntilIdle()
}

func TestChurnNeverKillsEveryone(t *testing.T) {
	net := churnNet(10, 13)
	ch := net.StartChurn(ChurnConfig{
		Seed:      2,
		FailEvery: 10 * time.Millisecond, // brutal: no revive
		Exempt:    []transport.Addr{"n3"},
	})
	net.Run(20 * time.Second)
	ch.Stop()
	if !net.Alive("n3") {
		t.Fatal("exempt node was killed")
	}
	if ch.Down() != 9 {
		t.Fatalf("down=%d want 9 (everyone but the exempt node)", ch.Down())
	}
}
