package simnet

import (
	"testing"
	"time"

	"totoro/internal/transport"
)

type bigMsg struct{ n int }

func (b bigMsg) WireSize() int { return b.n }

func TestBandwidthSerializesIngress(t *testing.T) {
	// 10 senders each ship 1000 bytes to a sink limited to 1000 B/s: the
	// last delivery must land around 10 seconds, not in parallel.
	net := New(Config{Latency: ConstLatency(0)})
	var lastAt time.Duration
	var got int
	sinkEnv := net.AddNode("sink", func(e transport.Env) transport.Handler {
		return transport.HandlerFunc(func(from transport.Addr, msg any) {
			got++
			lastAt = e.Now()
		})
	})
	_ = sinkEnv
	net.SetBandwidth("sink", 1000)
	for i := 0; i < 10; i++ {
		addr := transport.Addr(string(rune('a' + i)))
		env := net.AddNode(addr, func(e transport.Env) transport.Handler {
			return transport.HandlerFunc(func(transport.Addr, any) {})
		})
		env.Send("sink", bigMsg{n: 1000})
	}
	net.RunUntilIdle()
	if got != 10 {
		t.Fatalf("got %d deliveries", got)
	}
	if lastAt < 9*time.Second || lastAt > 11*time.Second {
		t.Fatalf("last delivery at %v want ~10s", lastAt)
	}
}

func TestBandwidthSerializesEgress(t *testing.T) {
	// One sender with 1000 B/s egress sends two 1000-byte messages to two
	// unconstrained sinks: second arrives ~2s.
	net := New(Config{Latency: ConstLatency(0)})
	arrivals := map[transport.Addr]time.Duration{}
	mk := func(addr transport.Addr) {
		net.AddNode(addr, func(e transport.Env) transport.Handler {
			return transport.HandlerFunc(func(transport.Addr, any) {
				arrivals[addr] = e.Now()
			})
		})
	}
	mk("s1")
	mk("s2")
	src := net.AddNode("src", func(e transport.Env) transport.Handler {
		return transport.HandlerFunc(func(transport.Addr, any) {})
	})
	net.SetBandwidth("src", 1000)
	src.Send("s1", bigMsg{n: 1000})
	src.Send("s2", bigMsg{n: 1000})
	net.RunUntilIdle()
	if arrivals["s1"] < 900*time.Millisecond || arrivals["s1"] > 1100*time.Millisecond {
		t.Fatalf("first arrival %v want ~1s", arrivals["s1"])
	}
	if arrivals["s2"] < 1900*time.Millisecond || arrivals["s2"] > 2100*time.Millisecond {
		t.Fatalf("second arrival %v want ~2s", arrivals["s2"])
	}
}

func TestUnlimitedBandwidthUnchanged(t *testing.T) {
	net := New(Config{Latency: ConstLatency(time.Millisecond)})
	var at time.Duration
	net.AddNode("sink", func(e transport.Env) transport.Handler {
		return transport.HandlerFunc(func(transport.Addr, any) { at = e.Now() })
	})
	src := net.AddNode("src", func(e transport.Env) transport.Handler {
		return transport.HandlerFunc(func(transport.Addr, any) {})
	})
	src.Send("sink", bigMsg{n: 1 << 30})
	net.RunUntilIdle()
	if at != time.Millisecond {
		t.Fatalf("delivery at %v want 1ms", at)
	}
}

func TestDefaultBandwidthApplied(t *testing.T) {
	net := New(Config{Latency: ConstLatency(0), DefaultBandwidth: 100})
	var at time.Duration
	net.AddNode("sink", func(e transport.Env) transport.Handler {
		return transport.HandlerFunc(func(transport.Addr, any) { at = e.Now() })
	})
	src := net.AddNode("src", func(e transport.Env) transport.Handler {
		return transport.HandlerFunc(func(transport.Addr, any) {})
	})
	src.Send("sink", bigMsg{n: 100})
	net.RunUntilIdle()
	// 1s egress + 1s ingress at 100 B/s.
	if at < 1900*time.Millisecond || at > 2100*time.Millisecond {
		t.Fatalf("delivery at %v want ~2s", at)
	}
}
