package simnet

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"totoro/internal/transport"
)

// Nemesis is a Jepsen-style fault scheduler: a seeded, composable script
// of fault phases driven over virtual time on the network's own event
// loop. Each phase activates a fault at its start time and undoes it at
// start+duration; phases overlap freely (partition + link faults + kills
// at once), and victim selection draws from the nemesis seed over the
// sorted address list, so a (seed, spec) pair replays bit-identically.
//
// The schedule spec is a ';'-separated list of phases:
//
//	kind@start+duration[/key=value,key=value,...]
//
// with Go duration syntax, e.g.
//
//	partition@2s+3s/frac=0.3;drop@1s+6s/p=0.2;kill@4s+2s/n=2
//
// Phase kinds and their parameters (defaults in parentheses):
//
//	partition  symmetric split: a random frac (0.3) of eligible nodes is
//	           cut from the rest in both directions, healed at phase end
//	oneway     asymmetric partition: same split, but only dir=out (their
//	           outbound) or dir=in (their inbound) messages are blocked
//	isolate    n (1) random nodes lose all connectivity, then heal
//	drop       every link drops messages with probability p (0.1)
//	dup        every link duplicates messages with probability p (0.05)
//	reorder    every link holds messages back with probability p (0.2)
//	           for a random delay in [0, w) (w=20ms)
//	delay      every link gains fixed extra one-way delay d (50ms)
//	slow       n (1) random nodes become stragglers: extra delay d
//	           (100ms) on all their links, both directions
//	kill       n (1) random nodes crash at phase start; at phase end they
//	           crash-restart (restart=true) or revive with memory intact
//	           (restart=false)
//	disk       n (1) random nodes' durable stores start failing for the
//	           phase (delivered through NemesisConfig.OnDisk; the network
//	           itself has no disks)
type Nemesis struct {
	net    *Network
	cfg    NemesisConfig
	rng    *rand.Rand
	exempt map[transport.Addr]bool

	// Phases counts activations so far; Kills/Restarts/Revives count
	// node-level events the scheduler injected.
	Phases, Kills, Restarts, Revives int
}

// NemesisConfig parameterizes a Nemesis run.
type NemesisConfig struct {
	// Seed drives victim selection and any per-phase randomness,
	// independent of the network seed, so fault schedules compose with
	// other seeded processes (churn) without perturbing them.
	Seed int64
	// Spec is the schedule in the textual grammar above. Ignored when
	// Phases is set.
	Spec string
	// Phases is the parsed schedule (ParseSchedule output or hand-built).
	Phases []Phase
	// Exempt nodes are never killed, isolated, slowed, or disk-failed,
	// and always land on the majority side of a partition (harnesses
	// protect data holders so chaos measures protocol recovery, not data
	// loss).
	Exempt []transport.Addr
	// OnDisk delivers "disk" phases: called with active=true at phase
	// start and active=false at heal, once per victim. Nil disables the
	// kind (phases are skipped).
	OnDisk func(addr transport.Addr, active bool)
	// OnRestart fires after a kill phase crash-restarts a node (the
	// harness completes recovery: re-attach shards, rejoin, resume).
	OnRestart func(addr transport.Addr, now time.Duration)
	// OnPhase observes every activation/heal (logging, assertions).
	OnPhase func(ph Phase, active bool, victims []transport.Addr)
}

// Phase is one scheduled fault: a kind, a start time, a duration, and
// kind-specific parameters.
type Phase struct {
	Kind   string
	Start  time.Duration
	Dur    time.Duration
	Params map[string]string
}

// String renders the phase back in spec syntax.
func (p Phase) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%v+%v", p.Kind, p.Start, p.Dur)
	if len(p.Params) > 0 {
		keys := make([]string, 0, len(p.Params))
		for k := range p.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sep := "/"
		for _, k := range keys {
			fmt.Fprintf(&b, "%s%s=%s", sep, k, p.Params[k])
			sep = ","
		}
	}
	return b.String()
}

func (p Phase) float(key string, def float64) float64 {
	if s, ok := p.Params[key]; ok {
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return def
}

func (p Phase) intp(key string, def int) int {
	if s, ok := p.Params[key]; ok {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return def
}

func (p Phase) duration(key string, def time.Duration) time.Duration {
	if s, ok := p.Params[key]; ok {
		if v, err := time.ParseDuration(s); err == nil {
			return v
		}
	}
	return def
}

func (p Phase) boolean(key string, def bool) bool {
	if s, ok := p.Params[key]; ok {
		if v, err := strconv.ParseBool(s); err == nil {
			return v
		}
	}
	return def
}

var nemesisKinds = map[string]bool{
	"partition": true, "oneway": true, "isolate": true,
	"drop": true, "dup": true, "reorder": true, "delay": true,
	"slow": true, "kill": true, "disk": true,
}

// ParseSchedule parses the nemesis spec grammar. It validates kinds,
// times, and parameter syntax; unknown parameter keys are rejected too,
// so a typo fails the run instead of silently injecting nothing.
func ParseSchedule(spec string) ([]Phase, error) {
	var phases []Phase
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ph, err := parsePhase(part)
		if err != nil {
			return nil, fmt.Errorf("nemesis spec %q: %w", part, err)
		}
		phases = append(phases, ph)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("nemesis spec %q: no phases", spec)
	}
	return phases, nil
}

var phaseParamKeys = map[string]map[string]bool{
	"partition": {"frac": true},
	"oneway":    {"frac": true, "dir": true},
	"isolate":   {"n": true},
	"drop":      {"p": true},
	"dup":       {"p": true},
	"reorder":   {"p": true, "w": true},
	"delay":     {"d": true},
	"slow":      {"n": true, "d": true},
	"kill":      {"n": true, "restart": true},
	"disk":      {"n": true},
}

func parsePhase(s string) (Phase, error) {
	kind, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Phase{}, fmt.Errorf("missing '@' (want kind@start+dur)")
	}
	kind = strings.TrimSpace(kind)
	if !nemesisKinds[kind] {
		return Phase{}, fmt.Errorf("unknown kind %q", kind)
	}
	timing, params, _ := strings.Cut(rest, "/")
	startS, durS, ok := strings.Cut(timing, "+")
	if !ok {
		return Phase{}, fmt.Errorf("missing '+' (want kind@start+dur)")
	}
	start, err := time.ParseDuration(strings.TrimSpace(startS))
	if err != nil {
		return Phase{}, fmt.Errorf("bad start: %w", err)
	}
	dur, err := time.ParseDuration(strings.TrimSpace(durS))
	if err != nil {
		return Phase{}, fmt.Errorf("bad duration: %w", err)
	}
	if start < 0 || dur <= 0 {
		return Phase{}, fmt.Errorf("want start >= 0 and duration > 0")
	}
	ph := Phase{Kind: kind, Start: start, Dur: dur}
	if params != "" {
		ph.Params = make(map[string]string)
		allowed := phaseParamKeys[kind]
		for _, kv := range strings.Split(params, ",") {
			k, v, ok := strings.Cut(kv, "=")
			k = strings.TrimSpace(k)
			if !ok || k == "" || v == "" {
				return Phase{}, fmt.Errorf("bad parameter %q (want key=value)", kv)
			}
			if !allowed[k] {
				return Phase{}, fmt.Errorf("kind %s does not take parameter %q", kind, k)
			}
			ph.Params[k] = strings.TrimSpace(v)
		}
	}
	return ph, nil
}

// StartNemesis schedules the configured fault phases on the network's
// event loop. The spec (or Phases) is validated up front; the returned
// Nemesis reports injection counts as the schedule plays out.
func (n *Network) StartNemesis(cfg NemesisConfig) (*Nemesis, error) {
	phases := cfg.Phases
	if phases == nil {
		var err error
		phases, err = ParseSchedule(cfg.Spec)
		if err != nil {
			return nil, err
		}
	}
	nm := &Nemesis{
		net:    n,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		exempt: make(map[transport.Addr]bool, len(cfg.Exempt)),
	}
	for _, a := range cfg.Exempt {
		nm.exempt[a] = true
	}
	for _, ph := range phases {
		ph := ph
		n.schedule(ph.Start-n.now, func() { nm.activate(ph) })
	}
	return nm, nil
}

// eligible lists the alive, non-exempt nodes in deterministic order.
func (nm *Nemesis) eligible() []transport.Addr {
	var out []transport.Addr
	for _, a := range nm.net.Addrs() {
		if !nm.exempt[a] && nm.net.Alive(a) {
			out = append(out, a)
		}
	}
	return out
}

// pick draws k distinct eligible victims (fewer if the population is
// smaller), in a seeded order.
func (nm *Nemesis) pick(k int) []transport.Addr {
	cand := nm.eligible()
	if k > len(cand) {
		k = len(cand)
	}
	perm := nm.rng.Perm(len(cand))
	out := make([]transport.Addr, 0, k)
	for _, i := range perm[:k] {
		out = append(out, cand[i])
	}
	return out
}

// split partitions the population: a frac share of eligible nodes on the
// minority side, everyone else (exempt and dead included) on the other.
func (nm *Nemesis) split(frac float64) (minority, rest []transport.Addr) {
	cand := nm.eligible()
	k := int(frac * float64(len(cand)))
	if k < 1 {
		k = 1
	}
	if k >= len(cand) {
		k = len(cand) - 1
	}
	if k < 1 {
		return nil, nil
	}
	minority = nm.pick(k)
	inMinority := make(map[transport.Addr]bool, len(minority))
	for _, a := range minority {
		inMinority[a] = true
	}
	for _, a := range nm.net.Addrs() {
		if !inMinority[a] {
			rest = append(rest, a)
		}
	}
	return minority, rest
}

// activate applies one phase and schedules its heal.
func (nm *Nemesis) activate(ph Phase) {
	var victims []transport.Addr
	var heal func()
	switch ph.Kind {
	case "partition":
		minority, rest := nm.split(ph.float("frac", 0.3))
		if minority == nil {
			return
		}
		victims = minority
		heal = nm.net.Partition(minority, rest)
	case "oneway":
		minority, rest := nm.split(ph.float("frac", 0.3))
		if minority == nil {
			return
		}
		victims = minority
		if ph.Params["dir"] == "in" {
			heal = nm.net.BlockOneWay(rest, minority)
		} else {
			heal = nm.net.BlockOneWay(minority, rest)
		}
	case "isolate":
		victims = nm.pick(ph.intp("n", 1))
		var rest []transport.Addr
		cut := AddrSet(victims)
		for _, a := range nm.net.Addrs() {
			if !cut[a] {
				rest = append(rest, a)
			}
		}
		heal = nm.net.Partition(victims, rest)
	case "drop":
		heal = nm.net.AddLinkRule(LinkRule{Drop: ph.float("p", 0.1)})
	case "dup":
		heal = nm.net.AddLinkRule(LinkRule{Dup: ph.float("p", 0.05)})
	case "reorder":
		heal = nm.net.AddLinkRule(LinkRule{
			Reorder:       ph.float("p", 0.2),
			ReorderWindow: ph.duration("w", defaultReorderWindow),
		})
	case "delay":
		heal = nm.net.AddLinkRule(LinkRule{Delay: ph.duration("d", 50*time.Millisecond)})
	case "slow":
		victims = nm.pick(ph.intp("n", 1))
		set := AddrSet(victims)
		heal = nm.net.AddLinkRule(LinkRule{
			From:          set,
			Bidirectional: true,
			Delay:         ph.duration("d", 100*time.Millisecond),
		})
	case "kill":
		victims = nm.pick(ph.intp("n", 1))
		restart := ph.boolean("restart", true)
		for _, a := range victims {
			nm.net.Fail(a)
			nm.Kills++
		}
		vs := victims
		heal = func() {
			for _, a := range vs {
				if restart {
					nm.net.Restart(a)
					nm.Restarts++
					if nm.cfg.OnRestart != nil {
						nm.cfg.OnRestart(a, nm.net.Now())
					}
				} else {
					nm.net.Revive(a)
					nm.Revives++
				}
			}
		}
	case "disk":
		if nm.cfg.OnDisk == nil {
			return
		}
		victims = nm.pick(ph.intp("n", 1))
		for _, a := range victims {
			nm.cfg.OnDisk(a, true)
		}
		vs := victims
		heal = func() {
			for _, a := range vs {
				nm.cfg.OnDisk(a, false)
			}
		}
	default:
		return
	}
	nm.Phases++
	if nm.cfg.OnPhase != nil {
		nm.cfg.OnPhase(ph, true, victims)
	}
	nm.net.schedule(ph.Dur, func() {
		heal()
		if nm.cfg.OnPhase != nil {
			nm.cfg.OnPhase(ph, false, victims)
		}
	})
}
