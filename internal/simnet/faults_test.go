package simnet

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"totoro/internal/transport"
)

func TestPartitionBlocksAndHeals(t *testing.T) {
	net, ra, rb, ea, eb := twoNodes(t, Config{Seed: 1})
	heal := net.Partition([]transport.Addr{"a"}, []transport.Addr{"b"})
	ea.Send("b", "lost")
	eb.Send("a", "lost too")
	net.RunUntilIdle()
	if len(rb.got) != 0 || len(ra.got) != 0 {
		t.Fatalf("partitioned messages delivered: a=%v b=%v", ra.got, rb.got)
	}
	if got := net.Metrics().Counter("net.dropped_partition").Value(); got != 2 {
		t.Fatalf("net.dropped_partition = %d want 2", got)
	}
	if net.Reachable("a", "b") {
		t.Fatal("Reachable true across a partition")
	}
	heal()
	heal() // idempotent
	if !net.Reachable("a", "b") {
		t.Fatal("Reachable false after heal")
	}
	ea.Send("b", "through")
	net.RunUntilIdle()
	if len(rb.got) != 1 || rb.got[0] != "through" {
		t.Fatalf("post-heal delivery: %v", rb.got)
	}
}

func TestOverlappingPartitionsComposeViaRefcount(t *testing.T) {
	net, _, rb, ea, _ := twoNodes(t, Config{Seed: 1})
	h1 := net.Partition([]transport.Addr{"a"}, []transport.Addr{"b"})
	h2 := net.Partition([]transport.Addr{"a"}, []transport.Addr{"b"})
	h1()
	ea.Send("b", "still blocked")
	net.RunUntilIdle()
	if len(rb.got) != 0 {
		t.Fatalf("link healed while second partition still active: %v", rb.got)
	}
	h2()
	ea.Send("b", "open")
	net.RunUntilIdle()
	if len(rb.got) != 1 {
		t.Fatalf("link still blocked after both heals: %v", rb.got)
	}
}

func TestOneWayPartitionIsAsymmetric(t *testing.T) {
	net, ra, rb, ea, eb := twoNodes(t, Config{Seed: 1})
	heal := net.BlockOneWay([]transport.Addr{"a"}, []transport.Addr{"b"})
	defer heal()
	ea.Send("b", "blocked")
	eb.Send("a", "passes")
	net.RunUntilIdle()
	if len(rb.got) != 0 {
		t.Fatalf("a→b should be blocked, b got %v", rb.got)
	}
	if len(ra.got) != 1 || ra.got[0] != "passes" {
		t.Fatalf("b→a should pass, a got %v", ra.got)
	}
	if net.Reachable("a", "b") {
		t.Fatal("Reachable must be false when either direction is blocked")
	}
}

func TestLinkRuleDropCountsCause(t *testing.T) {
	net, _, rb, ea, _ := twoNodes(t, Config{Seed: 7})
	remove := net.AddLinkRule(LinkRule{Drop: 1.0})
	ea.Send("b", "gone")
	net.RunUntilIdle()
	if len(rb.got) != 0 {
		t.Fatalf("drop rule leaked: %v", rb.got)
	}
	if got := net.Metrics().Counter("net.dropped_fault").Value(); got != 1 {
		t.Fatalf("net.dropped_fault = %d want 1", got)
	}
	if net.Dropped() != 1 {
		t.Fatalf("net.dropped total = %d want 1", net.Dropped())
	}
	remove()
	remove() // idempotent
	ea.Send("b", "back")
	net.RunUntilIdle()
	if len(rb.got) != 1 {
		t.Fatalf("rule still active after removal: %v", rb.got)
	}
}

func TestLinkRuleDuplicates(t *testing.T) {
	net, _, rb, ea, _ := twoNodes(t, Config{Seed: 7})
	defer net.AddLinkRule(LinkRule{Dup: 1.0})()
	ea.Send("b", "twice")
	net.RunUntilIdle()
	if len(rb.got) != 2 || rb.got[0] != "twice" || rb.got[1] != "twice" {
		t.Fatalf("want 2 copies, got %v", rb.got)
	}
	if got := net.Metrics().Counter("net.dup_injected").Value(); got != 1 {
		t.Fatalf("net.dup_injected = %d want 1", got)
	}
	// The sender transmitted once; the receiver really received twice.
	if tr := net.TrafficOf("a"); tr.MsgsOut != 1 {
		t.Fatalf("sender msgsOut = %d want 1", tr.MsgsOut)
	}
	if tr := net.TrafficOf("b"); tr.MsgsIn != 2 {
		t.Fatalf("receiver msgsIn = %d want 2", tr.MsgsIn)
	}
}

func TestLinkRuleReorderSwapsDelivery(t *testing.T) {
	// Hold back only messages carrying rule-matched links with certainty and
	// a wide window: with enough sends, at least one later message must
	// overtake an earlier one.
	net, _, rb, ea, _ := twoNodes(t, Config{Seed: 3})
	defer net.AddLinkRule(LinkRule{Reorder: 0.5, ReorderWindow: 50 * time.Millisecond})()
	for i := 0; i < 20; i++ {
		ea.Send("b", fmt.Sprintf("m%02d", i))
	}
	net.RunUntilIdle()
	if len(rb.got) != 20 {
		t.Fatalf("got %d messages want 20", len(rb.got))
	}
	inOrder := true
	for i := 1; i < len(rb.got); i++ {
		if rb.got[i] < rb.got[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("no reordering observed under a certain-reorder rule")
	}
	if net.Metrics().Counter("net.reorder_injected").Value() == 0 {
		t.Fatal("net.reorder_injected stayed zero")
	}
}

func TestLinkRuleDelayAddsLatency(t *testing.T) {
	net, _, rb, ea, _ := twoNodes(t, Config{Latency: ConstLatency(time.Millisecond)})
	defer net.AddLinkRule(LinkRule{Delay: 30 * time.Millisecond})()
	ea.Send("b", "slow")
	net.RunUntilIdle()
	if rb.at[0] != 31*time.Millisecond {
		t.Fatalf("delivered at %v want 31ms", rb.at[0])
	}
}

func TestLinkRuleOneDirectional(t *testing.T) {
	net, ra, rb, ea, eb := twoNodes(t, Config{Seed: 5})
	defer net.AddLinkRule(LinkRule{From: AddrSet([]transport.Addr{"a"}), Drop: 1.0})()
	ea.Send("b", "dropped")
	eb.Send("a", "fine")
	net.RunUntilIdle()
	if len(rb.got) != 0 {
		t.Fatalf("a→b rule leaked: %v", rb.got)
	}
	if len(ra.got) != 1 {
		t.Fatalf("b→a should be clean: %v", ra.got)
	}
}

func TestDeadDestinationCountsCause(t *testing.T) {
	net, _, _, ea, _ := twoNodes(t, Config{})
	net.Fail("b")
	ea.Send("b", "void")
	net.RunUntilIdle()
	if got := net.Metrics().Counter("net.dropped_dead").Value(); got != 1 {
		t.Fatalf("net.dropped_dead = %d want 1", got)
	}
}

func TestLossCountsCause(t *testing.T) {
	net, _, _, ea, _ := twoNodes(t, Config{Seed: 2, Loss: func(a, b transport.Addr) float64 { return 1 }})
	ea.Send("b", "lost")
	net.RunUntilIdle()
	if got := net.Metrics().Counter("net.dropped_loss").Value(); got != 1 {
		t.Fatalf("net.dropped_loss = %d want 1", got)
	}
}

func TestInvariantCheckerFailsRunWithSeed(t *testing.T) {
	var got *InvariantViolation
	net, _, _, ea, _ := twoNodes(t, Config{
		Seed:        42,
		OnViolation: func(v *InvariantViolation) { got = v },
	})
	healthy := true
	net.AddInvariant(func() error {
		if healthy {
			return nil
		}
		return errors.New("round regressed")
	})
	ea.Send("b", "ok")
	net.RunUntilIdle()
	if got != nil {
		t.Fatalf("violation before fault: %v", got)
	}
	healthy = false
	ea.Send("b", "trip")
	net.RunUntilIdle()
	if got == nil {
		// The tick gate only runs checks when time advances; quiesce must
		// catch anything the last batch left behind.
		net.CheckInvariants()
	}
	if got == nil {
		t.Fatal("invariant violation not detected")
	}
	if got.Seed != 42 {
		t.Fatalf("violation seed = %d want 42", got.Seed)
	}
	if !strings.Contains(got.Error(), "round regressed") || !strings.Contains(got.Error(), "seed 42") {
		t.Fatalf("violation message lacks cause or seed: %s", got.Error())
	}
	if v := net.Violation(); v != got {
		t.Fatalf("Violation() = %v want the recorded one", v)
	}
}

func TestInvariantCheckerPanicsWithoutHandler(t *testing.T) {
	net := New(Config{Seed: 9})
	net.AddNode("a", func(e transport.Env) transport.Handler { return &recorder{env: e} })
	net.AddInvariant(func() error { return errors.New("split brain") })
	net.ScheduleAfter(time.Millisecond, func() {})
	defer func() {
		v, ok := recover().(*InvariantViolation)
		if !ok {
			t.Fatalf("expected *InvariantViolation panic, got %v", v)
		}
		if v.Seed != 9 {
			t.Fatalf("seed %d want 9", v.Seed)
		}
	}()
	net.RunUntilIdle()
	t.Fatal("no panic")
}

func TestParseScheduleRoundTrip(t *testing.T) {
	spec := "partition@2s+3s/frac=0.4; drop@1s+6s/p=0.2 ;kill@4s+2s/n=2,restart=true;disk@500ms+1s"
	phases, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(phases) != 4 {
		t.Fatalf("got %d phases", len(phases))
	}
	if phases[0].Kind != "partition" || phases[0].Start != 2*time.Second || phases[0].Dur != 3*time.Second {
		t.Fatalf("phase 0: %+v", phases[0])
	}
	if phases[0].float("frac", 0) != 0.4 {
		t.Fatalf("frac: %+v", phases[0])
	}
	if phases[2].intp("n", 0) != 2 || !phases[2].boolean("restart", false) {
		t.Fatalf("kill params: %+v", phases[2])
	}
	// String() renders back into parseable spec syntax.
	for _, ph := range phases {
		if _, err := ParseSchedule(ph.String()); err != nil {
			t.Fatalf("re-parse %q: %v", ph.String(), err)
		}
	}
}

func TestParseScheduleRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",
		"partition",
		"warp@1s+2s",
		"partition@1s",
		"partition@-1s+2s",
		"partition@1s+0s",
		"partition@1s+2s/bogus=1",
		"kill@1s+2s/n",
		"drop@x+2s/p=0.1",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func nemesisNet(t *testing.T, n int, seed int64) *Network {
	t.Helper()
	net := New(Config{Seed: seed})
	for i := 0; i < n; i++ {
		net.AddNode(transport.Addr(fmt.Sprintf("n%02d", i)), func(e transport.Env) transport.Handler {
			return &recorder{env: e}
		})
	}
	return net
}

func TestNemesisPartitionPhaseActivatesAndHeals(t *testing.T) {
	net := nemesisNet(t, 10, 1)
	var events []string
	nm, err := net.StartNemesis(NemesisConfig{
		Seed: 11,
		Spec: "partition@10ms+20ms/frac=0.3",
		OnPhase: func(ph Phase, active bool, victims []transport.Addr) {
			events = append(events, fmt.Sprintf("%s active=%v victims=%d", ph.Kind, active, len(victims)))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(5 * time.Millisecond)
	if net.PartitionedLinks() != 0 {
		t.Fatal("partition active before its start time")
	}
	net.Run(15 * time.Millisecond)
	if net.PartitionedLinks() == 0 {
		t.Fatal("partition not active mid-phase")
	}
	net.Run(50 * time.Millisecond)
	if net.PartitionedLinks() != 0 {
		t.Fatal("partition not healed after phase end")
	}
	if nm.Phases != 1 {
		t.Fatalf("phases run = %d", nm.Phases)
	}
	want := []string{"partition active=true victims=3", "partition active=false victims=3"}
	if len(events) != 2 || events[0] != want[0] || events[1] != want[1] {
		t.Fatalf("events %v want %v", events, want)
	}
}

func TestNemesisKillRestartsAtPhaseEnd(t *testing.T) {
	net := nemesisNet(t, 6, 2)
	var restarted []transport.Addr
	nm, err := net.StartNemesis(NemesisConfig{
		Seed:      3,
		Spec:      "kill@5ms+10ms/n=2",
		Exempt:    []transport.Addr{"n00"},
		OnRestart: func(a transport.Addr, now time.Duration) { restarted = append(restarted, a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(8 * time.Millisecond)
	down := 0
	for _, a := range net.Addrs() {
		if !net.Alive(a) {
			if a == "n00" {
				t.Fatal("exempt node killed")
			}
			down++
		}
	}
	if down != 2 {
		t.Fatalf("down = %d want 2", down)
	}
	net.Run(30 * time.Millisecond)
	for _, a := range net.Addrs() {
		if !net.Alive(a) {
			t.Fatalf("%s still down after phase end", a)
		}
	}
	if nm.Kills != 2 || nm.Restarts != 2 {
		t.Fatalf("kills=%d restarts=%d", nm.Kills, nm.Restarts)
	}
	if len(restarted) != 2 {
		t.Fatalf("OnRestart fired %d times", len(restarted))
	}
}

func TestNemesisDiskPhaseUsesHook(t *testing.T) {
	net := nemesisNet(t, 4, 2)
	calls := map[transport.Addr][]bool{}
	_, err := net.StartNemesis(NemesisConfig{
		Seed:   5,
		Spec:   "disk@2ms+6ms/n=2",
		OnDisk: func(a transport.Addr, active bool) { calls[a] = append(calls[a], active) },
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Run(20 * time.Millisecond)
	if len(calls) != 2 {
		t.Fatalf("disk hook hit %d nodes want 2", len(calls))
	}
	for a, seq := range calls {
		if len(seq) != 2 || !seq[0] || seq[1] {
			t.Fatalf("node %s saw %v want [true false]", a, seq)
		}
	}
}

func TestNemesisVictimSelectionDeterministic(t *testing.T) {
	run := func() []string {
		net := nemesisNet(t, 12, 4)
		var picked []string
		_, err := net.StartNemesis(NemesisConfig{
			Seed: 77,
			Spec: "partition@1ms+2ms/frac=0.25;kill@4ms+1ms/n=3;slow@6ms+2ms/n=2",
			OnPhase: func(ph Phase, active bool, victims []transport.Addr) {
				if active {
					for _, v := range victims {
						picked = append(picked, ph.Kind+":"+string(v))
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		net.Run(20 * time.Millisecond)
		return picked
	}
	a, b := run(), run()
	if len(a) == 0 || fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("victim selection not deterministic:\n%v\n%v", a, b)
	}
}
