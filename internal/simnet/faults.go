package simnet

import (
	"fmt"
	"strings"
	"time"

	"totoro/internal/obs"
	"totoro/internal/transport"
)

// Network-level fault injection: blocked links (partitions), per-link
// fault rules (drop/duplicate/reorder/extra-delay), and the always-on
// invariant hook. All of it runs inside the deterministic event loop —
// fault draws come from the network's seeded rng, so a (seed, schedule)
// pair replays bit-identically.

// linkKey identifies one directed link.
type linkKey struct{ from, to transport.Addr }

// LinkRule injects faults on every message crossing a matching link.
// Probabilities are per message and independent; a message can be both
// delayed and duplicated. Rules are applied in installation order and all
// matching rules apply.
type LinkRule struct {
	// From/To restrict the rule to links whose endpoint is in the set
	// (nil = any). A rule with both nil applies to every link.
	From, To map[transport.Addr]bool
	// Bidirectional also matches the reverse direction (To→From).
	Bidirectional bool
	// Drop is the probability the message is discarded (counted under
	// net.dropped_fault, distinct from Bernoulli link loss).
	Drop float64
	// Dup is the probability the network delivers a second copy of the
	// message after an extra reorder-window jitter.
	Dup float64
	// Reorder is the probability the message is held back by a random
	// extra delay in [0, ReorderWindow), letting later sends overtake it.
	Reorder float64
	// ReorderWindow bounds the reorder holdback (0 = 20ms).
	ReorderWindow time.Duration
	// Delay is a fixed extra one-way delay on every matching message
	// (slow links, stragglers).
	Delay time.Duration
}

const defaultReorderWindow = 20 * time.Millisecond

func (r *LinkRule) matches(from, to transport.Addr) bool {
	if matchEnds(r.From, from, r.To, to) {
		return true
	}
	return r.Bidirectional && matchEnds(r.From, to, r.To, from)
}

func matchEnds(fromSet map[transport.Addr]bool, from transport.Addr, toSet map[transport.Addr]bool, to transport.Addr) bool {
	if fromSet != nil && !fromSet[from] {
		return false
	}
	if toSet != nil && !toSet[to] {
		return false
	}
	return true
}

// AddrSet builds the set form LinkRule wants from a slice.
func AddrSet(addrs []transport.Addr) map[transport.Addr]bool {
	s := make(map[transport.Addr]bool, len(addrs))
	for _, a := range addrs {
		s[a] = true
	}
	return s
}

// AddLinkRule installs a fault rule and returns a remover. Removal is
// idempotent and leaves other rules untouched, so overlapping nemesis
// phases compose.
func (n *Network) AddLinkRule(r LinkRule) (remove func()) {
	rule := &r
	n.rules = append(n.rules, rule)
	removed := false
	return func() {
		if removed {
			return
		}
		removed = true
		for i, have := range n.rules {
			if have == rule {
				n.rules = append(n.rules[:i], n.rules[i+1:]...)
				return
			}
		}
	}
}

// block adds one directed blocked link (ref-counted so overlapping
// partitions compose: a link stays blocked until every blocker heals).
func (n *Network) block(from, to transport.Addr) {
	if n.blocked == nil {
		n.blocked = make(map[linkKey]int)
	}
	n.blocked[linkKey{from, to}]++
}

func (n *Network) unblock(from, to transport.Addr) {
	k := linkKey{from, to}
	if c := n.blocked[k]; c > 1 {
		n.blocked[k] = c - 1
	} else {
		delete(n.blocked, k)
	}
}

// Partition cuts the network into the given groups: every link between
// two different groups is blocked in both directions (nodes in no group
// keep all their links). It returns a heal function that removes exactly
// the blocks it added; partitions therefore compose and heal
// independently.
func (n *Network) Partition(groups ...[]transport.Addr) (heal func()) {
	var pairs []linkKey
	for i, g1 := range groups {
		for _, g2 := range groups[i+1:] {
			for _, a := range g1 {
				for _, b := range g2 {
					n.block(a, b)
					n.block(b, a)
					pairs = append(pairs, linkKey{a, b}, linkKey{b, a})
				}
			}
		}
	}
	healed := false
	return func() {
		if healed {
			return
		}
		healed = true
		for _, p := range pairs {
			n.unblock(p.from, p.to)
		}
	}
}

// BlockOneWay blocks only the from→to direction of every link between the
// two sets — an asymmetric partition: one side's messages vanish while the
// reverse path still works. Returns a heal function.
func (n *Network) BlockOneWay(from, to []transport.Addr) (heal func()) {
	var pairs []linkKey
	for _, a := range from {
		for _, b := range to {
			if a == b {
				continue
			}
			n.block(a, b)
			pairs = append(pairs, linkKey{a, b})
		}
	}
	healed := false
	return func() {
		if healed {
			return
		}
		healed = true
		for _, p := range pairs {
			n.unblock(p.from, p.to)
		}
	}
}

// Reachable reports whether messages can flow in both directions between
// a and b right now (both alive, neither direction blocked). Invariant
// checkers use it to scope safety assertions to nodes that can actually
// reconcile.
func (n *Network) Reachable(a, b transport.Addr) bool {
	if !n.Alive(a) || !n.Alive(b) {
		return false
	}
	if n.blocked[linkKey{a, b}] > 0 || n.blocked[linkKey{b, a}] > 0 {
		return false
	}
	return true
}

// PartitionedLinks reports how many directed links are currently blocked.
func (n *Network) PartitionedLinks() int { return len(n.blocked) }

// --- invariant checking ---

// InvariantViolation is a failed safety check: the virtual time it was
// detected, the network seed that deterministically replays it, the
// violated assertion, and the tail of the fleet's merged trace ring.
type InvariantViolation struct {
	At    time.Duration
	Seed  int64
	Err   error
	Trace []obs.Event
}

// Error formats the violation with everything a replay needs.
func (v *InvariantViolation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "simnet: invariant violated at %v (seed %d for deterministic replay): %v",
		v.At, v.Seed, v.Err)
	if len(v.Trace) > 0 {
		fmt.Fprintf(&b, "\ntrace tail (%d events):", len(v.Trace))
		for _, ev := range v.Trace {
			fmt.Fprintf(&b, "\n  %v %s %s key=%s from=%s to=%s %s",
				ev.At, ev.Node, ev.Kind, ev.Key, ev.From, ev.To, ev.Note)
		}
	}
	return b.String()
}

// violationTraceTail bounds the trace excerpt attached to a violation.
const violationTraceTail = 25

// AddInvariant registers an always-on safety check. All registered checks
// run after every event that advances the virtual clock and on
// CheckInvariants (quiesce). The first check to return an error ends the
// run: the violation is recorded and the Config.OnViolation handler fires
// (panicking with the violation when no handler is installed).
func (n *Network) AddInvariant(fn func() error) {
	n.invariants = append(n.invariants, fn)
}

// Violation returns the recorded invariant violation, if any.
func (n *Network) Violation() *InvariantViolation { return n.violation }

// CheckInvariants runs every registered check now — the quiesce check a
// harness issues after the schedule drains.
func (n *Network) CheckInvariants() { n.runInvariants() }

func (n *Network) runInvariants() {
	if n.violation != nil {
		return // first violation wins; the run is already failed
	}
	for _, fn := range n.invariants {
		if err := fn(); err != nil {
			trace := n.MergedTrace()
			if len(trace) > violationTraceTail {
				trace = trace[len(trace)-violationTraceTail:]
			}
			v := &InvariantViolation{At: n.now, Seed: n.cfg.Seed, Err: err, Trace: trace}
			n.violation = v
			if n.cfg.OnViolation != nil {
				n.cfg.OnViolation(v)
				return
			}
			panic(v)
		}
	}
}
