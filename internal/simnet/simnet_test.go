package simnet

import (
	"testing"
	"time"

	"totoro/internal/transport"
)

type recorder struct {
	env  transport.Env
	got  []string
	from []transport.Addr
	at   []time.Duration
}

func (r *recorder) Receive(from transport.Addr, msg any) {
	if s, ok := msg.(string); ok {
		r.got = append(r.got, s)
	} else {
		r.got = append(r.got, "")
	}
	r.from = append(r.from, from)
	r.at = append(r.at, r.env.Now())
}

func twoNodes(t *testing.T, cfg Config) (*Network, *recorder, *recorder, transport.Env, transport.Env) {
	t.Helper()
	net := New(cfg)
	ra, rb := &recorder{}, &recorder{}
	ea := net.AddNode("a", func(e transport.Env) transport.Handler { ra.env = e; return ra })
	eb := net.AddNode("b", func(e transport.Env) transport.Handler { rb.env = e; return rb })
	return net, ra, rb, ea, eb
}

func TestDeliveryWithLatency(t *testing.T) {
	net, _, rb, ea, _ := twoNodes(t, Config{Latency: ConstLatency(5 * time.Millisecond)})
	ea.Send("b", "hello")
	net.RunUntilIdle()
	if len(rb.got) != 1 || rb.got[0] != "hello" {
		t.Fatalf("got %v", rb.got)
	}
	if rb.at[0] != 5*time.Millisecond {
		t.Fatalf("delivered at %v want 5ms", rb.at[0])
	}
	if rb.from[0] != "a" {
		t.Fatalf("from %v", rb.from[0])
	}
}

func TestOrderingDeterministic(t *testing.T) {
	// Two messages with equal latency must arrive in send order.
	net, _, rb, ea, _ := twoNodes(t, Config{})
	ea.Send("b", "one")
	ea.Send("b", "two")
	net.RunUntilIdle()
	if len(rb.got) != 2 || rb.got[0] != "one" || rb.got[1] != "two" {
		t.Fatalf("got %v", rb.got)
	}
}

func TestLossDropsAll(t *testing.T) {
	net, _, rb, ea, _ := twoNodes(t, Config{
		Loss: func(a, b transport.Addr) float64 { return 1.0 },
	})
	ea.Send("b", "x")
	net.RunUntilIdle()
	if len(rb.got) != 0 {
		t.Fatalf("expected drop, got %v", rb.got)
	}
	if net.Dropped() != 1 {
		t.Fatalf("Dropped=%d", net.Dropped())
	}
}

func TestLossRate(t *testing.T) {
	net, _, rb, ea, _ := twoNodes(t, Config{
		Seed: 42,
		Loss: func(a, b transport.Addr) float64 { return 0.3 },
	})
	const total = 5000
	for i := 0; i < total; i++ {
		ea.Send("b", "x")
	}
	net.RunUntilIdle()
	gotRate := 1 - float64(len(rb.got))/total
	if gotRate < 0.27 || gotRate > 0.33 {
		t.Fatalf("loss rate %.3f not near 0.3", gotRate)
	}
}

func TestTimerFiresOnceAndCancel(t *testing.T) {
	net, ra, _, ea, _ := twoNodes(t, Config{})
	fired := 0
	ea.After(10*time.Millisecond, func() { fired++ })
	cancel := ea.After(20*time.Millisecond, func() { fired += 100 })
	cancel()
	net.RunUntilIdle()
	if fired != 1 {
		t.Fatalf("fired=%d want 1", fired)
	}
	_ = ra
	if net.Now() != 10*time.Millisecond {
		t.Fatalf("clock=%v", net.Now())
	}
}

func TestFailedNodeDropsMessagesAndTimers(t *testing.T) {
	net, _, rb, ea, eb := twoNodes(t, Config{})
	timerRan := false
	eb.After(5*time.Millisecond, func() { timerRan = true })
	net.Fail("b")
	ea.Send("b", "dead letter")
	net.RunUntilIdle()
	if len(rb.got) != 0 {
		t.Fatalf("dead node received %v", rb.got)
	}
	if timerRan {
		t.Fatal("dead node timer ran")
	}
	if net.Dropped() != 1 {
		t.Fatalf("Dropped=%d", net.Dropped())
	}
}

func TestReviveRestoresDelivery(t *testing.T) {
	net, _, rb, ea, _ := twoNodes(t, Config{})
	net.Fail("b")
	ea.Send("b", "lost")
	net.RunUntilIdle()
	net.Revive("b")
	ea.Send("b", "found")
	net.RunUntilIdle()
	if len(rb.got) != 1 || rb.got[0] != "found" {
		t.Fatalf("got %v", rb.got)
	}
}

type sizedMsg struct{ n int }

func (s sizedMsg) WireSize() int { return s.n }

func TestTrafficAccounting(t *testing.T) {
	net, _, _, ea, _ := twoNodes(t, Config{})
	ea.Send("b", sizedMsg{n: 1000})
	ea.Send("b", "plain") // charged DefaultMessageSize
	net.RunUntilIdle()
	ta, tb := net.TrafficOf("a"), net.TrafficOf("b")
	if ta.MsgsOut != 2 || ta.BytesOut != 1000+transport.DefaultMessageSize {
		t.Fatalf("a out: %+v", ta)
	}
	if tb.MsgsIn != 2 || tb.BytesIn != 1000+transport.DefaultMessageSize {
		t.Fatalf("b in: %+v", tb)
	}
	net.ResetTraffic()
	if got := net.TrafficOf("a"); got != (Traffic{}) {
		t.Fatalf("reset failed: %+v", got)
	}
}

func TestRunDeadlineStopsClock(t *testing.T) {
	net, _, _, ea, _ := twoNodes(t, Config{})
	ran := false
	ea.After(50*time.Millisecond, func() { ran = true })
	net.Run(20 * time.Millisecond)
	if ran {
		t.Fatal("event past deadline ran")
	}
	if net.Now() != 20*time.Millisecond {
		t.Fatalf("clock=%v", net.Now())
	}
	net.Run(60 * time.Millisecond)
	if !ran {
		t.Fatal("event did not run after extending deadline")
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		net := New(Config{Seed: 7, Loss: func(a, b transport.Addr) float64 { return 0.2 }})
		r := &recorder{}
		net.AddNode("sink", func(e transport.Env) transport.Handler { r.env = e; return r })
		src := net.AddNode("src", func(e transport.Env) transport.Handler { return transport.HandlerFunc(func(transport.Addr, any) {}) })
		for i := 0; i < 100; i++ {
			src.Send("sink", i)
		}
		net.RunUntilIdle()
		return append([]time.Duration(nil), r.at...)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged in count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d", i)
		}
	}
}

func TestAddrsSortedAndCount(t *testing.T) {
	net := New(Config{})
	for _, a := range []transport.Addr{"c", "a", "b"} {
		net.AddNode(a, func(e transport.Env) transport.Handler {
			return transport.HandlerFunc(func(transport.Addr, any) {})
		})
	}
	got := net.Addrs()
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("addrs %v", got)
	}
	if net.NumNodes() != 3 {
		t.Fatalf("NumNodes=%d", net.NumNodes())
	}
}

func TestSelfAndRandIndependentPerNode(t *testing.T) {
	net := New(Config{Seed: 1})
	var ea, eb transport.Env
	ea = net.AddNode("a", func(e transport.Env) transport.Handler {
		return transport.HandlerFunc(func(transport.Addr, any) {})
	})
	eb = net.AddNode("b", func(e transport.Env) transport.Handler {
		return transport.HandlerFunc(func(transport.Addr, any) {})
	})
	if ea.Self() != "a" || eb.Self() != "b" {
		t.Fatal("Self mismatch")
	}
	// Different nodes should have decorrelated random streams.
	same := 0
	for i := 0; i < 16; i++ {
		if ea.Rand().Uint64() == eb.Rand().Uint64() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("node RNGs identical")
	}
}
