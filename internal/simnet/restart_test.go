package simnet

import (
	"testing"
	"time"

	"totoro/internal/transport"
	"totoro/internal/wire/codec"
)

// echoHandler counts receives and can arm a timer that records firings.
type echoHandler struct {
	env      transport.Env
	received int
	fired    *[]string
	label    string
}

func (h *echoHandler) Receive(from transport.Addr, msg any) { h.received++ }

func (h *echoHandler) armTimer(d time.Duration) {
	h.env.After(d, func() {
		*h.fired = append(*h.fired, h.label)
	})
}

func TestRestartRebuildsStack(t *testing.T) {
	net := New(Config{Seed: 1})
	builds := 0
	var fired []string
	var cur *echoHandler
	net.AddNode("a", func(env transport.Env) transport.Handler {
		builds++
		cur = &echoHandler{env: env, fired: &fired, label: string(rune('0' + builds))}
		return cur
	})
	first := cur

	// Arm a timer in generation 0, then crash and restart before it fires.
	first.armTimer(50 * time.Millisecond)
	net.Fail("a")
	h := net.Restart("a")
	if builds != 2 {
		t.Fatalf("builds = %d, want 2 (restart must rebuild the stack)", builds)
	}
	if h != transport.Handler(cur) || cur == first {
		t.Fatalf("restart did not install a fresh handler")
	}
	// The new incarnation arms its own timer; only that one may fire.
	cur.armTimer(60 * time.Millisecond)
	net.Run(time.Second)
	if len(fired) != 1 || fired[0] != "2" {
		t.Fatalf("fired = %v, want only the post-restart timer", fired)
	}
	if !net.Alive("a") {
		t.Fatalf("restarted node not alive")
	}
}

func TestRestartedNodeReceives(t *testing.T) {
	net := New(Config{Seed: 1})
	var a *echoHandler
	var sink []string
	net.AddNode("a", func(env transport.Env) transport.Handler {
		a = &echoHandler{env: env, fired: &sink}
		return a
	})
	var benv transport.Env
	benv = net.AddNode("b", func(env transport.Env) transport.Handler {
		return &echoHandler{env: env, fired: &sink}
	})

	net.Fail("a")
	benv.Send("a", "lost") // dead destination: dropped
	net.Run(time.Second)
	net.Restart("a")
	benv.Send("a", "arrives")
	net.Run(2 * time.Second)
	if a.received != 1 {
		t.Fatalf("post-restart handler received %d messages, want 1", a.received)
	}
}

// TestRestartRNGDeterministic pins that a restarted node's random stream
// depends only on (network seed, address, generation) — two identical
// networks restart into identical streams, and a restart never replays the
// pre-crash stream.
func TestRestartRNGDeterministic(t *testing.T) {
	draw := func() (gen0, gen1 int64) {
		net := New(Config{Seed: 42})
		var env transport.Env
		env = net.AddNode("n", func(e transport.Env) transport.Handler {
			return &echoHandler{env: e}
		})
		gen0 = env.Rand().Int63()
		net.Restart("n")
		gen1 = env.Rand().Int63()
		return
	}
	a0, a1 := draw()
	b0, b1 := draw()
	if a0 != b0 || a1 != b1 {
		t.Fatalf("restart rng not reproducible: (%d,%d) vs (%d,%d)", a0, a1, b0, b1)
	}
	if a0 == a1 {
		t.Fatalf("restarted node replayed the pre-crash stream")
	}
}

type parityMsg struct {
	N    int
	Data []float64
}

func (parityMsg) WireSize() int { return 9999 } // estimate, deliberately wrong

func init() {
	codec.RegisterCodec(200, parityMsg{},
		func(e *codec.Enc, v any) {
			m := v.(parityMsg)
			e.Int(m.N)
			e.Float64s(m.Data)
		},
		func(d *codec.Dec) any { return parityMsg{N: d.Int(), Data: d.Float64s()} })
}

// TestExactSizesMatchWire pins the satellite contract: with a codec Sizer, a
// registered message is charged exactly the bytes tcpnet would write for
// it (uvarint length prefix + codec-v2 frame body), not its WireSize
// estimate — so simulated traffic counters equal live-deployment ones.
func TestExactSizesMatchWire(t *testing.T) {
	msg := parityMsg{N: 7, Data: []float64{1.5, -2.25, 3}}
	want, err := codec.FrameSize("a", msg)
	if err != nil {
		t.Fatal(err)
	}
	// Independently recompute from a raw encode, the way tcpnet frames it.
	enc := codec.NewEnc()
	enc.Addr("a")
	enc.Value(msg)
	body := len(enc.Bytes())
	enc.Free()
	prefix := 1
	for x := body; x >= 0x80; x >>= 7 {
		prefix++
	}
	if want != prefix+body {
		t.Fatalf("FrameSize = %d, want prefix %d + body %d", want, prefix, body)
	}

	net := New(Config{Seed: 1, Sizer: codec.FrameSize})
	env := net.AddNode("a", func(e transport.Env) transport.Handler { return &echoHandler{env: e} })
	net.AddNode("b", func(e transport.Env) transport.Handler { return &echoHandler{env: e} })
	env.Send("b", msg)
	net.Run(time.Second)
	if got := net.TrafficOf("a").BytesOut; got != int64(want) {
		t.Fatalf("ExactSizes charged %d bytes, want %d", got, want)
	}
	if got := net.TrafficOf("b").BytesIn; got != int64(want) {
		t.Fatalf("receiver charged %d bytes, want %d", got, want)
	}

	// Estimate mode keeps the WireSize contract.
	net2 := New(Config{Seed: 1})
	env2 := net2.AddNode("a", func(e transport.Env) transport.Handler { return &echoHandler{env: e} })
	net2.AddNode("b", func(e transport.Env) transport.Handler { return &echoHandler{env: e} })
	env2.Send("b", msg)
	net2.Run(time.Second)
	if got := net2.TrafficOf("a").BytesOut; got != 9999 {
		t.Fatalf("estimate mode charged %d bytes, want WireSize 9999", got)
	}
}

// TestChurnRestartMode drives a churn process in Restart mode and checks
// downed nodes come back as rebuilt stacks, not revived zombies.
func TestChurnRestartMode(t *testing.T) {
	net := New(Config{Seed: 7})
	builds := map[transport.Addr]int{}
	for _, a := range []transport.Addr{"a", "b", "c", "d"} {
		addr := a
		net.AddNode(addr, func(e transport.Env) transport.Handler {
			builds[addr]++
			return &echoHandler{env: e}
		})
	}
	var restarted []transport.Addr
	c := net.StartChurn(ChurnConfig{
		Seed:      11,
		FailEvery: 100 * time.Millisecond,
		Downtime:  50 * time.Millisecond,
		Restart:   true,
		OnRestart: func(addr transport.Addr, now time.Duration) {
			restarted = append(restarted, addr)
		},
	})
	net.Run(2 * time.Second)
	c.Stop()
	if c.Restarts == 0 || c.Revives != 0 {
		t.Fatalf("restarts=%d revives=%d, want restarts>0 and no revives", c.Restarts, c.Revives)
	}
	if len(restarted) != c.Restarts {
		t.Fatalf("OnRestart fired %d times, counter says %d", len(restarted), c.Restarts)
	}
	rebuilt := 0
	for _, n := range builds {
		rebuilt += n - 1
	}
	if rebuilt != c.Restarts {
		t.Fatalf("stacks rebuilt %d times, restarts %d", rebuilt, c.Restarts)
	}
}
