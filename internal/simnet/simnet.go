// Package simnet is a deterministic discrete-event simulator for edge
// networks.
//
// The paper evaluates Totoro by emulating up to 100k edge nodes on 500 EC2
// machines (§7.1). This package plays the same role in-process: each edge
// node is a transport.Handler driven by a single event loop with a virtual
// clock, so experiments over 10^5 nodes run deterministically in one
// process. The simulator models:
//
//   - per-link propagation latency (pluggable; the experiments derive it
//     from synthetic geographic coordinates, mirroring the paper's use of
//     the EUA dataset),
//   - stochastic Bernoulli link loss (the unreliable-edge-network model of
//     §5.1),
//   - node churn (nodes failing, leaving, and joining mid-run, §7.5), and
//   - per-node traffic accounting (bytes and messages in/out, Fig 7).
package simnet

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"totoro/internal/obs"
	"totoro/internal/transport"
)

// LatencyFunc returns the one-way propagation delay from a to b.
type LatencyFunc func(a, b transport.Addr) time.Duration

// LossFunc returns the probability in [0,1] that a message from a to b is
// dropped in flight.
type LossFunc func(a, b transport.Addr) float64

// Config parameterizes a Network.
type Config struct {
	// Seed drives all randomness in the network and in node Rand() sources.
	Seed int64
	// Latency models one-way link delay. Nil means ConstLatency(1ms).
	Latency LatencyFunc
	// Loss models link drop probability. Nil means no loss.
	Loss LossFunc
	// Observer, when set, sees every delivered message (src, dst, wire
	// size). Experiments use it for pairwise traffic accounting.
	Observer func(from, to transport.Addr, size int)
	// DefaultBandwidth is each node's egress/ingress bandwidth in
	// bytes/second; 0 means unlimited (no serialization delay). Individual
	// nodes can be overridden with SetBandwidth. Bandwidth is what turns a
	// node that many peers talk to simultaneously into a measurable
	// bottleneck — the effect behind the centralized-baseline comparison.
	DefaultBandwidth int64
	// TraceCap bounds each node's trace-event ring buffer; 0 means
	// obs.DefaultTraceCap.
	TraceCap int
	// Sizer, when set, charges each message its exact wire cost instead of
	// the WireSize estimate. Pass codec.FrameSize to make simulated byte
	// counters equal live-deployment (tcpnet) byte counters for every
	// registered type — injected as a function because the codec package
	// sits above this one in the dependency order. A Sizer error falls
	// back to the estimate. Nil by default: exact accounting encodes every
	// message, and existing experiments calibrated their bandwidth models
	// against the estimates.
	Sizer func(from transport.Addr, msg any) (int, error)
	// OnViolation handles invariant violations (see AddInvariant). Nil
	// panics with the *InvariantViolation, which carries the seed and a
	// trace excerpt for deterministic replay.
	OnViolation func(*InvariantViolation)
}

// ConstLatency returns a LatencyFunc with a fixed one-way delay.
func ConstLatency(d time.Duration) LatencyFunc {
	return func(a, b transport.Addr) time.Duration { return d }
}

// Traffic is a read-side view of one node's byte/message counters. The
// counters themselves live in the node's obs.Registry under the
// "net.msgs_in/out" and "net.bytes_in/out" names; this struct exists for
// experiment code that wants them as plain numbers.
type Traffic struct {
	MsgsIn, MsgsOut   int
	BytesIn, BytesOut int64
}

// Per-node traffic counter names in each node's registry, shared with the
// TCP transport so live and simulated nodes expose the same surface.
const (
	CtrMsgsIn   = transport.CtrMsgsIn
	CtrMsgsOut  = transport.CtrMsgsOut
	CtrBytesIn  = transport.CtrBytesIn
	CtrBytesOut = transport.CtrBytesOut
)

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type simNode struct {
	addr    transport.Addr
	handler transport.Handler
	rng     *rand.Rand
	alive   bool
	reg     *obs.Registry
	// build reconstructs the node's protocol stack (kept from AddNode so
	// Restart can reboot the node); env is the node's stable Env handle.
	build func(transport.Env) transport.Handler
	env   *env
	// gen counts reboots. Timers capture the generation they were armed in
	// and refuse to fire across a restart: the old incarnation's pending
	// callbacks must not drive the rebooted stack (or send as it).
	gen uint64
	// Cached traffic counter handles (the send hot path must not hit the
	// registry's name map per message).
	msgsIn, msgsOut, bytesIn, bytesOut *obs.Counter
	// bandwidth in bytes/sec; 0 = unlimited.
	bandwidth int64
	// egressFree/ingressFree are the times the node's NIC queues drain.
	egressFree  time.Duration
	ingressFree time.Duration
}

// txTime returns how long size bytes occupy this node's link.
func (n *simNode) txTime(size int) time.Duration {
	if n.bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(size) / float64(n.bandwidth) * float64(time.Second))
}

// Network is the simulator. It is not safe for concurrent use; the event
// loop is single-threaded by design for determinism.
type Network struct {
	cfg     Config
	now     time.Duration
	seq     uint64
	queue   eventQueue
	nodes   map[transport.Addr]*simNode
	rng     *rand.Rand
	latency LatencyFunc
	loss    LossFunc
	// reg holds network-level counters (net.delivered, net.dropped); the
	// per-node counters live in each node's own registry.
	reg       *obs.Registry
	delivered *obs.Counter
	// dropped is the total of all drop causes; the per-cause counters say
	// why a message died, not just that it did.
	dropped          *obs.Counter
	droppedLoss      *obs.Counter // Bernoulli link loss (Config.Loss)
	droppedDead      *obs.Counter // destination missing or crashed
	droppedPartition *obs.Counter // blocked link (Partition/BlockOneWay)
	droppedFault     *obs.Counter // LinkRule.Drop
	dupInjected      *obs.Counter // LinkRule.Dup duplicates delivered
	reorderInjected  *obs.Counter // LinkRule.Reorder holdbacks applied

	// Fault-injection state (faults.go): ref-counted blocked directed
	// links and the installed per-link fault rules.
	blocked map[linkKey]int
	rules   []*LinkRule

	// Always-on safety checks (faults.go): run after every event that
	// advances the virtual clock and at explicit quiesce checks. The
	// first failure is recorded in violation.
	invariants []func() error
	lastCheck  time.Duration
	violation  *InvariantViolation
}

// New creates an empty simulated network.
func New(cfg Config) *Network {
	if cfg.Latency == nil {
		cfg.Latency = ConstLatency(time.Millisecond)
	}
	if cfg.Loss == nil {
		cfg.Loss = func(a, b transport.Addr) float64 { return 0 }
	}
	reg := obs.New(cfg.TraceCap)
	return &Network{
		cfg:              cfg,
		nodes:            make(map[transport.Addr]*simNode),
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		latency:          cfg.Latency,
		loss:             cfg.Loss,
		reg:              reg,
		delivered:        reg.Counter("net.delivered"),
		dropped:          reg.Counter("net.dropped"),
		droppedLoss:      reg.Counter("net.dropped_loss"),
		droppedDead:      reg.Counter("net.dropped_dead"),
		droppedPartition: reg.Counter("net.dropped_partition"),
		droppedFault:     reg.Counter("net.dropped_fault"),
		dupInjected:      reg.Counter("net.dup_injected"),
		reorderInjected:  reg.Counter("net.reorder_injected"),
		lastCheck:        -1,
	}
}

// Delivered returns the total messages actually delivered.
func (n *Network) Delivered() int64 { return n.delivered.Value() }

// Dropped returns the total messages lost, to any cause. The per-cause
// split lives in the network registry: net.dropped_loss (Bernoulli link
// loss), net.dropped_dead (dead destination), net.dropped_partition
// (blocked link), net.dropped_fault (LinkRule drops).
func (n *Network) Dropped() int64 { return n.dropped.Value() }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// env implements transport.Env for one node.
type env struct {
	net  *Network
	node *simNode
}

func (e *env) Self() transport.Addr   { return e.node.addr }
func (e *env) Now() time.Duration     { return e.net.now }
func (e *env) Rand() *rand.Rand       { return e.node.rng }
func (e *env) Metrics() *obs.Registry { return e.node.reg }

func (e *env) Send(to transport.Addr, msg any) {
	e.net.send(e.node, to, msg)
}

func (e *env) After(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	node := e.node
	gen := node.gen
	ev := e.net.schedule(d, func() {
		if node.alive && node.gen == gen {
			fn()
		}
	})
	return func() { ev.fn = nil }
}

// AddNode registers a node. build receives the node's Env and returns its
// Handler; it typically constructs the whole protocol stack for the node.
func (n *Network) AddNode(addr transport.Addr, build func(transport.Env) transport.Handler) transport.Env {
	if _, dup := n.nodes[addr]; dup {
		panic(fmt.Sprintf("simnet: duplicate node %q", addr))
	}
	reg := obs.New(n.cfg.TraceCap)
	node := &simNode{
		addr:      addr,
		rng:       rand.New(rand.NewSource(n.cfg.Seed ^ int64(hashAddr(addr)))),
		alive:     true,
		reg:       reg,
		msgsIn:    reg.Counter(CtrMsgsIn),
		msgsOut:   reg.Counter(CtrMsgsOut),
		bytesIn:   reg.Counter(CtrBytesIn),
		bytesOut:  reg.Counter(CtrBytesOut),
		bandwidth: n.cfg.DefaultBandwidth,
	}
	n.nodes[addr] = node
	e := &env{net: n, node: node}
	node.build = build
	node.env = e
	node.handler = build(e)
	return e
}

func hashAddr(a transport.Addr) uint64 {
	// FNV-1a over the address string.
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= 1099511628211
	}
	return h
}

func (n *Network) send(from *simNode, to transport.Addr, msg any) {
	if !from.alive {
		return
	}
	size := n.sizeOf(from.addr, msg)
	from.msgsOut.Inc()
	from.bytesOut.Add(int64(size))
	if n.blocked[linkKey{from.addr, to}] > 0 {
		n.dropped.Inc()
		n.droppedPartition.Inc()
		return
	}
	// Per-link fault rules: drop kills the message outright; duplication,
	// reordering, and extra delay shape how (and how often) it arrives.
	var extra time.Duration
	dup := false
	for _, r := range n.rules {
		if !r.matches(from.addr, to) {
			continue
		}
		if r.Drop > 0 && n.rng.Float64() < r.Drop {
			n.dropped.Inc()
			n.droppedFault.Inc()
			return
		}
		if r.Dup > 0 && n.rng.Float64() < r.Dup {
			dup = true
		}
		extra += r.Delay
		if r.Reorder > 0 && n.rng.Float64() < r.Reorder {
			w := r.ReorderWindow
			if w <= 0 {
				w = defaultReorderWindow
			}
			extra += time.Duration(n.rng.Int63n(int64(w)))
			n.reorderInjected.Inc()
		}
	}
	if p := n.loss(from.addr, to); p > 0 && n.rng.Float64() < p {
		n.dropped.Inc()
		n.droppedLoss.Inc()
		return
	}
	// Egress serialization: the sender's NIC transmits one frame at a time.
	txStart := n.now
	if from.egressFree > txStart {
		txStart = from.egressFree
	}
	txEnd := txStart + from.txTime(size)
	from.egressFree = txEnd
	arrival := txEnd + n.latency(from.addr, to) + extra
	n.deliver(from.addr, to, msg, size, arrival)
	if dup {
		// The duplicate is a network-level copy: it skips the sender's NIC
		// (sent once) but arrives independently after its own jitter.
		n.dupInjected.Inc()
		w := defaultReorderWindow
		arrival2 := arrival + time.Duration(n.rng.Int63n(int64(w)))
		n.deliver(from.addr, to, msg, size, arrival2)
	}
}

// deliver schedules one arrival at the destination. Ingress serialization
// is charged when the message arrives, not when it was sent: the receiver
// drains its link in true arrival order, so messages that the fault layer
// delayed or reordered don't head-of-line-block messages that physically
// got there first.
func (n *Network) deliver(src, to transport.Addr, msg any, size int, arrival time.Duration) {
	n.schedule(arrival-n.now, func() {
		dst, ok := n.nodes[to]
		if !ok || !dst.alive {
			n.dropped.Inc()
			n.droppedDead.Inc()
			return
		}
		deliverAt := n.now
		if dst.ingressFree > deliverAt {
			deliverAt = dst.ingressFree
		}
		deliverAt += dst.txTime(size)
		dst.ingressFree = deliverAt
		if deliverAt <= n.now {
			n.handoff(dst, src, size, msg)
			return
		}
		n.schedule(deliverAt-n.now, func() {
			dst, ok := n.nodes[to]
			if !ok || !dst.alive {
				n.dropped.Inc()
				n.droppedDead.Inc()
				return
			}
			n.handoff(dst, src, size, msg)
		})
	})
}

// handoff counts and delivers one message that cleared the receiver's link.
func (n *Network) handoff(dst *simNode, src transport.Addr, size int, msg any) {
	dst.msgsIn.Inc()
	dst.bytesIn.Add(int64(size))
	n.delivered.Inc()
	if n.cfg.Observer != nil {
		n.cfg.Observer(src, dst.addr, size)
	}
	dst.handler.Receive(src, msg)
}

// sizeOf charges a message's simulated wire cost: the exact frame size
// under Config.Sizer, the WireSize estimate otherwise.
func (n *Network) sizeOf(from transport.Addr, msg any) int {
	if n.cfg.Sizer != nil {
		if size, err := n.cfg.Sizer(from, msg); err == nil {
			return size
		}
	}
	return transport.SizeOf(msg)
}

// SetBandwidth overrides one node's egress/ingress bandwidth (bytes/sec;
// 0 = unlimited).
func (n *Network) SetBandwidth(addr transport.Addr, bytesPerSec int64) {
	if node, ok := n.nodes[addr]; ok {
		node.bandwidth = bytesPerSec
	}
}

func (n *Network) schedule(d time.Duration, fn func()) *event {
	n.seq++
	ev := &event{at: n.now + d, seq: n.seq, fn: fn}
	heap.Push(&n.queue, ev)
	return ev
}

// ScheduleAfter runs fn on the event loop after d, independent of any
// node's liveness (driver-level orchestration: churn scripts, restart
// sequencing). Returns a cancel function.
func (n *Network) ScheduleAfter(d time.Duration, fn func()) (cancel func()) {
	if d < 0 {
		d = 0
	}
	ev := n.schedule(d, fn)
	return func() { ev.fn = nil }
}

// Step executes the next pending event. It reports false when the queue is
// empty. With invariants registered (AddInvariant), the checks run after
// every event that lands on a new virtual timestamp.
func (n *Network) Step() bool {
	for n.queue.Len() > 0 {
		ev := heap.Pop(&n.queue).(*event)
		if ev.fn == nil { // cancelled timer
			continue
		}
		n.now = ev.at
		ev.fn()
		if len(n.invariants) > 0 && n.now != n.lastCheck {
			n.lastCheck = n.now
			n.runInvariants()
		}
		return true
	}
	return false
}

// Run drains all events until the queue is empty or the virtual clock would
// pass deadline. It returns the number of events executed.
func (n *Network) Run(deadline time.Duration) int {
	steps := 0
	for n.queue.Len() > 0 {
		next := n.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			n.now = deadline
			return steps
		}
		n.Step()
		steps++
	}
	return steps
}

// RunUntilIdle drains every pending event (including future timers). Use
// with care when protocols schedule periodic timers: prefer Run(deadline).
func (n *Network) RunUntilIdle() int {
	steps := 0
	for n.Step() {
		steps++
	}
	return steps
}

func (n *Network) peek() *event {
	for n.queue.Len() > 0 {
		if n.queue[0].fn == nil {
			heap.Pop(&n.queue)
			continue
		}
		return n.queue[0]
	}
	return nil
}

// Pending reports the number of live queued events.
func (n *Network) Pending() int {
	c := 0
	for _, e := range n.queue {
		if e.fn != nil {
			c++
		}
	}
	return c
}

// Fail marks a node as crashed: it stops receiving messages and its pending
// timers are suppressed. Counterpart of the 5%-simultaneous-failure churn
// experiment (Fig 12).
func (n *Network) Fail(addr transport.Addr) {
	if node, ok := n.nodes[addr]; ok {
		node.alive = false
	}
}

// Revive brings a failed node back (used to model re-joining churn).
func (n *Network) Revive(addr transport.Addr) {
	if node, ok := n.nodes[addr]; ok {
		node.alive = true
	}
}

// Restart reboots a node from scratch: unlike Revive (which brings the
// same process back with its memory intact), Restart models a crash and a
// fresh process start — the protocol stack is rebuilt by the node's
// original build function, every timer armed by the previous incarnation
// is dead, and the node's rng is reseeded per generation so the rebooted
// stack draws a fresh-but-deterministic stream. In-memory state survives
// only through whatever durable store the build function wires in, which
// is exactly what crash-recovery experiments exercise. Returns the new
// handler (nil if the address is unknown).
func (n *Network) Restart(addr transport.Addr) transport.Handler {
	node, ok := n.nodes[addr]
	if !ok {
		return nil
	}
	node.gen++
	node.alive = true
	node.rng = rand.New(rand.NewSource(n.cfg.Seed ^ int64(hashAddr(addr)) ^ int64(node.gen<<32)))
	// A fresh process has empty NIC queues.
	node.egressFree = 0
	node.ingressFree = 0
	node.handler = node.build(node.env)
	return node.handler
}

// Alive reports whether the node exists and is up.
func (n *Network) Alive(addr transport.Addr) bool {
	node, ok := n.nodes[addr]
	return ok && node.alive
}

// TrafficOf returns a copy of the traffic counters for addr, read from
// the node's registry.
func (n *Network) TrafficOf(addr transport.Addr) Traffic {
	if node, ok := n.nodes[addr]; ok {
		return Traffic{
			MsgsIn:   int(node.msgsIn.Value()),
			MsgsOut:  int(node.msgsOut.Value()),
			BytesIn:  node.bytesIn.Value(),
			BytesOut: node.bytesOut.Value(),
		}
	}
	return Traffic{}
}

// MetricsOf returns addr's telemetry registry (nil if unknown) — the same
// registry the node's Env.Metrics() hands to its protocol stack.
func (n *Network) MetricsOf(addr transport.Addr) *obs.Registry {
	if node, ok := n.nodes[addr]; ok {
		return node.reg
	}
	return nil
}

// Metrics returns the network-level registry (net.delivered, net.dropped).
func (n *Network) Metrics() *obs.Registry { return n.reg }

// MergedSnapshot sums the network-level registry and every node's
// registry into one fleet-wide snapshot, deterministically.
func (n *Network) MergedSnapshot() obs.Snapshot {
	snaps := make([]obs.Snapshot, 0, len(n.nodes)+1)
	snaps = append(snaps, n.reg.Snapshot())
	for _, addr := range n.Addrs() {
		snaps = append(snaps, n.nodes[addr].reg.Snapshot())
	}
	return obs.MergeSnapshots(snaps...)
}

// MergedTrace interleaves every node's trace ring into one global
// virtual-time timeline.
func (n *Network) MergedTrace() []obs.Event {
	streams := make([][]obs.Event, 0, len(n.nodes))
	for _, addr := range n.Addrs() {
		streams = append(streams, n.nodes[addr].reg.TraceEvents())
	}
	return obs.MergeTraces(streams...)
}

// ResetTraffic zeroes every node's traffic counters plus the network's
// delivered/dropped tallies (used between experiment phases).
func (n *Network) ResetTraffic() {
	for _, node := range n.nodes {
		node.reg.ResetCounters(CtrMsgsIn, CtrMsgsOut, CtrBytesIn, CtrBytesOut)
	}
	n.reg.ResetCounters("net.delivered", "net.dropped",
		"net.dropped_loss", "net.dropped_dead", "net.dropped_partition",
		"net.dropped_fault", "net.dup_injected", "net.reorder_injected")
}

// Addrs returns all registered node addresses in insertion-independent
// deterministic (sorted) order.
func (n *Network) Addrs() []transport.Addr {
	out := make([]transport.Addr, 0, len(n.nodes))
	for a := range n.nodes {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumNodes returns the number of registered nodes.
func (n *Network) NumNodes() int { return len(n.nodes) }
