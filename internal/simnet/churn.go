package simnet

import (
	"math/rand"
	"time"

	"totoro/internal/transport"
)

// ChurnConfig parameterizes a seeded Poisson fail/revive process — the
// fault-injection harness behind the paper's failure-recovery experiments
// (§7.5): nodes crash at random, stay down for a random time, and come
// back as stale-state zombies that the protocols must fold back in.
type ChurnConfig struct {
	// Seed drives all churn randomness, independent of the network seed,
	// so fault schedules are reproducible and composable.
	Seed int64
	// FailEvery is the mean time between failure events across the whole
	// eligible population (exponential inter-arrival times — a Poisson
	// process). Zero disables the process entirely.
	FailEvery time.Duration
	// Downtime is the mean time a failed node stays down before it is
	// revived (exponential). Zero means failed nodes never revive.
	Downtime time.Duration
	// Exempt lists nodes the process never kills (the kill-exempt set:
	// experiments typically protect the workload's data holders so churn
	// measures protocol recovery, not data loss).
	Exempt []transport.Addr
	// Restart makes downed nodes come back via Network.Restart instead of
	// Revive: the process reboots with amnesia — a rebuilt protocol stack,
	// dead timers, only durable-store state surviving — rather than as a
	// stale-memory zombie. This is the harness for crash-recovery
	// experiments: kill–revive tests protocol tolerance of stale peers,
	// kill–restart tests recovery from the write-ahead log.
	Restart bool
	// OnFail/OnRevive/OnRestart observe every churn event (logging,
	// assertions). OnRestart fires (instead of OnRevive) when Restart mode
	// reboots a node, after the stack has been rebuilt.
	OnFail    func(addr transport.Addr, now time.Duration)
	OnRevive  func(addr transport.Addr, now time.Duration)
	OnRestart func(addr transport.Addr, now time.Duration)
}

// Churn is a running churn process on a Network. It shares the network's
// event loop, so fail/revive events interleave deterministically with
// protocol traffic.
type Churn struct {
	net    *Network
	cfg    ChurnConfig
	rng    *rand.Rand
	exempt map[transport.Addr]bool
	// downBy tracks the nodes this process killed (explicit Fail calls by
	// the experiment are not revived by the scheduler).
	downBy  map[transport.Addr]bool
	stopped bool

	// Fails, Revives, and Restarts count the events injected so far.
	Fails, Revives, Restarts int
}

// StartChurn launches a churn process on the network. The process runs on
// the simulated clock until Stop is called; it never kills exempt nodes
// and never kills a node it already holds down.
func (n *Network) StartChurn(cfg ChurnConfig) *Churn {
	c := &Churn{
		net:    n,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		exempt: make(map[transport.Addr]bool, len(cfg.Exempt)),
		downBy: make(map[transport.Addr]bool),
	}
	for _, a := range cfg.Exempt {
		c.exempt[a] = true
	}
	if cfg.FailEvery > 0 {
		c.scheduleNextFail()
	}
	return c
}

// Stop halts the process: no further failures are injected, and pending
// revives of already-failed nodes are cancelled (they stay down).
func (c *Churn) Stop() { c.stopped = true }

// Down reports how many nodes the process currently holds down.
func (c *Churn) Down() int { return len(c.downBy) }

func (c *Churn) scheduleNextFail() {
	d := time.Duration(c.rng.ExpFloat64() * float64(c.cfg.FailEvery))
	c.net.schedule(d, func() {
		if c.stopped {
			return
		}
		c.failOne()
		c.scheduleNextFail()
	})
}

// failOne kills one uniformly chosen eligible node. Candidates are taken
// from the sorted address list so the victim sequence depends only on the
// churn seed and the set of live nodes, never on map iteration order.
func (c *Churn) failOne() {
	var candidates []transport.Addr
	for _, a := range c.net.Addrs() {
		if c.exempt[a] || !c.net.Alive(a) {
			continue
		}
		candidates = append(candidates, a)
	}
	if len(candidates) == 0 {
		return
	}
	victim := candidates[c.rng.Intn(len(candidates))]
	c.net.Fail(victim)
	c.downBy[victim] = true
	c.Fails++
	if c.cfg.OnFail != nil {
		c.cfg.OnFail(victim, c.net.Now())
	}
	if c.cfg.Downtime > 0 {
		down := time.Duration(c.rng.ExpFloat64() * float64(c.cfg.Downtime))
		c.net.schedule(down, func() {
			if c.stopped || !c.downBy[victim] {
				return
			}
			delete(c.downBy, victim)
			if c.cfg.Restart {
				c.net.Restart(victim)
				c.Restarts++
				if c.cfg.OnRestart != nil {
					c.cfg.OnRestart(victim, c.net.Now())
				}
				return
			}
			c.net.Revive(victim)
			c.Revives++
			if c.cfg.OnRevive != nil {
				c.cfg.OnRevive(victim, c.net.Now())
			}
		})
	}
}
