package bandit

import "math"

// KL returns the Kullback–Leibler divergence between two Bernoulli
// distributions with means p and q (paper §5.2).
func KL(p, q float64) float64 {
	const eps = 1e-12
	p = clamp(p, 0, 1)
	q = clamp(q, eps, 1-eps)
	var d float64
	if p > 0 {
		d += p * math.Log(p/q)
	}
	if p < 1 {
		d += (1 - p) * math.Log((1-p)/(1-q))
	}
	return d
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// KLUCBUpper returns the KL-UCB upper confidence bound for a Bernoulli
// mean: the largest u ∈ [θ̂, 1] with attempts·KL(θ̂, u) ≤ budget. With no
// observations it is fully optimistic (1).
func KLUCBUpper(thetaHat float64, attempts int, budget float64) float64 {
	if attempts == 0 || budget <= 0 {
		if attempts == 0 {
			return 1
		}
		return clamp(thetaHat, 1e-9, 1)
	}
	lo, hi := clamp(thetaHat, 0, 1), 1.0
	limit := budget / float64(attempts)
	for iter := 0; iter < 48; iter++ {
		mid := (lo + hi) / 2
		if KL(thetaHat, mid) <= limit {
			lo = mid
		} else {
			hi = mid
		}
	}
	return clamp(lo, 1e-9, 1)
}

// LCBMean returns the standard Hoeffding lower confidence bound used by the
// end-to-end baseline: mean − sqrt(2·budget / n), floored at 0.
func LCBMean(mean float64, n int, budget float64) float64 {
	if n == 0 {
		return 0
	}
	b := mean - math.Sqrt(2*budget/float64(n))
	if b < 0 {
		return 0
	}
	return b
}
