package bandit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKLBasicProperties(t *testing.T) {
	if d := KL(0.3, 0.3); d > 1e-9 {
		t.Fatalf("KL(p,p)=%v", d)
	}
	if KL(0.3, 0.5) <= 0 || KL(0.3, 0.1) <= 0 {
		t.Fatal("KL must be positive off-diagonal")
	}
	// Monotone in |q − p| on each side.
	if KL(0.3, 0.6) <= KL(0.3, 0.4) {
		t.Fatal("KL not increasing away from p")
	}
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		p := float64(a) / 65535
		q := float64(b) / 65535
		return KL(p, q) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKLUCBUpperBounds(t *testing.T) {
	// No data: fully optimistic.
	if u := KLUCBUpper(0, 0, 1); u != 1 {
		t.Fatalf("no-data UCB=%v", u)
	}
	// The bound is at least the empirical mean.
	u := KLUCBUpper(0.4, 10, math.Log(100))
	if u < 0.4 {
		t.Fatalf("UCB %v below mean", u)
	}
	// More samples shrink the bound toward the mean.
	u2 := KLUCBUpper(0.4, 10000, math.Log(100))
	if u2 >= u {
		t.Fatalf("UCB did not shrink with samples: %v -> %v", u, u2)
	}
	if math.Abs(u2-0.4) > 0.02 {
		t.Fatalf("tight UCB %v far from mean", u2)
	}
	// Larger budget widens the bound.
	if KLUCBUpper(0.4, 10, math.Log(10)) > KLUCBUpper(0.4, 10, math.Log(10000)) {
		t.Fatal("UCB not monotone in budget")
	}
}

func TestGeometricTransmitMean(t *testing.T) {
	g := NewGraph(2)
	g.AddLink(0, 1, 0.25)
	st := newStatTable()
	rng := rand.New(rand.NewSource(1))
	total := 0
	const n = 20000
	for i := 0; i < n; i++ {
		total += st.transmit(g, 0, 1, rng)
	}
	mean := float64(total) / n
	if mean < 3.8 || mean > 4.2 {
		t.Fatalf("geometric mean %v want ~4", mean)
	}
	s := st.get(0, 1)
	if s.successes != n {
		t.Fatalf("successes=%d want %d", s.successes, n)
	}
	if got := s.thetaHat(); math.Abs(got-0.25) > 0.01 {
		t.Fatalf("thetaHat=%v", got)
	}
}

// diamond builds the classic trap for greedy next-hop routing: the first
// hop with the higher success rate leads into a terrible second hop.
func diamond() (*Graph, int, int) {
	g := NewGraph(4)
	// 0 -> 1 (0.9) -> 3 (0.2): expected 1.11 + 5 = 6.11
	// 0 -> 2 (0.6) -> 3 (0.9): expected 1.67 + 1.11 = 2.78
	g.AddLink(0, 1, 0.9)
	g.AddLink(1, 3, 0.2)
	g.AddLink(0, 2, 0.6)
	g.AddLink(2, 3, 0.9)
	return g, 0, 3
}

func TestBestPathOnDiamond(t *testing.T) {
	g, src, dst := diamond()
	path, d := g.BestPath(src, dst)
	if len(path) != 3 || path[1] != 2 {
		t.Fatalf("best path %v", path)
	}
	if math.Abs(d-(1/0.6+1/0.9)) > 1e-9 {
		t.Fatalf("best delay %v", d)
	}
}

func TestPathsEnumerationLoopFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, src, dst := LayeredGraph(2, 3, 0.2, 0.9, rng)
	paths := g.Paths(src, dst, 0)
	if len(paths) != 9 { // 3 × 3 layer choices
		t.Fatalf("paths=%d want 9", len(paths))
	}
	for _, p := range paths {
		seen := map[int]bool{}
		for _, v := range p {
			if seen[v] {
				t.Fatalf("loop in path %v", p)
			}
			seen[v] = true
		}
		if p[0] != src || p[len(p)-1] != dst {
			t.Fatalf("bad endpoints %v", p)
		}
	}
}

func TestCostToDestMatchesBestPath(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, src, dst := LayeredGraph(3, 3, 0.2, 0.9, rng)
	_, want := g.BestPath(src, dst)
	costs := g.CostToDest(dst, func(u, v int) float64 { return 1 / g.Theta(u, v) })
	if math.Abs(costs[src]-want) > 1e-9 {
		t.Fatalf("CostToDest=%v BestPath=%v", costs[src], want)
	}
	if costs[dst] != 0 {
		t.Fatal("dst cost must be 0")
	}
}

func TestHopByHopEscapesGreedyTrap(t *testing.T) {
	g, src, dst := diamond()
	rng := rand.New(rand.NewSource(4))
	p := NewHopByHop(g, src, dst)
	viaGood := 0
	const K = 1500
	for k := 0; k < K; k++ {
		_, path := p.SendPacket(rng)
		if len(path) == 3 && path[1] == 2 {
			viaGood++
		}
	}
	if float64(viaGood)/K < 0.8 {
		t.Fatalf("hop-by-hop used the optimal path only %d/%d times", viaGood, K)
	}
}

func TestNextHopFallsIntoGreedyTrap(t *testing.T) {
	g, src, dst := diamond()
	rng := rand.New(rand.NewSource(5))
	p := NewNextHop(g, src, dst)
	viaBad := 0
	const K = 1500
	for k := 0; k < K; k++ {
		_, path := p.SendPacket(rng)
		if len(path) == 3 && path[1] == 1 {
			viaBad++
		}
	}
	// The empirical next-hop baseline keeps choosing the shiny first hop.
	if float64(viaBad)/K < 0.5 {
		t.Fatalf("next-hop unexpectedly avoided the trap (%d/%d)", viaBad, K)
	}
}

func TestOptimalPolicyDelayMatchesExpectation(t *testing.T) {
	g, src, dst := diamond()
	rng := rand.New(rand.NewSource(6))
	p := NewOptimal(g, src, dst)
	total := 0
	const K = 20000
	for k := 0; k < K; k++ {
		d, path := p.SendPacket(rng)
		total += d
		if path[1] != 2 {
			t.Fatal("optimal policy deviated")
		}
	}
	mean := float64(total) / K
	want := 1/0.6 + 1/0.9
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("optimal mean delay %v want %v", mean, want)
	}
}

func TestRegretOrderingMatchesPaper(t *testing.T) {
	// Fig 10: Totoro < next-hop and Totoro < end-to-end in final regret.
	e := Experiment{Layers: 2, Width: 3, K: 1200, Runs: 4, Seed: 99}
	curves := e.Regret([]string{"totoro", "next-hop", "end-to-end", "optimal"})
	last := func(name string) float64 { c := curves[name]; return c[len(c)-1] }
	if !(last("totoro") < last("next-hop")) {
		t.Fatalf("totoro regret %v !< next-hop %v", last("totoro"), last("next-hop"))
	}
	if !(last("totoro") < last("end-to-end")) {
		t.Fatalf("totoro regret %v !< end-to-end %v", last("totoro"), last("end-to-end"))
	}
	// The oracle's regret stays near zero (only transmission noise).
	if math.Abs(last("optimal")) > last("totoro") {
		t.Fatalf("optimal regret %v suspicious vs totoro %v", last("optimal"), last("totoro"))
	}
}

func TestRegretSublinearForTotoro(t *testing.T) {
	e := Experiment{Layers: 2, Width: 3, K: 2000, Runs: 4, Seed: 77}
	curves := e.Regret([]string{"totoro"})
	c := curves["totoro"]
	// Per-packet regret in the last quarter must be well below the first
	// quarter (learning happened).
	q := len(c) / 4
	early := c[q] / float64(q)
	late := (c[len(c)-1] - c[len(c)-1-q]) / float64(q)
	if late > early*0.6 {
		t.Fatalf("no evidence of learning: early rate %.3f late rate %.3f", early, late)
	}
}

func TestFrequenciesConvergeToBestPath(t *testing.T) {
	e := Experiment{Layers: 2, Width: 3, K: 1200, Runs: 3, Seed: 55}
	freq, paths := e.Frequencies("totoro", 6)
	if paths != 9 {
		t.Fatalf("paths=%d", paths)
	}
	for i, row := range freq {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("bucket %d not normalized: %v", i, sum)
		}
	}
	if freq[len(freq)-1][0] < freq[0][0] {
		t.Fatal("best-path frequency did not grow over time")
	}
	if freq[len(freq)-1][0] < 0.6 {
		t.Fatalf("late best-path frequency %.2f too low", freq[len(freq)-1][0])
	}
}

func TestEndToEndSlowestToConverge(t *testing.T) {
	e := Experiment{Layers: 2, Width: 3, K: 1200, Runs: 3, Seed: 55}
	fT, _ := e.Frequencies("totoro", 6)
	fE, _ := e.Frequencies("end-to-end", 6)
	// In the first bucket, Totoro already favors the best path more than
	// end-to-end (which must sample every arm).
	if fT[0][0] <= fE[0][0] {
		t.Fatalf("totoro early best-rate %.2f <= end-to-end %.2f", fT[0][0], fE[0][0])
	}
}

func TestRankPathsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g, src, dst := LayeredGraph(2, 3, 0.2, 0.9, rng)
	_, delays := g.RankPaths(src, dst)
	for i := 1; i < len(delays); i++ {
		if delays[i] < delays[i-1] {
			t.Fatal("ranked paths out of order")
		}
	}
}

func TestLayeredGraphShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, src, dst := LayeredGraph(3, 4, 0.1, 0.9, rng)
	if g.N != 2+3*4 {
		t.Fatalf("N=%d", g.N)
	}
	if len(g.Out(src)) != 4 {
		t.Fatalf("src degree %d", len(g.Out(src)))
	}
	if len(g.Out(dst)) != 0 {
		t.Fatal("dst must be a sink")
	}
	for _, l := range g.Links() {
		th := g.Theta(l[0], l[1])
		if th < 0.1 || th > 0.9 {
			t.Fatalf("theta %v out of range", th)
		}
	}
}
