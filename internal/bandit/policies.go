package bandit

import (
	"fmt"
	"math"
	"math/rand"
)

// Policy routes packets one at a time and learns from the outcomes.
type Policy interface {
	Name() string
	// SendPacket routes one packet from the policy's source to its
	// destination. It returns the end-to-end delay (total transmission
	// attempts across all traversed links) and the loop-free path taken.
	SendPacket(rng *rand.Rand) (delay int, path []int)
}

// maxAttemptsPerLink caps retransmissions so a pathologically bad link
// cannot stall an experiment (θ ≥ 0.05 in all workloads ⇒ cap is ~never hit).
const maxAttemptsPerLink = 100000

// linkStats tracks semi-bandit feedback for one link.
type linkStats struct {
	attempts  int
	successes int
}

func (s *linkStats) thetaHat() float64 {
	if s.attempts == 0 {
		return 0
	}
	return float64(s.successes) / float64(s.attempts)
}

// statTable is the shared observation store of link-level policies.
type statTable struct {
	m     map[[2]int]*linkStats
	total int // total transmission attempts so far (the time slot counter τ)
}

func newStatTable() *statTable { return &statTable{m: make(map[[2]int]*linkStats)} }

func (t *statTable) get(u, v int) *linkStats {
	k := [2]int{u, v}
	s, ok := t.m[k]
	if !ok {
		s = &linkStats{}
		t.m[k] = s
	}
	return s
}

// transmit attempts link u→v until success (geometric delay), recording
// every attempt as feedback. It returns the number of attempts.
func (t *statTable) transmit(g *Graph, u, v int, rng *rand.Rand) int {
	th := g.Theta(u, v)
	s := t.get(u, v)
	attempts := 0
	for {
		attempts++
		t.total++
		s.attempts++
		if rng.Float64() < th {
			s.successes++
			return attempts
		}
		if attempts >= maxAttemptsPerLink {
			return attempts
		}
	}
}

// --- Totoro: distributed hop-by-hop KL-UCB (Algorithm 1) ---

// HopByHop implements the paper's Algorithm 1. At every hop, node v picks
// v' minimizing C(v,v') = ω(v,v') + J(v'): the optimistic link delay plus
// the optimistic cost from v' to the destination, both recomputed from the
// current semi-bandit statistics.
type HopByHop struct {
	g        *Graph
	src, dst int
	stats    *statTable
	reach    []bool
}

// NewHopByHop builds the Totoro policy for a source-destination pair.
func NewHopByHop(g *Graph, src, dst int) *HopByHop {
	return &HopByHop{g: g, src: src, dst: dst, stats: newStatTable(), reach: g.Reachable(dst)}
}

// Name implements Policy.
func (p *HopByHop) Name() string { return "totoro-hop-by-hop" }

// omega is the empirical transmission cost with exploration adjustment:
// ω(u,v) = min{1/u : u ∈ [θ̂,1], t'·KL(θ̂,u) ≤ log τ} = 1 / KLUCB(θ̂).
func (p *HopByHop) omega(u, v int) float64 {
	s := p.stats.get(u, v)
	budget := math.Log(float64(p.stats.total + 1))
	return 1 / KLUCBUpper(s.thetaHat(), s.attempts, budget)
}

// SendPacket implements Policy.
func (p *HopByHop) SendPacket(rng *rand.Rand) (int, []int) {
	delay := 0
	path := []int{p.src}
	visited := make(map[int]bool, 8)
	visited[p.src] = true
	cur := p.src
	for cur != p.dst {
		// J(w): optimistic cost-to-destination under current ω (line 4 of
		// Algorithm 1, recomputed every slot).
		j := p.g.CostToDest(p.dst, p.omega)
		next, best := -1, math.MaxFloat64
		for _, v := range p.g.Out(cur) {
			if visited[v] || !p.reach[v] {
				continue
			}
			if c := p.omega(cur, v) + j[v]; c < best {
				next, best = v, c
			}
		}
		if next < 0 {
			// Loop-free constraint exhausted every neighbor (cannot happen
			// on layered graphs); abandon with the delay spent so far.
			break
		}
		delay += p.stats.transmit(p.g, cur, next, rng)
		visited[next] = true
		path = append(path, next)
		cur = next
	}
	return delay, path
}

// --- baseline: empirical next-hop routing (Bhorkar et al.) ---

// NextHop greedily picks the neighbor with the lowest *empirical* link
// delay, with one optimistic free try per link and no lookahead: it can
// latch onto a fast first hop that leads into a slow remainder, which is
// exactly the failure mode Fig 10/11 show.
type NextHop struct {
	g        *Graph
	src, dst int
	stats    *statTable
	reach    []bool
}

// NewNextHop builds the next-hop baseline.
func NewNextHop(g *Graph, src, dst int) *NextHop {
	return &NextHop{g: g, src: src, dst: dst, stats: newStatTable(), reach: g.Reachable(dst)}
}

// Name implements Policy.
func (p *NextHop) Name() string { return "next-hop" }

// SendPacket implements Policy.
func (p *NextHop) SendPacket(rng *rand.Rand) (int, []int) {
	delay := 0
	path := []int{p.src}
	visited := map[int]bool{p.src: true}
	cur := p.src
	for cur != p.dst {
		next, best := -1, math.MaxFloat64
		for _, v := range p.g.Out(cur) {
			if visited[v] || !p.reach[v] {
				continue
			}
			s := p.stats.get(cur, v)
			cost := 1.0 // optimistic: unexplored links look perfect
			if s.attempts > 0 {
				th := s.thetaHat()
				if th <= 0 {
					cost = math.MaxFloat64 / 4
				} else {
					cost = 1 / th
				}
			}
			if cost < best {
				next, best = v, cost
			}
		}
		if next < 0 {
			break
		}
		delay += p.stats.transmit(p.g, cur, next, rng)
		visited[next] = true
		path = append(path, next)
		cur = next
	}
	return delay, path
}

// --- baseline: end-to-end LCB routing (Gai et al.) ---

// EndToEnd treats every loop-free path as one bandit arm and observes only
// the total path delay (full-bandit feedback). It selects the path with
// the lowest Hoeffding lower confidence bound. Because the number of arms
// grows combinatorially, it is the slowest to find the optimum (Fig 11).
type EndToEnd struct {
	g        *Graph
	src, dst int
	paths    [][]int
	plays    []int
	sumDelay []float64
	k        int
}

// NewEndToEnd builds the end-to-end baseline (path set capped at 4096).
func NewEndToEnd(g *Graph, src, dst int) *EndToEnd {
	paths := g.Paths(src, dst, 4096)
	return &EndToEnd{
		g: g, src: src, dst: dst,
		paths:    paths,
		plays:    make([]int, len(paths)),
		sumDelay: make([]float64, len(paths)),
	}
}

// Name implements Policy.
func (p *EndToEnd) Name() string { return "end-to-end" }

// SendPacket implements Policy.
func (p *EndToEnd) SendPacket(rng *rand.Rand) (int, []int) {
	p.k++
	pick := -1
	best := math.MaxFloat64
	for i := range p.paths {
		if p.plays[i] == 0 {
			pick = i
			break
		}
		mean := p.sumDelay[i] / float64(p.plays[i])
		lcb := mean - math.Sqrt(2*math.Log(float64(p.k))/float64(p.plays[i]))*mean
		if lcb < best {
			pick, best = i, lcb
		}
	}
	path := p.paths[pick]
	delay := 0
	for i := 0; i+1 < len(path); i++ {
		th := p.g.Theta(path[i], path[i+1])
		for {
			delay++
			if rng.Float64() < th {
				break
			}
			if delay >= maxAttemptsPerLink {
				break
			}
		}
	}
	p.plays[pick]++
	p.sumDelay[pick] += float64(delay)
	return delay, path
}

// --- oracle: optimal routing ---

// Optimal always transmits along the true minimum-expected-delay path.
type Optimal struct {
	g    *Graph
	path []int
}

// NewOptimal builds the omniscient baseline.
func NewOptimal(g *Graph, src, dst int) *Optimal {
	path, _ := g.BestPath(src, dst)
	return &Optimal{g: g, path: path}
}

// Name implements Policy.
func (p *Optimal) Name() string { return "optimal" }

// SendPacket implements Policy.
func (p *Optimal) SendPacket(rng *rand.Rand) (int, []int) {
	delay := 0
	for i := 0; i+1 < len(p.path); i++ {
		th := p.g.Theta(p.path[i], p.path[i+1])
		for {
			delay++
			if rng.Float64() < th {
				break
			}
			if delay >= maxAttemptsPerLink {
				break
			}
		}
	}
	return delay, p.path
}

// NewPolicy constructs a policy by name: "totoro", "next-hop",
// "end-to-end", or "optimal".
func NewPolicy(name string, g *Graph, src, dst int) Policy {
	switch name {
	case "totoro":
		return NewHopByHop(g, src, dst)
	case "next-hop":
		return NewNextHop(g, src, dst)
	case "end-to-end":
		return NewEndToEnd(g, src, dst)
	case "optimal":
		return NewOptimal(g, src, dst)
	}
	panic(fmt.Sprintf("bandit: unknown policy %q", name))
}
