// Package bandit implements Totoro's bandit-based exploitation-exploration
// path planning model (paper §5).
//
// The edge network is a directed graph G = (V, E) whose links succeed
// independently with unknown probabilities θ_i; retransmitting until
// success makes a link's per-packet delay geometric with mean 1/θ_i. The
// planner must route K packets from a source to a destination while
// learning link qualities, trading off exploring unknown links against
// exploiting known-good ones. The paper's Algorithm 1 is a distributed
// hop-by-hop policy with semi-bandit feedback: each node v picks the
// neighbor v' minimizing C(v,v') = ω(v,v') + J(v'), where ω is a KL-UCB
// optimistic estimate of the link's expected delay and J is the optimistic
// cost-to-destination.
//
// The package also implements the two baselines evaluated in Fig 10/11 —
// end-to-end LCB routing (per-path bandit, full-path feedback) and
// empirical next-hop routing — plus the omniscient optimal policy, and the
// regret/selection-frequency harness that regenerates both figures.
package bandit

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Graph is a directed graph with Bernoulli link success probabilities.
type Graph struct {
	N     int
	adj   [][]int
	theta map[[2]int]float64
}

// NewGraph creates an empty graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{N: n, adj: make([][]int, n), theta: make(map[[2]int]float64)}
}

// AddLink adds a directed link u→v with success probability th ∈ (0,1].
func (g *Graph) AddLink(u, v int, th float64) {
	if th <= 0 || th > 1 {
		panic(fmt.Sprintf("bandit: invalid theta %v", th))
	}
	if _, dup := g.theta[[2]int{u, v}]; dup {
		g.theta[[2]int{u, v}] = th
		return
	}
	g.adj[u] = append(g.adj[u], v)
	g.theta[[2]int{u, v}] = th
}

// Theta returns the true success probability of link u→v.
func (g *Graph) Theta(u, v int) float64 { return g.theta[[2]int{u, v}] }

// Out returns the out-neighbors of u.
func (g *Graph) Out(u int) []int { return g.adj[u] }

// Links returns all links in deterministic order.
func (g *Graph) Links() [][2]int {
	out := make([][2]int, 0, len(g.theta))
	for u := 0; u < g.N; u++ {
		for _, v := range g.adj[u] {
			out = append(out, [2]int{u, v})
		}
	}
	return out
}

// ExpectedDelay of a path is Σ 1/θ over its links.
func (g *Graph) ExpectedDelay(path []int) float64 {
	d := 0.0
	for i := 0; i+1 < len(path); i++ {
		d += 1 / g.Theta(path[i], path[i+1])
	}
	return d
}

// Paths enumerates all loop-free paths from src to dst (up to limit; 0
// means unlimited). Deterministic order.
func (g *Graph) Paths(src, dst, limit int) [][]int {
	var out [][]int
	visited := make([]bool, g.N)
	var cur []int
	var dfs func(u int)
	dfs = func(u int) {
		if limit > 0 && len(out) >= limit {
			return
		}
		visited[u] = true
		cur = append(cur, u)
		if u == dst {
			out = append(out, append([]int(nil), cur...))
		} else {
			for _, v := range g.adj[u] {
				if !visited[v] {
					dfs(v)
				}
			}
		}
		cur = cur[:len(cur)-1]
		visited[u] = false
	}
	dfs(src)
	return out
}

// BestPath returns the minimum-expected-delay path from src to dst and its
// expected delay (Dijkstra over weights 1/θ).
func (g *Graph) BestPath(src, dst int) ([]int, float64) {
	const inf = math.MaxFloat64
	dist := make([]float64, g.N)
	prev := make([]int, g.N)
	done := make([]bool, g.N)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[src] = 0
	for {
		u, best := -1, inf
		for i := 0; i < g.N; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		if u == dst {
			break
		}
		for _, v := range g.adj[u] {
			if w := dist[u] + 1/g.Theta(u, v); w < dist[v] {
				dist[v] = w
				prev[v] = u
			}
		}
	}
	if dist[dst] == inf {
		return nil, inf
	}
	var path []int
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst]
}

// CostToDest computes, for every node, the minimum Σ weight(link) cost to
// dst under the given per-link weights (reverse Dijkstra). Unreachable
// nodes get +Inf.
func (g *Graph) CostToDest(dst int, weight func(u, v int) float64) []float64 {
	const inf = math.MaxFloat64
	// Build reverse adjacency once per call (graphs are small).
	radj := make([][]int, g.N)
	for u := 0; u < g.N; u++ {
		for _, v := range g.adj[u] {
			radj[v] = append(radj[v], u)
		}
	}
	dist := make([]float64, g.N)
	done := make([]bool, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[dst] = 0
	for {
		u, best := -1, inf
		for i := 0; i < g.N; i++ {
			if !done[i] && dist[i] < best {
				u, best = i, dist[i]
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		for _, p := range radj[u] {
			if w := dist[u] + weight(p, u); w < dist[p] {
				dist[p] = w
			}
		}
	}
	return dist
}

// Reachable reports which nodes can reach dst.
func (g *Graph) Reachable(dst int) []bool {
	can := g.CostToDest(dst, func(u, v int) float64 { return 1 })
	out := make([]bool, g.N)
	for i, d := range can {
		out[i] = d < math.MaxFloat64
	}
	return out
}

// LayeredGraph builds the classic path-planning testbed: `layers` interior
// layers of `width` nodes between a source (node 0) and a destination
// (last node), fully connected layer to layer, with link success
// probabilities drawn uniformly from [lo, hi].
func LayeredGraph(layers, width int, lo, hi float64, rng *rand.Rand) (g *Graph, src, dst int) {
	n := 2 + layers*width
	g = NewGraph(n)
	src, dst = 0, n-1
	node := func(layer, i int) int { return 1 + layer*width + i }
	draw := func() float64 { return lo + rng.Float64()*(hi-lo) }
	for i := 0; i < width; i++ {
		g.AddLink(src, node(0, i), draw())
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				g.AddLink(node(l, i), node(l+1, j), draw())
			}
		}
	}
	for i := 0; i < width; i++ {
		g.AddLink(node(layers-1, i), dst, draw())
	}
	return g, src, dst
}

// PlantedGraph builds a layered graph with a clearly optimal planted path
// and a greedy trap, the structure behind Fig 10/11: links are mediocre
// (θ ∈ [0.2, 0.55]) except one planted path of excellent links (θ = 0.9)
// whose *first* hop (θ = 0.7) looks worse than a decoy first hop
// (θ = 0.95) that leads only into terrible links (θ = 0.2). A policy that
// judges links in isolation latches onto the decoy; a policy that accounts
// for the downstream cost finds the planted path.
func PlantedGraph(layers, width int, rng *rand.Rand) (g *Graph, src, dst int) {
	if width < 2 {
		panic("bandit: PlantedGraph needs width >= 2")
	}
	n := 2 + layers*width
	g = NewGraph(n)
	src, dst = 0, n-1
	node := func(layer, i int) int { return 1 + layer*width + i }
	base := func() float64 { return 0.2 + rng.Float64()*0.35 }
	for i := 0; i < width; i++ {
		g.AddLink(src, node(0, i), base())
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				g.AddLink(node(l, i), node(l+1, j), base())
			}
		}
	}
	for i := 0; i < width; i++ {
		g.AddLink(node(layers-1, i), dst, base())
	}
	// Planted path through index 1 of every layer.
	g.AddLink(src, node(0, 1), 0.7)
	for l := 0; l+1 < layers; l++ {
		g.AddLink(node(l, 1), node(l+1, 1), 0.9)
	}
	g.AddLink(node(layers-1, 1), dst, 0.9)
	// Decoy: shiny first hop into node 0 of layer 0, whose outgoing links
	// are all bad.
	g.AddLink(src, node(0, 0), 0.95)
	if layers > 1 {
		for j := 0; j < width; j++ {
			g.AddLink(node(0, 0), node(1, j), 0.2)
		}
	} else {
		g.AddLink(node(0, 0), dst, 0.2)
	}
	return g, src, dst
}

// RankPaths returns all loop-free src→dst paths sorted from best (lowest
// expected delay) to worst, together with their expected delays.
func (g *Graph) RankPaths(src, dst int) ([][]int, []float64) {
	paths := g.Paths(src, dst, 0)
	sort.Slice(paths, func(i, j int) bool {
		return g.ExpectedDelay(paths[i]) < g.ExpectedDelay(paths[j])
	})
	delays := make([]float64, len(paths))
	for i, p := range paths {
		delays[i] = g.ExpectedDelay(p)
	}
	return paths, delays
}
