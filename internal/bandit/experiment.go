package bandit

import (
	"math/rand"
)

// Experiment is the Fig 10 / Fig 11 harness: K packets routed over a
// layered random graph, repeated Runs times with different transmission
// randomness (the graph itself is fixed by Seed).
type Experiment struct {
	Layers, Width int
	Lo, Hi        float64 // link success probability range
	K             int     // packets per run
	Runs          int
	Seed          int64
}

// DefaultExperiment mirrors the scale of the paper's adaptivity study:
// a source and destination separated by layered relays with widely varying
// link quality.
func DefaultExperiment() Experiment {
	return Experiment{Layers: 2, Width: 3, K: 2000, Runs: 10, Seed: 424242}
}

// Build creates the experiment's graph: a planted-path layered graph when
// Lo == Hi == 0 (the Fig 10/11 setting), otherwise a uniform random
// layered graph.
func (e Experiment) Build() (*Graph, int, int) {
	rng := rand.New(rand.NewSource(e.Seed))
	if e.Lo == 0 && e.Hi == 0 {
		return PlantedGraph(e.Layers, e.Width, rng)
	}
	return LayeredGraph(e.Layers, e.Width, e.Lo, e.Hi, rng)
}

// Regret runs each named policy for K packets × Runs and returns the
// cumulative regret curve per policy, averaged over runs:
// R(k) = Σ_{j≤k} delay_j − k·D*(p*)   (paper Eq. 1).
func (e Experiment) Regret(policies []string) map[string][]float64 {
	g, src, dst := e.Build()
	_, dStar := g.BestPath(src, dst)
	out := make(map[string][]float64, len(policies))
	for _, name := range policies {
		curve := make([]float64, e.K)
		for run := 0; run < e.Runs; run++ {
			rng := rand.New(rand.NewSource(e.Seed + int64(1000+run)))
			p := NewPolicy(name, g, src, dst)
			cum := 0.0
			for k := 0; k < e.K; k++ {
				d, _ := p.SendPacket(rng)
				cum += float64(d)
				curve[k] += cum - float64(k+1)*dStar
			}
		}
		for k := range curve {
			curve[k] /= float64(e.Runs)
		}
		out[name] = curve
	}
	return out
}

// Frequencies reports, for one policy, how often each path rank (0 = true
// best path) was selected within each of `buckets` consecutive packet
// windows — the Fig 11 heatmap. It returns the matrix [bucket][rank] with
// rows normalized to 1, and the number of distinct paths.
func (e Experiment) Frequencies(policy string, buckets int) ([][]float64, int) {
	g, src, dst := e.Build()
	ranked, _ := g.RankPaths(src, dst)
	rankOf := make(map[string]int, len(ranked))
	for i, p := range ranked {
		rankOf[pathKey(p)] = i
	}
	freq := make([][]float64, buckets)
	for i := range freq {
		freq[i] = make([]float64, len(ranked))
	}
	perBucket := (e.K + buckets - 1) / buckets
	for run := 0; run < e.Runs; run++ {
		rng := rand.New(rand.NewSource(e.Seed + int64(5000+run)))
		p := NewPolicy(policy, g, src, dst)
		for k := 0; k < e.K; k++ {
			_, path := p.SendPacket(rng)
			if r, ok := rankOf[pathKey(path)]; ok {
				freq[k/perBucket][r]++
			}
		}
	}
	for _, row := range freq {
		total := 0.0
		for _, v := range row {
			total += v
		}
		if total > 0 {
			for i := range row {
				row[i] /= total
			}
		}
	}
	return freq, len(ranked)
}

func pathKey(p []int) string {
	b := make([]byte, 0, len(p)*3)
	for _, v := range p {
		b = append(b, byte(v), byte(v>>8), ';')
	}
	return string(b)
}
