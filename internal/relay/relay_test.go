package relay

import (
	"fmt"
	"testing"
	"time"

	"totoro/internal/simnet"
	"totoro/internal/transport"
)

// lossyNet builds a relay deployment over a lossy simulated network.
// links maps "src>dst" to the link success probability; everything not
// listed is lossless (acks and adverts flow on reverse links).
func lossyNet(seed int64, topo map[transport.Addr][]transport.Addr,
	theta map[string]float64, policy string) (*simnet.Network, map[transport.Addr]*Node, map[transport.Addr][]Data) {
	net := simnet.New(simnet.Config{
		Seed:    seed,
		Latency: simnet.ConstLatency(time.Millisecond),
		Loss: func(a, b transport.Addr) float64 {
			if th, ok := theta[string(a)+">"+string(b)]; ok {
				return 1 - th
			}
			return 0
		},
	})
	nodes := make(map[transport.Addr]*Node)
	delivered := make(map[transport.Addr][]Data)
	inOf := make(map[transport.Addr][]transport.Addr)
	for src, nbs := range topo {
		for _, dst := range nbs {
			inOf[dst] = append(inOf[dst], src)
		}
	}
	for addr, nbs := range topo {
		addr, nbs := addr, nbs
		net.AddNode(addr, func(e transport.Env) transport.Handler {
			n := New(e, Config{
				Neighbors:   nbs,
				InNeighbors: inOf[addr],
				AckTimeout:  20 * time.Millisecond,
				Policy:      policy,
			}, func(d Data) { delivered[addr] = append(delivered[addr], d) })
			nodes[addr] = n
			return transport.HandlerFunc(func(from transport.Addr, msg any) {
				n.Receive(from, msg)
			})
		})
	}
	return net, nodes, delivered
}

// diamond returns the greedy-trap topology: the shiny first hop s→a leads
// into a terrible link a→d; the mediocre first hop s→b leads to a great
// link b→d.
func diamond() (map[transport.Addr][]transport.Addr, map[string]float64) {
	topo := map[transport.Addr][]transport.Addr{
		"s": {"a", "b"},
		"a": {"d"},
		"b": {"d"},
		"d": {},
	}
	theta := map[string]float64{
		"s>a": 0.95, "a>d": 0.15,
		"s>b": 0.60, "b>d": 0.90,
	}
	return topo, theta
}

func advertiseAll(net *simnet.Network, nodes map[transport.Addr]*Node, rounds int) {
	for i := 0; i < rounds; i++ {
		for _, n := range nodes {
			n.AdvertiseNow()
		}
		net.RunUntilIdle()
	}
}

func TestAdvertsPropagateCosts(t *testing.T) {
	topo := map[transport.Addr][]transport.Addr{
		"a": {"b"}, "b": {"c"}, "c": {"d"}, "d": {},
	}
	net, nodes, _ := lossyNet(1, topo, nil, "totoro")
	advertiseAll(net, nodes, 4)
	j := nodes["a"].J("d")
	// Three perfect hops with optimistic costs ≥ 1 each.
	if j < 3 || j > 4 {
		t.Fatalf("J(a->d)=%v want ~3", j)
	}
	if nodes["d"].J("d") != 0 {
		t.Fatalf("self cost %v", nodes["d"].J("d"))
	}
}

func TestAllFramesDeliveredOnceUnderLoss(t *testing.T) {
	topo, theta := diamond()
	net, nodes, delivered := lossyNet(2, topo, theta, "totoro")
	advertiseAll(net, nodes, 3)
	const K = 300
	for k := 0; k < K; k++ {
		nodes["s"].Send("d", k)
		// Interleave adverts so the planner keeps learning.
		if k%25 == 0 {
			advertiseAll(net, nodes, 1)
		}
	}
	net.RunUntilIdle()
	got := delivered["d"]
	if len(got) != K {
		t.Fatalf("delivered %d of %d frames", len(got), K)
	}
	seen := map[int]bool{}
	for _, d := range got {
		v := d.Payload.(int)
		if seen[v] {
			t.Fatalf("frame %d delivered twice", v)
		}
		seen[v] = true
	}
}

func pathVia(d Data, hop transport.Addr) bool {
	for _, v := range d.Visited {
		if v == hop {
			return true
		}
	}
	return false
}

func TestTotoroPolicyAvoidsGreedyTrap(t *testing.T) {
	topo, theta := diamond()
	net, nodes, delivered := lossyNet(3, topo, theta, "totoro")
	advertiseAll(net, nodes, 3)
	const K = 400
	for k := 0; k < K; k++ {
		nodes["s"].Send("d", k)
		if k%20 == 0 {
			advertiseAll(net, nodes, 1)
		}
	}
	net.RunUntilIdle()
	viaB := 0
	for _, d := range delivered["d"] {
		if pathVia(d, "b") {
			viaB++
		}
	}
	if frac := float64(viaB) / float64(len(delivered["d"])); frac < 0.7 {
		t.Fatalf("totoro policy used the good path only %.2f of the time", frac)
	}
}

func TestGreedyPolicyFallsIntoTrap(t *testing.T) {
	topo, theta := diamond()
	net, nodes, delivered := lossyNet(4, topo, theta, "greedy")
	advertiseAll(net, nodes, 3)
	const K = 400
	for k := 0; k < K; k++ {
		nodes["s"].Send("d", k)
		if k%20 == 0 {
			advertiseAll(net, nodes, 1)
		}
	}
	net.RunUntilIdle()
	viaA := 0
	for _, d := range delivered["d"] {
		if pathVia(d, "a") {
			viaA++
		}
	}
	if frac := float64(viaA) / float64(len(delivered["d"])); frac < 0.5 {
		t.Fatalf("greedy unexpectedly avoided the trap (%.2f via a)", frac)
	}
}

func TestLinkEstimatesConverge(t *testing.T) {
	topo, theta := diamond()
	net, nodes, _ := lossyNet(5, topo, theta, "totoro")
	advertiseAll(net, nodes, 3)
	for k := 0; k < 500; k++ {
		nodes["s"].Send("d", k)
		if k%25 == 0 {
			advertiseAll(net, nodes, 1)
		}
	}
	net.RunUntilIdle()
	th, attempts := nodes["b"].LinkEstimate("d")
	if attempts < 100 {
		t.Fatalf("b->d barely used: %d attempts", attempts)
	}
	if th < 0.8 || th > 1.0 {
		t.Fatalf("b->d estimate %.3f want ~0.9", th)
	}
}

func TestUnreachableDestinationExpires(t *testing.T) {
	topo := map[transport.Addr][]transport.Addr{
		"a": {"b"}, "b": {}, "x": {},
	}
	net, nodes, delivered := lossyNet(6, topo, nil, "totoro")
	advertiseAll(net, nodes, 3)
	nodes["a"].Send("x", "lost")
	net.RunUntilIdle()
	if len(delivered["x"]) != 0 {
		t.Fatal("unreachable destination received a frame")
	}
	if nodes["a"].Metrics().Counter("relay.expired").Value() == 0 {
		t.Fatal("frame did not expire")
	}
}

func TestAdaptsWhenLinkDegrades(t *testing.T) {
	// Start with a perfect a-route; degrade it mid-run; traffic must shift
	// to the b-route (this is the "replan the data transfer paths" claim).
	topo := map[transport.Addr][]transport.Addr{
		"s": {"a", "b"}, "a": {"d"}, "b": {"d"}, "d": {},
	}
	theta := map[string]float64{
		"s>a": 0.95, "a>d": 0.95,
		"s>b": 0.70, "b>d": 0.70,
	}
	net, nodes, delivered := lossyNet(7, topo, theta, "totoro")
	advertiseAll(net, nodes, 3)
	send := func(base, k int) {
		for i := 0; i < k; i++ {
			nodes["s"].Send("d", base+i)
			if i%20 == 0 {
				advertiseAll(net, nodes, 1)
			}
		}
		net.RunUntilIdle()
	}
	send(0, 200)
	// Degrade the a-route drastically.
	theta["a>d"] = 0.05
	send(1000, 600)
	lateViaB := 0
	lateTotal := 0
	for _, d := range delivered["d"] {
		v := d.Payload.(int)
		if v >= 1400 { // the last third after degradation
			lateTotal++
			if pathVia(d, "b") {
				lateViaB++
			}
		}
	}
	if lateTotal == 0 {
		t.Fatal("no late frames delivered")
	}
	if frac := float64(lateViaB) / float64(lateTotal); frac < 0.6 {
		t.Fatalf("planner did not shift away from the degraded link (%.2f via b)", frac)
	}
}

func TestStatsAccounting(t *testing.T) {
	topo, theta := diamond()
	net, nodes, _ := lossyNet(8, topo, theta, "totoro")
	advertiseAll(net, nodes, 3)
	for k := 0; k < 50; k++ {
		nodes["s"].Send("d", k)
	}
	net.RunUntilIdle()
	m := nodes["s"].Metrics()
	if fwd := m.Counter("relay.forwarded").Value(); fwd < 50 {
		t.Fatalf("forwarded=%d", fwd)
	}
	if m.Counter("relay.retransmits").Value() == 0 {
		t.Fatal("lossy links produced no retransmissions")
	}
	fmt.Println() // keep fmt imported for debugging convenience
}
