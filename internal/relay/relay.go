// Package relay is the distributed, in-network realization of the
// paper's bandit-based path planning model (§5): it replans the data
// transfer paths that carry models and gradients between tree neighbors
// when the direct links are unreliable.
//
// Where internal/bandit implements and evaluates Algorithm 1 with a
// global view (the Fig 10/11 study), this package runs the same policy as
// an actual protocol:
//
//   - every node keeps semi-bandit statistics (attempts/successes) only
//     for its own outgoing links, learned from per-hop acknowledgements
//     and retransmissions — a lost frame is retried until acked, so the
//     per-link delay really is geometric in the link success probability;
//   - the long-term routing cost J(w) is propagated by distance-vector
//     advertisements: each node periodically tells its neighbors its
//     current optimistic cost-to-destination, and computes its own as
//     J(v) = min over neighbors of ω(v,w) + J(w)  (Algorithm 1, line 3),
//     where ω is the KL-UCB optimistic link delay;
//   - data frames are forwarded hop-by-hop to the neighbor minimizing
//     ω + J, with a TTL and a visited list guarding against transient
//     distance-vector loops.
package relay

import (
	"totoro/internal/transport"
)

// Message is the marker interface for relay wire messages.
type Message interface{ relayMessage() }

// Data is one payload frame in flight.
type Data struct {
	Dst    transport.Addr
	Origin transport.Addr
	// ID is origin-unique and used for duplicate suppression (a hop whose
	// ack was lost is retransmitted and may arrive twice).
	ID uint64
	// Seq is the hop-local sequence number acknowledged by Ack.
	Seq     uint64
	TTL     int
	Visited []transport.Addr
	Payload any
}

func (Data) relayMessage() {}

// WireSize charges the header plus payload.
func (d Data) WireSize() int { return 48 + 16*len(d.Visited) + transport.SizeOf(d.Payload) }

// Ack acknowledges one hop of one frame.
type Ack struct{ Seq uint64 }

func (Ack) relayMessage() {}

// WireSize reports a minimal ack frame.
func (Ack) WireSize() int { return 16 }

// Advert carries a node's optimistic cost-to-destination table to its
// neighbors (the distance-vector exchange behind J).
type Advert struct {
	From transport.Addr
	J    map[transport.Addr]float64
}

func (Advert) relayMessage() {}

// WireSize grows with the advertised table.
func (a Advert) WireSize() int { return 24 + 24*len(a.J) }
