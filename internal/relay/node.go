package relay

import (
	"math"
	"sort"
	"time"

	"totoro/internal/bandit"
	"totoro/internal/obs"
	"totoro/internal/transport"
)

// Config parameterizes a relay node.
type Config struct {
	// Neighbors are the node's outgoing links.
	Neighbors []transport.Addr
	// InNeighbors are the nodes with links INTO this node; cost
	// advertisements flow to them (a node's J is useful to whoever might
	// forward through it). Defaults to Neighbors (symmetric links).
	InNeighbors []transport.Addr
	// AckTimeout is the per-hop retransmission deadline (one "time slot"
	// of the geometric link model).
	AckTimeout time.Duration
	// AdvertiseInterval is the distance-vector exchange period. Zero
	// disables periodic adverts (tests drive AdvertiseNow explicitly).
	AdvertiseInterval time.Duration
	// MaxTTL bounds a frame's hop count (default 32).
	MaxTTL int
	// Policy selects the planning policy: "totoro" (default, KL-UCB with
	// lookahead) or "greedy" (empirical next-hop, the Fig 10 baseline) —
	// kept here so the ablation runs both over identical plumbing.
	Policy string
}

func (c Config) withDefaults() Config {
	if c.AckTimeout == 0 {
		c.AckTimeout = 50 * time.Millisecond
	}
	if c.MaxTTL == 0 {
		c.MaxTTL = 32
	}
	if c.Policy == "" {
		c.Policy = "totoro"
	}
	if c.InNeighbors == nil {
		c.InNeighbors = c.Neighbors
	}
	return c
}

// linkStats is this node's semi-bandit record for one outgoing link.
type linkStats struct {
	attempts  int
	successes int
}

func (s *linkStats) thetaHat() float64 {
	if s.attempts == 0 {
		return 0
	}
	return float64(s.successes) / float64(s.attempts)
}

// pendingFrame is a frame awaiting its hop ack.
type pendingFrame struct {
	data   Data
	next   transport.Addr
	cancel func()
}

// Node is one relay participant.
type Node struct {
	env transport.Env
	cfg Config

	links map[transport.Addr]*linkStats
	// order is the sorted neighbor iteration order: route()'s argmin scans
	// it so cost ties break toward the same neighbor in every run.
	order []transport.Addr
	// jSelf is this node's optimistic cost-to-destination table.
	jSelf map[transport.Addr]float64
	// jNeighbor is the last advertised table per neighbor.
	jNeighbor map[transport.Addr]map[transport.Addr]float64

	seq     uint64
	frameID uint64
	pending map[uint64]*pendingFrame
	seen    map[uint64]bool // frame IDs already routed (duplicate guard)
	totalTx int             // time-slot counter τ for the KL-UCB budget
	deliver func(d Data)
	stopped bool
	advStop func()

	// Cached handles into env.Metrics() — see the "relay.*" names below.
	ctrDelivered   *obs.Counter
	ctrForwarded   *obs.Counter
	ctrRetransmits *obs.Counter
	ctrExpired     *obs.Counter
}

// New creates a relay node; deliver fires when a frame addressed to this
// node arrives (may be nil).
func New(env transport.Env, cfg Config, deliver func(Data)) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		env:       env,
		cfg:       cfg,
		links:     make(map[transport.Addr]*linkStats, len(cfg.Neighbors)),
		jSelf:     map[transport.Addr]float64{env.Self(): 0},
		jNeighbor: make(map[transport.Addr]map[transport.Addr]float64),
		pending:   make(map[uint64]*pendingFrame),
		seen:      make(map[uint64]bool),
		deliver:   deliver,
	}
	m := env.Metrics()
	n.ctrDelivered = m.Counter("relay.delivered")
	n.ctrForwarded = m.Counter("relay.forwarded")
	n.ctrRetransmits = m.Counter("relay.retransmits")
	n.ctrExpired = m.Counter("relay.expired") // frames dropped on TTL/visited exhaustion
	for _, nb := range cfg.Neighbors {
		n.links[nb] = &linkStats{}
	}
	n.order = make([]transport.Addr, 0, len(n.links))
	for nb := range n.links {
		n.order = append(n.order, nb)
	}
	sort.Slice(n.order, func(i, j int) bool { return n.order[i] < n.order[j] })
	if cfg.AdvertiseInterval > 0 {
		var tick func()
		tick = func() {
			n.AdvertiseNow()
			n.advStop = n.env.After(n.cfg.AdvertiseInterval, tick)
		}
		n.advStop = env.After(cfg.AdvertiseInterval, tick)
	}
	return n
}

// Metrics returns the node's telemetry registry ("relay.*" counters).
func (n *Node) Metrics() *obs.Registry { return n.env.Metrics() }

// Stop cancels periodic advertising.
func (n *Node) Stop() {
	n.stopped = true
	if n.advStop != nil {
		n.advStop()
	}
}

// omega is the empirical transmission cost with exploration adjustment of
// one outgoing link: 1 / KLUCB(θ̂) (Algorithm 1).
func (n *Node) omega(nb transport.Addr) float64 {
	s, ok := n.links[nb]
	if !ok {
		return math.Inf(1)
	}
	budget := math.Log(float64(n.totalTx + 1))
	return 1 / bandit.KLUCBUpper(s.thetaHat(), s.attempts, budget)
}

// greedyCost is the next-hop baseline's link score: empirical delay with
// one optimistic free try.
func (n *Node) greedyCost(nb transport.Addr) float64 {
	s := n.links[nb]
	if s.attempts == 0 {
		return 1
	}
	th := s.thetaHat()
	if th <= 0 {
		return math.MaxFloat64 / 4
	}
	return 1 / th
}

// recomputeJ refreshes this node's cost table from its links' ω and the
// neighbors' advertised costs.
func (n *Node) recomputeJ() {
	j := map[transport.Addr]float64{n.env.Self(): 0}
	for nb, tbl := range n.jNeighbor {
		w := n.omega(nb)
		for dst, cost := range tbl {
			if c := w + cost; c < jOr(j, dst) {
				j[dst] = c
			}
		}
	}
	// Direct links: a neighbor is itself a destination one ω away.
	for nb := range n.links {
		if c := n.omega(nb); c < jOr(j, nb) {
			j[nb] = c
		}
	}
	n.jSelf = j
}

func jOr(m map[transport.Addr]float64, k transport.Addr) float64 {
	if v, ok := m[k]; ok {
		return v
	}
	return math.Inf(1)
}

// AdvertiseNow recomputes and pushes this node's cost table to all
// neighbors.
func (n *Node) AdvertiseNow() {
	n.recomputeJ()
	tbl := make(map[transport.Addr]float64, len(n.jSelf))
	for d, c := range n.jSelf {
		tbl[d] = c
	}
	for _, nb := range n.cfg.InNeighbors {
		n.env.Send(nb, Advert{From: n.env.Self(), J: tbl})
	}
}

// Send originates a payload toward dst.
func (n *Node) Send(dst transport.Addr, payload any) {
	n.frameID++
	n.route(Data{
		Dst:     dst,
		Origin:  n.env.Self(),
		ID:      hashAddr(n.env.Self())<<20 | n.frameID,
		TTL:     n.cfg.MaxTTL,
		Payload: payload,
	})
}

// hashAddr gives frame IDs an origin-specific high part.
func hashAddr(a transport.Addr) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h ^= uint64(a[i])
		h *= 1099511628211
	}
	return h & 0xFFFFFFFFFFF
}

// route picks the next hop per the configured policy and transmits with
// per-hop retransmission.
func (n *Node) route(d Data) {
	if d.Dst == n.env.Self() {
		n.ctrDelivered.Inc()
		if n.deliver != nil {
			n.deliver(d)
		}
		return
	}
	if d.TTL <= 0 {
		n.ctrExpired.Inc()
		return
	}
	d.TTL--
	visited := make(map[transport.Addr]bool, len(d.Visited)+1)
	for _, v := range d.Visited {
		visited[v] = true
	}
	visited[n.env.Self()] = true

	best := transport.None
	bestCost := math.Inf(1)
	for _, nb := range n.order {
		if visited[nb] && nb != d.Dst {
			continue
		}
		var cost float64
		if n.cfg.Policy == "greedy" {
			cost = n.greedyCost(nb)
			if nb != d.Dst {
				// The greedy baseline still needs reachability; use hop
				// counts only (no quality lookahead).
				if _, reach := n.jNeighborHas(nb, d.Dst); !reach {
					continue
				}
			}
		} else {
			if nb == d.Dst {
				cost = n.omega(nb)
			} else {
				jn, ok := n.jNeighborHas(nb, d.Dst)
				if !ok {
					continue
				}
				cost = n.omega(nb) + jn
			}
		}
		if cost < bestCost {
			best, bestCost = nb, cost
		}
	}
	if best == transport.None {
		n.ctrExpired.Inc()
		return
	}
	d.Visited = append(append([]transport.Addr(nil), d.Visited...), n.env.Self())
	n.transmit(d, best)
}

// jNeighborHas returns neighbor nb's advertised cost to dst.
func (n *Node) jNeighborHas(nb, dst transport.Addr) (float64, bool) {
	tbl, ok := n.jNeighbor[nb]
	if !ok {
		return 0, false
	}
	c, ok := tbl[dst]
	return c, ok
}

// transmit sends the frame one hop, retrying on ack timeout; every attempt
// is a semi-bandit observation.
func (n *Node) transmit(d Data, next transport.Addr) {
	n.ctrForwarded.Inc()
	n.seq++
	d.Seq = n.seq // hop-local id for the ack
	s := n.links[next]
	s.attempts++
	n.totalTx++
	p := &pendingFrame{data: d, next: next}
	p.cancel = n.env.After(n.cfg.AckTimeout, func() { n.retry(d.Seq) })
	n.pending[d.Seq] = p
	n.env.Send(next, d)
}

func (n *Node) retry(seq uint64) {
	p, ok := n.pending[seq]
	if !ok {
		return
	}
	n.ctrRetransmits.Inc()
	s := n.links[p.next]
	s.attempts++
	n.totalTx++
	p.cancel = n.env.After(n.cfg.AckTimeout, func() { n.retry(seq) })
	n.env.Send(p.next, p.data)
}

// Receive implements the relay part of a node's message handling; it
// reports whether the message belonged to this layer.
func (n *Node) Receive(from transport.Addr, msg any) bool {
	switch m := msg.(type) {
	case Data:
		n.env.Send(from, Ack{Seq: m.Seq})
		if n.seen[m.ID] {
			return true // retransmitted duplicate of an already-routed frame
		}
		n.seen[m.ID] = true
		n.route(m)
	case Ack:
		if p, ok := n.pending[m.Seq]; ok {
			p.cancel()
			delete(n.pending, m.Seq)
			n.links[p.next].successes++
		}
	case Advert:
		tbl := make(map[transport.Addr]float64, len(m.J))
		for d, c := range m.J {
			tbl[d] = c
		}
		n.jNeighbor[m.From] = tbl
		n.recomputeJ()
	default:
		return false
	}
	return true
}

// J returns this node's current optimistic cost estimate to dst.
func (n *Node) J(dst transport.Addr) float64 { return jOr(n.jSelf, dst) }

// LinkEstimate reports the learned success probability of one link.
func (n *Node) LinkEstimate(nb transport.Addr) (thetaHat float64, attempts int) {
	s, ok := n.links[nb]
	if !ok {
		return 0, 0
	}
	return s.thetaHat(), s.attempts
}
