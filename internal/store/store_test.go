package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"totoro/internal/wire/codec"
)

// Test-local record types, registered like real engine records: a codec
// tag in the app range plus a RegisterRecords declaration.
type testRec struct {
	Seq  int
	Name string
}

type testState struct {
	Vals []float64
	Note string
}

func init() {
	codec.RegisterCodec(240, testRec{},
		func(e *codec.Enc, v any) {
			r := v.(testRec)
			e.Int(r.Seq)
			e.String(r.Name)
		},
		func(d *codec.Dec) any { return testRec{Seq: d.Int(), Name: d.String()} })
	codec.RegisterCodec(241, testState{},
		func(e *codec.Enc, v any) {
			s := v.(testState)
			e.Float64s(s.Vals)
			e.String(s.Note)
		},
		func(d *codec.Dec) any { return testState{Vals: d.Float64s(), Note: d.String()} })
	RegisterRecords(testRec{}, testState{})
}

func recN(n int) []any {
	out := make([]any, n)
	for i := range out {
		out[i] = testRec{Seq: i + 1, Name: "rec"}
	}
	return out
}

func appendAll(t *testing.T, s Store, recs []any) {
	t.Helper()
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemRoundTrip(t *testing.T) {
	m := NewMem()
	want := recN(5)
	appendAll(t, m, want)
	state, recs, err := m.Load()
	if err != nil || state != nil {
		t.Fatalf("Load = state %v, err %v", state, err)
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("recs = %v, want %v", recs, want)
	}
}

func TestMemSnapshotTruncates(t *testing.T) {
	m := NewMem()
	appendAll(t, m, recN(3))
	if err := m.Snapshot(testState{Vals: []float64{1, 2}, Note: "s"}); err != nil {
		t.Fatal(err)
	}
	if log, snap := m.Bytes(); log != 0 || snap == 0 {
		t.Fatalf("after snapshot: log %d, snap %d", log, snap)
	}
	late := []any{testRec{Seq: 9, Name: "late"}}
	appendAll(t, m, late)
	state, recs, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(state, testState{Vals: []float64{1, 2}, Note: "s"}) {
		t.Fatalf("state = %v", state)
	}
	if !reflect.DeepEqual(recs, late) {
		t.Fatalf("recs = %v, want %v", recs, late)
	}
}

// TestSnapshotCrashWindow reproduces the one crash ordering the
// snapshot/truncate pair cannot make atomic: the snapshot is durable but
// the WAL was never truncated. Replay must skip the records the snapshot
// already folded (LSN guard) and apply only the later ones.
func TestSnapshotCrashWindow(t *testing.T) {
	// Full journal of 5 records, as the un-truncated WAL would hold.
	full := NewMem()
	appendAll(t, full, recN(5))

	// Store that snapshotted after record 3, then appended 4 and 5.
	m := NewMem()
	appendAll(t, m, recN(3))
	if err := m.Snapshot(testState{Note: "at-3"}); err != nil {
		t.Fatal(err)
	}
	appendAll(t, m, recN(5)[3:])

	// Crash window: the WAL still holds all five records.
	m.log = append([]byte(nil), full.log...)

	state, recs, err := m.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(state, testState{Note: "at-3"}) {
		t.Fatalf("state = %v", state)
	}
	if !reflect.DeepEqual(recs, recN(5)[3:]) {
		t.Fatalf("recs = %v, want records 4..5 only", recs)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	f, err := Open(dir, FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	want := recN(4)
	appendAll(t, f, want)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	f, err = Open(dir, FileConfig{Sync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	state, recs, err := f.Load()
	if err != nil || state != nil {
		t.Fatalf("Load = state %v, err %v", state, err)
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("recs = %v, want %v", recs, want)
	}
	// The LSN continues across reopen: snapshot now must cover 4 records.
	if err := f.Snapshot(testState{Note: "cover"}); err != nil {
		t.Fatal(err)
	}
	state, recs, err = f.Load()
	if err != nil || len(recs) != 0 {
		t.Fatalf("after snapshot: %d recs, err %v", len(recs), err)
	}
	if !reflect.DeepEqual(state, testState{Note: "cover"}) {
		t.Fatalf("state = %v", state)
	}
}

func TestFileTornTail(t *testing.T) {
	dir := t.TempDir()
	f, err := Open(dir, FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, f, recN(3))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	f, err = Open(dir, FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, recs, err := f.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, recN(2)) {
		t.Fatalf("recs = %v, want first 2", recs)
	}
	// The torn record's LSN was lost with it; the next append reuses it,
	// which is correct — the lost record never took effect.
	if err := f.Append(testRec{Seq: 3, Name: "rec"}); err != nil {
		t.Fatal(err)
	}
	_, recs, err = f.Load()
	if err != nil || len(recs) != 3 {
		t.Fatalf("after re-append: %d recs, err %v", len(recs), err)
	}
}

func TestFileCorruptSnapshotSurfaced(t *testing.T) {
	dir := t.TempDir()
	f, err := Open(dir, FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, f, recN(2))
	f.Close()
	if err := os.WriteFile(filepath.Join(dir, "snapshot.dat"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err = Open(dir, FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	state, recs, err := f.Load()
	if err == nil {
		t.Fatal("corrupt snapshot not surfaced")
	}
	if state != nil {
		t.Fatalf("state = %v, want nil", state)
	}
	if !reflect.DeepEqual(recs, recN(2)) {
		t.Fatalf("WAL-only replay lost records: %v", recs)
	}
}

func TestUnregisteredRecordRefused(t *testing.T) {
	type rogue struct{ X int }
	m := NewMem()
	if err := m.Append(rogue{1}); err == nil {
		t.Fatal("unregistered record accepted")
	}
	if err := m.Snapshot(rogue{1}); err == nil {
		t.Fatal("unregistered snapshot accepted")
	}
}

func TestMemFileParity(t *testing.T) {
	// The two implementations must produce byte-identical journals: the
	// simulator's recovery then exercises exactly what a real node writes.
	m := NewMem()
	appendAll(t, m, recN(3))

	dir := t.TempDir()
	f, err := Open(dir, FileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, f, recN(3))
	f.Close()
	raw, err := os.ReadFile(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != string(m.log) {
		t.Fatalf("file journal (%d bytes) differs from memory journal (%d bytes)", len(raw), len(m.log))
	}
}
