package wal

import (
	"bytes"
	"testing"
)

// FuzzScan drives Scan with arbitrary bytes — torn tails, bit flips,
// hostile length claims — and checks the recovery contract: never panic,
// valid is a consistent record boundary, and re-scanning the valid prefix
// reproduces exactly the same records (recovery is idempotent).
func FuzzScan(f *testing.F) {
	f.Add([]byte{})
	f.Add(frames([]byte("hello"), []byte("world")))
	torn := frames([]byte("hello"), []byte("world"))
	f.Add(torn[:len(torn)-3])
	flipped := append([]byte(nil), torn...)
	flipped[len(flipped)-1] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge length claim
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00})                               // empty body, zero crc
	f.Fuzz(func(t *testing.T, data []byte) {
		bodies, valid := Scan(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid = %d out of range [0,%d]", valid, len(data))
		}
		again, validAgain := Scan(data[:valid])
		if validAgain != valid || len(again) != len(bodies) {
			t.Fatalf("rescan of valid prefix: %d records/%d bytes, want %d/%d",
				len(again), validAgain, len(bodies), valid)
		}
		for i := range bodies {
			if !bytes.Equal(again[i], bodies[i]) {
				t.Fatalf("rescan record %d differs", i)
			}
		}
		// Re-framing the recovered bodies must reproduce the valid prefix
		// byte for byte: Scan accepts only canonical frames.
		var rebuilt []byte
		for _, b := range bodies {
			rebuilt = AppendRecord(rebuilt, b)
		}
		if !bytes.Equal(rebuilt, data[:valid]) {
			t.Fatalf("rebuilt prefix differs from valid prefix")
		}
	})
}

// FuzzScanAppend checks the append/recover property the engine depends
// on: whatever garbage follows a well-formed log, the log's records are
// recovered in full and in order.
func FuzzScanAppend(f *testing.F) {
	f.Add([]byte("record-a"), []byte("record-b"), []byte{0xde, 0xad})
	f.Add([]byte{}, []byte{1, 2, 3}, []byte{})
	f.Fuzz(func(t *testing.T, a, b, tail []byte) {
		log := frames(a, b)
		bodies, valid := Scan(append(append([]byte(nil), log...), tail...))
		if valid < len(log) {
			t.Fatalf("valid = %d, want >= %d", valid, len(log))
		}
		if len(bodies) < 2 || !bytes.Equal(bodies[0], a) || !bytes.Equal(bodies[1], b) {
			t.Fatalf("intact records not recovered")
		}
	})
}
