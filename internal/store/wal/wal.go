// Package wal implements the append-only record log backing the engine's
// durable state (internal/store): CRC-guarded varint-framed records over a
// flat byte stream, written so that a crash mid-append — a torn tail — is
// always recoverable by truncating back to the last intact record.
//
// Record layout on the stream:
//
//	uvarint(len(body)) | crc32c(body) as 4 little-endian bytes | body
//
// The length prefix mirrors the v2 network framing (internal/wire/codec),
// so a persisted record costs the same arithmetic as a network frame; the
// checksum is what the network does not need (TCP already checksums) but a
// disk does: it turns bit rot and torn writes into a clean prefix cut
// instead of a garbage replay.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	sync2 "sync" // the plain name collides with Writer's sync field
)

// MaxRecordBytes caps one record's claimed body length before any
// allocation happens on its behalf; a length prefix beyond it marks the
// tail malformed. Matches the network codec's frame cap.
const MaxRecordBytes = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends one framed record to dst and returns the extended
// slice (append-style API, so callers can frame into a reused buffer).
func AppendRecord(dst, body []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(body, castagnoli))
	return append(dst, body...)
}

// FrameSize returns the on-disk size of one record with the given body
// length: the uvarint length prefix, the 4-byte checksum, and the body.
func FrameSize(bodyLen int) int {
	return uvarintLen(uint64(bodyLen)) + 4 + bodyLen
}

func uvarintLen(x uint64) int {
	n := 1
	for ; x >= 0x80; x >>= 7 {
		n++
	}
	return n
}

// Scan walks b from the front and returns the bodies of every intact
// record plus the byte offset where the valid prefix ends. It never fails:
// a truncated length prefix, an over-limit length claim, a short tail, or
// a checksum mismatch all simply end the scan — whatever follows is a torn
// or corrupt tail the caller should discard (Writer truncates the file to
// the returned offset on open). The returned bodies alias b.
func Scan(b []byte) (bodies [][]byte, valid int) {
	off := 0
	for {
		n, k := binary.Uvarint(b[off:])
		if k <= 0 || n > MaxRecordBytes {
			return bodies, off
		}
		if k != uvarintLen(n) {
			return bodies, off // non-canonical length prefix: not ours
		}
		if len(b)-off-k < 4 {
			return bodies, off
		}
		crc := binary.LittleEndian.Uint32(b[off+k:])
		start := off + k + 4
		if len(b)-start < int(n) {
			return bodies, off
		}
		body := b[start : start+int(n)]
		if crc32.Checksum(body, castagnoli) != crc {
			return bodies, off
		}
		bodies = append(bodies, body)
		off = start + int(n)
	}
}

// Writer appends framed records to a log file. Open recovers the file
// first — scanning it and truncating any torn tail — so an append after a
// crash always starts at a record boundary.
//
// The writer is goroutine-safe. In synchronous mode with group commit
// enabled (SetGroupCommit), concurrent appenders share fsyncs with a
// lock-leader protocol: whoever reaches the sync lock first flushes for
// everyone written so far, and followers whose bytes that flush covered
// return without issuing their own — one disk flush amortized over the
// whole group, with every appender still only acking after its record is
// durable.
type Writer struct {
	f     *os.File
	sync  bool
	group bool
	valid int // records found intact at open

	mu   sync2.Mutex // guards file writes, size, buf, herr, synced
	size int64
	buf  []byte
	herr error // sticky write error; appends after it are refused

	syncMu sync2.Mutex // held by the group-commit fsync leader
	synced int64       // bytes known durable (group mode)
}

// Open opens (creating if needed) the log at path, truncates any torn
// tail, and returns a Writer positioned for appending plus the bodies of
// the intact records. sync makes every Append fsync before returning
// (durability against power loss, at ~disk-flush latency per record).
func Open(path string, sync bool) (*Writer, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	bodies, valid := Scan(raw)
	if valid != len(raw) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Writer{f: f, sync: sync, size: int64(valid), valid: len(bodies)}, bodies, nil
}

// Recovered reports how many intact records Open found (diagnostics).
func (w *Writer) Recovered() int { return w.valid }

// Size returns the current log length in bytes.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// SetGroupCommit toggles group-commit batching for synchronous appends.
// It only changes who issues fsyncs, never the durability contract: an
// Append still returns only after its record is on stable storage.
func (w *Writer) SetGroupCommit(on bool) {
	w.mu.Lock()
	w.group = on
	w.mu.Unlock()
}

// Append frames body onto the log, fsyncing if the writer is synchronous.
// After a failed append the log may hold a torn tail; the writer goes
// sticky-failed (every later Append returns the same error) so the caller
// sees a consistent "storage down" signal rather than interleaved frames.
func (w *Writer) Append(body []byte) error {
	w.mu.Lock()
	if w.herr != nil {
		err := w.herr
		w.mu.Unlock()
		return err
	}
	w.buf = AppendRecord(w.buf[:0], body)
	n, err := w.f.Write(w.buf)
	w.size += int64(n)
	if err != nil {
		w.herr = err
		w.mu.Unlock()
		return err
	}
	end := w.size
	doSync, group := w.sync, w.group
	if doSync && !group {
		// Unbatched synchronous mode: flush under the write lock, one
		// fsync per record.
		if err := w.f.Sync(); err != nil {
			w.herr = err
			w.mu.Unlock()
			return err
		}
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	if !doSync {
		return nil
	}
	return w.groupSync(end)
}

// groupSync makes the caller's bytes durable via the lock-leader
// protocol: the first appender through syncMu flushes everything written
// so far; appenders that arrive later and find their bytes already
// covered by that flush return immediately.
func (w *Writer) groupSync(end int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.herr != nil {
		err := w.herr
		w.mu.Unlock()
		return err
	}
	if w.synced >= end {
		w.mu.Unlock()
		return nil // a leader's flush already covered our record
	}
	target := w.size
	w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.mu.Lock()
		w.herr = err
		w.mu.Unlock()
		return err
	}
	w.mu.Lock()
	if target > w.synced {
		w.synced = target
	}
	w.mu.Unlock()
	return nil
}

// Truncate drops every record (after a snapshot has captured their
// effects) and clears any sticky error: a truncated log is back at a
// record boundary whatever the failed append left behind.
func (w *Writer) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	w.size = 0
	w.synced = 0
	w.herr = nil
	if w.sync {
		return w.f.Sync()
	}
	return nil
}

// Sync flushes the file to stable storage.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Sync()
}

// Close syncs and closes the log.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
