package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func frames(bodies ...[]byte) []byte {
	var out []byte
	for _, b := range bodies {
		out = append(out, AppendRecord(nil, b)...)
	}
	return out
}

func TestScanRoundTrip(t *testing.T) {
	bodies := [][]byte{[]byte("alpha"), {}, []byte("a much longer record body with some structure 0123456789")}
	log := frames(bodies...)
	got, valid := Scan(log)
	if valid != len(log) {
		t.Fatalf("valid = %d, want %d", valid, len(log))
	}
	if len(got) != len(bodies) {
		t.Fatalf("got %d records, want %d", len(got), len(bodies))
	}
	for i := range bodies {
		if !bytes.Equal(got[i], bodies[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], bodies[i])
		}
	}
}

func TestScanTornTail(t *testing.T) {
	full := frames([]byte("one"), []byte("two"), []byte("three"))
	oneTwo := frames([]byte("one"), []byte("two"))
	// Cutting anywhere inside the third record must recover exactly the
	// first two, with valid pointing at the boundary.
	for cut := len(oneTwo) + 1; cut < len(full); cut++ {
		got, valid := Scan(full[:cut])
		if len(got) != 2 || valid != len(oneTwo) {
			t.Fatalf("cut %d: got %d records, valid %d (want 2, %d)", cut, len(got), valid, len(oneTwo))
		}
	}
}

func TestScanBitFlip(t *testing.T) {
	full := frames([]byte("first"), []byte("second"))
	first := frames([]byte("first"))
	// Flipping any bit in the second record must leave the first intact
	// and never return a corrupted body.
	for i := len(first); i < len(full); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[i] ^= 1 << bit
			got, valid := Scan(mut)
			if len(got) < 1 || !bytes.Equal(got[0], []byte("first")) {
				t.Fatalf("flip %d/%d: lost first record", i, bit)
			}
			if len(got) == 2 && !bytes.Equal(got[1], []byte("second")) {
				t.Fatalf("flip %d/%d: returned corrupted body %q", i, bit, got[1])
			}
			if valid > len(mut) {
				t.Fatalf("flip %d/%d: valid %d beyond input %d", i, bit, valid, len(mut))
			}
		}
	}
}

func TestScanOversizeClaim(t *testing.T) {
	log := frames([]byte("keep"))
	// A length prefix claiming more than MaxRecordBytes ends the scan.
	bad := append(append([]byte(nil), log...), 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	got, valid := Scan(bad)
	if len(got) != 1 || valid != len(log) {
		t.Fatalf("got %d records, valid %d; want 1, %d", len(got), valid, len(log))
	}
}

func TestWriterRecoversTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, got, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("fresh log returned %d records", len(got))
	}
	for _, b := range []string{"r1", "r2", "r3"} {
		if err := w.Append([]byte(b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail mid-record, as a crash during the last write would.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-1], 0o644); err != nil {
		t.Fatal(err)
	}

	w, got, err = Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0]) != "r1" || string(got[1]) != "r2" {
		t.Fatalf("recovered %d records: %q", len(got), got)
	}
	if w.Recovered() != 2 {
		t.Fatalf("Recovered() = %d, want 2", w.Recovered())
	}
	// Appending after recovery lands on a clean boundary.
	if err := w.Append([]byte("r3b")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	bodies, valid := Scan(raw)
	if valid != len(raw) || len(bodies) != 3 || string(bodies[2]) != "r3b" {
		t.Fatalf("after recovery+append: %d records, valid %d/%d", len(bodies), valid, len(raw))
	}
}

func TestWriterTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != 0 {
		t.Fatalf("size after truncate = %d", w.Size())
	}
	if err := w.Append([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	bodies, _ := Scan(raw)
	if len(bodies) != 1 || string(bodies[0]) != "y" {
		t.Fatalf("after truncate: %q", bodies)
	}
}

func TestFrameSize(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 300, 1 << 20} {
		body := make([]byte, n)
		if got, want := FrameSize(n), len(AppendRecord(nil, body)); got != want {
			t.Fatalf("FrameSize(%d) = %d, want %d", n, got, want)
		}
	}
}
