package store

import (
	"fmt"
	"os"
	"path/filepath"

	"totoro/internal/store/wal"
)

// FileConfig parameterizes a file-backed store.
type FileConfig struct {
	// Sync fsyncs the WAL on every append. Off by default: the journal
	// then survives process crashes (the common edge failure) but a
	// power cut can cost the records since the last OS flush — the same
	// trade most edge databases default to.
	Sync bool
	// GroupCommit batches synchronous appends issued by concurrent
	// goroutines into shared fsyncs (lock-leader, see wal.Writer). Same
	// durability, one disk flush amortized over the group; no effect
	// without Sync.
	GroupCommit bool
}

// File is the file-backed Store for totoro-node: a WAL at <dir>/wal.log
// and the latest snapshot at <dir>/snapshot.dat, both in the framed
// record format of internal/store/wal. Snapshots are written atomically
// (tmp file, fsync, rename) and only then is the WAL truncated; the LSN
// embedded in each record makes the crash window between those two steps
// idempotent on replay.
type File struct {
	dir string
	cfg FileConfig
	w   *wal.Writer
	lsn uint64
}

const (
	walFile  = "wal.log"
	snapFile = "snapshot.dat"
)

// Open opens (creating if needed) the store rooted at dir, recovering the
// WAL's intact prefix — any torn tail from a crash mid-append is
// truncated away.
func Open(dir string, cfg FileConfig) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w, bodies, err := wal.Open(filepath.Join(dir, walFile), cfg.Sync)
	if err != nil {
		return nil, err
	}
	w.SetGroupCommit(cfg.GroupCommit)
	f := &File{dir: dir, cfg: cfg, w: w}
	// Seed the LSN from everything on disk so appends continue the
	// sequence even if the caller never calls Load.
	snapLSN, _, _ := f.readSnapshot()
	_, last := decodeLog(bodies, snapLSN)
	f.lsn = last
	return f, nil
}

// readSnapshot reads and decodes snapshot.dat. A missing file is not an
// error (no snapshot yet); an unreadable or corrupt one is reported so
// the caller can decide whether a WAL-only boot is acceptable.
func (f *File) readSnapshot() (lsn uint64, state any, err error) {
	raw, err := os.ReadFile(filepath.Join(f.dir, snapFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, nil
		}
		return 0, nil, err
	}
	bodies, valid := wal.Scan(raw)
	if len(bodies) != 1 || valid != len(raw) {
		return 0, nil, fmt.Errorf("store: corrupt snapshot (%d intact records, %d/%d valid bytes)",
			len(bodies), valid, len(raw))
	}
	return decodeBody(bodies[0])
}

// Append implements Store.
func (f *File) Append(rec any) error {
	if err := registered(rec); err != nil {
		return err
	}
	body, err := encodeBody(f.lsn+1, rec)
	if err != nil {
		return err
	}
	if err := f.w.Append(body); err != nil {
		return err
	}
	f.lsn++
	return nil
}

// Snapshot implements Store. The image lands on disk atomically: a crash
// at any point leaves either the old snapshot or the new one, never a
// torn mix, and the WAL is only truncated after the rename is durable.
func (f *File) Snapshot(state any) error {
	if err := registered(state); err != nil {
		return err
	}
	body, err := encodeBody(f.lsn, state)
	if err != nil {
		return err
	}
	framed := wal.AppendRecord(nil, body)
	tmp := filepath.Join(f.dir, snapFile+".tmp")
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(framed); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, snapFile)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(f.dir)
	return f.w.Truncate()
}

// syncDir flushes directory metadata so the snapshot rename is durable;
// best effort — some filesystems refuse fsync on directories.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Load implements Store: the latest intact snapshot plus every decodable
// record past it, read back from disk (so it measures true cold-recovery
// cost). A corrupt snapshot is surfaced as an error alongside a
// best-effort WAL-only replay (state == nil).
func (f *File) Load() (state any, recs []any, err error) {
	snapLSN, state, serr := f.readSnapshot()
	raw, rerr := os.ReadFile(filepath.Join(f.dir, walFile))
	if rerr != nil && serr == nil {
		serr = rerr
	}
	bodies, _ := wal.Scan(raw)
	recs, last := decodeLog(bodies, snapLSN)
	if last > f.lsn {
		f.lsn = last
	}
	return state, recs, serr
}

// Close implements Store.
func (f *File) Close() error { return f.w.Close() }

// WALSize reports the journal's current on-disk length (benchmarks).
func (f *File) WALSize() int64 { return f.w.Size() }
