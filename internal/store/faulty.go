package store

import (
	"fmt"

	"totoro/internal/store/wal"
)

// Faulty wraps a Store and injects disk failures on command: fsync
// errors, short writes, and out-of-space conditions. It exists to prove
// the engine's journal-before-ack contract under a failing disk — an
// append error must surface before the corresponding network action, and
// a node whose journal starts failing must either crash cleanly or
// degrade to non-durable loudly, never ack state it silently lost.
//
// Faults toggle with Fail/Heal so a nemesis schedule can open and close
// fault windows. Like every Store, Faulty is driven from the engine's
// event loop and is not goroutine-safe.

// FaultKind selects which disk failure Fail injects.
type FaultKind int

const (
	// FaultFsync models an fsync failure: the write may sit in the page
	// cache but durability cannot be promised, so the append errors and
	// nothing is considered journaled.
	FaultFsync FaultKind = iota
	// FaultShortWrite models a torn append: a prefix of the frame lands
	// before the error. Over a *Mem inner store the torn bytes are really
	// written, so recovery exercises the WAL's prefix-tolerant scan.
	FaultShortWrite
	// FaultENOSPC models a full disk: the append fails cleanly with
	// nothing written.
	FaultENOSPC
)

func (k FaultKind) String() string {
	switch k {
	case FaultFsync:
		return "fsync"
	case FaultShortWrite:
		return "short-write"
	case FaultENOSPC:
		return "enospc"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Faulty is the fault-injecting Store wrapper.
type Faulty struct {
	inner   Store
	kind    FaultKind
	failing bool

	// Appends counts successful pass-through appends; Failed counts
	// appends rejected by an active fault.
	Appends, Failed int
}

// NewFaulty wraps inner. The wrapper starts healthy.
func NewFaulty(inner Store) *Faulty { return &Faulty{inner: inner} }

// Fail opens a fault window: every Append and Snapshot fails with the
// given kind until Heal.
func (f *Faulty) Fail(kind FaultKind) {
	f.kind = kind
	f.failing = true
}

// Heal closes the fault window. Note that a correctly hardened engine
// does NOT resume journaling after a heal: the fault window may have
// torn the log (FaultShortWrite), and appending past a gap turns a
// clean journal prefix into ack-then-lose on the next crash.
func (f *Faulty) Heal() { f.failing = false }

// Failing reports whether a fault window is open.
func (f *Faulty) Failing() bool { return f.failing }

// Inner returns the wrapped store (tests restart nodes from it).
func (f *Faulty) Inner() Store { return f.inner }

// Append implements Store.
func (f *Faulty) Append(rec any) error {
	if !f.failing {
		if err := f.inner.Append(rec); err != nil {
			return err
		}
		f.Appends++
		return nil
	}
	f.Failed++
	switch f.kind {
	case FaultShortWrite:
		// Tear the frame for real when we can see the inner bytes: encode
		// the record, then land all but the last byte. wal.Scan's
		// prefix-tolerance drops the torn tail on recovery — and anything
		// a buggy engine appended after it.
		if m, ok := f.inner.(*Mem); ok {
			if body, err := encodeBody(m.lsn+1, rec); err == nil {
				framed := wal.AppendRecord(nil, body)
				m.log = append(m.log, framed[:len(framed)-1]...)
			}
		}
		return fmt.Errorf("store: injected short write (%v)", f.kind)
	case FaultENOSPC:
		return fmt.Errorf("store: injected write failure: no space left on device")
	default:
		return fmt.Errorf("store: injected fsync failure")
	}
}

// Snapshot implements Store. A failing disk fails snapshots too; the
// engine's snapshot path tolerates this (the WAL is only truncated after
// a snapshot lands, so a failed snapshot leaves a consistent journal).
func (f *Faulty) Snapshot(state any) error {
	if f.failing {
		f.Failed++
		return fmt.Errorf("store: injected snapshot failure (%v)", f.kind)
	}
	return f.inner.Snapshot(state)
}

// Load implements Store.
func (f *Faulty) Load() (state any, recs []any, err error) { return f.inner.Load() }

// Close implements Store.
func (f *Faulty) Close() error { return f.inner.Close() }
