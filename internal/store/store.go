// Package store is the engine's durable-state layer: an append-only WAL
// of engine mutations plus periodic state snapshots, behind a Store
// interface small enough to have two honest implementations — an
// in-memory one for the deterministic simulator (a simulated restart
// reboots from it) and a file-backed one for totoro-node.
//
// Records and snapshots are encoded with the v2 wire codec
// (internal/wire/codec), so the same registration, losslessness, and
// determinism invariants that guard network frames guard persisted frames
// (totoro-vet's wiresafe analyzer certifies both from the same
// registries). Every record carries a log sequence number; a snapshot
// remembers the LSN it covers, and replay skips records at or below it —
// which makes the snapshot-then-truncate pair crash-safe without any
// atomicity between the two files (a crash after the snapshot rename but
// before the WAL truncation just replays records the snapshot already
// folded, idempotently skipped by LSN).
package store

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"totoro/internal/store/wal"
	"totoro/internal/wire/codec"
)

// Store persists engine mutations and reconstructs them on boot.
//
// Append journals one mutation record. Snapshot replaces the journal with
// one state image (records appended before the snapshot are not replayed
// again). Load returns the latest snapshot state (nil if none) and every
// record appended after it, in append order. Implementations are not
// goroutine-safe: the engine calls them from its event loop.
type Store interface {
	Append(rec any) error
	Snapshot(state any) error
	Load() (state any, recs []any, err error)
	Close() error
}

// registry of allowed record/snapshot prototypes. Declarative + enforced:
// Append/Snapshot refuse types that were never registered, so a new
// record type that skipped registration (and therefore skipped the
// wiresafe certification pass that keys off RegisterRecords calls) fails
// loudly in the first test that journals it.
var (
	recMu    sync.Mutex
	recTypes = map[reflect.Type]bool{}
)

// RegisterRecords declares the prototypes a Store may be asked to persist.
// totoro-vet's wiresafe analyzer certifies every type passed here exactly
// like a network wire type: codec-registered and structurally lossless.
func RegisterRecords(protos ...any) {
	recMu.Lock()
	defer recMu.Unlock()
	for _, p := range protos {
		recTypes[reflect.TypeOf(p)] = true
	}
}

// Records returns the registered prototypes in a deterministic order
// (certification tests round-trip each one).
func Records() []any {
	recMu.Lock()
	defer recMu.Unlock()
	types := make([]reflect.Type, 0, len(recTypes))
	for t := range recTypes {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i].String() < types[j].String() })
	out := make([]any, len(types))
	for i, t := range types {
		out[i] = reflect.New(t).Elem().Interface()
	}
	return out
}

func registered(rec any) error {
	recMu.Lock()
	ok := recTypes[reflect.TypeOf(rec)]
	recMu.Unlock()
	if !ok {
		return fmt.Errorf("store: unregistered record type %T (add it to RegisterRecords)", rec)
	}
	return nil
}

// encodeBody produces one record body: uvarint(lsn) followed by the
// codec-tagged value.
func encodeBody(lsn uint64, rec any) ([]byte, error) {
	e := codec.NewEnc()
	defer e.Free()
	e.Uvarint(lsn)
	e.Value(rec)
	if err := e.Err(); err != nil {
		return nil, err
	}
	return append([]byte(nil), e.Bytes()...), nil
}

// decodeBody is the inverse. The decoded value never aliases b.
func decodeBody(b []byte) (lsn uint64, rec any, err error) {
	d := codec.NewDec(b)
	lsn = d.Uvarint()
	rec = d.Value()
	if err := d.Err(); err != nil {
		return 0, nil, err
	}
	if d.Rem() != 0 {
		return 0, nil, fmt.Errorf("store: %d trailing bytes in record", d.Rem())
	}
	return lsn, rec, nil
}

// decodeLog folds a framed log's bodies into records, skipping those a
// snapshot at snapLSN already covers. Replay is prefix-tolerant: the
// first undecodable body (version skew, a tag the binary no longer
// knows) ends the replay with whatever decoded cleanly before it.
func decodeLog(bodies [][]byte, snapLSN uint64) (recs []any, last uint64) {
	last = snapLSN
	for _, b := range bodies {
		lsn, rec, err := decodeBody(b)
		if err != nil {
			return recs, last
		}
		if lsn > last {
			last = lsn
		}
		if lsn <= snapLSN {
			continue
		}
		recs = append(recs, rec)
	}
	return recs, last
}

// Mem is the in-memory Store: it persists across a simulated node's
// restart because the harness (not the node) owns it, and it runs every
// byte through the same framing and codec as the file store — a
// simulated recovery exercises the real encode/replay path, only the
// disk is imaginary.
type Mem struct {
	log  []byte
	snap []byte // one framed record: uvarint(lsn) + state value
	lsn  uint64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{} }

// Append implements Store.
func (m *Mem) Append(rec any) error {
	if err := registered(rec); err != nil {
		return err
	}
	body, err := encodeBody(m.lsn+1, rec)
	if err != nil {
		return err
	}
	m.lsn++
	m.log = wal.AppendRecord(m.log, body)
	return nil
}

// Snapshot implements Store.
func (m *Mem) Snapshot(state any) error {
	if err := registered(state); err != nil {
		return err
	}
	body, err := encodeBody(m.lsn, state)
	if err != nil {
		return err
	}
	m.snap = wal.AppendRecord(nil, body)
	m.log = m.log[:0]
	return nil
}

// Load implements Store.
func (m *Mem) Load() (state any, recs []any, err error) {
	snapLSN := uint64(0)
	if len(m.snap) > 0 {
		bodies, _ := wal.Scan(m.snap)
		if len(bodies) == 1 {
			if lsn, st, derr := decodeBody(bodies[0]); derr == nil {
				snapLSN, state = lsn, st
			}
		}
	}
	bodies, _ := wal.Scan(m.log)
	recs, last := decodeLog(bodies, snapLSN)
	if last > m.lsn {
		m.lsn = last
	}
	return state, recs, nil
}

// Close implements Store.
func (m *Mem) Close() error { return nil }

// Bytes reports the store's current footprint (journal + snapshot), for
// benchmarks and cadence tests.
func (m *Mem) Bytes() (log, snap int) { return len(m.log), len(m.snap) }
