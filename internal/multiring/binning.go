// Package multiring implements Totoro's locality-aware P2P multi-ring
// structure (paper §4.2).
//
// The single global ring of internal/ring is divided into m smaller,
// locality-aware rings ("edge zones") using Ratnasamy and Shenker's
// distributed binning algorithm: every node measures its RTT to a small set
// of landmark hosts, orders the landmarks by RTT, and quantizes each RTT
// into levels; nodes with the same (order, levels) signature land in the
// same bin. Each zone is characterized by a maximum desired round-trip time
// between members, its diameter.
//
// On top of the zones, the package implements the paper's boundary-aware
// two-level routing table. A NodeId is split as D = P·2^n + S where the
// m-bit prefix P is the zone ID and the n-bit suffix S identifies the node
// within its zone. The i-th level-1 entry at node x targets zone
// (P_x + 2^(i-1)) mod 2^m and the i-th level-2 entry at node y targets
// suffix (S_y + 2^(i-1)) mod 2^n — Chord-style fingers over the zone ring
// and the intra-zone ring respectively. Because inter-zone traffic flows
// only through level-1 entries, a zone administrator can enforce
// administrative isolation by blocking packets whose destination prefix
// differs from the local zone (the ExitPolicy hook).
package multiring

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Point is a planar coordinate for a node or landmark. The experiments
// derive RTTs from Euclidean distance, mirroring the paper's use of
// geographic distance in the EUA dataset (§7.2).
type Point struct {
	X, Y float64
}

// RTTPerUnit converts one unit of Euclidean distance into round-trip time.
const RTTPerUnit = 100 * time.Microsecond

// RTT estimates the round-trip time between two points.
func RTT(a, b Point) time.Duration {
	dx, dy := a.X-b.X, a.Y-b.Y
	return time.Duration(math.Sqrt(dx*dx+dy*dy) * float64(RTTPerUnit))
}

// BinSignature computes a node's distributed-binning signature against the
// landmark set: the landmark indices ordered by increasing RTT, plus each
// RTT quantized into the given level thresholds. Nodes sharing a signature
// belong to the same bin.
func BinSignature(p Point, landmarks []Point, levels []time.Duration) string {
	type lm struct {
		idx int
		rtt time.Duration
	}
	ls := make([]lm, len(landmarks))
	for i, l := range landmarks {
		ls[i] = lm{idx: i, rtt: RTT(p, l)}
	}
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].rtt != ls[j].rtt {
			return ls[i].rtt < ls[j].rtt
		}
		return ls[i].idx < ls[j].idx
	})
	sig := ""
	for _, l := range ls {
		sig += fmt.Sprintf("%d,", l.idx)
	}
	sig += ":"
	for _, l := range ls {
		lvl := 0
		for _, th := range levels {
			if l.rtt > th {
				lvl++
			}
		}
		sig += fmt.Sprintf("%d,", lvl)
	}
	return sig
}

// Binning is the outcome of running distributed binning over a node
// population.
type Binning struct {
	// MBits is the zone-prefix width; at most 2^MBits zones exist.
	MBits int
	// ZoneOf maps node index -> zone ID.
	ZoneOf []uint64
	// Members maps zone ID -> node indices.
	Members map[uint64][]int
	// Diameter maps zone ID -> estimated max member-to-member RTT.
	Diameter map[uint64]time.Duration
}

// NumZones returns the number of non-empty zones.
func (b *Binning) NumZones() int { return len(b.Members) }

// AssignZones runs distributed binning over the node positions and packs
// the resulting bins into at most 2^mBits zones. When there are more bins
// than zones, the rarest bins are merged into the most similar frequent bin
// (longest shared landmark-order prefix), which is how a deployment with a
// fixed m-bit zone prefix absorbs unusual vantage points.
func AssignZones(positions []Point, landmarks []Point, levels []time.Duration, mBits int) *Binning {
	sigOf := make([]string, len(positions))
	bySig := make(map[string][]int)
	for i, p := range positions {
		s := BinSignature(p, landmarks, levels)
		sigOf[i] = s
		bySig[s] = append(bySig[s], i)
	}
	// Deterministic order: by descending population then signature.
	sigs := make([]string, 0, len(bySig))
	for s := range bySig {
		sigs = append(sigs, s)
	}
	sort.Slice(sigs, func(i, j int) bool {
		a, b := len(bySig[sigs[i]]), len(bySig[sigs[j]])
		if a != b {
			return a > b
		}
		return sigs[i] < sigs[j]
	})

	maxZones := 1 << uint(mBits)
	zoneOfSig := make(map[string]uint64)
	kept := sigs
	if len(sigs) > maxZones {
		kept = sigs[:maxZones]
	}
	for z, s := range kept {
		zoneOfSig[s] = uint64(z)
	}
	for _, s := range sigs[len(kept):] {
		zoneOfSig[s] = zoneOfSig[mostSimilar(s, kept)]
	}

	b := &Binning{
		MBits:    mBits,
		ZoneOf:   make([]uint64, len(positions)),
		Members:  make(map[uint64][]int),
		Diameter: make(map[uint64]time.Duration),
	}
	for i := range positions {
		z := zoneOfSig[sigOf[i]]
		b.ZoneOf[i] = z
		b.Members[z] = append(b.Members[z], i)
	}
	for z, members := range b.Members {
		b.Diameter[z] = estimateDiameter(positions, members)
	}
	return b
}

// mostSimilar returns the kept signature sharing the longest common prefix
// with s (the landmark ordering dominates the prefix, so similarity in
// ordering wins).
func mostSimilar(s string, kept []string) string {
	best, bestLen := kept[0], -1
	for _, k := range kept {
		l := commonPrefixLen(s, k)
		if l > bestLen {
			best, bestLen = k, l
		}
	}
	return best
}

func commonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// estimateDiameter approximates the max pairwise RTT within a member set as
// twice the max RTT to the centroid (exact pairwise scan is quadratic and
// unnecessary for a configuration parameter).
func estimateDiameter(positions []Point, members []int) time.Duration {
	if len(members) == 0 {
		return 0
	}
	var cx, cy float64
	for _, i := range members {
		cx += positions[i].X
		cy += positions[i].Y
	}
	c := Point{X: cx / float64(len(members)), Y: cy / float64(len(members))}
	var worst time.Duration
	for _, i := range members {
		if r := RTT(positions[i], c); r > worst {
			worst = r
		}
	}
	return 2 * worst
}
