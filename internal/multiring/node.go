package multiring

import (
	"fmt"
	"math/rand"
	"sort"

	"totoro/internal/ids"
	"totoro/internal/obs"
	"totoro/internal/ring"
	"totoro/internal/transport"
)

// Scope says how far an FL application's packets may travel (§4.4
// "Multi-rings": owners specify whether applications span multiple zones).
type Scope int

const (
	// ScopeZonal packets must stay inside their origin zone; any hop that
	// would cross a zone boundary blocks them (administrative isolation).
	ScopeZonal Scope = iota
	// ScopeGlobal packets may traverse zones (at most m · O(log N) hops).
	ScopeGlobal
)

// Message is the marker interface for multiring wire messages.
type Message interface{ multiringMessage() }

// Packet is one routed message in the two-level multi-ring.
type Packet struct {
	Key     ids.ID
	Scope   Scope
	SrcZone uint64
	Hops    int
	Final   bool // set when the sender determined the receiver is the owner
	Payload any
}

func (Packet) multiringMessage() {}

// WireSize charges the header plus payload.
func (p Packet) WireSize() int { return 48 + transport.SizeOf(p.Payload) }

// Config parameterizes a multiring node.
type Config struct {
	// MBits is the zone-prefix width (zones = 2^MBits at most).
	MBits int
	// ExitPolicy decides whether packet p may be forwarded toward destZone
	// across the local zone boundary. The default policy allows only
	// ScopeGlobal traffic, which is exactly the paper's administrator rule:
	// block any packet whose destination prefix differs from the local
	// zone unless the application is multi-zone.
	ExitPolicy func(p Packet, destZone uint64) bool
}

// Node is one participant of the two-level multi-ring overlay.
type Node struct {
	env  transport.Env
	cfg  Config
	self ring.Contact
	zone uint64

	level1 []ring.Contact // inter-zone fingers: entry i-1 targets (P+2^(i-1)) mod 2^m
	level2 []ring.Contact // intra-zone fingers: entry i-1 targets (S+2^(i-1)) mod 2^n
	succ   ring.Contact   // immediate suffix successor within the zone

	deliver func(Packet)

	// Cached handles into env.Metrics().
	ctrBlocked   *obs.Counter
	ctrForwarded *obs.Counter
}

// NewNode creates a multiring node. deliver is invoked when this node owns
// a packet's key; it may be nil.
func NewNode(env transport.Env, self ring.Contact, cfg Config, deliver func(Packet)) *Node {
	if cfg.ExitPolicy == nil {
		cfg.ExitPolicy = func(p Packet, destZone uint64) bool { return p.Scope == ScopeGlobal }
	}
	m := env.Metrics()
	return &Node{
		env:     env,
		cfg:     cfg,
		self:    self,
		zone:    self.ID.ZonePrefix(cfg.MBits),
		deliver: deliver,
		// Blocked counts packets refused at the zone boundary; Forwarded
		// counts packets passed on.
		ctrBlocked:   m.Counter("multiring.blocked"),
		ctrForwarded: m.Counter("multiring.forwarded"),
	}
}

// Metrics returns the node's telemetry registry ("multiring.*" counters).
func (n *Node) Metrics() *obs.Registry { return n.env.Metrics() }

// Blocked returns how many packets this node refused at the zone boundary.
func (n *Node) Blocked() int64 { return n.ctrBlocked.Value() }

// Forwarded returns how many packets this node passed on.
func (n *Node) Forwarded() int64 { return n.ctrForwarded.Value() }

// Self returns the node's contact.
func (n *Node) Self() ring.Contact { return n.self }

// Zone returns the node's zone ID (its m-bit prefix).
func (n *Node) Zone() uint64 { return n.zone }

// Receive implements transport.Handler for multiring messages.
func (n *Node) Receive(from transport.Addr, msg any) {
	if p, ok := msg.(Packet); ok {
		n.handle(p)
	}
}

// Route originates a packet toward key.
func (n *Node) Route(key ids.ID, scope Scope, payload any) {
	n.handle(Packet{Key: key, Scope: scope, SrcZone: n.zone, Payload: payload})
}

func (n *Node) handle(p Packet) {
	if p.Final {
		n.deliverLocal(p)
		return
	}
	destZone := p.Key.ZonePrefix(n.cfg.MBits)
	if destZone != n.zone {
		if !n.cfg.ExitPolicy(p, destZone) {
			n.ctrBlocked.Inc()
			return
		}
		next := n.nextZoneHop(destZone)
		if next.IsZero() {
			// No occupied zone makes progress; the destination zone is
			// unpopulated. Deliver locally as the closest zone.
			n.routeWithinZone(p)
			return
		}
		p.Hops++
		n.ctrForwarded.Inc()
		n.env.Send(next.Addr, p)
		return
	}
	n.routeWithinZone(p)
}

// nextZoneHop picks the level-1 finger whose zone lies furthest along the
// clockwise arc (n.zone, destZone] on the m-bit zone ring.
func (n *Node) nextZoneHop(destZone uint64) ring.Contact {
	m := n.cfg.MBits
	var best ring.Contact
	var bestAdv uint64
	span := zoneDist(n.zone, destZone, m)
	for _, c := range n.level1 {
		if c.IsZero() {
			continue
		}
		cz := c.ID.ZonePrefix(m)
		adv := zoneDist(n.zone, cz, m)
		if adv == 0 || adv > span {
			continue // outside the arc
		}
		if adv > bestAdv {
			best, bestAdv = c, adv
		}
	}
	return best
}

// zoneDist is the clockwise distance from a to b on the 2^m zone ring.
func zoneDist(a, b uint64, m int) uint64 {
	mod := uint64(1) << uint(m)
	return (b - a) & (mod - 1)
}

// routeWithinZone performs Chord-style greedy routing on the intra-zone
// suffix ring; the owner of a key is the member whose suffix is the key
// suffix's successor.
func (n *Node) routeWithinZone(p Packet) {
	m := n.cfg.MBits
	keyS := p.Key.Suffix(m)
	selfS := n.self.ID.Suffix(m)
	if keyS == selfS || n.succ.IsZero() || n.succ.Addr == n.self.Addr {
		n.deliverLocal(p)
		return
	}
	succS := n.succ.ID.Suffix(m)
	if betweenSuffix(keyS, selfS, succS, m) {
		// Our successor owns the key.
		p.Hops++
		p.Final = true
		n.ctrForwarded.Inc()
		n.env.Send(n.succ.Addr, p)
		return
	}
	// Closest preceding finger: the level-2 entry furthest along
	// (selfS, keyS).
	var best ring.Contact
	var bestAdv ids.ID
	span := subSuffix(keyS, selfS, m)
	for _, c := range n.level2 {
		if c.IsZero() || c.Addr == n.self.Addr {
			continue
		}
		cs := c.ID.Suffix(m)
		adv := subSuffix(cs, selfS, m)
		if adv.IsZero() || span.Less(adv) {
			continue
		}
		if bestAdv.Less(adv) {
			best, bestAdv = c, adv
		}
	}
	if best.IsZero() {
		best = n.succ
	}
	p.Hops++
	n.ctrForwarded.Inc()
	n.env.Send(best.Addr, p)
}

func (n *Node) deliverLocal(p Packet) {
	if n.deliver != nil {
		n.deliver(p)
	}
}

// subSuffix computes (a - b) mod 2^(128-m) for suffix-ring arithmetic.
func subSuffix(a, b ids.ID, m int) ids.ID { return a.Sub(b).Suffix(m) }

// betweenSuffix reports whether x ∈ (a, b] on the suffix ring.
func betweenSuffix(x, a, b ids.ID, m int) bool {
	xr := subSuffix(x, a, m)
	br := subSuffix(b, a, m)
	return !xr.IsZero() && xr.Cmp(br) <= 0
}

// BuildStatic wires a population of multiring nodes: level-1 fingers to
// exponentially spaced zones, level-2 fingers to exponentially spaced
// suffixes within each zone, and immediate suffix successors. All nodes
// must share the same MBits.
func BuildStatic(nodes []*Node, rng *rand.Rand) {
	if len(nodes) == 0 {
		return
	}
	m := nodes[0].cfg.MBits
	byZone := make(map[uint64][]*Node)
	for _, n := range nodes {
		byZone[n.zone] = append(byZone[n.zone], n)
	}
	zones := make([]uint64, 0, len(byZone))
	for z := range byZone {
		zones = append(zones, z)
	}
	sort.Slice(zones, func(i, j int) bool { return zones[i] < zones[j] })

	// Sort each zone's members by suffix.
	for _, members := range byZone {
		sort.Slice(members, func(i, j int) bool {
			return members[i].self.ID.Suffix(m).Less(members[j].self.ID.Suffix(m))
		})
	}

	for _, n := range nodes {
		n.buildLevel1(zones, byZone, rng)
		n.buildLevel2(byZone[n.zone])
	}
}

// buildLevel1 installs, for i = 1..m, a contact inside the first occupied
// zone at or clockwise-after (P + 2^(i-1)) mod 2^m.
func (n *Node) buildLevel1(zones []uint64, byZone map[uint64][]*Node, rng *rand.Rand) {
	m := n.cfg.MBits
	n.level1 = make([]ring.Contact, m)
	for i := 1; i <= m; i++ {
		target := (n.zone + 1<<uint(i-1)) & (1<<uint(m) - 1)
		z, ok := firstZoneAtOrAfter(zones, target, m)
		if !ok || z == n.zone {
			continue
		}
		members := byZone[z]
		n.level1[i-1] = members[rng.Intn(len(members))].self
	}
}

// firstZoneAtOrAfter finds the occupied zone with the smallest clockwise
// distance from target (including target itself).
func firstZoneAtOrAfter(zones []uint64, target uint64, m int) (uint64, bool) {
	if len(zones) == 0 {
		return 0, false
	}
	best := zones[0]
	bestD := zoneDist(target, zones[0], m)
	for _, z := range zones[1:] {
		if d := zoneDist(target, z, m); d < bestD {
			best, bestD = z, d
		}
	}
	return best, true
}

// buildLevel2 installs intra-zone fingers and the immediate successor from
// the zone membership sorted by suffix.
func (n *Node) buildLevel2(members []*Node) {
	m := n.cfg.MBits
	if len(members) <= 1 {
		n.succ = ring.Contact{}
		return
	}
	// Locate self.
	selfIdx := -1
	for i, mem := range members {
		if mem.self.Addr == n.self.Addr {
			selfIdx = i
			break
		}
	}
	if selfIdx < 0 {
		panic(fmt.Sprintf("multiring: node %s not in its own zone member list", n.self.Addr))
	}
	n.succ = members[(selfIdx+1)%len(members)].self

	nBits := ids.Bits - m
	selfS := n.self.ID.Suffix(m)
	n.level2 = make([]ring.Contact, 0, nBits)
	var prev ring.Contact
	for i := 1; i <= nBits; i++ {
		target := selfS.Add(pow2(i - 1)).Suffix(m)
		c := successorMember(members, target, m)
		if c.Addr == prev.Addr {
			continue // dedupe runs of identical fingers
		}
		n.level2 = append(n.level2, c)
		prev = c
	}
}

// pow2 returns the ID with only bit k set (k in [0,127]).
func pow2(k int) ids.ID {
	if k >= 64 {
		return ids.ID{Hi: 1 << uint(k-64)}
	}
	return ids.ID{Lo: 1 << uint(k)}
}

// successorMember finds the member whose suffix is the circular successor
// of target (the member with minimal (suffix - target) mod 2^n).
func successorMember(members []*Node, target ids.ID, m int) ring.Contact {
	best := members[0].self
	bestD := subSuffix(best.ID.Suffix(m), target, m)
	for _, mem := range members[1:] {
		s := mem.self.ID.Suffix(m)
		d := subSuffix(s, target, m)
		if s == target {
			return mem.self
		}
		if d.Less(bestD) {
			best, bestD = mem.self, d
		}
	}
	return best
}

// OwnerWithinZone computes, from a global view, which member of the key's
// zone owns the key (suffix successor). It is used by tests and the
// experiment harness as ground truth.
func OwnerWithinZone(nodes []*Node, key ids.ID, mBits int) *Node {
	zone := key.ZonePrefix(mBits)
	var members []*Node
	for _, n := range nodes {
		if n.zone == zone {
			members = append(members, n)
		}
	}
	if len(members) == 0 {
		return nil
	}
	keyS := key.Suffix(mBits)
	best := members[0]
	bestD := subSuffix(best.self.ID.Suffix(mBits), keyS, mBits)
	for _, mem := range members[1:] {
		s := mem.self.ID.Suffix(mBits)
		if s == keyS {
			return mem
		}
		d := subSuffix(s, keyS, mBits)
		if d.Less(bestD) {
			best, bestD = mem, d
		}
	}
	return best
}
