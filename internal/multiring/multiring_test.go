package multiring

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"totoro/internal/ids"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
)

func TestRTTSymmetricAndMonotone(t *testing.T) {
	a, b, c := Point{0, 0}, Point{3, 4}, Point{30, 40}
	if RTT(a, b) != RTT(b, a) {
		t.Fatal("RTT not symmetric")
	}
	if RTT(a, b) >= RTT(a, c) {
		t.Fatal("RTT not monotone in distance")
	}
	if RTT(a, a) != 0 {
		t.Fatal("self RTT not zero")
	}
}

func TestBinSignatureClustersTogether(t *testing.T) {
	landmarks := []Point{{0, 0}, {100, 0}, {0, 100}}
	levels := []time.Duration{2 * time.Millisecond, 6 * time.Millisecond}
	// Two nearby points: same signature. A far point: different.
	s1 := BinSignature(Point{10, 10}, landmarks, levels)
	s2 := BinSignature(Point{11, 9}, landmarks, levels)
	s3 := BinSignature(Point{90, 90}, landmarks, levels)
	if s1 != s2 {
		t.Fatalf("nearby points binned apart: %q vs %q", s1, s2)
	}
	if s1 == s3 {
		t.Fatalf("distant point binned together: %q", s1)
	}
}

func clusteredPositions(rng *rand.Rand, centers []Point, perCluster int, spread float64) []Point {
	var out []Point
	for _, c := range centers {
		for i := 0; i < perCluster; i++ {
			out = append(out, Point{
				X: c.X + rng.NormFloat64()*spread,
				Y: c.Y + rng.NormFloat64()*spread,
			})
		}
	}
	return out
}

func TestAssignZonesSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers := []Point{{0, 0}, {200, 0}, {0, 200}, {200, 200}}
	positions := clusteredPositions(rng, centers, 50, 3)
	// Asymmetric landmarks so no cluster sits on a landmark-ordering tie.
	landmarks := []Point{{10, 20}, {150, 40}, {60, 180}}
	levels := []time.Duration{4 * time.Millisecond, 40 * time.Millisecond}
	b := AssignZones(positions, landmarks, levels, 4)
	if b.NumZones() < 2 {
		t.Fatalf("expected multiple zones, got %d", b.NumZones())
	}
	// All members of one geographic cluster should share a zone.
	for c := 0; c < len(centers); c++ {
		zone := b.ZoneOf[c*50]
		for i := 1; i < 50; i++ {
			if b.ZoneOf[c*50+i] != zone {
				t.Fatalf("cluster %d split across zones", c)
			}
		}
	}
}

func TestAssignZonesRespectsMBits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Many scattered points produce many bins; with mBits=2 they must be
	// merged into at most 4 zones.
	positions := make([]Point, 300)
	for i := range positions {
		positions[i] = Point{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	landmarks := []Point{{0, 0}, {1000, 0}, {0, 1000}, {1000, 1000}}
	levels := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 60 * time.Millisecond}
	b := AssignZones(positions, landmarks, levels, 2)
	if b.NumZones() > 4 {
		t.Fatalf("zones=%d exceeds 2^2", b.NumZones())
	}
	for i := range positions {
		if b.ZoneOf[i] >= 4 {
			t.Fatalf("node %d in out-of-range zone %d", i, b.ZoneOf[i])
		}
	}
}

func TestDiameterTracksSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tight := clusteredPositions(rng, []Point{{0, 0}}, 40, 1)
	loose := clusteredPositions(rng, []Point{{0, 0}}, 40, 20)
	dt := estimateDiameter(tight, seqInts(40))
	dl := estimateDiameter(loose, seqInts(40))
	if dt >= dl {
		t.Fatalf("tight diameter %v >= loose %v", dt, dl)
	}
}

func seqInts(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// --- two-level routing ---

type mrCluster struct {
	net       *simnet.Network
	nodes     []*Node
	delivered map[transport.Addr][]Packet
	rng       *rand.Rand
	mBits     int
}

// newMRCluster builds zonesN zones with perZone members each.
func newMRCluster(t testing.TB, zonesN, perZone, mBits int, seed int64, policy func(Packet, uint64) bool) *mrCluster {
	t.Helper()
	c := &mrCluster{
		net:       simnet.New(simnet.Config{Seed: seed}),
		delivered: make(map[transport.Addr][]Packet),
		rng:       rand.New(rand.NewSource(seed)),
		mBits:     mBits,
	}
	for z := 0; z < zonesN; z++ {
		for i := 0; i < perZone; i++ {
			addr := transport.Addr(fmt.Sprintf("z%d-n%d", z, i))
			id := ids.MakeZoned(uint64(z), mBits, ids.Random(c.rng))
			var node *Node
			c.net.AddNode(addr, func(e transport.Env) transport.Handler {
				node = NewNode(e, ring.Contact{ID: id, Addr: addr}, Config{MBits: mBits, ExitPolicy: policy},
					func(p Packet) { c.delivered[addr] = append(c.delivered[addr], p) })
				return node
			})
			c.nodes = append(c.nodes, node)
		}
	}
	BuildStatic(c.nodes, c.rng)
	return c
}

func TestIntraZoneRoutingFindsOwner(t *testing.T) {
	c := newMRCluster(t, 4, 60, 4, 10, nil)
	for trial := 0; trial < 100; trial++ {
		src := c.nodes[c.rng.Intn(len(c.nodes))]
		// Key within the source's own zone.
		key := ids.MakeZoned(src.Zone(), c.mBits, ids.Random(c.rng))
		want := OwnerWithinZone(c.nodes, key, c.mBits)
		before := len(c.delivered[want.self.Addr])
		src.Route(key, ScopeZonal, trial)
		c.net.RunUntilIdle()
		if len(c.delivered[want.self.Addr]) != before+1 {
			t.Fatalf("trial %d: intra-zone key not delivered to owner", trial)
		}
	}
}

func TestIntraZoneNeverLeavesZone(t *testing.T) {
	c := newMRCluster(t, 4, 60, 4, 11, nil)
	src := c.nodes[0]
	for trial := 0; trial < 50; trial++ {
		key := ids.MakeZoned(src.Zone(), c.mBits, ids.Random(c.rng))
		src.Route(key, ScopeZonal, trial)
	}
	c.net.RunUntilIdle()
	// No node outside zone 0 may have received anything.
	for addr, pkts := range c.delivered {
		for _, n := range c.nodes {
			if n.self.Addr == addr && n.Zone() != src.Zone() && len(pkts) > 0 {
				t.Fatalf("zone-%d node %s received intra-zone traffic", n.Zone(), addr)
			}
		}
	}
	for _, n := range c.nodes {
		if n.Zone() != src.Zone() && n.Forwarded() > 0 {
			t.Fatalf("node %s in zone %d forwarded intra-zone traffic", n.self.Addr, n.Zone())
		}
	}
}

func TestCrossZoneGlobalRouting(t *testing.T) {
	c := newMRCluster(t, 8, 40, 4, 12, nil)
	for trial := 0; trial < 100; trial++ {
		src := c.nodes[c.rng.Intn(len(c.nodes))]
		destZone := uint64(c.rng.Intn(8))
		key := ids.MakeZoned(destZone, c.mBits, ids.Random(c.rng))
		want := OwnerWithinZone(c.nodes, key, c.mBits)
		before := len(c.delivered[want.self.Addr])
		src.Route(key, ScopeGlobal, trial)
		c.net.RunUntilIdle()
		if len(c.delivered[want.self.Addr]) != before+1 {
			t.Fatalf("trial %d: cross-zone key (zone %d) not delivered", trial, destZone)
		}
		p := c.delivered[want.self.Addr][before]
		if p.Hops > c.mBits+12 {
			t.Fatalf("trial %d: %d hops is excessive", trial, p.Hops)
		}
	}
}

func TestZonalPacketBlockedAtBoundary(t *testing.T) {
	c := newMRCluster(t, 4, 30, 4, 13, nil)
	src := c.nodes[0]
	otherZone := (src.Zone() + 1) % 4
	key := ids.MakeZoned(otherZone, c.mBits, ids.Random(c.rng))
	src.Route(key, ScopeZonal, "leak?")
	c.net.RunUntilIdle()
	if src.Blocked() != 1 {
		t.Fatalf("Blocked=%d want 1", src.Blocked())
	}
	total := 0
	for _, pkts := range c.delivered {
		total += len(pkts)
	}
	if total != 0 {
		t.Fatalf("zonal packet escaped: %d deliveries", total)
	}
}

func TestCustomExitPolicyAllows(t *testing.T) {
	allowAll := func(p Packet, destZone uint64) bool { return true }
	c := newMRCluster(t, 4, 30, 4, 14, allowAll)
	src := c.nodes[0]
	otherZone := (src.Zone() + 1) % 4
	key := ids.MakeZoned(otherZone, c.mBits, ids.Random(c.rng))
	want := OwnerWithinZone(c.nodes, key, c.mBits)
	src.Route(key, ScopeZonal, "allowed")
	c.net.RunUntilIdle()
	if len(c.delivered[want.self.Addr]) != 1 {
		t.Fatal("custom policy did not let the packet through")
	}
}

func TestSingleMemberZoneDeliversLocally(t *testing.T) {
	c := newMRCluster(t, 1, 1, 4, 15, nil)
	n := c.nodes[0]
	key := ids.MakeZoned(n.Zone(), c.mBits, ids.Random(c.rng))
	n.Route(key, ScopeZonal, "solo")
	c.net.RunUntilIdle()
	if len(c.delivered[n.self.Addr]) != 1 {
		t.Fatal("singleton zone did not deliver locally")
	}
}

func TestZoneDistWraps(t *testing.T) {
	if zoneDist(3, 1, 2) != 2 {
		t.Fatalf("zoneDist(3,1,2)=%d", zoneDist(3, 1, 2))
	}
	if zoneDist(1, 3, 2) != 2 {
		t.Fatalf("zoneDist(1,3,2)=%d", zoneDist(1, 3, 2))
	}
	if zoneDist(5, 5, 4) != 0 {
		t.Fatal("self distance nonzero")
	}
}

func TestHopsScaleWithZoneCount(t *testing.T) {
	// With more zones, cross-zone routing uses more level-1 hops but stays
	// bounded by m (the paper's m·O(logN) claim).
	c := newMRCluster(t, 16, 20, 4, 16, nil)
	worst := 0
	for trial := 0; trial < 80; trial++ {
		src := c.nodes[c.rng.Intn(len(c.nodes))]
		destZone := uint64(c.rng.Intn(16))
		key := ids.MakeZoned(destZone, c.mBits, ids.Random(c.rng))
		want := OwnerWithinZone(c.nodes, key, c.mBits)
		before := len(c.delivered[want.self.Addr])
		src.Route(key, ScopeGlobal, trial)
		c.net.RunUntilIdle()
		p := c.delivered[want.self.Addr][before]
		if p.Hops > worst {
			worst = p.Hops
		}
	}
	// Zone hops <= mBits=4 plus intra-zone Chord hops <= ~log2(20)+slack.
	if worst > 4+8 {
		t.Fatalf("worst-case hops %d exceeds the two-level bound", worst)
	}
}
