package multiring

import (
	"testing"
	"testing/quick"

	"totoro/internal/ids"
)

// TestSubSuffixModularProperty: (a-b)+(b-a) ≡ 0 on the suffix ring and
// subSuffix(a,a) = 0.
func TestSubSuffixModularProperty(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64, mRaw uint8) bool {
		m := int(mRaw%16) + 1
		a := ids.ID{Hi: ahi, Lo: alo}.Suffix(m)
		b := ids.ID{Hi: bhi, Lo: blo}.Suffix(m)
		if !subSuffix(a, a, m).IsZero() {
			return false
		}
		sum := subSuffix(a, b, m).Add(subSuffix(b, a, m)).Suffix(m)
		return sum.IsZero()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBetweenSuffixExclusiveInclusive: x ∈ (a,b] on the suffix ring is
// mutually exclusive with x ∈ (b,a] unless x==a or x==b.
func TestBetweenSuffixExclusiveInclusive(t *testing.T) {
	f := func(xhi, xlo, ahi, alo, bhi, blo uint64, mRaw uint8) bool {
		m := int(mRaw%16) + 1
		x := ids.ID{Hi: xhi, Lo: xlo}.Suffix(m)
		a := ids.ID{Hi: ahi, Lo: alo}.Suffix(m)
		b := ids.ID{Hi: bhi, Lo: blo}.Suffix(m)
		if a == b || x == a || x == b {
			return true
		}
		return betweenSuffix(x, a, b, m) != betweenSuffix(x, b, a, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOwnerWithinZoneIsSuccessor: the owner never has a suffix strictly
// between the key and any other member going clockwise.
func TestOwnerWithinZoneDeterministic(t *testing.T) {
	c := newMRCluster(t, 4, 40, 4, 99, nil)
	for trial := 0; trial < 50; trial++ {
		key := ids.MakeZoned(uint64(trial%4), 4, ids.Random(c.rng))
		o1 := OwnerWithinZone(c.nodes, key, 4)
		o2 := OwnerWithinZone(c.nodes, key, 4)
		if o1 != o2 || o1 == nil {
			t.Fatal("owner lookup unstable")
		}
		if o1.Zone() != key.ZonePrefix(4) {
			t.Fatal("owner outside the key's zone")
		}
	}
}
