package pubsub

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"totoro/internal/ids"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
)

// stack couples one ring node and one pub/sub node as a single handler.
type stack struct {
	ring *ring.Node
	ps   *Node
}

func (s *stack) Receive(from transport.Addr, msg any) {
	if _, ok := msg.(ring.Message); ok {
		s.ring.Receive(from, msg)
		return
	}
	s.ps.Receive(from, msg)
}

type forest struct {
	net    *simnet.Network
	stacks []*stack
	byAddr map[transport.Addr]*stack
	rng    *rand.Rand

	delivered  map[transport.Addr][]any // multicasts seen per node
	aggregates map[string][]aggResult   // topic+round -> root results
}

type aggResult struct {
	obj   any
	count int
}

func newForest(t testing.TB, n int, rcfg ring.Config, pcfg Config, seed int64) *forest {
	t.Helper()
	f := &forest{
		net:        simnet.New(simnet.Config{Seed: seed}),
		byAddr:     make(map[transport.Addr]*stack),
		rng:        rand.New(rand.NewSource(seed)),
		delivered:  make(map[transport.Addr][]any),
		aggregates: make(map[string][]aggResult),
	}
	var ringNodes []*ring.Node
	for i := 0; i < n; i++ {
		addr := transport.Addr(fmt.Sprintf("n%d", i))
		id := ids.Random(f.rng)
		s := &stack{}
		f.net.AddNode(addr, func(e transport.Env) transport.Handler {
			s.ring = ring.New(e, ring.Contact{ID: id, Addr: addr}, rcfg)
			s.ps = New(e, s.ring, pcfg)
			s.ps.SetHandlers(Handlers{
				OnDeliver: func(topic ids.ID, obj any, depth int, subscriber bool) {
					if subscriber {
						f.delivered[addr] = append(f.delivered[addr], obj)
					}
				},
				Combine: func(topic ids.ID, a, b any) any { return a.(int) + b.(int) },
				OnAggregate: func(topic ids.ID, round int, obj any, count int) {
					k := fmt.Sprintf("%s/%d", topic, round)
					f.aggregates[k] = append(f.aggregates[k], aggResult{obj: obj, count: count})
				},
			})
			return s
		})
		f.stacks = append(f.stacks, s)
		f.byAddr[addr] = s
		ringNodes = append(ringNodes, s.ring)
	}
	ring.BuildStatic(ringNodes, f.rng)
	return f
}

// attachedMembers returns every stack holding attached state for topic.
func (f *forest) attachedMembers(topic ids.ID) []*stack {
	var out []*stack
	for _, s := range f.stacks {
		if info, ok := s.ps.TreeInfo(topic); ok && info.Attached {
			out = append(out, s)
		}
	}
	return out
}

// verifyTree checks the topic tree is rooted, connected, and acyclic.
func (f *forest) verifyTree(t *testing.T, topic ids.ID, subscribers []*stack) *stack {
	t.Helper()
	var root *stack
	for _, s := range f.stacks {
		if info, ok := s.ps.TreeInfo(topic); ok && info.IsRoot {
			if root != nil {
				t.Fatalf("two roots for topic %s", topic)
			}
			root = s
		}
	}
	if root == nil {
		t.Fatalf("no root for topic %s", topic)
	}
	for _, s := range subscribers {
		seen := map[transport.Addr]bool{}
		cur := s
		for hops := 0; ; hops++ {
			info, ok := cur.ps.TreeInfo(topic)
			if !ok || !info.Attached {
				t.Fatalf("subscriber %s detached from topic", cur.ring.Self().Addr)
			}
			if info.IsRoot {
				break
			}
			if hops > len(f.stacks) {
				t.Fatal("parent chain too long (cycle?)")
			}
			if seen[cur.ring.Self().Addr] {
				t.Fatal("cycle in tree")
			}
			seen[cur.ring.Self().Addr] = true
			next, ok := f.byAddr[info.Parent.Addr]
			if !ok {
				t.Fatalf("unknown parent %s", info.Parent.Addr)
			}
			cur = next
		}
	}
	return root
}

func TestSubscribeFormsRootedTree(t *testing.T) {
	f := newForest(t, 300, ring.Config{B: 4}, Config{}, 1)
	topic := ids.Hash("app-activity-recognition")
	var subs []*stack
	for i := 0; i < 120; i++ {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		s.ps.Subscribe(topic)
		subs = append(subs, s)
	}
	f.net.RunUntilIdle()
	root := f.verifyTree(t, topic, subs)
	// The root must be the rendezvous node: numerically closest to topic.
	best := f.stacks[0]
	for _, s := range f.stacks[1:] {
		if ids.Closer(topic, s.ring.Self().ID, best.ring.Self().ID) {
			best = s
		}
	}
	if root != best {
		t.Fatalf("root %s is not the rendezvous node %s",
			root.ring.Self().Addr, best.ring.Self().Addr)
	}
}

func TestBroadcastReachesAllSubscribersOnce(t *testing.T) {
	f := newForest(t, 250, ring.Config{B: 4}, Config{}, 2)
	topic := ids.Hash("app-fitness")
	subs := map[transport.Addr]*stack{}
	for len(subs) < 80 {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		subs[s.ring.Self().Addr] = s
		s.ps.Subscribe(topic)
	}
	f.net.RunUntilIdle()
	// Publish from a random non-root member.
	var pub *stack
	for _, s := range subs {
		pub = s
		break
	}
	pub.ps.Publish(topic, "model-v1")
	f.net.RunUntilIdle()
	for addr := range subs {
		if got := f.delivered[addr]; len(got) != 1 || got[0] != "model-v1" {
			t.Fatalf("subscriber %s got %v", addr, got)
		}
	}
	// Non-subscribers (pure forwarders included) must not deliver upcalls.
	for _, s := range f.stacks {
		addr := s.ring.Self().Addr
		if _, isSub := subs[addr]; !isSub && len(f.delivered[addr]) != 0 {
			t.Fatalf("non-subscriber %s received a delivery", addr)
		}
	}
}

func TestCreateClaimsRendezvousRoot(t *testing.T) {
	f := newForest(t, 100, ring.Config{B: 4}, Config{}, 3)
	topic := ids.Hash("app-created")
	f.stacks[0].ps.Create(topic)
	f.net.RunUntilIdle()
	roots := 0
	for _, s := range f.stacks {
		if info, ok := s.ps.TreeInfo(topic); ok && info.IsRoot {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("roots=%d want 1", roots)
	}
}

func TestInNetworkAggregation(t *testing.T) {
	f := newForest(t, 200, ring.Config{B: 4}, Config{}, 4)
	topic := ids.Hash("app-agg")
	var subs []*stack
	for i := 0; i < 60; i++ {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		s.ps.Subscribe(topic)
		subs = append(subs, s)
	}
	f.net.RunUntilIdle()
	f.verifyTree(t, topic, subs)

	members := f.attachedMembers(topic)
	contributors := 0
	for _, s := range members {
		info, _ := s.ps.TreeInfo(topic)
		if info.Subscribed {
			s.ps.SubmitUpdate(topic, 1, 1)
			contributors++
		} else {
			s.ps.SubmitUpdate(topic, 1, nil)
		}
	}
	f.net.RunUntilIdle()
	k := fmt.Sprintf("%s/%d", topic, 1)
	res := f.aggregates[k]
	if len(res) != 1 {
		t.Fatalf("aggregate results = %d want 1", len(res))
	}
	if res[0].count != contributors || res[0].obj != contributors {
		t.Fatalf("aggregate=%+v want count=%d", res[0], contributors)
	}
	// In-network aggregation: each non-root member flushes exactly once, so
	// upstream messages equal the number of tree edges.
	totalUp := 0
	for _, s := range members {
		totalUp += int(s.ps.Metrics().Counter("pubsub.upstreams_sent").Value())
	}
	if totalUp != len(members)-1 {
		t.Fatalf("upstream messages = %d want %d (one per edge)", totalUp, len(members)-1)
	}
}

func TestAggregationTimeoutFlushesPartial(t *testing.T) {
	f := newForest(t, 150, ring.Config{B: 4}, Config{AggTimeout: 100 * time.Millisecond}, 5)
	topic := ids.Hash("app-straggler")
	var subs []*stack
	for i := 0; i < 40; i++ {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		s.ps.Subscribe(topic)
		subs = append(subs, s)
	}
	f.net.RunUntilIdle()
	members := f.attachedMembers(topic)
	// Everybody but one leaf submits.
	var straggler *stack
	for _, s := range members {
		info, _ := s.ps.TreeInfo(topic)
		if len(info.Children) == 0 && !info.IsRoot && straggler == nil {
			straggler = s
			continue
		}
	}
	contributors := 0
	for _, s := range members {
		if s == straggler {
			continue
		}
		info, _ := s.ps.TreeInfo(topic)
		if info.Subscribed {
			s.ps.SubmitUpdate(topic, 7, 1)
			contributors++
		} else {
			s.ps.SubmitUpdate(topic, 7, nil)
		}
	}
	f.net.Run(5 * time.Second)
	k := fmt.Sprintf("%s/%d", topic, 7)
	res := f.aggregates[k]
	if len(res) == 0 {
		t.Fatal("no aggregate despite timeout")
	}
	total := 0
	for _, r := range res {
		total += r.count
	}
	if total != contributors {
		t.Fatalf("partial aggregate count=%d want %d", total, contributors)
	}
}

// TestPostFlushStragglerWithInPlaceCombiner reproduces the FL layer's
// combiner contract: the left operand is owned and mutated in place, and
// the right operand is adopted by reference when the left is nil. Because
// the in-memory transport hands objects upstream by reference, a node must
// never merge a late contribution into an accumulator it already flushed —
// the flushed object is the very one its parent (or the root's OnAggregate
// record) holds, so the straggler would be both double-counted there and
// forwarded again as a supplementary partial.
func TestPostFlushStragglerWithInPlaceCombiner(t *testing.T) {
	type acc struct{ sum, count int }
	f := newForest(t, 150, ring.Config{B: 4}, Config{AggTimeout: 100 * time.Millisecond}, 5)
	topic := ids.Hash("app-late-straggler")
	var results []*acc
	for _, s := range f.stacks {
		s.ps.SetHandlers(Handlers{
			Combine: func(_ ids.ID, a, b any) any {
				aa, bb := a.(*acc), b.(*acc)
				aa.sum += bb.sum
				aa.count += bb.count
				return aa
			},
			OnAggregate: func(tp ids.ID, round int, obj any, count int) {
				if tp == topic && obj != nil {
					results = append(results, obj.(*acc))
				}
			},
		})
	}
	var subs []*stack
	for i := 0; i < 40; i++ {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		s.ps.Subscribe(topic)
		subs = append(subs, s)
	}
	f.net.RunUntilIdle()
	root := f.verifyTree(t, topic, subs)
	// The straggler is a direct child of the root: its late report reaches
	// a flushed round whose combined object OnAggregate recorded, which is
	// exactly where a post-flush merge would corrupt the result.
	rootInfo, _ := root.ps.TreeInfo(topic)
	if len(rootInfo.Children) == 0 {
		t.Fatal("root has no children")
	}
	straggler := f.byAddr[rootInfo.Children[0].Addr]
	contributors := 0
	for _, s := range f.attachedMembers(topic) {
		if s == straggler {
			continue
		}
		info, _ := s.ps.TreeInfo(topic)
		if info.Subscribed {
			s.ps.SubmitUpdate(topic, 3, &acc{sum: 1, count: 1})
			contributors++
		} else {
			s.ps.SubmitUpdate(topic, 3, nil)
		}
	}
	f.net.Run(5 * time.Second) // every round has timeout-flushed by now
	if len(results) == 0 {
		t.Fatal("no aggregate despite timeout")
	}
	straggler.ps.SubmitUpdate(topic, 3, &acc{sum: 1000, count: 1})
	f.net.Run(5 * time.Second)
	totalSum, totalCount := 0, 0
	for _, r := range results {
		totalSum += r.sum
		totalCount += r.count
	}
	if want := contributors + 1000; totalSum != want {
		t.Fatalf("aggregate sum = %d want %d (late straggler dropped or double-counted)", totalSum, want)
	}
	if want := contributors + 1; totalCount != want {
		t.Fatalf("aggregate count = %d want %d", totalCount, want)
	}
}

func TestMaxFanoutRespected(t *testing.T) {
	f := newForest(t, 400, ring.Config{B: 5}, Config{MaxFanout: 4}, 6)
	topic := ids.Hash("app-fanout")
	var subs []*stack
	seen := map[transport.Addr]bool{}
	for len(subs) < 150 {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		if seen[s.ring.Self().Addr] {
			continue
		}
		seen[s.ring.Self().Addr] = true
		s.ps.Subscribe(topic)
		subs = append(subs, s)
		f.net.RunUntilIdle()
	}
	f.verifyTree(t, topic, subs)
	for _, s := range f.stacks {
		if info, ok := s.ps.TreeInfo(topic); ok && len(info.Children) > 4 {
			t.Fatalf("node %s has %d children (cap 4)", s.ring.Self().Addr, len(info.Children))
		}
	}
	// Broadcast still reaches everyone.
	root := f.verifyTree(t, topic, subs)
	root.ps.Publish(topic, "m")
	f.net.RunUntilIdle()
	for _, s := range subs {
		if len(f.delivered[s.ring.Self().Addr]) != 1 {
			t.Fatalf("subscriber %s missed broadcast under fanout cap", s.ring.Self().Addr)
		}
	}
}

func TestKeepAliveRepairAfterParentFailure(t *testing.T) {
	pcfg := Config{
		KeepAliveInterval: 50 * time.Millisecond,
		KeepAliveTimeout:  150 * time.Millisecond,
	}
	f := newForest(t, 300, ring.Config{B: 4}, pcfg, 7)
	topic := ids.Hash("app-churn")
	var subs []*stack
	for i := 0; i < 100; i++ {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		s.ps.Subscribe(topic)
		subs = append(subs, s)
	}
	f.net.Run(200 * time.Millisecond)
	root := f.verifyTree(t, topic, subs)

	// Fail one interior (non-root) node that has children.
	var victim *stack
	for _, s := range f.attachedMembers(topic) {
		info, _ := s.ps.TreeInfo(topic)
		if !info.IsRoot && len(info.Children) > 0 {
			victim = s
			break
		}
	}
	if victim == nil {
		t.Skip("no interior node to fail")
	}
	f.net.Fail(victim.ring.Self().Addr)

	// Give keep-alive detection and re-join time to play out.
	f.net.Run(f.net.Now() + 2*time.Second)

	// All live subscribers must be re-attached with a parent chain to root.
	var live []*stack
	for _, s := range subs {
		if f.net.Alive(s.ring.Self().Addr) {
			live = append(live, s)
		}
	}
	for _, s := range live {
		cur := s
		for hops := 0; ; hops++ {
			info, ok := cur.ps.TreeInfo(topic)
			if !ok || !info.Attached {
				t.Fatalf("subscriber %s still orphaned after repair", cur.ring.Self().Addr)
			}
			if info.IsRoot {
				break
			}
			if info.Parent.Addr == victim.ring.Self().Addr {
				t.Fatalf("node %s still points at the failed parent", cur.ring.Self().Addr)
			}
			if hops > len(f.stacks) {
				t.Fatal("cycle after repair")
			}
			cur = f.byAddr[info.Parent.Addr]
		}
	}
	_ = root
}

func TestUnsubscribeCascadesForwarderRemoval(t *testing.T) {
	f := newForest(t, 120, ring.Config{B: 4}, Config{}, 8)
	topic := ids.Hash("app-leave")
	s := f.stacks[3]
	s.ps.Subscribe(topic)
	f.net.RunUntilIdle()
	members := f.attachedMembers(topic)
	s.ps.Unsubscribe(topic)
	f.net.RunUntilIdle()
	// Everything except the root should have garbage-collected its state.
	remaining := f.attachedMembers(topic)
	if len(remaining) >= len(members) && len(members) > 1 {
		t.Fatalf("leave did not shrink the tree: %d -> %d", len(members), len(remaining))
	}
	for _, m := range remaining {
		info, _ := m.ps.TreeInfo(topic)
		if !info.IsRoot && len(info.Children) == 0 && !info.Subscribed {
			t.Fatalf("childless forwarder %s survived the cascade", m.ring.Self().Addr)
		}
	}
}

func TestManyTopicsDistributeRoots(t *testing.T) {
	f := newForest(t, 200, ring.Config{B: 4}, Config{}, 9)
	const topics = 100
	for i := 0; i < topics; i++ {
		topic := ids.Hash(fmt.Sprintf("app-%d", i))
		for j := 0; j < 10; j++ {
			f.stacks[f.rng.Intn(len(f.stacks))].ps.Subscribe(topic)
		}
	}
	f.net.RunUntilIdle()
	maxRoots, totalRoots := 0, 0
	for _, s := range f.stacks {
		rc := s.ps.RootCount()
		totalRoots += rc
		if rc > maxRoots {
			maxRoots = rc
		}
	}
	if totalRoots != topics {
		t.Fatalf("total roots = %d want %d", totalRoots, topics)
	}
	// Uniform hashing over 200 nodes: no node should carry a large pile of
	// masters (paper Fig 5b: 99.5%% of nodes root ≤3 of 500 trees on 1000
	// nodes; for 100 trees on 200 nodes a max of ~6 is already generous).
	if maxRoots > 6 {
		t.Fatalf("load imbalance: one node roots %d trees", maxRoots)
	}
}

func TestPublishBeforeAnySubscriberStillRoots(t *testing.T) {
	f := newForest(t, 80, ring.Config{B: 4}, Config{}, 10)
	topic := ids.Hash("app-empty")
	f.stacks[0].ps.Publish(topic, "nobody-listens")
	f.net.RunUntilIdle()
	roots := 0
	for _, s := range f.stacks {
		if info, ok := s.ps.TreeInfo(topic); ok && info.IsRoot {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("roots=%d want 1", roots)
	}
}
