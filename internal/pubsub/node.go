package pubsub

import (
	"sort"
	"time"

	"totoro/internal/ids"
	"totoro/internal/obs"
	"totoro/internal/ring"
	"totoro/internal/transport"
)

// Config parameterizes the pub/sub layer of one node.
type Config struct {
	// MaxFanout caps children per node per tree; joins beyond the cap are
	// pushed down to an existing child. Zero means the natural fanout of
	// the overlay (≈2^B) is not enforced.
	MaxFanout int
	// KeepAliveInterval is the parent→children heartbeat period. Zero
	// disables heartbeats (deterministic experiments drive repair
	// explicitly).
	KeepAliveInterval time.Duration
	// KeepAliveTimeout is how long a child waits without heartbeats before
	// declaring its parent failed and re-joining. Defaults to 3× the
	// interval.
	KeepAliveTimeout time.Duration
	// AggTimeout flushes a partially aggregated round upstream if some
	// child has not reported in time (straggler/failure tolerance). Zero
	// disables the timer; rounds flush only on completeness.
	AggTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.KeepAliveTimeout == 0 {
		c.KeepAliveTimeout = 3 * c.KeepAliveInterval
	}
	return c
}

// Handlers are the application upcalls of the pub/sub layer.
type Handlers struct {
	// OnDeliver is invoked on every attached tree member a multicast
	// passes through — subscribers and pure forwarders alike; subscriber
	// distinguishes them. Depth is the number of tree levels traversed
	// from the root.
	OnDeliver func(topic ids.ID, obj any, depth int, subscriber bool)
	// Combine folds two subtree updates into one (must be associative and
	// commutative). Nil falls back to keeping the latest non-nil object.
	Combine func(topic ids.ID, a, b any) any
	// OnAggregate is invoked at the tree root when a round's aggregation
	// flushes, with the combined object and the contribution count.
	OnAggregate func(topic ids.ID, round int, obj any, count int)
	// OnChildUpdate is invoked on interior nodes whenever a child's
	// (partial) update arrives — the paper's onAggregate callback.
	OnChildUpdate func(topic ids.ID, round int, from ring.Contact, count int)
	// OnRepair is invoked when this node detects its parent failed and
	// starts re-joining (used by the churn experiments).
	OnRepair func(topic ids.ID)
}

// aggRound tracks one round's in-network aggregation at one node.
type aggRound struct {
	combined any
	count    int
	reported map[transport.Addr]bool
	expected map[transport.Addr]bool
	// seen records every (sender, upstream-seq) pair already folded into
	// (or forwarded for) this round, so a network-duplicated Upstream is
	// dropped instead of double-counted.
	seen     map[upKey]bool
	selfDone bool
	flushed  bool
	cancel   func()
}

// upKey identifies one Upstream emission for dedup.
type upKey struct {
	from transport.Addr
	seq  uint64
}

// topicState is this node's view of one tree.
type topicState struct {
	topic      ids.ID
	parent     ring.Contact
	isRoot     bool
	subscribed bool // participates as worker (receives multicasts)
	children   map[transport.Addr]ring.Contact
	childInfo  map[transport.Addr]ring.Contact
	lastSeen   time.Duration // last keep-alive from parent
	joining    bool
	// ownerCfg carries the tree owner's per-tree parameter overrides
	// (fanout cap, aggregation deadline), learned from CreateMsg at the
	// root and from Welcome everywhere else.
	ownerCfg TreeConfig
	rounds   map[int]*aggRound
	// missCount tracks consecutive timed-out rounds per child without a
	// report; children missing childMissLimit rounds in a row are dropped.
	missCount map[transport.Addr]int
	seq       uint64
	// upSeq numbers this node's Upstream emissions for the topic (dedup
	// at the receiver; see Upstream.Seq).
	upSeq uint64
	// Reliable multicast state: the root generation (epoch) the state
	// belongs to, highest sequence seen, the first sequence this member
	// ever saw (its baseline — history before it joined is not owed), the
	// set of delivered sequences (bounded by the cache window), and a
	// bounded cache of recent multicasts for retransmissions. All of it is
	// reset when the epoch advances (mcAdvance): a new root restarts Seq
	// from 1, and the old generation's numbers must not suppress it.
	mcEpoch   uint64
	mcLast    uint64
	mcBase    uint64
	mcSeen    map[uint64]bool
	mcCache   map[uint64]Multicast
	kaCancel  func()
	checkStop func()
	// adopted marks a root claimed implicitly — a JOIN or PUBLISH arrived
	// while this node happened to be the topic's rendezvous (typically
	// because the true owner was down). An adopted root periodically probes
	// ring ownership (ensureRootCheck) and hands the tree back once the key
	// routes elsewhere again; an owner-claimed root (CreateMsg) never does.
	adopted  bool
	rootStop func()
}

// Node implements the forest abstraction for one overlay node. It acts as
// the ring.App of its ring.Node and additionally consumes direct pub/sub
// messages.
type Node struct {
	env      transport.Env
	ring     *ring.Node
	cfg      Config
	handlers Handlers
	topics   map[ids.ID]*topicState

	// Cached handles into env.Metrics() — see the "pubsub.*" names below.
	ctrMulticasts     *obs.Counter
	ctrUpstreams      *obs.Counter
	ctrUpstreamDupes  *obs.Counter
	ctrStaleUpstreams *obs.Counter
	ctrRepairs        *obs.Counter
	ctrJoinIntercepts *obs.Counter
	ctrFlushes        *obs.Counter
	ctrTimeoutFlushes *obs.Counter
	ctrDeliveries     *obs.Counter
	ctrRootHandoffs   *obs.Counter
	depthHist         *obs.Histogram
}

// New wires a pub/sub node onto an existing ring node and registers itself
// as the ring's application.
func New(env transport.Env, rn *ring.Node, cfg Config) *Node {
	n := &Node{
		env:    env,
		ring:   rn,
		cfg:    cfg.withDefaults(),
		topics: make(map[ids.ID]*topicState),
	}
	m := env.Metrics()
	n.ctrMulticasts = m.Counter("pubsub.multicasts_sent")     // per-child multicast sends
	n.ctrUpstreams = m.Counter("pubsub.upstreams_sent")       // partial aggregates sent to parent
	n.ctrUpstreamDupes = m.Counter("pubsub.upstream_dupes")   // duplicated upstreams dropped by seq dedup
	n.ctrStaleUpstreams = m.Counter("pubsub.stale_upstreams") // old-tree-generation partials discarded, not merged
	n.ctrRepairs = m.Counter("pubsub.repairs")                // parent failures repaired by re-join
	n.ctrJoinIntercepts = m.Counter("pubsub.join_intercepts") // joins spliced before the root
	n.ctrFlushes = m.Counter("pubsub.flushes")                // aggregation rounds flushed upstream
	n.ctrTimeoutFlushes = m.Counter("pubsub.timeout_flushes") // ... of which by straggler deadline
	n.ctrDeliveries = m.Counter("pubsub.deliveries")          // multicast deliveries at this node
	n.ctrRootHandoffs = m.Counter("pubsub.root_handoffs")     // adopted roots handed back to the owner
	n.depthHist = m.Histogram("pubsub.deliver_depth", obs.DepthBuckets)
	rn.SetApp(n)
	return n
}

// Metrics returns the node's telemetry registry (shared with the rest of
// its protocol stack through the Env).
func (n *Node) Metrics() *obs.Registry { return n.env.Metrics() }

// SetHandlers installs the application upcalls.
func (n *Node) SetHandlers(h Handlers) { n.handlers = h }

// childList returns the topic's children sorted by address. Every send or
// selection that walks the children must use this instead of ranging over
// the map: Go randomizes map iteration order per run, and iteration order
// decides message send order (hence event order, hence floating-point merge
// order at aggregation points). Sorted iteration keeps whole-cluster runs
// bit-for-bit reproducible.
func childList(st *topicState) []ring.Contact {
	out := make([]ring.Contact, 0, len(st.children))
	for _, c := range st.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// state returns (creating if needed) the per-topic state.
func (n *Node) state(topic ids.ID) *topicState {
	st, ok := n.topics[topic]
	if !ok {
		st = &topicState{
			topic:     topic,
			children:  make(map[transport.Addr]ring.Contact),
			rounds:    make(map[int]*aggRound),
			missCount: make(map[transport.Addr]int),
			mcSeen:    make(map[uint64]bool),
			mcCache:   make(map[uint64]Multicast),
		}
		n.topics[topic] = st
	}
	return st
}

// Create claims the topic's rendezvous node as tree root (CreateTree API)
// with default tree parameters.
func (n *Node) Create(topic ids.ID) { n.CreateWithConfig(topic, TreeConfig{}) }

// CreateWithConfig claims the root and installs the owner's per-tree
// parameters (fanout cap, aggregation deadline), which propagate to every
// member as it joins.
func (n *Node) CreateWithConfig(topic ids.ID, cfg TreeConfig) {
	// The engine calls this from announce/retry handling, so the Route can
	// self-deliver CreateMsg synchronously — safe because Deliver's
	// CreateMsg arm only touches the topic's own state, which this caller
	// has finished mutating.
	//lint:ignore reentry rendezvous create: synchronous self-delivery lands in Deliver's CreateMsg arm, which reads no caller state mid-update
	n.ring.Route(topic, CreateMsg{Topic: topic, Creator: n.ring.Self(), Cfg: cfg})
}

// effCfg is the tree's effective configuration: owner overrides on top of
// this node's defaults.
func (n *Node) effCfg(st *topicState) TreeConfig { return st.ownerCfg.merged(n.cfg) }

// Subscribe joins this node to the topic's tree as a worker.
func (n *Node) Subscribe(topic ids.ID) {
	st := n.state(topic)
	st.subscribed = true
	if st.isRoot || !st.parent.IsZero() || st.joining {
		return // already attached (e.g. was a pure forwarder)
	}
	st.joining = true
	n.ring.Route(topic, JoinMsg{Topic: topic, Subscriber: n.ring.Self()})
}

// Unsubscribe detaches this node as worker; it remains a forwarder while
// it still has children, and cascades a leave upward otherwise.
func (n *Node) Unsubscribe(topic ids.ID) {
	st, ok := n.topics[topic]
	if !ok {
		return
	}
	st.subscribed = false
	n.maybeLeave(st)
}

func (n *Node) maybeLeave(st *topicState) {
	if st.subscribed || st.isRoot || len(st.children) > 0 {
		return
	}
	if !st.parent.IsZero() {
		n.env.Send(st.parent.Addr, LeaveMsg{Topic: st.topic, Child: n.ring.Self()})
	}
	n.stopTimers(st)
	delete(n.topics, st.topic)
}

// Publish routes obj to the topic root, which multicasts it down the tree
// (the Broadcast API: the master disseminates the model to the workers).
func (n *Node) Publish(topic ids.ID, obj any) {
	if st, ok := n.topics[topic]; ok && st.isRoot {
		n.multicast(st, obj)
		return
	}
	// Publishing from inside round handling can self-deliver when this
	// node turns out to own the topic key: the PublishMsg arm either
	// multicasts (isRoot, handled above) or adopts root and multicasts —
	// both read only topic state this caller does not hold half-updated.
	//lint:ignore reentry rendezvous publish: synchronous self-delivery lands in Deliver's PublishMsg arm, which observes no caller state mid-update
	n.ring.Route(topic, PublishMsg{Topic: topic, Object: obj})
}

// SubmitUpdate contributes this node's update for an aggregation round
// (the Aggregate API). Pass obj == nil to report "nothing to contribute";
// interior nodes need the report to complete their round.
func (n *Node) SubmitUpdate(topic ids.ID, round int, obj any) {
	st := n.state(topic)
	r := n.round(st, round)
	r.selfDone = true
	if r.flushed {
		// Late self-contribution after a timeout flush: r.combined was
		// already forwarded upstream by reference (the in-memory transport
		// does not copy messages, and the combiner merges in place), so it
		// must not be touched. Forward the late object as a supplementary
		// partial instead, mirroring straggler handling in handleUpstream.
		if obj != nil {
			n.forwardUp(st, round, obj, 1)
		}
		return
	}
	if obj != nil {
		r.combined = n.combine(topic, r.combined, obj)
		r.count++
	}
	n.maybeFlush(st, round, r)
}

// --- ring.App implementation ---

// Deliver handles ring-routed payloads that reached the rendezvous node.
func (n *Node) Deliver(d ring.Delivery) {
	switch m := d.Payload.(type) {
	case CreateMsg:
		st := n.state(m.Topic)
		st.isRoot = true
		st.adopted = false // owner claim: this root never hands itself back
		st.parent = ring.Contact{}
		st.joining = false
		n.learnTreeConfig(st, m.Cfg)
		// A re-created root (bumped-epoch claim after failover or restart)
		// starts a fresh multicast stream; any state this node held as an
		// earlier member of the tree belongs to the old generation.
		n.mcAdvance(st, m.Cfg.Epoch)
	case JoinMsg:
		st := n.state(m.Topic)
		if !st.isRoot {
			n.adoptRoot(st)
		}
		st.parent = ring.Contact{}
		st.joining = false
		if m.Subscriber.Addr != n.ring.Self().Addr {
			n.addChild(st, m.Subscriber)
		}
	case PublishMsg:
		st := n.state(m.Topic)
		if !st.isRoot {
			n.adoptRoot(st) // the rendezvous node is the master by definition
		}
		n.multicast(st, m.Object)
	}
}

// Forward intercepts JOIN messages on their way to the rendezvous node,
// splicing the subscriber into the tree at the first node that is already
// (or now becomes) part of it. This is what makes the forest scale: the
// union of join paths is the tree, and join cost is amortized over overlay
// links that already exist (Fig 7).
func (n *Node) Forward(d *ring.Delivery, next ring.Contact) bool {
	m, ok := d.Payload.(JoinMsg)
	if !ok {
		return true
	}
	if m.Subscriber.Addr == n.ring.Self().Addr {
		return true // we originated this join; let it route on
	}
	n.ctrJoinIntercepts.Inc()
	st := n.state(m.Topic)
	n.addChild(st, m.Subscriber)
	if st.isRoot || !st.parent.IsZero() || st.joining {
		return false // already on the tree: the join stops here
	}
	// We become a forwarder and continue the join on our own behalf.
	st.joining = true
	d.Payload = JoinMsg{Topic: m.Topic, Subscriber: n.ring.Self(), Forwarder: true}
	return true
}

// --- direct message handling ---

// Receive consumes a direct pub/sub message. It reports whether the
// message type belonged to this layer.
func (n *Node) Receive(from transport.Addr, msg any) bool {
	switch m := msg.(type) {
	case JoinMsg: // pushed down from a full parent
		st := n.state(m.Topic)
		n.addChild(st, m.Subscriber)
	case Welcome:
		n.handleWelcome(m)
	case Multicast:
		n.handleMulticast(m)
	case Upstream:
		n.handleUpstream(m)
	case KeepAlive:
		n.handleKeepAlive(m)
	case McNack:
		n.handleNack(m)
	case LeaveMsg:
		if st, ok := n.topics[m.Topic]; ok {
			delete(st.children, m.Child.Addr)
			n.maybeLeave(st)
		}
	default:
		return false
	}
	return true
}

// learnTreeConfig folds newly learned owner overrides into the topic
// state. Zero fields mean "sender doesn't know" and never erase knowledge;
// a change re-propagates to existing children (a forwarder may have
// adopted children before its own join completed and delivered the
// config) and re-enforces the fanout cap.
func (n *Node) learnTreeConfig(st *topicState, cfg TreeConfig) {
	changed := false
	if cfg.MaxFanout != 0 && cfg.MaxFanout != st.ownerCfg.MaxFanout {
		st.ownerCfg.MaxFanout = cfg.MaxFanout
		changed = true
	}
	if cfg.AggTimeout != 0 && cfg.AggTimeout != st.ownerCfg.AggTimeout {
		st.ownerCfg.AggTimeout = cfg.AggTimeout
		changed = true
	}
	// The epoch only ever moves forward (a lower value is a stale sender,
	// not new knowledge).
	if cfg.Epoch > st.ownerCfg.Epoch {
		st.ownerCfg.Epoch = cfg.Epoch
		changed = true
	}
	if !changed {
		return
	}
	n.enforceFanout(st)
	for _, c := range childList(st) {
		n.env.Send(c.Addr, Welcome{Topic: st.topic, Parent: n.ring.Self(), Cfg: st.ownerCfg, Epoch: st.mcEpoch, LastSeq: st.mcLast})
	}
}

// enforceFanout pushes children beyond the tree's cap down to siblings.
func (n *Node) enforceFanout(st *topicState) {
	max := n.effCfg(st).MaxFanout
	if max <= 0 {
		return
	}
	for len(st.children) > max {
		// Evict the child numerically farthest from us; re-home it under
		// the sibling closest to it.
		var victim ring.Contact
		self := n.ring.Self().ID
		for _, ch := range childList(st) {
			if victim.IsZero() || ids.Closer(self, victim.ID, ch.ID) {
				victim = ch
			}
		}
		delete(st.children, victim.Addr)
		var target ring.Contact
		for _, ch := range childList(st) {
			if target.IsZero() || ids.Closer(victim.ID, ch.ID, target.ID) {
				target = ch
			}
		}
		if target.IsZero() {
			// No sibling to push to; keep the child after all.
			st.children[victim.Addr] = victim
			return
		}
		n.env.Send(target.Addr, JoinMsg{Topic: st.topic, Subscriber: victim})
	}
}

// addChild inserts c as a child, pushing the join down to an existing
// child when the fanout cap is reached.
func (n *Node) addChild(st *topicState, c ring.Contact) {
	if c.Addr == n.ring.Self().Addr {
		return
	}
	if _, dup := st.children[c.Addr]; dup {
		n.env.Send(c.Addr, Welcome{Topic: st.topic, Parent: n.ring.Self(), Cfg: st.ownerCfg, Epoch: st.mcEpoch, LastSeq: st.mcLast})
		return
	}
	if max := n.effCfg(st).MaxFanout; max > 0 && len(st.children) >= max {
		// Push down: redirect the join to the child whose ID is closest to
		// the subscriber (keeps locality and balances subtrees).
		var best ring.Contact
		for _, ch := range childList(st) {
			if best.IsZero() || ids.Closer(c.ID, ch.ID, best.ID) {
				best = ch
			}
		}
		n.env.Send(best.Addr, JoinMsg{Topic: st.topic, Subscriber: c})
		return
	}
	st.children[c.Addr] = c
	n.env.Send(c.Addr, Welcome{Topic: st.topic, Parent: n.ring.Self(), Cfg: st.ownerCfg, Epoch: st.mcEpoch, LastSeq: st.mcLast})
	n.ensureKeepAlive(st)
}

func (n *Node) handleWelcome(m Welcome) {
	st := n.state(m.Topic)
	if m.Epoch > st.mcEpoch {
		// The parent is on a newer root generation than anything this node
		// has seen: discard old-stream state and re-baseline against the
		// parent's view (history before adoption is not owed). This runs
		// before learnTreeConfig so the re-welcomes it sends to existing
		// children pair the new epoch with this node's (reset) stream
		// state, cascading the generation change down the subtree.
		n.mcAdvance(st, m.Epoch)
		st.mcBase = m.LastSeq + 1
	}
	n.learnTreeConfig(st, m.Cfg)
	if st.mcBase == 0 {
		// First adoption: owed everything the parent multicasts after now.
		st.mcBase = m.LastSeq + 1
	}
	if m.Parent.Addr == n.ring.Self().Addr {
		return
	}
	// Guard against trivial cycles: refuse a parent that is currently our
	// child and re-join instead.
	if _, isChild := st.children[m.Parent.Addr]; isChild {
		st.joining = true
		n.ring.Route(st.topic, JoinMsg{Topic: st.topic, Subscriber: n.ring.Self()})
		return
	}
	if !st.parent.IsZero() && st.parent.Addr != m.Parent.Addr {
		// Replacing parents (rejoin): tell the old one we left.
		n.env.Send(st.parent.Addr, LeaveMsg{Topic: st.topic, Child: n.ring.Self()})
	}
	st.parent = m.Parent
	st.isRoot = false
	st.joining = false
	st.lastSeen = n.env.Now()
	n.ensureParentCheck(st)
}

func (n *Node) multicast(st *topicState, obj any) {
	n.mcAdvance(st, st.ownerCfg.Epoch)
	st.seq++
	m := Multicast{Topic: st.topic, Epoch: st.mcEpoch, Seq: st.seq, Depth: 0, Object: obj}
	n.recordMulticast(st, m)
	n.recordDeliver(st, 0)
	if n.handlers.OnDeliver != nil {
		n.handlers.OnDeliver(st.topic, obj, 0, st.subscribed)
	}
	n.forwardMulticast(st, m)
}

func (n *Node) handleMulticast(m Multicast) {
	st := n.state(m.Topic)
	if !n.recordMulticast(st, m) {
		return // duplicate (retransmission overlap)
	}
	n.recordDeliver(st, m.Depth)
	if n.handlers.OnDeliver != nil {
		n.handlers.OnDeliver(m.Topic, m.Object, m.Depth, st.subscribed)
	}
	n.forwardMulticast(st, m)
}

// recordDeliver emits the telemetry for one multicast delivery: a counter,
// the depth histogram (tree-shape evidence, Fig 6), and a trace event from
// which experiments reconstruct per-round dissemination timing.
func (n *Node) recordDeliver(st *topicState, depth int) {
	n.ctrDeliveries.Inc()
	n.depthHist.Observe(float64(depth))
	note := "fwd"
	if st.subscribed {
		note = "sub"
	}
	n.env.Metrics().Trace(obs.Event{
		At: n.env.Now(), Node: string(n.ring.Self().Addr),
		Kind: obs.KindPubSubDeliver, Key: st.topic.String(),
		Hop: depth, Note: note,
	})
}

func (n *Node) forwardMulticast(st *topicState, m Multicast) {
	for _, c := range childList(st) {
		n.ctrMulticasts.Inc()
		n.env.Send(c.Addr, Multicast{Topic: m.Topic, Epoch: m.Epoch, Seq: m.Seq, Depth: m.Depth + 1, Object: m.Object})
	}
}

// mcCacheSize bounds the retransmission window: parents can serve the last
// mcCacheSize multicasts to children that missed them.
const mcCacheSize = 16

// mcAdvance moves the topic's reliable-multicast state to a newer stream
// epoch. A higher epoch means a new root generation (failover promotion
// or a crash-restarted master re-claiming its tree): the new root
// restarts Seq from 1, so every per-sequence structure from the old
// generation — dedup set, retransmission cache, baseline, high-water mark
// — must be discarded or it would silently swallow the new stream. The
// old generation's in-flight aggregation rounds are void for the same
// reason (the new root re-announces the round it found incomplete, and
// flushed aggRound state from the first announcement would suppress the
// re-aggregation), so they are cleared too, cancelling their deadline
// timers. It reports whether epoch is current-or-newer; a lower epoch is
// a stale stream the caller must drop.
func (n *Node) mcAdvance(st *topicState, epoch uint64) bool {
	if epoch < st.mcEpoch {
		return false
	}
	if epoch == st.mcEpoch {
		return true
	}
	st.mcEpoch = epoch
	st.seq = 0
	st.mcLast, st.mcBase = 0, 0
	st.mcSeen = make(map[uint64]bool)
	st.mcCache = make(map[uint64]Multicast)
	for _, r := range st.rounds {
		if r.cancel != nil {
			r.cancel()
		}
	}
	st.rounds = make(map[int]*aggRound)
	st.missCount = make(map[transport.Addr]int)
	return true
}

// recordMulticast registers a received (or originated) multicast for the
// reliable-multicast machinery: duplicate suppression, a bounded
// retransmission cache, and gap detection (a sequence jump means earlier
// broadcasts were lost in flight; the node re-requests them from its
// parent). It reports whether the multicast is new.
func (n *Node) recordMulticast(st *topicState, m Multicast) bool {
	if !n.mcAdvance(st, m.Epoch) {
		return false // stale root generation
	}
	if st.mcSeen[m.Seq] {
		return false
	}
	st.mcSeen[m.Seq] = true
	st.mcCache[m.Seq] = m
	if m.Seq > st.mcLast {
		if st.mcBase == 0 {
			st.mcBase = m.Seq
		}
		if st.mcLast > 0 && !st.parent.IsZero() {
			var missing []uint64
			for s := st.mcLast + 1; s < m.Seq && len(missing) < mcCacheSize; s++ {
				if !st.mcSeen[s] {
					missing = append(missing, s)
				}
			}
			if len(missing) > 0 {
				n.env.Send(st.parent.Addr, McNack{Topic: st.topic, Child: n.ring.Self(), Missing: missing})
			}
		}
		st.mcLast = m.Seq
	}
	for s := range st.mcCache {
		if s+mcCacheSize <= st.mcLast {
			delete(st.mcCache, s)
		}
	}
	for s := range st.mcSeen {
		if s+4*mcCacheSize <= st.mcLast {
			delete(st.mcSeen, s)
		}
	}
	return true
}

// handleNack retransmits cached multicasts a child reports missing.
func (n *Node) handleNack(m McNack) {
	st, ok := n.topics[m.Topic]
	if !ok {
		return
	}
	for _, seq := range m.Missing {
		if mc, ok := st.mcCache[seq]; ok {
			n.env.Send(m.Child.Addr, Multicast{
				Topic: mc.Topic, Epoch: mc.Epoch, Seq: mc.Seq, Depth: mc.Depth + 1, Object: mc.Object,
			})
		}
	}
}

func (n *Node) round(st *topicState, round int) *aggRound {
	r, ok := st.rounds[round]
	if !ok {
		r = &aggRound{
			reported: make(map[transport.Addr]bool),
			expected: make(map[transport.Addr]bool, len(st.children)),
			seen:     make(map[upKey]bool),
		}
		for a := range st.children {
			r.expected[a] = true
		}
		st.rounds[round] = r
		if timeout := n.effCfg(st).AggTimeout; timeout > 0 {
			rnd := round
			r.cancel = n.env.After(timeout, func() {
				if cur, ok := st.rounds[rnd]; ok && !cur.flushed {
					n.recordMisses(st, cur)
					n.ctrTimeoutFlushes.Inc()
					n.flush(st, rnd, cur)
				}
			})
		}
	}
	return r
}

func (n *Node) handleUpstream(m Upstream) {
	st := n.state(m.Topic)
	// Epoch-gate before touching round state: a partial aggregated under a
	// previous tree generation is divergent in-flight state and must be
	// discarded, not merged (its clients resubmit under the new epoch). A
	// newer epoch than ours means the root failed over and this node has
	// not seen the new stream yet — advance, which voids our own stale
	// rounds, then merge the partial into the fresh one.
	if !n.mcAdvance(st, m.Epoch) {
		n.ctrStaleUpstreams.Inc()
		return
	}
	r := n.round(st, m.Round)
	if m.Seq != 0 {
		// Drop duplicates before any merging or forwarding: the network can
		// deliver an Upstream twice (retry logic, injected faults), and the
		// combiner merges in place — a second merge would double-count every
		// client contribution in the sender's subtree.
		k := upKey{m.From.Addr, m.Seq}
		if r.seen[k] {
			n.ctrUpstreamDupes.Inc()
			return
		}
		r.seen[k] = true
	}
	r.reported[m.From.Addr] = true
	delete(st.missCount, m.From.Addr)
	if n.handlers.OnChildUpdate != nil {
		n.handlers.OnChildUpdate(m.Topic, m.Round, m.From, m.Count)
	}
	if r.flushed {
		// Late contribution after a timeout flush: r.combined was already
		// forwarded upstream by reference (the in-memory transport does not
		// copy messages, and the combiner merges in place), so merging here
		// would mutate the aggregate the parent holds and double-count the
		// straggler. Forward it untouched as a supplementary partial so the
		// root still counts it exactly once.
		n.forwardUp(st, m.Round, m.Object, m.Count)
		return
	}
	if m.Object != nil {
		r.combined = n.combine(m.Topic, r.combined, m.Object)
		r.count += m.Count
	}
	n.maybeFlush(st, m.Round, r)
}

func (n *Node) maybeFlush(st *topicState, round int, r *aggRound) {
	if r.flushed || !r.selfDone {
		return
	}
	for a := range r.expected {
		if !r.reported[a] {
			return
		}
	}
	n.flush(st, round, r)
}

func (n *Node) flush(st *topicState, round int, r *aggRound) {
	r.flushed = true
	if r.cancel != nil {
		r.cancel()
	}
	n.ctrFlushes.Inc()
	// The round stays in the map marked flushed so that stragglers arriving
	// later are forwarded upstream as supplementary partials instead of
	// resurrecting the round.
	n.forwardUp(st, round, r.combined, r.count)
}

func (n *Node) forwardUp(st *topicState, round int, obj any, count int) {
	if st.isRoot || st.parent.IsZero() {
		// Root aggregation completes here; the trace event is what the
		// experiments read aggregation-latency timings from.
		n.env.Metrics().Trace(obs.Event{
			At: n.env.Now(), Node: string(n.ring.Self().Addr),
			Kind: obs.KindPubSubAgg, Key: st.topic.String(),
			Hop: count, Note: "root",
		})
		if n.handlers.OnAggregate != nil {
			n.handlers.OnAggregate(st.topic, round, obj, count)
		}
		return
	}
	n.ctrUpstreams.Inc()
	st.upSeq++
	n.env.Send(st.parent.Addr, Upstream{
		Topic: st.topic, Round: round, From: n.ring.Self(), Epoch: st.mcEpoch,
		Object: obj, Count: count, Seq: st.upSeq,
	})
}

func (n *Node) combine(topic ids.ID, a, b any) any {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if n.handlers.Combine != nil {
		return n.handlers.Combine(topic, a, b)
	}
	return b
}

// childMissLimit is how many consecutive timed-out rounds a child may fail
// to report before the parent prunes it (a dead or partitioned subtree
// would otherwise make every round pay the full aggregation timeout).
const childMissLimit = 2

// recordMisses charges children that did not report before a timeout
// flush, pruning those past the limit.
func (n *Node) recordMisses(st *topicState, r *aggRound) {
	for a := range r.expected {
		if r.reported[a] {
			continue
		}
		st.missCount[a]++
		if st.missCount[a] >= childMissLimit {
			delete(st.children, a)
			delete(st.missCount, a)
		}
	}
}

// --- failure detection & repair ---

func (n *Node) ensureKeepAlive(st *topicState) {
	if n.cfg.KeepAliveInterval <= 0 || st.kaCancel != nil {
		return
	}
	var tick func()
	tick = func() {
		if len(st.children) > 0 {
			for _, c := range childList(st) {
				n.env.Send(c.Addr, KeepAlive{Topic: st.topic, Parent: n.ring.Self(), Epoch: st.mcEpoch, LastSeq: st.mcLast})
			}
		}
		st.kaCancel = n.env.After(n.cfg.KeepAliveInterval, tick)
	}
	st.kaCancel = n.env.After(n.cfg.KeepAliveInterval, tick)
}

func (n *Node) ensureParentCheck(st *topicState) {
	if n.cfg.KeepAliveInterval <= 0 || st.checkStop != nil {
		return
	}
	var tick func()
	tick = func() {
		if !st.parent.IsZero() && n.env.Now()-st.lastSeen > n.cfg.KeepAliveTimeout {
			n.repairParent(st)
		}
		st.checkStop = n.env.After(n.cfg.KeepAliveInterval, tick)
	}
	st.checkStop = n.env.After(n.cfg.KeepAliveInterval, tick)
}

func (n *Node) handleKeepAlive(m KeepAlive) {
	st := n.state(m.Topic)
	if st.parent.Addr != m.Parent.Addr {
		return
	}
	st.lastSeen = n.env.Now()
	// Loss repair: the heartbeat names the parent's newest multicast;
	// re-request every sequence in the retransmittable window this node
	// never saw (earlier nacks may themselves have been lost). A freshly
	// joined member catches up with just the latest broadcast (the current
	// model) rather than history it never owed.
	if m.LastSeq == 0 {
		return
	}
	if m.Epoch != st.mcEpoch {
		if m.Epoch < st.mcEpoch {
			return // stale stream: its sequence numbers mean nothing now
		}
		// The parent is on a newer root generation this node has not seen a
		// broadcast from yet; sequence numbers are not comparable across
		// generations, so just request the parent's newest multicast. The
		// retransmission carries the new epoch and resets local state.
		n.env.Send(st.parent.Addr, McNack{Topic: st.topic, Child: n.ring.Self(), Missing: []uint64{m.LastSeq}})
		return
	}
	var missing []uint64
	if st.mcLast == 0 && st.mcBase > m.LastSeq {
		// Joined after every known broadcast: catch up with the newest one
		// only (the current model).
		missing = []uint64{m.LastSeq}
	} else {
		from := uint64(1)
		if m.LastSeq > mcCacheSize {
			from = m.LastSeq - mcCacheSize + 1
		}
		if from < st.mcBase {
			from = st.mcBase // history before this member joined is not owed
		}
		for s := from; s <= m.LastSeq; s++ {
			if !st.mcSeen[s] {
				missing = append(missing, s)
			}
		}
	}
	if len(missing) > 0 {
		n.env.Send(st.parent.Addr, McNack{Topic: st.topic, Child: n.ring.Self(), Missing: missing})
	}
}

// repairParent declares the parent failed and re-routes a JOIN toward the
// topic; the overlay routes it to a new parent, creating an alternative
// route (paper §4.5).
func (n *Node) repairParent(st *topicState) {
	dead := st.parent
	st.parent = ring.Contact{}
	st.joining = true
	st.lastSeen = n.env.Now()
	n.ctrRepairs.Inc()
	n.ring.RemoveContact(dead.Addr)
	if n.handlers.OnRepair != nil {
		n.handlers.OnRepair(st.topic)
	}
	n.ring.Route(st.topic, JoinMsg{Topic: st.topic, Subscriber: n.ring.Self()})
}

// adoptRoot makes this node the topic's root implicitly: the ring routed a
// JOIN or PUBLISH here, so by rendezvous rule the tree hangs off us — but
// nobody created the tree here, so ownership is provisional. The adopted
// flag plus the ownership probe make it revocable: when the key's true
// owner is reachable again (a restarted master rejoining the overlay), the
// probe notices the key routes away and hands the whole subtree back.
// Without this, a master outage strands every worker that re-joined
// through the interim root — the interim node keeps multicasting nothing
// and aggregating updates nobody collects.
func (n *Node) adoptRoot(st *topicState) {
	st.isRoot = true
	st.adopted = true
	st.parent = ring.Contact{}
	st.joining = false
	n.ensureRootCheck(st)
}

// ensureRootCheck runs a periodic ownership probe while this node holds an
// adopted root: if the ring resolves the topic key to another node again,
// the adopted root demotes itself and re-joins — keeping its children, so
// the subtree moves under the rightful root in one splice. Disabled (like
// all failure detection) when keep-alives are off.
func (n *Node) ensureRootCheck(st *topicState) {
	if n.cfg.KeepAliveInterval <= 0 || st.rootStop != nil {
		return
	}
	interval := n.cfg.KeepAliveTimeout
	var tick func()
	tick = func() {
		if !st.isRoot || !st.adopted {
			st.rootStop = nil
			return
		}
		if !n.ring.NextHop(st.topic).IsZero() {
			// The key routes elsewhere: the true owner is back. Hand off.
			st.rootStop = nil
			n.handBack(st)
			return
		}
		st.rootStop = n.env.After(interval, tick)
	}
	st.rootStop = n.env.After(interval, tick)
}

// handBack demotes this node from root and splices it (with its whole
// subtree) back under the topic's current rendezvous node.
func (n *Node) handBack(st *topicState) {
	st.isRoot = false
	st.adopted = false
	n.ctrRootHandoffs.Inc()
	if st.subscribed || len(st.children) > 0 {
		st.joining = true
		n.ring.Route(st.topic, JoinMsg{Topic: st.topic, Subscriber: n.ring.Self()})
		return
	}
	n.maybeLeave(st)
}

// Disown relinquishes tree rootship explicitly. The engine calls it when a
// master demotes itself (a higher-epoch master exists elsewhere, see
// handleReplica): the FL mastership and the tree root must move together.
// Unlike an adopted root's hand-back, the children are dropped rather than
// dragged along: a demoted master is typically one that died and revived,
// so its children map predates its death — every live child repaired to
// the new tree long ago, and splicing the phantom subtree into the live
// tree would make each aggregation round wait out a timeout for reports
// that never come. Any child that *is* still attached here notices the
// missing keep-alives and repairs within a timeout, the normal churn path.
func (n *Node) Disown(topic ids.ID) {
	st, ok := n.topics[topic]
	if !ok || !st.isRoot {
		return
	}
	st.isRoot = false
	st.adopted = false
	n.ctrRootHandoffs.Inc()
	st.children = make(map[transport.Addr]ring.Contact)
	st.missCount = make(map[transport.Addr]int)
	if st.subscribed {
		st.joining = true
		n.ring.Route(st.topic, JoinMsg{Topic: st.topic, Subscriber: n.ring.Self()})
		return
	}
	n.maybeLeave(st)
}

// ResetRounds discards all aggregation-round state for topic, cancelling
// any pending round timers. A master promoted through failover calls this:
// from its life as an interior node the promoted root may hold aggRounds
// already marked flushed, and a re-announced round must start aggregation
// fresh instead of treating every contribution as a post-flush straggler.
func (n *Node) ResetRounds(topic ids.ID) {
	st, ok := n.topics[topic]
	if !ok {
		return
	}
	for _, r := range st.rounds {
		if r.cancel != nil {
			r.cancel()
		}
	}
	st.rounds = make(map[int]*aggRound)
	st.missCount = make(map[transport.Addr]int)
}

// ForceRepair triggers parent repair immediately (experiment driver hook).
func (n *Node) ForceRepair(topic ids.ID) {
	if st, ok := n.topics[topic]; ok && !st.parent.IsZero() {
		n.repairParent(st)
	}
}

func (n *Node) stopTimers(st *topicState) {
	if st.kaCancel != nil {
		st.kaCancel()
		st.kaCancel = nil
	}
	if st.checkStop != nil {
		st.checkStop()
		st.checkStop = nil
	}
	if st.rootStop != nil {
		st.rootStop()
		st.rootStop = nil
	}
	for _, r := range st.rounds {
		if r.cancel != nil {
			r.cancel()
		}
	}
}

// --- introspection (experiments & tests) ---

// Info is a snapshot of this node's role in one tree.
type Info struct {
	Topic      ids.ID
	IsRoot     bool
	Subscribed bool
	Parent     ring.Contact
	Children   []ring.Contact
	Attached   bool
}

// TreeInfo reports this node's role in the topic's tree.
func (n *Node) TreeInfo(topic ids.ID) (Info, bool) {
	st, ok := n.topics[topic]
	if !ok {
		return Info{}, false
	}
	info := Info{
		Topic:      topic,
		IsRoot:     st.isRoot,
		Subscribed: st.subscribed,
		Parent:     st.parent,
		Attached:   st.isRoot || !st.parent.IsZero(),
	}
	info.Children = childList(st)
	return info, true
}

// Topics lists the topics this node holds any state for.
func (n *Node) Topics() []ids.ID {
	out := make([]ids.ID, 0, len(n.topics))
	for t := range n.topics {
		out = append(out, t)
	}
	return out
}

// RootCount reports how many trees this node is the root (master) of.
func (n *Node) RootCount() int {
	c := 0
	for _, st := range n.topics {
		if st.isRoot {
			c++
		}
	}
	return c
}
