package pubsub

import (
	"fmt"
	"testing"
	"time"

	"totoro/internal/ids"
	"totoro/internal/ring"
)

// TestPerTreeFanoutOverride verifies the owner-set fanout cap applies to
// one tree while another tree on the same nodes stays uncapped.
func TestPerTreeFanoutOverride(t *testing.T) {
	f := newForest(t, 300, ring.Config{B: 5}, Config{}, 77)
	capped := ids.Hash("app-capped")
	free := ids.Hash("app-free")

	// The owner creates the capped tree with MaxFanout 3.
	f.stacks[0].ps.CreateWithConfig(capped, TreeConfig{MaxFanout: 3})
	f.stacks[0].ps.Create(free)
	f.net.RunUntilIdle()

	var cappedSubs, freeSubs []*stack
	for i := 0; i < 100; i++ {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		s.ps.Subscribe(capped)
		cappedSubs = append(cappedSubs, s)
		s2 := f.stacks[f.rng.Intn(len(f.stacks))]
		s2.ps.Subscribe(free)
		freeSubs = append(freeSubs, s2)
		f.net.RunUntilIdle()
	}
	f.verifyTree(t, capped, cappedSubs)
	f.verifyTree(t, free, freeSubs)

	maxFree := 0
	for _, s := range f.stacks {
		if info, ok := s.ps.TreeInfo(capped); ok && len(info.Children) > 3 {
			t.Fatalf("capped tree node %s has %d children", s.ring.Self().Addr, len(info.Children))
		}
		if info, ok := s.ps.TreeInfo(free); ok && len(info.Children) > maxFree {
			maxFree = len(info.Children)
		}
	}
	if maxFree <= 3 {
		t.Skipf("free tree never exceeded 3 children (max %d); cap not distinguishable", maxFree)
	}
}

// TestPerTreeAggTimeoutOverride verifies that only the tree configured
// with an aggregation deadline flushes partial rounds.
func TestPerTreeAggTimeoutOverride(t *testing.T) {
	f := newForest(t, 150, ring.Config{B: 4}, Config{}, 78)
	deadline := ids.Hash("app-deadline")
	strict := ids.Hash("app-strict")
	f.stacks[0].ps.CreateWithConfig(deadline, TreeConfig{AggTimeout: 80 * time.Millisecond})
	f.stacks[0].ps.Create(strict)
	f.net.RunUntilIdle()

	for _, topic := range []ids.ID{deadline, strict} {
		for i := 0; i < 30; i++ {
			f.stacks[f.rng.Intn(len(f.stacks))].ps.Subscribe(topic)
		}
	}
	f.net.RunUntilIdle()

	// Submit from everyone except one straggler leaf per tree.
	submitAllButOneLeaf := func(topic ids.ID, round int) {
		skipped := false
		for _, s := range f.attachedMembers(topic) {
			info, _ := s.ps.TreeInfo(topic)
			if !skipped && !info.IsRoot && len(info.Children) == 0 && info.Subscribed {
				skipped = true
				continue
			}
			if info.Subscribed {
				s.ps.SubmitUpdate(topic, round, 1)
			} else {
				s.ps.SubmitUpdate(topic, round, nil)
			}
		}
	}
	submitAllButOneLeaf(deadline, 1)
	submitAllButOneLeaf(strict, 1)
	f.net.Run(f.net.Now() + 2*time.Second)

	if len(f.aggregates[fmt.Sprintf("%s/%d", deadline, 1)]) == 0 {
		t.Fatal("deadline tree never flushed its partial round")
	}
	if len(f.aggregates[fmt.Sprintf("%s/%d", strict, 1)]) != 0 {
		t.Fatal("strict tree flushed despite a missing member")
	}
}
