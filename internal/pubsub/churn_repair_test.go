package pubsub

import (
	"testing"
	"time"

	"totoro/internal/ids"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
)

// TestRepairUnderChurnRedeliversBroadcast drives the keep-alive repair path
// with the churn scheduler instead of a single surgical failure: an interior
// parent is killed while background churn keeps removing other nodes, and
// every surviving subscriber must re-graft onto the tree (OnRepair fires)
// and deliver the next Publish exactly as if nothing had happened.
func TestRepairUnderChurnRedeliversBroadcast(t *testing.T) {
	rcfg := ring.Config{B: 4, ReliableHops: true, HopAckTimeout: 50 * time.Millisecond}
	pcfg := Config{
		KeepAliveInterval: 50 * time.Millisecond,
		KeepAliveTimeout:  150 * time.Millisecond,
	}
	f := newForest(t, 250, rcfg, pcfg, 12)
	topic := ids.Hash("app-churn-repair")

	delivered := make(map[transport.Addr]int)
	repairs := 0
	for _, s := range f.stacks {
		addr := s.ring.Self().Addr
		s.ps.SetHandlers(Handlers{
			OnDeliver: func(_ ids.ID, _ any, _ int, subscriber bool) {
				if subscriber {
					delivered[addr]++
				}
			},
			OnRepair: func(ids.ID) { repairs++ },
		})
	}

	subs := map[transport.Addr]*stack{}
	for len(subs) < 60 {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		subs[s.ring.Self().Addr] = s
		s.ps.Subscribe(topic)
	}
	f.net.Run(500 * time.Millisecond)
	var subList []*stack
	for _, s := range subs {
		subList = append(subList, s)
	}
	root := f.verifyTree(t, topic, subList)

	// Pick the interior parent to kill: prefer a pure forwarder with
	// children; fall back to any non-root parent.
	var victim *stack
	for _, s := range f.attachedMembers(topic) {
		info, _ := s.ps.TreeInfo(topic)
		if info.IsRoot || len(info.Children) == 0 {
			continue
		}
		if !info.Subscribed {
			victim = s
			break
		}
		if victim == nil {
			victim = s
		}
	}
	if victim == nil {
		t.Fatal("no interior parent in a 60-subscriber tree")
	}
	victimAddr := victim.ring.Self().Addr
	delete(subs, victimAddr)

	// Churn may kill anything except the root, the subscribers we assert
	// on, and the victim (we kill that one ourselves).
	exempt := []transport.Addr{root.ring.Self().Addr, victimAddr}
	for a := range subs {
		exempt = append(exempt, a)
	}
	ch := f.net.StartChurn(simnet.ChurnConfig{
		Seed:      99,
		FailEvery: 200 * time.Millisecond,
		Exempt:    exempt,
	})

	f.net.Fail(victimAddr)
	f.net.Run(f.net.Now() + 2*time.Second) // repair plays out under churn
	ch.Stop()
	if ch.Fails == 0 {
		t.Fatal("churn injected no background failures")
	}
	f.net.Run(f.net.Now() + 2*time.Second) // quiesce: quarantines expire, joins settle

	if repairs == 0 {
		t.Fatal("no OnRepair upcall despite a killed parent")
	}

	// Every subscriber must sit on a live parent chain ending at the root.
	for a, s := range subs {
		cur := s
		for hops := 0; ; hops++ {
			info, ok := cur.ps.TreeInfo(topic)
			if !ok || !info.Attached {
				t.Fatalf("subscriber %s orphaned after churn", a)
			}
			if info.IsRoot {
				break
			}
			if !f.net.Alive(info.Parent.Addr) {
				t.Fatalf("subscriber %s routes through dead parent %s", a, info.Parent.Addr)
			}
			if hops > len(f.stacks) {
				t.Fatal("cycle in repaired tree")
			}
			cur = f.byAddr[info.Parent.Addr]
		}
	}

	// The next broadcast reaches every surviving subscriber.
	root.ps.Publish(topic, "model-after-churn")
	f.net.Run(f.net.Now() + 2*time.Second)
	for a := range subs {
		if delivered[a] < 1 {
			t.Fatalf("subscriber %s missed the post-churn broadcast", a)
		}
	}
}
