package pubsub

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"totoro/internal/ids"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
)

// lossyForest builds a forest whose data links can be switched lossy after
// construction (joins happen over a clean network; the loss applies to the
// broadcast phase, as on a wireless edge that degrades).
func lossyForest(t *testing.T, n int, seed int64, lossOn *bool, p float64) *forest {
	t.Helper()
	f := &forest{
		net: simnet.New(simnet.Config{
			Seed:    seed,
			Latency: simnet.ConstLatency(2 * time.Millisecond),
			Loss: func(a, b transport.Addr) float64 {
				if *lossOn {
					return p
				}
				return 0
			},
		}),
		byAddr:     make(map[transport.Addr]*stack),
		rng:        rand.New(rand.NewSource(seed)),
		delivered:  make(map[transport.Addr][]any),
		aggregates: make(map[string][]aggResult),
	}
	var ringNodes []*ring.Node
	for i := 0; i < n; i++ {
		addr := transport.Addr(fmt.Sprintf("n%d", i))
		id := ids.Random(f.rng)
		s := &stack{}
		f.net.AddNode(addr, func(e transport.Env) transport.Handler {
			s.ring = ring.New(e, ring.Contact{ID: id, Addr: addr}, ring.Config{B: 4})
			s.ps = New(e, s.ring, Config{
				KeepAliveInterval: 50 * time.Millisecond,
				KeepAliveTimeout:  10 * time.Second, // no repair churn in this test
			})
			s.ps.SetHandlers(Handlers{
				OnDeliver: func(topic ids.ID, obj any, depth int, subscriber bool) {
					if subscriber {
						f.delivered[addr] = append(f.delivered[addr], obj)
					}
				},
			})
			return s
		})
		f.stacks = append(f.stacks, s)
		f.byAddr[addr] = s
		ringNodes = append(ringNodes, s.ring)
	}
	ring.BuildStatic(ringNodes, f.rng)
	return f
}

// TestReliableMulticastUnderLoss drops 25% of all frames during a burst of
// broadcasts; nack-based retransmission (driven by later multicasts and
// keep-alive heartbeats) must still deliver every broadcast to every
// subscriber.
func TestReliableMulticastUnderLoss(t *testing.T) {
	lossOn := false
	f := lossyForest(t, 200, 91, &lossOn, 0.25)
	topic := ids.Hash("app-reliable")
	var subs []*stack
	seen := map[transport.Addr]bool{}
	for len(subs) < 60 {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		if seen[s.ring.Self().Addr] {
			continue
		}
		seen[s.ring.Self().Addr] = true
		s.ps.Subscribe(topic)
		subs = append(subs, s)
	}
	f.net.Run(f.net.Now() + 300*time.Millisecond)

	var root *stack
	for _, s := range f.stacks {
		if info, ok := s.ps.TreeInfo(topic); ok && info.IsRoot {
			root = s
		}
	}
	if root == nil {
		t.Fatal("no root")
	}

	lossOn = true
	const bursts = 12
	for i := 0; i < bursts; i++ {
		root.ps.Publish(topic, fmt.Sprintf("model-v%d", i))
		f.net.Run(f.net.Now() + 30*time.Millisecond)
	}
	// Heartbeats + nacks repair the tail.
	lossOn = false
	f.net.Run(f.net.Now() + 2*time.Second)

	for _, s := range subs {
		got := f.delivered[s.ring.Self().Addr]
		if len(got) != bursts {
			t.Fatalf("subscriber %s received %d of %d broadcasts: %v",
				s.ring.Self().Addr, len(got), bursts, got)
		}
		distinct := map[any]bool{}
		for _, g := range got {
			distinct[g] = true
		}
		if len(distinct) != bursts {
			t.Fatalf("subscriber %s saw duplicates: %v", s.ring.Self().Addr, got)
		}
	}
}

// TestLateJoinerCatchesUpToLatestModel verifies the keep-alive catch-up: a
// node that subscribes after broadcasts were published receives the newest
// one (the current global model) without replaying history.
func TestLateJoinerCatchesUpToLatestModel(t *testing.T) {
	lossOn := false
	f := lossyForest(t, 120, 92, &lossOn, 0)
	topic := ids.Hash("app-catchup")
	for i := 0; i < 20; i++ {
		f.stacks[i].ps.Subscribe(topic)
	}
	f.net.Run(f.net.Now() + 300*time.Millisecond)
	var root *stack
	for _, s := range f.stacks {
		if info, ok := s.ps.TreeInfo(topic); ok && info.IsRoot {
			root = s
		}
	}
	for i := 0; i < 5; i++ {
		root.ps.Publish(topic, fmt.Sprintf("v%d", i))
	}
	f.net.Run(f.net.Now() + 200*time.Millisecond)

	late := f.stacks[100]
	late.ps.Subscribe(topic)
	f.net.Run(f.net.Now() + 1*time.Second)

	got := f.delivered[late.ring.Self().Addr]
	if len(got) == 0 {
		t.Fatal("late joiner never caught up")
	}
	last := got[len(got)-1]
	if last != "v4" {
		t.Fatalf("late joiner caught up to %v want v4", last)
	}
	if len(got) > 2 {
		t.Fatalf("late joiner replayed too much history: %v", got)
	}
}

// TestDuplicateMulticastSuppressed sends the same multicast twice directly;
// the subscriber must deliver once.
func TestDuplicateMulticastSuppressed(t *testing.T) {
	lossOn := false
	f := lossyForest(t, 60, 93, &lossOn, 0)
	topic := ids.Hash("app-dup")
	s := f.stacks[5]
	s.ps.Subscribe(topic)
	f.net.Run(f.net.Now() + 200*time.Millisecond)
	m := Multicast{Topic: topic, Seq: 9, Depth: 1, Object: "once"}
	s.ps.Receive("tester", m)
	s.ps.Receive("tester", m)
	if got := f.delivered[s.ring.Self().Addr]; len(got) != 1 {
		t.Fatalf("delivered %d times", len(got))
	}
}
