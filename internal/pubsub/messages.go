// Package pubsub implements Totoro's publish/subscribe-based forest
// abstraction (paper §4.3) on top of the internal/ring overlay.
//
// Every FL application is a topic whose ID is the application's AppId.
// Nodes interested in an application route a JOIN message toward the AppId;
// the unions of all JOIN paths form a dynamically-structured dataflow tree
// rooted at the rendezvous node (the node whose NodeId is numerically
// closest to the AppId). That root is the application's master; interior
// nodes act as aggregator/forwarders; subscribers at the leaves are the
// workers. All trees together form the forest: because AppIds are uniform
// hashes, roots and branches spread evenly over the node population, which
// is the load-balance property measured in Fig 5.
//
// The tree supports downstream multicast (model broadcast), upstream
// in-network aggregation (gradient aggregation with a per-application
// combiner), keep-alive based failure detection, and local, parallel
// repair: an orphaned child simply re-routes its JOIN toward the AppId
// (§4.5).
package pubsub

import (
	"time"

	"totoro/internal/ids"
	"totoro/internal/ring"
	"totoro/internal/transport"
)

// Message is the marker interface for pub/sub wire messages.
type Message interface{ pubsubMessage() }

// JoinMsg subscribes a node to a topic's tree. It is usually carried inside
// a ring envelope routed toward the topic ID and intercepted hop by hop;
// it is sent directly only when a full parent redirects a join to one of
// its children (fanout push-down).
type JoinMsg struct {
	Topic      ids.ID
	Subscriber ring.Contact
	// Forwarder indicates the subscriber joins as pure forwarder (it is on
	// the path of someone else's join and should not receive multicasts as
	// a worker).
	Forwarder bool
}

func (JoinMsg) pubsubMessage() {}

// Welcome tells a new child who its parent is and hands down the tree's
// owner-set configuration. LastSeq is the parent's newest multicast
// sequence at adoption time: the child owes (and will repair) every
// broadcast after it, and no history before it. Epoch is the stream
// generation LastSeq belongs to (the parent's view); a child on an older
// generation resets its multicast state and re-baselines.
type Welcome struct {
	Topic   ids.ID
	Parent  ring.Contact
	Cfg     TreeConfig
	Epoch   uint64
	LastSeq uint64
}

func (Welcome) pubsubMessage() {}

// TreeConfig is the per-application tree parameterization the owner sets
// at CreateTree time (§4.3: "creates a dynamic-structured dataflow tree
// and configures the parameters (e.g., fanout)"). It propagates to every
// member through Welcome messages and overrides the node-level defaults
// for that topic only.
type TreeConfig struct {
	// MaxFanout caps children per node for this tree (0 = node default).
	MaxFanout int
	// AggTimeout flushes this tree's rounds after the deadline even if
	// children are missing — per-application semi-synchronous rounds
	// (0 = node default).
	AggTimeout time.Duration
	// Epoch is the root generation of the tree's multicast stream. A new
	// root (a failover promotion or a crash-restarted master re-claiming
	// its tree) restarts Seq from 1 under a higher Epoch; members reset
	// their reliable-multicast dedup state when the epoch advances, so the
	// new stream is not suppressed by sequence numbers the old root
	// already used. Streams with a lower epoch than a member has seen are
	// stale and dropped.
	Epoch uint64
}

// merged overlays the tree's overrides on the node defaults.
func (tc TreeConfig) merged(node Config) TreeConfig {
	if tc.MaxFanout == 0 {
		tc.MaxFanout = node.MaxFanout
	}
	if tc.AggTimeout == 0 {
		tc.AggTimeout = node.AggTimeout
	}
	return tc
}

// CreateMsg claims the topic's rendezvous node as the tree root (the
// paper's CreateTree API). Carried in a ring envelope.
type CreateMsg struct {
	Topic   ids.ID
	Creator ring.Contact
	Cfg     TreeConfig
}

func (CreateMsg) pubsubMessage() {}

// PublishMsg carries an object to the root for downstream multicast.
// Carried in a ring envelope routed toward the topic.
type PublishMsg struct {
	Topic  ids.ID
	Object any
}

func (PublishMsg) pubsubMessage() {}

// WireSize charges header plus object.
func (p PublishMsg) WireSize() int { return 24 + transport.SizeOf(p.Object) }

// Multicast flows from the root down the tree (model broadcast). Seq
// numbers the stream within one root generation (Epoch); dedup and gap
// detection are per (Epoch, Seq).
type Multicast struct {
	Topic  ids.ID
	Epoch  uint64
	Seq    uint64
	Depth  int
	Object any
}

func (Multicast) pubsubMessage() {}

// WireSize charges header plus object.
func (m Multicast) WireSize() int { return 40 + transport.SizeOf(m.Object) }

// Upstream flows from children to parents carrying (partially aggregated)
// updates for one round (gradient aggregation).
type Upstream struct {
	Topic ids.ID
	Round int
	From  ring.Contact
	// Epoch is the tree generation the sender aggregated under. After a
	// failover the new root re-announces the round it found incomplete
	// under a bumped epoch; a partial aggregated under the old generation
	// must be discarded, never merged — the same clients resubmit to the
	// new announcement, so folding the stale partial in would double-count
	// every contribution in the sender's subtree.
	Epoch uint64
	// Object is the combined update of the sender's subtree (nil when the
	// subtree had nothing to contribute).
	Object any
	// Count is the number of raw contributions folded into Object.
	Count int
	// Seq numbers every upstream this sender emits for this topic (from 1;
	// 0 means unset). Receivers drop an (From, Seq) pair they have already
	// merged into the round, so a network-duplicated upstream cannot
	// double-count its contributions. The counter restarts when the sender
	// reboots, which is safe because dedup is scoped per aggregation round.
	Seq uint64
}

func (Upstream) pubsubMessage() {}

// WireSize charges header plus object.
func (u Upstream) WireSize() int { return 56 + transport.SizeOf(u.Object) }

// KeepAlive is the parent→child heartbeat used for failure detection. It
// piggybacks the parent's highest multicast sequence (and the stream
// epoch it belongs to) so a child can detect a lost trailing broadcast
// and re-request it (reliable multicast).
type KeepAlive struct {
	Topic   ids.ID
	Parent  ring.Contact
	Epoch   uint64
	LastSeq uint64
}

func (KeepAlive) pubsubMessage() {}

// WireSize reports a small heartbeat frame.
func (KeepAlive) WireSize() int { return 32 }

// McNack asks the parent to retransmit missed multicast sequences
// (reliable multicast: gap detection + bounded retransmission cache).
type McNack struct {
	Topic   ids.ID
	Child   ring.Contact
	Missing []uint64
}

func (McNack) pubsubMessage() {}

// WireSize grows with the gap list.
func (m McNack) WireSize() int { return 32 + 8*len(m.Missing) }

// LeaveMsg detaches a child from its parent.
type LeaveMsg struct {
	Topic ids.ID
	Child ring.Contact
}

func (LeaveMsg) pubsubMessage() {}
