package pubsub

import (
	"fmt"
	"testing"
	"time"

	"totoro/internal/ids"
	"totoro/internal/ring"
)

// TestDeadChildPrunedAfterMisses verifies that a parent stops waiting for
// a dead child: the first childMissLimit rounds after the failure pay the
// aggregation timeout, after which the child is pruned and rounds complete
// promptly again.
func TestDeadChildPrunedAfterMisses(t *testing.T) {
	const aggTimeout = 100 * time.Millisecond
	f := newForest(t, 150, ring.Config{B: 4}, Config{AggTimeout: aggTimeout}, 42)
	topic := ids.Hash("app-prune")
	var subs []*stack
	for i := 0; i < 40; i++ {
		s := f.stacks[f.rng.Intn(len(f.stacks))]
		s.ps.Subscribe(topic)
		subs = append(subs, s)
	}
	f.net.RunUntilIdle()
	f.verifyTree(t, topic, subs)

	// Fail one leaf worker.
	var victim *stack
	for _, s := range f.attachedMembers(topic) {
		info, _ := s.ps.TreeInfo(topic)
		if !info.IsRoot && len(info.Children) == 0 && info.Subscribed {
			victim = s
			break
		}
	}
	if victim == nil {
		t.Skip("no leaf to fail")
	}
	f.net.Fail(victim.ring.Self().Addr)

	runRound := func(round int) time.Duration {
		start := f.net.Now()
		for _, s := range f.attachedMembers(topic) {
			if !f.net.Alive(s.ring.Self().Addr) {
				continue
			}
			info, _ := s.ps.TreeInfo(topic)
			if info.Subscribed {
				s.ps.SubmitUpdate(topic, round, 1)
			} else {
				s.ps.SubmitUpdate(topic, round, nil)
			}
		}
		f.net.RunUntilIdle()
		key := fmt.Sprintf("%s/%d", topic, round)
		if len(f.aggregates[key]) == 0 {
			t.Fatalf("round %d never aggregated", round)
		}
		return f.net.Now() - start
	}

	// Rounds 1..childMissLimit hit the timeout; later rounds must not.
	var durs []time.Duration
	for r := 1; r <= childMissLimit+2; r++ {
		durs = append(durs, runRound(r))
	}
	for i := 0; i < childMissLimit; i++ {
		if durs[i] < aggTimeout {
			t.Fatalf("round %d finished in %v, expected to wait out the timeout", i+1, durs[i])
		}
	}
	for i := childMissLimit; i < len(durs); i++ {
		if durs[i] >= aggTimeout {
			t.Fatalf("round %d still paid the timeout (%v) after pruning", i+1, durs[i])
		}
	}
	// The dead child must be gone from its parent's children table.
	for _, s := range f.stacks {
		if info, ok := s.ps.TreeInfo(topic); ok {
			for _, c := range info.Children {
				if c.Addr == victim.ring.Self().Addr {
					t.Fatal("dead child still registered")
				}
			}
		}
	}
}
