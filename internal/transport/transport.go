// Package transport defines the narrow environment interface that all
// Totoro node logic is written against.
//
// The same protocol handlers (DHT routing, pub/sub trees, FL engines) run
// unchanged on two implementations:
//
//   - internal/simnet: a deterministic discrete-event simulator with a
//     virtual clock, used by the paper-reproduction experiments to model
//     up to hundreds of thousands of edge nodes in one process; and
//   - internal/transport/tcpnet: a real TCP transport with length-prefixed
//     gob frames, used by cmd/totoro-node for live deployments.
//
// Handlers must be event-driven: they react to Receive and to timers set
// with After, and never block.
package transport

import (
	"math/rand"
	"time"

	"totoro/internal/obs"
)

// Addr identifies a node endpoint. Under the simulator it is an opaque
// name ("n42"); under TCP it is a host:port string.
type Addr string

// None is the zero Addr.
const None Addr = ""

// Env is the environment handed to a protocol node. All node I/O flows
// through it, which is what makes the protocol logic simulation-ready.
type Env interface {
	// Self returns this node's own address.
	Self() Addr
	// Now returns the current time. Under simulation this is virtual time
	// since the start of the run; under TCP it is wall-clock time since
	// process start.
	Now() time.Duration
	// Send transmits msg to the destination. Delivery is asynchronous and,
	// depending on the network model, may be delayed or dropped.
	Send(to Addr, msg any)
	// After schedules fn to run once after d elapses. The returned cancel
	// function stops the timer if it has not fired yet.
	After(d time.Duration, fn func()) (cancel func())
	// Rand returns this node's deterministic random source.
	Rand() *rand.Rand
	// Metrics returns this node's telemetry registry. All layers emit
	// their counters, histograms, and trace events here; trace timestamps
	// come from Now, so telemetry is virtual-time-deterministic under the
	// simulator. Implementations never return nil.
	Metrics() *obs.Registry
}

// Per-node traffic counter names every transport maintains in the node's
// registry: messages and bytes in/out, as seen by that transport (accounted
// wire sizes under the simulator, real socket bytes under TCP).
const (
	CtrMsgsIn   = "net.msgs_in"
	CtrMsgsOut  = "net.msgs_out"
	CtrBytesIn  = "net.bytes_in"
	CtrBytesOut = "net.bytes_out"
	// CtrDecodeErrors counts inbound frames whose body failed to decode.
	// Only real transports can observe it (the simulator passes values in
	// memory), but the name lives here with its siblings.
	CtrDecodeErrors = "net.decode_errors"
)

// Handler consumes messages delivered to a node.
type Handler interface {
	Receive(from Addr, msg any)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from Addr, msg any)

// Receive calls f(from, msg).
func (f HandlerFunc) Receive(from Addr, msg any) { f(from, msg) }

// Sized is implemented by messages that know their wire size in bytes.
// The simulator uses it for the per-node traffic accounting behind Fig 7;
// messages that do not implement it are charged DefaultMessageSize.
type Sized interface {
	WireSize() int
}

// DefaultMessageSize is the byte cost charged for control messages that do
// not implement Sized. It approximates a small header-only datagram.
const DefaultMessageSize = 64

// SizeOf returns the accounted wire size of msg.
func SizeOf(msg any) int {
	if s, ok := msg.(Sized); ok {
		return s.WireSize()
	}
	return DefaultMessageSize
}
