package transport

import "testing"

type sized struct{ n int }

func (s sized) WireSize() int { return s.n }

func TestSizeOf(t *testing.T) {
	if got := SizeOf(sized{n: 123}); got != 123 {
		t.Fatalf("SizeOf(sized)=%d", got)
	}
	if got := SizeOf("plain string"); got != DefaultMessageSize {
		t.Fatalf("SizeOf(string)=%d want default", got)
	}
	if got := SizeOf(nil); got != DefaultMessageSize {
		t.Fatalf("SizeOf(nil)=%d", got)
	}
}

func TestHandlerFunc(t *testing.T) {
	var gotFrom Addr
	var gotMsg any
	h := HandlerFunc(func(from Addr, msg any) {
		gotFrom, gotMsg = from, msg
	})
	h.Receive("peer", 42)
	if gotFrom != "peer" || gotMsg != 42 {
		t.Fatalf("HandlerFunc dispatch: %v %v", gotFrom, gotMsg)
	}
}

func TestNoneIsZero(t *testing.T) {
	var a Addr
	if a != None {
		t.Fatal("zero Addr is not None")
	}
}
