// Package tcpnet is the real-network implementation of transport.Env:
// varint-length-delimited codec-v2 frames over TCP (see
// internal/wire/codec and DESIGN.md "Wire format v2"), one event-loop
// goroutine per node so that protocol handlers keep the single-threaded
// semantics they have under the simulator.
//
// It exists so that the exact same Engine that runs in simulation can run
// as a live process (cmd/totoro-node): Join a bootstrap peer, build trees,
// broadcast, and aggregate across machines.
//
// Wire format: every outbound connection opens with the codec-v2 preamble
// and then carries length-prefixed binary frames encoded with pooled
// buffers — no per-message reflection or allocation for the hot types.
// Legacy mode (Config.GobWire) keeps the original gob stream; the read
// side auto-detects which format a peer speaks from the first four bytes,
// so mixed fleets interoperate through one listener. A frame body that
// fails to decode is counted under net.decode_errors and skipped — the
// length framing stays intact, so one malformed message never poisons the
// connection.
//
// Outbound delivery is resilient: each peer has a dedicated writer with a
// bounded send queue. A broken connection is closed and redialed with
// exponential backoff plus jitter, and queued frames drain after the
// reconnect instead of being dropped on the first write error. Only when a
// frame exhausts its retry budget is the peer abandoned (to be freshly
// redialed by the next send) — edge churn is the common case, not the
// exception.
package tcpnet

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"totoro/internal/obs"
	"totoro/internal/transport"
	"totoro/internal/wire"
	"totoro/internal/wire/codec"
)

// frame is the on-wire unit.
type frame struct {
	From transport.Addr
	Msg  any
}

// Config tunes the transport's resilience behavior. The zero value uses
// the defaults documented per field.
type Config struct {
	// DialTimeout bounds one connection attempt (default 3s).
	DialTimeout time.Duration
	// MaxRetries is how many consecutive failures (failed dials or failed
	// writes) one frame survives before the peer is abandoned (default 5).
	MaxRetries int
	// BaseBackoff is the first reconnect delay; it doubles per consecutive
	// failure (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the reconnect delay (default 2s).
	MaxBackoff time.Duration
	// QueueLen is the per-peer send queue depth; sends beyond it are
	// dropped and counted (default 256).
	QueueLen int
	// WriteTimeout bounds one frame write (default 10s).
	WriteTimeout time.Duration
	// GobWire reverts outbound framing to the legacy gob stream (wire
	// format v1). Inbound framing is always auto-detected, so a GobWire
	// node and a codec-v2 node interoperate. Used by the wire benchmarks
	// for before/after traffic comparisons.
	GobWire bool
	// MaxFrameBytes caps one inbound codec-v2 frame's claimed body length
	// (default codec.MaxFrameBytes). A frame claiming more is treated as a
	// framing error and the connection is dropped.
	MaxFrameBytes int
}

func (c Config) withDefaults() Config {
	if c.DialTimeout == 0 {
		c.DialTimeout = 3 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 5
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.QueueLen == 0 {
		c.QueueLen = 256
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = codec.MaxFrameBytes
	}
	return c
}

// peer is one outbound destination: a bounded frame queue drained by a
// dedicated writer goroutine that owns the destination's connection.
type peer struct {
	queue chan frame
	gone  chan struct{} // closed when the writer abandons the peer
}

// Node is one live endpoint: a listener plus outbound writers and a
// single-threaded event loop.
type Node struct {
	addr     transport.Addr
	cfg      Config
	listener net.Listener
	handler  transport.Handler
	start    time.Time
	rng      *rand.Rand

	events chan func()
	done   chan struct{}

	mu     sync.Mutex
	peers  map[transport.Addr]*peer
	seq    int64 // seeds per-writer jitter rngs
	rconns map[net.Conn]bool
	closed bool

	// reg is the node's telemetry registry (shared with the protocol stack
	// via Env.Metrics). reconnects counts successful redials of previously
	// broken connections; droppedSends counts frames lost to full queues,
	// an exhausted retry budget, or an unencodable payload; decodeErrors
	// counts inbound frames whose body failed to decode (skipped without
	// killing the connection). The net.* counters track real socket
	// traffic under the same names the simulator uses. Counters are safe
	// from reader and writer goroutines.
	reg          *obs.Registry
	reconnects   *obs.Counter
	droppedSends *obs.Counter
	decodeErrors *obs.Counter
	msgsIn       *obs.Counter
	msgsOut      *obs.Counter
	bytesIn      *obs.Counter
	bytesOut     *obs.Counter

	closeOnce sync.Once
}

// Metrics returns the node's telemetry registry — the same one the
// protocol stack emits into via its Env. cmd/totoro-node serves it over
// HTTP with obs.RegistryHandler.
func (n *Node) Metrics() *obs.Registry { return n.reg }

// Reconnects returns the count of successful redials of broken
// connections ("tcpnet.reconnects").
func (n *Node) Reconnects() int64 { return n.reconnects.Value() }

// DroppedSends returns the count of frames lost to full queues or an
// exhausted retry budget ("tcpnet.dropped_sends").
func (n *Node) DroppedSends() int64 { return n.droppedSends.Value() }

// DecodeErrors returns the count of inbound frames whose body failed to
// decode ("net.decode_errors"). Such frames are skipped; the connection
// survives.
func (n *Node) DecodeErrors() int64 { return n.decodeErrors.Value() }

// Listen starts a node on the given TCP address ("host:port") with default
// resilience settings. build receives the node's Env and returns its
// Handler (typically a totoro.Engine). The returned Node runs until Close.
func Listen(addr string, build func(transport.Env) transport.Handler) (*Node, error) {
	return ListenConfig(addr, Config{}, build)
}

// ListenConfig is Listen with explicit transport tuning.
func ListenConfig(addr string, cfg Config, build func(transport.Env) transport.Handler) (*Node, error) {
	wire.Register()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	reg := obs.New(0)
	n := &Node{
		addr:         transport.Addr(l.Addr().String()),
		cfg:          cfg.withDefaults(),
		listener:     l,
		start:        time.Now(),
		rng:          rand.New(rand.NewSource(time.Now().UnixNano())),
		events:       make(chan func(), 1024),
		done:         make(chan struct{}),
		peers:        make(map[transport.Addr]*peer),
		rconns:       make(map[net.Conn]bool),
		reg:          reg,
		reconnects:   reg.Counter("tcpnet.reconnects"),
		droppedSends: reg.Counter("tcpnet.dropped_sends"),
		decodeErrors: reg.Counter(transport.CtrDecodeErrors),
		msgsIn:       reg.Counter(transport.CtrMsgsIn),
		msgsOut:      reg.Counter(transport.CtrMsgsOut),
		bytesIn:      reg.Counter(transport.CtrBytesIn),
		bytesOut:     reg.Counter(transport.CtrBytesOut),
	}
	n.handler = build(n.env())
	go n.loop()
	go n.accept()
	return n, nil
}

// Addr returns the node's bound address.
func (n *Node) Addr() transport.Addr { return n.addr }

// Close shuts the node down. Writer goroutines observe done and close
// their connections on the way out; accepted inbound connections are
// closed here so remote senders see the failure instead of feeding a dead
// event loop.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.listener.Close()
		n.mu.Lock()
		n.closed = true
		for c := range n.rconns {
			c.Close()
		}
		n.mu.Unlock()
	})
}

// Do runs fn on the node's event loop and waits for it — the way external
// code (main functions, tests) safely calls Engine methods.
func (n *Node) Do(fn func()) {
	doneCh := make(chan struct{})
	select {
	case n.events <- func() { fn(); close(doneCh) }:
	case <-n.done:
		return
	}
	select {
	case <-doneCh:
	case <-n.done:
	}
}

// loop is the single-threaded event executor: every received message and
// every timer runs here, exactly like the simulator's event loop.
func (n *Node) loop() {
	for {
		select {
		case fn := <-n.events:
			fn()
		case <-n.done:
			return
		}
	}
}

func (n *Node) accept() {
	for {
		c, err := n.listener.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			c.Close()
			return
		}
		n.rconns[c] = true
		n.mu.Unlock()
		go n.readLoop(c)
	}
}

func (n *Node) readLoop(c net.Conn) {
	defer func() {
		n.mu.Lock()
		delete(n.rconns, c)
		n.mu.Unlock()
		c.Close()
	}()
	br := bufio.NewReaderSize(&countingReader{r: c, ctr: n.bytesIn}, 32<<10)
	// The first four bytes identify the wire format: codec-v2 streams open
	// with a preamble whose leading byte is zero, which no gob stream can
	// start with (gob's first byte is a nonzero message length).
	head, err := br.Peek(len(codec.Preamble))
	if err != nil {
		return
	}
	if [4]byte(head) == codec.Preamble {
		br.Discard(len(codec.Preamble))
		n.readV2(br)
		return
	}
	n.readGob(br)
}

// readV2 drains codec-v2 frames: uvarint body length + body. A body that
// fails to decode is counted and skipped — the length framing is still
// intact, so one malformed message never poisons the connection. Only a
// framing-level violation (unreadable or oversized length header) ends
// the stream.
func (n *Node) readV2(br *bufio.Reader) {
	var body []byte // reused across frames; decoded values never alias it
	for {
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return
		}
		if size > uint64(n.cfg.MaxFrameBytes) {
			n.decodeErrors.Inc()
			return // the framing itself cannot be trusted anymore
		}
		if uint64(cap(body)) < size {
			body = make([]byte, size)
		}
		body = body[:size]
		if _, err := io.ReadFull(br, body); err != nil {
			return
		}
		from, msg, err := codec.DecodeFrame(body)
		if err != nil {
			n.decodeErrors.Inc()
			continue
		}
		n.msgsIn.Inc()
		select {
		case n.events <- func() { n.handler.Receive(from, msg) }:
		case <-n.done:
			return
		}
	}
}

// readGob drains a legacy gob stream (wire format v1).
func (n *Node) readGob(br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			// Clean or churn-induced stream ends are routine; anything else
			// is a decode failure worth counting. Gob cannot resynchronize
			// mid-stream, so the connection ends either way.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, net.ErrClosed) {
				n.decodeErrors.Inc()
			}
			return
		}
		n.msgsIn.Inc()
		select {
		case n.events <- func() { n.handler.Receive(f.From, f.Msg) }:
		case <-n.done:
			return
		}
	}
}

// countingReader and countingWriter charge socket bytes to a counter as
// they pass through, giving live nodes the same net.bytes_in/out telemetry
// the simulator accounts virtually.
type countingReader struct {
	r   io.Reader
	ctr *obs.Counter
}

func (c *countingReader) Read(p []byte) (int, error) {
	m, err := c.r.Read(p)
	c.ctr.Add(int64(m))
	return m, err
}

type countingWriter struct {
	w   io.Writer
	ctr *obs.Counter
}

func (c *countingWriter) Write(p []byte) (int, error) {
	m, err := c.w.Write(p)
	c.ctr.Add(int64(m))
	return m, err
}

// env implements transport.Env backed by real time and sockets.
type tcpEnv struct{ n *Node }

func (n *Node) env() transport.Env { return &tcpEnv{n: n} }

func (e *tcpEnv) Self() transport.Addr   { return e.n.addr }
func (e *tcpEnv) Now() time.Duration     { return time.Since(e.n.start) }
func (e *tcpEnv) Rand() *rand.Rand       { return e.n.rng }
func (e *tcpEnv) Metrics() *obs.Registry { return e.n.reg }

func (e *tcpEnv) Send(to transport.Addr, msg any) {
	e.n.enqueue(to, frame{From: e.n.addr, Msg: msg})
}

func (e *tcpEnv) After(d time.Duration, fn func()) (cancel func()) {
	n := e.n
	stopped := make(chan struct{})
	var once sync.Once
	t := time.AfterFunc(d, func() {
		select {
		case <-stopped:
			return
		default:
		}
		select {
		case n.events <- fn:
		case <-n.done:
		}
	})
	return func() {
		once.Do(func() { close(stopped) })
		t.Stop()
	}
}

// enqueue hands a frame to the destination's writer, creating the peer
// (and its writer goroutine) on first use or after an abandonment. A full
// queue drops the frame: protocols see loss, never backpressure into the
// event loop.
func (n *Node) enqueue(to transport.Addr, f frame) {
	for {
		n.mu.Lock()
		p, ok := n.peers[to]
		if !ok {
			p = &peer{
				queue: make(chan frame, n.cfg.QueueLen),
				gone:  make(chan struct{}),
			}
			n.peers[to] = p
			n.seq++
			seed := n.seq
			go n.writeLoop(to, p, seed)
		}
		n.mu.Unlock()
		select {
		case p.queue <- f:
			return
		case <-p.gone:
			// The writer abandoned this peer while we held it; a fresh
			// peer (with a fresh retry budget) replaces it.
			continue
		default:
			n.droppedSends.Inc()
			return
		}
	}
}

// writeLoop owns one destination: it drains the peer's queue, dialing and
// redialing as needed. One frame is retried up to MaxRetries consecutive
// failures with exponential backoff before the peer is abandoned; any
// success resets the budget.
//
// In codec-v2 mode the frame body is encoded once into a pooled buffer
// before any socket work, so a redial retries the already-encoded bytes,
// and an encode failure (an unregistered, gob-hostile payload in the
// fallback path) drops just that frame — it is deterministic, so retrying
// or tearing the connection down would not help.
func (n *Node) writeLoop(to transport.Addr, p *peer, seed int64) {
	var conn net.Conn
	var gobEnc *gob.Encoder // legacy stream encoder (Config.GobWire)
	var bw *bufio.Writer    // codec-v2 frame writer
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	rng := rand.New(rand.NewSource(seed ^ time.Now().UnixNano()))
	hadConn := false
	fails := 0
	for {
		var f frame
		select {
		case f = <-p.queue:
		case <-n.done:
			return
		}
		var enc *codec.Enc
		if !n.cfg.GobWire {
			enc = codec.NewEnc()
			if err := codec.EncodeFrame(enc, f.From, f.Msg); err != nil {
				enc.Free()
				n.droppedSends.Inc()
				continue
			}
		}
		for {
			if conn == nil {
				c, err := net.DialTimeout("tcp", string(to), n.cfg.DialTimeout)
				if err != nil {
					fails++
					if fails > n.cfg.MaxRetries {
						if enc != nil {
							enc.Free()
						}
						n.abandon(to, p, 1)
						return
					}
					if !n.sleepBackoff(rng, fails) {
						if enc != nil {
							enc.Free()
						}
						return
					}
					continue
				}
				conn = c
				cw := &countingWriter{w: conn, ctr: n.bytesOut}
				if n.cfg.GobWire {
					gobEnc = gob.NewEncoder(cw)
				} else {
					bw = bufio.NewWriterSize(cw, 32<<10)
					bw.Write(codec.Preamble[:]) // flushed with the first frame
				}
				if hadConn {
					n.reconnects.Inc()
				}
				hadConn = true
			}
			conn.SetWriteDeadline(time.Now().Add(n.cfg.WriteTimeout))
			var err error
			if n.cfg.GobWire {
				err = gobEnc.Encode(f)
			} else {
				err = writeV2Frame(bw, enc.Bytes())
			}
			if err == nil {
				if enc != nil {
					enc.Free()
				}
				n.msgsOut.Inc()
				fails = 0
				break
			}
			// A failed write leaves the stream mid-frame: in gob mode the
			// encoder is also poisoned. Close the connection and retry this
			// frame on a fresh dial (the v2 body is still encoded in enc).
			conn.Close()
			conn, gobEnc, bw = nil, nil, nil
			fails++
			if fails > n.cfg.MaxRetries {
				if enc != nil {
					enc.Free()
				}
				n.abandon(to, p, 1)
				return
			}
			if !n.sleepBackoff(rng, fails) {
				if enc != nil {
					enc.Free()
				}
				return
			}
		}
	}
}

// writeV2Frame writes one length-prefixed codec-v2 frame and flushes it.
func writeV2Frame(bw *bufio.Writer, body []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	hn := binary.PutUvarint(hdr[:], uint64(len(body)))
	if _, err := bw.Write(hdr[:hn]); err != nil {
		return err
	}
	if _, err := bw.Write(body); err != nil {
		return err
	}
	return bw.Flush()
}

// abandon retires a peer whose retry budget ran out: it is removed from
// the map (so a later send starts over with a fresh writer) and its queued
// frames are counted as dropped. inFlight is the frame the writer was
// holding when it gave up.
func (n *Node) abandon(to transport.Addr, p *peer, inFlight int) {
	n.mu.Lock()
	if cur, ok := n.peers[to]; ok && cur == p {
		delete(n.peers, to)
	}
	n.mu.Unlock()
	close(p.gone)
	dropped := int64(inFlight)
	for {
		select {
		case <-p.queue:
			dropped++
		default:
			n.droppedSends.Add(dropped)
			return
		}
	}
}

// sleepBackoff waits the exponential-backoff delay for the given failure
// count, with jitter in [d/2, d). It reports false if the node closed
// while waiting.
func (n *Node) sleepBackoff(rng *rand.Rand, fails int) bool {
	d := n.cfg.BaseBackoff << uint(fails-1)
	if d <= 0 || d > n.cfg.MaxBackoff {
		d = n.cfg.MaxBackoff
	}
	d = d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-n.done:
		return false
	}
}
