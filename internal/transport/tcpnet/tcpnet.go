// Package tcpnet is the real-network implementation of transport.Env:
// length-delimited gob frames over TCP, one event-loop goroutine per node
// so that protocol handlers keep the single-threaded semantics they have
// under the simulator.
//
// It exists so that the exact same Engine that runs in simulation can run
// as a live process (cmd/totoro-node): Join a bootstrap peer, build trees,
// broadcast, and aggregate across machines.
package tcpnet

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"totoro/internal/transport"
	"totoro/internal/wire"
)

// frame is the on-wire unit.
type frame struct {
	From transport.Addr
	Msg  any
}

// Node is one live endpoint: a listener plus outbound connections and a
// single-threaded event loop.
type Node struct {
	addr     transport.Addr
	listener net.Listener
	handler  transport.Handler
	start    time.Time
	rng      *rand.Rand

	events chan func()
	done   chan struct{}

	mu    sync.Mutex
	conns map[transport.Addr]*outConn

	closeOnce sync.Once
}

type outConn struct {
	enc *gob.Encoder
	c   net.Conn
}

// Listen starts a node on the given TCP address ("host:port"). build
// receives the node's Env and returns its Handler (typically a
// totoro.Engine). The returned Node runs until Close.
func Listen(addr string, build func(transport.Env) transport.Handler) (*Node, error) {
	wire.Register()
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	n := &Node{
		addr:     transport.Addr(l.Addr().String()),
		listener: l,
		start:    time.Now(),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		events:   make(chan func(), 1024),
		done:     make(chan struct{}),
		conns:    make(map[transport.Addr]*outConn),
	}
	n.handler = build(n.env())
	go n.loop()
	go n.accept()
	return n, nil
}

// Addr returns the node's bound address.
func (n *Node) Addr() transport.Addr { return n.addr }

// Close shuts the node down.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		close(n.done)
		n.listener.Close()
		n.mu.Lock()
		for _, oc := range n.conns {
			oc.c.Close()
		}
		n.mu.Unlock()
	})
}

// Do runs fn on the node's event loop and waits for it — the way external
// code (main functions, tests) safely calls Engine methods.
func (n *Node) Do(fn func()) {
	doneCh := make(chan struct{})
	select {
	case n.events <- func() { fn(); close(doneCh) }:
	case <-n.done:
		return
	}
	select {
	case <-doneCh:
	case <-n.done:
	}
}

// loop is the single-threaded event executor: every received message and
// every timer runs here, exactly like the simulator's event loop.
func (n *Node) loop() {
	for {
		select {
		case fn := <-n.events:
			fn()
		case <-n.done:
			return
		}
	}
}

func (n *Node) accept() {
	for {
		c, err := n.listener.Accept()
		if err != nil {
			return
		}
		go n.readLoop(c)
	}
}

func (n *Node) readLoop(c net.Conn) {
	defer c.Close()
	dec := gob.NewDecoder(c)
	for {
		var f frame
		if err := dec.Decode(&f); err != nil {
			return
		}
		select {
		case n.events <- func() { n.handler.Receive(f.From, f.Msg) }:
		case <-n.done:
			return
		}
	}
}

// env implements transport.Env backed by real time and sockets.
type tcpEnv struct{ n *Node }

func (n *Node) env() transport.Env { return &tcpEnv{n: n} }

func (e *tcpEnv) Self() transport.Addr { return e.n.addr }
func (e *tcpEnv) Now() time.Duration   { return time.Since(e.n.start) }
func (e *tcpEnv) Rand() *rand.Rand     { return e.n.rng }

func (e *tcpEnv) Send(to transport.Addr, msg any) {
	n := e.n
	go func() {
		if err := n.send(to, msg); err != nil {
			// Connection-level failures surface to protocols as silence,
			// the same failure model the simulator presents.
			n.dropConn(to)
		}
	}()
}

func (e *tcpEnv) After(d time.Duration, fn func()) (cancel func()) {
	n := e.n
	stopped := make(chan struct{})
	var once sync.Once
	t := time.AfterFunc(d, func() {
		select {
		case <-stopped:
			return
		default:
		}
		select {
		case n.events <- fn:
		case <-n.done:
		}
	})
	return func() {
		once.Do(func() { close(stopped) })
		t.Stop()
	}
}

func (n *Node) send(to transport.Addr, msg any) error {
	oc, err := n.conn(to)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if cur, ok := n.conns[to]; !ok || cur != oc {
		return errors.New("tcpnet: connection replaced")
	}
	return oc.enc.Encode(frame{From: n.addr, Msg: msg})
}

func (n *Node) conn(to transport.Addr) (*outConn, error) {
	n.mu.Lock()
	if oc, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return oc, nil
	}
	n.mu.Unlock()
	c, err := net.DialTimeout("tcp", string(to), 3*time.Second)
	if err != nil {
		return nil, err
	}
	oc := &outConn{enc: gob.NewEncoder(c), c: c}
	n.mu.Lock()
	if cur, ok := n.conns[to]; ok {
		n.mu.Unlock()
		c.Close()
		return cur, nil
	}
	n.conns[to] = oc
	n.mu.Unlock()
	return oc, nil
}

func (n *Node) dropConn(to transport.Addr) {
	n.mu.Lock()
	if oc, ok := n.conns[to]; ok {
		oc.c.Close()
		delete(n.conns, to)
	}
	n.mu.Unlock()
}
