package tcpnet

import (
	"encoding/binary"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"totoro/internal/transport"
	"totoro/internal/wire/codec"
)

type echoHandler struct {
	env  transport.Env
	seen atomic.Int64
}

func (h *echoHandler) Receive(from transport.Addr, msg any) {
	h.seen.Add(1)
	if s, ok := msg.(string); ok && s == "ping" {
		h.env.Send(from, "pong")
	}
}

func startNode(t *testing.T) (*Node, *echoHandler) {
	t.Helper()
	h := &echoHandler{}
	n, err := Listen("127.0.0.1:0", func(e transport.Env) transport.Handler {
		h.env = e
		return h
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n, h
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func TestRoundTripOverTCP(t *testing.T) {
	a, ha := startNode(t)
	b, hb := startNode(t)
	a.Do(func() { ha.env.Send(b.Addr(), "ping") })
	waitFor(t, func() bool { return hb.seen.Load() >= 1 })
	waitFor(t, func() bool { return ha.seen.Load() >= 1 })
}

func TestTimersFireOnEventLoop(t *testing.T) {
	a, ha := startNode(t)
	var fired atomic.Bool
	a.Do(func() {
		ha.env.After(20*time.Millisecond, func() { fired.Store(true) })
	})
	waitFor(t, fired.Load)
	// Cancelled timers must not fire.
	var bad atomic.Bool
	a.Do(func() {
		cancel := ha.env.After(20*time.Millisecond, func() { bad.Store(true) })
		cancel()
	})
	time.Sleep(60 * time.Millisecond)
	if bad.Load() {
		t.Fatal("cancelled timer fired")
	}
}

func TestSendToDeadPeerIsSilent(t *testing.T) {
	a, ha := startNode(t)
	b, _ := startNode(t)
	dead := b.Addr()
	b.Close()
	time.Sleep(20 * time.Millisecond)
	// Must not panic or block.
	a.Do(func() { ha.env.Send(dead, "into the void") })
	time.Sleep(50 * time.Millisecond)
}

// startNodeConfig is startNode with fast-retry transport tuning so the
// resilience tests finish quickly.
func startNodeConfig(t *testing.T, cfg Config) (*Node, *echoHandler) {
	t.Helper()
	h := &echoHandler{}
	n, err := ListenConfig("127.0.0.1:0", cfg, func(e transport.Env) transport.Handler {
		h.env = e
		return h
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n, h
}

// TestReconnectDrainsQueuedFrames kills the receiver, keeps sending, then
// restarts a listener on the same port: the sender must redial and deliver
// later frames on the fresh connection rather than staying wedged on the
// poisoned encoder of the dead one.
func TestReconnectDrainsQueuedFrames(t *testing.T) {
	cfg := Config{
		DialTimeout: time.Second,
		MaxRetries:  20,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
	}
	a, ha := startNodeConfig(t, cfg)
	b, hb := startNodeConfig(t, cfg)
	port := b.Addr()

	a.Do(func() { ha.env.Send(port, "ping") })
	waitFor(t, func() bool { return hb.seen.Load() >= 1 })

	b.Close()
	time.Sleep(20 * time.Millisecond)
	// Poke the dead connection: the write itself may be silently swallowed
	// by the kernel (a FIN is not a write error), but it provokes the RST
	// that makes every later write fail fast.
	a.Do(func() { ha.env.Send(port, "probe") })
	time.Sleep(50 * time.Millisecond)
	// Frames sent while the receiver is down queue and retry instead of
	// being dropped on the write error.
	for i := 0; i < 5; i++ {
		a.Do(func() { ha.env.Send(port, "while-down") })
		time.Sleep(5 * time.Millisecond)
	}

	h2 := &echoHandler{}
	b2, err := ListenConfig(string(port), cfg, func(e transport.Env) transport.Handler {
		h2.env = e
		return h2
	})
	if err != nil {
		t.Fatalf("could not rebind %s: %v", port, err)
	}
	t.Cleanup(b2.Close)

	// Queued while-down frames drain on the reconnect, and fresh frames
	// flow on the same recovered connection.
	waitFor(t, func() bool { return h2.seen.Load() >= 1 })
	a.Do(func() { ha.env.Send(port, "after-reconnect") })
	waitFor(t, func() bool { return h2.seen.Load() >= 2 })
	if a.Reconnects() < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", a.Reconnects())
	}
}

// TestRetryBudgetAbandonsPeerThenRecovers sends to a dead address until the
// retry budget runs out (frames counted dropped, peer forgotten), then
// brings the address up and checks a fresh send gets a fresh writer.
func TestRetryBudgetAbandonsPeerThenRecovers(t *testing.T) {
	cfg := Config{
		DialTimeout: 200 * time.Millisecond,
		MaxRetries:  2,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	}
	a, ha := startNodeConfig(t, cfg)
	b, _ := startNodeConfig(t, cfg)
	port := b.Addr()
	b.Close()
	time.Sleep(20 * time.Millisecond)

	a.Do(func() { ha.env.Send(port, "doomed") })
	waitFor(t, func() bool { return a.DroppedSends() >= 1 })
	a.mu.Lock()
	_, still := a.peers[port]
	a.mu.Unlock()
	if still {
		t.Fatal("abandoned peer still cached")
	}

	h2 := &echoHandler{}
	b2, err := ListenConfig(string(port), cfg, func(e transport.Env) transport.Handler {
		h2.env = e
		return h2
	})
	if err != nil {
		t.Fatalf("could not rebind %s: %v", port, err)
	}
	t.Cleanup(b2.Close)
	a.Do(func() { ha.env.Send(port, "second chance") })
	waitFor(t, func() bool { return h2.seen.Load() >= 1 })
}

// TestGobWireInterop runs one legacy (GobWire) node against one codec-v2
// node: the read side auto-detects each peer's framing from the stream
// preamble, so messages flow both ways through the same listeners.
func TestGobWireInterop(t *testing.T) {
	legacy, hl := startNodeConfig(t, Config{GobWire: true})
	v2, hv := startNode(t)
	legacy.Do(func() { hl.env.Send(v2.Addr(), "ping") })
	waitFor(t, func() bool { return hv.seen.Load() >= 1 }) // gob frame into v2 node
	waitFor(t, func() bool { return hl.seen.Load() >= 1 }) // v2 "pong" back into legacy node
	if n := v2.DecodeErrors() + legacy.DecodeErrors(); n != 0 {
		t.Fatalf("interop produced %d decode errors", n)
	}
}

// TestMalformedFrameCountedNotFatal injects a garbage body inside valid
// v2 length framing: the node must count it under net.decode_errors, keep
// the connection alive, and deliver the well-formed frames around it.
func TestMalformedFrameCountedNotFatal(t *testing.T) {
	a, ha := startNode(t)
	b, hb := startNode(t)

	// A real frame first, so the malformed one arrives mid-connection.
	a.Do(func() { ha.env.Send(b.Addr(), "ping") })
	waitFor(t, func() bool { return hb.seen.Load() >= 1 })

	// Reach into a's writer state? No — open a raw conn speaking v2.
	conn, err := net.Dial("tcp", string(b.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(codec.Preamble[:])
	goodBefore := v2FrameBytes(t, "raw-sender", "hello")
	garbage := []byte{0xde, 0xad, 0xbe, 0xef} // tag 0x5e... not registered
	goodAfter := v2FrameBytes(t, "raw-sender", "world")
	var buf []byte
	buf = append(buf, goodBefore...)
	buf = binary.AppendUvarint(buf, uint64(len(garbage)))
	buf = append(buf, garbage...)
	buf = append(buf, goodAfter...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}

	// Both good frames arrive — the garbage one was skipped, not fatal.
	waitFor(t, func() bool { return hb.seen.Load() >= 3 })
	waitFor(t, func() bool { return b.DecodeErrors() == 1 })
	if got := b.Metrics().Counter(transport.CtrDecodeErrors).Value(); got != 1 {
		t.Fatalf("net.decode_errors = %d, want 1", got)
	}
}

// TestOversizedFrameKillsConnection: a length header past MaxFrameBytes
// means the framing itself cannot be trusted; the connection ends (and the
// violation is counted) instead of attempting a giant allocation.
func TestOversizedFrameKillsConnection(t *testing.T) {
	b, _ := startNodeConfig(t, Config{MaxFrameBytes: 1 << 16})
	conn, err := net.Dial("tcp", string(b.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(codec.Preamble[:])
	var hdr []byte
	hdr = binary.AppendUvarint(hdr, 1<<30)
	conn.Write(hdr)
	waitFor(t, func() bool { return b.DecodeErrors() == 1 })
	// The node closed its side: reads hit EOF once the kernel drains.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection still alive after framing violation")
	}
}

// TestTrafficCountersV2 checks msgs/bytes accounting on the v2 path.
func TestTrafficCountersV2(t *testing.T) {
	a, ha := startNode(t)
	b, _ := startNode(t)
	payload := make([]float64, 1000)
	for i := 0; i < 5; i++ {
		a.Do(func() { ha.env.Send(b.Addr(), payload) })
	}
	waitFor(t, func() bool { return b.Metrics().Counter(transport.CtrMsgsIn).Value() >= 5 })
	out := a.Metrics().Counter(transport.CtrMsgsOut).Value()
	if out != 5 {
		t.Fatalf("net.msgs_out = %d, want 5", out)
	}
	// 5 frames × ~8KB payload: bytes counters reflect real socket traffic,
	// and in and out agree to within the preamble.
	bytesOut := a.Metrics().Counter(transport.CtrBytesOut).Value()
	bytesIn := b.Metrics().Counter(transport.CtrBytesIn).Value()
	if bytesOut < 5*8000 || bytesIn < bytesOut {
		t.Fatalf("byte counters off: out=%d in=%d", bytesOut, bytesIn)
	}
}

// v2FrameBytes builds one length-prefixed codec-v2 frame.
func v2FrameBytes(t *testing.T, from transport.Addr, msg any) []byte {
	t.Helper()
	e := codec.NewEnc()
	defer e.Free()
	if err := codec.EncodeFrame(e, from, msg); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(e.Len()))
	return append(buf, e.Bytes()...)
}

func TestNowMonotone(t *testing.T) {
	a, ha := startNode(t)
	var t1, t2 time.Duration
	a.Do(func() { t1 = ha.env.Now() })
	time.Sleep(15 * time.Millisecond)
	a.Do(func() { t2 = ha.env.Now() })
	if t2 <= t1 {
		t.Fatalf("clock not advancing: %v -> %v", t1, t2)
	}
	if ha.env.Self() != a.Addr() {
		t.Fatal("Self mismatch")
	}
}
