package tcpnet

import (
	"sync/atomic"
	"testing"
	"time"

	"totoro/internal/transport"
)

type echoHandler struct {
	env  transport.Env
	seen atomic.Int64
}

func (h *echoHandler) Receive(from transport.Addr, msg any) {
	h.seen.Add(1)
	if s, ok := msg.(string); ok && s == "ping" {
		h.env.Send(from, "pong")
	}
}

func startNode(t *testing.T) (*Node, *echoHandler) {
	t.Helper()
	h := &echoHandler{}
	n, err := Listen("127.0.0.1:0", func(e transport.Env) transport.Handler {
		h.env = e
		return h
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n, h
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}

func TestRoundTripOverTCP(t *testing.T) {
	a, ha := startNode(t)
	b, hb := startNode(t)
	a.Do(func() { ha.env.Send(b.Addr(), "ping") })
	waitFor(t, func() bool { return hb.seen.Load() >= 1 })
	waitFor(t, func() bool { return ha.seen.Load() >= 1 })
}

func TestTimersFireOnEventLoop(t *testing.T) {
	a, ha := startNode(t)
	var fired atomic.Bool
	a.Do(func() {
		ha.env.After(20*time.Millisecond, func() { fired.Store(true) })
	})
	waitFor(t, fired.Load)
	// Cancelled timers must not fire.
	var bad atomic.Bool
	a.Do(func() {
		cancel := ha.env.After(20*time.Millisecond, func() { bad.Store(true) })
		cancel()
	})
	time.Sleep(60 * time.Millisecond)
	if bad.Load() {
		t.Fatal("cancelled timer fired")
	}
}

func TestSendToDeadPeerIsSilent(t *testing.T) {
	a, ha := startNode(t)
	b, _ := startNode(t)
	dead := b.Addr()
	b.Close()
	time.Sleep(20 * time.Millisecond)
	// Must not panic or block.
	a.Do(func() { ha.env.Send(dead, "into the void") })
	time.Sleep(50 * time.Millisecond)
}

func TestNowMonotone(t *testing.T) {
	a, ha := startNode(t)
	var t1, t2 time.Duration
	a.Do(func() { t1 = ha.env.Now() })
	time.Sleep(15 * time.Millisecond)
	a.Do(func() { t2 = ha.env.Now() })
	if t2 <= t1 {
		t.Fatalf("clock not advancing: %v -> %v", t1, t2)
	}
	if ha.env.Self() != a.Addr() {
		t.Fatal("Self mismatch")
	}
}
