package baseline

import (
	"fmt"
	"testing"
	"time"

	"totoro/internal/transport"
	"totoro/internal/workload"
)

func smallApps(n int, seed int64) []*workload.App {
	apps := workload.MakeApps(workload.Params{
		Task:             workload.TaskSpeech,
		Apps:             n,
		ClientsPerApp:    8,
		SamplesPerClient: 40,
		Seed:             seed,
	})
	for _, a := range apps {
		a.MaxRounds = 12
		a.TargetAccuracy = 0.45
	}
	return apps
}

func TestSingleAppTrainsToTarget(t *testing.T) {
	apps := smallApps(1, 1)
	e := New(apps, Config{Profile: FedScale(), ClientNodes: 16, Seed: 1})
	prog := e.Run()
	if len(prog) != 1 {
		t.Fatalf("progress entries %d", len(prog))
	}
	p := prog[0]
	if len(p.Points) == 0 {
		t.Fatal("no accuracy points recorded")
	}
	last := p.Points[len(p.Points)-1]
	if last.Accuracy < 0.45 && last.Round < 12 {
		t.Fatalf("run stopped early: %+v", last)
	}
	if !p.Reached && last.Round != 12 {
		t.Fatalf("neither reached target nor exhausted rounds: %+v", last)
	}
	// Accuracy should improve over the run.
	if last.Accuracy <= p.Points[0].Accuracy {
		t.Fatalf("no learning: %.3f -> %.3f", p.Points[0].Accuracy, last.Accuracy)
	}
	if p.Done == 0 {
		t.Fatal("Done not set")
	}
}

func TestTimeMonotoneAndRoundsOrdered(t *testing.T) {
	apps := smallApps(2, 2)
	e := New(apps, Config{Profile: OpenFL(), ClientNodes: 16, Seed: 2})
	prog := e.Run()
	for _, p := range prog {
		for i := 1; i < len(p.Points); i++ {
			if p.Points[i].Time < p.Points[i-1].Time {
				t.Fatal("time not monotone")
			}
			if p.Points[i].Round != p.Points[i-1].Round+1 {
				t.Fatal("rounds not consecutive")
			}
		}
	}
}

func TestConcurrentAppsSlowEachOtherDown(t *testing.T) {
	// The centralized architecture's defining behaviour: total completion
	// time grows with the number of concurrently running applications.
	finish := func(n int) time.Duration {
		apps := smallApps(n, 3)
		e := New(apps, Config{Profile: OpenFL(), ClientNodes: 16, Seed: 3})
		prog := e.Run()
		var worst time.Duration
		for _, p := range prog {
			if p.Done > worst {
				worst = p.Done
			}
		}
		return worst
	}
	t1 := finish(1)
	t8 := finish(8)
	if t8 < time.Duration(float64(t1)*1.5) {
		t.Fatalf("8 concurrent apps (%v) not meaningfully slower than 1 (%v)", t8, t1)
	}
}

func TestServerIsTheTrafficHotspot(t *testing.T) {
	apps := smallApps(3, 4)
	e := New(apps, Config{Profile: FedScale(), ClientNodes: 16, Seed: 4})
	e.Run()
	server := e.Network().TrafficOf("server")
	var maxClient int64
	for i := 0; i < 16; i++ {
		tr := e.Network().TrafficOf(transport.Addr(fmt.Sprintf("client%d", i)))
		if tr.BytesIn+tr.BytesOut > maxClient {
			maxClient = tr.BytesIn + tr.BytesOut
		}
	}
	if server.BytesIn+server.BytesOut < 3*maxClient {
		t.Fatalf("server traffic %d not dominant over max client %d",
			server.BytesIn+server.BytesOut, maxClient)
	}
}
