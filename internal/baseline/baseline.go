// Package baseline implements the centralized "single master / many
// workers" FL architecture that OpenFL and FedScale share (paper §2.1,
// §7.4): one logically central parameter server hosts the Coordinator,
// Selector and per-app Aggregators; all clients talk to it directly in a
// hub-and-spoke pattern.
//
// The engine runs on the same simulator, the same ML stack, the same FL
// algorithms, and the same cost model as the decentralized Totoro engine,
// so the time-to-accuracy comparison isolates the architecture: the
// coordinator serializes round setup across concurrently running
// applications (first-come first-served), and the server's NIC serializes
// every model download and update upload.
package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"totoro/internal/fl"
	"totoro/internal/ml"
	"totoro/internal/simnet"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

// Profile distinguishes the two published baselines. Both are centralized;
// they differ in deployment footprint (§7.1: OpenFL is a single-machine
// framework, FedScale a distributed engine with a beefier serving path).
type Profile struct {
	Name            string
	ServerBandwidth int64 // bytes/sec of the parameter server NIC
	ClientBandwidth int64 // bytes/sec of each edge client
	Cost            workload.CostModel
}

// OpenFL returns the OpenFL-like profile. The paper's testbed runs every
// component on the same t2.medium instance class (§7.1), so the parameter
// server's NIC matches the edge nodes' — which is precisely why its
// hub-and-spoke traffic becomes the bottleneck under concurrency.
func OpenFL() Profile {
	c := workload.DefaultCostModel()
	c.CoordPerClient = 10 * time.Millisecond
	return Profile{Name: "openfl", ServerBandwidth: 2 << 20, ClientBandwidth: 2 << 20, Cost: c}
}

// FedScale returns the FedScale-like profile (faster coordinator and a
// somewhat beefier serving path, still centralized).
func FedScale() Profile {
	c := workload.DefaultCostModel()
	c.CoordPerClient = 8 * time.Millisecond
	return Profile{Name: "fedscale", ServerBandwidth: 3 << 20, ClientBandwidth: 2 << 20, Cost: c}
}

// Config parameterizes a run.
type Config struct {
	Profile Profile
	// ClientNodes is the size of the shared edge-device pool; apps map
	// their logical clients onto it (so concurrent apps contend for
	// device compute, as in the paper's shared platform).
	ClientNodes int
	Seed        int64
	// Latency is the one-way network latency (default 5ms).
	Latency time.Duration
}

// modelDown carries the global model to a selected client.
type modelDown struct {
	App    int
	Round  int
	Client int
	Params []float64
}

func (m modelDown) WireSize() int { return 16 + 4 + 8*len(m.Params) }

// updateUp carries one client's (compressed-on-the-wire) update.
type updateUp struct {
	App    int
	Round  int
	Client int
	Acc    *fl.Accum
	Bytes  int
}

func (u updateUp) WireSize() int { return 24 + u.Bytes }

type appState struct {
	app      *workload.App
	global   []float64
	round    int
	selected []int
	pending  *fl.Accum
	received int
	progress *workload.Progress
	done     bool
	clients  []int // client index -> pool node
	eval     *ml.MLP
}

// Engine is one centralized-baseline deployment.
type Engine struct {
	cfg    Config
	net    *simnet.Network
	server transport.Env
	rng    *rand.Rand

	clientEnv   []transport.Env
	clientQueue []*workload.ComputeQueue

	apps      []*appState
	coordBusy time.Duration
}

// New builds the deployment: one server node plus cfg.ClientNodes edge
// devices, with the apps' logical clients mapped onto the pool.
func New(apps []*workload.App, cfg Config) *Engine {
	if cfg.ClientNodes == 0 {
		cfg.ClientNodes = 50
	}
	if cfg.Latency == 0 {
		cfg.Latency = 5 * time.Millisecond
	}
	e := &Engine{
		cfg: cfg,
		net: simnet.New(simnet.Config{
			Seed:    cfg.Seed,
			Latency: simnet.ConstLatency(cfg.Latency),
		}),
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	e.server = e.net.AddNode("server", func(env transport.Env) transport.Handler {
		return transport.HandlerFunc(func(from transport.Addr, msg any) { e.serverRecv(from, msg) })
	})
	e.net.SetBandwidth("server", cfg.Profile.ServerBandwidth)
	for i := 0; i < cfg.ClientNodes; i++ {
		i := i
		addr := transport.Addr(fmt.Sprintf("client%d", i))
		env := e.net.AddNode(addr, func(env transport.Env) transport.Handler {
			return transport.HandlerFunc(func(from transport.Addr, msg any) { e.clientRecv(i, msg) })
		})
		e.net.SetBandwidth(addr, cfg.Profile.ClientBandwidth)
		e.clientEnv = append(e.clientEnv, env)
		e.clientQueue = append(e.clientQueue, &workload.ComputeQueue{})
	}
	for ai, app := range apps {
		st := &appState{
			app:      app,
			global:   app.Proto.Params(),
			progress: &workload.Progress{App: app.Name},
			eval:     app.Proto.Clone(),
		}
		// Map logical clients onto pool nodes.
		perm := e.rng.Perm(cfg.ClientNodes)
		for c := range app.Shards {
			st.clients = append(st.clients, perm[c%cfg.ClientNodes])
		}
		e.apps = append(e.apps, st)
		_ = ai
	}
	return e
}

// Run starts every app at time zero and drains the simulation; it returns
// each app's recorded trajectory.
func (e *Engine) Run() []*workload.Progress {
	for ai := range e.apps {
		e.scheduleRound(ai)
	}
	e.net.RunUntilIdle()
	out := make([]*workload.Progress, len(e.apps))
	for i, st := range e.apps {
		if !st.done {
			st.progress.Done = e.net.Now()
		}
		out[i] = st.progress
	}
	return out
}

// Network exposes the simulator (tests, traffic accounting).
func (e *Engine) Network() *simnet.Network { return e.net }

// scheduleRound enqueues the app's next round setup on the coordinator's
// FCFS queue — the "handle them one by one" behaviour of §7.4.
func (e *Engine) scheduleRound(ai int) {
	st := e.apps[ai]
	k := int(math.Ceil(st.app.Participation * float64(len(st.app.Shards))))
	if k < 1 {
		k = 1
	}
	service := time.Duration(k) * e.cfg.Profile.Cost.CoordPerClient
	now := e.server.Now()
	start := now
	if e.coordBusy > start {
		start = e.coordBusy
	}
	e.coordBusy = start + service
	e.server.After(e.coordBusy-now, func() { e.startRound(ai, k) })
}

func (e *Engine) startRound(ai, k int) {
	st := e.apps[ai]
	st.round++
	st.pending = nil
	st.received = 0
	st.selected = st.selected[:0]
	perm := e.rng.Perm(len(st.app.Shards))
	for i := 0; i < k && i < len(perm); i++ {
		st.selected = append(st.selected, perm[i])
	}
	for _, c := range st.selected {
		node := st.clients[c]
		e.server.Send(transport.Addr(fmt.Sprintf("client%d", node)),
			modelDown{App: ai, Round: st.round, Client: c, Params: st.global})
	}
}

func (e *Engine) clientRecv(node int, msg any) {
	m, ok := msg.(modelDown)
	if !ok {
		return
	}
	st := e.apps[m.App]
	client := m.Client
	shard := st.app.Shards[client]
	dur := e.cfg.Profile.Cost.TrainTime(st.app, shard.Len(), 1)
	env := e.clientEnv[node]
	finish := e.clientQueue[node].Start(env.Now(), dur)
	params := m.Params
	// The training inputs are fully known now, so submit the (pure) job to
	// the real worker pool immediately and only wait for it when the
	// simulated compute time has elapsed: wall-clock training overlaps
	// across clients without perturbing virtual time. The client's rng is
	// derived from (app seed, round, client), so results are independent of
	// pool scheduling.
	var up updateUp
	fut := fl.Go(func(ws *ml.Workspace) {
		crng := fl.DeriveRNG(st.app.Seed, m.Round, uint64(client))
		u := fl.LocalTrainWS(st.app.Proto, params, shard, st.app.Cfg, crng, ws)
		if u.Samples == 0 {
			u = fl.Update{Delta: make([]float64, len(params)), Samples: 1}
		}
		recon, bytes := st.app.Comp.Apply(u.Delta)
		u.Delta = recon
		up = updateUp{App: m.App, Round: m.Round, Client: client, Acc: fl.NewAccumOwning(u), Bytes: bytes}
	})
	env.After(finish-env.Now(), func() {
		fut.Wait()
		env.Send("server", up)
	})
}

func (e *Engine) serverRecv(from transport.Addr, msg any) {
	u, ok := msg.(updateUp)
	if !ok {
		return
	}
	st := e.apps[u.App]
	if st.done || u.Round != st.round {
		return
	}
	st.pending = fl.MergeInPlace(st.pending, u.Acc)
	st.received++
	if st.received < len(st.selected) {
		return
	}
	if d := st.pending.MeanDelta(); d != nil {
		fl.ApplyDelta(st.global, d)
	}
	st.eval.SetParams(st.global)
	acc := st.eval.Accuracy(st.app.Test)
	st.progress.Points = append(st.progress.Points, workload.AccuracyPoint{
		Time: e.server.Now(), Round: st.round, Accuracy: acc,
	})
	if acc >= st.app.TargetAccuracy || st.round >= st.app.MaxRounds {
		st.done = true
		st.progress.Done = e.server.Now()
		st.progress.Reached = acc >= st.app.TargetAccuracy
		return
	}
	e.scheduleRound(u.App)
}
