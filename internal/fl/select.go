package fl

import (
	"math"
	"math/rand"
	"sort"
)

// ClientInfo is the per-client bookkeeping a selector may use.
type ClientInfo struct {
	ID      int
	Samples int
	// LastLoss is the client's most recent training loss (0 if never
	// selected — treated as unexplored).
	LastLoss float64
	// Rounds counts how often the client has participated.
	Rounds int
}

// Selector chooses k participants for a round. Application owners plug
// their own policy per application (§2.2.1 "application-specific
// customization"); two standard ones are provided.
type Selector interface {
	Name() string
	Select(k int, clients []ClientInfo, rng *rand.Rand) []int
}

// RandomSelector samples k distinct clients uniformly (FedAvg default).
type RandomSelector struct{}

// Name implements Selector.
func (RandomSelector) Name() string { return "random" }

// Select implements Selector.
func (RandomSelector) Select(k int, clients []ClientInfo, rng *rand.Rand) []int {
	if k >= len(clients) {
		out := make([]int, len(clients))
		for i := range out {
			out[i] = clients[i].ID
		}
		return out
	}
	perm := rng.Perm(len(clients))
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = clients[perm[i]].ID
	}
	return out
}

// OortSelector is a lightweight version of Oort's guided participant
// selection: exploit clients with high statistical utility
// (loss · sqrt(samples)) while reserving an exploration fraction for
// never-selected clients.
type OortSelector struct {
	// ExploreFrac of each round's slots go to unexplored clients
	// (default 0.2).
	ExploreFrac float64
}

// Name implements Selector.
func (OortSelector) Name() string { return "oort" }

// Select implements Selector.
func (s OortSelector) Select(k int, clients []ClientInfo, rng *rand.Rand) []int {
	ef := s.ExploreFrac
	if ef == 0 {
		ef = 0.2
	}
	if k >= len(clients) {
		return RandomSelector{}.Select(k, clients, rng)
	}
	var explored, unexplored []ClientInfo
	for _, c := range clients {
		if c.Rounds == 0 {
			unexplored = append(unexplored, c)
		} else {
			explored = append(explored, c)
		}
	}
	nExplore := int(math.Round(float64(k) * ef))
	if nExplore > len(unexplored) {
		nExplore = len(unexplored)
	}
	nExploit := k - nExplore

	sort.Slice(explored, func(i, j int) bool {
		return utility(explored[i]) > utility(explored[j])
	})
	out := make([]int, 0, k)
	for i := 0; i < nExploit && i < len(explored); i++ {
		out = append(out, explored[i].ID)
	}
	rng.Shuffle(len(unexplored), func(i, j int) {
		unexplored[i], unexplored[j] = unexplored[j], unexplored[i]
	})
	for i := 0; len(out) < k && i < len(unexplored); i++ {
		out = append(out, unexplored[i].ID)
	}
	// Backfill from remaining explored clients if needed.
	for i := nExploit; len(out) < k && i < len(explored); i++ {
		out = append(out, explored[i].ID)
	}
	return out
}

func utility(c ClientInfo) float64 {
	return c.LastLoss * math.Sqrt(float64(c.Samples))
}
