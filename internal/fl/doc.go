// Package fl implements the federated-learning algorithms Totoro runs on
// top of its forest abstraction: weighted FedAvg and FedProx aggregation,
// client-side local training, participant selection policies, and gradient
// compression. The pieces are pure functions over flat parameter vectors so
// that the same logic runs inside the decentralized Totoro engine, the
// centralized baselines, and the unit tests.
//
// # Parallel training and determinism
//
// Client local training is CPU-bound and embarrassingly parallel, so all
// three engines fan it out over a bounded worker pool ([Go], [ForEach]) of
// GOMAXPROCS goroutines, each holding a reusable [ml.Workspace] so the
// steady state allocates nothing per batch. Parallelism must not change
// results, which requires two invariants:
//
//   - Private randomness. A shared *rand.Rand would make every client's
//     stream depend on scheduling order. Instead each client derives its
//     own rng as DeriveRNG(seed, round, tag) — see [DeriveSeed] — where
//     seed is the application's seed, round the FL round, and tag the
//     client's index or [ClientTag] of its node address. The stream
//     depends only on that triple, never on execution order.
//
//   - Deterministic merge order. Floating-point addition is not
//     associative, so updates are folded into the aggregate in a fixed
//     order (selection order in Session.Round, tree child order in the
//     engines) regardless of which worker finishes first.
//
// Together these make the serial reference (Workers=1) and any parallel
// execution bit-for-bit identical.
package fl
