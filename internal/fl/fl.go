package fl

import (
	"fmt"
	"math/rand"

	"totoro/internal/ml"
)

// Update is one client's contribution to a round: the parameter delta it
// computed locally and the number of samples that backed it.
type Update struct {
	Delta   []float64
	Samples int
}

// Accum is the associative, commutative partial aggregate that flows up a
// Totoro dataflow tree: the sample-weighted sum of deltas plus counters.
// Interior tree nodes merge Accums (in-network aggregation); the root
// resolves the weighted mean.
type Accum struct {
	WeightedSum []float64
	Samples     int
	Count       int
}

// NewAccum starts an aggregate from a single update.
func NewAccum(u Update) *Accum {
	ws := make([]float64, len(u.Delta))
	w := float64(u.Samples)
	for i, v := range u.Delta {
		ws[i] = v * w
	}
	return &Accum{WeightedSum: ws, Samples: u.Samples, Count: 1}
}

// NewAccumOwning starts an aggregate from an update whose delta buffer the
// caller hands over: the weighting is applied in place and the Update must
// not be used afterwards. This is the hot-path form of NewAccum.
func NewAccumOwning(u Update) *Accum {
	w := float64(u.Samples)
	for i := range u.Delta {
		u.Delta[i] *= w
	}
	return &Accum{WeightedSum: u.Delta, Samples: u.Samples, Count: 1}
}

// Merge folds two partial aggregates (either may be nil) into a freshly
// allocated result. It never mutates its arguments; aggregation hot paths
// that own their left operand use MergeInPlace instead.
func Merge(a, b *Accum) *Accum {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := &Accum{
		WeightedSum: make([]float64, len(a.WeightedSum)),
		Samples:     a.Samples,
		Count:       a.Count,
	}
	copy(out.WeightedSum, a.WeightedSum)
	out.Add(b)
	return out
}

// Add folds b into a in place (b is read, never retained). The O(P)
// buffer is reused, so interior aggregation nodes merging many children
// do not allocate per merge.
//
//vet:noalloc
func (a *Accum) Add(b *Accum) {
	if len(a.WeightedSum) != len(b.WeightedSum) {
		panic(fmt.Sprintf("fl: merging aggregates of different sizes %d vs %d",
			len(a.WeightedSum), len(b.WeightedSum)))
	}
	ws, bs := a.WeightedSum, b.WeightedSum
	for i := range ws {
		ws[i] += bs[i]
	}
	a.Samples += b.Samples
	a.Count += b.Count
}

// MergeInPlace folds b into a, reusing a's buffer when possible (either
// side may be nil). The caller must own a; b is only read.
//
//vet:noalloc
func MergeInPlace(a, b *Accum) *Accum {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	a.Add(b)
	return a
}

// MeanDelta resolves the FedAvg weighted-average delta. Nil if empty.
func (a *Accum) MeanDelta() []float64 {
	if a == nil || a.Samples == 0 {
		return nil
	}
	out := make([]float64, len(a.WeightedSum))
	w := float64(a.Samples)
	for i, v := range a.WeightedSum {
		out[i] = v / w
	}
	return out
}

// ApplyDelta adds delta into global in place.
//
//vet:noalloc
func ApplyDelta(global, delta []float64) {
	for i := range global {
		global[i] += delta[i]
	}
}

// ClientConfig controls one client's local optimization.
type ClientConfig struct {
	LocalEpochs int
	BatchSize   int
	LR          float64
	Momentum    float64
	// ProxMu > 0 enables FedProx: the local objective gains
	// μ/2·‖w − w_global‖², stabilizing convergence under non-IID data.
	ProxMu float64
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 20 // the paper's minibatch size (§7.1)
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	return c
}

// LocalTrain runs one client's local update starting from the global
// parameters and returns the resulting delta. proto supplies the model
// architecture (it is cloned, never mutated). It is a thin wrapper over
// LocalTrainWS with a throwaway workspace.
func LocalTrain(proto *ml.MLP, global []float64, data *ml.Dataset, cfg ClientConfig, rng *rand.Rand) Update {
	return LocalTrainWS(proto, global, data, cfg, rng, ml.NewWorkspace())
}

// LocalTrainWS is LocalTrain with all scratch state — the working model,
// optimizer, gradients, and activation buffers — drawn from a reusable
// per-worker workspace. The only allocation per call is the returned
// delta vector, which the caller keeps.
func LocalTrainWS(proto *ml.MLP, global []float64, data *ml.Dataset, cfg ClientConfig, rng *rand.Rand, ws *ml.Workspace) Update {
	cfg = cfg.withDefaults()
	if data.Len() == 0 {
		return Update{}
	}
	m := ws.Model(proto.Sizes)
	m.SetParams(global)
	opt := ws.Optimizer(cfg.LR, cfg.Momentum)
	var anchor []float64
	if cfg.ProxMu > 0 {
		anchor = global
	}
	for e := 0; e < cfg.LocalEpochs; e++ {
		ml.TrainEpochWS(m, data, cfg.BatchSize, opt, cfg.ProxMu, anchor, rng, ws)
	}
	delta := make([]float64, len(global))
	m.DeltaInto(global, delta)
	return Update{Delta: delta, Samples: data.Len()}
}
