// Package fl implements the federated-learning algorithms Totoro runs on
// top of its forest abstraction: weighted FedAvg and FedProx aggregation,
// client-side local training, participant selection policies, and gradient
// compression. The pieces are pure functions over flat parameter vectors so
// that the same logic runs inside the decentralized Totoro engine, the
// centralized baselines, and the unit tests.
package fl

import (
	"fmt"
	"math/rand"

	"totoro/internal/ml"
)

// Update is one client's contribution to a round: the parameter delta it
// computed locally and the number of samples that backed it.
type Update struct {
	Delta   []float64
	Samples int
}

// Accum is the associative, commutative partial aggregate that flows up a
// Totoro dataflow tree: the sample-weighted sum of deltas plus counters.
// Interior tree nodes merge Accums (in-network aggregation); the root
// resolves the weighted mean.
type Accum struct {
	WeightedSum []float64
	Samples     int
	Count       int
}

// NewAccum starts an aggregate from a single update.
func NewAccum(u Update) *Accum {
	ws := make([]float64, len(u.Delta))
	w := float64(u.Samples)
	for i, v := range u.Delta {
		ws[i] = v * w
	}
	return &Accum{WeightedSum: ws, Samples: u.Samples, Count: 1}
}

// Merge folds two partial aggregates (either may be nil).
func Merge(a, b *Accum) *Accum {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if len(a.WeightedSum) != len(b.WeightedSum) {
		panic(fmt.Sprintf("fl: merging aggregates of different sizes %d vs %d",
			len(a.WeightedSum), len(b.WeightedSum)))
	}
	out := &Accum{
		WeightedSum: make([]float64, len(a.WeightedSum)),
		Samples:     a.Samples + b.Samples,
		Count:       a.Count + b.Count,
	}
	for i := range out.WeightedSum {
		out.WeightedSum[i] = a.WeightedSum[i] + b.WeightedSum[i]
	}
	return out
}

// MeanDelta resolves the FedAvg weighted-average delta. Nil if empty.
func (a *Accum) MeanDelta() []float64 {
	if a == nil || a.Samples == 0 {
		return nil
	}
	out := make([]float64, len(a.WeightedSum))
	w := float64(a.Samples)
	for i, v := range a.WeightedSum {
		out[i] = v / w
	}
	return out
}

// ApplyDelta adds delta into global in place.
func ApplyDelta(global, delta []float64) {
	for i := range global {
		global[i] += delta[i]
	}
}

// ClientConfig controls one client's local optimization.
type ClientConfig struct {
	LocalEpochs int
	BatchSize   int
	LR          float64
	Momentum    float64
	// ProxMu > 0 enables FedProx: the local objective gains
	// μ/2·‖w − w_global‖², stabilizing convergence under non-IID data.
	ProxMu float64
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = 20 // the paper's minibatch size (§7.1)
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	return c
}

// LocalTrain runs one client's local update starting from the global
// parameters and returns the resulting delta. proto supplies the model
// architecture (it is cloned, never mutated).
func LocalTrain(proto *ml.MLP, global []float64, data *ml.Dataset, cfg ClientConfig, rng *rand.Rand) Update {
	cfg = cfg.withDefaults()
	if data.Len() == 0 {
		return Update{}
	}
	m := proto.Clone()
	m.SetParams(global)
	opt := &ml.SGD{LR: cfg.LR, Momentum: cfg.Momentum}
	var anchor []float64
	if cfg.ProxMu > 0 {
		anchor = global
	}
	for e := 0; e < cfg.LocalEpochs; e++ {
		ml.TrainEpoch(m, data, cfg.BatchSize, opt, cfg.ProxMu, anchor, rng)
	}
	after := m.Params()
	delta := make([]float64, len(after))
	for i := range delta {
		delta[i] = after[i] - global[i]
	}
	return Update{Delta: delta, Samples: data.Len()}
}
