package fl

import (
	"math/rand"

	"totoro/internal/ml"
)

// Session drives the pure FL algorithm for one application — selection,
// local training, compression, aggregation, apply — with no networking or
// timing. The decentralized engine and the centralized baselines both
// delegate the algorithmic steps here so that their comparison isolates
// the system architecture.
type Session struct {
	Proto   *ml.MLP
	Global  []float64
	Clients []*ml.Dataset
	Test    *ml.Dataset
	Cfg     ClientConfig
	Sel     Selector
	Comp    Compressor

	infos []ClientInfo
	round int
}

// NewSession initializes a session; proto supplies both architecture and
// the initial global parameters.
func NewSession(proto *ml.MLP, clients []*ml.Dataset, test *ml.Dataset, cfg ClientConfig, sel Selector, comp Compressor) *Session {
	if sel == nil {
		sel = RandomSelector{}
	}
	if comp == nil {
		comp = NoCompression{}
	}
	s := &Session{
		Proto:   proto,
		Global:  proto.Params(),
		Clients: clients,
		Test:    test,
		Cfg:     cfg,
		Sel:     sel,
		Comp:    comp,
	}
	for i, c := range clients {
		s.infos = append(s.infos, ClientInfo{ID: i, Samples: c.Len()})
	}
	return s
}

// RoundStats summarizes one completed round.
type RoundStats struct {
	Round      int
	Selected   []int
	UpdateSize int // compressed bytes of one client update
	Accuracy   float64
}

// Round executes one synchronous FL round with perRound participants and
// returns its stats.
func (s *Session) Round(perRound int, rng *rand.Rand) RoundStats {
	s.round++
	selected := s.Sel.Select(perRound, s.infos, rng)
	var agg *Accum
	updateBytes := 0
	for _, id := range selected {
		u := LocalTrain(s.Proto, s.Global, s.Clients[id], s.Cfg, rng)
		if u.Samples == 0 {
			continue
		}
		recon, bytes := s.Comp.Apply(u.Delta)
		u.Delta = recon
		updateBytes = bytes
		agg = Merge(agg, NewAccum(u))
		s.infos[id].Rounds++
		s.infos[id].LastLoss = lossProxy(u)
	}
	if d := agg.MeanDelta(); d != nil {
		ApplyDelta(s.Global, d)
	}
	return RoundStats{
		Round:      s.round,
		Selected:   selected,
		UpdateSize: updateBytes,
		Accuracy:   s.Accuracy(),
	}
}

// Accuracy evaluates the current global model on the held-out test set.
func (s *Session) Accuracy() float64 {
	m := s.Proto.Clone()
	m.SetParams(s.Global)
	return m.Accuracy(s.Test)
}

// lossProxy scores an update's magnitude as a cheap stand-in for client
// loss (larger drift ⇒ more to learn), keeping selection deterministic
// without a second forward pass.
func lossProxy(u Update) float64 {
	s := 0.0
	for _, v := range u.Delta {
		s += v * v
	}
	return s
}
