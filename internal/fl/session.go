package fl

import (
	"math/rand"

	"totoro/internal/ml"
	"totoro/internal/obs"
)

// Session drives the pure FL algorithm for one application — selection,
// local training, compression, aggregation, apply — with no networking or
// timing. The decentralized engine and the centralized baselines both
// delegate the algorithmic steps here so that their comparison isolates
// the system architecture.
type Session struct {
	Proto   *ml.MLP
	Global  []float64
	Clients []*ml.Dataset
	Test    *ml.Dataset
	Cfg     ClientConfig
	Sel     Selector
	Comp    Compressor
	// Workers bounds the parallelism of client training within a round:
	// 0 means one worker per CPU, 1 forces the serial reference path.
	// Serial and parallel execution produce bit-identical models — each
	// client trains on a private rng derived from the round seed and its
	// ID, and updates are merged in selection order.
	Workers int
	// Metrics, when set, receives the session's telemetry: counters
	// fl.rounds / fl.participants / fl.update_bytes, an update-size
	// histogram, and the fl.accuracy gauge. The engine passes its Env's
	// registry; standalone sessions may leave it nil.
	Metrics *obs.Registry

	infos []ClientInfo
	round int
	eval  *ml.MLP
}

// NewSession initializes a session; proto supplies both architecture and
// the initial global parameters.
func NewSession(proto *ml.MLP, clients []*ml.Dataset, test *ml.Dataset, cfg ClientConfig, sel Selector, comp Compressor) *Session {
	if sel == nil {
		sel = RandomSelector{}
	}
	if comp == nil {
		comp = NoCompression{}
	}
	s := &Session{
		Proto:   proto,
		Global:  proto.Params(),
		Clients: clients,
		Test:    test,
		Cfg:     cfg,
		Sel:     sel,
		Comp:    comp,
	}
	for i, c := range clients {
		s.infos = append(s.infos, ClientInfo{ID: i, Samples: c.Len()})
	}
	return s
}

// RoundReport summarizes one completed round.
type RoundReport struct {
	Round      int
	Selected   []int
	UpdateSize int // compressed bytes of one client update
	Accuracy   float64
}

// Round executes one synchronous FL round with perRound participants and
// returns its stats. Client training fans out across the training pool;
// every client draws from a private rng derived from this round's seed and
// its ID, and updates are merged in selection order, so the result is
// bit-identical at any worker count.
func (s *Session) Round(perRound int, rng *rand.Rand) RoundReport {
	s.round++
	selected := s.Sel.Select(perRound, s.infos, rng)
	roundSeed := rng.Int63()
	updates := make([]Update, len(selected))
	ForEach(len(selected), s.Workers, func(i int, ws *ml.Workspace) {
		id := selected[i]
		crng := DeriveRNG(roundSeed, s.round, uint64(id))
		updates[i] = LocalTrainWS(s.Proto, s.Global, s.Clients[id], s.Cfg, crng, ws)
	})
	var agg *Accum
	updateBytes := 0
	for i, id := range selected {
		u := updates[i]
		if u.Samples == 0 {
			continue
		}
		recon, bytes := s.Comp.Apply(u.Delta)
		u.Delta = recon
		updateBytes = bytes
		s.infos[id].Rounds++
		s.infos[id].LastLoss = lossProxy(u)
		agg = MergeInPlace(agg, NewAccumOwning(u))
	}
	if d := agg.MeanDelta(); d != nil {
		ApplyDelta(s.Global, d)
	}
	acc := s.Accuracy()
	s.Metrics.Counter("fl.rounds").Inc()
	s.Metrics.Counter("fl.participants").Add(int64(len(selected)))
	s.Metrics.Counter("fl.update_bytes").Add(int64(updateBytes) * int64(len(selected)))
	s.Metrics.Histogram("fl.update_size", obs.ByteBuckets).Observe(float64(updateBytes))
	s.Metrics.Gauge("fl.accuracy").Set(acc)
	return RoundReport{
		Round:      s.round,
		Selected:   selected,
		UpdateSize: updateBytes,
		Accuracy:   acc,
	}
}

// Accuracy evaluates the current global model on the held-out test set.
func (s *Session) Accuracy() float64 {
	if s.eval == nil {
		s.eval = s.Proto.Clone()
	}
	s.eval.SetParams(s.Global)
	return s.eval.Accuracy(s.Test)
}

// lossProxy scores an update's magnitude as a cheap stand-in for client
// loss (larger drift ⇒ more to learn), keeping selection deterministic
// without a second forward pass.
func lossProxy(u Update) float64 {
	s := 0.0
	for _, v := range u.Delta {
		s += v * v
	}
	return s
}
