package fl

import (
	"math"
	"sort"

	"totoro/internal/wire/codec"
)

// Compressor lossily compresses an update before it is shipped over the
// edge network. Apply returns the reconstruction the receiver would decode
// and the number of bytes the compressed form costs on the wire, which the
// traffic experiments charge instead of the dense size. Application owners
// pick a compressor per application (Broadcast API, Table 2).
//
// Ownership contract: Apply may return v itself (the identity compressor
// does), and the caller treats recon as owned — typically handing it to
// NewAccumOwning, which scales it in place. Callers must therefore pass a
// buffer they own and not reuse v afterwards.
type Compressor interface {
	Name() string
	Apply(v []float64) (recon []float64, wireBytes int)
}

// NoCompression ships dense float64s.
type NoCompression struct{}

// Name implements Compressor.
func (NoCompression) Name() string { return "none" }

// Apply implements Compressor. The identity reconstruction returns v
// itself — callers treat the result as owned either way, so the dense
// path skips an O(P) copy per client per round.
func (NoCompression) Apply(v []float64) ([]float64, int) {
	return v, 8 * len(v)
}

// TopK keeps only the K largest-magnitude coordinates (sparsification);
// the wire form is K (index, value) pairs.
type TopK struct{ K int }

// Name implements Compressor.
func (c TopK) Name() string { return "topk" }

// Apply implements Compressor.
func (c TopK) Apply(v []float64) ([]float64, int) {
	k := c.K
	if k >= len(v) || k <= 0 {
		return append([]float64(nil), v...), 8 * len(v)
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(v[idx[a]]) > math.Abs(v[idx[b]])
	})
	out := make([]float64, len(v))
	for _, i := range idx[:k] {
		out[i] = v[i]
	}
	return out, k * 12 // 4-byte index + 8-byte value
}

// QuantizeInt8 maps every coordinate to a signed 8-bit level of a shared
// absolute-max scale.
type QuantizeInt8 struct{}

// Name implements Compressor.
func (QuantizeInt8) Name() string { return "int8" }

// Apply implements Compressor.
func (QuantizeInt8) Apply(v []float64) ([]float64, int) {
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	out := make([]float64, len(v))
	if maxAbs == 0 {
		return out, len(v) + 8
	}
	scale := maxAbs / 127
	for i, x := range v {
		q := math.Round(x / scale)
		out[i] = q * scale
	}
	return out, len(v) + 8 // one byte per weight + the scale
}

// Float32 ships updates as the codec.Float32s wire type: half the bytes
// of a dense update at float32 precision. Unlike the simulator-only
// compressors above, its wire form is a real codec-v2 encoding, so the
// simulated byte cost and the tcpnet frame size agree exactly.
type Float32 struct{}

// Name implements Compressor.
func (Float32) Name() string { return "f32" }

// Apply implements Compressor.
func (Float32) Apply(v []float64) ([]float64, int) {
	f := codec.PackF32(v)
	return f.Dense(), f.WireSize()
}

// DeltaInt8 ships updates as the codec.QDelta wire type: delta-coded,
// int8-quantized — one byte per coordinate. The reconstruction is the
// receiver's DPCM decode, so simnet training sees exactly what a tcpnet
// receiver would.
type DeltaInt8 struct{}

// Name implements Compressor.
func (DeltaInt8) Name() string { return "delta-int8" }

// Apply implements Compressor.
func (DeltaInt8) Apply(v []float64) ([]float64, int) {
	q := codec.PackQDelta(v)
	return q.Dense(), q.WireSize()
}
