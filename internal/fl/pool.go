package fl

import (
	"runtime"
	"sync"
	"sync/atomic"

	"totoro/internal/ml"
)

// Training pool: a process-wide bounded set of worker slots that fans
// client training across real CPUs. Jobs must be pure functions of their
// captured inputs plus the workspace they are handed — determinism then
// holds regardless of scheduling, and callers impose a deterministic
// result order themselves (e.g. merging updates in client order).

// Workers returns the pool's parallelism: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

var (
	poolSlots chan struct{}
	poolOnce  sync.Once
	wsPool    = sync.Pool{New: func() any { return ml.NewWorkspace() }}
)

func slots() chan struct{} {
	poolOnce.Do(func() {
		n := Workers()
		if n < 1 {
			n = 1
		}
		poolSlots = make(chan struct{}, n)
		for i := 0; i < n; i++ {
			poolSlots <- struct{}{}
		}
	})
	return poolSlots
}

// Future is a handle to a job submitted with Go.
type Future struct {
	done chan struct{}
}

// Wait blocks until the job has finished. The channel close gives the
// caller a happens-before edge on everything the job wrote.
func (f *Future) Wait() { <-f.done }

// Go runs job on a pool slot with a recycled per-worker workspace. Submit
// the job at the moment its inputs are known and Wait at the point the
// result is needed; the simulators use this to overlap client training
// with (virtual) time.
func Go(job func(ws *ml.Workspace)) *Future {
	f := &Future{done: make(chan struct{})}
	s := slots()
	go func() {
		<-s
		ws := wsPool.Get().(*ml.Workspace)
		job(ws)
		wsPool.Put(ws)
		s <- struct{}{}
		close(f.done)
	}()
	return f
}

// ForEach runs job(i, ws) for every i in [0, n) across the pool and
// returns when all are done. workers <= 0 means Workers(); workers == 1
// runs inline on the caller's goroutine (the serial reference path).
func ForEach(n, workers int, job func(i int, ws *ml.Workspace)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		ws := wsPool.Get().(*ml.Workspace)
		for i := 0; i < n; i++ {
			job(i, ws)
		}
		wsPool.Put(ws)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws := wsPool.Get().(*ml.Workspace)
			defer wsPool.Put(ws)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i, ws)
			}
		}()
	}
	wg.Wait()
}
