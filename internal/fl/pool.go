package fl

import (
	"runtime"
	"sync"
	"sync/atomic"

	"totoro/internal/ml"
)

// Training pool: a process-wide bounded set of worker slots that fans
// client training across real CPUs. Jobs must be pure functions of their
// captured inputs plus the workspace they are handed — determinism then
// holds regardless of scheduling, and callers impose a deterministic
// result order themselves (e.g. merging updates in client order).

// Workers returns the pool's parallelism: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

var (
	poolOnce  sync.Once
	poolMu    sync.Mutex
	poolCond  *sync.Cond
	poolQueue []func(ws *ml.Workspace) // FIFO of pending jobs
	wsPool    = sync.Pool{New: func() any { return ml.NewWorkspace() }}
)

// startWorkers lazily spins up the fixed worker set: one long-lived
// goroutine per slot, each draining the shared queue. Goroutine count is
// bounded for the life of the process no matter how many jobs the
// simulators submit eagerly at round start, and the queue preserves FIFO
// submission order.
func startWorkers() {
	poolOnce.Do(func() {
		poolCond = sync.NewCond(&poolMu)
		n := Workers()
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			//lint:ignore gofunc this IS the supervised pool: the one place allowed to spawn its fixed worker set
			go poolWorker()
		}
	})
}

func poolWorker() {
	for {
		poolMu.Lock()
		for len(poolQueue) == 0 {
			poolCond.Wait()
		}
		job := poolQueue[0]
		poolQueue[0] = nil // release the popped job for GC
		poolQueue = poolQueue[1:]
		if len(poolQueue) == 0 {
			poolQueue = nil // drop the drained backing array
		}
		poolMu.Unlock()
		ws := wsPool.Get().(*ml.Workspace)
		job(ws)
		wsPool.Put(ws)
	}
}

// Future is a handle to a job submitted with Go.
type Future struct {
	done chan struct{}
}

// Wait blocks until the job has finished. The channel close gives the
// caller a happens-before edge on everything the job wrote.
func (f *Future) Wait() { <-f.done }

// Go enqueues job for the worker pool, which hands it a recycled
// per-worker workspace; submission never blocks. Submit the job at the
// moment its inputs are known and Wait at the point the result is needed;
// the simulators use this to overlap client training with (virtual) time.
// Jobs must not Wait on other pool jobs: with every worker parked in such
// a Wait the queue would deadlock.
func Go(job func(ws *ml.Workspace)) *Future {
	f := &Future{done: make(chan struct{})}
	startWorkers()
	poolMu.Lock()
	poolQueue = append(poolQueue, func(ws *ml.Workspace) {
		job(ws)
		close(f.done)
	})
	poolMu.Unlock()
	poolCond.Signal()
	return f
}

// ForEach runs job(i, ws) for every i in [0, n) across the pool and
// returns when all are done. workers <= 0 means Workers(); workers == 1
// runs inline on the caller's goroutine (the serial reference path).
func ForEach(n, workers int, job func(i int, ws *ml.Workspace)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		ws := wsPool.Get().(*ml.Workspace)
		for i := 0; i < n; i++ {
			job(i, ws)
		}
		wsPool.Put(ws)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		//lint:ignore gofunc ForEach's own fan-out: bounded by Workers() and joined before return
		go func() {
			defer wg.Done()
			ws := wsPool.Get().(*ml.Workspace)
			defer wsPool.Put(ws)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i, ws)
			}
		}()
	}
	wg.Wait()
}
