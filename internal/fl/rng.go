package fl

import (
	"hash/fnv"
	"math/rand"
)

// Deterministic per-client randomness.
//
// A single shared *rand.Rand consumed by many clients makes each client's
// random stream depend on how many draws every other client made before it
// — so reordering clients (or training them concurrently) changes every
// stream. Instead, each client derives a private rng from (seed, round,
// client tag) with a splitmix64-style mixer: the stream depends only on
// those three values, so serial and parallel execution, and any client
// visit order, produce identical local training.

// DeriveSeed mixes an application seed, a round number, and a client tag
// into an independent 63-bit stream seed (splitmix64 finalizer over the
// three words).
func DeriveSeed(seed int64, round int, tag uint64) int64 {
	z := uint64(seed)
	z = mix64(z + 0x9e3779b97f4a7c15)
	z = mix64(z + uint64(round)*0xbf58476d1ce4e5b9)
	z = mix64(z + tag*0x94d049bb133111eb)
	return int64(z >> 1) // non-negative, as rand.NewSource expects
}

// DeriveRNG returns a private rng for one client in one round.
func DeriveRNG(seed int64, round int, tag uint64) *rand.Rand {
	return rand.New(rand.NewSource(DeriveSeed(seed, round, tag)))
}

// ClientTag maps a stable client identifier (e.g. a node address) to a
// derivation tag via FNV-1a.
func ClientTag(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
