package fl

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestPairwiseMaskAntisymmetric(t *testing.T) {
	a := PairwiseMask("alice", "bob", 3, 64)
	b := PairwiseMask("bob", "alice", 3, 64)
	for i := range a {
		if a[i] != -b[i] {
			t.Fatalf("mask not antisymmetric at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestPairwiseMaskVariesWithRoundAndPair(t *testing.T) {
	a := PairwiseMask("alice", "bob", 1, 32)
	b := PairwiseMask("alice", "bob", 2, 32)
	c := PairwiseMask("alice", "carol", 1, 32)
	same := func(x, y []float64) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if same(a, b) {
		t.Fatal("mask identical across rounds")
	}
	if same(a, c) {
		t.Fatal("mask identical across pairs")
	}
}

func TestPairwiseMaskBoundedAndNontrivial(t *testing.T) {
	m := PairwiseMask("x", "y", 0, 256)
	nonzero := 0
	for _, v := range m {
		if v < -1 || v >= 1 {
			t.Fatalf("mask value %v out of [-1,1)", v)
		}
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < 200 {
		t.Fatalf("mask suspiciously sparse: %d nonzero of 256", nonzero)
	}
}

func TestSecureRoundMasksCancelExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	updates := map[string][]float64{}
	dim := 50
	want := make([]float64, dim)
	for c := 0; c < 12; c++ {
		u := make([]float64, dim)
		for i := range u {
			u[i] = rng.NormFloat64()
			want[i] += u[i]
		}
		updates[fmt.Sprintf("client-%02d", c)] = u
	}
	got, err := SecureRound(updates, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("sum mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestMaskedUpdateHidesPlaintext(t *testing.T) {
	// A single masked update must differ substantially from the plaintext:
	// the server learns nothing from one vector alone.
	delta := make([]float64, 40)
	for i := range delta {
		delta[i] = 0.001 * float64(i)
	}
	masked := MaskUpdate("alice", []string{"alice", "bob", "carol"}, 1, delta)
	diff := 0.0
	for i := range delta {
		diff += math.Abs(masked[i] - delta[i])
	}
	if diff < 1.0 {
		t.Fatalf("masking barely changed the update (L1 diff %v)", diff)
	}
}

func TestUnmaskDropouts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	names := []string{"a", "b", "c", "d", "e"}
	dim := 30
	round := 9
	updates := map[string][]float64{}
	for _, n := range names {
		u := make([]float64, dim)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		updates[n] = u
	}
	// Everyone masks against the full roster, but "e" drops before upload.
	survivors := names[:4]
	sum := make([]float64, dim)
	for _, n := range survivors {
		masked := MaskUpdate(n, names, round, updates[n])
		for i := range sum {
			sum[i] += masked[i]
		}
	}
	// Residual masks (survivor, e) must be recovered.
	recovered := UnmaskDropouts(sum, survivors, []string{"e"}, round)
	want := make([]float64, dim)
	for _, n := range survivors {
		for i := range want {
			want[i] += updates[n][i]
		}
	}
	for i := range want {
		if math.Abs(recovered[i]-want[i]) > 1e-6 {
			t.Fatalf("dropout recovery failed at %d: %v vs %v", i, recovered[i], want[i])
		}
	}
}

func TestSecureRoundRejectsBadInput(t *testing.T) {
	if _, err := SecureRound(nil, 1); err == nil {
		t.Fatal("empty round accepted")
	}
	if _, err := SecureRound(map[string][]float64{
		"a": {1, 2}, "b": {1},
	}, 1); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}
