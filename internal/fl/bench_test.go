package fl

import (
	"math/rand"
	"testing"

	"totoro/internal/ml"
)

// BenchmarkLocalTrain measures one client's full local update (model
// restore, epoch of SGD, delta extraction) on the Table 3 FEMNIST shape,
// running the hot path: a reused per-worker workspace, as the training
// pool does.
func BenchmarkLocalTrain(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	proto := ml.NewMLP([]int{64, 48, 62}, rng)
	global := proto.Params()
	data := ml.FEMNISTLike(50, rng)
	cfg := ClientConfig{LocalEpochs: 1, BatchSize: 20, LR: 0.1, Momentum: 0.5}
	ws := ml.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalTrainWS(proto, global, data, cfg, rng, ws)
	}
}

// BenchmarkLocalTrainLegacy is the pre-workspace entry point (fresh
// buffers every call) kept for before/after comparison.
func BenchmarkLocalTrainLegacy(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	proto := ml.NewMLP([]int{64, 48, 62}, rng)
	global := proto.Params()
	data := ml.FEMNISTLike(50, rng)
	cfg := ClientConfig{LocalEpochs: 1, BatchSize: 20, LR: 0.1, Momentum: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalTrain(proto, global, data, cfg, rng)
	}
}

// BenchmarkAccumMerge measures folding one client update into a running
// partial aggregate with the in-place hot path every interior tree node
// runs per child.
func BenchmarkAccumMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	dim := 64*48 + 48 + 48*62 + 62
	delta := make([]float64, dim)
	for i := range delta {
		delta[i] = rng.NormFloat64()
	}
	agg := NewAccum(Update{Delta: delta, Samples: 50})
	leaf := NewAccum(Update{Delta: delta, Samples: 50})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Add(leaf)
	}
}

// BenchmarkAccumMergeLegacy is the pure (allocating) merge kept for
// before/after comparison.
func BenchmarkAccumMergeLegacy(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	dim := 64*48 + 48 + 48*62 + 62
	delta := make([]float64, dim)
	for i := range delta {
		delta[i] = rng.NormFloat64()
	}
	agg := NewAccum(Update{Delta: delta, Samples: 50})
	leaf := NewAccum(Update{Delta: delta, Samples: 50})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg = Merge(agg, leaf)
	}
}
