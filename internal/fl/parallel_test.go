package fl

import (
	"math/rand"
	"testing"

	"totoro/internal/ml"
)

// runSessionRounds executes a fixed federated workload at the given worker
// count and returns the final global parameters.
func runSessionRounds(t *testing.T, workers, rounds int) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	proto := ml.NewMLP([]int{64, 48, 62}, rng)
	full := ml.FEMNISTLike(400, rng)
	train, test := full.Split(0.2, rng)
	clients := ml.DirichletPartition(train, 12, 1.0, rng)
	s := NewSession(proto, clients, test, ClientConfig{LocalEpochs: 1, LR: 0.1, BatchSize: 20}, nil, nil)
	s.Workers = workers
	roundRng := rand.New(rand.NewSource(77))
	for r := 0; r < rounds; r++ {
		s.Round(8, roundRng)
	}
	return append([]float64(nil), s.Global...)
}

// TestRoundParallelMatchesSerial proves a round's result is independent of
// training parallelism: the serial reference path (Workers=1) and a wide
// pool produce bit-identical global models, because every client trains on
// a private derived rng and updates merge in selection order. Run with
// -race this also exercises the pool for data races.
func TestRoundParallelMatchesSerial(t *testing.T) {
	serial := runSessionRounds(t, 1, 4)
	parallel := runSessionRounds(t, 8, 4)
	if len(serial) != len(parallel) {
		t.Fatalf("length mismatch %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("param %d diverged: serial=%v parallel=%v", i, serial[i], parallel[i])
		}
	}
}

// TestDeriveSeedIndependence spot-checks the derivation: distinct clients,
// rounds, and app seeds land on distinct streams, and the same triple
// always lands on the same stream.
func TestDeriveSeedIndependence(t *testing.T) {
	if DeriveSeed(1, 1, 1) != DeriveSeed(1, 1, 1) {
		t.Fatal("derivation not deterministic")
	}
	seen := map[int64]bool{}
	for seed := int64(0); seed < 4; seed++ {
		for round := 0; round < 4; round++ {
			for tag := uint64(0); tag < 4; tag++ {
				s := DeriveSeed(seed, round, tag)
				if s < 0 {
					t.Fatalf("negative derived seed %d", s)
				}
				if seen[s] {
					t.Fatalf("collision at (%d,%d,%d)", seed, round, tag)
				}
				seen[s] = true
			}
		}
	}
}

// TestForEachCoversAllIndices checks the pool visits every index exactly
// once at any worker count.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		hits := make([]int32, 137)
		ForEach(len(hits), workers, func(i int, ws *ml.Workspace) {
			hits[i]++ // distinct i per call; no racing writes to one element
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

// TestAccumAddMatchesMerge proves the in-place fold computes the same
// aggregate as the pure Merge.
func TestAccumAddMatchesMerge(t *testing.T) {
	u1 := Update{Delta: []float64{1, -2, 3}, Samples: 10}
	u2 := Update{Delta: []float64{0.5, 0.25, -1}, Samples: 30}
	pure := Merge(NewAccum(u1), NewAccum(u2))
	inPlace := NewAccumOwning(Update{Delta: append([]float64(nil), u1.Delta...), Samples: u1.Samples})
	inPlace.Add(NewAccum(u2))
	if pure.Samples != inPlace.Samples || pure.Count != inPlace.Count {
		t.Fatalf("counters: pure=%+v inPlace=%+v", pure, inPlace)
	}
	for i := range pure.WeightedSum {
		if pure.WeightedSum[i] != inPlace.WeightedSum[i] {
			t.Fatalf("sum[%d]: pure=%v inPlace=%v", i, pure.WeightedSum[i], inPlace.WeightedSum[i])
		}
	}
	if got := MergeInPlace(nil, pure); got != pure {
		t.Fatal("MergeInPlace(nil, b) should return b")
	}
	if got := MergeInPlace(pure, nil); got != pure {
		t.Fatal("MergeInPlace(a, nil) should return a")
	}
}
