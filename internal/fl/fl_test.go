package fl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"totoro/internal/ml"
)

func TestAccumMergeAssociativeCommutative(t *testing.T) {
	mk := func(vals []float64, samples int) *Accum {
		return NewAccum(Update{Delta: vals, Samples: samples})
	}
	a := mk([]float64{1, 2}, 10)
	b := mk([]float64{3, -1}, 5)
	c := mk([]float64{-2, 4}, 20)
	left := Merge(Merge(a, b), c)
	right := Merge(a, Merge(b, c))
	swapped := Merge(c, Merge(b, a))
	for i := range left.WeightedSum {
		if math.Abs(left.WeightedSum[i]-right.WeightedSum[i]) > 1e-12 ||
			math.Abs(left.WeightedSum[i]-swapped.WeightedSum[i]) > 1e-12 {
			t.Fatal("merge not associative/commutative")
		}
	}
	if left.Samples != 35 || left.Count != 3 {
		t.Fatalf("counters wrong: %+v", left)
	}
}

func TestMergeNilIdentity(t *testing.T) {
	a := NewAccum(Update{Delta: []float64{1}, Samples: 2})
	if Merge(nil, a) != a || Merge(a, nil) != a {
		t.Fatal("nil is not the merge identity")
	}
	if Merge(nil, nil) != nil {
		t.Fatal("nil+nil")
	}
}

func TestMeanDeltaWeighted(t *testing.T) {
	a := NewAccum(Update{Delta: []float64{1, 1}, Samples: 30})
	b := NewAccum(Update{Delta: []float64{4, 0}, Samples: 10})
	mean := Merge(a, b).MeanDelta()
	// (1*30 + 4*10)/40 = 1.75 ; (1*30+0)/40 = 0.75
	if math.Abs(mean[0]-1.75) > 1e-12 || math.Abs(mean[1]-0.75) > 1e-12 {
		t.Fatalf("mean %v", mean)
	}
}

func TestMeanDeltaOfIdenticalUpdatesIsIdentity(t *testing.T) {
	f := func(raw []float64, reps uint8) bool {
		if len(raw) == 0 || reps == 0 {
			return true
		}
		var agg *Accum
		for i := 0; i < int(reps%7)+1; i++ {
			agg = Merge(agg, NewAccum(Update{Delta: raw, Samples: 13}))
		}
		for _, v := range raw {
			// Skip inputs whose sample-weighted sum overflows float64.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e290 {
				return true
			}
		}
		mean := agg.MeanDelta()
		for i := range raw {
			if math.Abs(mean[i]-raw[i]) > 1e-9*(1+math.Abs(raw[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalTrainReducesClientLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := ml.SyntheticClusters(4, 8, 300, 0.4, rng)
	proto := ml.NewMLP([]int{8, 16, 4}, rng)
	global := proto.Params()
	u := LocalTrain(proto, global, ds, ClientConfig{LocalEpochs: 3, LR: 0.1}, rng)
	if u.Samples != 300 {
		t.Fatalf("samples=%d", u.Samples)
	}
	after := proto.Clone()
	params := append([]float64(nil), global...)
	ApplyDelta(params, u.Delta)
	after.SetParams(params)
	base := proto.Clone()
	base.SetParams(global)
	if after.Loss(ds.X, ds.Y) >= base.Loss(ds.X, ds.Y) {
		t.Fatal("local training did not reduce the client's loss")
	}
	// The prototype itself must not be mutated.
	for i, v := range proto.Params() {
		if v != global[i] {
			t.Fatal("LocalTrain mutated the prototype")
		}
	}
}

func TestFederatedSessionConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	full := ml.SyntheticClusters(5, 16, 3000, 0.4, rng)
	train, test := full.Split(0.2, rng)
	clients := ml.DirichletPartition(train, 20, 1.0, rng)
	proto := ml.NewMLP([]int{16, 32, 5}, rng)
	s := NewSession(proto, clients, test, ClientConfig{LocalEpochs: 1, LR: 0.1, BatchSize: 20}, nil, nil)
	first := s.Accuracy()
	var last RoundReport
	for r := 0; r < 12; r++ {
		last = s.Round(10, rng)
	}
	if last.Accuracy < 0.85 {
		t.Fatalf("federated accuracy %.3f after 12 rounds (start %.3f)", last.Accuracy, first)
	}
}

func TestFedProxReducesDriftUnderSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	full := ml.SyntheticClusters(6, 12, 2400, 0.4, rng)
	train, test := full.Split(0.2, rng)
	clients := ml.DirichletPartition(train, 12, 0.1, rng) // heavy skew
	runWith := func(mu float64, seed int64) float64 {
		r := rand.New(rand.NewSource(seed))
		proto := ml.NewMLP([]int{12, 24, 6}, rand.New(rand.NewSource(99)))
		s := NewSession(proto, clients, test, ClientConfig{LocalEpochs: 3, LR: 0.1, ProxMu: mu}, nil, nil)
		acc := 0.0
		for i := 0; i < 10; i++ {
			acc = s.Round(6, r).Accuracy
		}
		return acc
	}
	avg := runWith(0, 5)
	prox := runWith(0.5, 5)
	// Under extreme skew FedProx should not be catastrophically worse and
	// typically stabilizes training; we assert it stays within a small
	// margin or better.
	if prox < avg-0.15 {
		t.Fatalf("FedProx collapsed: %.3f vs FedAvg %.3f", prox, avg)
	}
}

func TestRandomSelectorDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	clients := make([]ClientInfo, 50)
	for i := range clients {
		clients[i] = ClientInfo{ID: i, Samples: 10}
	}
	got := RandomSelector{}.Select(20, clients, rng)
	if len(got) != 20 {
		t.Fatalf("selected %d", len(got))
	}
	seen := map[int]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatal("duplicate selection")
		}
		seen[id] = true
	}
	// k >= n returns everyone.
	if len(RandomSelector{}.Select(100, clients, rng)) != 50 {
		t.Fatal("overselect did not return all")
	}
}

func TestOortPrefersHighUtility(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	clients := make([]ClientInfo, 40)
	for i := range clients {
		clients[i] = ClientInfo{ID: i, Samples: 100, Rounds: 1, LastLoss: 0.1}
	}
	// Clients 0..4 have much higher loss.
	for i := 0; i < 5; i++ {
		clients[i].LastLoss = 10
	}
	got := OortSelector{ExploreFrac: 0}.Select(5, clients, rng)
	for _, id := range got {
		if id >= 5 {
			t.Fatalf("oort picked low-utility client %d: %v", id, got)
		}
	}
}

func TestOortExploresUnexplored(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	clients := make([]ClientInfo, 20)
	for i := range clients {
		clients[i] = ClientInfo{ID: i, Samples: 100, Rounds: 1, LastLoss: 5}
	}
	clients[19].Rounds = 0 // one unexplored client
	found := false
	for trial := 0; trial < 10 && !found; trial++ {
		got := OortSelector{ExploreFrac: 0.4}.Select(5, clients, rng)
		for _, id := range got {
			if id == 19 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("oort never explored the unexplored client")
	}
}

func TestTopKCompression(t *testing.T) {
	v := []float64{0.1, -5, 0.3, 4, -0.2, 0.05}
	recon, bytes := TopK{K: 2}.Apply(v)
	nz := 0
	for i, x := range recon {
		if x != 0 {
			nz++
			if x != v[i] {
				t.Fatal("kept value altered")
			}
		}
	}
	if nz != 2 || recon[1] != -5 || recon[3] != 4 {
		t.Fatalf("topk recon %v", recon)
	}
	if bytes >= 8*len(v) {
		t.Fatalf("topk bytes %d not smaller than dense %d", bytes, 8*len(v))
	}
	// K >= len degenerates to dense.
	recon2, _ := TopK{K: 10}.Apply(v)
	for i := range v {
		if recon2[i] != v[i] {
			t.Fatal("degenerate topk altered values")
		}
	}
}

func TestQuantizeInt8ErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := make([]float64, 500)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	recon, bytes := QuantizeInt8{}.Apply(v)
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / 127
	for i := range v {
		if math.Abs(recon[i]-v[i]) > scale/2+1e-12 {
			t.Fatalf("quantization error at %d: %v vs %v", i, recon[i], v[i])
		}
	}
	if bytes >= 8*len(v) {
		t.Fatalf("int8 bytes %d not smaller", bytes)
	}
	// All-zero input.
	z, _ := QuantizeInt8{}.Apply(make([]float64, 4))
	for _, x := range z {
		if x != 0 {
			t.Fatal("zero vector not preserved")
		}
	}
}

func TestCompressedSessionStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	full := ml.SyntheticClusters(4, 10, 1600, 0.4, rng)
	train, test := full.Split(0.2, rng)
	clients := ml.DirichletPartition(train, 10, 1.0, rng)
	proto := ml.NewMLP([]int{10, 20, 4}, rng)
	s := NewSession(proto, clients, test, ClientConfig{LR: 0.1}, RandomSelector{}, QuantizeInt8{})
	var acc float64
	for r := 0; r < 10; r++ {
		acc = s.Round(8, rng).Accuracy
	}
	if acc < 0.8 {
		t.Fatalf("int8-compressed training accuracy %.3f", acc)
	}
}
