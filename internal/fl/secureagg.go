package fl

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Secure aggregation (paper §4.4: owners may specify "secure aggregation"
// as their privacy technique). This is the classic pairwise-masking
// scheme: every ordered pair of participants (i, j) derives a shared mask
// vector from a common secret; client i adds the mask, client j subtracts
// it, so the masks cancel exactly in the sum and the server (or the
// aggregation tree) only ever sees masked vectors. The shared secret here
// is derived deterministically from the two participants' IDs and the
// round — a stand-in for a Diffie-Hellman agreement that keeps the
// arithmetic (and its cancellation property) exact.

// maskScale quantizes mask values so that float addition and subtraction
// cancel exactly (each mask component is a multiple of 2^-20).
const maskScale = 1 << 20

// PairwiseMask derives the deterministic mask vector shared by clients a
// and b for one round, with components in [-1, 1). It is antisymmetric:
// PairwiseMask(a,b,...) == -PairwiseMask(b,a,...), which is what makes
// masks cancel in the sum.
func PairwiseMask(a, b string, round, dim int) []float64 {
	return PairwiseMaskScaled(a, b, round, dim, 1)
}

// PairwiseMaskScaled is PairwiseMask with components in
// [-amplitude, amplitude). Pick an amplitude well above the magnitude of
// the protected values so a single masked vector reveals nothing; use a
// power of two to keep the float cancellation exact.
func PairwiseMaskScaled(a, b string, round, dim int, amplitude float64) []float64 {
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	out := make([]float64, dim)
	var counter uint64
	var block [32]byte
	for i := 0; i < dim; i++ {
		if i%4 == 0 {
			h := sha256.New()
			fmt.Fprintf(h, "%s|%s|%d|%d", a, b, round, counter)
			h.Sum(block[:0])
			counter++
		}
		v := binary.LittleEndian.Uint64(block[(i%4)*8:])
		// Uniform in [-1, 1), quantized so +mask + (-mask) cancels exactly.
		q := int64(v%(2*maskScale)) - maskScale
		out[i] = sign * float64(q) / maskScale * amplitude
	}
	return out
}

// MaskUpdate masks client self's update against every other participant in
// the round with unit-amplitude masks. The participant list must be
// identical (as a set) across all clients of the round.
func MaskUpdate(self string, participants []string, round int, delta []float64) []float64 {
	return MaskUpdateScaled(self, participants, round, delta, 1)
}

// MaskUpdateScaled is MaskUpdate with an explicit mask amplitude.
func MaskUpdateScaled(self string, participants []string, round int, delta []float64, amplitude float64) []float64 {
	out := append([]float64(nil), delta...)
	for _, p := range participants {
		if p == self {
			continue
		}
		m := PairwiseMaskScaled(self, p, round, len(delta), amplitude)
		for i := range out {
			out[i] += m[i]
		}
	}
	return out
}

// UnmaskDropouts removes the residual masks left in an aggregate when some
// participants dropped out after masking was agreed: for every surviving
// client s and dropped client d, the pair mask (s, d) did not cancel and
// must be subtracted (this is the "recovery" phase of the protocol, run
// with the survivors' cooperation).
func UnmaskDropouts(agg []float64, survivors, dropped []string, round int) []float64 {
	out := append([]float64(nil), agg...)
	for _, s := range survivors {
		for _, d := range dropped {
			m := PairwiseMask(s, d, round, len(agg))
			for i := range out {
				out[i] -= m[i]
			}
		}
	}
	return out
}

// SecureRound is a convenience driver: it masks every participant's
// update, sums the masked vectors (as the aggregation tree would), and
// verifies the masks cancelled. It returns the plain sum.
func SecureRound(updates map[string][]float64, round int) ([]float64, error) {
	if len(updates) == 0 {
		return nil, fmt.Errorf("fl: empty secure round")
	}
	names := make([]string, 0, len(updates))
	dim := -1
	for n, u := range updates {
		names = append(names, n)
		if dim == -1 {
			dim = len(u)
		} else if len(u) != dim {
			return nil, fmt.Errorf("fl: dimension mismatch for %s", n)
		}
	}
	sort.Strings(names)
	sum := make([]float64, dim)
	for _, n := range names {
		masked := MaskUpdate(n, names, round, updates[n])
		for i := range sum {
			sum[i] += masked[i]
		}
	}
	// Sanity: residual mask magnitude must be at float rounding level.
	// Sum in the same sorted client order as the masked pass — float
	// addition is not associative, so map-order iteration here would make
	// same-seed runs differ in the last bits.
	plain := make([]float64, dim)
	for _, n := range names {
		u := updates[n]
		for i := range plain {
			plain[i] += u[i]
		}
	}
	for i := range sum {
		if math.Abs(sum[i]-plain[i]) > 1e-6*(1+math.Abs(plain[i])) {
			return nil, fmt.Errorf("fl: masks did not cancel at dim %d: %v vs %v", i, sum[i], plain[i])
		}
	}
	return sum, nil
}
