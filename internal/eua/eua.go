// Package eua synthesizes the EUA dataset used by the paper's scalability
// study (§7.2): the geographic locations of 95,271 cellular base stations
// across 12 Australian states and regions, with the exact per-region node
// counts the paper reports. Positions are drawn around region centroids on
// a planar projection (1 unit ≈ 1 km), and RTTs derive from distance via
// internal/multiring. The real dataset is not redistributable here; this
// generator preserves the two properties the experiments consume — the
// region populations and their relative geography.
package eua

import (
	"math/rand"

	"totoro/internal/multiring"
)

// Region is one Australian state/region of the dataset.
type Region struct {
	Name   string
	Count  int
	Center multiring.Point
	// Spread is the standard deviation of node scatter around the center
	// (km); larger states scatter wider.
	Spread float64
}

// Regions returns the 12 regions with the paper's exact node counts
// (§7.2) and approximate centroid geometry (km on a planar projection of
// Australia, origin near Alice Springs).
func Regions() []Region {
	return []Region{
		{Name: "ACT", Count: 931, Center: multiring.Point{X: 1230, Y: -920}, Spread: 40},
		{Name: "ANT", Count: 15, Center: multiring.Point{X: -150, Y: 1500}, Spread: 120},
		{Name: "EXT", Count: 8, Center: multiring.Point{X: -2200, Y: -1700}, Spread: 150},
		{Name: "ISL", Count: 36, Center: multiring.Point{X: 1900, Y: 600}, Spread: 140},
		{Name: "NSW", Count: 24574, Center: multiring.Point{X: 1150, Y: -750}, Spread: 260},
		{Name: "NT", Count: 3137, Center: multiring.Point{X: 0, Y: 600}, Spread: 320},
		{Name: "QLD", Count: 21576, Center: multiring.Point{X: 950, Y: 300}, Spread: 380},
		{Name: "SA", Count: 7682, Center: multiring.Point{X: 150, Y: -700}, Spread: 280},
		{Name: "TAS", Count: 3213, Center: multiring.Point{X: 1080, Y: -1550}, Spread: 110},
		{Name: "VIC", Count: 18163, Center: multiring.Point{X: 900, Y: -1080}, Spread: 180},
		{Name: "WA", Count: 15933, Center: multiring.Point{X: -1500, Y: -350}, Spread: 420},
		{Name: "WLD", Count: 3, Center: multiring.Point{X: -400, Y: -1600}, Spread: 60},
	}
}

// Total is the dataset's node count.
const Total = 95271

// Generate draws every node of the full dataset. It returns the node
// positions and each node's region index.
func Generate(rng *rand.Rand) (positions []multiring.Point, regionOf []int) {
	return GenerateScaled(Total, rng)
}

// GenerateScaled draws a proportionally downsampled dataset with about n
// nodes (each region keeps at least one node). Use it for experiments that
// do not need all 95k points.
func GenerateScaled(n int, rng *rand.Rand) (positions []multiring.Point, regionOf []int) {
	regions := Regions()
	for ri, r := range regions {
		cnt := r.Count * n / Total
		if cnt < 1 {
			cnt = 1
		}
		for i := 0; i < cnt; i++ {
			positions = append(positions, multiring.Point{
				X: r.Center.X + rng.NormFloat64()*r.Spread,
				Y: r.Center.Y + rng.NormFloat64()*r.Spread,
			})
			regionOf = append(regionOf, ri)
		}
	}
	return positions, regionOf
}

// Landmarks returns binning landmarks: the centroids of the five most
// populous regions, which gives the distributed binning algorithm enough
// vantage diversity to separate the map.
func Landmarks() []multiring.Point {
	return []multiring.Point{
		{X: 1150, Y: -750},  // NSW
		{X: 950, Y: 300},    // QLD
		{X: 900, Y: -1080},  // VIC
		{X: -1500, Y: -350}, // WA
		{X: 0, Y: 600},      // NT
	}
}
