package eua

import (
	"math/rand"
	"testing"

	"totoro/internal/multiring"
)

func TestRegionCountsMatchPaper(t *testing.T) {
	want := map[string]int{
		"ACT": 931, "ANT": 15, "EXT": 8, "ISL": 36, "NSW": 24574, "NT": 3137,
		"QLD": 21576, "SA": 7682, "TAS": 3213, "VIC": 18163, "WA": 15933, "WLD": 3,
	}
	total := 0
	for _, r := range Regions() {
		if want[r.Name] != r.Count {
			t.Fatalf("region %s count %d want %d", r.Name, r.Count, want[r.Name])
		}
		total += r.Count
	}
	if total != Total {
		t.Fatalf("total %d want %d", total, Total)
	}
}

func TestGenerateFullDataset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pos, reg := Generate(rng)
	if len(pos) != Total || len(reg) != Total {
		t.Fatalf("generated %d nodes", len(pos))
	}
	counts := map[int]int{}
	for _, r := range reg {
		counts[r]++
	}
	for i, r := range Regions() {
		if counts[i] != r.Count {
			t.Fatalf("region %s generated %d want %d", r.Name, counts[i], r.Count)
		}
	}
}

func TestGenerateScaledProportional(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pos, reg := GenerateScaled(10000, rng)
	if len(pos) < 9000 || len(pos) > 11000 {
		t.Fatalf("scaled size %d", len(pos))
	}
	counts := map[int]int{}
	for _, r := range reg {
		counts[r]++
	}
	// NSW (26% of nodes) should hold roughly 26% of the sample.
	frac := float64(counts[4]) / float64(len(pos))
	if frac < 0.2 || frac > 0.32 {
		t.Fatalf("NSW fraction %.3f", frac)
	}
	// Tiny regions keep at least one node.
	if counts[11] < 1 {
		t.Fatal("WLD lost its nodes")
	}
}

func TestBinningSeparatesEUAZones(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pos, _ := GenerateScaled(3000, rng)
	b := multiring.AssignZones(pos, Landmarks(), nil, 5)
	if b.NumZones() < 4 {
		t.Fatalf("only %d zones from a continent-sized map", b.NumZones())
	}
	if b.NumZones() > 32 {
		t.Fatalf("zones %d exceed 2^5", b.NumZones())
	}
}
