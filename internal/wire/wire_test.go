package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"totoro/internal/ids"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
)

func TestRegisterIdempotent(t *testing.T) {
	Register()
	Register() // second call must not panic (gob re-registration would)
}

func TestEnvelopeRoundTripsThroughGob(t *testing.T) {
	Register()
	RegisterPayload("")
	env := ring.Envelope{
		Key:     ids.Hash("k"),
		Source:  ring.Contact{ID: ids.Hash("src"), Addr: "10.0.0.1:7"},
		Hops:    3,
		Payload: pubsub.JoinMsg{Topic: ids.Hash("t"), Subscriber: ring.Contact{ID: ids.Hash("s"), Addr: "a"}},
		Seq:     9,
	}
	var buf bytes.Buffer
	var in any = env
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatal(err)
	}
	var out any
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	got, ok := out.(ring.Envelope)
	if !ok {
		t.Fatalf("decoded %T", out)
	}
	if got.Key != env.Key || got.Hops != 3 || got.Seq != 9 {
		t.Fatalf("envelope fields lost: %+v", got)
	}
	jm, ok := got.Payload.(pubsub.JoinMsg)
	if !ok || jm.Subscriber.Addr != "a" {
		t.Fatalf("nested payload lost: %#v", got.Payload)
	}
}

func TestMulticastPayloadRoundTrip(t *testing.T) {
	Register()
	m := pubsub.Multicast{Topic: ids.Hash("x"), Seq: 4, Depth: 2, Object: []float64{1.5, -2.5}}
	var buf bytes.Buffer
	var in any = m
	if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
		t.Fatal(err)
	}
	var out any
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatal(err)
	}
	got := out.(pubsub.Multicast)
	params := got.Object.([]float64)
	if len(params) != 2 || params[0] != 1.5 || params[1] != -2.5 {
		t.Fatalf("float payload lost: %v", params)
	}
}
