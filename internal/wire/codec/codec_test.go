package codec

import (
	"encoding/gob"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"totoro/internal/ids"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/transport"
)

// TestCertifyLossless round-trips randomized instances of every registered
// type — the dynamic half of the losslessness contract (wiresafe's static
// check is the other half). Application types registered later (e.g. the
// engine's roundStart/updateAgg) get the same treatment from the root
// package's TestWireCodecLossless.
func TestCertifyLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if err := CertifyLossless(Registered(), rng, 32); err != nil {
		t.Fatal(err)
	}
}

func roundTrip(t *testing.T, v any) any {
	t.Helper()
	e := NewEnc()
	defer e.Free()
	e.Value(v)
	if err := e.Err(); err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	d := NewDec(e.Bytes())
	got := d.Value()
	if err := d.Err(); err != nil {
		t.Fatalf("decode %T: %v", v, err)
	}
	if d.Rem() != 0 {
		t.Fatalf("decode %T: %d trailing bytes", v, d.Rem())
	}
	return got
}

// Empty slices and maps decode as nil — the codec normalizes them, so a
// sender shipping []float64{} and one shipping nil are indistinguishable.
func TestNilNormalization(t *testing.T) {
	for _, v := range []any{[]float64{}, []byte{}, map[string]string{}, Float32s{}} {
		got := roundTrip(t, v)
		if rv := reflect.ValueOf(got); !rv.IsNil() {
			t.Errorf("%T: empty did not normalize to nil: %#v", v, got)
		}
	}
	if got := roundTrip(t, any(nil)); got != nil {
		t.Errorf("nil round-tripped to %#v", got)
	}
}

// Special float values must survive the little-endian bit copy.
func TestFloatBitPatterns(t *testing.T) {
	v := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	got := roundTrip(t, v).([]float64)
	for i := range v {
		if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
			t.Errorf("index %d: bits %x != %x", i, math.Float64bits(got[i]), math.Float64bits(v[i]))
		}
	}
	// NaN payload bits survive too (DeepEqual can't check NaN, bits can).
	nan := roundTrip(t, []float64{math.NaN()}).([]float64)
	if !math.IsNaN(nan[0]) {
		t.Errorf("NaN decoded as %v", nan[0])
	}
}

// An unregistered type rides the gob fallback and still round-trips.
type fallbackOnly struct {
	A int
	B string
}

func TestGobFallback(t *testing.T) {
	gob.Register(fallbackOnly{})
	want := fallbackOnly{A: 7, B: "fb"}
	got := roundTrip(t, want)
	if got != want {
		t.Fatalf("fallback round-trip: got %#v want %#v", got, want)
	}
	// The fallback frame must carry the gob tag, not a registered one.
	e := NewEnc()
	defer e.Free()
	e.Value(want)
	if e.Bytes()[0] != TagGob {
		t.Fatalf("fallback frame starts with tag %d, want %d", e.Bytes()[0], TagGob)
	}
}

// A nested payload (Envelope carrying an unregistered struct) exercises
// the fallback inside a hand-rolled codec.
func TestNestedFallbackPayload(t *testing.T) {
	gob.Register(fallbackOnly{})
	want := ring.Envelope{Key: testID(3), Source: testContact(4), Hops: 2, Seq: 9,
		Payload: fallbackOnly{A: 1, B: "x"}}
	got := roundTrip(t, want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %#v want %#v", got, want)
	}
}

// A gob-hostile payload (function value) fails the encode cleanly instead
// of producing a corrupt frame.
func TestEncodeErrorOnUnencodable(t *testing.T) {
	e := NewEnc()
	defer e.Free()
	e.Value(func() {})
	if e.Err() == nil {
		t.Fatal("encoding a func succeeded")
	}
}

func TestUnknownTagFails(t *testing.T) {
	e := NewEnc()
	defer e.Free()
	e.Uvarint(63) // reserved, never registered
	d := NewDec(e.Bytes())
	if d.Value(); d.Err() == nil {
		t.Fatal("unknown tag decoded without error")
	}
}

// A claimed slice length larger than the remaining input must fail before
// allocating, not attempt a huge make().
func TestSliceLenGuard(t *testing.T) {
	e := NewEnc()
	defer e.Free()
	e.Uvarint(tagF64s)
	e.Uvarint(1 << 40) // claims 8 TiB of floats
	d := NewDec(e.Bytes())
	d.Value()
	if !errors.Is(d.Err(), ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", d.Err())
	}
}

// Truncating a valid encoding at every byte boundary yields a clean error
// (or, for a prefix that happens to be self-delimiting, no error) — never
// a panic. The fuzz harness explores the same property on arbitrary bytes.
func TestTruncationIsClean(t *testing.T) {
	e := NewEnc()
	defer e.Free()
	if err := EncodeFrame(e, "addr-1", pubsub.Upstream{
		Topic: testID(1), Round: 3, From: testContact(2), Count: 4,
		Object: []float64{1, 2, 3},
	}); err != nil {
		t.Fatal(err)
	}
	full := e.Bytes()
	for n := 0; n < len(full); n++ {
		if _, _, err := DecodeFrame(full[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", n, len(full))
		}
	}
	if _, _, err := DecodeFrame(full); err != nil {
		t.Fatalf("full frame failed: %v", err)
	}
	// Trailing garbage is also rejected: frames are consumed exactly.
	if _, _, err := DecodeFrame(append(append([]byte(nil), full...), 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// Sticky error: after the first violation every read returns zero values
// and the error is unchanged.
func TestStickyError(t *testing.T) {
	d := NewDec([]byte{0x80}) // truncated uvarint
	d.Uvarint()
	first := d.Err()
	if first == nil {
		t.Fatal("no error on truncated uvarint")
	}
	if v := d.Float64s(); v != nil {
		t.Fatalf("read after error returned %v", v)
	}
	if d.Err() != first {
		t.Fatalf("error changed: %v -> %v", first, d.Err())
	}
}

func TestEncPoolReuse(t *testing.T) {
	e := NewEnc()
	e.Float64s(make([]float64, 1024))
	e.Free()
	allocs := testing.AllocsPerRun(100, func() {
		e := NewEnc()
		e.Float64s(make([]float64, 8)) // the make is the only allocation
		e.Free()
	})
	if allocs > 1.5 {
		t.Errorf("pooled encode allocates %.1f times per run", allocs)
	}
}

func TestFloat32sPack(t *testing.T) {
	v := []float64{1.5, -2.25, 0, 1e-3}
	f := PackF32(v)
	if f.WireSize() != 8+4*len(v) {
		t.Errorf("WireSize = %d", f.WireSize())
	}
	got := roundTrip(t, f).(Float32s).Dense()
	for i := range v {
		if math.Abs(got[i]-v[i]) > 1e-6*math.Max(1, math.Abs(v[i])) {
			t.Errorf("index %d: %v != %v", i, got[i], v[i])
		}
	}
}

// QDelta's DPCM error feedback keeps reconstruction error bounded by one
// quantization step per coordinate — it must not accumulate along the
// vector.
func TestQDeltaErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	v := make([]float64, 4096)
	walk := 0.0
	for i := range v {
		walk += rng.NormFloat64() * 0.01
		v[i] = walk
	}
	q := PackQDelta(v)
	if q.WireSize() != 16+len(v) {
		t.Errorf("WireSize = %d", q.WireSize())
	}
	got := roundTrip(t, q).(QDelta).Dense()
	for i := range v {
		if math.Abs(got[i]-v[i]) > q.Scale {
			t.Fatalf("index %d: |%v - %v| = %v > scale %v (error accumulated)",
				i, got[i], v[i], math.Abs(got[i]-v[i]), q.Scale)
		}
	}
	// Degenerate inputs.
	if d := PackQDelta(nil).Dense(); len(d) != 0 {
		t.Errorf("nil pack decoded to %v", d)
	}
	zero := PackQDelta(make([]float64, 5))
	if d := zero.Dense(); len(d) != 5 || d[0] != 0 {
		t.Errorf("zero pack decoded to %v", d)
	}
}

func TestRegisterCodecRejectsReservedTag(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterCodec accepted a reserved tag")
		}
	}()
	RegisterCodec(5, struct{ X int }{}, nil, nil)
}

func TestRegisteredInTagOrder(t *testing.T) {
	protos := Registered()
	if len(protos) < 20 {
		t.Fatalf("only %d registered types", len(protos))
	}
	// Tag order puts primitives first: bool is tag 2, the lowest.
	if _, ok := protos[0].(bool); !ok {
		t.Errorf("first registered prototype is %T, want bool", protos[0])
	}
}

func TestDeterministicEncoding(t *testing.T) {
	m := map[string]string{"z": "1", "a": "2", "m": "3"}
	var prev string
	for i := 0; i < 8; i++ {
		e := NewEnc()
		e.Value(m)
		cur := string(e.Bytes())
		e.Free()
		if i > 0 && cur != prev {
			t.Fatal("map encoding is nondeterministic")
		}
		prev = cur
	}
}

func testID(n uint64) ids.ID { return ids.ID{Hi: n, Lo: n * 31} }

func testContact(n uint64) ring.Contact {
	return ring.Contact{ID: testID(n), Addr: transport.Addr(strings.Repeat("n", int(n%3)+1))}
}
