package codec

import (
	"sort"
	"time"

	"totoro/internal/ids"
	"totoro/internal/multiring"
	"totoro/internal/pubsub"
	"totoro/internal/relay"
	"totoro/internal/ring"
	"totoro/internal/transport"
)

// Field helpers shared by the message codecs.

// ID appends a 128-bit identifier as 16 little-endian bytes.
func (e *Enc) ID(id ids.ID) {
	e.Uint64(id.Hi)
	e.Uint64(id.Lo)
}

// ID reads a 128-bit identifier.
func (d *Dec) ID() ids.ID {
	return ids.ID{Hi: d.Uint64(), Lo: d.Uint64()}
}

// Addr appends a transport address.
func (e *Enc) Addr(a transport.Addr) { e.String(string(a)) }

// Addr reads a transport address.
func (d *Dec) Addr() transport.Addr { return transport.Addr(d.String()) }

// Contact appends a ring contact (ID + address).
func (e *Enc) Contact(c ring.Contact) {
	e.ID(c.ID)
	e.Addr(c.Addr)
}

// Contact reads a ring contact.
func (d *Dec) Contact() ring.Contact {
	return ring.Contact{ID: d.ID(), Addr: d.Addr()}
}

// Contacts appends a length-prefixed contact slice.
func (e *Enc) Contacts(cs []ring.Contact) {
	e.Uvarint(uint64(len(cs)))
	for _, c := range cs {
		e.Contact(c)
	}
}

// Contacts reads a length-prefixed contact slice.
func (d *Dec) Contacts() []ring.Contact {
	n := d.sliceLen(17) // 16-byte ID + 1-byte length of an empty addr
	if n == 0 {
		return nil
	}
	out := make([]ring.Contact, n)
	for i := range out {
		out[i] = d.Contact()
	}
	return out
}

func (e *Enc) contactRows(rows [][]ring.Contact) {
	e.Uvarint(uint64(len(rows)))
	for _, r := range rows {
		e.Contacts(r)
	}
}

func (d *Dec) contactRows() [][]ring.Contact {
	n := d.sliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([][]ring.Contact, n)
	for i := range out {
		out[i] = d.Contacts()
	}
	return out
}

func (e *Enc) addrs(as []transport.Addr) {
	e.Uvarint(uint64(len(as)))
	for _, a := range as {
		e.Addr(a)
	}
}

func (d *Dec) addrs() []transport.Addr {
	n := d.sliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([]transport.Addr, n)
	for i := range out {
		out[i] = d.Addr()
	}
	return out
}

func (e *Enc) uint64s(v []uint64) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Uvarint(x)
	}
}

func (d *Dec) uint64s() []uint64 {
	n := d.sliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.Uvarint()
	}
	return out
}

// Engine-internal message codecs. Each encodes every exported field of
// its type; the certification test round-trips randomized instances to
// prove no field is dropped.

func init() {
	// Overlay (Pastry-style ring).
	register(tagEnvelope, ring.Envelope{},
		func(e *Enc, v any) {
			m := v.(ring.Envelope)
			e.ID(m.Key)
			e.Contact(m.Source)
			e.Int(m.Hops)
			e.Uvarint(m.Seq)
			e.Value(m.Payload)
		},
		func(d *Dec) any {
			return ring.Envelope{Key: d.ID(), Source: d.Contact(), Hops: d.Int(), Seq: d.Uvarint(), Payload: d.Value()}
		})
	register(tagHopAck, ring.HopAck{},
		func(e *Enc, v any) { e.Uvarint(v.(ring.HopAck).Seq) },
		func(d *Dec) any { return ring.HopAck{Seq: d.Uvarint()} })
	register(tagJoinRequest, ring.JoinRequest{},
		func(e *Enc, v any) {
			m := v.(ring.JoinRequest)
			e.Contact(m.Joiner)
			e.contactRows(m.Rows)
			e.Int(m.Hops)
		},
		func(d *Dec) any {
			return ring.JoinRequest{Joiner: d.Contact(), Rows: d.contactRows(), Hops: d.Int()}
		})
	register(tagJoinReply, ring.JoinReply{},
		func(e *Enc, v any) {
			m := v.(ring.JoinReply)
			e.Contact(m.Root)
			e.contactRows(m.Rows)
			e.Contacts(m.Leafset)
		},
		func(d *Dec) any {
			return ring.JoinReply{Root: d.Contact(), Rows: d.contactRows(), Leafset: d.Contacts()}
		})
	register(tagNodeJoined, ring.NodeJoined{},
		func(e *Enc, v any) { e.Contact(v.(ring.NodeJoined).Node) },
		func(d *Dec) any { return ring.NodeJoined{Node: d.Contact()} })
	register(tagLeafsetRequest, ring.LeafsetRequest{},
		func(e *Enc, v any) {},
		func(d *Dec) any { return ring.LeafsetRequest{} })
	register(tagLeafsetReply, ring.LeafsetReply{},
		func(e *Enc, v any) {
			m := v.(ring.LeafsetReply)
			e.Contact(m.From)
			e.Contacts(m.Leafset)
		},
		func(d *Dec) any { return ring.LeafsetReply{From: d.Contact(), Leafset: d.Contacts()} })
	register(tagPing, ring.Ping{},
		func(e *Enc, v any) { e.Contact(v.(ring.Ping).From) },
		func(d *Dec) any { return ring.Ping{From: d.Contact()} })
	register(tagPong, ring.Pong{},
		func(e *Enc, v any) { e.Contact(v.(ring.Pong).From) },
		func(d *Dec) any { return ring.Pong{From: d.Contact()} })

	// Forest (pub/sub trees).
	register(tagPSJoin, pubsub.JoinMsg{},
		func(e *Enc, v any) {
			m := v.(pubsub.JoinMsg)
			e.ID(m.Topic)
			e.Contact(m.Subscriber)
			e.Bool(m.Forwarder)
		},
		func(d *Dec) any {
			return pubsub.JoinMsg{Topic: d.ID(), Subscriber: d.Contact(), Forwarder: d.Bool()}
		})
	register(tagPSWelcome, pubsub.Welcome{},
		func(e *Enc, v any) {
			m := v.(pubsub.Welcome)
			e.ID(m.Topic)
			e.Contact(m.Parent)
			e.treeConfig(m.Cfg)
			e.Uvarint(m.Epoch)
			e.Uvarint(m.LastSeq)
		},
		func(d *Dec) any {
			return pubsub.Welcome{Topic: d.ID(), Parent: d.Contact(), Cfg: d.treeConfig(), Epoch: d.Uvarint(), LastSeq: d.Uvarint()}
		})
	register(tagPSCreate, pubsub.CreateMsg{},
		func(e *Enc, v any) {
			m := v.(pubsub.CreateMsg)
			e.ID(m.Topic)
			e.Contact(m.Creator)
			e.treeConfig(m.Cfg)
		},
		func(d *Dec) any {
			return pubsub.CreateMsg{Topic: d.ID(), Creator: d.Contact(), Cfg: d.treeConfig()}
		})
	register(tagPSPublish, pubsub.PublishMsg{},
		func(e *Enc, v any) {
			m := v.(pubsub.PublishMsg)
			e.ID(m.Topic)
			e.Value(m.Object)
		},
		func(d *Dec) any { return pubsub.PublishMsg{Topic: d.ID(), Object: d.Value()} })
	register(tagPSMulticast, pubsub.Multicast{},
		func(e *Enc, v any) {
			m := v.(pubsub.Multicast)
			e.ID(m.Topic)
			e.Uvarint(m.Epoch)
			e.Uvarint(m.Seq)
			e.Int(m.Depth)
			e.Value(m.Object)
		},
		func(d *Dec) any {
			return pubsub.Multicast{Topic: d.ID(), Epoch: d.Uvarint(), Seq: d.Uvarint(), Depth: d.Int(), Object: d.Value()}
		})
	register(tagPSUpstream, pubsub.Upstream{},
		func(e *Enc, v any) {
			m := v.(pubsub.Upstream)
			e.ID(m.Topic)
			e.Int(m.Round)
			e.Contact(m.From)
			e.Uvarint(m.Epoch)
			e.Int(m.Count)
			e.Uvarint(m.Seq)
			e.Value(m.Object)
		},
		func(d *Dec) any {
			return pubsub.Upstream{Topic: d.ID(), Round: d.Int(), From: d.Contact(), Epoch: d.Uvarint(), Count: d.Int(), Seq: d.Uvarint(), Object: d.Value()}
		})
	register(tagPSKeepAlive, pubsub.KeepAlive{},
		func(e *Enc, v any) {
			m := v.(pubsub.KeepAlive)
			e.ID(m.Topic)
			e.Contact(m.Parent)
			e.Uvarint(m.Epoch)
			e.Uvarint(m.LastSeq)
		},
		func(d *Dec) any {
			return pubsub.KeepAlive{Topic: d.ID(), Parent: d.Contact(), Epoch: d.Uvarint(), LastSeq: d.Uvarint()}
		})
	register(tagPSMcNack, pubsub.McNack{},
		func(e *Enc, v any) {
			m := v.(pubsub.McNack)
			e.ID(m.Topic)
			e.Contact(m.Child)
			e.uint64s(m.Missing)
		},
		func(d *Dec) any {
			return pubsub.McNack{Topic: d.ID(), Child: d.Contact(), Missing: d.uint64s()}
		})
	register(tagPSLeave, pubsub.LeaveMsg{},
		func(e *Enc, v any) {
			m := v.(pubsub.LeaveMsg)
			e.ID(m.Topic)
			e.Contact(m.Child)
		},
		func(d *Dec) any { return pubsub.LeaveMsg{Topic: d.ID(), Child: d.Contact()} })

	// Multi-ring packets.
	register(tagMRPacket, multiring.Packet{},
		func(e *Enc, v any) {
			m := v.(multiring.Packet)
			e.ID(m.Key)
			e.Int(int(m.Scope))
			e.Uvarint(m.SrcZone)
			e.Int(m.Hops)
			e.Bool(m.Final)
			e.Value(m.Payload)
		},
		func(d *Dec) any {
			return multiring.Packet{
				Key: d.ID(), Scope: multiring.Scope(d.Int()), SrcZone: d.Uvarint(),
				Hops: d.Int(), Final: d.Bool(), Payload: d.Value(),
			}
		})

	// Relay frames (bandit-routed data plane).
	register(tagRelayData, relay.Data{},
		func(e *Enc, v any) {
			m := v.(relay.Data)
			e.Addr(m.Dst)
			e.Addr(m.Origin)
			e.Uvarint(m.ID)
			e.Uvarint(m.Seq)
			e.Int(m.TTL)
			e.addrs(m.Visited)
			e.Value(m.Payload)
		},
		func(d *Dec) any {
			return relay.Data{
				Dst: d.Addr(), Origin: d.Addr(), ID: d.Uvarint(), Seq: d.Uvarint(),
				TTL: d.Int(), Visited: d.addrs(), Payload: d.Value(),
			}
		})
	register(tagRelayAck, relay.Ack{},
		func(e *Enc, v any) { e.Uvarint(v.(relay.Ack).Seq) },
		func(d *Dec) any { return relay.Ack{Seq: d.Uvarint()} })
	register(tagRelayAdvert, relay.Advert{},
		func(e *Enc, v any) {
			m := v.(relay.Advert)
			e.Addr(m.From)
			e.Uvarint(uint64(len(m.J)))
			keys := make([]transport.Addr, 0, len(m.J))
			for k := range m.J {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			for _, k := range keys {
				e.Addr(k)
				e.Float64(m.J[k])
			}
		},
		func(d *Dec) any {
			a := relay.Advert{From: d.Addr()}
			n := d.sliceLen(9) // 1-byte empty addr + 8-byte float
			if n == 0 {
				return a
			}
			a.J = make(map[transport.Addr]float64, n)
			for i := 0; i < n && d.Err() == nil; i++ {
				k := d.Addr()
				a.J[k] = d.Float64()
			}
			return a
		})
}

// treeConfig encodes pubsub.TreeConfig (fanout + aggregation deadline +
// root generation of the multicast stream).
func (e *Enc) treeConfig(c pubsub.TreeConfig) {
	e.Int(c.MaxFanout)
	e.Varint(int64(c.AggTimeout))
	e.Uvarint(c.Epoch)
}

func (d *Dec) treeConfig() pubsub.TreeConfig {
	return pubsub.TreeConfig{MaxFanout: d.Int(), AggTimeout: time.Duration(d.Varint()), Epoch: d.Uvarint()}
}
