// Package codec is Totoro's wire format v2: a hand-rolled, pooled binary
// codec for the engine's high-volume message types, with encoding/gob
// demoted to a tagged fallback for rare and application-defined payloads.
//
// Motivation: every Totoro message used to round-trip through gob, whose
// reflection-driven encoder dominates transport CPU and allocates per
// message. The hot path — model updates ([]float64), accumulator merges,
// ring/pubsub control traffic — is a small closed set of types, so each
// gets a purpose-built encoder: varint headers, little-endian bulk copies
// for float payloads, and append-only buffers recycled through a
// sync.Pool. Anything outside the set still works: it is wrapped in a
// gob-encoded sub-frame behind the reserved Gob tag.
//
// Wire value layout (see DESIGN.md "Wire format v2" for the full frame):
//
//	value := uvarint(tag) payload
//
// where the payload layout is fixed per tag. Tags are part of the wire
// contract and never reassigned. Tag 0 is the gob fallback (payload:
// uvarint length + gob stream of the value as interface). Tags 1..15 are
// primitives, 16..63 the engine-internal message types, and 64+ (TagApp)
// are open to applications via RegisterCodec.
//
// Registration must happen before the first frame is encoded (package
// init or process setup, exactly like gob.Register); the registry is read
// without locks on the hot path.
//
// Decoding is defensive: a malformed or truncated value yields a sticky
// error on the Dec — never a panic — and claimed lengths are bounds-checked
// against the remaining input before any allocation, so a hostile frame
// cannot force a huge allocation.
package codec

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"reflect"
	"slices"
	"sort"
	"sync"
)

// Wire tags. Stable: these values are the wire contract.
const (
	// TagGob marks a gob-encoded fallback value.
	TagGob = 0

	tagNil     = 1
	tagBool    = 2
	tagInt     = 3
	tagInt64   = 4
	tagUint64  = 5
	tagFloat64 = 6
	tagString  = 7
	tagBytes   = 8
	tagF64s    = 9
	tagStrMap  = 10
	tagF32s    = 11
	tagQDelta  = 12

	tagEnvelope       = 16
	tagHopAck         = 17
	tagJoinRequest    = 18
	tagJoinReply      = 19
	tagNodeJoined     = 20
	tagLeafsetRequest = 21
	tagLeafsetReply   = 22
	tagPing           = 23
	tagPong           = 24
	tagPSJoin         = 25
	tagPSWelcome      = 26
	tagPSCreate       = 27
	tagPSPublish      = 28
	tagPSMulticast    = 29
	tagPSUpstream     = 30
	tagPSKeepAlive    = 31
	tagPSMcNack       = 32
	tagPSLeave        = 33
	tagMRPacket       = 34
	tagRelayData      = 35
	tagRelayAck       = 36
	tagRelayAdvert    = 37

	// TagApp is the first tag available to RegisterCodec. Tags below it
	// are reserved for the engine.
	TagApp = 64
)

// EncodeFunc appends the payload (no tag) of v to e.
type EncodeFunc func(e *Enc, v any)

// DecodeFunc reads the payload (no tag) of one value from d. On malformed
// input it must set d's error (via the Dec read methods) and may return a
// partial value; it must never panic.
type DecodeFunc func(d *Dec) any

type entry struct {
	tag   uint64
	proto any
	enc   EncodeFunc
	dec   DecodeFunc
}

// The registry maps concrete types to encoders and tags to decoders.
// Writes are serialized by regMu and must complete before the first
// encode/decode (init-time or process-setup-time, like gob.Register);
// reads are lock-free on the hot path.
var (
	regMu    sync.Mutex
	encoders = map[reflect.Type]*entry{}
	decoders = map[uint64]*entry{}
)

// register installs a codec for prototype's concrete type under tag.
// Internal use; applications go through RegisterCodec.
func register(tag uint64, prototype any, enc EncodeFunc, dec DecodeFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	t := reflect.TypeOf(prototype)
	if t == nil {
		panic("codec: register with nil prototype")
	}
	if _, dup := decoders[tag]; dup {
		panic(fmt.Sprintf("codec: duplicate tag %d", tag))
	}
	if _, dup := encoders[t]; dup {
		panic(fmt.Sprintf("codec: duplicate codec for type %v", t))
	}
	e := &entry{tag: tag, proto: prototype, enc: enc, dec: dec}
	encoders[t] = e
	decoders[tag] = e
}

// RegisterCodec installs an application codec for prototype's concrete
// type. tag must be >= TagApp and process-unique; both endpoints must
// register the same tag for the same type (the engine's own registrations
// are in package init, applications typically register alongside
// wire.Register / totoro.RegisterWire). enc writes the payload, dec reads
// it back; the value must round-trip losslessly — totoro-vet's wiresafe
// analyzer checks the registered types statically and the certification
// test exercises them dynamically.
func RegisterCodec(tag uint64, prototype any, enc EncodeFunc, dec DecodeFunc) {
	if tag < TagApp {
		panic(fmt.Sprintf("codec: application tag %d is reserved (< TagApp)", tag))
	}
	register(tag, prototype, enc, dec)
}

// Registered returns a prototype value of every registered type in tag
// order — the corpus the losslessness certification tests round-trip.
func Registered() []any {
	regMu.Lock()
	defer regMu.Unlock()
	tags := make([]uint64, 0, len(decoders))
	for tag := range decoders {
		tags = append(tags, tag)
	}
	slices.Sort(tags)
	out := make([]any, 0, len(tags))
	for _, tag := range tags {
		out = append(out, decoders[tag].proto)
	}
	return out
}

// ---------------------------------------------------------------------------
// Enc: pooled append-only encode buffer.

// Enc is an append-only encode buffer. Obtain with NewEnc, return with
// Free; the backing array is recycled through a sync.Pool so steady-state
// encoding allocates nothing. An Enc must not be used after Free.
type Enc struct {
	buf []byte
	err error
}

// maxPooledBuf bounds the capacity of buffers returned to the pool so one
// giant frame does not pin megabytes forever.
const maxPooledBuf = 4 << 20

var encPool = sync.Pool{New: func() any { return &Enc{buf: make([]byte, 0, 1024)} }}

// NewEnc returns an empty encoder from the pool.
func NewEnc() *Enc {
	e := encPool.Get().(*Enc)
	e.Reset()
	return e
}

// Free returns the encoder to the pool.
func (e *Enc) Free() {
	if cap(e.buf) <= maxPooledBuf {
		encPool.Put(e)
	}
}

// Reset empties the buffer, keeping its capacity.
func (e *Enc) Reset() { e.buf, e.err = e.buf[:0], nil }

// Bytes returns the encoded contents. The slice aliases the encoder's
// buffer and is invalidated by the next write, Reset, or Free.
func (e *Enc) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes.
func (e *Enc) Len() int { return len(e.buf) }

// Err returns the first encode error (only the gob fallback can fail).
func (e *Enc) Err() error { return e.err }

// grow appends n uninitialized bytes and returns the slice to fill.
//
//vet:noalloc amortized
func (e *Enc) grow(n int) []byte {
	l := len(e.buf)
	e.buf = slices.Grow(e.buf, n)[:l+n]
	return e.buf[l:]
}

// Uvarint appends x in unsigned varint form.
//
//vet:noalloc
func (e *Enc) Uvarint(x uint64) { e.buf = binary.AppendUvarint(e.buf, x) }

// Varint appends x in zigzag varint form.
//
//vet:noalloc
func (e *Enc) Varint(x int64) { e.buf = binary.AppendVarint(e.buf, x) }

// Int appends a zigzag varint int.
//
//vet:noalloc
func (e *Enc) Int(x int) { e.Varint(int64(x)) }

// Bool appends one byte.
//
//vet:noalloc
func (e *Enc) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}

// Uint64 appends x as 8 little-endian bytes.
//
//vet:noalloc
func (e *Enc) Uint64(x uint64) { binary.LittleEndian.PutUint64(e.grow(8), x) }

// Float64 appends the IEEE-754 bits of f as 8 little-endian bytes.
//
//vet:noalloc
func (e *Enc) Float64(f float64) { e.Uint64(math.Float64bits(f)) }

// String appends a uvarint length followed by the bytes of s.
//
//vet:noalloc
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// ByteSlice appends a uvarint length followed by b.
//
//vet:noalloc
func (e *Enc) ByteSlice(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Float64s appends a uvarint length followed by the raw little-endian
// bits of v — one bulk copy, no per-element reflection or interface boxing.
//
//vet:noalloc
func (e *Enc) Float64s(v []float64) {
	e.Uvarint(uint64(len(v)))
	dst := e.grow(8 * len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(f))
	}
}

// Float32s appends a uvarint length followed by little-endian float32 bits.
//
//vet:noalloc
func (e *Enc) Float32s(v []float32) {
	e.Uvarint(uint64(len(v)))
	dst := e.grow(4 * len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(f))
	}
}

// Int8s appends a uvarint length followed by the two's-complement bytes.
//
//vet:noalloc
func (e *Enc) Int8s(v []int8) {
	e.Uvarint(uint64(len(v)))
	dst := e.grow(len(v))
	for i, x := range v {
		dst[i] = byte(x)
	}
}

// StringMap appends the map in sorted-key order (deterministic encodes).
func (e *Enc) StringMap(m map[string]string) {
	e.Uvarint(uint64(len(m)))
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.String(k)
		e.String(m[k])
	}
}

// Value appends the tagged encoding of v: its registered codec when the
// concrete type has one, the gob fallback otherwise.
func (e *Enc) Value(v any) {
	if v == nil {
		e.Uvarint(tagNil)
		return
	}
	if ent, ok := encoders[reflect.TypeOf(v)]; ok {
		e.Uvarint(ent.tag)
		ent.enc(e, v)
		return
	}
	e.gobFallback(v)
}

// gobFallback wraps v in a tagged gob sub-frame. A fresh gob stream per
// value re-ships type descriptors each time — that cost is exactly why
// hot types get hand-rolled codecs and gob is the fallback.
func (e *Enc) gobFallback(v any) {
	var bb bytes.Buffer
	if err := gob.NewEncoder(&bb).Encode(&v); err != nil {
		if e.err == nil {
			e.err = fmt.Errorf("codec: gob fallback for %T: %w", v, err)
		}
		return
	}
	e.Uvarint(TagGob)
	e.ByteSlice(bb.Bytes())
}

// ---------------------------------------------------------------------------
// Dec: bounds-checked decode cursor.

// ErrMalformed is the root cause wrapped by all structural decode errors.
var ErrMalformed = errors.New("codec: malformed frame")

// Dec decodes values from one frame body. All read methods are safe on
// malformed input: the first structural violation sets a sticky error and
// every later read returns a zero value.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder reading from b (which the caller may recycle
// only after decoding finishes; decoded values never alias b).
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// Err returns the sticky decode error, if any.
func (d *Dec) Err() error { return d.err }

// Rem returns the number of unread bytes.
func (d *Dec) Rem() int { return len(d.buf) - d.off }

//vet:noalloc cold
func (d *Dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrMalformed, what, d.off)
	}
}

// take returns the next n bytes (aliasing the input) or fails.
//
//vet:noalloc
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("truncated")
		return nil
	}
	s := d.buf[d.off : d.off+n]
	d.off += n
	return s
}

// Uvarint reads an unsigned varint.
//
//vet:noalloc
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.off += n
	return x
}

// Varint reads a zigzag varint.
//
//vet:noalloc
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	x, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return x
}

// Int reads a zigzag varint as int.
//
//vet:noalloc
func (d *Dec) Int() int { return int(d.Varint()) }

// Bool reads one byte.
//
//vet:noalloc
func (d *Dec) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// Uint64 reads 8 little-endian bytes.
//
//vet:noalloc
func (d *Dec) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Float64 reads 8 little-endian bytes as IEEE-754 bits.
//
//vet:noalloc
func (d *Dec) Float64() float64 { return math.Float64frombits(d.Uint64()) }

// SliceLen reads and validates a claimed element count against the
// remaining input, assuming each element occupies at least elemSize
// bytes; a count that cannot fit fails the decoder. This is what keeps a
// malformed length header from forcing a giant allocation — external
// codecs (RegisterCodec) should use it for their own variable-length
// fields.
func (d *Dec) SliceLen(elemSize int) int { return d.sliceLen(elemSize) }

//vet:noalloc
func (d *Dec) sliceLen(elemSize int) int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Rem())/uint64(elemSize) {
		d.fail("length exceeds input")
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string (copying out of the input).
func (d *Dec) String() string {
	n := d.sliceLen(1)
	if n == 0 {
		return ""
	}
	return string(d.take(n))
}

// ByteSlice reads a length-prefixed byte slice (copied; never aliases the
// input, which transports recycle).
func (d *Dec) ByteSlice() []byte {
	n := d.sliceLen(1)
	if n == 0 {
		return nil
	}
	return append([]byte(nil), d.take(n)...)
}

// Float64s reads a length-prefixed little-endian float64 slice.
func (d *Dec) Float64s() []float64 {
	n := d.sliceLen(8)
	if n == 0 {
		return nil
	}
	b := d.take(8 * n)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Float32s reads a length-prefixed little-endian float32 slice.
func (d *Dec) Float32s() []float32 {
	n := d.sliceLen(4)
	if n == 0 {
		return nil
	}
	b := d.take(4 * n)
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// Int8s reads a length-prefixed int8 slice.
func (d *Dec) Int8s() []int8 {
	n := d.sliceLen(1)
	if n == 0 {
		return nil
	}
	b := d.take(n)
	out := make([]int8, n)
	for i := range out {
		out[i] = int8(b[i])
	}
	return out
}

// StringMap reads a map encoded by Enc.StringMap. Zero entries decode as
// a nil map (the same nil normalization slices use).
func (d *Dec) StringMap() map[string]string {
	n := d.sliceLen(2) // one byte per key + one per value, minimum
	if n == 0 {
		return nil
	}
	m := make(map[string]string, n)
	for i := 0; i < n && d.err == nil; i++ {
		k := d.String()
		m[k] = d.String()
	}
	return m
}

// Value reads one tagged value.
func (d *Dec) Value() any {
	tag := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if tag == tagNil {
		return nil
	}
	if tag == TagGob {
		b := d.ByteSlice()
		if d.err != nil {
			return nil
		}
		var v any
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
			d.fail("gob fallback: " + err.Error())
			return nil
		}
		return v
	}
	ent, ok := decoders[tag]
	if !ok {
		d.fail(fmt.Sprintf("unknown tag %d", tag))
		return nil
	}
	return ent.dec(d)
}

// ---------------------------------------------------------------------------
// Primitive registrations.

func init() {
	register(tagBool, false,
		func(e *Enc, v any) { e.Bool(v.(bool)) },
		func(d *Dec) any { return d.Bool() })
	register(tagInt, int(0),
		func(e *Enc, v any) { e.Int(v.(int)) },
		func(d *Dec) any { return d.Int() })
	register(tagInt64, int64(0),
		func(e *Enc, v any) { e.Varint(v.(int64)) },
		func(d *Dec) any { return d.Varint() })
	register(tagUint64, uint64(0),
		func(e *Enc, v any) { e.Uvarint(v.(uint64)) },
		func(d *Dec) any { return d.Uvarint() })
	register(tagFloat64, float64(0),
		func(e *Enc, v any) { e.Float64(v.(float64)) },
		func(d *Dec) any { return d.Float64() })
	register(tagString, "",
		func(e *Enc, v any) { e.String(v.(string)) },
		func(d *Dec) any { return d.String() })
	register(tagBytes, []byte(nil),
		func(e *Enc, v any) { e.ByteSlice(v.([]byte)) },
		func(d *Dec) any { return d.ByteSlice() })
	register(tagF64s, []float64(nil),
		func(e *Enc, v any) { e.Float64s(v.([]float64)) },
		func(d *Dec) any { return d.Float64s() })
	register(tagStrMap, map[string]string(nil),
		func(e *Enc, v any) { e.StringMap(v.(map[string]string)) },
		func(d *Dec) any { return d.StringMap() })
	register(tagF32s, Float32s(nil),
		func(e *Enc, v any) { e.Float32s(v.(Float32s)) },
		func(d *Dec) any { return Float32s(d.Float32s()) })
	register(tagQDelta, QDelta{},
		func(e *Enc, v any) {
			q := v.(QDelta)
			e.Float64(q.Scale)
			e.Int8s(q.Levels)
		},
		func(d *Dec) any { return QDelta{Scale: d.Float64(), Levels: d.Int8s()} })
}
