package codec

import (
	"fmt"
	"sync"

	"totoro/internal/transport"
)

// Preamble opens every codec-v2 byte stream. The leading zero byte makes
// the format self-identifying against a legacy gob stream: gob's first
// byte is a message length, which is never zero, so a receiver can peek
// four bytes and route the connection to the right decoder. This is what
// lets mixed fleets (old gob senders, new v2 senders) share one listener.
var Preamble = [4]byte{0x00, 'T', 'W', '2'}

// MaxFrameBytes is the default cap a transport should place on one
// frame's claimed body length before allocating for it.
const MaxFrameBytes = 64 << 20

// EncodeFrame appends one transport frame body — the sender's address
// followed by the tagged message — to e. The transport prefixes the body
// with its uvarint length on the stream. The only possible error is a
// failed gob fallback for an unregistered, gob-hostile payload.
func EncodeFrame(e *Enc, from transport.Addr, msg any) error {
	e.Addr(from)
	e.Value(msg)
	return e.Err()
}

// FrameSize returns the exact on-stream cost of sending msg from the given
// address over the v2 transport: the frame body (EncodeFrame) plus its
// uvarint length prefix. It encodes into a pooled buffer and discards the
// bytes, so simulators can charge exactly what tcpnet would transmit. An
// error means the message has no codec and resists the gob fallback.
func FrameSize(from transport.Addr, msg any) (int, error) {
	e := NewEnc()
	defer e.Free()
	if err := EncodeFrame(e, from, msg); err != nil {
		return 0, err
	}
	n := e.Len()
	prefix := 1
	for x := uint64(n); x >= 0x80; x >>= 7 {
		prefix++
	}
	return prefix + n, nil
}

var decPool = sync.Pool{New: func() any { return new(Dec) }}

// DecodeFrame decodes one frame body produced by EncodeFrame. The decoded
// message never aliases b, so the caller may recycle the buffer. Trailing
// garbage after the message is an error: a well-formed frame is consumed
// exactly.
func DecodeFrame(b []byte) (from transport.Addr, msg any, err error) {
	d := decPool.Get().(*Dec)
	*d = Dec{buf: b}
	from = d.Addr()
	msg = d.Value()
	err, rem := d.Err(), d.Rem()
	d.buf = nil // do not pin the caller's buffer while pooled
	decPool.Put(d)
	if err != nil {
		return "", nil, err
	}
	if rem != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing bytes", ErrMalformed, rem)
	}
	return from, msg, nil
}
