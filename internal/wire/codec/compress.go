package codec

import "math"

// Compressed model-update encodings. A model update is a []float64; apps
// that can tolerate bounded reconstruction error opt into shipping it as
// one of these wire types instead (fl.Float32 / fl.DeltaInt8 produce the
// same reconstructions for the simulator's accounting, and the accuracy
// cost is measured in EXPERIMENTS.md). Both types round-trip losslessly
// through the codec — the loss happens once, at Pack time.

// Float32s is a model update quantized to IEEE float32: half the wire
// bytes of a dense update at ~1e-7 relative error.
type Float32s []float32

// PackF32 quantizes a dense update to float32.
func PackF32(v []float64) Float32s {
	out := make(Float32s, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// Dense reconstructs the []float64 a receiver hands to the aggregator.
func (f Float32s) Dense() []float64 {
	out := make([]float64, len(f))
	for i, x := range f {
		out[i] = float64(x)
	}
	return out
}

// QDelta is a delta-coded, int8-quantized model update: one byte per
// coordinate plus a shared scale. Coordinate i is stored as the quantized
// difference from the reconstruction of coordinate i-1 (DPCM with error
// feedback: each residual is computed against the receiver's view, so
// quantization error does not accumulate along the vector).
type QDelta struct {
	Scale  float64
	Levels []int8
}

// PackQDelta delta-codes and quantizes a dense update. The scale is set
// from the largest coordinate-to-coordinate step so residuals fit int8.
func PackQDelta(v []float64) QDelta {
	if len(v) == 0 {
		return QDelta{}
	}
	maxStep := math.Abs(v[0])
	for i := 1; i < len(v); i++ {
		if s := math.Abs(v[i] - v[i-1]); s > maxStep {
			maxStep = s
		}
	}
	q := QDelta{Scale: maxStep / 127, Levels: make([]int8, len(v))}
	if q.Scale == 0 {
		return q // constant-zero steps: every level is 0
	}
	pred := 0.0
	for i, x := range v {
		l := math.Round((x - pred) / q.Scale)
		if l > 127 {
			l = 127
		} else if l < -127 {
			l = -127
		}
		q.Levels[i] = int8(l)
		pred += l * q.Scale
	}
	return q
}

// Dense reconstructs the receiver-side []float64.
func (q QDelta) Dense() []float64 {
	out := make([]float64, len(q.Levels))
	pred := 0.0
	for i, l := range q.Levels {
		pred += float64(l) * q.Scale
		out[i] = pred
	}
	return out
}

// WireSize implements transport.Sized so the simulator charges the
// compressed frame, not the boxed in-memory form.
func (f Float32s) WireSize() int { return 8 + 4*len(f) }

// WireSize implements transport.Sized.
func (q QDelta) WireSize() int { return 16 + len(q.Levels) }
