package codec

import (
	"bytes"
	"encoding/gob"
	"testing"

	"totoro/internal/ids"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
)

// Benchmarks pitting wire v2 against the gob baseline on the three frame
// shapes that dominate engine traffic: a small control message, a dense
// 10k-float model update, and the compressed update encodings. The gob
// side uses a persistent stream (encoder/decoder pair reused across
// messages), exactly like the legacy tcpnet wire loop — this is the
// fair comparison, since a fresh gob encoder per message would re-ship
// type descriptors and flatter v2 even more.

func benchControlMsg() any {
	return ring.Envelope{
		Key:    ids.ID{Hi: 1, Lo: 2},
		Source: ring.Contact{ID: ids.ID{Hi: 3, Lo: 4}, Addr: "10.0.0.1:9000"},
		Hops:   3, Seq: 1234,
		Payload: pubsub.JoinMsg{Topic: ids.ID{Hi: 5, Lo: 6},
			Subscriber: ring.Contact{ID: ids.ID{Hi: 7, Lo: 8}, Addr: "10.0.0.2:9000"}},
	}
}

func benchUpdateMsg(n int) (any, []float64) {
	params := make([]float64, n)
	for i := range params {
		params[i] = float64(i%97) * 0.013
	}
	return pubsub.Upstream{
		Topic: ids.ID{Hi: 9, Lo: 10}, Round: 42,
		From:  ring.Contact{ID: ids.ID{Hi: 11, Lo: 12}, Addr: "10.0.0.3:9000"},
		Count: 17, Object: params,
	}, params
}

func init() {
	// The gob benchmarks ship the same interface-typed payloads tcpnet's
	// legacy path does, so the concrete types must be gob-registered.
	// (Production code does this via wire.Register; codec can't import
	// wire without a cycle.)
	gob.Register(ring.Envelope{})
	gob.Register(pubsub.JoinMsg{})
	gob.Register(pubsub.Upstream{})
	gob.Register([]float64(nil))
	gob.Register(Float32s(nil))
	gob.Register(QDelta{})
}

const benchAddr = "10.0.0.9:9000"

func benchCodecEncode(b *testing.B, msg any) {
	b.ReportAllocs()
	var n int64
	for i := 0; i < b.N; i++ {
		e := NewEnc()
		if err := EncodeFrame(e, benchAddr, msg); err != nil {
			b.Fatal(err)
		}
		n += int64(e.Len())
		e.Free()
	}
	b.SetBytes(n / int64(b.N))
}

func benchCodecDecode(b *testing.B, msg any) {
	e := NewEnc()
	defer e.Free()
	if err := EncodeFrame(e, benchAddr, msg); err != nil {
		b.Fatal(err)
	}
	buf := append([]byte(nil), e.Bytes()...)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeFrame(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// wireMsg mirrors tcpnet's legacy gob frame (sender address + payload).
type wireMsg struct {
	From string
	Msg  any
}

func benchGobEncode(b *testing.B, msg any) {
	var bb bytes.Buffer
	enc := gob.NewEncoder(&bb)
	// Prime the stream so type descriptors are sent once, as on a
	// long-lived connection.
	if err := enc.Encode(wireMsg{From: benchAddr, Msg: msg}); err != nil {
		b.Fatal(err)
	}
	prime := bb.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb.Truncate(prime)
		if err := enc.Encode(wireMsg{From: benchAddr, Msg: msg}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(bb.Len() - prime))
}

func benchGobDecode(b *testing.B, msg any) {
	// A self-feeding pipe keeps one decoder stream alive for all N
	// messages, as on a long-lived connection.
	var bb bytes.Buffer
	enc := gob.NewEncoder(&bb)
	dec := gob.NewDecoder(&bb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := enc.Encode(wireMsg{From: benchAddr, Msg: msg}); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		var m wireMsg
		if err := dec.Decode(&m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeControl_Gob(b *testing.B)   { benchGobEncode(b, benchControlMsg()) }
func BenchmarkEncodeControl_Codec(b *testing.B) { benchCodecEncode(b, benchControlMsg()) }
func BenchmarkDecodeControl_Gob(b *testing.B)   { benchGobDecode(b, benchControlMsg()) }
func BenchmarkDecodeControl_Codec(b *testing.B) { benchCodecDecode(b, benchControlMsg()) }

func BenchmarkEncodeUpdate10k_Gob(b *testing.B) {
	m, _ := benchUpdateMsg(10000)
	benchGobEncode(b, m)
}

func BenchmarkEncodeUpdate10k_Codec(b *testing.B) {
	m, _ := benchUpdateMsg(10000)
	benchCodecEncode(b, m)
}

func BenchmarkDecodeUpdate10k_Gob(b *testing.B) {
	m, _ := benchUpdateMsg(10000)
	benchGobDecode(b, m)
}

func BenchmarkDecodeUpdate10k_Codec(b *testing.B) {
	m, _ := benchUpdateMsg(10000)
	benchCodecDecode(b, m)
}

func BenchmarkEncodeUpdate10k_F32(b *testing.B) {
	_, params := benchUpdateMsg(10000)
	benchCodecEncode(b, PackF32(params))
}

func BenchmarkEncodeUpdate10k_QDelta(b *testing.B) {
	_, params := benchUpdateMsg(10000)
	benchCodecEncode(b, PackQDelta(params))
}

func BenchmarkPackQDelta10k(b *testing.B) {
	_, params := benchUpdateMsg(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PackQDelta(params)
	}
}
