package codec

import (
	"testing"

	"totoro/internal/ids"
	"totoro/internal/pubsub"
	"totoro/internal/relay"
	"totoro/internal/ring"
	"totoro/internal/transport"
)

// fuzzSeeds are valid frame bodies for a spread of registered types, so
// the fuzzer starts from the real wire grammar and mutates from there.
// checked-in crashers from past fuzzing sessions belong in
// testdata/fuzz/FuzzDecodeFrame (go test stores them there automatically).
func fuzzSeeds() [][]byte {
	id := ids.ID{Hi: 0xfeed, Lo: 0xbeef}
	c := ring.Contact{ID: id, Addr: "node-1:9000"}
	msgs := []any{
		nil,
		true,
		int(-42),
		uint64(1 << 40),
		3.14,
		"hello",
		[]byte{1, 2, 3},
		[]float64{1, -2, 3.5},
		map[string]string{"k": "v"},
		PackF32([]float64{0.25, -0.5}),
		PackQDelta([]float64{0.1, 0.2, 0.15}),
		ring.Envelope{Key: id, Source: c, Hops: 3, Seq: 17, Payload: []float64{9, 8}},
		ring.HopAck{Seq: 17},
		ring.JoinRequest{Joiner: c, Rows: [][]ring.Contact{{c}, nil}, Hops: 1},
		ring.LeafsetReply{From: c, Leafset: []ring.Contact{c, c}},
		pubsub.Multicast{Topic: id, Seq: 5, Depth: 2, Object: "payload"},
		pubsub.Upstream{Topic: id, Round: 7, From: c, Count: 3, Object: []float64{1}},
		pubsub.McNack{Topic: id, Child: c, Missing: []uint64{4, 5, 6}},
		relay.Data{Dst: "a", Origin: "b", ID: 1, Seq: 2, TTL: 3,
			Visited: []transport.Addr{"a", "b"}, Payload: "x"},
		relay.Advert{From: "a", J: map[transport.Addr]float64{"b": 0.5}},
	}
	var seeds [][]byte
	for _, m := range msgs {
		e := NewEnc()
		if err := EncodeFrame(e, "seed-addr", m); err != nil {
			panic(err)
		}
		seeds = append(seeds, append([]byte(nil), e.Bytes()...))
		e.Free()
	}
	// Deliberately malformed variants: truncations, flipped tag bytes,
	// and an absurd length claim.
	full := seeds[len(seeds)-1]
	seeds = append(seeds,
		full[:len(full)/2],
		full[:1],
		[]byte{},
		[]byte{0x80},                   // unterminated uvarint
		[]byte{0x00, 0x09, 0xFF, 0xFF}, // addr then []float64 claiming a huge length
	)
	return seeds
}

// FuzzDecodeFrame asserts the decoder's safety contract on arbitrary
// bytes: it may reject the input, but it must never panic, never
// over-allocate past the input size, and anything it accepts must be
// stable — canonically re-encoding the decoded value and decoding again
// must reproduce the same canonical bytes. (The raw input may differ from
// its canonical form: varints have non-minimal encodings. Comparing
// canonical bytes instead of values also sidesteps DeepEqual-on-NaN,
// since NaN payload bits are legitimate wire values.)
func FuzzDecodeFrame(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		from, msg, err := DecodeFrame(b)
		if err != nil {
			return
		}
		e := NewEnc()
		defer e.Free()
		if err := EncodeFrame(e, from, msg); err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		canon := append([]byte(nil), e.Bytes()...)
		from2, msg2, err := DecodeFrame(canon)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if from2 != from {
			t.Fatalf("from changed: %q -> %q", from, from2)
		}
		e2 := NewEnc()
		defer e2.Free()
		if err := EncodeFrame(e2, from2, msg2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytesEqual(canon, e2.Bytes()) {
			t.Fatalf("canonical encoding not stable for input %x:\n %x\n %x", b, canon, e2.Bytes())
		}
	})
}

// bytesEqual avoids importing bytes just for this.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
