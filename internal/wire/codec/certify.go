package codec

import (
	"fmt"
	"math/rand"
	"reflect"
)

// CertifyLossless round-trips randomized instances of every prototype
// through the codec and reports the first value that fails to survive
// encode→decode intact. It is the dynamic half of the wire-v2 losslessness
// contract: totoro-vet's wiresafe analyzer proves the registered types are
// structurally encodable, this proves the hand-rolled encoders actually
// carry every exported field. Tests call it with Registered() — after all
// RegisterCodec calls, so application types are certified too.
func CertifyLossless(prototypes []any, rng *rand.Rand, trials int) error {
	if trials <= 0 {
		trials = 8
	}
	for _, p := range prototypes {
		t := reflect.TypeOf(p)
		for i := 0; i < trials; i++ {
			v := fillValue(t, rng, 3).Interface()
			e := NewEnc()
			e.Value(v)
			if err := e.Err(); err != nil {
				e.Free()
				return fmt.Errorf("certify %v: encode: %w", t, err)
			}
			buf := append([]byte(nil), e.Bytes()...)
			e.Free()
			d := NewDec(buf)
			got := d.Value()
			if err := d.Err(); err != nil {
				return fmt.Errorf("certify %v: decode: %w", t, err)
			}
			if d.Rem() != 0 {
				return fmt.Errorf("certify %v: %d trailing bytes after decode", t, d.Rem())
			}
			if !reflect.DeepEqual(v, got) {
				return fmt.Errorf("certify %v: round-trip mismatch\n sent: %#v\n got:  %#v", t, v, got)
			}
		}
	}
	return nil
}

// payloadSamples is what interface-typed fields (message payloads) are
// filled with: it exercises the nested Value path over the primitive tags.
func payloadSamples(rng *rand.Rand) any {
	switch rng.Intn(5) {
	case 0:
		return nil
	case 1:
		return rng.NormFloat64()
	case 2:
		return fmt.Sprintf("payload-%d", rng.Intn(1000))
	case 3:
		return rng.Intn(1 << 20)
	default:
		v := make([]float64, 1+rng.Intn(4))
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
}

// fillValue builds a randomized value of type t. Slices and maps are
// always non-empty (the codec normalizes empty to nil, which DeepEqual
// distinguishes; the nil/empty convention has its own explicit tests).
// Only exported struct fields are populated — unexported fields are not
// part of the wire contract and stay zero on both sides.
func fillValue(t reflect.Type, rng *rand.Rand, depth int) reflect.Value {
	v := reflect.New(t).Elem()
	fillInto(v, rng, depth)
	return v
}

func fillInto(v reflect.Value, rng *rand.Rand, depth int) {
	t := v.Type()
	switch t.Kind() {
	case reflect.Bool:
		v.SetBool(rng.Intn(2) == 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n := rng.Int63n(1<<16) - 1<<15
		if t.Kind() == reflect.Int8 {
			n = rng.Int63n(256) - 128
		}
		v.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(rng.Uint64() >> 8)
	case reflect.Float32:
		v.SetFloat(float64(float32(rng.NormFloat64())))
	case reflect.Float64:
		v.SetFloat(rng.NormFloat64())
	case reflect.String:
		v.SetString(fmt.Sprintf("s%x", rng.Uint32()))
	case reflect.Slice:
		n := 1 + rng.Intn(3)
		s := reflect.MakeSlice(t, n, n)
		for i := 0; i < n; i++ {
			if depth > 0 {
				fillInto(s.Index(i), rng, depth-1)
			}
		}
		v.Set(s)
	case reflect.Map:
		n := 1 + rng.Intn(3)
		m := reflect.MakeMapWithSize(t, n)
		for i := 0; i < n; i++ {
			k := fillValue(t.Key(), rng, 0)
			m.SetMapIndex(k, fillValue(t.Elem(), rng, max(depth-1, 0)))
		}
		v.Set(m)
	case reflect.Pointer:
		if depth > 0 {
			p := reflect.New(t.Elem())
			fillInto(p.Elem(), rng, depth-1)
			v.Set(p)
		}
	case reflect.Interface:
		if t.NumMethod() == 0 {
			p := payloadSamples(rng)
			if p != nil {
				v.Set(reflect.ValueOf(p))
			}
		}
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).IsExported() && depth >= 0 {
				fillInto(v.Field(i), rng, depth-1)
			}
		}
	}
}
