// Package wire registers every Totoro message type with encoding/gob so
// that the TCP transport can ship the same message values the simulator
// passes in memory. Call Register once per process before using
// transport/tcpnet.
//
// Since wire format v2 (see the wire/codec subpackage), gob is the
// fallback encoding: the high-volume types registered here also carry
// hand-rolled binary codecs, installed by codec's package init. The gob
// registrations remain load-bearing — they back the tagged fallback frame
// for rare and application types, and legacy (GobWire) peers.
package wire

import (
	"encoding/gob"
	"sync"

	"totoro/internal/multiring"
	"totoro/internal/pubsub"
	"totoro/internal/relay"
	"totoro/internal/ring"
	"totoro/internal/wire/codec"
)

var once sync.Once

// Register installs gob registrations for all overlay, pub/sub,
// multiring, and relay message types plus the common payload primitives.
// It is idempotent.
func Register() {
	once.Do(func() {
		// Overlay (Pastry-style ring).
		gob.Register(ring.Envelope{})
		gob.Register(ring.HopAck{})
		gob.Register(ring.JoinRequest{})
		gob.Register(ring.JoinReply{})
		gob.Register(ring.NodeJoined{})
		gob.Register(ring.LeafsetRequest{})
		gob.Register(ring.LeafsetReply{})
		gob.Register(ring.Ping{})
		gob.Register(ring.Pong{})
		// Forest (pub/sub trees).
		gob.Register(pubsub.JoinMsg{})
		gob.Register(pubsub.Welcome{})
		gob.Register(pubsub.CreateMsg{})
		gob.Register(pubsub.PublishMsg{})
		gob.Register(pubsub.Multicast{})
		gob.Register(pubsub.Upstream{})
		gob.Register(pubsub.KeepAlive{})
		gob.Register(pubsub.McNack{})
		gob.Register(pubsub.LeaveMsg{})
		// Multi-ring packets.
		gob.Register(multiring.Packet{})
		// Relay frames (bandit-routed data plane).
		gob.Register(relay.Data{})
		gob.Register(relay.Ack{})
		gob.Register(relay.Advert{})
		// Common payload primitives carried inside envelopes/multicasts.
		gob.Register([]float64(nil))
		gob.Register(map[string]string(nil))
		gob.Register("")
		gob.Register(0)
		gob.Register(0.0)
		// Compressed model-update encodings (wire format v2).
		gob.Register(codec.Float32s(nil))
		gob.Register(codec.QDelta{})
	})
}

// RegisterPayload lets applications add their own payload types (anything
// carried inside Broadcast or Aggregate objects over TCP).
func RegisterPayload(v any) { gob.Register(v) }
