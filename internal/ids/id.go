// Package ids implements the 128-bit circular identifier space used by
// Totoro's locality-aware P2P multi-ring overlay (paper §4.2).
//
// Every edge node and every FL application is named by a 128-bit ID drawn
// from a circular space [0, 2^128). IDs are compared, subtracted, and split
// into base-2^b digits for Pastry-style prefix routing, and into an m-bit
// zone prefix plus (128-m)-bit suffix for the two-level multi-ring routing
// tables.
package ids

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
	"math/rand"
)

// Bits is the width of the identifier space.
const Bits = 128

// ID is a 128-bit identifier on the Totoro ring. The zero value is the ID 0.
type ID struct {
	Hi, Lo uint64
}

// FromBytes builds an ID from the first 16 bytes of p (big endian).
// Shorter slices are zero-padded on the right.
func FromBytes(p []byte) ID {
	var buf [16]byte
	copy(buf[:], p)
	return ID{
		Hi: binary.BigEndian.Uint64(buf[0:8]),
		Lo: binary.BigEndian.Uint64(buf[8:16]),
	}
}

// Bytes returns the big-endian 16-byte representation of d.
func (d ID) Bytes() [16]byte {
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[0:8], d.Hi)
	binary.BigEndian.PutUint64(buf[8:16], d.Lo)
	return buf
}

// Hash derives an ID from arbitrary text using SHA-1, exactly as the paper
// derives AppId = hash("FL application") (§4.3 step a). SHA-1 yields a
// uniform distribution of IDs over the ring, which is what guarantees that
// rendezvous roots of different applications land on different nodes.
func Hash(parts ...string) ID {
	h := sha1.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return FromBytes(h.Sum(nil))
}

// Random returns a uniformly random ID drawn from rng.
func Random(rng *rand.Rand) ID {
	return ID{Hi: rng.Uint64(), Lo: rng.Uint64()}
}

// String renders the ID as 32 hex digits.
func (d ID) String() string {
	return fmt.Sprintf("%016x%016x", d.Hi, d.Lo)
}

// Short renders the leading 8 hex digits, for logs.
func (d ID) Short() string {
	return fmt.Sprintf("%08x", d.Hi>>32)
}

// Cmp returns -1, 0, or +1 comparing d and o as unsigned 128-bit integers.
func (d ID) Cmp(o ID) int {
	switch {
	case d.Hi < o.Hi:
		return -1
	case d.Hi > o.Hi:
		return 1
	case d.Lo < o.Lo:
		return -1
	case d.Lo > o.Lo:
		return 1
	}
	return 0
}

// Less reports whether d < o as unsigned 128-bit integers.
func (d ID) Less(o ID) bool { return d.Cmp(o) < 0 }

// IsZero reports whether d is the zero ID.
func (d ID) IsZero() bool { return d.Hi == 0 && d.Lo == 0 }

// Add returns d + o mod 2^128.
func (d ID) Add(o ID) ID {
	lo := d.Lo + o.Lo
	carry := uint64(0)
	if lo < d.Lo {
		carry = 1
	}
	return ID{Hi: d.Hi + o.Hi + carry, Lo: lo}
}

// Sub returns d - o mod 2^128.
func (d ID) Sub(o ID) ID {
	lo := d.Lo - o.Lo
	borrow := uint64(0)
	if d.Lo < o.Lo {
		borrow = 1
	}
	return ID{Hi: d.Hi - o.Hi - borrow, Lo: lo}
}

// CWDist returns the clockwise (increasing-ID) distance from d to o on the
// ring, i.e. (o - d) mod 2^128.
func CWDist(d, o ID) ID { return o.Sub(d) }

// Dist returns the minimal circular distance between d and o:
// min((o-d) mod 2^128, (d-o) mod 2^128).
func Dist(d, o ID) ID {
	cw := o.Sub(d)
	ccw := d.Sub(o)
	if cw.Less(ccw) {
		return cw
	}
	return ccw
}

// Closer reports whether a is strictly numerically closer to key than b is.
// Ties are broken toward the numerically smaller ID so that exactly one node
// owns every key.
func Closer(key, a, b ID) bool {
	da, db := Dist(key, a), Dist(key, b)
	if c := da.Cmp(db); c != 0 {
		return c < 0
	}
	return a.Less(b)
}

// Digit returns the i-th base-2^b digit of d counting from the most
// significant end (digit 0 is the top b bits). b must be in [1,7] and
// i in [0, NumDigits(b)). When 128 is not divisible by b the final digit is
// taken from the zero-padded tail, matching a 128-bit id left-aligned in a
// ceil(128/b)*b-bit register.
func (d ID) Digit(i, b int) int {
	hi := 128 - i*b // exclusive top bit position of the digit
	lo := hi - b    // inclusive low bit position (may go negative on tail)
	shift := lo
	width := b
	if shift < 0 {
		width += shift
		shift = 0
	}
	v := d.extractBits(shift, width)
	if lo < 0 {
		v <<= uint(-lo) // pad tail digit on the right
	}
	return int(v)
}

// extractBits returns bits [shift, shift+width) of the 128-bit value
// (bit 0 = least significant).
func (d ID) extractBits(shift, width int) uint64 {
	if width <= 0 {
		return 0
	}
	mask := uint64(1)<<uint(width) - 1
	if shift >= 64 {
		return (d.Hi >> uint(shift-64)) & mask
	}
	v := d.Lo >> uint(shift)
	if shift+width > 64 {
		v |= d.Hi << uint(64-shift)
	}
	return v & mask
}

// NumDigits returns the number of base-2^b digits in a 128-bit ID.
func NumDigits(b int) int { return (Bits + b - 1) / b }

// CommonPrefix returns the number of leading base-2^b digits shared by a
// and b.
func CommonPrefix(a, o ID, b int) int {
	n := NumDigits(b)
	for i := 0; i < n; i++ {
		if a.Digit(i, b) != o.Digit(i, b) {
			return i
		}
	}
	return n
}

// WithDigit returns a copy of d whose i-th base-2^b digit is set to v,
// and all following digits cleared to zero. It is used to synthesize routing
// table target prefixes.
func (d ID) WithDigit(i, b, v int) ID {
	n := NumDigits(b)
	var out ID
	for j := 0; j < i; j++ {
		out = out.setDigit(j, b, d.Digit(j, b))
	}
	out = out.setDigit(i, b, v)
	_ = n
	return out
}

func (d ID) setDigit(i, b, v int) ID {
	hi := 128 - i*b
	lo := hi - b
	shift := lo
	width := b
	val := uint64(v)
	if shift < 0 {
		val >>= uint(-lo)
		width += shift
		shift = 0
	}
	return d.orBits(shift, width, val)
}

func (d ID) orBits(shift, width int, v uint64) ID {
	if width <= 0 {
		return d
	}
	v &= uint64(1)<<uint(width) - 1
	if shift >= 64 {
		d.Hi |= v << uint(shift-64)
		return d
	}
	d.Lo |= v << uint(shift)
	if shift+width > 64 {
		d.Hi |= v >> uint(64-shift)
	}
	return d
}

// ZonePrefix returns the top m bits of d, interpreted as the zone ID of the
// locality-aware multi-ring structure (§4.2: NodeId = P*2^n + S).
// m must be in [1, 64].
func (d ID) ZonePrefix(m int) uint64 {
	return d.Hi >> uint(64-m)
}

// Suffix returns d with the top m bits cleared: the intra-zone suffix S.
func (d ID) Suffix(m int) ID {
	mask := ^uint64(0) >> uint(m)
	return ID{Hi: d.Hi & mask, Lo: d.Lo}
}

// MakeZoned composes a full ID from an m-bit zone prefix and a suffix:
// D = P*2^n + S where n = 128 - m.
func MakeZoned(zone uint64, m int, suffix ID) ID {
	s := suffix.Suffix(m)
	return ID{Hi: s.Hi | zone<<uint(64-m), Lo: s.Lo}
}

// Between reports whether x lies on the clockwise arc (a, b] of the ring.
func Between(x, a, b ID) bool {
	// Normalize by rotating so a -> 0; then test 0 < x' <= b'.
	xr := x.Sub(a)
	br := b.Sub(a)
	return !xr.IsZero() && (xr.Cmp(br) <= 0)
}
