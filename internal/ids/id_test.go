package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func rid(rng *rand.Rand) ID { return ID{Hi: rng.Uint64(), Lo: rng.Uint64()} }

func TestAddSubRoundTrip(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64) bool {
		a := ID{ahi, alo}
		b := ID{bhi, blo}
		return a.Add(b).Sub(b) == a && a.Sub(b).Add(b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddCarry(t *testing.T) {
	a := ID{Hi: 0, Lo: ^uint64(0)}
	got := a.Add(ID{Hi: 0, Lo: 1})
	if got != (ID{Hi: 1, Lo: 0}) {
		t.Fatalf("carry: got %v", got)
	}
	// Wrap-around at 2^128.
	max := ID{Hi: ^uint64(0), Lo: ^uint64(0)}
	if got := max.Add(ID{Lo: 1}); !got.IsZero() {
		t.Fatalf("wrap: got %v", got)
	}
}

func TestSubBorrow(t *testing.T) {
	a := ID{Hi: 1, Lo: 0}
	got := a.Sub(ID{Hi: 0, Lo: 1})
	if got != (ID{Hi: 0, Lo: ^uint64(0)}) {
		t.Fatalf("borrow: got %v", got)
	}
}

func TestCmpOrdering(t *testing.T) {
	cases := []struct {
		a, b ID
		want int
	}{
		{ID{0, 0}, ID{0, 0}, 0},
		{ID{0, 1}, ID{0, 2}, -1},
		{ID{1, 0}, ID{0, ^uint64(0)}, 1},
		{ID{2, 5}, ID{2, 5}, 0},
	}
	for _, c := range cases {
		if got := c.a.Cmp(c.b); got != c.want {
			t.Errorf("Cmp(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64) bool {
		a, b := ID{ahi, alo}, ID{bhi, blo}
		return Dist(a, b) == Dist(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistHalfRing(t *testing.T) {
	// Distance can never exceed 2^127.
	half := ID{Hi: 1 << 63, Lo: 0}
	f := func(ahi, alo, bhi, blo uint64) bool {
		d := Dist(ID{ahi, alo}, ID{bhi, blo})
		return d.Cmp(half) <= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, b := range []int{1, 2, 3, 4, 5, 6, 7} {
		n := NumDigits(b)
		for trial := 0; trial < 50; trial++ {
			d := rid(rng)
			// Reassemble the ID from its digits and compare, accounting for
			// tail padding: digit n-1 may carry fewer than b significant bits.
			var out ID
			for i := 0; i < n; i++ {
				out = out.setDigit(i, b, d.Digit(i, b))
			}
			if out != d {
				t.Fatalf("b=%d digits do not reassemble: %v != %v", b, out, d)
			}
		}
	}
}

func TestDigitKnown(t *testing.T) {
	d := ID{Hi: 0xF123456789ABCDEF, Lo: 0}
	if got := d.Digit(0, 4); got != 0xF {
		t.Fatalf("digit0 = %x", got)
	}
	if got := d.Digit(1, 4); got != 0x1 {
		t.Fatalf("digit1 = %x", got)
	}
	if got := d.Digit(15, 4); got != 0xF {
		t.Fatalf("digit15 = %x", got)
	}
	if got := d.Digit(16, 4); got != 0 {
		t.Fatalf("digit16 = %x", got)
	}
}

func TestDigitBase3TailPadding(t *testing.T) {
	// 128 = 42*3 + 2, so digit 42 uses the low 2 bits left-shifted by 1.
	d := ID{Hi: 0, Lo: 0x3}
	b := 3
	n := NumDigits(b)
	if n != 43 {
		t.Fatalf("NumDigits(3)=%d", n)
	}
	if got := d.Digit(n-1, b); got != 0x3<<1 {
		t.Fatalf("tail digit = %d want %d", got, 0x3<<1)
	}
}

func TestCommonPrefix(t *testing.T) {
	a := ID{Hi: 0xABCD000000000000, Lo: 0}
	b := ID{Hi: 0xABCE000000000000, Lo: 0}
	if got := CommonPrefix(a, b, 4); got != 3 {
		t.Fatalf("common prefix = %d want 3", got)
	}
	if got := CommonPrefix(a, a, 4); got != NumDigits(4) {
		t.Fatalf("self prefix = %d", got)
	}
}

func TestWithDigit(t *testing.T) {
	a := ID{Hi: 0xABCD000000000000, Lo: 0x1234}
	got := a.WithDigit(2, 4, 0x7)
	// Digits 0,1 preserved; digit 2 = 7; everything after zero.
	if got.Digit(0, 4) != 0xA || got.Digit(1, 4) != 0xB || got.Digit(2, 4) != 0x7 {
		t.Fatalf("WithDigit prefix wrong: %v", got)
	}
	for i := 3; i < NumDigits(4); i++ {
		if got.Digit(i, 4) != 0 {
			t.Fatalf("digit %d not cleared", i)
		}
	}
}

func TestZoneSplitRoundTrip(t *testing.T) {
	f := func(hi, lo uint64, mRaw uint8) bool {
		m := int(mRaw%16) + 1 // zones of 1..16 bits
		d := ID{hi, lo}
		zone := d.ZonePrefix(m)
		suffix := d.Suffix(m)
		return MakeZoned(zone, m, suffix) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZonePrefixKnown(t *testing.T) {
	d := ID{Hi: 0xC000000000000000, Lo: 0}
	if got := d.ZonePrefix(2); got != 3 {
		t.Fatalf("zone = %d want 3", got)
	}
	if got := d.ZonePrefix(4); got != 0xC {
		t.Fatalf("zone = %d want 12", got)
	}
}

func TestBetween(t *testing.T) {
	a := ID{0, 10}
	b := ID{0, 20}
	if !Between(ID{0, 15}, a, b) {
		t.Fatal("15 should be in (10,20]")
	}
	if !Between(ID{0, 20}, a, b) {
		t.Fatal("20 should be in (10,20]")
	}
	if Between(ID{0, 10}, a, b) {
		t.Fatal("10 should not be in (10,20]")
	}
	if Between(ID{0, 25}, a, b) {
		t.Fatal("25 should not be in (10,20]")
	}
	// Wrap-around arc.
	if !Between(ID{0, 5}, b, a) {
		t.Fatal("5 should be in (20,10] across the wrap")
	}
}

func TestCloserTotalOrder(t *testing.T) {
	// For any key and two distinct ids, exactly one is closer.
	f := func(khi, klo, ahi, alo, bhi, blo uint64) bool {
		k, a, b := ID{khi, klo}, ID{ahi, alo}, ID{bhi, blo}
		if a == b {
			return !Closer(k, a, b) && !Closer(k, b, a)
		}
		return Closer(k, a, b) != Closer(k, b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashDeterministicAndDistinct(t *testing.T) {
	a := Hash("activity-recognition", "ownerA")
	b := Hash("activity-recognition", "ownerA")
	c := Hash("activity-recognition", "ownerB")
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if a == c {
		t.Fatal("hash collision for different inputs")
	}
	// Separator byte prevents concatenation ambiguity.
	if Hash("ab", "c") == Hash("a", "bc") {
		t.Fatal("hash ambiguity between part boundaries")
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		d := ID{hi, lo}
		b := d.Bytes()
		return FromBytes(b[:]) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringLen(t *testing.T) {
	d := ID{Hi: 1, Lo: 2}
	if len(d.String()) != 32 {
		t.Fatalf("hex length = %d", len(d.String()))
	}
}
