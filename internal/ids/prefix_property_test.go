package ids

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCommonPrefixDigitConsistency: CommonPrefix(a,b,B)=k means the first k
// digits agree and (when k < NumDigits) digit k differs.
func TestCommonPrefixDigitConsistency(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64, bRaw uint8) bool {
		b := int(bRaw%5) + 2 // bases 2..6
		a, o := ID{ahi, alo}, ID{bhi, blo}
		k := CommonPrefix(a, o, b)
		for i := 0; i < k; i++ {
			if a.Digit(i, b) != o.Digit(i, b) {
				return false
			}
		}
		if k < NumDigits(b) {
			return a.Digit(k, b) != o.Digit(k, b)
		}
		return a == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWithDigitSharesExactPrefix: a value synthesized with WithDigit(i,b,v)
// shares exactly the first i digits with the source when v differs from the
// source's i-th digit.
func TestWithDigitSharesExactPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		b := 2 + rng.Intn(4)
		d := Random(rng)
		i := rng.Intn(NumDigits(b) - 1)
		v := (d.Digit(i, b) + 1 + rng.Intn((1<<uint(b))-1)) % (1 << uint(b))
		if v == d.Digit(i, b) {
			continue
		}
		syn := d.WithDigit(i, b, v)
		if got := CommonPrefix(d, syn, b); got != i {
			t.Fatalf("b=%d i=%d: common prefix %d", b, i, got)
		}
	}
}

// TestAddSubDistMetricProperties: Dist satisfies identity and a triangle
// inequality on the ring (up to wraparound min).
func TestAddSubDistMetricProperties(t *testing.T) {
	f := func(ahi, alo, bhi, blo uint64) bool {
		a, o := ID{ahi, alo}, ID{bhi, blo}
		if Dist(a, a) != (ID{}) {
			return false
		}
		// Shifting both points by the same offset preserves distance.
		off := ID{Hi: 0xdeadbeef, Lo: 0x12345678}
		return Dist(a.Add(off), o.Add(off)) == Dist(a, o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
