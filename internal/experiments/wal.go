package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"totoro/internal/ids"
	"totoro/internal/store"
	"totoro/internal/store/wal"
	"totoro/internal/wire/codec"
)

// This file measures the durable-state layer (internal/store): append
// latency/throughput of the file-backed WAL under both sync modes and on
// both dominant record shapes (the tiny per-round marker the engine
// journals before every round, and a model-sized state image), plus the
// cold-recovery cost of rebooting from snapshot + journal tail.
// cmd/totoro-bench -exp wal prints the rows and emits BENCH_wal.json.

// walBenchRound mirrors the engine's per-round journal record: the
// smallest, most frequent append on the hot path.
type walBenchRound struct {
	App   ids.ID
	Round int
}

// walBenchImage mirrors a snapshot-sized record: a dense model image.
type walBenchImage struct {
	Params []float64
}

// Bench-local codec tags. The bench binary links the engine (tags 64–76);
// these stay clear of that block and of the test-only tags (200, 240+).
const (
	tagWalBenchRound = 120
	tagWalBenchImage = 121
)

var walBenchRegister sync.Once

func walBenchInit() {
	walBenchRegister.Do(func() {
		codec.RegisterCodec(tagWalBenchRound, walBenchRound{},
			func(e *codec.Enc, v any) {
				r := v.(walBenchRound)
				e.ID(r.App)
				e.Varint(int64(r.Round))
			},
			func(d *codec.Dec) any {
				return walBenchRound{App: d.ID(), Round: int(d.Varint())}
			})
		codec.RegisterCodec(tagWalBenchImage, walBenchImage{},
			func(e *codec.Enc, v any) { e.Float64s(v.(walBenchImage).Params) },
			func(d *codec.Dec) any { return walBenchImage{Params: d.Float64s()} })
		store.RegisterRecords(walBenchRound{}, walBenchImage{})
	})
}

// walBenchAppenders is RunParallel's per-CPU goroutine multiplier for
// the group-commit rows.
const walBenchAppenders = 8

func walBenchParams(n int) []float64 {
	params := make([]float64, n)
	for i := range params {
		params[i] = float64(i%89) * 0.017
	}
	return params
}

// WALBenchRow is one append measurement on the file-backed store.
type WALBenchRow struct {
	Op          string  // "append-round", "append-image10k", "append-round-concurrent"
	Sync        bool    // fsync per append
	Batched     bool    // group commit: concurrent appenders share fsyncs
	Par         int     // concurrent appender goroutines (1 = serial)
	NsPerOp     float64 //
	AppendsPerS float64
	MBPerSec    float64 // payload throughput (image rows)
	BytesPerOp  int64   // heap bytes allocated per op
	AllocsPerOp int64
}

func walAppendBench(syncEach bool, rec any, payload int) func(b *testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "totoro-walbench-*")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir, store.FileConfig{Sync: syncEach})
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		b.ReportAllocs()
		b.SetBytes(int64(payload))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// walGroupBench measures synchronous appends issued by concurrent
// goroutines straight against the wal.Writer, batched (group commit:
// lock-leader shared fsyncs) or unbatched (every appender fsyncs its own
// record). The body is a round-marker-sized frame — the engine's hot
// path and the case -wal-sync makes expensive.
func walGroupBench(group bool, body []byte) func(b *testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "totoro-walgroup-*")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		w, _, err := wal.Open(filepath.Join(dir, "wal.log"), true)
		if err != nil {
			b.Fatal(err)
		}
		defer w.Close()
		w.SetGroupCommit(group)
		b.ReportAllocs()
		// Appenders beyond GOMAXPROCS still overlap: a synchronous append
		// parks in fsync, not on a CPU, so even a single-core host sees the
		// group form.
		b.SetParallelism(walBenchAppenders)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := w.Append(body); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
}

// WALAppendBench measures WAL append cost for the round-marker record and
// a 10k-parameter model image, with and without per-append fsync, plus
// the group-commit rows: concurrent synchronous appenders with and
// without shared fsyncs.
func WALAppendBench(o Options) []WALBenchRow {
	walBenchInit()
	round := walBenchRound{App: ids.ID{Hi: 1, Lo: 2}, Round: 42}
	nImage := 10000
	if o.Short {
		nImage = 2000
	}
	image := walBenchImage{Params: walBenchParams(nImage)}
	imgPayload := 8 * nImage

	row := func(op string, syncEach bool, rec any, payload int) WALBenchRow {
		r := testing.Benchmark(walAppendBench(syncEach, rec, payload))
		out := WALBenchRow{
			Op: op, Sync: syncEach,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if r.NsPerOp() > 0 {
			out.AppendsPerS = 1e9 / float64(r.NsPerOp())
		}
		if r.Bytes > 0 && r.T > 0 {
			out.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
		}
		return out
	}
	rows := []WALBenchRow{
		row("append-round", false, round, 16),
		row("append-image10k", false, image, imgPayload),
		row("append-round", true, round, 16),
		row("append-image10k", true, image, imgPayload),
	}

	// Group-commit comparison: walBenchAppenders×GOMAXPROCS concurrent
	// appenders; batched mode shares fsyncs across them.
	par := walBenchAppenders * runtime.GOMAXPROCS(0)
	body := make([]byte, 16)
	groupRow := func(batched bool) WALBenchRow {
		r := testing.Benchmark(walGroupBench(batched, body))
		out := WALBenchRow{
			Op: "append-round-concurrent", Sync: true, Batched: batched, Par: par,
			NsPerOp:     float64(r.NsPerOp()),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if r.NsPerOp() > 0 {
			out.AppendsPerS = 1e9 / float64(r.NsPerOp())
		}
		return out
	}
	rows = append(rows, groupRow(false), groupRow(true))
	for i := range rows {
		if rows[i].Par == 0 {
			rows[i].Par = 1
		}
	}
	return rows
}

// WALRecoveryRow is one cold-recovery measurement: reopen a data
// directory holding one model snapshot plus a journal tail and replay it.
type WALRecoveryRow struct {
	TailRecords int   // records appended after the snapshot
	Replayed    int   // records the reopened store handed back
	WALBytes    int64 // journal size on disk at reopen
	RecoveryMs  float64
}

// WALColdRecovery measures boot-time recovery cost as a function of
// journal-tail length: open + snapshot read + full tail replay, the exact
// work totoro-node does before rejoining the overlay.
func WALColdRecovery(o Options) ([]WALRecoveryRow, error) {
	walBenchInit()
	tails := []int{100, 1000, 10000}
	if o.Short {
		tails = []int{100, 1000}
	}
	image := walBenchImage{Params: walBenchParams(10000)}
	var out []WALRecoveryRow
	for _, n := range tails {
		dir, err := os.MkdirTemp("", "totoro-walrecover-*")
		if err != nil {
			return nil, err
		}
		st, err := store.Open(dir, store.FileConfig{})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		if err := st.Snapshot(image); err != nil {
			st.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		for i := 0; i < n; i++ {
			if err := st.Append(walBenchRound{App: ids.ID{Hi: 1, Lo: 2}, Round: i}); err != nil {
				st.Close()
				os.RemoveAll(dir)
				return nil, err
			}
		}
		if err := st.Close(); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}

		start := time.Now()
		st2, err := store.Open(dir, store.FileConfig{})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		_, recs, err := st2.Load()
		elapsed := time.Since(start)
		walBytes := st2.WALSize()
		st2.Close()
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, WALRecoveryRow{
			TailRecords: n,
			Replayed:    len(recs),
			WALBytes:    walBytes,
			RecoveryMs:  float64(elapsed.Nanoseconds()) / 1e6,
		})
	}
	return out, nil
}

// WALReport bundles the durability measurements for BENCH_wal.json.
type WALReport struct {
	Append   []WALBenchRow
	Recovery []WALRecoveryRow
}
