package experiments

import (
	"sort"
	"strconv"
	"time"

	totoro "totoro"
	"totoro/internal/baseline"
	"totoro/internal/ring"
	"totoro/internal/workload"
)

// Table3Row is one row of the time-to-accuracy comparison (Table 3): a
// task, a number of concurrently running applications, and a Totoro tree
// fanout, with the total time to finish every application under each
// engine and the resulting speedups.
type Table3Row struct {
	Task            string
	Apps            int
	Fanout          int
	TotoroSec       float64
	OpenFLSec       float64
	FedScaleSec     float64
	SpeedupOpenFL   float64
	SpeedupFedScale float64
}

// CurvePoint is one (time, mean-accuracy) sample of a training run — the
// Fig 8/9 accuracy-over-time series.
type CurvePoint struct {
	Sec     float64
	MeanAcc float64
}

// Table3Result bundles the table with the Fig 8/9 curves (keyed by
// "system/task/apps", e.g. "totoro/speech/10").
type Table3Result struct {
	Rows   []Table3Row
	Curves map[string][]CurvePoint
}

// table3Workload builds the concurrent-application workload for one cell.
func table3Workload(task workload.Task, apps int, o Options) []*workload.App {
	clients, samples := 16, 50
	if o.Short {
		clients, samples = 8, 30
	}
	as := workload.MakeApps(workload.Params{
		Task:             task,
		Apps:             apps,
		ClientsPerApp:    clients,
		SamplesPerClient: samples,
		Seed:             o.Seed + int64(apps)*1000,
	})
	if o.Short {
		for _, a := range as {
			a.MaxRounds = 10
			a.TargetAccuracy = 0.35
		}
	}
	return as
}

// Table3 reproduces the paper's time-to-accuracy comparison: 5–20 models
// are trained simultaneously on the same platform under Totoro (fanouts
// 8, 16, 32) and under the OpenFL-like and FedScale-like centralized
// baselines. Speedups grow with the number of concurrent applications
// because the centralized coordinator handles apps one by one while
// Totoro's per-app masters run in parallel (§7.4).
func Table3(o Options) Table3Result {
	res := Table3Result{Curves: map[string][]CurvePoint{}}
	tasks := []workload.Task{workload.TaskSpeech, workload.TaskFEMNIST}
	appCounts := []int{5, 10, 20}
	fanouts := []int{8, 16, 32}
	if o.Short {
		appCounts = []int{3, 6}
		fanouts = []int{16}
	}
	for _, task := range tasks {
		for _, apps := range appCounts {
			central := map[string]time.Duration{}
			for _, prof := range []baseline.Profile{baseline.OpenFL(), baseline.FedScale()} {
				ws := table3Workload(task, apps, o)
				dur, curve := runCentral(ws, prof, o)
				central[prof.Name] = dur
				res.Curves[prof.Name+"/"+string(task)+"/"+itoa(apps)] = curve
			}
			for _, fanout := range fanouts {
				ws := table3Workload(task, apps, o)
				dur, curve := runTotoro(ws, fanout, o)
				if fanout == fanouts[len(fanouts)-1] {
					res.Curves["totoro/"+string(task)+"/"+itoa(apps)] = curve
				}
				res.Rows = append(res.Rows, Table3Row{
					Task:            string(task),
					Apps:            apps,
					Fanout:          fanout,
					TotoroSec:       dur.Seconds(),
					OpenFLSec:       central["openfl"].Seconds(),
					FedScaleSec:     central["fedscale"].Seconds(),
					SpeedupOpenFL:   central["openfl"].Seconds() / dur.Seconds(),
					SpeedupFedScale: central["fedscale"].Seconds() / dur.Seconds(),
				})
			}
		}
	}
	return res
}

// runCentral trains the workload on a centralized baseline and returns the
// total completion time (all apps) plus the mean-accuracy curve.
func runCentral(apps []*workload.App, prof baseline.Profile, o Options) (time.Duration, []CurvePoint) {
	nodes := 300
	if o.Short {
		nodes = 60
	}
	e := baseline.New(apps, baseline.Config{Profile: prof, ClientNodes: nodes, Seed: o.Seed})
	progress := e.Run()
	return totalDone(progress), meanCurve(progress)
}

// runTotoro trains the workload on a Totoro cluster with the given tree
// fanout and returns total completion time plus the mean-accuracy curve.
func runTotoro(apps []*workload.App, fanout int, o Options) (time.Duration, []CurvePoint) {
	b := 4
	switch fanout {
	case 8:
		b = 3
	case 16:
		b = 4
	case 32:
		b = 5
	}
	nodes := 300
	if o.Short {
		nodes = 60
	}
	c := totoro.NewCluster(totoro.ClusterConfig{
		N:         nodes,
		Seed:      o.Seed,
		Ring:      ring.Config{B: b},
		Bandwidth: 2 << 20,
	})
	var appIDs []totoro.AppID
	for _, a := range apps {
		appIDs = append(appIDs, c.DeployOnRandomNodes(a))
	}
	progress := c.Train(appIDs...)
	return totalDone(progress), meanCurve(progress)
}

func totalDone(progress []*workload.Progress) time.Duration {
	var worst time.Duration
	for _, p := range progress {
		if p.Done > worst {
			worst = p.Done
		}
	}
	return worst
}

// meanCurve merges per-app trajectories into a single mean-accuracy-over-
// time curve: at every recorded instant, each app contributes its latest
// accuracy so far.
func meanCurve(progress []*workload.Progress) []CurvePoint {
	type ev struct {
		t   time.Duration
		app int
		acc float64
	}
	var evs []ev
	for i, p := range progress {
		for _, pt := range p.Points {
			evs = append(evs, ev{t: pt.Time, app: i, acc: pt.Accuracy})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
	latest := make([]float64, len(progress))
	var out []CurvePoint
	for _, e := range evs {
		latest[e.app] = e.acc
		sum := 0.0
		for _, a := range latest {
			sum += a
		}
		out = append(out, CurvePoint{Sec: e.t.Seconds(), MeanAcc: sum / float64(len(latest))})
	}
	return out
}

func itoa(v int) string { return strconv.Itoa(v) }
