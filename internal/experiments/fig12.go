package experiments

import (
	"fmt"
	"time"

	"totoro/internal/ids"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/transport"
)

// RecoveryRow is one point of Fig 12: with 5% of every tree's nodes
// failing simultaneously, the time until every surviving member is
// re-attached.
type RecoveryRow struct {
	Trees       int
	FailedNodes int
	RecoveryMs  float64
	// RepairJoins counts the re-join attempts the pub/sub layer made during
	// the repair window, summed from the nodes' telemetry registries.
	RepairJoins int
}

// Fig12Recovery fails 5% of the membership of an exponentially increasing
// number of dataflow trees at the same instant and measures how long the
// keep-alive-driven parallel repair takes (§4.5): recovery time stays
// stable because every orphan re-joins through its own overlay route, with
// no central coordinator in the loop.
func Fig12Recovery(o Options) []RecoveryRow {
	treeCounts := []int{2, 4, 8, 16, 32}
	if o.Short {
		treeCounts = []int{2, 8}
	}
	var out []RecoveryRow
	for _, trees := range treeCounts {
		out = append(out, recoveryRun(o, trees))
	}
	return out
}

func recoveryRun(o Options, trees int) RecoveryRow {
	const (
		nodes       = 400
		subsPerTree = 60
		kaInterval  = 50 * time.Millisecond
		kaTimeout   = 150 * time.Millisecond
	)
	f := newForest(forestConfig{
		N:    nodes,
		Ring: ring.Config{B: 4, ReliableHops: true, HopAckTimeout: 100 * time.Millisecond},
		PubSub: pubsub.Config{
			KeepAliveInterval: kaInterval,
			KeepAliveTimeout:  kaTimeout,
		},
		Seed: o.Seed + int64(trees),
	})
	topics := make([]ids.ID, trees)
	for t := range topics {
		topics[t] = ids.Hash("fig12-app", fmt.Sprint(trees), fmt.Sprint(t))
		f.subscribeDistinct(topics[t], subsPerTree)
	}
	// Let keep-alives reach steady state.
	f.Net.Run(f.Net.Now() + 500*time.Millisecond)

	// Fail 5% of each tree's members (union across trees), sparing roots so
	// that each tree keeps a rendezvous to repair toward.
	failed := map[transport.Addr]bool{}
	for _, topic := range topics {
		var members []*stack
		for _, s := range f.Stacks {
			if info, ok := s.PS.TreeInfo(topic); ok && info.Attached && !info.IsRoot {
				members = append(members, s)
			}
		}
		f.RNG.Shuffle(len(members), func(i, j int) { members[i], members[j] = members[j], members[i] })
		for i := 0; i < len(members)/20; i++ {
			failed[members[i].Ring.Self().Addr] = true
		}
	}
	for addr := range failed {
		f.Net.Fail(addr)
	}
	failAt := f.Net.Now()
	repairsBefore := f.counterSum("pubsub.repairs")

	// Advance in small steps until every live member of every tree has a
	// fully live parent chain to its root.
	deadline := failAt + 30*time.Second
	for f.Net.Now() < deadline {
		f.Net.Run(f.Net.Now() + 20*time.Millisecond)
		if f.allRepaired(topics, failed) {
			break
		}
	}
	return RecoveryRow{
		Trees:       trees,
		FailedNodes: len(failed),
		RecoveryMs:  float64(f.Net.Now()-failAt) / float64(time.Millisecond),
		RepairJoins: int(f.counterSum("pubsub.repairs") - repairsBefore),
	}
}

// allRepaired reports whether every live subscriber of every topic has an
// unbroken live parent chain to a root.
func (f *forest) allRepaired(topics []ids.ID, failed map[transport.Addr]bool) bool {
	for _, topic := range topics {
		for _, s := range f.Stacks {
			addr := s.Ring.Self().Addr
			if failed[addr] {
				continue
			}
			info, ok := s.PS.TreeInfo(topic)
			if !ok || !info.Subscribed {
				continue
			}
			cur := s
			for hops := 0; ; hops++ {
				ci, ok := cur.PS.TreeInfo(topic)
				if !ok || !ci.Attached {
					return false
				}
				if ci.IsRoot {
					break
				}
				if failed[ci.Parent.Addr] {
					return false
				}
				next, ok := f.ByAddr[ci.Parent.Addr]
				if !ok || hops > len(f.Stacks) {
					return false
				}
				cur = next
			}
		}
	}
	return true
}
