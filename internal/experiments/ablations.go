package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"totoro/internal/fl"
	"totoro/internal/ids"
	"totoro/internal/ml"
	"totoro/internal/obs"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
)

// AggregationAblationRow compares in-network aggregation against naive
// leaf-to-root uploads for one tree size.
type AggregationAblationRow struct {
	Members           int
	RootBytesInTree   int64 // with in-network aggregation
	RootBytesInDirect int64 // every worker uploads straight to the root
	TreeMs            float64
	DirectMs          float64
}

// AblationInNetworkAggregation quantifies the design choice at the heart
// of the forest abstraction: interior nodes fold updates on the way up, so
// root ingress stays O(fanout) instead of O(members) — the reason a single
// aggregator node never melts (DESIGN.md §5).
func AblationInNetworkAggregation(o Options) []AggregationAblationRow {
	sizes := []int{50, 100, 200, 400}
	if o.Short {
		sizes = []int{50, 150}
	}
	var out []AggregationAblationRow
	for _, n := range sizes {
		out = append(out, aggregationAblationRun(o, n))
	}
	return out
}

func aggregationAblationRun(o Options, n int) AggregationAblationRow {
	const updateBytes = 50 << 10
	topic := ids.Hash("ablation-agg", fmt.Sprint(n))
	f := newForest(forestConfig{
		N:         n + n/2,
		Ring:      ring.Config{B: 4},
		Seed:      o.Seed + int64(n),
		Bandwidth: 2 << 20,
	})
	f.subscribeDistinct(topic, n)
	var root *stack
	for _, s := range f.Stacks {
		if info, ok := s.PS.TreeInfo(topic); ok && info.IsRoot {
			root = s
			break
		}
	}
	rootAddr := root.Ring.Self().Addr

	// (a) In-network aggregation up the tree.
	f.Net.ResetTraffic()
	start := f.Net.Now()
	for _, s := range f.Stacks {
		info, ok := s.PS.TreeInfo(topic)
		if !ok || !info.Attached {
			continue
		}
		if info.Subscribed {
			s.PS.SubmitUpdate(topic, 1, modelObj{Bytes: updateBytes})
		} else {
			s.PS.SubmitUpdate(topic, 1, nil)
		}
	}
	f.Net.RunUntilIdle()
	var aggDone time.Duration
	for _, e := range f.mergedTrace() {
		if e.Kind == obs.KindPubSubAgg && e.Note == "root" && e.Key == topic.String() &&
			e.At >= start && e.At > aggDone {
			aggDone = e.At
		}
	}
	treeMs := float64(aggDone-start) / float64(time.Millisecond)
	rootBytesTree := f.Net.MetricsOf(rootAddr).Counter(simnet.CtrBytesIn).Value()

	// (b) Naive: every subscriber sends its raw update straight to the
	// root over the network.
	f.Net.ResetTraffic()
	start = f.Net.Now()
	var lastArrive time.Duration
	collector := transport.HandlerFunc(func(from transport.Addr, msg any) {
		lastArrive = f.Net.Now()
	})
	sinkAddr := transport.Addr("direct-sink")
	f.Net.AddNode(sinkAddr, func(e transport.Env) transport.Handler { return collector })
	f.Net.SetBandwidth(sinkAddr, 2<<20)
	for i, s := range f.Stacks {
		info, ok := s.PS.TreeInfo(topic)
		if !ok || !info.Subscribed {
			continue
		}
		f.Envs[i].Send(sinkAddr, modelObj{Bytes: updateBytes})
	}
	f.Net.RunUntilIdle()
	directMs := float64(lastArrive-start) / float64(time.Millisecond)
	rootBytesDirect := f.Net.MetricsOf(sinkAddr).Counter(simnet.CtrBytesIn).Value()

	return AggregationAblationRow{
		Members:           n,
		RootBytesInTree:   rootBytesTree,
		RootBytesInDirect: rootBytesDirect,
		TreeMs:            treeMs,
		DirectMs:          directMs,
	}
}

// MultiRingAblationRow compares cross-zone traffic with and without the
// zone-prefixed ID structure.
type MultiRingAblationRow struct {
	Scheme         string
	CrossZoneBytes int64
	IntraZoneBytes int64
	CrossZoneShare float64
}

// AblationMultiRing measures the fraction of tree-construction traffic
// that crosses zone boundaries when AppIDs and NodeIDs carry zone prefixes
// (the multi-ring design) versus a single flat ring: with the zone prefix
// equal to the first routing digit, prefix routing keeps zonal traffic
// inside the zone, which is the administrative-isolation property of §4.2.
func AblationMultiRing(o Options) []MultiRingAblationRow {
	const (
		zones    = 8
		zoneBits = 3 // == ring base B so the zone is the first digit
		perZone  = 60
		apps     = 8
		subsPer  = 30
	)
	var out []MultiRingAblationRow
	for _, zoned := range []bool{true, false} {
		name := "flat-ring"
		if zoned {
			name = "multi-ring"
		}
		var cross, intra int64
		zoneOfAddr := map[transport.Addr]int{}
		obs := func(from, to transport.Addr, size int) {
			if zoneOfAddr[from] == zoneOfAddr[to] {
				intra += int64(size)
			} else {
				cross += int64(size)
			}
		}
		f := zonedForest(o.Seed, zones, zoneBits, perZone, zoned, obs, zoneOfAddr)
		for a := 0; a < apps; a++ {
			zone := uint64(a % zones)
			var topic ids.ID
			if zoned {
				topic = ids.MakeZoned(zone, zoneBits, ids.Hash("ablation-mr", fmt.Sprint(a)))
			} else {
				topic = ids.Hash("ablation-mr", fmt.Sprint(a))
			}
			// Subscribers all live in the app's home zone.
			members := 0
			for i, s := range f.Stacks {
				if i/perZone == int(zone) {
					s.PS.Subscribe(topic)
					members++
					if members >= subsPer {
						break
					}
				}
			}
			f.Net.RunUntilIdle()
		}
		total := cross + intra
		share := 0.0
		if total > 0 {
			share = float64(cross) / float64(total)
		}
		out = append(out, MultiRingAblationRow{
			Scheme:         name,
			CrossZoneBytes: cross,
			IntraZoneBytes: intra,
			CrossZoneShare: share,
		})
	}
	return out
}

// zonedForest builds a forest whose node IDs optionally carry zone
// prefixes; zoneOfAddr is filled with each node's zone for the observer.
func zonedForest(seed int64, zones, zoneBits, perZone int, zoned bool,
	obs func(from, to transport.Addr, size int), zoneOfAddr map[transport.Addr]int) *forest {
	rng := rand.New(rand.NewSource(seed))
	f := &forest{
		Net: simnet.New(simnet.Config{
			Seed:     seed,
			Latency:  simnet.ConstLatency(5 * time.Millisecond),
			Observer: obs,
		}),
		ByAddr: map[transport.Addr]*stack{},
		RNG:    rng,
	}
	var ringNodes []*ring.Node
	for z := 0; z < zones; z++ {
		for i := 0; i < perZone; i++ {
			addr := transport.Addr(fmt.Sprintf("z%d-n%d", z, i))
			id := ids.Random(rng)
			if zoned {
				id = ids.MakeZoned(uint64(z), zoneBits, id)
			}
			zoneOfAddr[addr] = z
			s := &stack{}
			f.Net.AddNode(addr, func(e transport.Env) transport.Handler {
				s.Ring = ring.New(e, ring.Contact{ID: id, Addr: addr}, ring.Config{B: zoneBits})
				s.PS = pubsub.New(e, s.Ring, pubsub.Config{})
				return s
			})
			f.Stacks = append(f.Stacks, s)
			f.ByAddr[addr] = s
			ringNodes = append(ringNodes, s.Ring)
		}
	}
	ring.BuildStatic(ringNodes, rng)
	return f
}

// FedProxRow compares FedAvg and FedProx accuracy under non-IID skew.
type FedProxRow struct {
	Alpha      float64
	FedAvgAcc  float64
	FedProxAcc float64
}

// AblationFedProx runs the same federated workload under FedAvg and
// FedProx (μ = 0.5) across Dirichlet skew levels — the owner-pluggable
// aggregation policy of §4.3.
func AblationFedProx(o Options) []FedProxRow {
	alphas := []float64{0.05, 0.5, 5.0}
	rounds := 15
	if o.Short {
		alphas = []float64{0.1}
		rounds = 8
	}
	var out []FedProxRow
	for _, alpha := range alphas {
		rng := rand.New(rand.NewSource(o.Seed))
		full := ml.SyntheticClusters(10, 24, 4000, 0.45, rng)
		train, test := full.Split(0.2, rng)
		clients := ml.DirichletPartition(train, 16, alpha, rng)
		run := func(mu float64) float64 {
			proto := ml.NewMLP([]int{24, 32, 10}, rand.New(rand.NewSource(o.Seed+7)))
			s := fl.NewSession(proto, clients, test,
				fl.ClientConfig{LocalEpochs: 3, LR: 0.1, BatchSize: 20, ProxMu: mu}, nil, nil)
			r := rand.New(rand.NewSource(o.Seed + 11))
			acc := 0.0
			for i := 0; i < rounds; i++ {
				acc = s.Round(8, r).Accuracy
			}
			return acc
		}
		out = append(out, FedProxRow{Alpha: alpha, FedAvgAcc: run(0), FedProxAcc: run(0.5)})
	}
	return out
}
