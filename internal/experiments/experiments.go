// Package experiments regenerates every table and figure of the paper's
// evaluation (§7). Each Fig*/Table* function is deterministic given its
// options and returns typed rows; cmd/totoro-bench prints them and
// bench_test.go wraps them as benchmarks. The per-experiment index lives
// in DESIGN.md; paper-vs-measured results are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"totoro/internal/ids"
	"totoro/internal/obs"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
)

// Options scales the experiment suite.
type Options struct {
	Seed int64
	// Short shrinks the workloads for quick runs (used by `go test -short`
	// and CI); the full sizes mirror the paper's configurations.
	Short bool
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options { return Options{Seed: 20240422} }

// --- shared mini-harness: a raw ring+pub/sub forest (no FL driver) ---

// stack couples one ring node with one pub/sub node.
type stack struct {
	Ring *ring.Node
	PS   *pubsub.Node
}

// Receive implements transport.Handler.
func (s *stack) Receive(from transport.Addr, msg any) {
	if _, ok := msg.(ring.Message); ok {
		s.Ring.Receive(from, msg)
		return
	}
	s.PS.Receive(from, msg)
}

// forest is a population of stacks on a simulated network.
type forest struct {
	Net    *simnet.Network
	Stacks []*stack
	Envs   []transport.Env
	ByAddr map[transport.Addr]*stack
	RNG    *rand.Rand
	// keepAlive > 0 means periodic timers never drain; settle runs a
	// bounded window instead of draining the queue.
	keepAlive time.Duration
}

// settle advances the network until quiescent: with keep-alives enabled it
// runs a bounded window (timers never drain), otherwise it drains the
// event queue.
func (f *forest) settle() {
	if f.keepAlive > 0 {
		f.Net.Run(f.Net.Now() + 4*f.keepAlive)
		return
	}
	f.Net.RunUntilIdle()
}

type forestConfig struct {
	N         int
	Ring      ring.Config
	PubSub    pubsub.Config
	Seed      int64
	Latency   time.Duration
	Bandwidth int64
}

func newForest(cfg forestConfig) *forest {
	if cfg.Latency == 0 {
		cfg.Latency = 5 * time.Millisecond
	}
	f := &forest{
		Net: simnet.New(simnet.Config{
			Seed:             cfg.Seed,
			Latency:          simnet.ConstLatency(cfg.Latency),
			DefaultBandwidth: cfg.Bandwidth,
		}),
		ByAddr:    make(map[transport.Addr]*stack),
		RNG:       rand.New(rand.NewSource(cfg.Seed)),
		keepAlive: cfg.PubSub.KeepAliveInterval,
	}
	var ringNodes []*ring.Node
	for i := 0; i < cfg.N; i++ {
		addr := transport.Addr(fmt.Sprintf("n%d", i))
		id := ids.Random(f.RNG)
		s := &stack{}
		env := f.Net.AddNode(addr, func(e transport.Env) transport.Handler {
			s.Ring = ring.New(e, ring.Contact{ID: id, Addr: addr}, cfg.Ring)
			s.PS = pubsub.New(e, s.Ring, cfg.PubSub)
			return s
		})
		f.Stacks = append(f.Stacks, s)
		f.Envs = append(f.Envs, env)
		f.ByAddr[addr] = s
		ringNodes = append(ringNodes, s.Ring)
	}
	ring.BuildStatic(ringNodes, f.RNG)
	return f
}

// counterSum sums one named counter across every node's telemetry
// registry — the figures read their numbers from here instead of keeping
// private tallies.
func (f *forest) counterSum(name string) int64 {
	var total int64
	for _, env := range f.Envs {
		total += env.Metrics().Counter(name).Value()
	}
	return total
}

// mergedTrace is the fleet-wide trace timeline in virtual-time order.
func (f *forest) mergedTrace() []obs.Event { return f.Net.MergedTrace() }

// mergedSnapshot merges every node's telemetry registry into one fleet
// snapshot. Paired with Snapshot.Delta it gives windowed measurements
// (fig 7's maintenance traffic) without resetting live counters.
func (f *forest) mergedSnapshot() obs.Snapshot {
	snaps := make([]obs.Snapshot, len(f.Envs))
	for i, env := range f.Envs {
		snaps[i] = env.Metrics().Snapshot()
	}
	return obs.MergeSnapshots(snaps...)
}

// subscribeDistinct subscribes k distinct random nodes to topic and waits
// for the tree to settle; it returns the chosen indices.
func (f *forest) subscribeDistinct(topic ids.ID, k int) []int {
	perm := f.RNG.Perm(len(f.Stacks))[:k]
	for _, i := range perm {
		f.Stacks[i].PS.Subscribe(topic)
	}
	f.settle()
	return perm
}

// treeLevels walks one tree from its root and returns the node count per
// depth level.
func (f *forest) treeLevels(topic ids.ID) []int {
	var root *stack
	for _, s := range f.Stacks {
		if info, ok := s.PS.TreeInfo(topic); ok && info.IsRoot {
			root = s
			break
		}
	}
	if root == nil {
		return nil
	}
	levels := []int{}
	frontier := []*stack{root}
	for len(frontier) > 0 {
		levels = append(levels, len(frontier))
		var next []*stack
		for _, s := range frontier {
			info, _ := s.PS.TreeInfo(topic)
			for _, c := range info.Children {
				if child, ok := f.ByAddr[c.Addr]; ok {
					next = append(next, child)
				}
			}
		}
		frontier = next
	}
	return levels
}

// modelObj is a payload with an explicit wire size, standing in for a
// serialized model or gradient.
type modelObj struct{ Bytes int }

// WireSize implements transport.Sized.
func (m modelObj) WireSize() int { return m.Bytes }
