package experiments

import (
	"fmt"
	"slices"
	"time"

	"totoro/internal/relay"
	"totoro/internal/simnet"
	"totoro/internal/transport"
)

// RelayRow compares the distributed bandit relay (the in-network §5
// implementation) against the greedy next-hop baseline on one lossy relay
// fabric.
type RelayRow struct {
	Policy        string
	Delivered     int
	MeanDelayMs   float64
	P95DelayMs    float64
	Retransmits   int
	GoodPathShare float64 // fraction of frames that avoided the trap hop
}

// AblationAdaptiveRelay runs K gradient-sized frames from a worker to a
// master across a two-relay fabric whose shiny first hop hides a terrible
// second hop, under both planning policies. The distributed KL-UCB
// planner (per-hop acks for semi-bandit feedback, distance-vector J
// adverts) should deliver with a lower mean delay and route around the
// trap; the greedy baseline should not.
func AblationAdaptiveRelay(o Options) []RelayRow {
	k := 1500
	if o.Short {
		k = 400
	}
	var out []RelayRow
	for _, policy := range []string{"totoro", "greedy"} {
		out = append(out, relayRun(o, policy, k))
	}
	return out
}

func relayRun(o Options, policy string, K int) RelayRow {
	const slot = 10 * time.Millisecond
	topo := map[transport.Addr][]transport.Addr{
		"worker": {"relayA", "relayB"},
		"relayA": {"master"},
		"relayB": {"master"},
		"master": {},
	}
	theta := map[string]float64{
		"worker>relayA": 0.95, "relayA>master": 0.15,
		"worker>relayB": 0.60, "relayB>master": 0.90,
	}
	net := simnet.New(simnet.Config{
		Seed:    o.Seed,
		Latency: simnet.ConstLatency(time.Millisecond),
		Loss: func(a, b transport.Addr) float64 {
			if th, ok := theta[string(a)+">"+string(b)]; ok {
				return 1 - th
			}
			return 0
		},
	})
	// Iterate the topology in sorted order everywhere below: node factories
	// fire the relays' first adverts as they register, so registration in
	// map order would enqueue sends in a different order every run and
	// break same-seed reproducibility (totoro-vet: maporder).
	addrs := make([]transport.Addr, 0, len(topo))
	for a := range topo {
		addrs = append(addrs, a)
	}
	slices.Sort(addrs)
	inOf := map[transport.Addr][]transport.Addr{}
	for _, src := range addrs {
		for _, dst := range topo[src] {
			inOf[dst] = append(inOf[dst], src)
		}
	}
	nodes := map[transport.Addr]*relay.Node{}
	type arrival struct {
		at  time.Duration
		via transport.Addr
		id  int
	}
	var arrivals []arrival
	for _, addr := range addrs {
		addr, nbs := addr, topo[addr]
		net.AddNode(addr, func(e transport.Env) transport.Handler {
			n := relay.New(e, relay.Config{
				Neighbors:   nbs,
				InNeighbors: inOf[addr],
				AckTimeout:  slot,
				Policy:      policy,
			}, func(d relay.Data) {
				via := transport.Addr("")
				if len(d.Visited) > 1 {
					via = d.Visited[1]
				}
				arrivals = append(arrivals, arrival{at: e.Now(), via: via, id: d.Payload.(int)})
			})
			nodes[addr] = n
			return transport.HandlerFunc(func(from transport.Addr, msg any) { n.Receive(from, msg) })
		})
	}
	advertise := func(rounds int) {
		for i := 0; i < rounds; i++ {
			for _, a := range addrs {
				nodes[a].AdvertiseNow()
			}
			net.RunUntilIdle()
		}
	}
	advertise(3)

	sendTimes := make([]time.Duration, K)
	for i := 0; i < K; i++ {
		sendTimes[i] = net.Now()
		nodes["worker"].Send("master", i)
		net.RunUntilIdle()
		if i%25 == 0 {
			advertise(1)
		}
	}
	delays := make([]float64, 0, len(arrivals))
	goodPath := 0
	for _, a := range arrivals {
		delays = append(delays, float64(a.at-sendTimes[a.id])/float64(time.Millisecond))
		if a.via == "relayB" {
			goodPath++
		}
	}
	row := RelayRow{
		Policy:    policy,
		Delivered: len(arrivals),
		Retransmits: int(nodes["worker"].Metrics().Counter("relay.retransmits").Value() +
			nodes["relayA"].Metrics().Counter("relay.retransmits").Value() +
			nodes["relayB"].Metrics().Counter("relay.retransmits").Value()),
	}
	if len(delays) > 0 {
		sum := 0.0
		for _, d := range delays {
			sum += d
		}
		row.MeanDelayMs = sum / float64(len(delays))
		row.P95DelayMs = percentile(delays, 0.95)
		row.GoodPathShare = float64(goodPath) / float64(len(delays))
	}
	return row
}

func percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	// insertion sort is fine at this size
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// String renders a row for the CLI.
func (r RelayRow) String() string {
	return fmt.Sprintf("%-7s delivered %4d  mean %6.1fms  p95 %6.1fms  retx %5d  good-path %.2f",
		r.Policy, r.Delivered, r.MeanDelayMs, r.P95DelayMs, r.Retransmits, r.GoodPathShare)
}
