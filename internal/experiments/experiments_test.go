package experiments

import (
	"testing"

	"totoro/internal/ids"
	"totoro/internal/obs"
	"totoro/internal/ring"
)

// TestRingPathReconstructedFromTrace routes one message across the forest
// and rebuilds its full node-by-node path from the hop-trace records in the
// merged telemetry timeline: every hop recorded an event, the hops chain
// (each hop's To is the next hop's Node), and the chain ends at the node
// that logged the delivery.
func TestRingPathReconstructedFromTrace(t *testing.T) {
	f := newForest(forestConfig{N: 60, Ring: ring.Config{B: 2}, Seed: 99})
	key := ids.Hash("trace-path", "probe")
	src := f.Stacks[0]
	src.Ring.Route(key, nil)
	f.Net.RunUntilIdle()

	path := obs.PathOf(f.mergedTrace(), key.String())
	if len(path) == 0 {
		t.Fatal("no trace events recorded for the routed key")
	}
	last := path[len(path)-1]
	if last.Kind != obs.KindRingDeliver {
		t.Fatalf("path does not end in a delivery: %s", obs.PathString(path))
	}
	for i := 0; i < len(path)-1; i++ {
		if path[i].Kind != obs.KindRingHop {
			t.Fatalf("interior event %d is %s, want ring.hop: %s", i, path[i].Kind, obs.PathString(path))
		}
		if path[i].To != path[i+1].Node {
			t.Fatalf("hop chain broken at %d (%s -> %s, next node %s): %s",
				i, path[i].Node, path[i].To, path[i+1].Node, obs.PathString(path))
		}
	}
	if path[0].Node != string(src.Ring.Self().Addr) && len(path) > 1 {
		t.Fatalf("path does not start at the source: %s", obs.PathString(path))
	}
	if last.Hop != len(path)-1 {
		t.Fatalf("delivery hop count %d != %d recorded hops: %s",
			last.Hop, len(path)-1, obs.PathString(path))
	}
}

func shortOpts() Options {
	o := DefaultOptions()
	o.Short = true
	return o
}

func TestFig5aZonesCoverPopulation(t *testing.T) {
	rows := Fig5aZones(shortOpts())
	if len(rows) < 4 {
		t.Fatalf("only %d zones", len(rows))
	}
	total := 0
	for _, r := range rows {
		total += r.Members
		if r.Members > 0 && r.Diameter <= 0 && r.Members > 1 {
			t.Fatalf("zone %d has no diameter", r.Zone)
		}
	}
	if total < 4900 {
		t.Fatalf("zones cover only %d nodes", total)
	}
}

func TestFig5bLoadBalance(t *testing.T) {
	res := Fig5bMasterDistribution(shortOpts())
	// The paper: 99.5% of nodes root ≤3 trees (500 trees / 1000 nodes =
	// 0.5 trees per node). Short mode has the same ratio.
	if res.FracAtMost3 < 0.98 {
		t.Fatalf("only %.3f of nodes root ≤3 trees", res.FracAtMost3)
	}
	total := 0
	for _, r := range res.Rows {
		total += r.Nodes
	}
	if total != 300 {
		t.Fatalf("histogram covers %d nodes", total)
	}
}

func TestFig5cMastersScaleWithWorkload(t *testing.T) {
	rows := Fig5cMastersPerZone(shortOpts())
	if len(rows) < 2 {
		t.Fatalf("zones=%d", len(rows))
	}
	// Rows are sorted dense→sparse; the densest zone must host at least as
	// many distinct master nodes as a sparse zone.
	first, last := rows[0], rows[len(rows)-1]
	if first.Apps < last.Apps {
		t.Fatal("apps not proportional to population")
	}
	if first.DistinctMasterNodes == 0 {
		t.Fatal("dense zone has no masters")
	}
	for _, r := range rows {
		if r.MaxMastersPerNode > 4 {
			t.Fatalf("zone %d concentrates %d masters on one node", r.Zone, r.MaxMastersPerNode)
		}
	}
}

func TestFig5dTreesBalanced(t *testing.T) {
	rows := Fig5dTreeBalance(shortOpts())
	// Every tree must have exactly one root and growing levels up to the
	// fanout bound.
	byTree := map[int][]int{}
	for _, r := range rows {
		for len(byTree[r.Tree]) <= r.Level {
			byTree[r.Tree] = append(byTree[r.Tree], 0)
		}
		byTree[r.Tree][r.Level] = r.Nodes
	}
	for tree, levels := range byTree {
		if levels[0] != 1 {
			t.Fatalf("tree %d has %d roots", tree, levels[0])
		}
		if len(levels) < 2 {
			t.Fatalf("tree %d has no depth", tree)
		}
	}
}

func TestFig6LinearInLogN(t *testing.T) {
	rows := Fig6Scale(shortOpts(), 4)
	if len(rows) < 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Membership grows 64×, time must grow far slower (the paper: linear in
	// log N). Allow 8× growth for 64× membership.
	first, last := rows[0], rows[len(rows)-1]
	if last.Members/first.Members < 16 {
		t.Fatal("sweep too narrow")
	}
	if last.DisseminationMs > first.DisseminationMs*8 {
		t.Fatalf("dissemination grew %v -> %v for %d× members",
			first.DisseminationMs, last.DisseminationMs, last.Members/first.Members)
	}
	if last.AggregationMs > first.AggregationMs*8 {
		t.Fatalf("aggregation grew %v -> %v", first.AggregationMs, last.AggregationMs)
	}
	for _, r := range rows {
		if r.DisseminationMs <= 0 || r.AggregationMs <= 0 {
			t.Fatalf("non-positive timing: %+v", r)
		}
	}
}

func TestFig6cLargerFanoutShallower(t *testing.T) {
	rows := Fig6cFanout(shortOpts())
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	if !(rows[0].Depth >= rows[1].Depth && rows[1].Depth >= rows[2].Depth) {
		t.Fatalf("depth not shrinking with fanout: %+v", rows)
	}
	if rows[2].DisseminationMs > rows[0].DisseminationMs {
		t.Fatalf("fanout 32 slower than fanout 8: %+v", rows)
	}
}

func TestFig7TrafficAmortized(t *testing.T) {
	rows := Fig7Traffic(shortOpts())
	last := rows[len(rows)-1]
	if last.Trees != 10 {
		t.Fatalf("last row trees=%d", last.Trees)
	}
	// 10× trees must cost well under 2× traffic (paper: 1.19×/1.29×).
	if last.RatioTCP > 1.8 || last.RatioUDP > 1.9 {
		t.Fatalf("traffic not amortized: TCP %.2f UDP %.2f", last.RatioTCP, last.RatioUDP)
	}
	if last.RatioTCP < 1.0 || last.RatioUDP < 1.0 {
		t.Fatalf("ratios below 1: %+v", last)
	}
	// Both ratios land in the paper's ~1.2–1.3 neighbourhood.
	if last.RatioTCP > 1.5 || last.RatioUDP > 1.5 {
		t.Fatalf("ratios too high: %+v", last)
	}
}

func TestTable3SpeedupsGrowWithApps(t *testing.T) {
	res := Table3(shortOpts())
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Group rows by task; speedup at the larger app count must exceed the
	// smaller one, and all speedups must favor Totoro.
	byTask := map[string][]Table3Row{}
	for _, r := range res.Rows {
		byTask[r.Task] = append(byTask[r.Task], r)
	}
	for task, rows := range byTask {
		last := rows[len(rows)-1]
		// At the larger concurrency, Totoro must win against both
		// baselines, and the speedup must grow with the app count (the
		// paper's crossover sits below 5 concurrent apps).
		if last.SpeedupOpenFL <= 1.0 || last.SpeedupFedScale <= 1.0 {
			t.Fatalf("%s: no speedup at apps=%d: %+v", task, last.Apps, last)
		}
		if last.SpeedupOpenFL <= rows[0].SpeedupOpenFL {
			t.Fatalf("%s: speedup did not grow with apps: %+v", task, rows)
		}
	}
	// Curves exist for each system.
	for _, key := range []string{"totoro/speech/6", "openfl/speech/6", "fedscale/speech/6"} {
		if len(res.Curves[key]) == 0 {
			t.Fatalf("missing curve %s", key)
		}
	}
}

func TestFig10TotoroLowestRegret(t *testing.T) {
	res := Fig10Regret(shortOpts())
	last := func(name string) float64 {
		c := res.Curves[name]
		return c[len(c)-1]
	}
	if !(last("totoro") < last("next-hop") && last("totoro") < last("end-to-end")) {
		t.Fatalf("regret ordering wrong: totoro=%.1f next-hop=%.1f end-to-end=%.1f",
			last("totoro"), last("next-hop"), last("end-to-end"))
	}
}

func TestFig11TotoroFindsBestFastest(t *testing.T) {
	grids := Fig11PathFrequencies(shortOpts())
	byName := map[string]FrequencyGrid{}
	for _, g := range grids {
		byName[g.Policy] = g
	}
	// The optimal policy always picks rank 0.
	opt := byName["optimal"]
	for _, row := range opt.Grid {
		if row[0] < 0.999 {
			t.Fatalf("optimal policy row %v", row)
		}
	}
	// Totoro's final-bucket best-path rate beats both baselines'.
	lastRow := func(g FrequencyGrid) float64 { return g.Grid[len(g.Grid)-1][0] }
	if lastRow(byName["totoro"]) <= lastRow(byName["end-to-end"]) {
		t.Fatalf("totoro %.2f not above end-to-end %.2f",
			lastRow(byName["totoro"]), lastRow(byName["end-to-end"]))
	}
}

func TestFig12RecoveryStable(t *testing.T) {
	rows := Fig12Recovery(shortOpts())
	for _, r := range rows {
		if r.RecoveryMs <= 0 || r.RecoveryMs > 10000 {
			t.Fatalf("recovery %v ms for %d trees", r.RecoveryMs, r.Trees)
		}
		// The repair-join count is summed straight from the nodes' telemetry
		// registries; a recovery with zero recorded repairs means the figure
		// is no longer wired to the registry.
		if r.RepairJoins <= 0 {
			t.Fatalf("trees=%d recovered with no registry-recorded repair joins: %+v", r.Trees, r)
		}
	}
	// Stability: 4× the trees may not cost 4× the recovery time.
	first, last := rows[0], rows[len(rows)-1]
	ratio := last.RecoveryMs / first.RecoveryMs
	if ratio > 3 {
		t.Fatalf("recovery scaled with trees: %.1f×", ratio)
	}
}

func TestFig13OverheadShape(t *testing.T) {
	rows := Fig13Overhead(shortOpts())
	var totoroDHT, totoroFL, openflFL float64
	for _, r := range rows {
		switch r.System + "/" + r.Phase {
		case "totoro/dht":
			totoroDHT = r.CPUSec
		case "totoro/fl":
			totoroFL = r.CPUSec
		case "openfl/fl":
			openflFL = r.CPUSec
		}
	}
	if totoroFL <= 0 || openflFL <= 0 {
		t.Fatal("missing measurements")
	}
	// DHT-related work must be a small add-on compared to FL work
	// (the paper: negligible DHT overhead).
	if totoroDHT > totoroFL {
		t.Fatalf("DHT overhead %.3fs exceeds FL work %.3fs", totoroDHT, totoroFL)
	}
}

func TestAblationInNetworkAggregation(t *testing.T) {
	rows := AblationInNetworkAggregation(shortOpts())
	for _, r := range rows {
		if r.RootBytesInTree >= r.RootBytesInDirect {
			t.Fatalf("in-network aggregation did not reduce root ingress: %+v", r)
		}
	}
	// Direct ingress grows linearly with members; tree ingress stays flat.
	first, last := rows[0], rows[len(rows)-1]
	growthDirect := float64(last.RootBytesInDirect) / float64(first.RootBytesInDirect)
	growthTree := float64(last.RootBytesInTree) / float64(first.RootBytesInTree)
	if growthTree > growthDirect/1.5 {
		t.Fatalf("tree ingress grew %.2f× vs direct %.2f×", growthTree, growthDirect)
	}
}

func TestAblationMultiRingIsolation(t *testing.T) {
	rows := AblationMultiRing(shortOpts())
	byScheme := map[string]MultiRingAblationRow{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	mr, flat := byScheme["multi-ring"], byScheme["flat-ring"]
	if mr.CrossZoneShare >= flat.CrossZoneShare {
		t.Fatalf("multi-ring cross-zone share %.3f not below flat %.3f",
			mr.CrossZoneShare, flat.CrossZoneShare)
	}
	if mr.CrossZoneShare > 0.05 {
		t.Fatalf("multi-ring leaks %.1f%% of traffic across zones", mr.CrossZoneShare*100)
	}
}

func TestAblationFedProxRuns(t *testing.T) {
	rows := AblationFedProx(shortOpts())
	for _, r := range rows {
		if r.FedAvgAcc <= 0 || r.FedProxAcc <= 0 {
			t.Fatalf("degenerate accuracies: %+v", r)
		}
	}
}

func TestAblationAdaptiveRelay(t *testing.T) {
	rows := AblationAdaptiveRelay(shortOpts())
	byPolicy := map[string]RelayRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
		if r.Delivered == 0 {
			t.Fatalf("%s delivered nothing", r.Policy)
		}
	}
	tot, greedy := byPolicy["totoro"], byPolicy["greedy"]
	if tot.MeanDelayMs >= greedy.MeanDelayMs {
		t.Fatalf("adaptive relay mean delay %.1fms not below greedy %.1fms",
			tot.MeanDelayMs, greedy.MeanDelayMs)
	}
	if tot.GoodPathShare <= greedy.GoodPathShare {
		t.Fatalf("adaptive relay good-path share %.2f not above greedy %.2f",
			tot.GoodPathShare, greedy.GoodPathShare)
	}
}
