package experiments

import (
	"fmt"
	"time"

	"totoro/internal/ids"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
)

// ScaleRow is one point of Fig 6a/6b: a tree of N members on an edge
// network, with the measured model-dissemination and gradient-aggregation
// times and the tree depth.
type ScaleRow struct {
	Members         int
	Depth           int
	DisseminationMs float64
	AggregationMs   float64
}

// fig6ModelBytes is the serialized model size shipped in the Fig 6
// experiments (a mid-sized edge model).
const fig6ModelBytes = 100 << 10

// Fig6Scale measures Totoro's model dissemination and gradient aggregation
// times for an exponentially increasing number of edge nodes in a single
// training tree (20 → 5120; Fig 6a and 6b): time grows linearly while
// membership grows exponentially because both operations are bounded by
// the O(log N) tree depth.
func Fig6Scale(o Options, b int) []ScaleRow {
	sizes := []int{20, 40, 80, 160, 320, 640, 1280, 2560, 5120}
	if o.Short {
		sizes = []int{20, 80, 320, 1280}
	}
	var out []ScaleRow
	for _, n := range sizes {
		out = append(out, measureTree(o, b, n))
	}
	return out
}

// measureTree builds one tree with n subscribers and times a broadcast and
// an aggregation round over it.
func measureTree(o Options, b, n int) ScaleRow {
	type rec struct {
		lastDeliver time.Duration
		aggDone     time.Duration
	}
	var r rec
	network := n + n/4 + 50
	topic := ids.Hash("fig6-app", fmt.Sprint(b), fmt.Sprint(n))
	// Latency-dominated regime (no NIC serialization): dissemination and
	// aggregation time are then exactly the tree-depth staircase the paper
	// reports; Fig 7 and Table 3 cover the bandwidth-bound regimes.
	f := newForest(forestConfig{
		N:    network,
		Ring: ring.Config{B: b},
		Seed: o.Seed + int64(n),
	})
	for _, s := range f.Stacks {
		s.PS.SetHandlers(pubsub.Handlers{
			OnDeliver: func(t ids.ID, obj any, depth int, sub bool) {
				if sub && f.Net.Now() > r.lastDeliver {
					r.lastDeliver = f.Net.Now()
				}
			},
			OnAggregate: func(t ids.ID, round int, obj any, count int) {
				r.aggDone = f.Net.Now()
			},
		})
	}
	f.subscribeDistinct(topic, n)
	levels := f.treeLevels(topic)

	// Dissemination: root publishes one model; time to the last subscriber.
	var root *stack
	for _, s := range f.Stacks {
		if info, ok := s.PS.TreeInfo(topic); ok && info.IsRoot {
			root = s
			break
		}
	}
	start := f.Net.Now()
	root.PS.Publish(topic, modelObj{Bytes: fig6ModelBytes})
	f.Net.RunUntilIdle()
	dissem := r.lastDeliver - start

	// Aggregation: every member submits simultaneously; time until the
	// root's combined aggregate lands.
	start = f.Net.Now()
	for _, s := range f.Stacks {
		info, ok := s.PS.TreeInfo(topic)
		if !ok || !info.Attached {
			continue
		}
		if info.Subscribed {
			s.PS.SubmitUpdate(topic, 1, modelObj{Bytes: fig6ModelBytes})
		} else {
			s.PS.SubmitUpdate(topic, 1, nil)
		}
	}
	f.Net.RunUntilIdle()
	agg := r.aggDone - start

	return ScaleRow{
		Members:         n,
		Depth:           len(levels) - 1,
		DisseminationMs: float64(dissem) / float64(time.Millisecond),
		AggregationMs:   float64(agg) / float64(time.Millisecond),
	}
}

// FanoutRow is one point of Fig 6c: dissemination time by tree fanout.
type FanoutRow struct {
	Fanout          int
	Depth           int
	DisseminationMs float64
}

// Fig6cFanout measures model dissemination time for tree fanouts 8, 16,
// and 32 (routing bases 3, 4, 5) at a fixed membership: larger fanouts
// give shallower trees and faster dissemination (Fig 6c).
func Fig6cFanout(o Options) []FanoutRow {
	n := 2000
	if o.Short {
		n = 500
	}
	var out []FanoutRow
	for _, b := range []int{3, 4, 5} {
		row := measureTree(o, b, n)
		out = append(out, FanoutRow{
			Fanout:          1 << uint(b),
			Depth:           row.Depth,
			DisseminationMs: row.DisseminationMs,
		})
	}
	return out
}
