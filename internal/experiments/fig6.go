package experiments

import (
	"fmt"
	"time"

	"totoro/internal/ids"
	"totoro/internal/obs"
	"totoro/internal/ring"
)

// ScaleRow is one point of Fig 6a/6b: a tree of N members on an edge
// network, with the measured model-dissemination and gradient-aggregation
// times and the tree depth.
type ScaleRow struct {
	Members         int
	Depth           int
	DisseminationMs float64
	AggregationMs   float64
}

// fig6ModelBytes is the serialized model size shipped in the Fig 6
// experiments (a mid-sized edge model).
const fig6ModelBytes = 100 << 10

// Fig6Scale measures Totoro's model dissemination and gradient aggregation
// times for an exponentially increasing number of edge nodes in a single
// training tree (20 → 5120; Fig 6a and 6b): time grows linearly while
// membership grows exponentially because both operations are bounded by
// the O(log N) tree depth.
func Fig6Scale(o Options, b int) []ScaleRow {
	sizes := []int{20, 40, 80, 160, 320, 640, 1280, 2560, 5120}
	if o.Short {
		sizes = []int{20, 80, 320, 1280}
	}
	var out []ScaleRow
	for _, n := range sizes {
		out = append(out, measureTree(o, b, n))
	}
	return out
}

// measureTree builds one tree with n subscribers and times a broadcast and
// an aggregation round over it. Both timings are read from the shared
// telemetry registry — the pubsub layer's own trace events — rather than
// from per-figure handler plumbing.
func measureTree(o Options, b, n int) ScaleRow {
	network := n + n/4 + 50
	topic := ids.Hash("fig6-app", fmt.Sprint(b), fmt.Sprint(n))
	topicKey := topic.String()
	// Latency-dominated regime (no NIC serialization): dissemination and
	// aggregation time are then exactly the tree-depth staircase the paper
	// reports; Fig 7 and Table 3 cover the bandwidth-bound regimes.
	f := newForest(forestConfig{
		N:    network,
		Ring: ring.Config{B: b},
		Seed: o.Seed + int64(n),
	})
	f.subscribeDistinct(topic, n)
	levels := f.treeLevels(topic)

	// Dissemination: root publishes one model; time to the last subscriber,
	// read from the subscribers' pubsub.deliver trace events.
	var root *stack
	for _, s := range f.Stacks {
		if info, ok := s.PS.TreeInfo(topic); ok && info.IsRoot {
			root = s
			break
		}
	}
	start := f.Net.Now()
	root.PS.Publish(topic, modelObj{Bytes: fig6ModelBytes})
	f.Net.RunUntilIdle()
	var lastDeliver time.Duration
	for _, e := range f.mergedTrace() {
		if e.Kind == obs.KindPubSubDeliver && e.Note == "sub" && e.Key == topicKey &&
			e.At >= start && e.At > lastDeliver {
			lastDeliver = e.At
		}
	}
	dissem := lastDeliver - start

	// Aggregation: every member submits simultaneously; time until the
	// root's pubsub.agg trace event records the combined aggregate landing.
	start = f.Net.Now()
	for _, s := range f.Stacks {
		info, ok := s.PS.TreeInfo(topic)
		if !ok || !info.Attached {
			continue
		}
		if info.Subscribed {
			s.PS.SubmitUpdate(topic, 1, modelObj{Bytes: fig6ModelBytes})
		} else {
			s.PS.SubmitUpdate(topic, 1, nil)
		}
	}
	f.Net.RunUntilIdle()
	var aggDone time.Duration
	for _, e := range f.mergedTrace() {
		if e.Kind == obs.KindPubSubAgg && e.Note == "root" && e.Key == topicKey &&
			e.At >= start && e.At > aggDone {
			aggDone = e.At
		}
	}
	agg := aggDone - start

	return ScaleRow{
		Members:         n,
		Depth:           len(levels) - 1,
		DisseminationMs: float64(dissem) / float64(time.Millisecond),
		AggregationMs:   float64(agg) / float64(time.Millisecond),
	}
}

// FanoutRow is one point of Fig 6c: dissemination time by tree fanout.
type FanoutRow struct {
	Fanout          int
	Depth           int
	DisseminationMs float64
}

// Fig6cFanout measures model dissemination time for tree fanouts 8, 16,
// and 32 (routing bases 3, 4, 5) at a fixed membership: larger fanouts
// give shallower trees and faster dissemination (Fig 6c).
func Fig6cFanout(o Options) []FanoutRow {
	n := 2000
	if o.Short {
		n = 500
	}
	var out []FanoutRow
	for _, b := range []int{3, 4, 5} {
		row := measureTree(o, b, n)
		out = append(out, FanoutRow{
			Fanout:          1 << uint(b),
			Depth:           row.Depth,
			DisseminationMs: row.DisseminationMs,
		})
	}
	return out
}
