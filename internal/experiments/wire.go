package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"totoro/internal/fl"
	"totoro/internal/ids"
	"totoro/internal/ml"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/transport"
	"totoro/internal/transport/tcpnet"
	"totoro/internal/wire"
	"totoro/internal/wire/codec"
)

// This file measures wire format v2 (internal/wire/codec) against the gob
// baseline it demoted: encode/decode microbenchmarks on the dominant frame
// shapes, live before/after traffic over real tcpnet sockets, and the
// accuracy cost of the lossy compressed encodings. cmd/totoro-bench -exp
// wire prints the rows and emits them as BENCH_wire.json.

// WireBenchRow is one microbenchmark measurement.
type WireBenchRow struct {
	Op          string  // e.g. "encode-update10k"
	Wire        string  // "gob" or "v2" (or a compressed v2 variant)
	NsPerOp     float64 //
	MBPerSec    float64 // payload throughput (0 when not byte-metered)
	BytesPerOp  int64   // heap bytes allocated per op
	AllocsPerOp int64
}

// wireControlMsg is the small control frame that dominates maintenance
// traffic: a routed envelope carrying a tree-join.
func wireControlMsg() any {
	return ring.Envelope{
		Key:    ids.ID{Hi: 1, Lo: 2},
		Source: ring.Contact{ID: ids.ID{Hi: 3, Lo: 4}, Addr: "10.0.0.1:9000"},
		Hops:   3, Seq: 1234,
		Payload: pubsub.JoinMsg{Topic: ids.ID{Hi: 5, Lo: 6},
			Subscriber: ring.Contact{ID: ids.ID{Hi: 7, Lo: 8}, Addr: "10.0.0.2:9000"}},
	}
}

// wireUpdateMsg is the dense model-update frame that dominates training
// traffic: an Upstream carrying n float64 parameters.
func wireUpdateMsg(n int) (any, []float64) {
	params := make([]float64, n)
	for i := range params {
		params[i] = float64(i%97) * 0.013
	}
	return pubsub.Upstream{
		Topic: ids.ID{Hi: 9, Lo: 10}, Round: 42,
		From:  ring.Contact{ID: ids.ID{Hi: 11, Lo: 12}, Addr: "10.0.0.3:9000"},
		Count: 17, Object: params,
	}, params
}

// gobFrame mirrors tcpnet's legacy gob frame (sender address + payload).
type gobFrame struct {
	From string
	Msg  any
}

const wireBenchAddr = "10.0.0.9:9000"

func benchRow(op, wireName string, r testing.BenchmarkResult) WireBenchRow {
	row := WireBenchRow{
		Op: op, Wire: wireName,
		NsPerOp:     float64(r.NsPerOp()),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
	if r.Bytes > 0 && r.T > 0 {
		row.MBPerSec = float64(r.Bytes) * float64(r.N) / 1e6 / r.T.Seconds()
	}
	return row
}

// WireMicrobench runs the gob-vs-codec encode/decode benchmarks
// programmatically and returns their rows. The gob side uses persistent
// encoder/decoder streams (type descriptors shipped once), exactly like
// the legacy tcpnet wire loop.
func WireMicrobench(o Options) []WireBenchRow {
	wire.Register()
	control := wireControlMsg()
	update, params := wireUpdateMsg(10000)

	codecEncode := func(msg any) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			var n int64
			for i := 0; i < b.N; i++ {
				e := codec.NewEnc()
				if err := codec.EncodeFrame(e, wireBenchAddr, msg); err != nil {
					b.Fatal(err)
				}
				n += int64(e.Len())
				e.Free()
			}
			b.SetBytes(n / int64(b.N))
		}
	}
	codecDecode := func(msg any) func(b *testing.B) {
		return func(b *testing.B) {
			e := codec.NewEnc()
			defer e.Free()
			if err := codec.EncodeFrame(e, wireBenchAddr, msg); err != nil {
				b.Fatal(err)
			}
			buf := append([]byte(nil), e.Bytes()...)
			b.SetBytes(int64(len(buf)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := codec.DecodeFrame(buf); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	gobEncode := func(msg any) func(b *testing.B) {
		return func(b *testing.B) {
			var bb bytes.Buffer
			enc := gob.NewEncoder(&bb)
			if err := enc.Encode(gobFrame{From: wireBenchAddr, Msg: msg}); err != nil {
				b.Fatal(err)
			}
			prime := bb.Len()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bb.Truncate(prime)
				if err := enc.Encode(gobFrame{From: wireBenchAddr, Msg: msg}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(bb.Len() - prime))
		}
	}
	gobDecode := func(msg any) func(b *testing.B) {
		return func(b *testing.B) {
			var bb bytes.Buffer
			enc := gob.NewEncoder(&bb)
			dec := gob.NewDecoder(&bb)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := enc.Encode(gobFrame{From: wireBenchAddr, Msg: msg}); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var m gobFrame
				if err := dec.Decode(&m); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	return []WireBenchRow{
		benchRow("encode-control", "gob", testing.Benchmark(gobEncode(control))),
		benchRow("encode-control", "v2", testing.Benchmark(codecEncode(control))),
		benchRow("decode-control", "gob", testing.Benchmark(gobDecode(control))),
		benchRow("decode-control", "v2", testing.Benchmark(codecDecode(control))),
		benchRow("encode-update10k", "gob", testing.Benchmark(gobEncode(update))),
		benchRow("encode-update10k", "v2", testing.Benchmark(codecEncode(update))),
		benchRow("decode-update10k", "gob", testing.Benchmark(gobDecode(update))),
		benchRow("decode-update10k", "v2", testing.Benchmark(codecDecode(update))),
		benchRow("encode-update10k", "v2-f32", testing.Benchmark(codecEncode(codec.PackF32(params)))),
		benchRow("encode-update10k", "v2-qdelta", testing.Benchmark(codecEncode(codec.PackQDelta(params)))),
	}
}

// WireTrafficRow is one live-socket measurement: the same message mix
// shipped over real tcpnet connections under one wire format, metered by
// the transport's own net.* counters (a Snapshot.Delta window, the same
// instrument Fig 7 uses).
type WireTrafficRow struct {
	Wire         string // "gob" or "v2"
	Msgs         int64  // net.msgs_out in the window
	Bytes        int64  // net.bytes_out in the window
	BytesPerMsg  float64
	DecodeErrors int64
}

type wireSink struct{ seen atomic.Int64 }

func (s *wireSink) Receive(from transport.Addr, msg any) { s.seen.Add(1) }

// WireTrafficTCP sends an identical mix of control and 10k-float update
// frames between two live TCP nodes under the legacy gob wire and under
// wire v2, and reports each format's measured socket traffic. This is the
// before/after view of the codec change on real connections; the counter
// window is taken with Snapshot.Delta rather than by resetting counters.
func WireTrafficTCP(o Options) ([]WireTrafficRow, error) {
	wire.Register()
	updates, controls := 50, 200
	if o.Short {
		updates, controls = 10, 40
	}
	var out []WireTrafficRow
	for _, gobWire := range []bool{true, false} {
		row, err := wireTrafficRun(gobWire, updates, controls)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

func wireTrafficRun(gobWire bool, updates, controls int) (WireTrafficRow, error) {
	name := "v2"
	if gobWire {
		name = "gob"
	}
	cfg := tcpnet.Config{GobWire: gobWire}
	var senderEnv transport.Env
	sender, err := tcpnet.ListenConfig("127.0.0.1:0", cfg, func(e transport.Env) transport.Handler {
		senderEnv = e
		return &wireSink{}
	})
	if err != nil {
		return WireTrafficRow{}, err
	}
	defer sender.Close()
	sink := &wireSink{}
	receiver, err := tcpnet.ListenConfig("127.0.0.1:0", cfg, func(e transport.Env) transport.Handler {
		return sink
	})
	if err != nil {
		return WireTrafficRow{}, err
	}
	defer receiver.Close()

	update, _ := wireUpdateMsg(10000)
	control := wireControlMsg()
	to := receiver.Addr()
	before := sender.Metrics().Snapshot()
	sender.Do(func() {
		for i := 0; i < updates; i++ {
			senderEnv.Send(to, update)
		}
		for i := 0; i < controls; i++ {
			senderEnv.Send(to, control)
		}
	})
	want := int64(updates + controls)
	deadline := time.Now().Add(30 * time.Second)
	for sink.seen.Load() < want {
		if time.Now().After(deadline) {
			return WireTrafficRow{}, fmt.Errorf("%s wire: %d/%d messages delivered", name, sink.seen.Load(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	win := sender.Metrics().Snapshot().Delta(before)
	row := WireTrafficRow{
		Wire:         name,
		Msgs:         win.Counters[transport.CtrMsgsOut],
		Bytes:        win.Counters[transport.CtrBytesOut],
		DecodeErrors: receiver.DecodeErrors() + sender.DecodeErrors(),
	}
	if row.Msgs > 0 {
		row.BytesPerMsg = float64(row.Bytes) / float64(row.Msgs)
	}
	return row, nil
}

// WireCompressionRow is the accuracy cost of one update encoding after a
// fixed training budget, next to its per-update wire size.
type WireCompressionRow struct {
	Compressor  string
	FinalAcc    float64
	UpdateBytes int // compressed bytes of one client update (last round)
	DenseBytes  int // uncompressed float64 size of the same update
	Saving      float64
}

// WireCompressionAccuracy trains the same federated workload under each
// update encoding — dense, top-k sparsification, shared-scale int8, and
// the two codec-v2 wire encodings (f32, delta-int8) — and reports final
// accuracy against wire cost. The reconstructions the session trains on
// are exactly what a tcpnet receiver would decode, so this is the measured
// accuracy price of each compression level.
func WireCompressionAccuracy(o Options) []WireCompressionRow {
	rounds, perRound := 15, 8
	if o.Short {
		rounds = 6
	}
	comps := []fl.Compressor{
		fl.NoCompression{},
		fl.TopK{K: 64},
		fl.QuantizeInt8{},
		fl.Float32{},
		fl.DeltaInt8{},
	}
	var out []WireCompressionRow
	for _, comp := range comps {
		rng := rand.New(rand.NewSource(o.Seed))
		full := ml.SyntheticClusters(10, 24, 4000, 0.45, rng)
		train, test := full.Split(0.2, rng)
		clients := ml.DirichletPartition(train, 16, 1.0, rng)
		proto := ml.NewMLP([]int{24, 32, 10}, rand.New(rand.NewSource(o.Seed+7)))
		s := fl.NewSession(proto, clients, test,
			fl.ClientConfig{LocalEpochs: 3, LR: 0.1, BatchSize: 20}, nil, comp)
		r := rand.New(rand.NewSource(o.Seed + 11))
		var rep fl.RoundReport
		for i := 0; i < rounds; i++ {
			rep = s.Round(perRound, r)
		}
		dense := 8 * proto.NumParams()
		out = append(out, WireCompressionRow{
			Compressor:  comp.Name(),
			FinalAcc:    rep.Accuracy,
			UpdateBytes: rep.UpdateSize,
			DenseBytes:  dense,
			Saving:      1 - float64(rep.UpdateSize)/float64(dense),
		})
	}
	return out
}

// WireReport bundles every wire-v2 measurement for BENCH_wire.json.
type WireReport struct {
	Bench       []WireBenchRow
	Traffic     []WireTrafficRow
	Compression []WireCompressionRow
}
