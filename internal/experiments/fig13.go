package experiments

import (
	"runtime"
	"time"

	totoro "totoro"
	"totoro/internal/baseline"
	"totoro/internal/ring"
	"totoro/internal/workload"
)

// OverheadRow is one measurement of Fig 13: real CPU seconds and bytes
// allocated for one system and phase.
type OverheadRow struct {
	System string
	Phase  string // "dht" (overlay + tree construction) or "fl" (training)
	CPUSec float64
	// AllocMB is the memory allocated during the phase (monotone
	// runtime.MemStats.TotalAlloc delta, robust against GC timing).
	AllocMB float64
}

// Fig13Overhead trains a small feedforward text-classification model over
// a single 10-worker Totoro dataflow tree and compares real resource usage
// against the OpenFL-like baseline, split into DHT-related and FL-related
// work (Fig 13). Because the whole simulation is single-threaded, wall
// time approximates CPU time; heap growth is sampled with
// runtime.ReadMemStats (TotalAlloc) around each phase.
func Fig13Overhead(o Options) []OverheadRow {
	apps := workload.MakeApps(workload.Params{
		Task:             workload.TaskSpeech,
		Apps:             1,
		ClientsPerApp:    10,
		SamplesPerClient: 50,
		Seed:             o.Seed,
	})
	apps[0].MaxRounds = 8
	apps[0].TargetAccuracy = 0.999

	var out []OverheadRow

	// Totoro: DHT phase (overlay + tree construction) then FL phase.
	alloc0 := allocMB()
	t0 := time.Now()
	c := totoro.NewCluster(totoro.ClusterConfig{N: 14, Seed: o.Seed, Ring: ring.Config{B: 3}})
	id := c.DeployOnRandomNodes(apps[0])
	dhtCPU := time.Since(t0).Seconds()
	alloc1 := allocMB()
	out = append(out, OverheadRow{System: "totoro", Phase: "dht", CPUSec: dhtCPU, AllocMB: alloc1 - alloc0})

	t1 := time.Now()
	c.Train(id)
	flCPU := time.Since(t1).Seconds()
	alloc2 := allocMB()
	out = append(out, OverheadRow{System: "totoro", Phase: "fl", CPUSec: flCPU, AllocMB: alloc2 - alloc1})

	// OpenFL-like baseline: same workload, no DHT phase.
	apps2 := workload.MakeApps(workload.Params{
		Task:             workload.TaskSpeech,
		Apps:             1,
		ClientsPerApp:    10,
		SamplesPerClient: 50,
		Seed:             o.Seed,
	})
	apps2[0].MaxRounds = 8
	apps2[0].TargetAccuracy = 0.999
	alloc3 := allocMB()
	t2 := time.Now()
	be := baseline.New(apps2, baseline.Config{Profile: baseline.OpenFL(), ClientNodes: 14, Seed: o.Seed})
	be.Run()
	out = append(out, OverheadRow{
		System: "openfl", Phase: "fl",
		CPUSec:  time.Since(t2).Seconds(),
		AllocMB: allocMB() - alloc3,
	})
	return out
}

func allocMB() float64 {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.TotalAlloc) / (1 << 20)
}
