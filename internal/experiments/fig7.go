package experiments

import (
	"fmt"
	"time"

	"totoro/internal/ids"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/simnet"
)

// TrafficRow is one point of Fig 7: mean per-node control traffic as the
// number of dataflow trees grows.
type TrafficRow struct {
	Trees           int
	TCPBytesPerNode float64
	UDPBytesPerNode float64
	// RatioTCP/RatioUDP are relative to the single-tree row.
	RatioTCP float64
	RatioUDP float64
}

// Per-message framing overheads used to derive TCP-vs-UDP byte totals from
// the same message trace.
const (
	tcpOverhead = 58 // Ethernet+IP+TCP headers
	udpOverhead = 28 // IP+UDP headers
)

// Fig7Traffic measures the additional per-node network traffic imposed by
// Totoro's trees: a 1000-node overlay runs its routine maintenance
// (leaf-set probing and tree keep-alives) over a fixed window while 1× to
// 10× dataflow trees are constructed and kept alive. Because a new tree
// only routes JOIN messages over overlay links that already exist, traffic
// grows far slower than the tree count (the paper reports 1.19× for TCP
// and 1.29× for UDP at 10× trees).
func Fig7Traffic(o Options) []TrafficRow {
	nodes := 1000
	subsPerTree := 100
	window := 30 // maintenance cycles
	if o.Short {
		nodes, subsPerTree, window = 300, 40, 12
	}
	var out []TrafficRow
	for _, trees := range []int{1, 2, 5, 10} {
		tcp, udp := trafficRun(o, nodes, trees, subsPerTree, window)
		out = append(out, TrafficRow{
			Trees:           trees,
			TCPBytesPerNode: tcp,
			UDPBytesPerNode: udp,
		})
	}
	base := out[0]
	for i := range out {
		out[i].RatioTCP = out[i].TCPBytesPerNode / base.TCPBytesPerNode
		out[i].RatioUDP = out[i].UDPBytesPerNode / base.UDPBytesPerNode
	}
	return out
}

func trafficRun(o Options, nodes, trees, subsPerTree, window int) (tcpPerNode, udpPerNode float64) {
	f := newForest(forestConfig{
		N:    nodes,
		Ring: ring.Config{B: 4},
		PubSub: pubsub.Config{
			KeepAliveInterval: time.Second,
			KeepAliveTimeout:  3 * time.Second,
		},
		Seed: o.Seed,
	})
	for t := 0; t < trees; t++ {
		topic := ids.Hash("fig7-app", fmt.Sprint(t))
		f.subscribeDistinct(topic, subsPerTree)
	}
	// Snapshot-delta measurement: freeze the fleet's cumulative telemetry
	// before the window and subtract it afterwards, so tree construction
	// traffic is excluded without resetting the live counters other
	// figures may still read.
	before := f.mergedSnapshot()
	// The measurement window (in seconds): the overlay probes its leaf sets
	// every 15 seconds (slow background maintenance) while tree keep-alives
	// tick every second on their own timers.
	for c := 0; c < window; c++ {
		if c%15 == 0 {
			for _, s := range f.Stacks {
				s.Ring.ProbeLeafset()
			}
		}
		f.Net.Run(f.Net.Now() + time.Second)
	}
	// Traffic totals come from the per-node telemetry registries (the same
	// counters a live node would expose over /metrics).
	win := f.mergedSnapshot().Delta(before)
	bytes := win.Counters[simnet.CtrBytesOut]
	msgs := win.Counters[simnet.CtrMsgsOut]
	n := float64(nodes)
	tcpPerNode = (float64(bytes) + float64(msgs)*tcpOverhead) / n
	udpPerNode = (float64(bytes) + float64(msgs)*udpOverhead) / n
	return tcpPerNode, udpPerNode
}
