package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"totoro/internal/eua"
	"totoro/internal/ids"
	"totoro/internal/multiring"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
)

// ZoneRow is one edge zone produced by distributed binning (Fig 5a).
type ZoneRow struct {
	Zone     uint64
	Members  int
	Diameter time.Duration
}

// Fig5aZones runs Ratnasamy–Shenker distributed binning over the EUA node
// population and reports the resulting edge zones with their diameters
// (maximum desired RTT), reproducing Fig 5a's zone structure.
func Fig5aZones(o Options) []ZoneRow {
	rng := rand.New(rand.NewSource(o.Seed))
	n := eua.Total
	if o.Short {
		n = 5000
	}
	pos, _ := eua.GenerateScaled(n, rng)
	levels := []time.Duration{40 * time.Millisecond, 120 * time.Millisecond}
	b := multiring.AssignZones(pos, eua.Landmarks(), levels, 5)
	zones := make([]uint64, 0, b.NumZones())
	for z := range b.Members {
		zones = append(zones, z)
	}
	sort.Slice(zones, func(i, j int) bool { return zones[i] < zones[j] })
	out := make([]ZoneRow, 0, len(zones))
	for _, z := range zones {
		out = append(out, ZoneRow{Zone: z, Members: len(b.Members[z]), Diameter: b.Diameter[z]})
	}
	return out
}

// MasterLoadRow is one bucket of the Fig 5b distribution: how many nodes
// are the root (master) of exactly K trees.
type MasterLoadRow struct {
	MastersPerNode int
	Nodes          int
}

// Fig5bResult is the Fig 5b outcome.
type Fig5bResult struct {
	Rows []MasterLoadRow
	// FracAtMost3 is the fraction of nodes rooting ≤ 3 trees; the paper
	// reports 99.5% for 500 trees over 1000 nodes.
	FracAtMost3 float64
	MaxMasters  int
}

// Fig5bMasterDistribution creates 500 dataflow trees over a 1000-node edge
// zone (stress test of §7.2) and reports the distribution of masters per
// node.
func Fig5bMasterDistribution(o Options) Fig5bResult {
	nodes, trees := 1000, 500
	if o.Short {
		nodes, trees = 300, 150
	}
	f := newForest(forestConfig{N: nodes, Ring: ring.Config{B: 4}, Seed: o.Seed})
	for t := 0; t < trees; t++ {
		topic := ids.Hash("fig5b-app", fmt.Sprint(t))
		src := f.Stacks[f.RNG.Intn(len(f.Stacks))]
		src.PS.Create(topic)
	}
	f.Net.RunUntilIdle()
	hist := map[int]int{}
	maxM := 0
	atMost3 := 0
	for _, s := range f.Stacks {
		rc := s.PS.RootCount()
		hist[rc]++
		if rc > maxM {
			maxM = rc
		}
		if rc <= 3 {
			atMost3++
		}
	}
	res := Fig5bResult{
		FracAtMost3: float64(atMost3) / float64(nodes),
		MaxMasters:  maxM,
	}
	for k := 0; k <= maxM; k++ {
		if hist[k] > 0 {
			res.Rows = append(res.Rows, MasterLoadRow{MastersPerNode: k, Nodes: hist[k]})
		}
	}
	return res
}

// ZoneWorkloadRow is one zone of Fig 5c: masters scale with the zone's
// workload (apps ∝ population density).
type ZoneWorkloadRow struct {
	Zone                uint64
	Nodes               int
	Apps                int
	DistinctMasterNodes int
	MaxMastersPerNode   int
}

// Fig5cMastersPerZone assigns each EUA-derived zone a number of FL
// applications proportional to its population (dense topologies get heavy
// workloads) and shows that masters spread across each zone in proportion.
func Fig5cMastersPerZone(o Options) []ZoneWorkloadRow {
	rng := rand.New(rand.NewSource(o.Seed))
	sample := 2000
	if o.Short {
		sample = 600
	}
	pos, _ := eua.GenerateScaled(sample, rng)
	bin := multiring.AssignZones(pos, eua.Landmarks(), nil, 4)

	// One overlay whose node IDs carry their zone prefix; zonal AppIDs then
	// rendezvous inside their own zone.
	const zoneBits = 4
	f := newForestZoned(len(pos), zoneBits, bin.ZoneOf, o.Seed)
	// Zones in sorted order: the RNG draws below consume a shared stream,
	// so iteration order decides which node hosts each app.
	zoneOrder := make([]uint64, 0, len(bin.Members))
	for z := range bin.Members {
		zoneOrder = append(zoneOrder, z)
	}
	sort.Slice(zoneOrder, func(i, j int) bool { return zoneOrder[i] < zoneOrder[j] })
	appsPerZone := map[uint64]int{}
	for _, z := range zoneOrder {
		members := bin.Members[z]
		apps := (len(members) + 49) / 50 // 1 app per ~50 nodes
		appsPerZone[z] = apps
		for a := 0; a < apps; a++ {
			topic := ids.MakeZoned(z, zoneBits, ids.Hash("fig5c-app", fmt.Sprint(z), fmt.Sprint(a)))
			src := f.Stacks[members[f.RNG.Intn(len(members))]]
			src.PS.Create(topic)
		}
	}
	f.Net.RunUntilIdle()

	// Count masters per zone.
	type zstat struct {
		masters map[int]int
	}
	stats := map[uint64]*zstat{}
	for i, s := range f.Stacks {
		rc := s.PS.RootCount()
		if rc == 0 {
			continue
		}
		z := bin.ZoneOf[i]
		st, ok := stats[z]
		if !ok {
			st = &zstat{masters: map[int]int{}}
			stats[z] = st
		}
		st.masters[i] = rc
	}
	zones := make([]uint64, 0, len(bin.Members))
	for z := range bin.Members {
		zones = append(zones, z)
	}
	sort.Slice(zones, func(i, j int) bool {
		return len(bin.Members[zones[i]]) > len(bin.Members[zones[j]])
	})
	var out []ZoneWorkloadRow
	for _, z := range zones {
		row := ZoneWorkloadRow{Zone: z, Nodes: len(bin.Members[z]), Apps: appsPerZone[z]}
		if st, ok := stats[z]; ok {
			row.DistinctMasterNodes = len(st.masters)
			for _, c := range st.masters {
				if c > row.MaxMastersPerNode {
					row.MaxMastersPerNode = c
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// newForestZoned builds a forest whose node IDs carry zone prefixes.
func newForestZoned(n, zoneBits int, zoneOf []uint64, seed int64) *forest {
	f := &forest{
		Net: simnet.New(simnet.Config{
			Seed:    seed,
			Latency: simnet.ConstLatency(5 * time.Millisecond),
		}),
		ByAddr: map[transport.Addr]*stack{},
		RNG:    rand.New(rand.NewSource(seed)),
	}
	var ringNodes []*ring.Node
	for i := 0; i < n; i++ {
		addr := transport.Addr(fmt.Sprintf("z%d", i))
		id := ids.MakeZoned(zoneOf[i], zoneBits, ids.Random(f.RNG))
		s := &stack{}
		env := f.Net.AddNode(addr, func(e transport.Env) transport.Handler {
			s.Ring = ring.New(e, ring.Contact{ID: id, Addr: addr}, ring.Config{B: 4})
			s.PS = pubsub.New(e, s.Ring, pubsub.Config{})
			return s
		})
		f.Stacks = append(f.Stacks, s)
		f.Envs = append(f.Envs, env)
		f.ByAddr[addr] = s
		ringNodes = append(ringNodes, s.Ring)
	}
	ring.BuildStatic(ringNodes, f.RNG)
	return f
}

// TreeLevelRow is one (tree, level) cell of Fig 5d.
type TreeLevelRow struct {
	Tree  int
	Level int
	Nodes int
}

// Fig5dTreeBalance builds 17 dataflow trees with fanout 8 over 1946 edge
// nodes (the paper's three most popular topologies) and reports how many
// nodes sit at each tree level — the branch-balance picture of Fig 5d.
func Fig5dTreeBalance(o Options) []TreeLevelRow {
	nodes, trees := 1946, 17
	if o.Short {
		nodes, trees = 500, 8
	}
	f := newForest(forestConfig{N: nodes, Ring: ring.Config{B: 3}, Seed: o.Seed})
	var out []TreeLevelRow
	for t := 0; t < trees; t++ {
		topic := ids.Hash("fig5d-app", fmt.Sprint(t))
		// Random tree sizes give the paper's random depth range.
		size := 50 + f.RNG.Intn(nodes/2)
		f.subscribeDistinct(topic, size)
		for lvl, cnt := range f.treeLevels(topic) {
			out = append(out, TreeLevelRow{Tree: t, Level: lvl, Nodes: cnt})
		}
	}
	return out
}
