package experiments

import (
	"totoro/internal/bandit"
)

// RegretCurves is the Fig 10 result: cumulative regret per policy over K
// packets, averaged over runs.
type RegretCurves struct {
	K      int
	Curves map[string][]float64
}

// fig10Experiment is the shared Fig 10/11 setup.
func fig10Experiment(o Options) bandit.Experiment {
	e := bandit.DefaultExperiment()
	e.Seed = o.Seed
	if o.Short {
		e.K, e.Runs = 600, 3
	}
	return e
}

// Fig10Regret compares the cumulative regret of Totoro's hop-by-hop
// KL-UCB planner against end-to-end LCB routing, empirical next-hop
// routing, and the omniscient optimal policy (Fig 10): Totoro achieves
// the lowest regret because it accounts for the cost of the whole
// remaining path, not just the next link.
func Fig10Regret(o Options) RegretCurves {
	e := fig10Experiment(o)
	curves := e.Regret([]string{"totoro", "next-hop", "end-to-end", "optimal"})
	return RegretCurves{K: e.K, Curves: curves}
}

// FrequencyGrid is the Fig 11 result for one policy: rows are consecutive
// packet windows, columns are paths ordered best→worst, cells are
// selection frequencies (each row sums to 1).
type FrequencyGrid struct {
	Policy  string
	Buckets int
	Paths   int
	Grid    [][]float64
}

// Fig11PathFrequencies reports how often each policy selects the x-th best
// path as packets flow (Fig 11): Totoro locks onto the optimal path the
// fastest; next-hop mixes in mediocre paths; end-to-end is last to find
// the optimum.
func Fig11PathFrequencies(o Options) []FrequencyGrid {
	e := fig10Experiment(o)
	const buckets = 8
	var out []FrequencyGrid
	for _, pol := range []string{"optimal", "totoro", "next-hop", "end-to-end"} {
		grid, paths := e.Frequencies(pol, buckets)
		out = append(out, FrequencyGrid{Policy: pol, Buckets: buckets, Paths: paths, Grid: grid})
	}
	return out
}
