// Package workload defines the FL application workloads and the edge
// compute/communication cost model shared by the decentralized Totoro
// engine and the centralized baselines, so that their time-to-accuracy
// comparison (Table 3, Figs 8–9) differs only in system architecture.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"totoro/internal/fl"
	"totoro/internal/ml"
)

// App is one federated-learning application: its model architecture,
// per-client shards, evaluation set, policies, and stopping criteria.
type App struct {
	Name   string
	Proto  *ml.MLP
	Shards []*ml.Dataset
	Test   *ml.Dataset
	Cfg    fl.ClientConfig
	Comp   fl.Compressor
	// Participation is the fraction of subscribed workers that train in a
	// given round (1 = full participation).
	Participation float64
	// TargetAccuracy ends training early when reached.
	TargetAccuracy float64
	// MaxRounds bounds training length.
	MaxRounds int
	// MinParticipants is the per-round commit quorum (see
	// AppSpec.MinParticipants): a deadline-flushed round below it is held
	// open for late updates before committing. Zero commits any flush.
	MinParticipants int
	// Seed roots the app's deterministic per-client training randomness:
	// every client derives its round rng from (Seed, round, client), so
	// training order and parallelism cannot perturb results.
	Seed int64
}

// ModelBytes is the wire size of one dense model/update for the app.
func (a *App) ModelBytes() int { return 4 + 8*a.Proto.NumParams() }

// Task identifies the two evaluation workloads of §7.4.
type Task string

// The two tasks evaluated in the paper, §7.4.
const (
	// TaskSpeech mirrors speech recognition on Google Speech (35 classes,
	// ResNet-34, target 53.0%).
	TaskSpeech Task = "speech"
	// TaskFEMNIST mirrors image classification on FEMNIST (62 classes,
	// ShuffleNet V2, target 75.5%).
	TaskFEMNIST Task = "femnist"
)

// Params configures workload generation.
type Params struct {
	Task             Task
	Apps             int
	ClientsPerApp    int
	SamplesPerClient int
	DirichletAlpha   float64
	Seed             int64
}

func (p Params) withDefaults() Params {
	if p.ClientsPerApp == 0 {
		p.ClientsPerApp = 30
	}
	if p.SamplesPerClient == 0 {
		p.SamplesPerClient = 60
	}
	if p.DirichletAlpha == 0 {
		p.DirichletAlpha = 1.0
	}
	return p
}

// MakeApps builds the application set for one experiment. Each app gets an
// independent dataset draw and model initialization, mirroring "different
// FL applications train various models on the same platform".
func MakeApps(p Params) []*App {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]*App, p.Apps)
	for i := range out {
		out[i] = makeApp(p, i, rng)
	}
	return out
}

func makeApp(p Params, idx int, rng *rand.Rand) *App {
	total := p.ClientsPerApp * p.SamplesPerClient
	var full *ml.Dataset
	var sizes []int
	var target float64
	var name string
	switch p.Task {
	case TaskSpeech:
		full = ml.SpeechLike(total+total/4, rng)
		sizes = []int{40, 48, 35}
		target = 0.53
		name = fmt.Sprintf("speech-%d", idx)
	case TaskFEMNIST:
		full = ml.FEMNISTLike(total+total/4, rng)
		sizes = []int{64, 48, 62}
		target = 0.755
		name = fmt.Sprintf("femnist-%d", idx)
	default:
		panic(fmt.Sprintf("workload: unknown task %q", p.Task))
	}
	train, test := full.Split(0.2, rng)
	shards := ml.DirichletPartition(train, p.ClientsPerApp, p.DirichletAlpha, rng)
	return &App{
		Name:           name,
		Proto:          ml.NewMLP(sizes, rng),
		Shards:         shards,
		Test:           test,
		Cfg:            fl.ClientConfig{LocalEpochs: 1, BatchSize: 20, LR: 0.1, Momentum: 0.5},
		Comp:           fl.NoCompression{},
		Participation:  1.0,
		TargetAccuracy: target,
		MaxRounds:      60,
		Seed:           p.Seed*1_000_003 + int64(idx),
	}
}

// --- edge cost model ---

// CostModel captures the virtual-time cost of computation at edge nodes.
// Communication cost needs no model here: it emerges from simnet bandwidth
// and latency applied to real message sizes.
type CostModel struct {
	// FLOPS is the effective per-node throughput in parameter-sample
	// operations per second.
	FLOPS float64
	// CoordPerClient is the centralized coordinator's FCFS service time
	// per selected client per round (task assignment, client assignment,
	// tracking — §2.1). Zero for the decentralized engine, whose
	// coordination work is spread over the tree.
	CoordPerClient time.Duration
}

// DefaultCostModel is calibrated so that one local epoch over ~60 samples
// of the Table 3 models costs on the order of 100 ms of virtual time —
// a t2.medium-class edge node.
func DefaultCostModel() CostModel {
	return CostModel{FLOPS: 4e6}
}

// TrainTime is the virtual time one client spends on local training:
// epochs × samples × params / FLOPS, scaled by the node's speed factor
// (1 = nominal; heterogeneous deployments draw per-node factors).
func (c CostModel) TrainTime(app *App, samples int, speed float64) time.Duration {
	epochs := app.Cfg.LocalEpochs
	return c.Time(epochs, samples, app.Proto.NumParams(), speed)
}

// Time is TrainTime for callers that know the raw work dimensions rather
// than holding a full App (e.g. workers that received only an AppSpec).
func (c CostModel) Time(epochs, samples, params int, speed float64) time.Duration {
	if samples == 0 {
		return 0
	}
	if epochs == 0 {
		epochs = 1
	}
	if speed <= 0 {
		speed = 1
	}
	work := float64(epochs) * float64(samples) * float64(params)
	return time.Duration(work / (c.FLOPS * speed) * float64(time.Second))
}

// ComputeQueue serializes compute tasks on one physical node: a node
// training for several applications at once runs them one after another.
type ComputeQueue struct {
	busyUntil time.Duration
}

// Start returns when a task of the given duration submitted at now will
// finish, and advances the queue.
func (q *ComputeQueue) Start(now, dur time.Duration) time.Duration {
	start := now
	if q.busyUntil > start {
		start = q.busyUntil
	}
	q.busyUntil = start + dur
	return q.busyUntil
}

// AccuracyPoint is one (virtual time, accuracy) sample of a training run.
type AccuracyPoint struct {
	Time     time.Duration
	Round    int
	Accuracy float64
	// Participants is how many client updates the round aggregated.
	Participants int
}

// Progress is the recorded trajectory of one app under one engine.
type Progress struct {
	App    string
	Points []AccuracyPoint
	// Done is when the app hit its target (or exhausted MaxRounds).
	Done time.Duration
	// Reached reports whether the target accuracy was met.
	Reached bool
}

// TimeToAccuracy returns the first time the trajectory reaches acc, or
// (Done, false) if it never does.
func (p *Progress) TimeToAccuracy(acc float64) (time.Duration, bool) {
	for _, pt := range p.Points {
		if pt.Accuracy >= acc {
			return pt.Time, true
		}
	}
	return p.Done, false
}
