package workload

import (
	"testing"
	"time"
)

func TestMakeAppsShapes(t *testing.T) {
	apps := MakeApps(Params{Task: TaskSpeech, Apps: 3, ClientsPerApp: 10, SamplesPerClient: 40, Seed: 1})
	if len(apps) != 3 {
		t.Fatalf("apps=%d", len(apps))
	}
	for i, a := range apps {
		if len(a.Shards) != 10 {
			t.Fatalf("app %d shards=%d", i, len(a.Shards))
		}
		total := 0
		for _, s := range a.Shards {
			total += s.Len()
		}
		if total == 0 || a.Test.Len() == 0 {
			t.Fatalf("app %d has no data", i)
		}
		if a.Proto.Sizes[len(a.Proto.Sizes)-1] != 35 {
			t.Fatalf("speech classes=%d", a.Proto.Sizes[len(a.Proto.Sizes)-1])
		}
		if a.TargetAccuracy != 0.53 {
			t.Fatalf("speech target=%v", a.TargetAccuracy)
		}
	}
	fem := MakeApps(Params{Task: TaskFEMNIST, Apps: 1, Seed: 2})[0]
	if fem.Proto.Sizes[len(fem.Proto.Sizes)-1] != 62 || fem.TargetAccuracy != 0.755 {
		t.Fatalf("femnist spec wrong: %v %v", fem.Proto.Sizes, fem.TargetAccuracy)
	}
}

func TestAppsAreIndependent(t *testing.T) {
	apps := MakeApps(Params{Task: TaskSpeech, Apps: 2, ClientsPerApp: 4, SamplesPerClient: 20, Seed: 3})
	p0, p1 := apps[0].Proto.Params(), apps[1].Proto.Params()
	same := true
	for i := range p0 {
		if p0[i] != p1[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two apps share identical initial parameters")
	}
}

func TestTrainTimeScaling(t *testing.T) {
	c := DefaultCostModel()
	app := MakeApps(Params{Task: TaskSpeech, Apps: 1, ClientsPerApp: 4, SamplesPerClient: 20, Seed: 4})[0]
	base := c.TrainTime(app, 100, 1)
	if base <= 0 {
		t.Fatal("zero train time")
	}
	if got := c.TrainTime(app, 200, 1); got != 2*base {
		t.Fatalf("not linear in samples: %v vs %v", got, base)
	}
	if got := c.TrainTime(app, 100, 2); got != base/2 {
		t.Fatalf("not inverse in speed: %v vs %v", got, base)
	}
	if got := c.TrainTime(app, 0, 1); got != 0 {
		t.Fatalf("empty shard costs time: %v", got)
	}
	// Raw form agrees with the app form.
	if got := c.Time(app.Cfg.LocalEpochs, 100, app.Proto.NumParams(), 1); got != base {
		t.Fatalf("Time != TrainTime: %v vs %v", got, base)
	}
}

func TestModelBytes(t *testing.T) {
	app := MakeApps(Params{Task: TaskSpeech, Apps: 1, ClientsPerApp: 2, SamplesPerClient: 10, Seed: 5})[0]
	if app.ModelBytes() != 4+8*app.Proto.NumParams() {
		t.Fatalf("ModelBytes=%d", app.ModelBytes())
	}
}

func TestProgressTimeToAccuracy(t *testing.T) {
	p := &Progress{
		App: "x",
		Points: []AccuracyPoint{
			{Time: time.Second, Round: 1, Accuracy: 0.2},
			{Time: 2 * time.Second, Round: 2, Accuracy: 0.5},
			{Time: 3 * time.Second, Round: 3, Accuracy: 0.7},
		},
		Done: 3 * time.Second,
	}
	if at, ok := p.TimeToAccuracy(0.5); !ok || at != 2*time.Second {
		t.Fatalf("TTA(0.5)=%v,%v", at, ok)
	}
	if at, ok := p.TimeToAccuracy(0.9); ok || at != 3*time.Second {
		t.Fatalf("TTA(0.9)=%v,%v", at, ok)
	}
}
