package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Analyzer applicability. Invariants are properties of specific layers,
// not of Go in general: the simulator driver may read the wall clock to
// report real elapsed time, but a protocol package may not. The driver —
// not the analyzers — owns this mapping so each analyzer stays a pure
// "find every instance" check and the policy lives in one place.
var (
	// protocolDirs are the event-driven protocol layers plus the engine
	// root: single-threaded per node, virtual-time only, everything they
	// emit is part of the deterministic replay surface.
	protocolDirs = map[string]bool{
		".":                  true, // engine root (totoro)
		"internal/ring":      true,
		"internal/pubsub":    true,
		"internal/multiring": true,
		"internal/relay":     true,
		"internal/fl":        true,
		// The wire layer: registration hub and the v2 codec. Both sides of
		// every registered type's contract (gob losslessness, codec
		// fallback parity) are checked where the type or codec lives.
		"internal/wire":       true,
		"internal/wire/codec": true,
	}
	// deterministicDirs additionally covers the simulator core and the
	// experiment harness, whose outputs must be bit-identical across
	// same-seed runs even though they are not protocol layers.
	deterministicDirs = map[string]bool{
		"internal/simnet":      true,
		"internal/experiments": true,
		"internal/bandit":      true,
		"internal/eua":         true,
		"internal/workload":    true,
	}
	// hotPathDirs are packages outside the protocol/deterministic sets that
	// carry //vet:noalloc annotations — the training kernels. (fl and the
	// codec are hot paths too, but already members of protocolDirs.)
	hotPathDirs = map[string]bool{
		"internal/ml": true,
	}
)

// analyzersFor returns the suite subset that applies to the package at
// module-relative dir rel. Packages outside every set still get loaded
// (their gob registrations feed the wire pre-pass and their declarations
// feed the call graph) but are not analyzed.
func analyzersFor(rel string) []*Analyzer {
	var out []*Analyzer
	if protocolDirs[rel] {
		out = append(out, EnvNow, GoFunc, WireSafe, Reentry)
	}
	if protocolDirs[rel] || deterministicDirs[rel] {
		out = append(out, MapOrder, SeedRand)
	}
	if protocolDirs[rel] || deterministicDirs[rel] || hotPathDirs[rel] {
		out = append(out, NoAlloc)
	}
	return out
}

// RunRepo loads every package matched by patterns, builds the repo-wide
// wire registration set, runs each package's applicable analyzers, applies
// //lint:ignore suppressions, and returns the surviving diagnostics sorted
// and deduplicated. Patterns are Go-style: "./..." for the whole module,
// or module-relative directories ("internal/ring"). Type errors in any
// matched package are fatal — analyzers cannot be trusted on partially
// checked code.
func RunRepo(modRoot string, patterns []string) ([]Diagnostic, error) {
	loader, err := NewLoader(modRoot)
	if err != nil {
		return nil, err
	}
	dirs, err := resolvePatterns(loader.ModRoot, patterns)
	if err != nil {
		return nil, err
	}
	// Wire pre-pass over the WHOLE module, not just the selected patterns:
	// registrations live in internal/wire and the engine root, and they
	// vouch for types sent from any package — a single-package run must
	// see the same registration set as a full run or wiresafe would
	// report phantom unregistered payloads.
	allDirs, err := resolvePatterns(loader.ModRoot, []string{"./..."})
	if err != nil {
		return nil, err
	}
	wire := NewWireSet()
	for _, dir := range allDirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		CollectWire(pkg, wire)
	}
	// The call graph spans the same whole-module package set as the wire
	// pre-pass (plus anything the loader pulled in as a dependency): the
	// graph analyzers need to see call chains that cross into packages the
	// selected patterns did not name.
	graph := BuildCallGraph(loader.Loaded())
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: %s does not type-check: %v", pkg.Path, pkg.TypeErrors[0])
		}
		pkgs = append(pkgs, pkg)
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(loader.ModRoot, pkg.Dir)
		if err != nil {
			return nil, err
		}
		rel = filepath.ToSlash(rel)
		analyzers := analyzersFor(rel)
		if len(analyzers) == 0 {
			continue
		}
		var raw []Diagnostic
		for _, a := range analyzers {
			raw = append(raw, RunAnalyzer(a, pkg, wire, graph)...)
		}
		kept, directiveDiags := ApplySuppressions(pkg, raw)
		all = append(all, kept...)
		all = append(all, directiveDiags...)
	}
	SortDiagnostics(all)
	return dedupDiagnostics(all), nil
}

// dedupDiagnostics removes exact duplicates from a sorted slice (the same
// cross-package wire finding can surface from two loads of one type).
func dedupDiagnostics(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// resolvePatterns expands Go-style package patterns into absolute package
// directories. "./..." (or "...") walks the whole module; "dir/..." walks
// a subtree; anything else names one directory. testdata, vendor, .git,
// and hidden directories are never descended into — matching the go
// tool's own rules.
func resolvePatterns(modRoot string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || pat == "./..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(modRoot, root)
		}
		if !recursive {
			if hasBuildableGo(root) {
				add(root)
			} else {
				return nil, fmt.Errorf("lint: no Go files in %s", root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasBuildableGo(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasBuildableGo reports whether dir directly contains at least one
// non-test .go file.
func hasBuildableGo(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}
