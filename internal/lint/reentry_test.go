package lint

import "testing"

// TestReentryCorpus pins the reentry analyzer's full output over a
// three-package module shaped like the engine (transport / ring / node):
// synchronous handler calls back into ring.Route that close a cycle are
// flagged — directly in Deliver and through a helper — while layered
// same-name delegation, own-package upcalls, next-tick deferral, acyclic
// entry-to-entry handoff, and external API entry points stay silent.
func TestReentryCorpus(t *testing.T) {
	RunExpectTestModule(t, "testdata/src/reentry", Reentry)
}
