package lint

import "testing"

// TestSeedRandCorpus pins the seedrand analyzer's full output:
// global-source draws and wall-clock seeds flagged; explicit sources,
// their methods, and Duration arithmetic untouched.
func TestSeedRandCorpus(t *testing.T) {
	RunExpectTest(t, "testdata/src/seedrand", SeedRand)
}
