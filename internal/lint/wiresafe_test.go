package lint

import "testing"

// TestWireSafeCorpus pins the wiresafe analyzer's full output: func,
// chan, unexported, all-unexported, and non-empty-interface fields of
// registered types flagged (transitively); unregistered Env.Send payloads
// flagged; codec-v2 registrations without gob fallback parity flagged;
// durable-store records without codec encoders flagged (and structurally
// walked); custom-gob types, empty-interface payload slots, registered
// payloads, certified records, and unnamed codec prototypes untouched.
func TestWireSafeCorpus(t *testing.T) {
	RunExpectTest(t, "testdata/src/wiresafe", WireSafe)
}
