package lint

import (
	"go/ast"
)

// GoFunc guards the concurrency architecture: protocol packages are
// event-driven and single-threaded per node — all parallelism flows
// through the supervised, bounded worker pool (fl.Go / fl.ForEach, which
// recycle workspaces and keep goroutine count fixed) or through Env.After
// on the event loop. A bare `go` statement sidesteps both: it can outlive
// the round that spawned it, race node state that the event loop assumes
// it owns exclusively, and make goroutine count proportional to fleet
// size. The pool's own implementation carries the suite's only blessed
// suppressions.
var GoFunc = &Analyzer{
	Name: "gofunc",
	Doc:  "bare go statements in protocol packages must use fl.Go/fl.ForEach or Env.After",
	Run:  runGoFunc,
}

func runGoFunc(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "bare go statement bypasses the supervised worker pool; use fl.Go/fl.ForEach for compute or Env.After for scheduling")
			}
			return true
		})
	}
}
