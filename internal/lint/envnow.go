// Package lint holds repo-specific static checks, run as tests in CI.
//
// The one check so far guards the simulator's determinism contract:
// protocol packages must take time from transport.Env.Now (virtual time
// under simnet, wall clock under tcpnet), never from the time package
// directly. A stray time.Now() in a protocol layer compiles and passes
// unit tests, but silently breaks bit-identical replay — exactly the class
// of bug a type checker can't see and a human reviewer forgets.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// wallClockFuncs are the time-package functions that read or schedule on
// the wall clock. Pure types and arithmetic (time.Duration,
// time.Millisecond) stay allowed; timers and sleeps are banned because
// they bypass Env.After.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	// Timer/ticker constructors bypass Env.After and run on the real clock.
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Sleep":     true,
}

// Violation is one wall-clock use found in a checked package.
type Violation struct {
	Pos  token.Position
	Call string // e.g. "time.Now"
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s is wall-clock; use transport.Env (Now/After) instead", v.Pos, v.Call)
}

// CheckEnvNow parses every non-test .go file in dir and reports calls to
// wall-clock functions of the time package (under whatever name the file
// imports it).
func CheckEnvNow(dir string) ([]Violation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Violation
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, checkFile(fset, f)...)
	}
	return out, nil
}

func checkFile(fset *token.FileSet, f *ast.File) []Violation {
	// Resolve the local name of the "time" import ("_" and "." imports are
	// not used in this repo; a dot-import would defeat the check, so flag it
	// outright).
	timeNames := map[string]bool{}
	for _, imp := range f.Imports {
		p, _ := strconv.Unquote(imp.Path.Value)
		if p != "time" {
			continue
		}
		switch {
		case imp.Name == nil:
			timeNames["time"] = true
		case imp.Name.Name == ".":
			return []Violation{{
				Pos:  fset.Position(imp.Pos()),
				Call: `import . "time"`,
			}}
		case imp.Name.Name == "_":
		default:
			timeNames[imp.Name.Name] = true
		}
	}
	if len(timeNames) == 0 {
		return nil
	}
	var out []Violation
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok || !timeNames[ident.Name] || ident.Obj != nil {
			// ident.Obj != nil means a local declaration shadows the import.
			return true
		}
		if wallClockFuncs[sel.Sel.Name] {
			out = append(out, Violation{
				Pos:  fset.Position(sel.Pos()),
				Call: ident.Name + "." + sel.Sel.Name,
			})
		}
		return true
	})
	return out
}
