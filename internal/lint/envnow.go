package lint

import (
	"go/ast"
	"go/types"
)

// EnvNow guards the simulator's determinism contract: protocol packages
// must take time from transport.Env (virtual time under simnet, wall clock
// under tcpnet), never from the time package directly. A stray time.Now()
// in a protocol layer compiles and passes unit tests, but silently breaks
// bit-identical replay — exactly the class of bug a type checker can't see
// and a human reviewer forgets.
var EnvNow = &Analyzer{
	Name: "envnow",
	Doc:  "wall-clock reads/timers in protocol packages must go through transport.Env (Now/After)",
	Run:  runEnvNow,
}

// wallClockFuncs are the time-package functions that read or schedule on
// the wall clock. Pure types and arithmetic (time.Duration,
// time.Millisecond) stay allowed; timers and sleeps are banned because
// they bypass Env.After.
var wallClockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
	// Timer/ticker constructors bypass Env.After and run on the real clock.
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Tick":      true,
	"Sleep":     true,
}

func runEnvNow(pass *Pass) {
	// Type-resolved uses catch every spelling: renamed imports, dot
	// imports, and shadowed locals all resolve (or fail to resolve) to the
	// real time package objects.
	for ident, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			continue
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			continue // methods on time.Time/Duration values are pure
		}
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(ident.Pos(), "time.%s is wall-clock; use transport.Env (Now/After) instead", fn.Name())
		}
	}
	// A dot-import of time would let future wall-clock calls slip in
	// unqualified; flag the import itself.
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if imp.Name != nil && imp.Name.Name == "." && importPathOf(imp) == "time" {
				pass.Reportf(imp.Pos(), `dot-import of "time" hides wall-clock calls; import it qualified`)
			}
		}
	}
}

func importPathOf(imp *ast.ImportSpec) string {
	p := imp.Path.Value
	if len(p) >= 2 {
		return p[1 : len(p)-1]
	}
	return p
}
