package lint

import "testing"

// TestNoAllocCorpus pins the noalloc analyzer's full output: every
// syntactic allocation site (builtins, literals, closures, method values,
// concatenation, conversions, go statements, variadic slices, interface
// boxing), unprovable calls (unmarked allocating callees, unknown
// externals, unresolved dynamic targets), and the unknown-qualifier
// diagnostic are flagged; self-append, panic messages, pure stdlib,
// marked/amortized/cold callees, and clean summaries are not.
func TestNoAllocCorpus(t *testing.T) {
	RunExpectTest(t, "testdata/src/noalloc", NoAlloc)
}
