package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WireSafe guards the wire contract — gob (the fallback encoding) and
// codec v2 (the hot path). Under simnet messages move as in-memory
// values, so a wire-unsafe type or a never-registered payload "works" in
// every simulation and only fails once the same binary runs over tcpnet —
// the worst possible place to discover it. Three checks:
//
//   - every gob-registered wire type declared in the package under
//     analysis must round-trip through gob losslessly: no func or chan
//     fields, no unexported fields (gob drops them silently — state that
//     exists under simnet and vanishes over TCP), no structs whose fields
//     are all unexported (gob refuses those outright), and no non-empty
//     interface fields (each concrete implementation would need its own
//     registration that nothing enforces);
//   - every concrete in-module struct handed to transport.Env.Send must
//     appear in the repo-wide registration set (internal/wire.Register,
//     totoro.RegisterWire, or a direct gob.Register call);
//   - every codec-v2-registered type (wire/codec register/RegisterCodec)
//     must be structurally encodable by the same rules AND also be
//     gob-registered — the tagged gob fallback and legacy GobWire peers
//     must be able to carry every value a v2 codec can, or mixed fleets
//     diverge. The static check is paired with the dynamic one:
//     codec.CertifyLossless round-trips randomized instances of the same
//     registry in the tests;
//   - every durable-store record type (internal/store.RegisterRecords)
//     must have a codec-v2 encoder, because WAL bodies are encoded with
//     codec.Value: a record without one is refused by Append/Snapshot at
//     runtime — after the state change it was meant to journal already
//     happened. Records without a codec are also structurally checked, so
//     the defect is reported at the type, not discovered at replay.
var WireSafe = &Analyzer{
	Name: "wiresafe",
	Doc:  "registered wire types must be lossless under gob and codec v2, Env.Send payloads must be registered, codec types need gob fallback parity, and store records need codec encoders",
	Run:  runWireSafe,
}

// WireSet is the repo-wide set of registered wire types — gob
// registrations and codec-v2 registrations tracked separately — keyed by
// canonical type string (object identity does not hold between a package
// loaded from source and the same package imported from export data).
type WireSet struct {
	entries map[string]WireEntry
	codecs  map[string]WireEntry
	records map[string]WireEntry
}

// WireEntry records one registered type and the registration site.
type WireEntry struct {
	Type types.Type
	Pos  token.Position
}

// NewWireSet returns an empty set.
func NewWireSet() *WireSet {
	return &WireSet{
		entries: map[string]WireEntry{},
		codecs:  map[string]WireEntry{},
		records: map[string]WireEntry{},
	}
}

// wireKey canonicalizes a type for set membership: pointers are flattened
// (gob does the same on the wire) and the key is the fully qualified type
// string of the value type.
func wireKey(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	return types.TypeString(t, nil)
}

// Add records a registered type (first registration site wins).
func (w *WireSet) Add(t types.Type, pos token.Position) {
	k := wireKey(t)
	if _, ok := w.entries[k]; !ok {
		w.entries[k] = WireEntry{Type: t, Pos: pos}
	}
}

// Has reports whether t (or its pointee) is registered.
func (w *WireSet) Has(t types.Type) bool {
	_, ok := w.entries[wireKey(t)]
	return ok
}

// Len returns the number of registered types.
func (w *WireSet) Len() int { return len(w.entries) }

// AddCodec records a codec-v2 registration (first site wins).
func (w *WireSet) AddCodec(t types.Type, pos token.Position) {
	k := wireKey(t)
	if _, ok := w.codecs[k]; !ok {
		w.codecs[k] = WireEntry{Type: t, Pos: pos}
	}
}

// HasCodec reports whether t (or its pointee) has a codec-v2 registration.
func (w *WireSet) HasCodec(t types.Type) bool {
	_, ok := w.codecs[wireKey(t)]
	return ok
}

// CodecLen returns the number of codec-v2 registered types.
func (w *WireSet) CodecLen() int { return len(w.codecs) }

// AddRecord records a durable-store record registration (first site wins).
func (w *WireSet) AddRecord(t types.Type, pos token.Position) {
	k := wireKey(t)
	if _, ok := w.records[k]; !ok {
		w.records[k] = WireEntry{Type: t, Pos: pos}
	}
}

// RecordLen returns the number of registered store record types.
func (w *WireSet) RecordLen() int { return len(w.records) }

// Entries returns all gob-registered types in stable (key-sorted) order.
func (w *WireSet) Entries() []WireEntry { return sortedEntries(w.entries) }

// CodecEntries returns all codec-v2 registered types in stable order.
func (w *WireSet) CodecEntries() []WireEntry { return sortedEntries(w.codecs) }

// RecordEntries returns all store record types in stable order.
func (w *WireSet) RecordEntries() []WireEntry { return sortedEntries(w.records) }

func sortedEntries(m map[string]WireEntry) []WireEntry {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]WireEntry, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// CollectWire scans one package for wire registration calls — gob.Register,
// gob.RegisterName, internal/wire.RegisterPayload, and the codec-v2
// registrations (wire/codec's register and RegisterCodec, whose explicit
// prototype argument exists precisely so this pass can see the static
// type) — and records the static types of their value arguments. The
// driver runs this over every package before any analyzer, so
// registrations made in one package (the internal/wire hub, the codec
// package's init) vouch for types declared in another.
func CollectWire(pkg *Package, ws *WireSet) {
	pass := &Pass{Package: pkg}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Name() == "RegisterRecords" && strings.HasSuffix(fn.Pkg().Path(), "/store") {
				// Variadic: every prototype argument is a record type.
				for _, arg := range call.Args {
					if t := pkg.Info.TypeOf(arg); t != nil {
						ws.AddRecord(t, pkg.Fset.Position(arg.Pos()))
					}
				}
				return true
			}
			argIdx, codec := -1, false
			switch {
			case fn.Pkg().Path() == "encoding/gob" && fn.Name() == "Register":
				argIdx = 0
			case fn.Pkg().Path() == "encoding/gob" && fn.Name() == "RegisterName":
				argIdx = 1
			case fn.Name() == "RegisterPayload" && strings.HasSuffix(fn.Pkg().Path(), "/wire"):
				argIdx = 0
			case (fn.Name() == "register" || fn.Name() == "RegisterCodec") &&
				strings.HasSuffix(fn.Pkg().Path(), "/wire/codec"):
				argIdx, codec = 1, true // (tag, prototype, enc, dec)
			}
			if argIdx < 0 || len(call.Args) <= argIdx {
				return true
			}
			if t := pkg.Info.TypeOf(call.Args[argIdx]); t != nil {
				if codec {
					ws.AddCodec(t, pkg.Fset.Position(call.Args[argIdx].Pos()))
				} else {
					ws.Add(t, pkg.Fset.Position(call.Args[argIdx].Pos()))
				}
			}
			return true
		})
	}
}

func runWireSafe(pass *Pass) {
	if pass.Wire == nil {
		return
	}
	// Check the gob-safety of registered wire types declared here.
	for _, e := range pass.Wire.Entries() {
		named := namedStructOf(e.Type)
		if named == nil {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != pass.Path {
			continue // declared elsewhere; checked when that package runs
		}
		st := named.Underlying().(*types.Struct)
		checkGobStruct(pass, obj.Name(), obj.Pos(), st, map[string]bool{wireKey(named): true})
	}
	// Check codec-v2 registrations declared here: the same structural
	// losslessness rules apply (the hand-rolled encoders carry exported
	// fields only, and funcs/chans/non-empty interfaces are uncodecable),
	// plus fallback parity — a codec type without a gob registration
	// cannot ride the tagged fallback or reach a legacy GobWire peer.
	// Unnamed codec types (primitives, slices, maps) have no declaration
	// site to anchor to; codec.CertifyLossless covers them dynamically.
	for _, e := range pass.Wire.CodecEntries() {
		named := namedStructOf(e.Type)
		if named == nil {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != pass.Path {
			continue
		}
		st := named.Underlying().(*types.Struct)
		checkGobStruct(pass, obj.Name(), obj.Pos(), st, map[string]bool{wireKey(named): true})
		if !pass.Wire.Has(named) {
			pass.Reportf(obj.Pos(),
				"%s has a codec-v2 encoder but no gob registration; the gob fallback and legacy GobWire peers cannot carry it — add it to internal/wire.Register (or gob.Register alongside RegisterCodec)",
				types.TypeString(named, nil))
		}
	}
	// Check durable-store record types declared here. A record with a
	// codec-v2 registration was already structurally checked by the codec
	// pass above; one without is both missing its encoder (Append/Snapshot
	// refuse it at runtime, after the mutation it journals has happened)
	// and still owed the structural walk.
	for _, e := range pass.Wire.RecordEntries() {
		named := namedStructOf(e.Type)
		if named == nil {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != pass.Path {
			continue
		}
		if pass.Wire.HasCodec(named) {
			continue
		}
		pass.Reportf(obj.Pos(),
			"%s is registered as a durable-store record but has no codec-v2 encoder; the WAL encodes bodies with codec.Value, so Append/Snapshot refuse it at runtime — add a RegisterCodec alongside RegisterRecords",
			types.TypeString(named, nil))
		st := named.Underlying().(*types.Struct)
		checkGobStruct(pass, obj.Name(), obj.Pos(), st, map[string]bool{wireKey(named): true})
	}
	// Check that Env.Send payloads are registered.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Name() != "Send" || len(call.Args) != 2 {
				return true
			}
			recv := fn.Type().(*types.Signature).Recv()
			if recv == nil || !isTransportEnv(recv.Type()) {
				return true
			}
			t := pass.Info.TypeOf(call.Args[1])
			if t == nil {
				return true
			}
			named := namedStructOf(t)
			if named == nil || named.Obj().Pkg() == nil {
				return true // interface pass-through, basics, slices: not checkable here
			}
			if !strings.HasPrefix(named.Obj().Pkg().Path(), "totoro") {
				return true
			}
			if !pass.Wire.Has(named) {
				pass.Reportf(call.Args[1].Pos(),
					"%s is sent over the wire but never gob-registered; add it to internal/wire.Register (decodes under simnet, fails over tcpnet)",
					types.TypeString(named, nil))
			}
			return true
		})
	}
}

// isTransportEnv reports whether t is the transport.Env interface.
func isTransportEnv(t types.Type) bool {
	s := types.TypeString(t, nil)
	return strings.HasSuffix(s, "/transport.Env") || s == "transport.Env"
}

// namedStructOf unwraps pointers and returns t as a named struct type, or
// nil when t is anything else.
func namedStructOf(t types.Type) *types.Named {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// hasCustomGobEncoding reports whether t (or *t) provides its own gob or
// binary encoding, making field-level analysis moot (time.Time et al.).
func hasCustomGobEncoding(t types.Type) bool {
	for _, name := range []string{"GobEncode", "MarshalBinary"} {
		if obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}

// checkGobStruct walks the fields of a registered wire struct and reports
// anything gob cannot carry losslessly. at is the position the finding is
// anchored to: the field declaration while inside the package under
// analysis, the outermost local field once the walk crosses into imported
// types (whose positions come from export data).
func checkGobStruct(pass *Pass, path string, at token.Pos, st *types.Struct, seen map[string]bool) {
	exported := 0
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Exported() {
			exported++
		}
	}
	if st.NumFields() > 0 && exported == 0 {
		pass.Reportf(at, "wire type %s has no exported fields; gob refuses to encode it", path)
		return
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		fieldPath := path + "." + field.Name()
		fieldAt := at
		if field.Pkg() != nil && field.Pkg().Path() == pass.Path {
			fieldAt = field.Pos()
		}
		if !field.Exported() {
			pass.Reportf(fieldAt, "wire field %s is unexported; gob drops it silently, so its state vanishes over tcpnet", fieldPath)
			continue
		}
		checkGobType(pass, fieldPath, fieldAt, field.Type(), seen)
	}
}

// checkGobType reports gob-hostile types reachable from a wire field.
func checkGobType(pass *Pass, path string, at token.Pos, t types.Type, seen map[string]bool) {
	switch u := t.Underlying().(type) {
	case *types.Signature:
		pass.Reportf(at, "wire field %s has func type; gob cannot encode functions", path)
	case *types.Chan:
		pass.Reportf(at, "wire field %s has chan type; gob cannot encode channels", path)
	case *types.Interface:
		if !u.Empty() {
			pass.Reportf(at, "wire field %s is a non-empty interface; every concrete implementation needs its own gob registration — prefer a concrete type", path)
		}
	case *types.Pointer:
		checkGobType(pass, path, at, u.Elem(), seen)
	case *types.Slice:
		checkGobType(pass, path+"[]", at, u.Elem(), seen)
	case *types.Array:
		checkGobType(pass, path+"[]", at, u.Elem(), seen)
	case *types.Map:
		checkGobType(pass, path+"[key]", at, u.Key(), seen)
		checkGobType(pass, path+"[value]", at, u.Elem(), seen)
	case *types.Struct:
		k := wireKey(t)
		if seen[k] {
			return
		}
		seen[k] = true
		if hasCustomGobEncoding(t) {
			return
		}
		checkGobStruct(pass, path, at, u, seen)
	}
}
