package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	// Path is the package's import path ("totoro/internal/pubsub"); for
	// directories outside the module (test corpora) it is synthesized from
	// the directory name.
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Pkg and Info carry full type information. Pkg is non-nil even when
	// TypeErrors is not empty (best-effort checking).
	Pkg  *types.Package
	Info *types.Info
	// TypeErrors collects type-checking problems. The repo gate treats any
	// as fatal; test corpora are expected to be error-free too.
	TypeErrors []error
}

// Loader parses and type-checks packages from source. Module-internal
// dependencies are themselves loaded from source (recursively, on demand),
// so every package in one Loader shares a single go/types universe —
// cross-package analyses can compare types.Object pointers directly.
// Out-of-module dependencies are imported from compiled export data
// located via `go list -export`, which resolves through the module's build
// cache — so the loader needs the go toolchain but no third-party
// machinery, and sees exactly the types the real build sees.
type Loader struct {
	// ModRoot is the module root directory (where go.mod lives).
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string

	fset       *token.FileSet
	ctx        build.Context
	imp        types.ImporterFrom
	exports    map[string]string   // import path -> export data file
	prefetched bool                // one-shot `go list -export -deps` ran
	pkgs       map[string]*Package // by absolute dir
	loading    map[string]bool     // dirs mid-check (import-cycle guard)
	loaded     []*Package          // every package, in load order
}

// NewLoader creates a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    token.NewFileSet(),
		ctx:     build.Default,
		exports: map[string]string{},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	// Analysis targets are pure Go; cgo-tagged files are excluded up front
	// so the parser never sees import "C" magic.
	l.ctx.CgoEnabled = false
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport).(types.ImporterFrom)
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Loaded returns every package this loader has loaded, in load order.
func (l *Loader) Loaded() []*Package { return l.loaded }

// sourceFirstImporter resolves module-internal import paths by loading the
// target package from source through the same Loader, and falls back to
// compiled export data for everything else. Source-first importing is what
// gives the whole program ONE type-checking universe: the *types.Func for
// ring.(*Node).Route seen by the pubsub package is the same object the
// ring package defines, so the call graph can key nodes by object
// identity instead of re-deriving symbolic names.
type sourceFirstImporter struct{ l *Loader }

func (si sourceFirstImporter) Import(path string) (*types.Package, error) {
	return si.ImportFrom(path, "", 0)
}

func (si sourceFirstImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if sub, ok := si.l.moduleDir(path); ok {
		p, err := si.l.LoadDir(sub)
		if err != nil {
			return nil, err
		}
		if len(p.TypeErrors) > 0 {
			return nil, fmt.Errorf("lint: dependency %s does not type-check: %v", path, p.TypeErrors[0])
		}
		return p.Pkg, nil
	}
	return si.l.imp.ImportFrom(path, dir, mode)
}

// moduleDir maps a module-internal import path to its source directory
// (ok=false for out-of-module paths).
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// findModule walks up from dir to the nearest go.mod.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// lookupExport resolves an import path to its compiled export data via the
// go toolchain (building it into the cache if needed). The first miss
// triggers one batched `go list -export -deps ./...` that resolves every
// dependency of the module in a single toolchain invocation — the
// per-import subprocess is only a fallback for paths outside the module's
// dependency graph (test corpora importing stdlib packages the module
// never uses).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok && !l.prefetched {
		l.prefetchExports()
		file, ok = l.exports[path]
	}
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = l.ModRoot
		out, err := cmd.Output()
		if err != nil {
			detail := ""
			if ee, ok := err.(*exec.ExitError); ok {
				detail = ": " + strings.TrimSpace(string(ee.Stderr))
			}
			return nil, fmt.Errorf("lint: go list -export %s: %v%s", path, err, detail)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %s", path)
		}
		l.exports[path] = file
	}
	return os.Open(file)
}

// prefetchExports fills the export cache for the module's whole dependency
// graph in one `go list` run. Best-effort: any failure just leaves the
// cache to be filled by per-path lookups.
func (l *Loader) prefetchExports() {
	l.prefetched = true
	cmd := exec.Command("go", "list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}", "./...")
	cmd.Dir = l.ModRoot
	out, err := cmd.Output()
	if err != nil {
		return
	}
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(strings.TrimSpace(line), "\t")
		if !ok || file == "" {
			continue
		}
		if _, have := l.exports[path]; !have {
			l.exports[path] = file
		}
	}
}

// importPathFor synthesizes the import path of a directory: module-relative
// when inside the module, "lint.test/<base>" otherwise (test corpora in
// temporary directories).
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "lint.test/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the non-test Go files of one directory.
// Files excluded by build constraints for the current GOOS/GOARCH (or by
// cgo) are skipped, mirroring what the real build would compile. Parse
// errors are fatal; type errors are collected in Package.TypeErrors.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[abs]; ok {
		return p, nil
	}
	if l.loading[abs] {
		return nil, fmt.Errorf("lint: import cycle through %s", abs)
	}
	l.loading[abs] = true
	defer delete(l.loading, abs)
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := l.ctx.MatchFile(abs, name)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %v", filepath.Join(abs, name), err)
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", abs)
	}
	// Parse concurrently: token.FileSet is safe for concurrent AddFile, and
	// parsing dominates load time for large packages. Results keep the
	// sorted-name order so downstream iteration stays deterministic.
	parsed := make([]*ast.File, len(names))
	errs := make([]error, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parsed[i], errs[i] = parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		}()
	}
	wg.Wait()
	var files []*ast.File
	for i, f := range parsed {
		if errs[i] != nil {
			return nil, errs[i]
		}
		// MatchFile handles build tags but not cgo; with cgo disabled a
		// file importing "C" is unbuildable, so skip it like the build
		// would rather than fail type-checking on the pseudo-package.
		if usesCgo(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", abs)
	}
	p := &Package{
		Path:  l.importPathFor(abs),
		Dir:   abs,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer: sourceFirstImporter{l},
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check reports the first error as err; everything lands in TypeErrors
	// via the callback, and the partially checked package stays usable.
	p.Pkg, _ = conf.Check(p.Path, l.fset, files, p.Info)
	l.pkgs[abs] = p
	l.loaded = append(l.loaded, p)
	return p, nil
}

// usesCgo reports whether f imports the cgo pseudo-package "C".
func usesCgo(f *ast.File) bool {
	for _, imp := range f.Imports {
		if importPathOf(imp) == "C" {
			return true
		}
	}
	return false
}
