package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	// Path is the package's import path ("totoro/internal/pubsub"); for
	// directories outside the module (test corpora) it is synthesized from
	// the directory name.
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	// Pkg and Info carry full type information. Pkg is non-nil even when
	// TypeErrors is not empty (best-effort checking).
	Pkg  *types.Package
	Info *types.Info
	// TypeErrors collects type-checking problems. The repo gate treats any
	// as fatal; test corpora are expected to be error-free too.
	TypeErrors []error
}

// Loader parses and type-checks packages from source. Dependencies are
// imported from compiled export data located via `go list -export`, which
// resolves through the module's build cache — so the loader needs the go
// toolchain but no third-party machinery, and sees exactly the types the
// real build sees.
type Loader struct {
	// ModRoot is the module root directory (where go.mod lives).
	ModRoot string
	// ModPath is the module path declared in go.mod.
	ModPath string

	fset    *token.FileSet
	ctx     build.Context
	imp     types.ImporterFrom
	exports map[string]string   // import path -> export data file
	pkgs    map[string]*Package // by absolute dir
}

// NewLoader creates a loader rooted at the module containing dir (found by
// walking up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    token.NewFileSet(),
		ctx:     build.Default,
		exports: map[string]string{},
		pkgs:    map[string]*Package{},
	}
	// Analysis targets are pure Go; cgo-tagged files are excluded up front
	// so the parser never sees import "C" magic.
	l.ctx.CgoEnabled = false
	l.imp = importer.ForCompiler(l.fset, "gc", l.lookupExport).(types.ImporterFrom)
	return l, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// findModule walks up from dir to the nearest go.mod.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// lookupExport resolves an import path to its compiled export data via the
// go toolchain (building it into the cache if needed).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = l.ModRoot
		out, err := cmd.Output()
		if err != nil {
			detail := ""
			if ee, ok := err.(*exec.ExitError); ok {
				detail = ": " + strings.TrimSpace(string(ee.Stderr))
			}
			return nil, fmt.Errorf("lint: go list -export %s: %v%s", path, err, detail)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %s", path)
		}
		l.exports[path] = file
	}
	return os.Open(file)
}

// importPathFor synthesizes the import path of a directory: module-relative
// when inside the module, "lint.test/<base>" otherwise (test corpora in
// temporary directories).
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "lint.test/" + filepath.Base(dir)
	}
	if rel == "." {
		return l.ModPath
	}
	return l.ModPath + "/" + filepath.ToSlash(rel)
}

// LoadDir parses and type-checks the non-test Go files of one directory.
// Files excluded by build constraints for the current GOOS/GOARCH (or by
// cgo) are skipped, mirroring what the real build would compile. Parse
// errors are fatal; type errors are collected in Package.TypeErrors.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[abs]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		match, err := l.ctx.MatchFile(abs, name)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %v", filepath.Join(abs, name), err)
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", abs)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		// MatchFile handles build tags but not cgo; with cgo disabled a
		// file importing "C" is unbuildable, so skip it like the build
		// would rather than fail type-checking on the pseudo-package.
		if usesCgo(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", abs)
	}
	p := &Package{
		Path:  l.importPathFor(abs),
		Dir:   abs,
		Fset:  l.fset,
		Files: files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	// Check reports the first error as err; everything lands in TypeErrors
	// via the callback, and the partially checked package stays usable.
	p.Pkg, _ = conf.Check(p.Path, l.fset, files, p.Info)
	l.pkgs[abs] = p
	return p, nil
}

// usesCgo reports whether f imports the cgo pseudo-package "C".
func usesCgo(f *ast.File) bool {
	for _, imp := range f.Imports {
		if importPathOf(imp) == "C" {
			return true
		}
	}
	return false
}
