package lint

import (
	"fmt"
	"regexp"
	"strconv"
)

// The expectation harness drives golden-comment analyzer tests over the
// corpora in testdata/src. A corpus file marks each line that must be
// flagged with
//
//	// want "regexp" ["regexp" ...]
//
// and the harness verifies an exact bidirectional match: every diagnostic
// must satisfy a want on its line, and every want must be satisfied by a
// diagnostic. Unmarked findings and unmet expectations are both failures,
// so each corpus pins the analyzer's full output — false positives show up
// as loudly as false negatives.

// wantExpectation is one compiled // want pattern.
type wantExpectation struct {
	file string
	line int
	rx   *regexp.Regexp
	src  string
	met  bool
}

var (
	wantRe   = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantRxRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)
)

// parseWants extracts the // want expectations from a loaded package.
func parseWants(pkg *Package) ([]*wantExpectation, error) {
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := wantRxRe.FindAllString(m[1], -1)
				if len(quoted) == 0 {
					return nil, fmt.Errorf("%s: // want comment without a quoted pattern", pos)
				}
				for _, q := range quoted {
					pat, err := strconv.Unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &wantExpectation{
						file: pos.Filename, line: pos.Line, rx: rx, src: pat,
					})
				}
			}
		}
	}
	return wants, nil
}

// TestingT is the subset of *testing.T the harness needs (kept small so
// the harness itself is testable).
type TestingT interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunExpectTest loads the package in dir, runs the given analyzers over it
// (with a wire set collected from the corpus itself, so wiresafe corpora
// can register their own types in an init), applies //lint:ignore
// suppressions, and matches the surviving diagnostics — including
// directive-hygiene findings — against the corpus's // want markers.
func RunExpectTest(t TestingT, dir string, analyzers ...*Analyzer) {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("lint: load %s: %v", dir, err)
	}
	runExpect(t, loader, []*Package{pkg}, analyzers)
}

// RunExpectTestModule loads EVERY package under modRoot (a corpus with its
// own go.mod, so multi-package fixtures stay invisible to the real build),
// builds a call graph spanning all of them, runs the analyzers over each,
// and matches diagnostics against the union of all // want markers. This
// is the harness for the call-graph analyzers, whose findings depend on
// cross-package call chains a single-directory load cannot express.
func RunExpectTestModule(t TestingT, modRoot string, analyzers ...*Analyzer) {
	t.Helper()
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	dirs, err := resolvePatterns(loader.ModRoot, []string{"./..."})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("lint: load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	runExpect(t, loader, pkgs, analyzers)
}

// runExpect is the shared harness core: graph construction over the
// loader's full package set, analyzer runs, suppression processing, and
// bidirectional want matching.
func runExpect(t TestingT, loader *Loader, pkgs []*Package, analyzers []*Analyzer) {
	t.Helper()
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("lint: corpus %s does not type-check: %v", pkg.Dir, pkg.TypeErrors)
		}
	}
	wire := NewWireSet()
	for _, pkg := range pkgs {
		CollectWire(pkg, wire)
	}
	// Graph over everything the loader saw (corpus packages plus any
	// module-internal dependencies pulled in by source-first importing).
	graph := BuildCallGraph(loader.Loaded())
	var diags []Diagnostic
	var wants []*wantExpectation
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			raw = append(raw, RunAnalyzer(a, pkg, wire, graph)...)
		}
		kept, directiveDiags := ApplySuppressions(pkg, raw)
		diags = append(diags, kept...)
		diags = append(diags, directiveDiags...)
		w, err := parseWants(pkg)
		if err != nil {
			t.Fatalf("lint: %v", err)
		}
		wants = append(wants, w...)
	}
	SortDiagnostics(diags)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.met = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.src)
		}
	}
}
