package lint

import "testing"

// TestRepoVetGate is the in-tree CI gate: the full analyzer suite over
// the whole module must come back clean. Any finding here is either a
// real determinism/concurrency/wire bug to fix or a judged exemption to
// annotate with //lint:ignore — never something to wave through.
func TestRepoVetGate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the gate type-checks the whole module (totoro-vet runs it in CI)")
	}
	diags, err := RunRepo("../..", []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
