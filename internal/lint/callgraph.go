package lint

import (
	"go/ast"
	"go/types"
)

// The call graph is the whole-program substrate the cross-package
// analyzers (reentry, maporder, noalloc) share. It is built once per
// driver run over every loaded package — which, thanks to the loader's
// source-first importing, all live in ONE go/types universe, so nodes are
// keyed by *types.Func identity and a call in pubsub resolves to the very
// object ring declares.
//
// Resolution is deliberately conservative in both directions:
//
//   - static calls and method calls on concrete types resolve exactly;
//   - a method call through an interface resolves to EVERY in-program
//     named type whose method set satisfies the interface (may-call
//     over-approximation), except methods named Send or After — those are
//     the transport's asynchronous boundary by contract (the work happens
//     on a later event-loop turn), so resolving them into concrete
//     transports would manufacture false synchronous cycles;
//   - a call through a struct field of function type resolves to every
//     function the program ever binds to that field (composite literals
//     and assignments) — the pubsub.Handlers callback pattern;
//   - calls through plain function-typed values (locals, parameters)
//     produce an unresolved site with no callee: a known, documented gap
//     that keeps the graph finite and cheap.
//
// Call sites inside function literals that are handed to an asynchronous
// scheduler (Env.After, fl.Go, fl.ForEach, ...) are marked Async: they
// execute on a later tick or another goroutine, so synchronous-reachability
// queries skip them.

// FuncNode is one function or method declared in a loaded package.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Out lists every call site lexically inside Decl (including sites in
	// nested function literals, which carry the Async flag).
	Out []*CallSite
}

// CallSite is one call expression attributed to its enclosing declaration.
type CallSite struct {
	Call   *ast.CallExpr
	Caller *FuncNode
	// Callee is the resolved in-program target (nil when the target is
	// outside the loaded program or unresolvable). A dynamic call with
	// several possible targets yields several CallSites.
	Callee *FuncNode
	// Fn is the callee's types object: the concrete function for resolved
	// edges, the interface method for unresolved dynamic calls, nil for
	// unresolved func-value calls.
	Fn *types.Func
	// Dynamic marks interface-method and func-field dispatch.
	Dynamic bool
	// Owner is the package declaring the interface or callback struct a
	// dynamic call goes through. Analyzers use it to recognize a package's
	// own upcall points (ring's App.Deliver, pubsub's Handlers.OnDeliver).
	Owner *types.Package
	// Async marks calls that do not run synchronously under the caller:
	// sites inside async-scheduled function literals, and calls to the
	// Send/After transport boundary.
	Async bool
	// PanicArg marks calls inside a panic(...) argument: a path that never
	// returns, which allocation analysis treats as cold.
	PanicArg bool
}

// CallGraph is the whole-program graph plus per-analyzer fact caches.
type CallGraph struct {
	Pkgs []*Package

	nodes map[*types.Func]*FuncNode
	sites map[*ast.CallExpr][]*CallSite
	named []*types.Named // every in-program non-interface named type

	implCache map[*types.Func][]*FuncNode // interface method -> implementations
	fieldBind map[string][]*FuncNode      // "pkg.Type.Field" -> bound funcs

	reachCache map[*types.Func]map[*types.Func]bool // sync-reachability closures
	sinks      map[*types.Func]sinkMask             // maporder summaries
	allocs     map[*types.Func]bool                 // noalloc summaries
	noalloc    map[*types.Func]noallocMode          // parsed //vet:noalloc marks
	entries    []*FuncNode                          // dispatch entries (reentry)
}

// asyncSchedulerNames are callables whose function-valued arguments run
// asynchronously: on a later virtual-time tick (After, AfterFunc,
// ScheduleAfter, schedule) or on a supervised worker goroutine (fl.Go,
// fl.ForEach). A literal passed to one — directly or through a local
// variable, as in the `tick := func(){...}; env.After(d, tick)` idiom —
// has its call sites marked Async.
var asyncSchedulerNames = map[string]bool{
	"After":         true,
	"AfterFunc":     true,
	"Go":            true,
	"ForEach":       true,
	"ScheduleAfter": true,
	"schedule":      true,
}

// asyncBoundaryMethods are interface methods that are asynchronous by the
// transport contract: Env.Send enqueues, Env.After schedules. They are
// never resolved into concrete transport implementations — the simulator's
// synchronous handoff inside Send is an implementation detail, not part of
// the caller's synchronous extent.
var asyncBoundaryMethods = map[string]bool{
	"Send":  true,
	"After": true,
}

// BuildCallGraph constructs the graph over pkgs. All packages must come
// from one Loader (one type universe).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Pkgs:       pkgs,
		nodes:      map[*types.Func]*FuncNode{},
		sites:      map[*ast.CallExpr][]*CallSite{},
		implCache:  map[*types.Func][]*FuncNode{},
		fieldBind:  map[string][]*FuncNode{},
		reachCache: map[*types.Func]map[*types.Func]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn.Origin()] = &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
		if pkg.Pkg == nil {
			continue
		}
		scope := pkg.Pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); !isIface {
				g.named = append(g.named, named)
			}
		}
	}
	for _, pkg := range pkgs {
		g.collectFieldBindings(pkg)
	}
	for _, n := range g.nodes {
		if n.Decl.Body != nil {
			g.buildEdges(n)
		}
	}
	return g
}

// Node returns the graph node for fn (nil when fn has no in-program
// declaration). Instantiated generics are normalized to their origin.
func (g *CallGraph) Node(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// SitesFor returns the resolved call sites for one call expression (nil
// for calls outside the graph, conversions, and builtins).
func (g *CallGraph) SitesFor(call *ast.CallExpr) []*CallSite {
	return g.sites[call]
}

// fieldKey names a struct field stably: "pkgpath.Type.Field".
func fieldKey(named *types.Named, field string) string {
	obj := named.Obj()
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + "." + obj.Name() + "." + field
}

// namedOf unwraps pointers and aliases down to a *types.Named (nil
// otherwise).
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := types.Unalias(t).(*types.Named)
	return n
}

// collectFieldBindings records every function the package binds to a
// struct field of function type, via keyed/positional composite literals
// and plain assignments. Function literals bound to fields are skipped
// (their bodies are attributed to the enclosing declaration instead).
func (g *CallGraph) collectFieldBindings(pkg *Package) {
	bind := func(named *types.Named, field string, fn *types.Func) {
		if named == nil || fn == nil {
			return
		}
		if node := g.Node(fn); node != nil {
			key := fieldKey(named, field)
			g.fieldBind[key] = append(g.fieldBind[key], node)
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CompositeLit:
				named := namedOf(pkg.Info.TypeOf(x))
				if named == nil {
					return true
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					return true
				}
				for i, elt := range x.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							bind(named, key.Name, funcValueOf(pkg, kv.Value))
						}
						continue
					}
					if i < st.NumFields() {
						bind(named, st.Field(i).Name(), funcValueOf(pkg, elt))
					}
				}
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, lhs := range x.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					s := pkg.Info.Selections[sel]
					if s == nil || s.Kind() != types.FieldVal {
						continue
					}
					bind(namedOf(s.Recv()), sel.Sel.Name, funcValueOf(pkg, x.Rhs[i]))
				}
			}
			return true
		})
	}
}

// funcValueOf resolves an expression used as a function value to its
// declared function or method (nil for literals and non-functions).
func funcValueOf(pkg *Package, e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[x].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[x.Sel].(*types.Func)
		return fn
	}
	return nil
}

// asyncLiterals finds the function literals inside body whose call sites
// run asynchronously: literals passed to an async scheduler directly, or
// through a variable that is (anywhere in body) passed to one.
func asyncLiterals(pkg *Package, body *ast.BlockStmt) map[*ast.FuncLit]bool {
	lits := map[*ast.FuncLit]bool{}
	vars := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if !asyncSchedulerNames[name] {
			return true
		}
		for _, arg := range call.Args {
			switch a := ast.Unparen(arg).(type) {
			case *ast.FuncLit:
				lits[a] = true
			case *ast.Ident:
				if obj := pkg.Info.Uses[a]; obj != nil {
					vars[obj] = true
				}
			}
		}
		return true
	})
	if len(vars) == 0 {
		return lits
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				ident, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pkg.Info.Defs[ident]
				if obj == nil {
					obj = pkg.Info.Uses[ident]
				}
				if obj == nil || !vars[obj] {
					continue
				}
				if lit, ok := ast.Unparen(x.Rhs[i]).(*ast.FuncLit); ok {
					lits[lit] = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i >= len(x.Values) {
					break
				}
				obj := pkg.Info.Defs[name]
				if obj == nil || !vars[obj] {
					continue
				}
				if lit, ok := ast.Unparen(x.Values[i]).(*ast.FuncLit); ok {
					lits[lit] = true
				}
			}
		}
		return true
	})
	return lits
}

// buildEdges walks one declaration's body and records a CallSite for every
// call expression, resolving static, interface, and field-callback targets.
func (g *CallGraph) buildEdges(n *FuncNode) {
	pkg := n.Pkg
	async := asyncLiterals(pkg, n.Decl.Body)

	// Manual stack walk so each call knows its enclosing literals and
	// whether it sits inside a panic(...) argument.
	var litStack []*ast.FuncLit
	var panicDepth int
	var stack []ast.Node
	inAsync := func() bool {
		for _, l := range litStack {
			if async[l] {
				return true
			}
		}
		return false
	}
	ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
		if nd == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if _, ok := top.(*ast.FuncLit); ok {
				litStack = litStack[:len(litStack)-1]
			}
			if call, ok := top.(*ast.CallExpr); ok && isPanicCall(pkg, call) {
				panicDepth--
			}
			return true
		}
		stack = append(stack, nd)
		if lit, ok := nd.(*ast.FuncLit); ok {
			litStack = append(litStack, lit)
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPanicCall(pkg, call) {
			panicDepth++
			return true
		}
		g.resolveCall(n, call, inAsync(), panicDepth > 0)
		return true
	})
}

// isPanicCall reports whether call is the builtin panic.
func isPanicCall(pkg *Package, call *ast.CallExpr) bool {
	ident, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "panic"
}

// resolveCall classifies one call expression and appends its sites.
func (g *CallGraph) resolveCall(n *FuncNode, call *ast.CallExpr, inAsync, inPanic bool) {
	pkg := n.Pkg
	add := func(s *CallSite) {
		s.Call, s.Caller, s.Async, s.PanicArg = call, n, s.Async || inAsync, inPanic
		n.Out = append(n.Out, s)
		g.sites[call] = append(g.sites[call], s)
	}
	// Conversions are CallExprs syntactically but not calls.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	if fn := calleeOf(pkg, call); fn != nil {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				// Interface dispatch.
				if asyncBoundaryMethods[fn.Name()] {
					add(&CallSite{Fn: fn, Dynamic: true, Owner: fn.Pkg(), Async: true})
					return
				}
				impls := g.implementers(fn)
				if len(impls) == 0 {
					add(&CallSite{Fn: fn, Dynamic: true, Owner: fn.Pkg()})
					return
				}
				for _, impl := range impls {
					add(&CallSite{Callee: impl, Fn: impl.Fn, Dynamic: true, Owner: fn.Pkg()})
				}
				return
			}
		}
		// Static call (function, method on a concrete type, or method
		// expression). Callee nil when declared outside the program.
		add(&CallSite{Callee: g.Node(fn), Fn: fn})
		return
	}
	// Call through a struct field of function type: the callback pattern.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
			named := namedOf(s.Recv())
			if named == nil {
				return
			}
			owner := named.Obj().Pkg()
			targets := g.fieldBind[fieldKey(named, sel.Sel.Name)]
			if len(targets) == 0 {
				add(&CallSite{Dynamic: true, Owner: owner})
				return
			}
			for _, t := range targets {
				add(&CallSite{Callee: t, Fn: t.Fn, Dynamic: true, Owner: owner})
			}
		}
	}
	// Remaining shapes (func-typed locals/params, builtins) stay edgeless.
}

// calleeOf resolves a call's callee object (nil for indirect calls,
// builtins, and conversions). Like calleeFunc but Pass-free, so the graph
// builder can use it.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// implementers resolves an interface method to every in-program named type
// that satisfies the interface, returning the graph nodes of the concrete
// methods. Results are cached per interface method.
func (g *CallGraph) implementers(ifaceMethod *types.Func) []*FuncNode {
	if impls, ok := g.implCache[ifaceMethod]; ok {
		return impls
	}
	var impls []*FuncNode
	iface, _ := ifaceMethod.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
	if iface != nil {
		for _, named := range g.named {
			ptr := types.NewPointer(named)
			if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
				continue
			}
			sel := types.NewMethodSet(ptr).Lookup(ifaceMethod.Pkg(), ifaceMethod.Name())
			if sel == nil {
				continue
			}
			if mf, ok := sel.Obj().(*types.Func); ok {
				if node := g.Node(mf); node != nil {
					impls = append(impls, node)
				}
			}
		}
	}
	g.implCache[ifaceMethod] = impls
	return impls
}

// SyncReachable returns the set of functions reachable from fn over
// synchronous edges, fn included. The closure is cached — reentry queries
// it once per dispatch entry.
func (g *CallGraph) SyncReachable(fn *types.Func) map[*types.Func]bool {
	fn = fn.Origin()
	if r, ok := g.reachCache[fn]; ok {
		return r
	}
	reach := map[*types.Func]bool{fn: true}
	work := []*types.Func{fn}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		node := g.nodes[cur]
		if node == nil {
			continue
		}
		for _, site := range node.Out {
			if site.Async || site.Callee == nil {
				continue
			}
			next := site.Callee.Fn.Origin()
			if !reach[next] {
				reach[next] = true
				work = append(work, next)
			}
		}
	}
	g.reachCache[fn] = reach
	return reach
}

// Sinks computes (and caches) the whole-program map-order sink summaries:
// for every declared function, the order-sensitive effects it performs
// directly or through any synchronous OR asynchronous call chain. (Async
// edges propagate too: scheduling one timer per map key still leaks
// iteration order into the event queue.) Merge sinks do not propagate
// through calls — a callee folding floats into its own locals is
// order-independent from the caller's perspective.
//
// Out-of-program callees contribute nothing here; the stdlib's
// order-sensitive entry points (math/rand draws, send-shaped methods) are
// classified name-based at the call site by directSink, and the rest of
// the stdlib — including the sort/slices sorts, which take map-derived
// data and return it order-laundered — is summary-neutral by design.
func (g *CallGraph) Sinks() map[*types.Func]sinkMask {
	if g.sinks != nil {
		return g.sinks
	}
	direct := map[*types.Func]sinkMask{}
	for fn, node := range g.nodes {
		if node.Decl.Body == nil {
			direct[fn] = 0
			continue
		}
		mask := sinkMask(0)
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			mask |= directSinkInfo(node.Pkg, n)
			return true
		})
		direct[fn] = mask
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range g.nodes {
			mask := direct[fn]
			for _, site := range node.Out {
				if site.Callee == nil {
					continue
				}
				mask |= direct[site.Callee.Fn.Origin()] &^ sinkMerge
			}
			if mask != direct[fn] {
				direct[fn] = mask
				changed = true
			}
		}
	}
	g.sinks = direct
	return direct
}
