package lint

import (
	"go/types"
	"reflect"
	"strings"
	"testing"
)

// loadCorpusGraph loads every package of the multi-package corpus module
// at modRoot through one Loader and builds the whole-program graph.
func loadCorpusGraph(t *testing.T, modRoot string) *CallGraph {
	t.Helper()
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	dirs, err := resolvePatterns(loader.ModRoot, []string{"./..."})
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, dir := range dirs {
		if _, err := loader.LoadDir(dir); err != nil {
			t.Fatalf("lint: load %s: %v", dir, err)
		}
	}
	return BuildCallGraph(loader.Loaded())
}

// findFunc locates a declared function by "pkgname.Name" (methods by their
// bare name; receiver types are unambiguous in the corpus).
func findFunc(t *testing.T, g *CallGraph, qualified string) *FuncNode {
	t.Helper()
	pkgName, name, ok := strings.Cut(qualified, ".")
	if !ok {
		t.Fatalf("bad qualified name %q", qualified)
	}
	var found *FuncNode
	for _, node := range g.nodes {
		if node.Fn.Name() == name && node.Fn.Pkg() != nil && node.Fn.Pkg().Name() == pkgName {
			if found != nil {
				t.Fatalf("ambiguous %q", qualified)
			}
			found = node
		}
	}
	if found == nil {
		t.Fatalf("no function %q in graph", qualified)
	}
	return found
}

// TestCallGraphInterfaceDispatch proves a call through an interface in one
// package resolves to its implementation in another: ring.Route's upcall
// App.Deliver must carry a dynamic edge to node.Deliver, owned by the
// interface's declaring package.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := loadCorpusGraph(t, "testdata/src/reentry")
	route := findFunc(t, g, "ring.Route")
	deliver := findFunc(t, g, "node.Deliver")
	var hit *CallSite
	for _, site := range route.Out {
		if site.Callee == deliver {
			hit = site
		}
	}
	if hit == nil {
		t.Fatalf("ring.Route has no edge to node.Deliver; out-edges: %v", siteNames(route))
	}
	if !hit.Dynamic {
		t.Errorf("ring.Route -> node.Deliver should be a dynamic edge")
	}
	if hit.Owner == nil || hit.Owner.Name() != "ring" {
		t.Errorf("edge owner = %v, want the interface's package (ring)", hit.Owner)
	}
}

// TestCallGraphAsyncBoundary proves the transport contract: calls to
// Env.Send stay unresolved and async, and call sites inside a literal
// handed to Env.After are attributed to the enclosing declaration with
// the Async flag.
func TestCallGraphAsyncBoundary(t *testing.T) {
	g := loadCorpusGraph(t, "testdata/src/reentry")
	route := findFunc(t, g, "ring.Route")
	var send *CallSite
	for _, site := range route.Out {
		if site.Fn != nil && site.Fn.Name() == "Send" {
			send = site
		}
	}
	if send == nil {
		t.Fatalf("ring.Route has no Send site; out-edges: %v", siteNames(route))
	}
	if !send.Async || send.Callee != nil {
		t.Errorf("Env.Send site: Async=%v Callee=%v, want async and unresolved", send.Async, send.Callee)
	}

	rebalance := findFunc(t, g, "node.rebalance")
	var deferred *CallSite
	for _, site := range rebalance.Out {
		if site.Fn != nil && site.Fn.Name() == "Route" {
			deferred = site
		}
	}
	if deferred == nil {
		t.Fatalf("node.rebalance's literal Route call not attributed to rebalance; out-edges: %v", siteNames(rebalance))
	}
	if !deferred.Async {
		t.Errorf("Route call inside an After literal must be Async")
	}
	if deferred.Caller != rebalance {
		t.Errorf("literal call site attributed to %v, want rebalance", deferred.Caller.Fn)
	}
}

// TestCallGraphSyncReachableCycle proves reachability follows synchronous
// edges across packages and through interface dispatch, terminates on the
// Route <-> Deliver cycle, and excludes async edges.
func TestCallGraphSyncReachableCycle(t *testing.T) {
	g := loadCorpusGraph(t, "testdata/src/reentry")
	recv := findFunc(t, g, "node.Receive")
	route := findFunc(t, g, "ring.Route")
	deliver := findFunc(t, g, "node.Deliver")
	republish := findFunc(t, g, "node.republish")
	rebalance := findFunc(t, g, "node.rebalance")

	// node.Receive -> ring.Receive -> ring.Route -> (iface) node.Deliver.
	if !g.SyncReachable(recv.Fn)[deliver.Fn] {
		t.Errorf("node.Deliver not sync-reachable from node.Receive")
	}
	// The re-entry cycle closes in both directions without hanging.
	if !g.SyncReachable(route.Fn)[republish.Fn] {
		t.Errorf("node.republish not sync-reachable from ring.Route")
	}
	if !g.SyncReachable(republish.Fn)[route.Fn] {
		t.Errorf("ring.Route not sync-reachable from node.republish")
	}
	// rebalance only reaches Route through the async literal: excluded.
	if g.SyncReachable(rebalance.Fn)[route.Fn] {
		t.Errorf("ring.Route must not be sync-reachable from node.rebalance (After boundary)")
	}
}

// TestCallGraphFactCaching proves the per-function fact summaries are
// computed once and shared: repeated queries return the SAME maps, so the
// analyzers sharing one graph never recompute each other's facts.
func TestCallGraphFactCaching(t *testing.T) {
	g := loadCorpusGraph(t, "testdata/src/reentry")
	if a, b := g.Sinks(), g.Sinks(); reflect.ValueOf(a).Pointer() != reflect.ValueOf(b).Pointer() {
		t.Errorf("Sinks() recomputed instead of cached")
	}
	route := findFunc(t, g, "ring.Route")
	if a, b := g.SyncReachable(route.Fn), g.SyncReachable(route.Fn); reflect.ValueOf(a).Pointer() != reflect.ValueOf(b).Pointer() {
		t.Errorf("SyncReachable() recomputed instead of cached")
	}
	marks := g.noallocMarks()
	if reflect.ValueOf(marks).Pointer() != reflect.ValueOf(g.noallocMarks()).Pointer() {
		t.Errorf("noallocMarks() recomputed instead of cached")
	}
}

// TestCallGraphSingleUniverse proves the loader's source-first importing
// puts every package in one type universe: the *types.Named for
// ring.Delivery seen from node's files IS ring's own object, so pointer
// identity (and types.Implements) works across packages.
func TestCallGraphSingleUniverse(t *testing.T) {
	g := loadCorpusGraph(t, "testdata/src/reentry")
	deliver := findFunc(t, g, "node.Deliver")
	ringPkg := findFunc(t, g, "ring.Route").Pkg

	sig := deliver.Fn.Type().(*types.Signature)
	param := namedOf(sig.Params().At(0).Type())
	if param == nil {
		t.Fatalf("node.Deliver's parameter is not a named type")
	}
	own := ringPkg.Pkg.Scope().Lookup("Delivery")
	if own == nil {
		t.Fatalf("ring.Delivery not found in ring's scope")
	}
	if param.Obj() != own {
		t.Errorf("ring.Delivery has two identities: %p (via node) vs %p (via ring)", param.Obj(), own)
	}
}

// siteNames renders a node's out-edges for failure messages.
func siteNames(n *FuncNode) []string {
	var out []string
	for _, s := range n.Out {
		switch {
		case s.Fn != nil:
			out = append(out, s.Fn.Name())
		default:
			out = append(out, "<dynamic>")
		}
	}
	return out
}
