package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc turns the hot path's alloc-free discipline from a benchmark
// observation into a compile-time contract. A function marked
//
//	//vet:noalloc
//
// in its doc comment must not allocate: the analyzer flags every
// allocation site in its body — make/new, map and slice literals,
// &composite escapes, append that grows beyond caller-owned storage
// (self-append `s = append(s, ...)` and its stdlib cousins
// binary.Append*/slices.Grow, assigned back to their first argument, are
// the sanctioned idiom), interface boxing of value arguments, variadic
// argument slices, closures and bound-method values, string
// concatenation and string<->[]byte conversions, go statements — plus any
// call whose callee cannot be proven allocation-free: callees must be
// marked themselves, be on the known-clean stdlib list (math, math/bits,
// sync/atomic, in-place sort/slices helpers, math/rand draws, ...), or
// have an allocation-free summary computed over the whole-program call
// graph. Dynamic calls the graph cannot resolve are flagged: an invisible
// target is not a clean target.
//
// Two qualifiers relax the body check while still vouching to callers:
//
//	//vet:noalloc amortized  — the function may grow internal reusable
//	                           storage (workspace ensure/grow paths); its
//	                           steady-state cost is zero, so callers may
//	                           treat it as clean, but its body is exempt.
//	//vet:noalloc cold       — the function only runs on error paths
//	                           (codec decode failures); never on the hot
//	                           path, so its allocations are irrelevant.
//
// Allocation sites inside panic(...) arguments are always exempt: a
// failing assertion is allowed to build its message.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions marked //vet:noalloc must not allocate on any non-panic path",
	Run:  runNoAlloc,
}

// noallocMode is a parsed //vet:noalloc directive.
type noallocMode int

const (
	noallocNone      noallocMode = iota
	noallocStrict                // body checked site by site
	noallocAmortized             // body exempt: grows reusable storage only
	noallocCold                  // body exempt: error paths only
)

// noallocMarks parses (and caches) every //vet:noalloc directive in the
// program. Unknown qualifiers parse as strict — the analyzer reports them
// separately, and strict is the reading that cannot hide a violation.
func (g *CallGraph) noallocMarks() map[*types.Func]noallocMode {
	if g.noalloc != nil {
		return g.noalloc
	}
	marks := map[*types.Func]noallocMode{}
	for fn, node := range g.nodes {
		mode, _ := parseNoallocDoc(node.Decl)
		if mode != noallocNone {
			marks[fn] = mode
		}
	}
	g.noalloc = marks
	return marks
}

// parseNoallocDoc extracts a //vet:noalloc directive from a declaration's
// doc comment. badQual is non-empty when the qualifier is not recognized.
func parseNoallocDoc(decl *ast.FuncDecl) (mode noallocMode, badQual string) {
	if decl.Doc == nil {
		return noallocNone, ""
	}
	for _, c := range decl.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//vet:noalloc")
		if !ok {
			continue
		}
		switch strings.TrimSpace(rest) {
		case "":
			return noallocStrict, ""
		case "amortized":
			return noallocAmortized, ""
		case "cold":
			return noallocCold, ""
		default:
			return noallocStrict, strings.TrimSpace(rest)
		}
	}
	return noallocNone, ""
}

// randDrawMethods are the math/rand(/v2) methods that draw without
// allocating (Perm and the constructors are excluded).
var randDrawMethods = map[string]bool{
	"Int": true, "Intn": true, "IntN": true,
	"Int31": true, "Int31n": true, "Int32": true, "Int32N": true,
	"Int63": true, "Int63n": true, "Int64": true, "Int64N": true,
	"Uint32": true, "Uint64": true, "UintN": true, "Uint64N": true, "UN": true,
	"Float32": true, "Float64": true,
	"NormFloat64": true, "ExpFloat64": true, "Shuffle": true,
}

// syncCleanMethods are sync primitives that do not allocate per call.
// Pool.Get/Put are included deliberately: the pool IS the amortization
// mechanism the hot paths use.
var syncCleanMethods = map[string]bool{
	"Lock": true, "Unlock": true, "RLock": true, "RUnlock": true,
	"TryLock": true, "Do": true, "Wait": true, "Add": true, "Done": true,
	"Get": true, "Put": true,
}

// slicesCleanFuncs are the in-place / read-only slices helpers.
var slicesCleanFuncs = map[string]bool{
	"Sort": true, "SortFunc": true, "SortStableFunc": true,
	"BinarySearch": true, "BinarySearchFunc": true,
	"Index": true, "IndexFunc": true, "Contains": true, "ContainsFunc": true,
	"Min": true, "MinFunc": true, "Max": true, "MaxFunc": true,
	"Reverse": true, "Equal": true, "EqualFunc": true, "Compare": true,
}

// pureExternalFn reports whether an out-of-program callee is on the
// known-clean list: it neither allocates nor retains its arguments.
func pureExternalFn(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	switch pkg.Path() {
	case "math", "math/bits", "sync/atomic", "sort":
		return true
	case "math/rand", "math/rand/v2":
		return recv != nil && randDrawMethods[fn.Name()]
	case "encoding/binary":
		// Put*/Uvarint/byte-order methods write into caller storage; the
		// Append* family is handled as append-style, not here.
		return !strings.HasPrefix(fn.Name(), "Append")
	case "sync":
		return recv != nil && syncCleanMethods[fn.Name()]
	case "time":
		return recv != nil // Duration/Time arithmetic on values
	case "slices":
		return slicesCleanFuncs[fn.Name()]
	}
	return false
}

// appendStyleFn reports whether an external callee follows the append
// contract: it may grow and return its first argument, so it is clean
// exactly when the result is assigned back to that argument.
func appendStyleFn(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "encoding/binary":
		return strings.HasPrefix(fn.Name(), "Append")
	case "slices":
		return fn.Name() == "Grow" || fn.Name() == "Clip" || strings.HasPrefix(fn.Name(), "Append")
	}
	return false
}

// allocSummaries computes (and caches) whether each declared function may
// allocate on a non-panic path, to a fixed point over the call graph.
// Marked functions are their own proof and do not propagate their bodies;
// bodyless declarations (assembly stubs) are conservatively may-alloc
// unless marked — the annotation is the vouching mechanism.
func (g *CallGraph) allocSummaries() map[*types.Func]bool {
	if g.allocs != nil {
		return g.allocs
	}
	marks := g.noallocMarks()
	may := map[*types.Func]bool{}
	for fn, node := range g.nodes {
		if node.Decl.Body == nil {
			may[fn] = marks[fn] == noallocNone
			continue
		}
		may[fn] = len(directAllocSites(node.Pkg, node.Decl.Body)) > 0
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range g.nodes {
			if may[fn] {
				continue
			}
			for _, site := range node.Out {
				if site.PanicArg {
					continue
				}
				if callAllocates(g, marks, may, site) {
					may[fn] = true
					changed = true
					break
				}
			}
		}
	}
	g.allocs = may
	return may
}

// callAllocates classifies one call site against marks, summaries, and
// the stdlib tables.
func callAllocates(g *CallGraph, marks map[*types.Func]noallocMode, may map[*types.Func]bool, site *CallSite) bool {
	if site.Callee != nil {
		fn := site.Callee.Fn.Origin()
		if marks[fn] != noallocNone {
			return false
		}
		return may[fn]
	}
	if site.Fn != nil {
		if node := g.Node(site.Fn); node != nil {
			// In-graph but resolved without an edge (interface method with
			// a declaration, e.g.): fall back to its own summary.
			fn := site.Fn.Origin()
			return marks[fn] == noallocNone && may[fn]
		}
		// Append-style externals are vouched here; whether the result is
		// assigned back is the body walk's concern.
		return !pureExternalFn(site.Fn) && !appendStyleFn(site.Fn)
	}
	// Unresolved dynamic call: an invisible target is not a clean target.
	return true
}

func runNoAlloc(pass *Pass) {
	g := pass.Graph
	if g == nil {
		g = BuildCallGraph([]*Package{pass.Package})
	}
	marks := g.noallocMarks()
	sums := g.allocSummaries()
	for _, node := range g.nodes {
		if node.Pkg != pass.Package {
			continue
		}
		if _, bad := parseNoallocDoc(node.Decl); bad != "" {
			pass.Reportf(node.Decl.Pos(),
				"unknown //vet:noalloc qualifier %q (want nothing, \"amortized\", or \"cold\"); treating as strict", bad)
		}
		if marks[node.Fn.Origin()] != noallocStrict || node.Decl.Body == nil {
			continue
		}
		for _, s := range directAllocSites(node.Pkg, node.Decl.Body) {
			pass.Reportf(s.pos, "//vet:noalloc function %s: %s", node.Fn.Name(), s.what)
		}
		for _, site := range node.Out {
			if site.PanicArg {
				continue
			}
			if !callAllocates(g, marks, sums, site) {
				continue
			}
			switch {
			case site.Callee != nil:
				pass.Reportf(site.Call.Pos(),
					"//vet:noalloc function %s calls %s, which may allocate (mark the callee //vet:noalloc if it belongs on the hot path)",
					node.Fn.Name(), site.Callee.Fn.Name())
			case site.Fn != nil:
				pass.Reportf(site.Call.Pos(),
					"//vet:noalloc function %s calls %s.%s, which is not on the allocation-free list",
					node.Fn.Name(), site.Fn.Pkg().Name(), site.Fn.Name())
			default:
				pass.Reportf(site.Call.Pos(),
					"//vet:noalloc function %s makes a dynamic call whose target cannot be proven allocation-free",
					node.Fn.Name())
			}
		}
	}
}

// allocFinding is one allocation site found by the body walk.
type allocFinding struct {
	pos  token.Pos
	what string
}

// directAllocSites walks one body and returns its syntactic allocation
// sites: everything except call-into-callee classification, which the
// caller handles through the graph. Panic(...) argument subtrees are
// skipped wholesale.
func directAllocSites(pkg *Package, body *ast.BlockStmt) []allocFinding {
	var out []allocFinding
	report := func(pos token.Pos, what string) {
		out = append(out, allocFinding{pos, what})
	}

	// Pre-passes: which append-style calls are assigned back to their own
	// first argument, and which selector expressions are call targets
	// (so method VALUES can be told apart from method CALLS).
	selfAssigned := map[*ast.CallExpr]bool{}
	calledFuns := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			calledFuns[ast.Unparen(x.Fun)] = true
		case *ast.AssignStmt:
			if len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i := range x.Lhs {
				call, ok := ast.Unparen(x.Rhs[i]).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				lr, ar := rootIdent(x.Lhs[i]), rootIdent(call.Args[0])
				if lr == nil || ar == nil {
					continue
				}
				lo, ao := pkg.Info.ObjectOf(lr), pkg.Info.ObjectOf(ar)
				if lo != nil && lo == ao {
					selfAssigned[call] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if isPanicCall(pkg, x) {
				return false // assertion messages may allocate
			}
			if ident, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[ident].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						report(x.Pos(), "make allocates")
					case "new":
						report(x.Pos(), "new allocates")
					case "append":
						if !selfAssigned[x] {
							report(x.Pos(), "append may grow beyond caller-owned storage; assign it back: s = append(s, ...)")
						}
					}
					return true
				}
			}
			if tv, ok := pkg.Info.Types[x.Fun]; ok && tv.IsType() {
				if convAllocates(pkg, x) {
					report(x.Pos(), "string<->byte-slice conversion copies and allocates")
				}
				return true
			}
			if fn := calleeOf(pkg, x); fn != nil && appendStyleFn(fn) && !selfAssigned[x] {
				report(x.Pos(), "append-style call must be assigned back to its first argument")
			}
			reportCallArgAllocs(pkg, x, report)
		case *ast.FuncLit:
			report(x.Pos(), "function literal allocates a closure")
			return false // one finding per closure, not one per capture
		case *ast.CompositeLit:
			t := pkg.Info.TypeOf(x)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					report(x.Pos(), "map literal allocates")
					return false
				case *types.Slice:
					report(x.Pos(), "slice literal allocates")
					return false
				}
			}
			// Value struct/array literals live on the stack; descend for
			// allocating elements.
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					report(x.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(pkg.Info.TypeOf(x)) {
				report(x.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && isStringType(pkg.Info.TypeOf(x.Lhs[0])) {
				report(x.Pos(), "string concatenation allocates")
			}
		case *ast.SelectorExpr:
			if s := pkg.Info.Selections[x]; s != nil && s.Kind() == types.MethodVal && !calledFuns[x] {
				report(x.Pos(), "method value allocates a bound-method closure")
			}
		case *ast.GoStmt:
			report(x.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
	return out
}

// reportCallArgAllocs flags variadic argument slices and interface boxing
// of value arguments at one call site.
func reportCallArgAllocs(pkg *Package, call *ast.CallExpr, report func(token.Pos, string)) {
	sig, _ := pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if sig == nil {
		return
	}
	fixed := sig.Params().Len()
	if sig.Variadic() {
		fixed--
		if len(call.Args) > fixed && !call.Ellipsis.IsValid() {
			report(call.Args[fixed].Pos(), "variadic call allocates its argument slice")
		}
	}
	for i, arg := range call.Args {
		if i >= fixed {
			break // variadic part: the slice finding covers it
		}
		if isIfaceType(sig.Params().At(i).Type()) && boxes(pkg, arg) {
			report(arg.Pos(), "argument boxes a value into an interface")
		}
	}
}

// boxes reports whether passing arg to an interface parameter heap-boxes
// it: true for non-pointer-shaped concrete values, false for nil,
// interfaces, and pointer-shaped kinds (which fit the interface word).
func boxes(pkg *Package, arg ast.Expr) bool {
	tv, ok := pkg.Info.Types[ast.Unparen(arg)]
	if !ok || tv.IsNil() || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := tv.Type.Underlying().(*types.Basic)
		return b.Kind() != types.UnsafePointer && b.Kind() != types.UntypedNil
	}
	return true
}

func isIfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// convAllocates reports whether a conversion copies into fresh storage:
// string <-> []byte/[]rune in either direction.
func convAllocates(pkg *Package, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	dst, src := pkg.Info.TypeOf(call), pkg.Info.TypeOf(call.Args[0])
	return (isStringType(dst) && isByteOrRuneSlice(src)) ||
		(isByteOrRuneSlice(dst) && isStringType(src))
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
