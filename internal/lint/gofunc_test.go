package lint

import "testing"

// TestGoFuncCorpus pins the gofunc analyzer's full output: every bare go
// statement flagged, ordinary calls untouched, suppression honored.
func TestGoFuncCorpus(t *testing.T) {
	RunExpectTest(t, "testdata/src/gofunc", GoFunc)
}
