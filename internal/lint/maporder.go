package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder guards bit-identical same-seed runs against Go's randomized map
// iteration order. Ranging over a map is fine while the body only builds
// sets, deletes entries, or computes order-independent values — but the
// moment iteration order can leak into observable state the run stops
// being reproducible. Two leak shapes are flagged:
//
//   - the loop body reaches an order-sensitive sink — a network send
//     (message order decides event order fleet-wide), a telemetry emit
//     (trace interleaving), an RNG draw (stream consumption order), or a
//     floating-point accumulation (addition is not associative) — directly
//     or through any call chain in the program: the sink summaries come
//     from the whole-program call graph, so a helper in another package
//     (or a callback resolved through an interface) that ends in Env.Send
//     is caught the same as an inline send;
//   - the loop is an argmin/argmax selection into variables declared
//     outside the loop: with a strict comparison, ties are broken by
//     whichever key the runtime happened to yield first.
//
// The fix is the sorted-keys idiom: snapshot the keys (or values), sort
// them, and iterate the slice — see pubsub.childList and obs.sortedKeys.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration must not reach sends, telemetry, RNG draws, float accumulation, or tie-broken selections",
	Run:  runMapOrder,
}

// sinkMask classifies order-sensitive effects.
type sinkMask uint8

const (
	sinkSend sinkMask = 1 << iota
	sinkMetric
	sinkRNG
	sinkMerge
)

func (m sinkMask) describe() string {
	switch {
	case m&sinkSend != 0:
		return "a network send"
	case m&sinkMetric != 0:
		return "a telemetry emit"
	case m&sinkRNG != 0:
		return "an RNG draw"
	case m&sinkMerge != 0:
		return "a floating-point accumulation"
	}
	return "an order-sensitive effect"
}

// sendMethodNames are method names that put a message on the wire (or hand
// it to a layer that will). Matched by name: in protocol packages these
// names are reserved for transmission paths.
var sendMethodNames = map[string]bool{
	"Send":         true,
	"Route":        true,
	"Publish":      true,
	"Broadcast":    true,
	"Multicast":    true,
	"SubmitUpdate": true,
}

// obsEmitNames are the obs.Registry instrument mutators and trace emit.
var obsEmitNames = map[string]bool{
	"Inc":     true,
	"Add":     true,
	"Observe": true,
	"Set":     true,
	"Trace":   true,
}

// mergeCallNames are functions/methods that fold one aggregate into
// another (floating-point merges, order-sensitive).
var mergeCallNames = map[string]bool{
	"Combine":      true,
	"combine":      true,
	"Merge":        true,
	"MergeInPlace": true,
	"mergeUpdates": true,
}

func runMapOrder(pass *Pass) {
	// Sink summaries come from the shared whole-program graph; a
	// single-package graph is built on the fly when the analyzer runs
	// standalone (then only same-package chains are visible, the v1
	// behavior).
	graph := pass.Graph
	if graph == nil {
		graph = BuildCallGraph([]*Package{pass.Package})
	}
	sinks := graph.Sinks()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if mask, at := bodySink(pass, graph, sinks, rng); mask != 0 {
				pass.Reportf(at, "map iteration order is random per run and reaches %s; iterate a sorted snapshot of the keys instead", mask.describe())
			}
			if at := argSelect(pass, rng); at != token.NoPos {
				pass.Reportf(at, "selection over map iteration breaks comparison ties in random order; iterate sorted keys so ties resolve deterministically")
			}
			return true
		})
	}
}

// directSink classifies one call as an order-sensitive effect.
func directSink(pass *Pass, n ast.Node) sinkMask {
	return directSinkInfo(pass.Package, n)
}

// directSinkInfo is the Pass-free form of directSink, usable by the call
// graph's summary computation. Classification is name-based over resolved
// callee objects, so it works identically for in-program and stdlib
// callees — math/rand draw methods are the only stdlib entry points that
// count as sinks; the sort/slices/maps helpers contribute nothing (they
// take map-derived data and hand it back order-laundered).
func directSinkInfo(pkg *Package, n ast.Node) sinkMask {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return 0
	}
	fn := calleeOf(pkg, call)
	if fn == nil {
		return 0
	}
	recv := fn.Type().(*types.Signature).Recv()
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch {
	case recv != nil && sendMethodNames[fn.Name()]:
		return sinkSend
	case recv != nil && pkgPath == "totoro/internal/obs" && obsEmitNames[fn.Name()]:
		return sinkMetric
	case recv != nil && (pkgPath == "math/rand" || pkgPath == "math/rand/v2"):
		return sinkRNG
	case mergeCallNames[fn.Name()]:
		return sinkMerge
	case fn.Name() == "Add" && recv != nil && pkgPath == "totoro/internal/fl":
		return sinkMerge // fl.Accum.Add, the in-place aggregate fold
	}
	return 0
}

// floatAccum reports whether n is a float compound assignment that folds
// into state surviving the loop — an accumulator declared outside it.
// Per-key writes into the ranged map itself and folds into loop-local
// temporaries are order-independent and stay allowed.
func floatAccum(pass *Pass, rng *ast.RangeStmt, n ast.Node) bool {
	assign, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	switch assign.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	for _, lhs := range assign.Lhs {
		t := pass.Info.TypeOf(lhs)
		if t == nil {
			continue
		}
		if b, ok := t.Underlying().(*types.Basic); !ok || b.Info()&types.IsFloat == 0 {
			continue
		}
		root := rootIdent(lhs)
		if root == nil {
			continue
		}
		v, ok := pass.Info.Uses[root].(*types.Var)
		if !ok {
			continue
		}
		if rx := rootIdent(rng.X); rx != nil && pass.Info.Uses[rx] == v {
			continue // m[k] op= ... while ranging m: per-key state
		}
		if v.Pos() < rng.Pos() || v.Parent() == pass.Pkg.Scope() {
			return true
		}
	}
	return false
}

// rootIdent unwraps selectors, indexing, derefs, and parens down to the
// base identifier of an lvalue (nil when the base is not an identifier).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// bodySink scans a range body for direct sinks or calls into functions
// that (transitively) sink, resolving callees through the call graph: a
// static call into another package and a dynamic call through an interface
// or callback field both consult the whole-program summaries. It returns
// the sink mask and the position of the first offending node.
func bodySink(pass *Pass, graph *CallGraph, sinks map[*types.Func]sinkMask, rng *ast.RangeStmt) (sinkMask, token.Pos) {
	var mask sinkMask
	var at token.Pos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if mask != 0 {
			return false
		}
		if m := directSink(pass, n); m != 0 {
			mask, at = m, n.Pos()
			return false
		}
		if floatAccum(pass, rng, n) {
			mask, at = sinkMerge, n.Pos()
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			for _, site := range graph.SitesFor(call) {
				if site.Callee == nil {
					continue
				}
				if m := sinks[site.Callee.Fn.Origin()] &^ sinkMerge; m != 0 {
					mask, at = m, call.Pos()
					return false
				}
			}
			// Calls the graph has no node for (callee in a package loaded
			// outside the graph) still resolve by object identity.
			if callee := calleeFunc(pass, call); callee != nil {
				if m := sinks[callee.Origin()] &^ sinkMerge; m != 0 {
					mask, at = m, call.Pos()
					return false
				}
			}
		}
		return true
	})
	return mask, at
}

// argSelect detects the argmin/argmax pattern: inside the map-range body,
// an if statement whose condition is an ordered comparison and whose body
// plainly assigns to variables declared outside the loop. With a strict
// comparison, equal-cost entries are won by whichever key iterates first.
func argSelect(pass *Pass, rng *ast.RangeStmt) token.Pos {
	found := token.NoPos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if found != token.NoPos {
			return false
		}
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || !hasOrderedCmp(ifStmt.Cond) {
			return true
		}
		ast.Inspect(ifStmt.Body, func(m ast.Node) bool {
			if found != token.NoPos {
				return false
			}
			assign, ok := m.(*ast.AssignStmt)
			if !ok || assign.Tok != token.ASSIGN {
				return true
			}
			for _, lhs := range assign.Lhs {
				ident, ok := lhs.(*ast.Ident)
				if !ok {
					continue // index/selector targets are per-key state, not selections
				}
				obj := pass.Info.Uses[ident]
				v, ok := obj.(*types.Var)
				if !ok || v.IsField() {
					continue
				}
				// Declared before the loop => survives it => a selection.
				if v.Pos() < rng.Pos() {
					found = assign.Pos()
					return false
				}
			}
			return true
		})
		return true
	})
	return found
}

// hasOrderedCmp reports whether expr contains a <, <=, > or >= comparison.
func hasOrderedCmp(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if b, ok := n.(*ast.BinaryExpr); ok {
			switch b.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				found = true
				return false
			}
		}
		return true
	})
	return found
}
