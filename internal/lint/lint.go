// Package lint is Totoro's static-analysis framework: a stdlib-only
// analyzer driver (go/ast + go/types + go/importer) that mechanically
// enforces the engine's determinism, concurrency, and wire invariants.
//
// The framework loads one package at a time from source, type-checks it
// against compiled export data for its dependencies (resolved through the
// go toolchain's build cache), and runs a set of Analyzers over the
// type-annotated syntax. Each analyzer guards one invariant that compiles
// fine when broken and only surfaces later as flaky large-fleet divergence
// or cross-node decode failures:
//
//   - envnow:   wall-clock reads in protocol packages (breaks virtual-time
//     replay under the simulator);
//   - maporder: map iteration whose order can leak into message sends,
//     telemetry, RNG draws, or floating-point accumulation (breaks
//     bit-identical same-seed runs);
//   - seedrand: math/rand global-source draws and time-seeded sources in
//     deterministic packages (same);
//   - gofunc:   bare goroutines in protocol packages that bypass the
//     supervised fl.Go/fl.ForEach pool and the event loop;
//   - wiresafe: gob-unsafe fields in registered wire messages, Env.Send
//     payload types that were never gob-registered (decodes in-memory under
//     simnet, fails over tcpnet), and durable-store record types without
//     codec-v2 encoders (the WAL refuses them at runtime, after the state
//     change they were meant to journal).
//
// Three analyzers run on a whole-program call graph (see callgraph.go)
// that the driver builds once per run over every loaded package:
//
//   - reentry:  handler code synchronously re-entering the event-loop
//     dispatch (a Route/Deliver cycle observes half-updated node state);
//   - maporder, again: its sink summaries come from the call graph, so a
//     map-range body that leaks order through a helper in ANOTHER package
//     is caught too;
//   - noalloc:  functions marked //vet:noalloc (training kernels, Accum
//     merges, codec hot paths) must not allocate: no composite literals
//     that escape, no append beyond caller-owned storage, no interface
//     boxing, closures, string building, or calls to allocating callees.
//
// Findings a human has judged acceptable are suppressed in place with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory; an ignore directive without one is itself a diagnostic —
// directive hygiene is the suite's eighth analyzer ("directive"), applied
// by the driver as part of suppression processing.
//
// The suite runs as `totoro-vet ./...` (cmd/totoro-vet) and as the
// in-tree CI gate TestRepoVetGate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass hands one loaded package, plus cross-package context, to an
// analyzer's Run.
type Pass struct {
	*Package
	// Wire is the repo-wide set of gob-registered wire types, built by the
	// driver before analyzers run. Nil when no wire context was collected.
	Wire *WireSet
	// Graph is the whole-program call graph, built once per driver run and
	// shared by every analyzer (reentry, maporder, and noalloc consult it;
	// the per-package analyzers ignore it). Nil only when an analyzer is
	// run outside the driver without graph context.
	Graph *CallGraph

	diags []Diagnostic
}

// Reportf records a diagnostic for the running analyzer at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one static check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description of the guarded invariant.
	Doc string
	// Run inspects pass.Package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Analyzers is the full suite in stable order: the five per-package
// analyzers, the three call-graph analyzers, and directive hygiene.
func Analyzers() []*Analyzer {
	return []*Analyzer{EnvNow, MapOrder, SeedRand, GoFunc, WireSafe, Reentry, NoAlloc, Directive}
}

// Directive is the suppression-hygiene analyzer: //lint:ignore directives
// must carry a reason and must actually suppress something. Its findings
// are produced by ApplySuppressions (the driver applies it as part of
// suppression processing rather than via Run, which is why Run is a no-op)
// but it is a first-class suite member: listable, -only-selectable, and
// itself suppressible by name like any other analyzer.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "//lint:ignore directives must carry a reason and suppress at least one finding",
	Run:  func(*Pass) {},
}

// AnalyzerByName resolves one analyzer (nil if unknown).
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzer runs one analyzer over one package and returns its raw
// (unsuppressed) diagnostics, tagged with the analyzer name and sorted by
// position. graph may be nil for analyzers that do not consult it.
func RunAnalyzer(a *Analyzer, pkg *Package, wire *WireSet, graph *CallGraph) []Diagnostic {
	pass := &Pass{Package: pkg, Wire: wire, Graph: graph}
	a.Run(pass)
	for i := range pass.diags {
		pass.diags[i].Analyzer = a.Name
	}
	SortDiagnostics(pass.diags)
	return pass.diags
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// --- suppression directives ---

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool // analyzer names (comma-separated in source)
	reason    string
	used      bool
}

var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s*(.*)$`)

// parseIgnores scans a file's comments for //lint:ignore directives.
// Malformed directives (no reason) are reported as "lint" diagnostics so
// that suppressions stay auditable.
func parseIgnores(fset *token.FileSet, f *ast.File) (dirs []*ignoreDirective, bad []Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			reason := strings.TrimSpace(m[2])
			if reason == "" {
				bad = append(bad, Diagnostic{
					Pos:      pos,
					Analyzer: Directive.Name,
					Message:  "//lint:ignore directive needs a reason: //lint:ignore <analyzer> <reason>",
				})
				continue
			}
			names := map[string]bool{}
			for _, n := range strings.Split(m[1], ",") {
				names[strings.TrimSpace(n)] = true
			}
			dirs = append(dirs, &ignoreDirective{pos: pos, analyzers: names, reason: reason})
		}
	}
	return dirs, bad
}

// ApplySuppressions filters diags through the package's //lint:ignore
// directives. A directive suppresses matching diagnostics on its own line
// or on the line directly below it (i.e. place it at the end of the
// flagged line or on the line above). It returns the surviving
// diagnostics plus directive-hygiene findings: malformed directives and
// directives that matched nothing (stale suppressions rot the audit
// trail, so they fail the gate too).
func ApplySuppressions(pkg *Package, diags []Diagnostic) (kept, directiveDiags []Diagnostic) {
	var dirs []*ignoreDirective
	for _, f := range pkg.Files {
		fd, bad := parseIgnores(pkg.Fset, f)
		dirs = append(dirs, fd...)
		directiveDiags = append(directiveDiags, bad...)
	}
	for _, d := range diags {
		suppressed := false
		for _, dir := range dirs {
			if dir.pos.Filename != d.Pos.Filename || !dir.analyzers[d.Analyzer] {
				continue
			}
			if d.Pos.Line == dir.pos.Line || d.Pos.Line == dir.pos.Line+1 {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range dirs {
		if !dir.used {
			names := make([]string, 0, len(dir.analyzers))
			for n := range dir.analyzers {
				names = append(names, n)
			}
			sort.Strings(names)
			directiveDiags = append(directiveDiags, Diagnostic{
				Pos:      dir.pos,
				Analyzer: Directive.Name,
				Message: fmt.Sprintf("//lint:ignore %s directive suppresses nothing; delete it",
					strings.Join(names, ",")),
			})
		}
	}
	return kept, directiveDiags
}
