package lint

import (
	"go/types"
)

// Reentry guards the event loop's run-to-completion discipline. A node is
// single-threaded: each delivered message runs one handler to completion,
// and every effect on other nodes goes through the asynchronous
// Env.Send/Env.After boundary. The one sanctioned exception is rendezvous
// routing: ring.Route delivers SYNCHRONOUSLY to self when this node owns
// the key, upcalling App.Deliver in the same stack frame. That makes the
// following shape a hazard: a handler (code synchronously reachable from
// a dispatch entry) calls back into a dispatch entry that can — through
// that same synchronous self-delivery — re-enter the very handler chain
// that is still on the stack, observing its half-updated node state.
//
// The analyzer flags exactly that shape on the whole-program call graph:
// a synchronous call edge F -> G where F is handler code, G is a dispatch
// entry, and F is itself synchronously reachable from G (the cycle is what
// distinguishes re-entry from plain layering). Two designed patterns are
// exempt:
//
//   - layered delegation: a dispatch entry forwarding to the same-named
//     entry one layer down (Engine.Receive -> ring.Receive) is the
//     dispatch pipeline itself, not re-entry into it;
//   - a dynamic upcall through an interface or callback struct the calling
//     package declares itself (ring calling its own App.Deliver, pubsub
//     invoking its own Handlers callbacks): that is the package's designed
//     extension point, and the cycle it closes is the one the architecture
//     documents.
//
// Everything else must either move to the next tick (Env.After(0, ...)) or
// carry a //lint:ignore reentry with the state-safety argument.
var Reentry = &Analyzer{
	Name: "reentry",
	Doc:  "handler code must not synchronously re-enter the event-loop dispatch it is running under",
	Run:  runReentry,
}

// dispatchEntryNames are the method names that admit messages into a
// node's dispatch path. Shape constraints (checked in isDispatchEntry)
// keep the name match honest.
var dispatchEntryNames = map[string]bool{
	"Receive": true,
	"Deliver": true,
	"Forward": true,
	"Route":   true,
}

// isDispatchEntry reports whether fn is a dispatch entry: an in-program
// method with one of the entry names and the corresponding handler shape.
func isDispatchEntry(g *CallGraph, fn *types.Func) bool {
	if fn == nil || !dispatchEntryNames[fn.Name()] {
		return false
	}
	node := g.Node(fn)
	if node == nil || node.Decl.Body == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	params := sig.Params()
	switch fn.Name() {
	case "Receive", "Route":
		// (..., msg any): the untyped payload is the dispatch signature.
		if params.Len() < 2 {
			return false
		}
		last := params.At(params.Len() - 1).Type().Underlying()
		iface, ok := last.(*types.Interface)
		return ok && iface.NumMethods() == 0
	case "Deliver":
		// (d SomeDelivery): a single named struct argument.
		if params.Len() != 1 {
			return false
		}
		named := namedOf(params.At(0).Type())
		if named == nil {
			return false
		}
		_, isStruct := named.Underlying().(*types.Struct)
		return isStruct
	case "Forward":
		// (d *SomeDelivery, ...): intercepts a message in flight.
		if params.Len() < 1 {
			return false
		}
		ptr, ok := params.At(0).Type().Underlying().(*types.Pointer)
		if !ok {
			return false
		}
		named := namedOf(ptr.Elem())
		if named == nil {
			return false
		}
		_, isStruct := named.Underlying().(*types.Struct)
		return isStruct
	}
	return false
}

// dispatchEntries collects (and caches on the graph) every dispatch entry
// in the program.
func (g *CallGraph) dispatchEntries() []*FuncNode {
	if g.entries != nil {
		return g.entries
	}
	for _, node := range g.nodes {
		if isDispatchEntry(g, node.Fn) {
			g.entries = append(g.entries, node)
		}
	}
	if g.entries == nil {
		g.entries = []*FuncNode{}
	}
	return g.entries
}

// handlerSet returns every function synchronously reachable from any
// dispatch entry — the code that may be "on the stack" while a message is
// being handled.
func handlerSet(g *CallGraph) map[*types.Func]bool {
	inH := map[*types.Func]bool{}
	for _, e := range g.dispatchEntries() {
		for fn := range g.SyncReachable(e.Fn) {
			inH[fn] = true
		}
	}
	return inH
}

func runReentry(pass *Pass) {
	g := pass.Graph
	if g == nil {
		g = BuildCallGraph([]*Package{pass.Package})
	}
	inHandler := handlerSet(g)
	for _, node := range g.nodes {
		if node.Pkg != pass.Package || !inHandler[node.Fn.Origin()] {
			continue
		}
		for _, site := range node.Out {
			if site.Async || site.Callee == nil {
				continue
			}
			callee := site.Callee.Fn
			if !isDispatchEntry(g, callee) {
				continue
			}
			// Layered delegation: entry -> same-named entry one layer down.
			if node.Fn.Name() == callee.Name() && isDispatchEntry(g, node.Fn) {
				continue
			}
			// The calling package's own upcall interface/callback struct:
			// the designed extension point.
			if site.Dynamic && site.Owner != nil && site.Owner == pass.Pkg {
				continue
			}
			// Only a cycle is re-entry: the callee's synchronous extent
			// must lead back to the caller.
			if !g.SyncReachable(callee)[node.Fn.Origin()] {
				continue
			}
			pass.Reportf(site.Call.Pos(),
				"%s is handler code (synchronously reachable from the event-loop dispatch) and calls %s.%s, which can synchronously re-enter it; defer the call to the next tick (Env.After) or bless the re-entry with an explicit //lint:ignore",
				node.Fn.Name(), recvTypeName(callee), callee.Name())
		}
	}
}

// recvTypeName names a method's receiver type for diagnostics.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if fn.Pkg() != nil {
			return fn.Pkg().Name()
		}
		return "?"
	}
	if named := namedOf(sig.Recv().Type()); named != nil {
		return named.Obj().Name()
	}
	return "?"
}
