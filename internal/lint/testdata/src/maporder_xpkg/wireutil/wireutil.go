// Package wireutil holds the helpers the maporder cross-package corpus
// routes map iterations through: one that transitively sends (a sink the
// whole-program summaries must surface in OTHER packages) and one that
// order-launders keys through a sort.
package wireutil

import "sort"

// Env is the transport stand-in; Send is a sink by method name.
type Env interface {
	Send(to string, msg any)
}

// Notify pings one peer — a network send two hops from any caller's loop.
func Notify(e Env, to string) {
	probe(e, to)
}

func probe(e Env, to string) {
	e.Send(to, "probe")
}

// Keys snapshots and sorts a map's keys: the order-laundering idiom.
// Its own range is order-independent (set building), and callers ranging
// over the RESULT are deterministic.
func Keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
