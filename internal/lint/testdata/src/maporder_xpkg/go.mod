module mapxpkg

go 1.24
