// Package app is the maporder cross-package expectation corpus: map
// iterations whose bodies reach a send only through another package's
// helper (or an interface dispatch) must be flagged by the whole-program
// summaries; iterating a sorted snapshot must not.
package app

import "mapxpkg/wireutil"

type gossip struct {
	env   wireutil.Env
	peers map[string]bool
}

// pingAll leaks iteration order through wireutil.Notify -> probe -> Send:
// the sink is two calls and one package away.
func (g *gossip) pingAll() {
	for p := range g.peers {
		wireutil.Notify(g.env, p) // want "reaches a network send"
	}
}

// pingSorted iterates the order-laundered snapshot: deterministic.
func (g *gossip) pingSorted() {
	for _, p := range wireutil.Keys(g.peers) {
		wireutil.Notify(g.env, p)
	}
}

// flusher is dispatched through an interface: the summaries must follow
// the dynamic edge to every in-program implementation.
type flusher interface {
	Flush(to string, msg any)
}

type udp struct{ env wireutil.Env }

func (u *udp) Flush(to string, msg any) {
	u.env.Send(to, msg)
}

func flushAll(f flusher, m map[string]any) {
	for k, v := range m {
		f.Flush(k, v) // want "reaches a network send"
	}
}

// counting stays order-independent even when a helper is involved.
func tally(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
