// Package seedrand is the expectation corpus for the seedrand analyzer:
// global-source draws and wall-clock seeds must be flagged; explicitly
// seeded sources and their methods must not.
package seedrand

import (
	"math/rand"
	"time"
)

func globalBad() int {
	return rand.Intn(10) // want "rand.Intn draws from the process-global source"
}

func globalShuffleBad(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want "rand.Shuffle draws from the process-global source"
		xs[i], xs[j] = xs[j], xs[i]
	})
}

func clockSeedBad() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.New seeded from the wall clock" "rand.NewSource seeded from the wall clock"
}

func explicitGood() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

func methodsGood(r *rand.Rand) int {
	// Draws from an explicit source are the blessed path.
	return r.Intn(10)
}

func durationArithGood(r *rand.Rand, base time.Duration) time.Duration {
	// Methods on Duration values are pure arithmetic, not clock reads —
	// base may well hold virtual time.
	return base + time.Duration(r.Int63n(int64(base.Milliseconds())+1))
}

func suppressed() int {
	//lint:ignore seedrand corpus demonstrates an audited exemption
	return rand.Intn(10)
}
