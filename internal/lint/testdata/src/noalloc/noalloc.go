// Package noalloc is the expectation corpus for the noalloc analyzer:
// every syntactic allocation site and every unprovable call inside a
// //vet:noalloc function must be flagged; the sanctioned idioms
// (self-append, panic messages, pure stdlib, marked/amortized/cold
// callees, clean summaries) must not.
package noalloc

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync"
)

type pair struct{ x, y int }

// --- flagged sites -------------------------------------------------------

//vet:noalloc
func builtins(n int) {
	_ = make([]int, n)    // want "make allocates"
	_ = new(pair)         // want "new allocates"
	m := map[string]int{} // want "map literal allocates"
	s := []int{1, 2}      // want "slice literal allocates"
	p := &pair{x: 1}      // want "&composite literal escapes to the heap"
	_, _, _ = m, s, p
}

//vet:noalloc
func badAppend(s []int) []int {
	t := append(s, 1) // want "append may grow beyond caller-owned storage"
	return t
}

//vet:noalloc
func badAppendStyle(b []byte, x uint64) []byte {
	b2 := binary.AppendUvarint(b, x) // want "append-style call must be assigned back to its first argument"
	return b2
}

//vet:noalloc
func badClosure() {
	f := func() int { return 1 } // want "function literal allocates a closure"
	_ = f
}

//vet:noalloc
func badMethodValue(r *rand.Rand) {
	f := r.Float64 // want "method value allocates a bound-method closure"
	_ = f
}

//vet:noalloc
func badConcat(a, b string) string {
	return a + b // want "string concatenation allocates"
}

//vet:noalloc
func badConcatAssign(s string) string {
	s += "!" // want "string concatenation allocates"
	return s
}

//vet:noalloc
func badConv(s string, b []byte) {
	_ = []byte(s) // want "conversion copies and allocates"
	_ = string(b) // want "conversion copies and allocates"
}

//vet:noalloc
func badGo() {
	go tick() // want "go statement allocates a goroutine"
}

func tick() {}

//vet:noalloc
func badVariadic() int {
	return vsum(1, 2, 3) // want "variadic call allocates its argument slice"
}

func vsum(xs ...int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

//vet:noalloc
func badBoxing(n int) {
	sink(n) // want "argument boxes a value into an interface"
}

func sink(x any) { _ = x }

//vet:noalloc
func badCallee(n int) []byte {
	return makeBuf(n) // want "calls makeBuf, which may allocate"
}

func makeBuf(n int) []byte { return make([]byte, n) }

//vet:noalloc
func badExternal(n int) string {
	return strconv.Itoa(n) // want "calls strconv.Itoa, which is not on the allocation-free list"
}

type hooks struct{ onDone func() }

//vet:noalloc
func badDynamic(h *hooks) {
	h.onDone() // want "dynamic call whose target cannot be proven allocation-free"
}

//vet:noalloc turbo
func badQualifier() {} // want "unknown //vet:noalloc qualifier"

// --- sanctioned idioms ---------------------------------------------------

//vet:noalloc
func selfAppend(s []int, x int) []int {
	s = append(s, x)
	return s
}

//vet:noalloc
func selfAppendStyle(b []byte, x uint64) []byte {
	b = binary.AppendUvarint(b, x)
	return b
}

//vet:noalloc
func panicPath(n int) {
	if n < 0 {
		panic(fmt.Sprintf("noalloc: negative %d", n))
	}
}

//vet:noalloc
func pureStdlib(r *rand.Rand, mu *sync.Mutex, x float64) float64 {
	mu.Lock()
	defer mu.Unlock()
	return math.Sqrt(x) + r.Float64()
}

//vet:noalloc
func spreadVariadic(xs []int) int {
	return vsum(xs...)
}

//vet:noalloc
func pointerNoBox(p *pair) {
	sink(p)
}

//vet:noalloc
func callsMarked(s []int, x int) []int {
	return selfAppend(s, x)
}

//vet:noalloc
func callsAmortized(n int) {
	grown = growBuf(grown, n)
}

var grown []float64

// growBuf may reshape its reusable buffer: exempt body, trusted callers.
//
//vet:noalloc amortized
func growBuf(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	return buf[:n]
}

//vet:noalloc
func callsCold(n int) error {
	if n < 0 {
		return failPath(n)
	}
	return nil
}

// failPath only runs on error paths: its allocations never touch the hot
// path.
//
//vet:noalloc cold
func failPath(n int) error {
	return fmt.Errorf("noalloc: bad input %d", n)
}

// cleanHelper is unmarked but provably allocation-free: the whole-program
// summary clears its callers without an annotation.
func cleanHelper(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

//vet:noalloc
func callsCleanSummary(a, b float64) float64 {
	return cleanHelper(a, b)
}

// unmarked functions may allocate freely.
func unmarked(n int) []int { return make([]int, n) }
