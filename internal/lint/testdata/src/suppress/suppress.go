// Package suppress is the framework corpus for //lint:ignore handling:
// same-line and line-above placement suppress; a directive without a
// reason is itself a finding and suppresses nothing; a directive that
// matches nothing is a stale-suppression finding.
package suppress

import "time"

func sameLine() {
	time.Sleep(time.Millisecond) //lint:ignore envnow audited: same-line suppression
}

func lineAbove() {
	//lint:ignore envnow audited: line-above suppression
	time.Sleep(time.Millisecond)
}

func wrongAnalyzer() {
	//lint:ignore gofunc directive names the wrong analyzer // want "suppresses nothing; delete it"
	time.Sleep(time.Millisecond) // want "time.Sleep is wall-clock"
}

func stale() {
	//lint:ignore envnow nothing beneath this line reads the clock // want "suppresses nothing; delete it"
	_ = time.Millisecond
}
