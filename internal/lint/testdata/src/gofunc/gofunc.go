// Package gofunc is the expectation corpus for the gofunc analyzer: every
// bare go statement must be flagged; calls through values and suppressed
// pool internals must not.
package gofunc

func bareBad() {
	go func() {}() // want "bare go statement bypasses the supervised worker pool"
}

func namedBad(work func()) {
	go work() // want "bare go statement bypasses the supervised worker pool"
}

func callGood(work func()) {
	work()
}

func suppressed(work func()) {
	//lint:ignore gofunc corpus stand-in for the pool's own worker spawn
	go work()
}
