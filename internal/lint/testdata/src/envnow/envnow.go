// Package envnow is the expectation corpus for the envnow analyzer: every
// wall-clock read or timer must be flagged, Env-based time and pure time
// arithmetic must not.
package envnow

import (
	"time"

	"totoro/internal/transport"
)

type node struct{ env transport.Env }

func (n *node) bad() {
	_ = time.Now()                           // want "time.Now is wall-clock"
	time.Sleep(time.Millisecond)             // want "time.Sleep is wall-clock"
	_ = time.Since(time.Time{})              // want "time.Since is wall-clock"
	<-time.After(time.Second)                // want "time.After is wall-clock"
	_ = time.NewTimer(time.Second)           // want "time.NewTimer is wall-clock"
	_ = time.NewTicker(time.Second)          // want "time.NewTicker is wall-clock"
	_ = time.AfterFunc(time.Second, func() { // want "time.AfterFunc is wall-clock"
	})
}

func (n *node) good() {
	// Virtual time through the Env contract, plus pure Duration arithmetic.
	now := n.env.Now()
	_ = now + 3*time.Millisecond
	cancel := n.env.After(10*time.Millisecond, func() {})
	cancel()
	_ = time.Duration(42).Seconds()
}

func (n *node) suppressed() time.Duration {
	//lint:ignore envnow corpus demonstrates an audited wall-clock exemption
	time.Sleep(time.Millisecond)
	return 0
}
