// Package maporder is the expectation corpus for the maporder analyzer:
// map iterations that leak order into sends, telemetry, RNG draws, float
// accumulation, or tie-broken selections must be flagged; the sorted-keys
// idiom and order-independent bodies must not.
package maporder

import (
	"sort"

	"totoro/internal/obs"
	"totoro/internal/transport"
)

type node struct {
	env   transport.Env
	peers map[transport.Addr]bool
}

func (n *node) broadcastBad(msg any) {
	for p := range n.peers {
		n.env.Send(p, msg) // want "map iteration order is random per run and reaches a network send"
	}
}

// Transitive reach: the range body only calls a same-package helper, but
// the helper sends.
func (n *node) notifyAll() {
	for p := range n.peers {
		n.ping(p) // want "reaches a network send"
	}
}

func (n *node) ping(p transport.Addr) {
	n.env.Send(p, "ping")
}

func (n *node) jitterBad() {
	for range n.peers {
		_ = n.env.Rand().Intn(10) // want "reaches an RNG draw"
	}
}

func emitBad(reg *obs.Registry, m map[string]int64) {
	for _, v := range m {
		reg.Counter("x").Add(v) // want "reaches a telemetry emit"
	}
}

func sumBad(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "reaches a floating-point accumulation"
	}
	return total
}

func argminBad(costs map[string]float64) string {
	best, bestCost, first := "", 0.0, true
	for k, c := range costs {
		if first || c < bestCost {
			best = k // want "selection over map iteration breaks comparison ties"
			bestCost = c
		}
		first = false
	}
	return best
}

// The sorted-keys idiom: snapshot, sort, iterate the slice.
func (n *node) broadcastGood(msg any) {
	keys := make([]transport.Addr, 0, len(n.peers))
	for p := range n.peers {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, p := range keys {
		n.env.Send(p, msg)
	}
}

// Order-independent bodies: set building, integer counting, per-key state.
func invert(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

func count(m map[string]int) int {
	c := 0
	for range m {
		c++
	}
	return c
}

// A helper that accumulates floats on its own locals is order-independent
// from the caller's perspective: per-key results, no cross-key folding.
func diameters(m map[string][]float64) map[string]float64 {
	out := map[string]float64{}
	for k, vs := range m {
		out[k] = mean(vs)
	}
	return out
}

func mean(vs []float64) float64 {
	s := 0.0
	for _, v := range vs {
		s += v
	}
	if len(vs) == 0 {
		return 0
	}
	return s / float64(len(vs))
}

// In-place per-key updates of the ranged map itself carry no cross-key
// state either.
func scaleInPlace(m map[string]float64) {
	for k := range m {
		m[k] *= 0.5
	}
}

func perKeyMin(dst, src map[string]int) {
	for k, v := range src {
		if v < dst[k] {
			dst[k] = v // per-key state, not a selection: no tie to break
		}
	}
}

func (n *node) suppressedBroadcast(msg any) {
	for p := range n.peers {
		//lint:ignore maporder corpus exemption: delivery order asserted irrelevant
		n.env.Send(p, msg)
	}
}
