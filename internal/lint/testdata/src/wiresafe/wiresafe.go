// Package wiresafe is the expectation corpus for the wiresafe analyzer:
// gob-hostile fields in registered wire types and unregistered Env.Send
// payloads must be flagged; lossless registered types must not.
package wiresafe

import (
	"encoding/gob"
	"time"

	"totoro/internal/transport"
)

// Clean round-trips losslessly: exported fields of gob-friendly types.
type Clean struct {
	ID   string
	Vals []float64
	Tags map[string]string
}

type BadFunc struct {
	Name string
	Fn   func() // want "wire field BadFunc.Fn has func type"
}

type BadChan struct {
	Name string
	C    chan int // want "wire field BadChan.C has chan type"
}

type Dropped struct {
	Name  string
	count int // want "wire field Dropped.count is unexported; gob drops it silently"
}

type Opaque struct { // want "wire type Opaque has no exported fields; gob refuses to encode it"
	a, b int
}

type Handlerish interface{ Handle() }

type BadIface struct {
	Name string
	H    Handlerish // want "wire field BadIface.H is a non-empty interface"
}

// The walk is transitive: Outer is registered, the defect lives in Inner.
type Outer struct {
	In Inner
}

type Inner struct {
	OK string
	Fn func() // want "wire field Outer.In.Fn has func type"
}

// Stamped is clean even though time.Time has unexported fields: it
// provides its own gob encoding, so field-level analysis does not apply.
type Stamped struct {
	ID string
	At time.Time
}

// AnyPayload is clean: an empty interface field is gob's intended opaque
// payload slot (the concrete values carry their own registrations).
type AnyPayload struct {
	Kind string
	Body any
}

func init() {
	gob.Register(Clean{})
	gob.Register(BadFunc{})
	gob.Register(BadChan{})
	gob.Register(Dropped{})
	gob.Register(Opaque{})
	gob.Register(BadIface{})
	gob.Register(Outer{})
	gob.Register(Stamped{})
	gob.Register(AnyPayload{})
}

// Unregistered compiles and moves fine under simnet, but tcpnet's gob
// decoder has never heard of it.
type Unregistered struct{ ID string }

func send(env transport.Env, to transport.Addr) {
	env.Send(to, Clean{ID: "ok"})
	env.Send(to, &Clean{ID: "ptr-ok"})     // gob flattens pointers; value registration vouches
	env.Send(to, Unregistered{ID: "nope"}) // want "Unregistered is sent over the wire but never gob-registered"
}

func suppressedSend(env transport.Env, to transport.Addr) {
	//lint:ignore wiresafe corpus exemption: payload registered by the embedding app at startup
	env.Send(to, Unregistered{ID: "later"})
}
