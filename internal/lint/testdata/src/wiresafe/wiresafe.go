// Package wiresafe is the expectation corpus for the wiresafe analyzer:
// gob-hostile fields in registered wire types and unregistered Env.Send
// payloads must be flagged; lossless registered types must not.
package wiresafe

import (
	"encoding/gob"
	"time"

	"totoro/internal/store"
	"totoro/internal/transport"
	"totoro/internal/wire/codec"
)

// Clean round-trips losslessly: exported fields of gob-friendly types.
type Clean struct {
	ID   string
	Vals []float64
	Tags map[string]string
}

type BadFunc struct {
	Name string
	Fn   func() // want "wire field BadFunc.Fn has func type"
}

type BadChan struct {
	Name string
	C    chan int // want "wire field BadChan.C has chan type"
}

type Dropped struct {
	Name  string
	count int // want "wire field Dropped.count is unexported; gob drops it silently"
}

type Opaque struct { // want "wire type Opaque has no exported fields; gob refuses to encode it"
	a, b int
}

type Handlerish interface{ Handle() }

type BadIface struct {
	Name string
	H    Handlerish // want "wire field BadIface.H is a non-empty interface"
}

// The walk is transitive: Outer is registered, the defect lives in Inner.
type Outer struct {
	In Inner
}

type Inner struct {
	OK string
	Fn func() // want "wire field Outer.In.Fn has func type"
}

// Stamped is clean even though time.Time has unexported fields: it
// provides its own gob encoding, so field-level analysis does not apply.
type Stamped struct {
	ID string
	At time.Time
}

// AnyPayload is clean: an empty interface field is gob's intended opaque
// payload slot (the concrete values carry their own registrations).
type AnyPayload struct {
	Kind string
	Body any
}

func init() {
	gob.Register(Clean{})
	gob.Register(BadFunc{})
	gob.Register(BadChan{})
	gob.Register(Dropped{})
	gob.Register(Opaque{})
	gob.Register(BadIface{})
	gob.Register(Outer{})
	gob.Register(Stamped{})
	gob.Register(AnyPayload{})
}

// --- codec-v2 registrations ---
// (This corpus is loaded and type-checked by the analyzer harness, never
// executed, so the nil enc/dec funcs below are fine.)

// CodecClean holds both halves of the v2 contract: a hand-rolled codec
// and the gob registration that backs the fallback path.
type CodecClean struct {
	N int
	V []float64
}

// CodecNoFallback has a v2 codec but no gob registration, so the tagged
// fallback and legacy GobWire peers cannot carry it.
type CodecNoFallback struct { // want "CodecNoFallback has a codec-v2 encoder but no gob registration"
	N int
}

// CodecBad is codec- and gob-registered but structurally uncodecable.
type CodecBad struct {
	Name string
	Fn   func() // want "wire field CodecBad.Fn has func type"
}

func init() {
	codec.RegisterCodec(64, CodecClean{}, nil, nil)
	codec.RegisterCodec(65, CodecNoFallback{}, nil, nil)
	codec.RegisterCodec(66, CodecBad{}, nil, nil)
	// Unnamed codec types (primitives, slices) have no declaration to
	// anchor findings to; the dynamic certification covers them.
	codec.RegisterCodec(67, []int32(nil), nil, nil)
	gob.Register(CodecClean{})
	gob.Register(CodecBad{})
}

// --- durable-store record registrations ---

// RecClean is a certified WAL record: codec encoder, gob fallback, and
// a registration with the store.
type RecClean struct {
	LSN  uint64
	Name string
}

// RecNoCodec is registered as a record but has no codec-v2 encoder, so
// the store refuses to journal it — at runtime, after the mutation.
type RecNoCodec struct { // want "RecNoCodec is registered as a durable-store record but has no codec-v2 encoder"
	N int
}

// RecBad is a record without a codec whose structure is also hostile;
// both defects are reported at the declaration.
type RecBad struct { // want "RecBad is registered as a durable-store record but has no codec-v2 encoder"
	Name string
	C    chan int // want "wire field RecBad.C has chan type"
}

func init() {
	codec.RegisterCodec(68, RecClean{}, nil, nil)
	gob.Register(RecClean{})
	store.RegisterRecords(RecClean{}, RecNoCodec{}, RecBad{})
}

// Unregistered compiles and moves fine under simnet, but tcpnet's gob
// decoder has never heard of it.
type Unregistered struct{ ID string }

func send(env transport.Env, to transport.Addr) {
	env.Send(to, Clean{ID: "ok"})
	env.Send(to, &Clean{ID: "ptr-ok"})     // gob flattens pointers; value registration vouches
	env.Send(to, Unregistered{ID: "nope"}) // want "Unregistered is sent over the wire but never gob-registered"
}

func suppressedSend(env transport.Env, to transport.Addr) {
	//lint:ignore wiresafe corpus exemption: payload registered by the embedding app at startup
	env.Send(to, Unregistered{ID: "later"})
}
