// Package ring is the corpus stand-in for rendezvous routing: Route
// delivers SYNCHRONOUSLY to the local App when this node owns the key.
// That synchronous self-delivery is what makes calling Route from handler
// code a re-entry hazard for the caller's package.
package ring

import "reentrycorpus/transport"

// Delivery is one routed message.
type Delivery struct {
	Key string
	Msg any
}

// App is the ring's upcall interface. Calls through it from this package
// are the designed extension point, not re-entry.
type App interface {
	Deliver(d Delivery)
	Forward(d *Delivery, next transport.Addr) bool
}

type envelope struct {
	Key string
	Msg any
}

// Ring routes by key ownership.
type Ring struct {
	env   transport.Env
	app   App
	self  transport.Addr
	owner transport.Addr
}

// New wires a ring to its environment and application.
func New(env transport.Env, self transport.Addr, app App) *Ring {
	return &Ring{env: env, app: app, self: self}
}

// Route is a dispatch entry: when this node owns key, the message is
// delivered synchronously to the local App in the same stack frame.
func (r *Ring) Route(key string, msg any) {
	if r.owns(key) {
		d := Delivery{Key: key, Msg: msg}
		// Own-package dynamic upcalls: the designed extension point.
		if r.app.Forward(&d, r.self) {
			r.app.Deliver(d)
		}
		return
	}
	r.env.Send(r.owner, envelope{Key: key, Msg: msg}) // async boundary
}

// Receive is a dispatch entry that hands remote envelopes to Route.
// Entry-to-entry delegation without a return path is acyclic, not
// re-entry: nothing Route reaches calls back into Receive.
func (r *Ring) Receive(from transport.Addr, msg any) {
	if e, ok := msg.(envelope); ok {
		r.Route(e.Key, e.Msg)
	}
}

func (r *Ring) owns(key string) bool { return key != "" }
