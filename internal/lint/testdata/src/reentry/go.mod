module reentrycorpus

go 1.24
