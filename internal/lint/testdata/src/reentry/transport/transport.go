// Package transport is the corpus stand-in for the engine's transport
// layer: an async-by-contract Env whose Send enqueues and After schedules.
package transport

// Addr identifies a node.
type Addr string

// Env is the node's handle on the outside world. Send and After are the
// asynchronous boundary: the call graph never resolves them into concrete
// implementations, so nothing reached through them is synchronous.
type Env interface {
	Send(to Addr, msg any)
	After(ticks int, f func())
}
