// Package node is the reentry expectation corpus proper: an App whose
// handler chain calls back into ring.Route. Because Route delivers
// synchronously to this very App when the key is local, those calls can
// re-enter Deliver while it is still on the stack — except where the call
// is deferred to the next tick or is the sanctioned layering pattern.
package node

import (
	"reentrycorpus/ring"
	"reentrycorpus/transport"
)

type createMsg struct{}
type ackMsg struct{}
type fanoutMsg struct{}
type rebalanceMsg struct{}

// Node subscribes to keys and republishes on fan-out.
type Node struct {
	env  transport.Env
	ring *ring.Ring
	subs map[string]int
}

// Deliver is this package's dispatch entry (ring's upcall target).
func (n *Node) Deliver(d ring.Delivery) {
	switch d.Msg.(type) {
	case createMsg:
		n.subs[d.Key]++
		n.ring.Route(d.Key, ackMsg{}) // want "can synchronously re-enter"
	case fanoutMsg:
		n.republish(d.Key)
	case rebalanceMsg:
		n.rebalance(d.Key)
	}
}

// republish is plain handler code (reachable only through Deliver), so
// its synchronous Route call closes the same cycle.
func (n *Node) republish(key string) {
	if n.subs[key] > 0 {
		n.ring.Route(key, fanoutMsg{}) // want "can synchronously re-enter"
	}
}

// rebalance defers its Route call to the next tick: the sanctioned fix.
func (n *Node) rebalance(key string) {
	n.env.After(1, func() {
		n.ring.Route(key, fanoutMsg{})
	})
}

// Receive is layered delegation — a dispatch entry forwarding to the
// same-named entry one layer down is the dispatch pipeline itself.
func (n *Node) Receive(from transport.Addr, msg any) {
	n.ring.Receive(from, msg)
}

// Forward intercepts in-flight deliveries (a dispatch entry with no
// outgoing calls).
func (n *Node) Forward(d *ring.Delivery, next transport.Addr) bool {
	return d.Key != ""
}

// Publish is an external API entry point, not reachable from any dispatch
// entry: calling Route from outside the handler chain is how messages are
// SUPPOSED to enter the system.
func (n *Node) Publish(key string) {
	n.ring.Route(key, createMsg{})
}
