package buildtag

/*
#include <time.h>
*/
import "C"
import "time"

// excludedByCgo would be an envnow finding, but the loader runs with cgo
// disabled, so this file must be filtered out before parsing.
func excludedByCgo() time.Time {
	return time.Now()
}
