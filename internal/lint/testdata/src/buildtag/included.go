// Package buildtag is the framework corpus for build-constraint
// filtering: sibling files excluded by a never-set tag or by cgo carry
// wall-clock calls that must never be loaded, so the analyzed package is
// clean.
package buildtag

import "time"

func included() time.Duration {
	return 5 * time.Millisecond
}
