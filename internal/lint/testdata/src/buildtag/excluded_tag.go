//go:build totoro_lint_never_set

package buildtag

import "time"

// excludedByTag would be an envnow finding, but the tag above is never
// set, so the loader must skip this file entirely.
func excludedByTag() time.Time {
	return time.Now()
}
