package lint

import "testing"

// TestEnvNowCorpus pins the envnow analyzer's full output on its corpus:
// every wall-clock call flagged, Env-based time and Duration arithmetic
// untouched, suppression honored.
func TestEnvNowCorpus(t *testing.T) {
	RunExpectTest(t, "testdata/src/envnow", EnvNow)
}
