package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// protocolDirs are the packages whose logic must be wall-clock-free so it
// replays identically under the simulator. The engine package (repo root)
// is included: it runs on the same Env contract.
var protocolDirs = []string{
	"../ring",
	"../pubsub",
	"../multiring",
	"../relay",
	"../fl",
	"../../", // the totoro engine package itself
}

// TestProtocolPackagesUseEnvClock is the lint gate run in CI: any direct
// wall-clock call in a protocol package fails the build.
func TestProtocolPackagesUseEnvClock(t *testing.T) {
	for _, dir := range protocolDirs {
		vs, err := CheckEnvNow(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, v := range vs {
			t.Errorf("%v", v)
		}
	}
}

// TestCheckerCatchesWallClockCalls proves the checker actually fires, so a
// green lint gate means "no violations", not "broken checker".
func TestCheckerCatchesWallClockCalls(t *testing.T) {
	dir := t.TempDir()
	src := `package bad

import (
	"time"
	t2 "time"
)

func a() time.Time     { return time.Now() }
func b() time.Duration { return t2.Since(t2.Now()) }
func c()               { time.Sleep(time.Second) }
func ok() time.Duration {
	// Shadowing the import must not trip the checker.
	type fake struct{ Now func() time.Duration }
	var time fake
	return time.Now()
}
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	vs, err := CheckEnvNow(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"time.Now": 1, "t2.Since": 1, "t2.Now": 1, "time.Sleep": 1}
	got := map[string]int{}
	for _, v := range vs {
		got[v.Call]++
	}
	for call, n := range want {
		if got[call] != n {
			t.Errorf("%s: got %d violations, want %d (all: %v)", call, got[call], n, vs)
		}
	}
	if len(vs) != 4 {
		t.Errorf("total violations = %d, want 4: %v", len(vs), vs)
	}

	// Test files are exempt (they drive real goroutines and deadlines).
	if err := os.Rename(filepath.Join(dir, "bad.go"), filepath.Join(dir, "bad_test.go")); err != nil {
		t.Fatal(err)
	}
	vs, err = CheckEnvNow(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Errorf("test files must be exempt, got %v", vs)
	}
}
