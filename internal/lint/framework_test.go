package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuppressionDirectives exercises //lint:ignore handling end to end:
// same-line and line-above placement, analyzer-name matching, and the
// stale-directive finding.
func TestSuppressionDirectives(t *testing.T) {
	RunExpectTest(t, "testdata/src/suppress", EnvNow)
}

// TestBuildConstraintFiltering proves files excluded by a never-set build
// tag or by cgo are filtered out before parsing: both sibling files call
// time.Now, yet the package analyzes clean from its single included file.
func TestBuildConstraintFiltering(t *testing.T) {
	loader, err := NewLoader("testdata/src/buildtag")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/buildtag")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (tag- and cgo-excluded files must be skipped)", len(pkg.Files))
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	RunExpectTest(t, "testdata/src/buildtag", EnvNow)
}

// TestMissingReasonDirective: an ignore directive without a reason is a
// finding in its own right and suppresses nothing. (Tested directly — the
// corpus harness cannot express it, since a same-line want marker would
// itself read as the reason.)
func TestMissingReasonDirective(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "bad.go", `package p

//lint:ignore envnow
var x = 1
`, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	dirs, bad := parseIgnores(fset, f)
	if len(dirs) != 0 {
		t.Errorf("reasonless directive must not become a usable suppression, got %d", len(dirs))
	}
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "needs a reason") {
		t.Errorf("want one needs-a-reason finding, got %v", bad)
	}
}

// TestParseErrorFatal: a package that does not parse is a hard loader
// error, not a silent skip.
func TestParseErrorFatal(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module lint.broken\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "broken.go"), []byte("package broken\n\nfunc oops( {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir(dir); err == nil {
		t.Fatal("LoadDir accepted a file that does not parse")
	}
}

// TestMultiPackageRun drives the driver over several real protocol
// packages in one invocation — shared loader, shared wire set — and
// expects a clean bill.
func TestMultiPackageRun(t *testing.T) {
	diags, err := RunRepo("../..", []string{"internal/ring", "internal/pubsub", "internal/wire"})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestHarnessCatchesMismatch: the expectation harness itself must fail on
// both unexpected diagnostics and unmet wants, otherwise green corpus
// tests prove nothing.
func TestHarnessCatchesMismatch(t *testing.T) {
	rec := &recordingT{}
	// The gofunc corpus run under envnow: its gofunc want markers go unmet
	// (and no envnow diagnostics fire), so the harness must complain.
	RunExpectTest(rec, "testdata/src/gofunc", EnvNow)
	if rec.fatals > 0 {
		t.Fatalf("unexpected fatal: %v", rec.msgs)
	}
	if rec.errors == 0 {
		t.Fatal("harness reported success on a corpus with unmet wants")
	}
	for _, m := range rec.msgs {
		if !strings.Contains(m, "expected diagnostic") {
			t.Errorf("unexpected harness complaint: %s", m)
		}
	}
}

// TestAnalyzerRegistry: every analyzer is resolvable by the name used in
// //lint:ignore directives and -only flags.
func TestAnalyzerRegistry(t *testing.T) {
	for _, a := range Analyzers() {
		if got := AnalyzerByName(a.Name); got != a {
			t.Errorf("AnalyzerByName(%q) = %v", a.Name, got)
		}
		if a.Doc == "" {
			t.Errorf("%s: empty Doc", a.Name)
		}
	}
	if AnalyzerByName("nope") != nil {
		t.Error("AnalyzerByName accepted an unknown name")
	}
}

// recordingT captures harness output for harness self-tests.
type recordingT struct {
	errors, fatals int
	msgs           []string
}

func (r *recordingT) Helper() {}

func (r *recordingT) Errorf(format string, args ...any) {
	r.errors++
	r.msgs = append(r.msgs, fmt.Sprintf(format, args...))
}

func (r *recordingT) Fatalf(format string, args ...any) {
	r.fatals++
	r.msgs = append(r.msgs, fmt.Sprintf(format, args...))
}
