package lint

import "testing"

// TestMapOrderCorpus pins the maporder analyzer's full output: sends,
// telemetry, RNG draws, float accumulation, and tie-broken selections in
// map-range bodies flagged (including through same-package helpers); the
// sorted-keys idiom, set building, counting, and per-key state untouched.
func TestMapOrderCorpus(t *testing.T) {
	RunExpectTest(t, "testdata/src/maporder", MapOrder)
}

// TestMapOrderCrossPackageCorpus pins the whole-program half of maporder:
// a loop body that reaches Env.Send only through another package's helper
// chain, or through an interface dispatch resolved by the call graph, is
// flagged; iterating an order-laundered (sorted) snapshot is not.
func TestMapOrderCrossPackageCorpus(t *testing.T) {
	RunExpectTestModule(t, "testdata/src/maporder_xpkg", MapOrder)
}
