package lint

import "testing"

// TestMapOrderCorpus pins the maporder analyzer's full output: sends,
// telemetry, RNG draws, float accumulation, and tie-broken selections in
// map-range bodies flagged (including through same-package helpers); the
// sorted-keys idiom, set building, counting, and per-key state untouched.
func TestMapOrderCorpus(t *testing.T) {
	RunExpectTest(t, "testdata/src/maporder", MapOrder)
}
