package lint

import (
	"go/ast"
	"go/types"
)

// SeedRand guards same-seed reproducibility of randomness: deterministic
// packages must draw from explicitly seeded sources — ideally derived via
// fl.DeriveSeed/fl.DeriveRNG from (app seed, round, client tag) so streams
// are independent of scheduling — never from math/rand's process-global
// source (randomly seeded since Go 1.20) and never from sources seeded
// with wall-clock time. One stray rand.Intn() makes two same-seed runs
// diverge in a way that only surfaces as flaky experiment output.
var SeedRand = &Analyzer{
	Name: "seedrand",
	Doc:  "deterministic packages must not use math/rand's global source or time-seeded sources",
	Run:  runSeedRand,
}

// randSourceCtors are the math/rand functions that construct explicitly
// seeded values rather than drawing from the global source.
var randSourceCtors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runSeedRand(pass *Pass) {
	for ident, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		path := fn.Pkg().Path()
		if path != "math/rand" && path != "math/rand/v2" {
			continue
		}
		if fn.Type().(*types.Signature).Recv() != nil {
			continue // methods on an explicit *rand.Rand/Source are fine
		}
		if !randSourceCtors[fn.Name()] {
			pass.Reportf(ident.Pos(),
				"rand.%s draws from the process-global source and breaks same-seed determinism; use a source derived via fl.DeriveSeed/fl.DeriveRNG", fn.Name())
		}
	}
	// Explicit constructors are allowed — unless their seed argument comes
	// from the wall clock, which reintroduces run-to-run divergence.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if (path != "math/rand" && path != "math/rand/v2") || !randSourceCtors[fn.Name()] {
				return true
			}
			for _, arg := range call.Args {
				if bad := timeDerived(pass, arg); bad != nil {
					pass.Reportf(bad.Pos(),
						"rand.%s seeded from the wall clock; derive the seed from configuration (fl.DeriveSeed) instead", fn.Name())
				}
			}
			return true
		})
	}
}

// calleeFunc resolves a call's callee to a *types.Func when it is a direct
// function or method reference (nil for indirect calls and conversions).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// timeDerived reports a node within expr whose value comes from the time
// package (time.Now().UnixNano() and friends); nil when clean.
func timeDerived(pass *Pass, expr ast.Expr) ast.Node {
	var found ast.Node
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[ident]; obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
			// Package-level functions (time.Now, ...) read the wall clock;
			// methods on Duration/Time values are pure arithmetic on a value
			// that may well be virtual time.
			if fn, isFunc := obj.(*types.Func); isFunc && fn.Type().(*types.Signature).Recv() == nil {
				found = ident
				return false
			}
		}
		return true
	})
	return found
}
