package obs

import (
	"encoding/json"
	"net"
	"net/http"
)

// Handler serves live telemetry over HTTP in the style of expvar:
//
//	GET /metrics       -> Snapshot as JSON (sorted keys)
//	GET /metrics/text  -> Snapshot.String() (the deterministic text form)
//	GET /metrics/prom  -> Snapshot.PromText() (Prometheus text format 0.0.4)
//	GET /metrics/trace -> trace events as a JSON array, oldest first
//
// snap and trace are called per request, so the handler can serve either
// one node's registry or a merged fleet view.
func Handler(snap func() Snapshot, trace func() []Event) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap())
	})
	mux.HandleFunc("/metrics/text", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(snap().String()))
	})
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		w.Write([]byte(snap().PromText()))
	})
	mux.HandleFunc("/metrics/trace", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		events := trace()
		if events == nil {
			events = []Event{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(events)
	})
	return mux
}

// RegistryHandler is Handler bound to one registry.
func RegistryHandler(r *Registry) http.Handler {
	return Handler(r.Snapshot, r.TraceEvents)
}

// StartServer serves h on addr (":0" picks a free port) in a background
// goroutine. It returns the bound address and a shutdown func.
func StartServer(addr string, h http.Handler) (bound string, shutdown func(), err error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(l)
	return l.Addr().String(), func() { srv.Close() }, nil
}
