// Package obs is Totoro's dependency-free telemetry core: named counters,
// gauges, and fixed-bucket histograms held in a Registry, plus a bounded
// ring buffer of structured trace events (see trace.go).
//
// Every layer of the stack — overlay routing, pub/sub trees, the FL
// driver, the transports — emits through one Registry instead of keeping
// layer-private Stats structs, so experiments, live exposition (http.go),
// and failover diagnostics all read the same numbers.
//
// Design rules:
//
//   - No clock. obs never calls time.Now; every trace event is
//     timestamped by the caller with transport.Env.Now, so the same
//     instrumentation is virtual-time-deterministic under the simulator
//     and wall-clock under TCP.
//   - Thread-safe but cheap on the hot path: counters and gauges are
//     atomics, and emitters cache instrument handles at construction
//     instead of hitting the name map per event.
//   - Nil-safe: every method works on a nil *Registry (instruments become
//     no-ops), so optional instrumentation needs no branching.
//   - Deterministic exposition: snapshots render in sorted name order, so
//     two same-seed simulator runs produce bit-identical reports (the
//     determinism tests rely on this).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (d must be >= 0 for the counter to stay monotone).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// reset zeroes the counter (Registry.ResetCounters, experiment phases).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a float64 metric that can move in both directions.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed bucket layout. Bucket i
// counts observations <= Bounds[i]; the final implicit bucket counts the
// rest. The layout is fixed at creation so that histograms from different
// nodes merge bucket-by-bucket.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // len(bounds)+1
	count  int64
	sum    float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]int64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
	}
}

// Fixed bucket layouts shared by all layers, so per-node histograms merge.
var (
	// HopBuckets covers overlay route lengths (O(log N) hops).
	HopBuckets = []float64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	// DepthBuckets covers dataflow-tree depths.
	DepthBuckets = []float64{0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 16}
	// ByteBuckets covers wire sizes from header-only frames to full models.
	ByteBuckets = []float64{64, 256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}
)

// Registry holds one node's named instruments plus its trace ring.
// Instruments are created on first use and live for the registry's
// lifetime; emitters should cache the returned handles.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	trace    traceRing
}

// DefaultTraceCap bounds the per-registry trace ring when New is called
// with cap <= 0.
const DefaultTraceCap = 256

// New creates a registry whose trace ring holds up to traceCap events
// (<= 0 means DefaultTraceCap).
func New(traceCap int) *Registry {
	if traceCap <= 0 {
		traceCap = DefaultTraceCap
	}
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		trace:    traceRing{cap: traceCap},
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram with the
// given bucket layout; an existing histogram keeps its original layout.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{bounds: append([]float64(nil), bounds...), counts: make([]int64, len(bounds)+1)}
		r.hists[name] = h
	}
	return h
}

// ResetCounters zeroes the named counters if they exist (experiment
// harnesses reset traffic tallies between phases).
func (r *Registry) ResetCounters(names ...string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		if c, ok := r.counters[name]; ok {
			c.reset()
		}
	}
}

// HistSnapshot is one histogram's frozen state.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a frozen, mergeable view of a registry (or of many merged
// registries). JSON encoding and String both render in sorted name order.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot freezes the registry's current instrument values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Merge folds o into s (summing counters, histograms bucket-by-bucket,
// and gauges — per-node gauges aggregate additively across a fleet) and
// returns s for chaining.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] += v
	}
	for name, h := range o.Histograms {
		cur, ok := s.Histograms[name]
		if !ok || len(cur.Counts) != len(h.Counts) {
			s.Histograms[name] = HistSnapshot{
				Bounds: append([]float64(nil), h.Bounds...),
				Counts: append([]int64(nil), h.Counts...),
				Count:  h.Count,
				Sum:    h.Sum,
			}
			continue
		}
		for i := range cur.Counts {
			cur.Counts[i] += h.Counts[i]
		}
		cur.Count += h.Count
		cur.Sum += h.Sum
		s.Histograms[name] = cur
	}
	return s
}

// Delta returns the change from prev to s: counters and histogram tallies
// are subtracted (an instrument absent from prev counts from zero), gauges
// keep s's current value (they are levels, not totals). Experiments use it
// to report per-phase or per-round movement from cumulative registries
// without resetting live counters. Neither receiver nor argument is
// modified.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		d := HistSnapshot{
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Count:  h.Count,
			Sum:    h.Sum,
		}
		if p, ok := prev.Histograms[name]; ok && len(p.Counts) == len(d.Counts) {
			for i := range d.Counts {
				d.Counts[i] -= p.Counts[i]
			}
			d.Count -= p.Count
			d.Sum -= p.Sum
		}
		out.Histograms[name] = d
	}
	return out
}

// MergeSnapshots sums a fleet of per-node snapshots into one.
func MergeSnapshots(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	for _, s := range snaps {
		out = out.Merge(s)
	}
	return out
}

// String renders the snapshot as sorted "kind name value" lines — the
// deterministic text form the determinism tests and totoro-sim -metrics
// use.
func (s Snapshot) String() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %g\n", name, s.Gauges[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		fmt.Fprintf(&b, "hist %s count=%d sum=%g", name, h.Count, h.Sum)
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, " le%g=%d", h.Bounds[i], c)
			} else {
				fmt.Fprintf(&b, " inf=%d", c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
