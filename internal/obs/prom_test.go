package obs

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// TestPromText pins the Prometheus exposition: TYPE lines, totoro_
// prefix, name sanitization, cumulative histogram buckets with the
// closing +Inf equal to _count, and byte-identical renders.
func TestPromText(t *testing.T) {
	r := New(0)
	r.Counter("net.msgs_in").Add(7)
	r.Gauge("fl.accuracy").Set(0.25)
	h := r.Histogram("ring.hops", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 8, 9} {
		h.Observe(v)
	}

	text := r.Snapshot().PromText()
	wantLines := []string{
		"# TYPE totoro_net_msgs_in counter",
		"totoro_net_msgs_in 7",
		"# TYPE totoro_fl_accuracy gauge",
		"totoro_fl_accuracy 0.25",
		"# TYPE totoro_ring_hops histogram",
		`totoro_ring_hops_bucket{le="1"} 1`,
		`totoro_ring_hops_bucket{le="2"} 3`,
		`totoro_ring_hops_bucket{le="4"} 4`,
		`totoro_ring_hops_bucket{le="+Inf"} 6`,
		"totoro_ring_hops_sum 23.5",
		"totoro_ring_hops_count 6",
	}
	for _, want := range wantLines {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing line %q\ngot:\n%s", want, text)
		}
	}
	if text != r.Snapshot().PromText() {
		t.Error("two renders of the same snapshot differ")
	}

	// Cumulative invariant: bucket values never decrease, and the +Inf
	// bucket equals _count, for every histogram line set.
	var prev int64 = -1
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "totoro_ring_hops_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
}

// TestPromHTTP verifies the /metrics/prom route serves the exposition
// with the scrape content type.
func TestPromHTTP(t *testing.T) {
	r := New(0)
	r.Counter("relay.delivered").Add(2)

	addr, shutdown, err := StartServer("127.0.0.1:0", RegistryHandler(r))
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer shutdown()

	resp, err := http.Get("http://" + addr + "/metrics/prom")
	if err != nil {
		t.Fatalf("GET /metrics/prom: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "totoro_relay_delivered 2\n") {
		t.Errorf("body missing counter sample:\n%s", body)
	}
}
