package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := New(0)
	c := r.Counter("ring.delivered")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("ring.delivered") != c {
		t.Fatalf("same name must return the same counter")
	}

	g := r.Gauge("fl.accuracy")
	g.Set(0.75)
	if got := g.Value(); got != 0.75 {
		t.Fatalf("gauge = %v, want 0.75", got)
	}

	h := r.Histogram("ring.route_hops", HopBuckets)
	for _, v := range []float64{0, 1, 2, 2, 5, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 || s.Sum != 110 {
		t.Fatalf("hist count=%d sum=%v, want 6/110", s.Count, s.Sum)
	}
	// 0 -> bucket le0; 1 -> le1; 2,2 -> le2; 5 -> le6; 100 -> +inf.
	if s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[2] != 2 || s.Counts[5] != 1 || s.Counts[len(s.Counts)-1] != 1 {
		t.Fatalf("unexpected bucket counts: %v", s.Counts)
	}
}

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Counter("x").Add(3)
	r.Gauge("y").Set(1)
	r.Histogram("z", HopBuckets).Observe(2)
	r.Trace(Event{Kind: KindRingHop})
	r.ResetCounters("x")
	if got := r.Counter("x").Value(); got != 0 {
		t.Fatalf("nil counter = %d, want 0", got)
	}
	if got := r.Gauge("y").Value(); got != 0 {
		t.Fatalf("nil gauge = %v, want 0", got)
	}
	if ev := r.TraceEvents(); ev != nil {
		t.Fatalf("nil trace events = %v, want nil", ev)
	}
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil snapshot counters = %v, want empty", s.Counters)
	}
}

func TestResetCounters(t *testing.T) {
	r := New(0)
	r.Counter("a").Add(7)
	r.Counter("b").Add(9)
	r.ResetCounters("a", "missing")
	if got := r.Counter("a").Value(); got != 0 {
		t.Fatalf("a = %d after reset, want 0", got)
	}
	if got := r.Counter("b").Value(); got != 9 {
		t.Fatalf("b = %d, want 9 (untouched)", got)
	}
}

func TestSnapshotMergeAndString(t *testing.T) {
	a := New(0)
	a.Counter("ring.delivered").Add(2)
	a.Gauge("fl.accuracy").Set(0.5)
	a.Histogram("hops", HopBuckets).Observe(3)

	b := New(0)
	b.Counter("ring.delivered").Add(3)
	b.Counter("ring.forwarded").Add(1)
	b.Gauge("fl.accuracy").Set(0.25)
	b.Histogram("hops", HopBuckets).Observe(5)

	m := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if m.Counters["ring.delivered"] != 5 || m.Counters["ring.forwarded"] != 1 {
		t.Fatalf("merged counters wrong: %v", m.Counters)
	}
	if m.Gauges["fl.accuracy"] != 0.75 {
		t.Fatalf("merged gauge = %v, want 0.75", m.Gauges["fl.accuracy"])
	}
	h := m.Histograms["hops"]
	if h.Count != 2 || h.Sum != 8 {
		t.Fatalf("merged hist count=%d sum=%v, want 2/8", h.Count, h.Sum)
	}

	text := m.String()
	wantLines := []string{
		"counter ring.delivered 5",
		"counter ring.forwarded 1",
		"gauge fl.accuracy 0.75",
		"hist hops count=2 sum=8",
	}
	for _, w := range wantLines {
		if !strings.Contains(text, w) {
			t.Fatalf("snapshot text missing %q:\n%s", w, text)
		}
	}
	// Deterministic ordering: counters sorted before gauges before hists.
	if strings.Index(text, "ring.delivered") > strings.Index(text, "ring.forwarded") {
		t.Fatalf("counters not sorted:\n%s", text)
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := New(0)
	r.Counter("net.bytes_out").Add(100)
	r.Gauge("fl.accuracy").Set(0.5)
	r.Histogram("hops", HopBuckets).Observe(3)
	prev := r.Snapshot()

	r.Counter("net.bytes_out").Add(40)
	r.Counter("net.msgs_out").Add(7) // born after prev
	r.Gauge("fl.accuracy").Set(0.8)
	r.Histogram("hops", HopBuckets).Observe(5)
	cur := r.Snapshot()

	d := cur.Delta(prev)
	if d.Counters["net.bytes_out"] != 40 {
		t.Fatalf("bytes_out delta = %d, want 40", d.Counters["net.bytes_out"])
	}
	if d.Counters["net.msgs_out"] != 7 {
		t.Fatalf("new counter delta = %d, want 7", d.Counters["net.msgs_out"])
	}
	// Gauges are levels: Delta keeps the current value.
	if d.Gauges["fl.accuracy"] != 0.8 {
		t.Fatalf("gauge = %v, want 0.8", d.Gauges["fl.accuracy"])
	}
	h := d.Histograms["hops"]
	if h.Count != 1 || h.Sum != 5 {
		t.Fatalf("hist delta count=%d sum=%v, want 1/5", h.Count, h.Sum)
	}
	// Inputs untouched.
	if cur.Counters["net.bytes_out"] != 140 || prev.Counters["net.bytes_out"] != 100 {
		t.Fatal("Delta modified its inputs")
	}
	if cur.Histograms["hops"].Count != 2 {
		t.Fatal("Delta modified cur's histogram")
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New(0)
	c := r.Counter("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}
