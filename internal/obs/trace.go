package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// Event is one structured trace record. Layers emit events for the
// moments worth reconstructing after the fact — a routing hop, a tree
// delivery, an aggregate flush — and the bounded ring keeps the most
// recent ones per node.
//
// At is whatever clock the emitting Env runs on: virtual time under the
// simulator (deterministic), wall time since node start under TCP. Node
// is the emitter's address as a string (obs deliberately does not import
// transport, so transport can import obs).
type Event struct {
	At   time.Duration `json:"at"`
	Seq  uint64        `json:"seq"` // per-registry emission order
	Node string        `json:"node"`
	Kind string        `json:"kind"`           // e.g. "ring.hop", "pubsub.deliver"
	Key  string        `json:"key,omitempty"`  // message/topic identity, e.g. an ids.ID string
	From string        `json:"from,omitempty"` // previous hop, if any
	To   string        `json:"to,omitempty"`   // next hop, if any
	Hop  int           `json:"hop,omitempty"`  // hop count or tree depth
	Note string        `json:"note,omitempty"`
}

// Trace kinds emitted by the stack. Kept here as constants so readers
// (experiments, PathOf callers) and emitters agree on spelling.
const (
	KindRingHop       = "ring.hop"       // Key=msg ID, To=next hop, Hop=hops so far
	KindRingDeliver   = "ring.deliver"   // Key=msg ID, Hop=total hops
	KindPubSubDeliver = "pubsub.deliver" // Key=topic, Hop=tree depth, Note="sub"|"fwd"
	KindPubSubAgg     = "pubsub.agg"     // Key=topic, Note="flush"|"timeout"
)

// traceRing is a bounded ring buffer of events.
type traceRing struct {
	mu   sync.Mutex
	cap  int
	buf  []Event
	next int    // overwrite position once full
	seq  uint64 // total events ever emitted
}

func (t *traceRing) append(e Event) {
	t.mu.Lock()
	t.seq++
	e.Seq = t.seq
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, e)
	} else {
		t.buf[t.next] = e
		t.next = (t.next + 1) % t.cap
	}
	t.mu.Unlock()
}

func (t *traceRing) events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// Trace records an event in the registry's ring buffer. The registry
// assigns Seq; callers fill everything else. Nil-safe.
func (r *Registry) Trace(e Event) {
	if r == nil {
		return
	}
	r.trace.append(e)
}

// TraceEvents returns the buffered events, oldest first.
func (r *Registry) TraceEvents() []Event {
	if r == nil {
		return nil
	}
	return r.trace.events()
}

// MergeTraces interleaves per-node event streams into one global
// timeline, ordered by (At, Node, Seq) — a deterministic order under the
// simulator, where At is virtual time.
func MergeTraces(streams ...[]Event) []Event {
	var out []Event
	for _, s := range streams {
		out = append(out, s...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// PathOf reconstructs a routed message's path from a merged timeline:
// the ring.hop events for the given key in hop order, then its
// ring.deliver event. The returned slice is the full per-hop record —
// PathString renders it compactly.
func PathOf(events []Event, key string) []Event {
	var hops, delivers []Event
	for _, e := range events {
		if e.Key != key {
			continue
		}
		switch e.Kind {
		case KindRingHop:
			hops = append(hops, e)
		case KindRingDeliver:
			delivers = append(delivers, e)
		}
	}
	sort.SliceStable(hops, func(i, j int) bool { return hops[i].Hop < hops[j].Hop })
	return append(hops, delivers...)
}

// PathString renders a PathOf result as "a -> b -> c (delivered hop=2)".
func PathString(path []Event) string {
	if len(path) == 0 {
		return "(no trace)"
	}
	s := ""
	for _, e := range path {
		if e.Kind != KindRingHop {
			continue
		}
		if s == "" {
			s = e.Node
		}
		s += " -> " + e.To
	}
	last := path[len(path)-1]
	if last.Kind == KindRingDeliver {
		if s == "" {
			s = last.Node
		}
		s += " (delivered hop=" + strconv.Itoa(last.Hop) + ")"
	}
	return s
}
