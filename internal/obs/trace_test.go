package obs

import (
	"testing"
	"time"
)

func TestTraceRingBounded(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Trace(Event{At: time.Duration(i), Kind: "k"})
	}
	ev := r.TraceEvents()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(ev))
	}
	// Oldest-first: events 6..9 survive.
	for i, e := range ev {
		if e.At != time.Duration(6+i) {
			t.Fatalf("event %d has At=%v, want %v", i, e.At, time.Duration(6+i))
		}
	}
	// Seq keeps global emission order even after wraparound.
	if ev[0].Seq != 7 || ev[3].Seq != 10 {
		t.Fatalf("seq = %d..%d, want 7..10", ev[0].Seq, ev[3].Seq)
	}
}

func TestMergeTracesOrdering(t *testing.T) {
	a := []Event{{At: 3 * time.Millisecond, Node: "a", Seq: 1}, {At: 5 * time.Millisecond, Node: "a", Seq: 2}}
	b := []Event{{At: 3 * time.Millisecond, Node: "b", Seq: 1}, {At: 1 * time.Millisecond, Node: "b", Seq: 0}}
	m := MergeTraces(a, b)
	if len(m) != 4 {
		t.Fatalf("merged %d events, want 4", len(m))
	}
	want := []string{"b", "a", "b", "a"} // 1ms/b, 3ms/a, 3ms/b, 5ms/a
	for i, e := range m {
		if e.Node != want[i] {
			t.Fatalf("merged order wrong at %d: got %s, want %s (%v)", i, e.Node, want[i], m)
		}
	}
}

func TestPathReconstruction(t *testing.T) {
	// Message "m1" routed a -> b -> c: a and b emit hop events, c delivers.
	events := []Event{
		{At: 1, Node: "a", Kind: KindRingHop, Key: "m1", To: "b", Hop: 0},
		{At: 2, Node: "b", Kind: KindRingHop, Key: "m1", From: "a", To: "c", Hop: 1},
		{At: 3, Node: "c", Kind: KindRingDeliver, Key: "m1", From: "b", Hop: 2},
		{At: 2, Node: "x", Kind: KindRingDeliver, Key: "other", Hop: 0},
		{At: 2, Node: "a", Kind: KindPubSubDeliver, Key: "m1", Hop: 1},
	}
	path := PathOf(events, "m1")
	if len(path) != 3 {
		t.Fatalf("path has %d events, want 3: %v", len(path), path)
	}
	if path[0].Node != "a" || path[1].Node != "b" || path[2].Kind != KindRingDeliver {
		t.Fatalf("wrong path: %v", path)
	}
	got := PathString(path)
	want := "a -> b -> c (delivered hop=2)"
	if got != want {
		t.Fatalf("PathString = %q, want %q", got, want)
	}
	if s := PathString(nil); s != "(no trace)" {
		t.Fatalf("empty path renders %q", s)
	}
}
