package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// PromText renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): every metric prefixed totoro_, counters and gauges as
// single samples, histograms as cumulative _bucket{le="..."} series with
// the closing +Inf bucket, _sum, and _count. Names are emitted in sorted
// order, so two renders of the same snapshot are byte-identical — the
// same determinism contract as Snapshot.String, in a format any
// Prometheus scraper ingests directly.
func (s Snapshot) PromText() string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", pn)
		fmt.Fprintf(&b, "%s %d\n", pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(&b, "%s %s\n", pn, promFloat(s.Gauges[name]))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, promFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	return b.String()
}

// PromContentType is the scrape Content-Type for the text exposition
// format rendered by PromText.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a registry name ("net.msgs_in") onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_:], prefixed totoro_.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("totoro_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects: shortest exact
// form, no exponent surprises for the common cases.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
