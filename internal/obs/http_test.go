package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestHTTPExposition(t *testing.T) {
	r := New(0)
	r.Counter("ring.delivered").Add(3)
	r.Gauge("fl.accuracy").Set(0.5)
	r.Trace(Event{At: 1, Node: "n1", Kind: KindRingDeliver, Key: "m", Hop: 2})

	addr, shutdown, err := StartServer("127.0.0.1:0", RegistryHandler(r))
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer shutdown()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("unmarshal /metrics: %v", err)
	}
	if snap.Counters["ring.delivered"] != 3 || snap.Gauges["fl.accuracy"] != 0.5 {
		t.Fatalf("served snapshot wrong: %+v", snap)
	}

	if text := string(get("/metrics/text")); !strings.Contains(text, "counter ring.delivered 3") {
		t.Fatalf("text exposition missing counter:\n%s", text)
	}

	var events []Event
	if err := json.Unmarshal(get("/metrics/trace"), &events); err != nil {
		t.Fatalf("unmarshal /metrics/trace: %v", err)
	}
	if len(events) != 1 || events[0].Kind != KindRingDeliver || events[0].Node != "n1" {
		t.Fatalf("served trace wrong: %+v", events)
	}
}
