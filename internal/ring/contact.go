// Package ring implements the Pastry-style structured P2P overlay that is
// Totoro's Layer 1 substrate (paper §4.2, §6).
//
// Every node keeps three data structures, exactly as in the paper:
//
//   - a routing table of ⌈128/b⌉ rows × 2^b−1 entries used for greedy
//     prefix routing (the paper's configurable "base bit value" b of 3, 4,
//     or 5 gives tree fanouts of 8, 16 and 32);
//   - a leaf set of the numerically closest nodes on either side, used to
//     finish routes and to rebuild state upon failures; and
//   - a neighborhood set of physically (proximity-wise) close nodes used to
//     keep routing-table entries locality-aware.
//
// Any message routed with a 128-bit key reaches the live node whose NodeId
// is numerically closest to the key within ⌈log_{2^b} N⌉ hops.
//
// Nodes are event-driven transport.Handlers: the same logic runs under
// internal/simnet for large-scale deterministic experiments and over real
// TCP via internal/transport/tcpnet.
package ring

import (
	"sort"

	"totoro/internal/ids"
	"totoro/internal/transport"
)

// Contact is the (NodeId, address) pair stored in routing state.
type Contact struct {
	ID   ids.ID
	Addr transport.Addr
}

// IsZero reports whether c is the empty contact.
func (c Contact) IsZero() bool { return c.Addr == transport.None }

// Delivery describes a routed message arriving at its owner node.
type Delivery struct {
	// Key is the 128-bit routing key.
	Key ids.ID
	// Source is the node that originated the route.
	Source Contact
	// Hops is the number of overlay hops the message traversed.
	Hops int
	// Payload is the application message.
	Payload any
}

// App is the upcall interface of the overlay (the classic structured-overlay
// common API). Totoro's pub/sub forest layer is implemented as an App.
type App interface {
	// Deliver is invoked on the node whose ID is numerically closest to the
	// key (the rendezvous node).
	Deliver(d Delivery)
	// Forward is invoked on every intermediate node before the message is
	// forwarded to next. Returning false consumes the message here (used by
	// the pub/sub layer to terminate subscription JOINs at the first node
	// already on the tree). Implementations may mutate d.Payload.
	Forward(d *Delivery, next Contact) bool
}

// NopApp is an App that accepts deliveries silently and always forwards.
type NopApp struct{}

// Deliver implements App.
func (NopApp) Deliver(Delivery) {}

// Forward implements App.
func (NopApp) Forward(*Delivery, Contact) bool { return true }

// sortByCW sorts contacts by clockwise distance from base.
func sortByCW(base ids.ID, cs []Contact) {
	sort.Slice(cs, func(i, j int) bool {
		return ids.CWDist(base, cs[i].ID).Less(ids.CWDist(base, cs[j].ID))
	})
}

// closestContact returns the contact numerically closest to key among cs,
// or the zero Contact if cs is empty.
func closestContact(key ids.ID, cs []Contact) Contact {
	var best Contact
	for _, c := range cs {
		if c.IsZero() {
			continue
		}
		if best.IsZero() || ids.Closer(key, c.ID, best.ID) {
			best = c
		}
	}
	return best
}
