package ring

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"totoro/internal/ids"
	"totoro/internal/simnet"
	"totoro/internal/transport"
)

// recordingApp records deliveries made to one node.
type recordingApp struct {
	deliveries []Delivery
}

func (a *recordingApp) Deliver(d Delivery)              { a.deliveries = append(a.deliveries, d) }
func (a *recordingApp) Forward(*Delivery, Contact) bool { return true }

type cluster struct {
	net    *simnet.Network
	nodes  []*Node
	apps   []*recordingApp
	byAddr map[transport.Addr]int
	rng    *rand.Rand
}

func newStaticCluster(t testing.TB, n int, cfg Config, seed int64) *cluster {
	t.Helper()
	c := &cluster{
		net:    simnet.New(simnet.Config{Seed: seed}),
		byAddr: make(map[transport.Addr]int),
		rng:    rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < n; i++ {
		addr := transport.Addr(fmt.Sprintf("n%d", i))
		id := ids.Random(c.rng)
		app := &recordingApp{}
		var node *Node
		c.net.AddNode(addr, func(e transport.Env) transport.Handler {
			node = New(e, Contact{ID: id, Addr: addr}, cfg)
			node.SetApp(app)
			return node
		})
		c.nodes = append(c.nodes, node)
		c.apps = append(c.apps, app)
		c.byAddr[addr] = i
	}
	BuildStatic(c.nodes, c.rng)
	return c
}

// owner returns the index of the node numerically closest to key.
func (c *cluster) owner(key ids.ID) int {
	best := 0
	for i := 1; i < len(c.nodes); i++ {
		if ids.Closer(key, c.nodes[i].self.ID, c.nodes[best].self.ID) {
			best = i
		}
	}
	return best
}

// ownerAlive returns the closest node that is still alive.
func (c *cluster) ownerAlive(key ids.ID) int {
	best := -1
	for i := range c.nodes {
		if !c.net.Alive(c.nodes[i].self.Addr) {
			continue
		}
		if best < 0 || ids.Closer(key, c.nodes[i].self.ID, c.nodes[best].self.ID) {
			best = i
		}
	}
	return best
}

func TestStaticRoutingReachesOwner(t *testing.T) {
	c := newStaticCluster(t, 1000, Config{B: 4}, 1)
	for trial := 0; trial < 200; trial++ {
		key := ids.Random(c.rng)
		src := c.rng.Intn(len(c.nodes))
		want := c.owner(key)
		before := len(c.apps[want].deliveries)
		c.nodes[src].Route(key, "probe")
		c.net.RunUntilIdle()
		if len(c.apps[want].deliveries) != before+1 {
			t.Fatalf("trial %d: key %s not delivered to owner %d", trial, key, want)
		}
		d := c.apps[want].deliveries[before]
		if d.Key != key || d.Payload != "probe" {
			t.Fatalf("wrong delivery %+v", d)
		}
	}
}

func TestRoutingHopsLogarithmic(t *testing.T) {
	// ceil(log_16(1000)) = 3; with the leaf-set shortcut most routes use
	// fewer. Allow one hop of slack.
	c := newStaticCluster(t, 1000, Config{B: 4}, 2)
	maxAllowed := int(math.Ceil(math.Log(1000)/math.Log(16))) + 1
	totalHops, routes := 0, 0
	for trial := 0; trial < 300; trial++ {
		key := ids.Random(c.rng)
		src := c.rng.Intn(len(c.nodes))
		want := c.owner(key)
		before := len(c.apps[want].deliveries)
		c.nodes[src].Route(key, trial)
		c.net.RunUntilIdle()
		d := c.apps[want].deliveries[before]
		if d.Hops > maxAllowed {
			t.Fatalf("route took %d hops (> %d)", d.Hops, maxAllowed)
		}
		totalHops += d.Hops
		routes++
	}
	avg := float64(totalHops) / float64(routes)
	if avg < 1.0 {
		t.Fatalf("suspiciously low average hops %.2f", avg)
	}
}

func TestSelfRouteDeliversLocally(t *testing.T) {
	c := newStaticCluster(t, 50, Config{B: 4}, 3)
	n := c.nodes[7]
	n.Route(n.self.ID, "self")
	c.net.RunUntilIdle()
	if len(c.apps[7].deliveries) != 1 || c.apps[7].deliveries[0].Hops != 0 {
		t.Fatalf("self route: %+v", c.apps[7].deliveries)
	}
}

func TestLeafsetContainsImmediateNeighbors(t *testing.T) {
	c := newStaticCluster(t, 300, Config{B: 4}, 4)
	for i, n := range c.nodes {
		// The globally closest successor must be the first cw leaf.
		var succ Contact
		for j, m := range c.nodes {
			if j == i {
				continue
			}
			if succ.IsZero() ||
				ids.CWDist(n.self.ID, m.self.ID).Less(ids.CWDist(n.self.ID, succ.ID)) {
				succ = m.self
			}
		}
		if len(n.leafCW) == 0 || n.leafCW[0].Addr != succ.Addr {
			t.Fatalf("node %d leafCW[0] = %v want %v", i, n.leafCW, succ.Addr)
		}
	}
}

func TestDynamicJoinConverges(t *testing.T) {
	seed := int64(5)
	net := simnet.New(simnet.Config{Seed: seed})
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{B: 4}
	var nodes []*Node
	var apps []*recordingApp

	addNode := func(i int) *Node {
		addr := transport.Addr(fmt.Sprintf("j%d", i))
		id := ids.Random(rng)
		app := &recordingApp{}
		var node *Node
		net.AddNode(addr, func(e transport.Env) transport.Handler {
			node = New(e, Contact{ID: id, Addr: addr}, cfg)
			node.SetApp(app)
			return node
		})
		nodes = append(nodes, node)
		apps = append(apps, app)
		return node
	}

	first := addNode(0)
	first.MarkJoined()
	const n = 120
	for i := 1; i < n; i++ {
		node := addNode(i)
		bootstrap := nodes[rng.Intn(i)].self.Addr
		node.Join(bootstrap)
		net.RunUntilIdle()
		if !node.Joined() {
			t.Fatalf("node %d did not complete join", i)
		}
	}

	owner := func(key ids.ID) int {
		best := 0
		for i := 1; i < len(nodes); i++ {
			if ids.Closer(key, nodes[i].self.ID, nodes[best].self.ID) {
				best = i
			}
		}
		return best
	}

	for trial := 0; trial < 100; trial++ {
		key := ids.Random(rng)
		src := rng.Intn(n)
		want := owner(key)
		before := len(apps[want].deliveries)
		nodes[src].Route(key, trial)
		net.RunUntilIdle()
		if len(apps[want].deliveries) != before+1 {
			t.Fatalf("trial %d: dynamic overlay misrouted key %s", trial, key)
		}
	}
}

func TestReliableHopsRerouteAroundFailure(t *testing.T) {
	cfg := Config{B: 4, ReliableHops: true, HopAckTimeout: 50 * time.Millisecond}
	c := newStaticCluster(t, 400, Config{B: cfg.B, ReliableHops: true, HopAckTimeout: cfg.HopAckTimeout}, 6)

	failures := 0
	for trial := 0; trial < 40; trial++ {
		key := ids.Random(c.rng)
		src := c.rng.Intn(len(c.nodes))
		// Fail the first hop on the route, then route: the sender must time
		// out, scrub the contact, and find another way.
		first := c.nodes[src].NextHop(key)
		if first.IsZero() {
			continue
		}
		c.net.Fail(first.Addr)
		failures++
		want := c.ownerAlive(key)
		if want < 0 || c.nodes[want].self.Addr == first.Addr {
			c.net.Revive(first.Addr)
			failures--
			continue
		}
		before := len(c.apps[want].deliveries)
		c.nodes[src].Route(key, trial)
		c.net.RunUntilIdle()
		if len(c.apps[want].deliveries) != before+1 {
			t.Fatalf("trial %d: route not repaired around failed hop", trial)
		}
		c.net.Revive(first.Addr)
		// Re-teach the revived contact so later trials see a full overlay.
		c.nodes[src].AddContactDirect(first)
	}
	if failures == 0 {
		t.Fatal("test never exercised a failure")
	}
}

func TestRemoveContactScrubsEverything(t *testing.T) {
	c := newStaticCluster(t, 100, Config{B: 4}, 7)
	victim := c.nodes[3].self
	n := c.nodes[0]
	n.AddContactDirect(victim)
	n.RemoveContact(victim.Addr)
	for _, k := range n.KnownContacts() {
		if k.Addr == victim.Addr {
			t.Fatal("victim still present after RemoveContact")
		}
	}
}

func TestLeafsetRepairRefills(t *testing.T) {
	c := newStaticCluster(t, 200, Config{B: 4}, 8)
	n := c.nodes[0]
	before := len(n.Leafset())
	// Fail a leaf and scrub it; the repair protocol should refill from the
	// surviving extremes.
	victim := n.leafCW[0]
	c.net.Fail(victim.Addr)
	n.RemoveContact(victim.Addr)
	c.net.RunUntilIdle()
	after := len(n.Leafset())
	if after < before-1 {
		t.Fatalf("leafset shrank from %d to %d without repair", before, after)
	}
	for _, l := range n.Leafset() {
		if l.Addr == victim.Addr {
			t.Fatal("failed leaf still present")
		}
	}
}

func TestInsertSortedProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	self := ids.Random(rng)
	var list []Contact
	const max = 12
	seen := make(map[transport.Addr]bool)
	for i := 0; i < 500; i++ {
		c := Contact{ID: ids.Random(rng), Addr: transport.Addr(fmt.Sprintf("c%d", i%80))}
		list = insertSorted(self, list, c, true, max)
		seen[c.Addr] = true
		if len(list) > max {
			t.Fatalf("list overflow: %d", len(list))
		}
		for j := 1; j < len(list); j++ {
			if ids.CWDist(self, list[j].ID).Less(ids.CWDist(self, list[j-1].ID)) {
				t.Fatal("list not sorted by cw distance")
			}
		}
		addrs := make(map[transport.Addr]bool)
		for _, e := range list {
			if addrs[e.Addr] {
				t.Fatal("duplicate addr in leaf list")
			}
			addrs[e.Addr] = true
		}
	}
}

func TestJoinedNodeRoutesImmediately(t *testing.T) {
	c := newStaticCluster(t, 64, Config{B: 3}, 10)
	// A brand-new node joins the static overlay dynamically and can route.
	addr := transport.Addr("late")
	id := ids.Random(c.rng)
	app := &recordingApp{}
	var node *Node
	c.net.AddNode(addr, func(e transport.Env) transport.Handler {
		node = New(e, Contact{ID: id, Addr: addr}, Config{B: 3})
		node.SetApp(app)
		return node
	})
	node.Join(c.nodes[0].self.Addr)
	c.net.RunUntilIdle()
	if !node.Joined() {
		t.Fatal("late join failed")
	}
	key := ids.Random(c.rng)
	all := append(append([]*Node{}, c.nodes...), node)
	best := 0
	for i := 1; i < len(all); i++ {
		if ids.Closer(key, all[i].self.ID, all[best].self.ID) {
			best = i
		}
	}
	node.Route(key, "late-route")
	c.net.RunUntilIdle()
	var delivered bool
	if best == len(all)-1 {
		delivered = len(app.deliveries) > 0
	} else {
		delivered = len(c.apps[best].deliveries) > 0
	}
	if !delivered {
		t.Fatal("route from late joiner not delivered to owner")
	}
}

func TestRTEntriesPopulated(t *testing.T) {
	c := newStaticCluster(t, 1000, Config{B: 4}, 11)
	empty := 0
	for _, n := range c.nodes {
		if n.RTEntries() == 0 {
			empty++
		}
	}
	if empty > 0 {
		t.Fatalf("%d nodes have empty routing tables", empty)
	}
}

func TestDifferentBasesRouteCorrectly(t *testing.T) {
	for _, b := range []int{3, 4, 5} {
		b := b
		t.Run(fmt.Sprintf("b=%d", b), func(t *testing.T) {
			c := newStaticCluster(t, 500, Config{B: b}, int64(20+b))
			for trial := 0; trial < 60; trial++ {
				key := ids.Random(c.rng)
				src := c.rng.Intn(len(c.nodes))
				want := c.owner(key)
				before := len(c.apps[want].deliveries)
				c.nodes[src].Route(key, trial)
				c.net.RunUntilIdle()
				if len(c.apps[want].deliveries) != before+1 {
					t.Fatalf("b=%d misrouted", b)
				}
			}
		})
	}
}
