package ring

import (
	"totoro/internal/ids"
	"totoro/internal/transport"
)

// Message is the marker interface for all overlay wire messages, so that a
// composite node handler can dispatch ring traffic by a single type switch.
type Message interface{ ringMessage() }

// Envelope carries a routed application payload one overlay hop.
type Envelope struct {
	Key     ids.ID
	Source  Contact
	Hops    int
	Payload any
	// Seq identifies the envelope for per-hop acknowledgements.
	Seq uint64
}

func (Envelope) ringMessage() {}

// WireSize charges the envelope header plus its payload.
func (e Envelope) WireSize() int { return 40 + transport.SizeOf(e.Payload) }

// HopAck acknowledges receipt of an Envelope hop when reliable hops are
// enabled (Config.ReliableHops).
type HopAck struct{ Seq uint64 }

func (HopAck) ringMessage() {}

// WireSize reports a minimal ack frame.
func (HopAck) WireSize() int { return 16 }

// JoinRequest starts the join protocol: it is routed toward the joiner's
// own NodeId, collecting routing-table rows from every hop on the way.
type JoinRequest struct {
	Joiner Contact
	// Rows[i] holds row i of some hop's routing table; merged by the joiner.
	Rows [][]Contact
	Hops int
}

func (JoinRequest) ringMessage() {}

// WireSize grows with the accumulated state snapshot.
func (j JoinRequest) WireSize() int { return 48 + 24*countContacts(j.Rows) }

// JoinReply is sent by the rendezvous node (numerically closest to the
// joiner) carrying the collected rows and its own leaf set.
type JoinReply struct {
	Root    Contact
	Rows    [][]Contact
	Leafset []Contact
}

func (JoinReply) ringMessage() {}

// WireSize grows with the transferred state.
func (j JoinReply) WireSize() int { return 48 + 24*(countContacts(j.Rows)+len(j.Leafset)) }

// NodeJoined announces a freshly joined node to every contact it learned,
// so that they can insert it into their own leaf sets and routing tables.
type NodeJoined struct{ Node Contact }

func (NodeJoined) ringMessage() {}

// LeafsetRequest asks a peer for its current leaf set (used for repair).
type LeafsetRequest struct{}

func (LeafsetRequest) ringMessage() {}

// LeafsetReply returns the peer's leaf set plus its own contact.
type LeafsetReply struct {
	From    Contact
	Leafset []Contact
}

func (LeafsetReply) ringMessage() {}

// WireSize grows with the leaf set.
func (l LeafsetReply) WireSize() int { return 32 + 24*len(l.Leafset) }

// Ping probes liveness.
type Ping struct{ From Contact }

func (Ping) ringMessage() {}

// Pong answers a Ping.
type Pong struct{ From Contact }

func (Pong) ringMessage() {}

func countContacts(rows [][]Contact) int {
	n := 0
	for _, r := range rows {
		n += len(r)
	}
	return n
}
