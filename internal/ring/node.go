package ring

import (
	"sort"
	"time"

	"totoro/internal/ids"
	"totoro/internal/obs"
	"totoro/internal/transport"
)

// Config parameterizes an overlay node.
type Config struct {
	// B is the number of bits per routing digit; the routing table has
	// 2^B−1 usable entries per row and pub/sub trees built on the overlay
	// have fanout 2^B. The paper evaluates B ∈ {3,4,5} (fanouts 8/16/32).
	B int
	// LeafSetSize is the total leaf set size (half on each side of the
	// ring). The paper configures 24 (§7.1).
	LeafSetSize int
	// NeighborhoodSize bounds the physically-closest node set.
	NeighborhoodSize int
	// ReliableHops enables per-hop acknowledgements: a hop that is not
	// acked within HopAckTimeout removes the suspect contact and re-routes.
	// This is how routes adapt to failed nodes (§4.5).
	ReliableHops bool
	// HopAckTimeout is the per-hop ack deadline when ReliableHops is set.
	HopAckTimeout time.Duration
	// DeadQuarantine is how long a removed (suspected-failed) contact is
	// refused re-insertion, so that repair replies from peers that have not
	// yet noticed the failure cannot resurrect it.
	DeadQuarantine time.Duration
	// RecontactTries is how many maintenance cycles a removed contact keeps
	// being probed after it is scrubbed. A healed partition looks exactly
	// like a mass failure — both sides have scrubbed each other from all
	// routing state, so no traffic crosses the former boundary and the
	// overlay would stay split forever without an active re-contact path.
	// A contact that stays silent for this many probes is dropped for good
	// (it can still return via an explicit re-join). Negative disables.
	RecontactTries int
	// Proximity estimates the network distance between two addresses; when
	// set, routing-table slots prefer physically closer candidates,
	// which is Pastry's locality property. May be nil.
	Proximity func(a, b transport.Addr) float64
}

func (c Config) withDefaults() Config {
	if c.B == 0 {
		c.B = 4
	}
	if c.LeafSetSize == 0 {
		c.LeafSetSize = 24
	}
	if c.NeighborhoodSize == 0 {
		c.NeighborhoodSize = 16
	}
	if c.HopAckTimeout == 0 {
		c.HopAckTimeout = 200 * time.Millisecond
	}
	if c.DeadQuarantine == 0 {
		c.DeadQuarantine = 2 * time.Second
	}
	if c.RecontactTries == 0 {
		c.RecontactTries = 20
	}
	return c
}

type pendingHop struct {
	env    Envelope
	next   Contact
	cancel func()
}

// removedContact remembers a scrubbed contact so maintenance can keep
// probing it for a bounded number of cycles — the only way two sides of a
// healed partition find each other again.
type removedContact struct {
	c     Contact
	tries int
}

// Node is one overlay participant.
type Node struct {
	env  transport.Env
	cfg  Config
	self Contact
	app  App

	rt        [][]Contact // [row][digit]
	leafCW    []Contact   // successors, sorted by clockwise distance
	leafCCW   []Contact   // predecessors, sorted by counter-clockwise distance
	neighbors []Contact

	seq       uint64
	pending   map[uint64]*pendingHop
	joined    bool
	deadUntil map[transport.Addr]time.Duration
	// Maintenance probe bookkeeping (StartMaintenance).
	probeSent map[transport.Addr]time.Duration
	lastPong  map[transport.Addr]time.Duration
	// Removed contacts still being re-probed (partition-heal re-merge).
	removed map[transport.Addr]removedContact

	// Cached handles into env.Metrics() — see the "ring.*" names below.
	ctrDelivered  *obs.Counter
	ctrForwarded  *obs.Counter
	ctrHopRetries *obs.Counter
	ctrJoins      *obs.Counter
	ctrRepairs    *obs.Counter
	ctrRecontacts *obs.Counter
	hopHist       *obs.Histogram
}

// New creates a node. Call SetApp before routing if the application wants
// upcalls, then Join (or include the node in a static build).
func New(env transport.Env, self Contact, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		env:       env,
		cfg:       cfg,
		self:      self,
		app:       NopApp{},
		rt:        make([][]Contact, ids.NumDigits(cfg.B)),
		pending:   make(map[uint64]*pendingHop),
		deadUntil: make(map[transport.Addr]time.Duration),
		probeSent: make(map[transport.Addr]time.Duration),
		lastPong:  make(map[transport.Addr]time.Duration),
		removed:   make(map[transport.Addr]removedContact),
	}
	for i := range n.rt {
		n.rt[i] = make([]Contact, 1<<uint(cfg.B))
	}
	m := env.Metrics()
	n.ctrDelivered = m.Counter("ring.delivered")    // routes that terminated here
	n.ctrForwarded = m.Counter("ring.forwarded")    // routes passed on
	n.ctrHopRetries = m.Counter("ring.hop_retries") // reliable-hop timeouts that re-routed
	n.ctrJoins = m.Counter("ring.joins")            // joins this node completed
	n.ctrRepairs = m.Counter("ring.leafset_repairs")
	n.ctrRecontacts = m.Counter("ring.recontact_probes") // probes to scrubbed contacts (partition-heal re-merge)
	n.hopHist = m.Histogram("ring.route_hops", obs.HopBuckets)
	return n
}

// Metrics returns the node's telemetry registry (its Env's registry, so
// ring counters sit next to the other layers').
func (n *Node) Metrics() *obs.Registry { return n.env.Metrics() }

// SetApp installs the application upcall handler.
func (n *Node) SetApp(app App) { n.app = app }

// Self returns this node's contact.
func (n *Node) Self() Contact { return n.self }

// Config returns the node configuration.
func (n *Node) Config() Config { return n.cfg }

// Joined reports whether the node completed a join (static builds mark
// nodes joined directly).
func (n *Node) Joined() bool { return n.joined }

// Route sends payload toward the live node whose ID is numerically closest
// to key, invoking App upcalls along the way.
func (n *Node) Route(key ids.ID, payload any) {
	n.handleEnvelope(Envelope{Key: key, Source: n.self, Hops: 0, Payload: payload})
}

// Receive implements transport.Handler for ring messages.
func (n *Node) Receive(from transport.Addr, msg any) {
	// A message received directly from a quarantined address is first-hand
	// proof the node is back (e.g. crash-restarted and rejoining); the
	// quarantine only guards against stale third-party gossip.
	delete(n.deadUntil, from)
	delete(n.removed, from)
	switch m := msg.(type) {
	case Envelope:
		if n.cfg.ReliableHops && from != n.self.Addr {
			n.env.Send(from, HopAck{Seq: m.Seq})
		}
		n.considerContact(m.Source)
		n.handleEnvelope(m)
	case HopAck:
		if p, ok := n.pending[m.Seq]; ok {
			p.cancel()
			delete(n.pending, m.Seq)
		}
	case JoinRequest:
		n.handleJoinRequest(m)
	case JoinReply:
		n.handleJoinReply(m)
	case NodeJoined:
		n.considerContact(m.Node)
	case LeafsetRequest:
		n.env.Send(from, LeafsetReply{From: n.self, Leafset: n.Leafset()})
	case LeafsetReply:
		n.considerContact(m.From)
		for _, c := range m.Leafset {
			n.considerContact(c)
		}
	case Ping:
		n.considerContact(m.From)
		n.env.Send(from, Pong{From: n.self})
	case Pong:
		n.lastPong[m.From.Addr] = n.env.Now()
		n.considerContact(m.From)
	}
}

// handleEnvelope routes e one step from this node.
func (n *Node) handleEnvelope(e Envelope) {
	next := n.NextHop(e.Key)
	if next.IsZero() {
		n.ctrDelivered.Inc()
		n.hopHist.Observe(float64(e.Hops))
		n.env.Metrics().Trace(obs.Event{
			At: n.env.Now(), Node: string(n.self.Addr),
			Kind: obs.KindRingDeliver, Key: e.Key.String(),
			From: string(e.Source.Addr), Hop: e.Hops,
		})
		n.app.Deliver(Delivery{Key: e.Key, Source: e.Source, Hops: e.Hops, Payload: e.Payload})
		return
	}
	d := Delivery{Key: e.Key, Source: e.Source, Hops: e.Hops, Payload: e.Payload}
	if !n.app.Forward(&d, next) {
		return // consumed by the application (e.g. pub/sub JOIN splice)
	}
	e.Payload = d.Payload
	n.ctrForwarded.Inc()
	n.env.Metrics().Trace(obs.Event{
		At: n.env.Now(), Node: string(n.self.Addr),
		Kind: obs.KindRingHop, Key: e.Key.String(),
		To: string(next.Addr), Hop: e.Hops,
	})
	n.forward(e, next)
}

func (n *Node) forward(e Envelope, next Contact) {
	e.Hops++
	if n.cfg.ReliableHops {
		n.seq++
		e.Seq = n.seq
		p := &pendingHop{env: e, next: next}
		p.cancel = n.env.After(n.cfg.HopAckTimeout, func() {
			if _, ok := n.pending[e.Seq]; !ok {
				return
			}
			delete(n.pending, e.Seq)
			n.ctrHopRetries.Inc()
			n.RemoveContact(next.Addr)
			retry := p.env
			retry.Hops-- // hop did not happen
			n.handleEnvelope(retry)
		})
		n.pending[e.Seq] = p
	}
	n.env.Send(next.Addr, e)
}

// NextHop computes the greedy next hop for key, or the zero Contact when
// this node is the key's owner.
func (n *Node) NextHop(key ids.ID) Contact {
	return n.nextHop(key, transport.None)
}

// nextHop is NextHop with an optional excluded address. The join protocol
// excludes the joiner itself: every hop has already learned the joiner's
// contact, and routing "toward the joiner" would otherwise end the route at
// the joiner instead of at the closest existing member.
func (n *Node) nextHop(key ids.ID, exclude transport.Addr) Contact {
	if key == n.self.ID {
		return Contact{}
	}
	// Leaf set range check: if the key falls between the extreme leaves,
	// the numerically closest of {leafset ∪ self} owns it.
	if n.inLeafRange(key) {
		cands := append(n.leafsetExcluding(exclude), n.self)
		best := closestContact(key, cands)
		if best.Addr == n.self.Addr {
			return Contact{}
		}
		return best
	}
	row := ids.CommonPrefix(n.self.ID, key, n.cfg.B)
	if row >= len(n.rt) {
		return Contact{}
	}
	col := key.Digit(row, n.cfg.B)
	if c := n.rt[row][col]; !c.IsZero() && c.Addr != exclude {
		return c
	}
	// Rare case: no entry. Fall back to any known contact that is both at
	// least as prefix-close and numerically closer to the key than we are.
	best := n.self
	for _, c := range n.knownContacts() {
		if c.Addr == exclude {
			continue
		}
		if ids.CommonPrefix(c.ID, key, n.cfg.B) >= row && ids.Closer(key, c.ID, best.ID) {
			best = c
		}
	}
	if best.Addr == n.self.Addr {
		return Contact{}
	}
	return best
}

// leafsetExcluding returns the leaf set minus one address.
func (n *Node) leafsetExcluding(exclude transport.Addr) []Contact {
	ls := n.Leafset()
	if exclude == transport.None {
		return ls
	}
	out := ls[:0]
	for _, c := range ls {
		if c.Addr != exclude {
			out = append(out, c)
		}
	}
	return out
}

// inLeafRange reports whether key falls inside the span covered by the leaf
// set. With fewer than LeafSetSize/2 leaves per side the node knows the
// whole (small) ring and the range is considered to cover everything.
func (n *Node) inLeafRange(key ids.ID) bool {
	if len(n.leafCW) == 0 || len(n.leafCCW) == 0 {
		return true
	}
	if len(n.leafCW) < n.cfg.LeafSetSize/2 || len(n.leafCCW) < n.cfg.LeafSetSize/2 {
		return true
	}
	lo := n.leafCCW[len(n.leafCCW)-1].ID // farthest predecessor
	hi := n.leafCW[len(n.leafCW)-1].ID   // farthest successor
	return ids.Between(key, lo, hi) || key == lo
}

// Leafset returns the union of both leaf-set halves (no duplicates).
func (n *Node) Leafset() []Contact {
	out := make([]Contact, 0, len(n.leafCW)+len(n.leafCCW))
	seen := make(map[transport.Addr]bool, len(n.leafCW)+len(n.leafCCW))
	for _, c := range n.leafCW {
		if !seen[c.Addr] {
			seen[c.Addr] = true
			out = append(out, c)
		}
	}
	for _, c := range n.leafCCW {
		if !seen[c.Addr] {
			seen[c.Addr] = true
			out = append(out, c)
		}
	}
	return out
}

// ClosestLeaves returns up to k leaf-set contacts ordered by numeric
// closeness to key, ties broken by address so the order is deterministic.
// If this node owns key and then fails, the ring re-routes the key to one
// of these contacts — which is what makes them the natural replica set for
// per-key state (the failover layer uses exactly that).
func (n *Node) ClosestLeaves(key ids.ID, k int) []Contact {
	ls := n.Leafset()
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].ID == ls[j].ID {
			return ls[i].Addr < ls[j].Addr
		}
		return ids.Closer(key, ls[i].ID, ls[j].ID)
	})
	if k >= 0 && k < len(ls) {
		ls = ls[:k]
	}
	return ls
}

// Neighbors returns the physical-proximity neighborhood set.
func (n *Node) Neighbors() []Contact { return n.neighbors }

// knownContacts returns every contact in the node's state.
func (n *Node) knownContacts() []Contact {
	out := n.Leafset()
	for _, row := range n.rt {
		for _, c := range row {
			if !c.IsZero() {
				out = append(out, c)
			}
		}
	}
	out = append(out, n.neighbors...)
	return out
}

// KnownContacts exposes knownContacts for diagnostics and tests.
func (n *Node) KnownContacts() []Contact { return n.knownContacts() }

// considerContact folds c into the leaf set, routing table, and
// neighborhood set wherever it improves them.
func (n *Node) considerContact(c Contact) {
	if c.IsZero() || c.Addr == n.self.Addr || c.ID == n.self.ID {
		return
	}
	if until, ok := n.deadUntil[c.Addr]; ok {
		if n.env.Now() < until {
			return // quarantined: recently declared dead
		}
		delete(n.deadUntil, c.Addr)
	}
	delete(n.removed, c.Addr)
	n.insertLeaf(c)
	n.insertRT(c)
	n.insertNeighbor(c)
}

func (n *Node) insertLeaf(c Contact) {
	n.leafCW = insertSorted(n.self.ID, n.leafCW, c, true, n.cfg.LeafSetSize/2)
	n.leafCCW = insertSorted(n.self.ID, n.leafCCW, c, false, n.cfg.LeafSetSize/2)
}

// insertSorted inserts c into a distance-sorted leaf half (cw or ccw),
// deduplicating by address and trimming to max entries.
func insertSorted(self ids.ID, list []Contact, c Contact, cw bool, max int) []Contact {
	dist := func(x Contact) ids.ID {
		if cw {
			return ids.CWDist(self, x.ID)
		}
		return ids.CWDist(x.ID, self)
	}
	for _, e := range list {
		if e.Addr == c.Addr {
			return list
		}
	}
	pos := len(list)
	dc := dist(c)
	for i, e := range list {
		if dc.Less(dist(e)) {
			pos = i
			break
		}
	}
	list = append(list, Contact{})
	copy(list[pos+1:], list[pos:])
	list[pos] = c
	if len(list) > max {
		list = list[:max]
	}
	return list
}

func (n *Node) insertRT(c Contact) {
	row := ids.CommonPrefix(n.self.ID, c.ID, n.cfg.B)
	if row >= len(n.rt) {
		return
	}
	col := c.ID.Digit(row, n.cfg.B)
	cur := n.rt[row][col]
	switch {
	case cur.IsZero():
		n.rt[row][col] = c
	case n.cfg.Proximity != nil &&
		n.cfg.Proximity(n.self.Addr, c.Addr) < n.cfg.Proximity(n.self.Addr, cur.Addr):
		n.rt[row][col] = c
	}
}

func (n *Node) insertNeighbor(c Contact) {
	if n.cfg.Proximity == nil {
		return
	}
	for _, e := range n.neighbors {
		if e.Addr == c.Addr {
			return
		}
	}
	n.neighbors = append(n.neighbors, c)
	if len(n.neighbors) > n.cfg.NeighborhoodSize {
		// Evict the farthest.
		worst, wd := -1, -1.0
		for i, e := range n.neighbors {
			d := n.cfg.Proximity(n.self.Addr, e.Addr)
			if d > wd {
				worst, wd = i, d
			}
		}
		n.neighbors = append(n.neighbors[:worst], n.neighbors[worst+1:]...)
	}
}

// RemoveContact scrubs a suspected-failed address from all routing state
// and starts leaf-set repair if a leaf was lost.
func (n *Node) RemoveContact(addr transport.Addr) {
	n.deadUntil[addr] = n.env.Now() + n.cfg.DeadQuarantine
	delete(n.probeSent, addr)
	delete(n.lastPong, addr)
	repaired := false
	var gone Contact
	filter := func(list []Contact) []Contact {
		out := list[:0]
		for _, c := range list {
			if c.Addr != addr {
				out = append(out, c)
			} else {
				repaired = true
				gone = c
			}
		}
		return out
	}
	n.leafCW = filter(n.leafCW)
	n.leafCCW = filter(n.leafCCW)
	n.neighbors = filter(n.neighbors)
	for _, row := range n.rt {
		for i, c := range row {
			if c.Addr == addr {
				gone = c
				row[i] = Contact{}
			}
		}
	}
	// Remember the scrubbed contact for bounded re-probing: if it went
	// silent because of a partition rather than a crash, the probes are the
	// only traffic that can cross the healed boundary and re-merge the two
	// sides' routing state.
	if !gone.IsZero() && n.cfg.RecontactTries > 0 {
		n.removed[addr] = removedContact{c: gone}
	}
	if repaired {
		n.repairLeafset()
	}
}

// repairLeafset asks the extreme remaining leaves for their leaf sets; the
// merged replies refill the lost slots (paper §4.2: the leaf set "is used
// for rebuilding the routing tables upon failures").
func (n *Node) repairLeafset() {
	n.ctrRepairs.Inc()
	if len(n.leafCW) > 0 {
		n.env.Send(n.leafCW[len(n.leafCW)-1].Addr, LeafsetRequest{})
	}
	if len(n.leafCCW) > 0 {
		n.env.Send(n.leafCCW[len(n.leafCCW)-1].Addr, LeafsetRequest{})
	}
}

// Join bootstraps the node into an existing overlay through any member.
func (n *Node) Join(bootstrap transport.Addr) {
	n.env.Send(bootstrap, JoinRequest{Joiner: n.self})
}

func (n *Node) handleJoinRequest(m JoinRequest) {
	n.considerContact(m.Joiner)
	// Contribute routing rows 0..commonPrefix to the joiner's future table.
	cp := ids.CommonPrefix(n.self.ID, m.Joiner.ID, n.cfg.B)
	for r := 0; r <= cp && r < len(n.rt); r++ {
		row := make([]Contact, 0, len(n.rt[r]))
		for _, c := range n.rt[r] {
			if !c.IsZero() {
				row = append(row, c)
			}
		}
		row = append(row, n.self)
		m.Rows = append(m.Rows, row)
	}
	next := n.nextHop(m.Joiner.ID, m.Joiner.Addr)
	if next.IsZero() {
		// We are the numerically closest *existing* node: complete the join.
		reply := JoinReply{Root: n.self, Rows: m.Rows, Leafset: n.Leafset()}
		n.env.Send(m.Joiner.Addr, reply)
		return
	}
	m.Hops++
	n.env.Send(next.Addr, m)
}

func (n *Node) handleJoinReply(m JoinReply) {
	n.considerContact(m.Root)
	for _, row := range m.Rows {
		for _, c := range row {
			n.considerContact(c)
		}
	}
	for _, c := range m.Leafset {
		n.considerContact(c)
	}
	n.joined = true
	n.ctrJoins.Inc()
	// Announce ourselves to everything we learned so they fold us into
	// their own state.
	for _, c := range n.knownContacts() {
		n.env.Send(c.Addr, NodeJoined{Node: n.self})
	}
}

// ProbeLeafset sends one liveness probe to every leaf-set member — one
// cycle of the overlay's periodic maintenance traffic.
func (n *Node) ProbeLeafset() {
	for _, c := range n.Leafset() {
		n.env.Send(c.Addr, Ping{From: n.self})
	}
}

// StartMaintenance runs periodic leaf-set maintenance: every interval the
// node probes its leaves, and a leaf that never answered the previous
// cycle's probe is declared failed, scrubbed from all routing state, and
// the leaf set repaired from the survivors (§4.2: the leaf set "is used
// for rebuilding the routing tables upon failures"). The returned stop
// function cancels the loop.
func (n *Node) StartMaintenance(interval time.Duration) (stop func()) {
	stopped := false
	var cancel func()
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		n.maintainOnce()
		cancel = n.env.After(interval, tick)
	}
	cancel = n.env.After(interval, tick)
	return func() {
		stopped = true
		if cancel != nil {
			cancel()
		}
	}
}

// maintainOnce performs one maintenance cycle.
func (n *Node) maintainOnce() {
	now := n.env.Now()
	for _, c := range n.Leafset() {
		if sent, probed := n.probeSent[c.Addr]; probed && n.lastPong[c.Addr] < sent {
			// No pong since the previous probe: declare the leaf failed.
			delete(n.probeSent, c.Addr)
			n.RemoveContact(c.Addr)
			continue
		}
		n.probeSent[c.Addr] = now
		n.env.Send(c.Addr, Ping{From: n.self})
	}
	// Re-probe scrubbed contacts: a pong re-merges a healed partition (the
	// direct reply clears the quarantine and re-inserts the contact); a
	// crashed-for-good node exhausts its tries and is forgotten. Sorted
	// iteration keeps the probe order — and so the simulation — deterministic.
	if len(n.removed) == 0 {
		return
	}
	addrs := make([]transport.Addr, 0, len(n.removed))
	for a := range n.removed {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		rc := n.removed[a]
		if rc.tries >= n.cfg.RecontactTries {
			delete(n.removed, a)
			continue
		}
		rc.tries++
		n.removed[a] = rc
		n.ctrRecontacts.Inc()
		n.env.Send(a, Ping{From: n.self})
	}
}

// MarkJoined is used by the static overlay builder.
func (n *Node) MarkJoined() { n.joined = true }

// AddContactDirect inserts a contact without any messaging, clearing any
// dead-quarantine for it (static builds, revived nodes, and tests).
func (n *Node) AddContactDirect(c Contact) {
	delete(n.deadUntil, c.Addr)
	n.considerContact(c)
}

// RTEntries counts the populated routing-table slots.
func (n *Node) RTEntries() int {
	total := 0
	for _, row := range n.rt {
		for _, c := range row {
			if !c.IsZero() {
				total++
			}
		}
	}
	return total
}
