package ring

import (
	"testing"
	"time"

	"totoro/internal/ids"
)

// TestMaintenanceDetectsFailedLeaf runs the periodic leaf-set maintenance
// on every node, fails one node, and checks that its neighbors detect the
// silence, scrub it, and that routing to its keyspace lands at the next
// closest live node.
func TestMaintenanceDetectsFailedLeaf(t *testing.T) {
	c := newStaticCluster(t, 200, Config{B: 4}, 31)
	const interval = 100 * time.Millisecond
	var stops []func()
	for _, n := range c.nodes {
		stops = append(stops, n.StartMaintenance(interval))
	}
	defer func() {
		for _, s := range stops {
			s()
		}
	}()
	// Let one clean cycle establish pong baselines.
	c.net.Run(c.net.Now() + 3*interval)

	victim := c.nodes[42]
	c.net.Fail(victim.self.Addr)
	c.net.Run(c.net.Now() + 6*interval)

	// Every live node's leaf set must be free of the victim.
	for i, n := range c.nodes {
		if i == 42 {
			continue
		}
		for _, l := range n.Leafset() {
			if l.Addr == victim.self.Addr {
				t.Fatalf("node %d still lists the failed leaf", i)
			}
		}
	}

	// Routing a key owned by the victim must land at the closest live node.
	key := victim.self.ID
	want := -1
	for i, n := range c.nodes {
		if i == 42 {
			continue
		}
		if want < 0 || ids.Closer(key, n.self.ID, c.nodes[want].self.ID) {
			want = i
		}
	}
	before := len(c.apps[want].deliveries)
	c.nodes[7].Route(key, "orphaned-key")
	c.net.Run(c.net.Now() + time.Second)
	if len(c.apps[want].deliveries) != before+1 {
		t.Fatal("key owned by the failed node not re-homed to the closest live node")
	}
}

// TestMaintenanceStops verifies the cancel function ends the loop.
func TestMaintenanceStops(t *testing.T) {
	c := newStaticCluster(t, 30, Config{B: 4}, 32)
	stop := c.nodes[0].StartMaintenance(50 * time.Millisecond)
	c.net.Run(c.net.Now() + 200*time.Millisecond)
	stop()
	c.net.RunUntilIdle() // must terminate: no periodic timer left
	if c.net.Pending() != 0 {
		t.Fatalf("pending events after stop: %d", c.net.Pending())
	}
}

// TestMaintenanceQuietOnHealthyRing confirms probing does not evict live
// leaves.
func TestMaintenanceQuietOnHealthyRing(t *testing.T) {
	c := newStaticCluster(t, 100, Config{B: 4}, 33)
	sizesBefore := make([]int, len(c.nodes))
	var stops []func()
	for i, n := range c.nodes {
		sizesBefore[i] = len(n.Leafset())
		stops = append(stops, n.StartMaintenance(60*time.Millisecond))
	}
	c.net.Run(c.net.Now() + 500*time.Millisecond)
	for _, s := range stops {
		s()
	}
	for i, n := range c.nodes {
		if len(n.Leafset()) < sizesBefore[i] {
			t.Fatalf("node %d lost live leaves: %d -> %d", i, sizesBefore[i], len(n.Leafset()))
		}
	}
}
