package ring

import (
	"testing"
	"time"

	"totoro/internal/ids"
)

func inKnown(n *Node, c Contact) bool {
	for _, k := range n.KnownContacts() {
		if k.Addr == c.Addr {
			return true
		}
	}
	return false
}

// TestQuarantineExpiresAndReaccepts covers the dead-quarantine life cycle:
// a removed contact is refused re-insertion while the quarantine holds (so
// stale gossip cannot resurrect it), accepted again once it expires, and
// AddContactDirect (the revived-node path) clears the quarantine early.
func TestQuarantineExpiresAndReaccepts(t *testing.T) {
	const quarantine = 500 * time.Millisecond
	c := newStaticCluster(t, 50, Config{B: 4, DeadQuarantine: quarantine}, 41)
	n := c.nodes[0]

	victim := n.leafCW[0]
	n.RemoveContact(victim.Addr)
	c.net.RunUntilIdle() // let leaf-set repair traffic settle
	if inKnown(n, victim) {
		t.Fatal("victim still known right after RemoveContact")
	}

	// Gossip about the victim during the quarantine must be ignored.
	n.Receive(c.nodes[1].self.Addr, NodeJoined{Node: victim})
	if inKnown(n, victim) {
		t.Fatal("quarantined contact was re-inserted by gossip")
	}

	// Advance virtual time past the quarantine, then gossip again.
	n.env.After(quarantine+time.Millisecond, func() {})
	c.net.RunUntilIdle()
	n.Receive(c.nodes[1].self.Addr, NodeJoined{Node: victim})
	if !inKnown(n, victim) {
		t.Fatal("contact still refused after quarantine expired")
	}

	// AddContactDirect bypasses a live quarantine (revived-node path).
	second := n.leafCCW[0]
	n.RemoveContact(second.Addr)
	c.net.RunUntilIdle()
	n.Receive(c.nodes[1].self.Addr, NodeJoined{Node: second})
	if inKnown(n, second) {
		t.Fatal("quarantine did not hold before AddContactDirect")
	}
	n.AddContactDirect(second)
	if !inKnown(n, second) {
		t.Fatal("AddContactDirect did not clear the quarantine")
	}

	// A message received directly FROM the quarantined address is
	// first-hand liveness proof (the crash-restarted node announcing its
	// rejoin) and lifts the quarantine immediately.
	third := n.leafCW[0]
	n.RemoveContact(third.Addr)
	c.net.RunUntilIdle()
	n.Receive(c.nodes[1].self.Addr, NodeJoined{Node: third})
	if inKnown(n, third) {
		t.Fatal("quarantine did not hold against gossip about the third victim")
	}
	n.Receive(third.Addr, NodeJoined{Node: third})
	if !inKnown(n, third) {
		t.Fatal("direct receipt from the quarantined address did not lift the quarantine")
	}
}

// TestClosestLeavesTracksOwnerSuccession checks the invariant the failover
// layer relies on: the contact the ring would promote to owner of a key
// after the current owner dies is the first entry of the owner's
// ClosestLeaves for that key.
func TestClosestLeavesTracksOwnerSuccession(t *testing.T) {
	c := newStaticCluster(t, 300, Config{B: 4}, 42)
	for trial := 0; trial < 50; trial++ {
		key := ids.Random(c.rng)
		ownerIdx := c.owner(key)
		owner := c.nodes[ownerIdx]

		cl := owner.ClosestLeaves(key, 4)
		if len(cl) != 4 {
			t.Fatalf("trial %d: got %d closest leaves, want 4", trial, len(cl))
		}
		for i := 1; i < len(cl); i++ {
			if ids.Closer(key, cl[i].ID, cl[i-1].ID) {
				t.Fatalf("trial %d: ClosestLeaves not ordered by closeness", trial)
			}
		}

		// The globally second-closest node to the key is who the ring routes
		// to once the owner dies; it must lead the owner's replica set.
		second := -1
		for i := range c.nodes {
			if i == ownerIdx {
				continue
			}
			if second < 0 || ids.Closer(key, c.nodes[i].self.ID, c.nodes[second].self.ID) {
				second = i
			}
		}
		if cl[0].Addr != c.nodes[second].self.Addr {
			t.Fatalf("trial %d: ClosestLeaves[0]=%s, but the post-failure owner is %s",
				trial, cl[0].Addr, c.nodes[second].self.Addr)
		}
	}
}
