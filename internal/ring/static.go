package ring

import (
	"math/rand"
	"sort"

	"totoro/internal/ids"
)

// BuildStatic wires an entire population of nodes into a consistent overlay
// without exchanging any messages, in O(N·log N) time.
//
// The paper's scalability experiments emulate up to 100k edge nodes (§7.1);
// joining them one message at a time would dominate experiment runtime
// while measuring nothing the paper reports. BuildStatic constructs exactly
// the state the join protocol converges to: full leaf sets from ring order,
// and locality-aware routing tables populated by recursive digit
// partitioning. Dynamic joins and repairs remain fully functional on top of
// a statically built overlay.
func BuildStatic(nodes []*Node, rng *rand.Rand) {
	if len(nodes) == 0 {
		return
	}
	b := nodes[0].cfg.B
	order := make([]int, len(nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return nodes[order[i]].self.ID.Less(nodes[order[j]].self.ID)
	})

	// Leaf sets from ring order.
	n := len(order)
	for pos, idx := range order {
		node := nodes[idx]
		half := node.cfg.LeafSetSize / 2
		for k := 1; k <= half && k < n; k++ {
			succ := nodes[order[(pos+k)%n]]
			pred := nodes[order[(pos-k%n+n)%n]]
			node.insertLeaf(succ.self)
			node.insertLeaf(pred.self)
		}
		node.joined = true
	}

	// Routing tables by recursive partition on digits: every member of a
	// prefix group gets, for each sibling group, one contact sampled from
	// that sibling (preferring proximity when configured).
	numDigits := ids.NumDigits(b)
	var fill func(group []int, row int)
	fill = func(group []int, row int) {
		if len(group) <= 1 || row >= numDigits {
			return
		}
		buckets := make(map[int][]int)
		for _, idx := range group {
			d := nodes[idx].self.ID.Digit(row, b)
			buckets[d] = append(buckets[d], idx)
		}
		if len(buckets) == 1 {
			// All members share this digit too; descend without fan-out.
			for _, members := range buckets {
				fill(members, row+1)
			}
			return
		}
		digits := make([]int, 0, len(buckets))
		for d := range buckets {
			digits = append(digits, d)
		}
		sort.Ints(digits)
		for _, d := range digits {
			members := buckets[d]
			for _, m := range members {
				node := nodes[m]
				for _, d2 := range digits {
					if d2 == d {
						continue
					}
					cand := pickContact(nodes, buckets[d2], node, rng)
					node.rt[row][d2] = cand
				}
			}
			fill(members, row+1)
		}
	}
	fill(order, 0)
}

// pickContact samples up to four members of the bucket and returns the one
// closest to node by its proximity metric (or the first sample when no
// metric is configured). This mirrors Pastry's locality-aware table
// construction.
func pickContact(nodes []*Node, bucket []int, node *Node, rng *rand.Rand) Contact {
	k := 4
	if len(bucket) < k {
		k = len(bucket)
	}
	best := Contact{}
	bestD := 0.0
	for t := 0; t < k; t++ {
		c := nodes[bucket[rng.Intn(len(bucket))]].self
		if node.cfg.Proximity == nil {
			return c
		}
		d := node.cfg.Proximity(node.self.Addr, c.Addr)
		if best.IsZero() || d < bestD {
			best, bestD = c, d
		}
	}
	return best
}
