package ml

import (
	"math"
	"math/rand"
)

// Workspace owns every scratch buffer one training worker needs — batch
// activation matrices, backprop delta matrices, gradient and momentum
// buffers, the mini-batch index/view slices, and a scratch model. Reusing
// one Workspace across batches (and across clients on the same worker)
// makes the training hot path allocation-free in steady state; the
// per-example wrappers (Backward, TrainEpoch) remain as thin shims that
// build a throwaway Workspace.
//
// A Workspace is not safe for concurrent use; give each worker goroutine
// its own (see fl's training pool).
type Workspace struct {
	sizes []int
	// nCap is the largest batch size the matrices below are shaped for.
	nCap int
	// actm[l] is the (nCap × Sizes[l]) batch activation matrix of layer
	// l's input (actm[0] holds the batch inputs, actm[L] the logits).
	actm [][]float64
	// deltaM0/deltaM1 are ping-pong (nCap × maxWidth) delta matrices.
	deltaM0, deltaM1 []float64
	grads            *Grads
	perm             []int
	bx               [][]float64
	by               []int
	model            *MLP
	opt              SGD
}

// NewWorkspace returns an empty workspace; buffers are shaped lazily on
// first use and reshaped whenever the model architecture or batch size
// grows.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure shapes the architecture-dependent buffers.
//
//vet:noalloc amortized
func (ws *Workspace) ensure(sizes []int) {
	if intsEqual(ws.sizes, sizes) {
		return
	}
	ws.sizes = append(ws.sizes[:0], sizes...)
	ws.nCap = 0 // force matrix reshape
	ws.actm = nil
	ws.grads = newGrads(sizes)
	L := len(sizes) - 1
	ws.model = &MLP{Sizes: append([]int(nil), sizes...)}
	ws.model.W, ws.model.B = nil, nil
	for l := 0; l < L; l++ {
		ws.model.W = append(ws.model.W, make([]float64, sizes[l]*sizes[l+1]))
		ws.model.B = append(ws.model.B, make([]float64, sizes[l+1]))
	}
}

// ensureBatch shapes the batch matrices for n examples of the given
// architecture.
//
//vet:noalloc amortized
func (ws *Workspace) ensureBatch(sizes []int, n int) {
	ws.ensure(sizes)
	if n <= ws.nCap {
		return
	}
	ws.nCap = n
	L := len(sizes) - 1
	ws.actm = make([][]float64, L+1)
	maxW := 0
	for l := 0; l <= L; l++ {
		ws.actm[l] = make([]float64, n*sizes[l])
		if sizes[l] > maxW {
			maxW = sizes[l]
		}
	}
	ws.deltaM0 = make([]float64, n*maxW)
	ws.deltaM1 = make([]float64, n*maxW)
}

// Model returns the workspace's scratch model shaped like sizes. Its
// weights are whatever the last user left; callers install parameters with
// SetParams before training.
func (ws *Workspace) Model(sizes []int) *MLP {
	ws.ensure(sizes)
	return ws.model
}

// Grads returns the workspace's gradient buffer shaped like sizes,
// zeroed and ready to accumulate one batch.
func (ws *Workspace) Grads(sizes []int) *Grads {
	ws.ensure(sizes)
	ws.grads.Zero()
	return ws.grads
}

// Optimizer returns the workspace's reusable SGD configured for a new
// client: hyperparameters installed, momentum cleared, velocity buffer
// retained.
func (ws *Workspace) Optimizer(lr, momentum float64) *SGD {
	vel := ws.opt.vel
	ws.opt = SGD{LR: lr, Momentum: momentum, vel: vel}
	ws.opt.Reset()
	return &ws.opt
}

// permBuf returns the workspace's reusable permutation buffer of length n.
//
//vet:noalloc amortized
func (ws *Workspace) permBuf(n int) []int {
	if cap(ws.perm) < n {
		ws.perm = make([]int, n)
	}
	return ws.perm[:n]
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BackwardWS computes the batch-mean cross-entropy loss and gradients like
// Backward, accumulating into g, with every intermediate buffer drawn from
// ws — zero allocations in steady state. The batch is processed
// batch-major (activation and delta matrices), so each weight row is
// streamed once per batch instead of once per example.
//
//vet:noalloc
func (m *MLP) BackwardWS(X [][]float64, Y []int, g *Grads, ws *Workspace) float64 {
	n := len(Y)
	if n == 0 {
		return 0
	}
	ws.ensureBatch(m.Sizes, n)
	L := len(m.W)
	invN := 1 / float64(n)

	// Forward: copy the batch into the contiguous input matrix, then
	// propagate layer by layer.
	in0 := m.Sizes[0]
	A0 := ws.actm[0]
	for b := 0; b < n; b++ {
		copy(A0[b*in0:b*in0+in0], X[b][:in0])
	}
	for l := 0; l < L; l++ {
		m.batchForward(l, n, ws.actm[l], ws.actm[l+1], l+1 < L)
	}

	// Softmax, loss, and the output-layer delta matrix (p − onehot).
	outL := m.Sizes[L]
	ZL := ws.actm[L]
	D := ws.deltaM0
	loss := 0.0
	for b := 0; b < n; b++ {
		z := ZL[b*outL : b*outL+outL]
		d := D[b*outL : b*outL+outL]
		softmaxInto(d, z)
		p := d[Y[b]]
		if p < 1e-15 {
			p = 1e-15
		}
		loss += -math.Log(p)
		d[Y[b]] -= 1
	}

	// Backward: walk layers down, accumulating gradients and computing the
	// previous layer's delta matrix.
	cur, spare := ws.deltaM0, ws.deltaM1
	for l := L - 1; l >= 0; l-- {
		in, out := m.Sizes[l], m.Sizes[l+1]
		Al := ws.actm[l]

		// Bias gradients: invN-scaled column sums of the delta matrix.
		gb := g.B[l][:out]
		var cb [8]float64
		for t := range cb {
			cb[t] = invN
		}
		b := 0
		for ; b+8 <= n; b += 8 {
			axpyN8(&cb, cur[b*out:], out, gb)
		}
		for ; b < n; b++ {
			axpy(invN, cur[b*out:b*out+out], gb)
		}

		// Weight gradients: gw[i] += Σ_b (Al[b][i]·invN) · delta row b,
		// batch-blocked so each gradient row is loaded once per 8 examples.
		gw, w := g.W[l], m.W[l]
		for i := 0; i < in; i++ {
			gr := gw[i*out : i*out+out]
			b := 0
			for ; b+8 <= n; b += 8 {
				var c [8]float64
				for t := range c {
					c[t] = Al[(b+t)*in+i] * invN
				}
				axpyN8(&c, cur[b*out:], out, gr)
			}
			if b+4 <= n {
				var c [4]float64
				for t := range c {
					c[t] = Al[(b+t)*in+i] * invN
				}
				axpyN4(&c, cur[b*out:], out, gr)
				b += 4
			}
			for ; b < n; b++ {
				if ai := Al[b*in+i]; ai != 0 {
					axpy(ai*invN, cur[b*out:b*out+out], gr)
				}
			}
		}

		if l > 0 {
			// Previous-layer deltas: spare[b][i] = Σ_j w[i][j]·cur[b][j],
			// then gated by ReLU' (hidden activations are ReLU outputs, so
			// the gate is exactly Al > 0 — and 0 where Al is 0).
			for b := 0; b < n; b++ {
				drow := cur[b*out : b*out+out]
				prow := spare[b*in : b*in+in]
				arow := Al[b*in : b*in+in]
				i := 0
				for ; i+4 <= in; i += 4 {
					dotN4(drow, w[i*out:], out, prow[i:i+4])
				}
				for ; i < in; i++ {
					prow[i] = dot(w[i*out:i*out+out], drow)
				}
				for i := range prow {
					if arow[i] == 0 {
						prow[i] = 0
					}
				}
			}
			cur, spare = spare, cur
		}
	}
	return loss * invN
}

// batchForward computes layer l's outputs for all n examples: Z = A·W + b
// (with optional ReLU), input-blocked ×8 so each weight row is loaded once
// per batch and each output row is touched once per 8 input units.
//
//vet:noalloc
func (m *MLP) batchForward(l, n int, A, Z []float64, relu bool) {
	in, out := m.Sizes[l], m.Sizes[l+1]
	bias := m.B[l]
	for b := 0; b < n; b++ {
		copy(Z[b*out:b*out+out], bias)
	}
	w := m.W[l]
	i := 0
	for ; i+8 <= in; i += 8 {
		wRows := w[i*out:]
		for b := 0; b < n; b++ {
			c := (*[8]float64)(A[b*in+i : b*in+i+8])
			axpyN8(c, wRows, out, Z[b*out:b*out+out])
		}
	}
	if i+4 <= in {
		wRows := w[i*out:]
		for b := 0; b < n; b++ {
			c := (*[4]float64)(A[b*in+i : b*in+i+4])
			axpyN4(c, wRows, out, Z[b*out:b*out+out])
		}
		i += 4
	}
	for ; i < in; i++ {
		row := w[i*out : i*out+out]
		for b := 0; b < n; b++ {
			if ai := A[b*in+i]; ai != 0 {
				axpy(ai, row, Z[b*out:b*out+out])
			}
		}
	}
	if relu {
		zn := Z[:n*out]
		for j := range zn {
			if zn[j] < 0 {
				zn[j] = 0
			}
		}
	}
}

// TrainEpochWS is TrainEpoch with every scratch buffer drawn from ws and
// the SGD step applied in place to the model's layers — no flat-vector
// round trips, zero steady-state allocations per batch.
//
//vet:noalloc
func TrainEpochWS(m *MLP, d *Dataset, batch int, opt *SGD, mu float64, anchor []float64, rng *rand.Rand, ws *Workspace) float64 {
	n := len(d.Y)
	if n == 0 {
		return 0
	}
	if batch <= 0 || batch > n {
		batch = n
	}
	ws.ensure(m.Sizes)
	order := ws.permBuf(n)
	permInto(order, rng)
	totalLoss := 0.0
	batches := 0
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		bx, by := ws.bx[:0], ws.by[:0]
		for _, idx := range order[start:end] {
			bx = append(bx, d.X[idx])
			by = append(by, d.Y[idx])
		}
		ws.bx, ws.by = bx, by
		ws.grads.Zero()
		totalLoss += m.BackwardWS(bx, by, ws.grads, ws)
		opt.StepModel(m, ws.grads, mu, anchor)
		batches++
	}
	return totalLoss / float64(batches)
}

// permInto fills p with a uniform permutation of [0, len(p)), consuming
// the rng stream exactly like rand.Perm but without allocating.
//
//vet:noalloc
func permInto(p []int, rng *rand.Rand) {
	for i := range p {
		j := rng.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
}
