//go:build !amd64

package ml

// Non-amd64 builds always take the portable scalar kernels; the stubs
// below exist only to satisfy the dispatch sites and are unreachable.
const hasSIMD = false

//vet:noalloc
func axpyAVX(a float64, x, y *float64, n int) { panic("ml: SIMD unavailable") }

//vet:noalloc
func axpy4AVX(c, x *float64, stride int, y *float64, n int) { panic("ml: SIMD unavailable") }

//vet:noalloc
func axpy8AVX(c, x *float64, stride int, y *float64, n int) { panic("ml: SIMD unavailable") }

//vet:noalloc
func dot4AVX(d, w *float64, stride int, dst *float64, n int) {
	panic("ml: SIMD unavailable")
}
