package ml

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeParams serializes a flat parameter vector into the binary format
// Totoro ships over the overlay (§6: "a serialization mechanism to convert
// trained models into binary arrays for low-cost communication").
// Layout: uint32 count, then count little-endian float64s.
func EncodeParams(p []float64) []byte {
	out := make([]byte, 4+8*len(p))
	binary.LittleEndian.PutUint32(out, uint32(len(p)))
	for i, v := range p {
		binary.LittleEndian.PutUint64(out[4+8*i:], math.Float64bits(v))
	}
	return out
}

// DecodeParams parses the EncodeParams format.
func DecodeParams(b []byte) ([]float64, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("ml: short parameter buffer (%d bytes)", len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	if len(b) != 4+8*n {
		return nil, fmt.Errorf("ml: parameter buffer length %d does not match count %d", len(b), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[4+8*i:]))
	}
	return out, nil
}
