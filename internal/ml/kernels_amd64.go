//go:build amd64

package ml

// hasSIMD reports whether the AVX2+FMA kernels in kernels_amd64.s are
// usable: the CPU must advertise FMA, AVX and AVX2, and the OS must have
// enabled XMM/YMM state saving. A variable (not const) so the scalar
// fallback stays reachable for the cross-implementation tests.
var hasSIMD = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2 = 1 << 5
	return b7&avx2 != 0
}

func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

//go:noescape
//vet:noalloc
func axpyAVX(a float64, x, y *float64, n int)

//go:noescape
//vet:noalloc
func axpy4AVX(c, x *float64, stride int, y *float64, n int)

//go:noescape
//vet:noalloc
func axpy8AVX(c, x *float64, stride int, y *float64, n int)

//go:noescape
//vet:noalloc
func dot4AVX(d, w *float64, stride int, dst *float64, n int)
