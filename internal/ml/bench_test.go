package ml

import (
	"math/rand"
	"testing"
)

// benchModel mirrors the Table 3 FEMNIST task: a [64, 48, 62] MLP over
// batches of the paper's minibatch size (20).
func benchModel(b *testing.B) (*MLP, [][]float64, []int) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	m := NewMLP([]int{64, 48, 62}, rng)
	X := make([][]float64, 20)
	Y := make([]int, 20)
	for i := range X {
		X[i] = make([]float64, 64)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		Y[i] = rng.Intn(62)
	}
	return m, X, Y
}

// BenchmarkBackward measures one mini-batch gradient computation on the
// hot path: a reused per-worker Workspace, zero steady-state allocations.
func BenchmarkBackward(b *testing.B) {
	m, X, Y := benchModel(b)
	ws := NewWorkspace()
	g := ws.Grads(m.Sizes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Zero()
		m.BackwardWS(X, Y, g, ws)
	}
}

// BenchmarkBackwardLegacy measures the seed-style per-batch path: fresh
// gradient buffers and a flattened copy every call.
func BenchmarkBackwardLegacy(b *testing.B) {
	m, X, Y := benchModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGrads(m)
		m.Backward(X, Y, g)
		_ = g.Flat()
	}
}

// BenchmarkTrainEpoch measures one full epoch of mini-batch SGD over a
// 50-sample client shard (the Table 3 per-client workload) with a reused
// workspace and the in-place SGD step.
func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	d := FEMNISTLike(50, rng)
	m := NewMLP([]int{64, 48, 62}, rng)
	ws := NewWorkspace()
	opt := ws.Optimizer(0.05, 0.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TrainEpochWS(m, d, 20, opt, 0, nil, rng, ws)
	}
}
