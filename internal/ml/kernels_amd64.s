// AVX2+FMA kernels for the training hot path. Every routine keeps enough
// independent accumulator chains in flight to cover the 4-5 cycle FMA
// latency; the N-row variants hold all row coefficients broadcast in YMM
// registers so the inner loop is pure load+FMA.

#include "textflag.h"

// func cpuid(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpyAVX(a float64, x, y *float64, n int)
// y[j] += a*x[j] for j in [0, n)
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD a+0(FP), Y0
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DI
	MOVQ n+24(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-16, DX

axpy_loop16:
	CMPQ AX, DX
	JGE  axpy_tail4setup
	VMOVUPD (DI)(AX*8), Y1
	VMOVUPD 32(DI)(AX*8), Y2
	VMOVUPD 64(DI)(AX*8), Y3
	VMOVUPD 96(DI)(AX*8), Y4
	VFMADD231PD (SI)(AX*8), Y0, Y1
	VFMADD231PD 32(SI)(AX*8), Y0, Y2
	VFMADD231PD 64(SI)(AX*8), Y0, Y3
	VFMADD231PD 96(SI)(AX*8), Y0, Y4
	VMOVUPD Y1, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	VMOVUPD Y3, 64(DI)(AX*8)
	VMOVUPD Y4, 96(DI)(AX*8)
	ADDQ $16, AX
	JMP  axpy_loop16

axpy_tail4setup:
	MOVQ CX, DX
	ANDQ $-4, DX

axpy_tail4:
	CMPQ AX, DX
	JGE  axpy_tail1
	VMOVUPD (DI)(AX*8), Y1
	VFMADD231PD (SI)(AX*8), Y0, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ $4, AX
	JMP  axpy_tail4

axpy_tail1:
	CMPQ AX, CX
	JGE  axpy_done
	VMOVSD (DI)(AX*8), X1
	VFMADD231SD (SI)(AX*8), X0, X1
	VMOVSD X1, (DI)(AX*8)
	INCQ AX
	JMP  axpy_tail1

axpy_done:
	VZEROUPPER
	RET

// func axpy4AVX(c, x *float64, stride int, y *float64, n int)
// y[j] += sum_t c[t]*x[t*stride+j] for t in 0..3, j in [0, n)
TEXT ·axpy4AVX(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), BX
	VBROADCASTSD (BX), Y0
	VBROADCASTSD 8(BX), Y1
	VBROADCASTSD 16(BX), Y2
	VBROADCASTSD 24(BX), Y3
	MOVQ x+8(FP), SI
	MOVQ stride+16(FP), BX
	SHLQ $3, BX
	LEAQ (SI)(BX*1), R8
	LEAQ (R8)(BX*1), R9
	LEAQ (R9)(BX*1), R10
	MOVQ y+24(FP), DI
	MOVQ n+32(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

a4_loop8:
	CMPQ AX, DX
	JGE  a4_tail4setup

	// two y vectors, each with an acc chain and a mul chain
	VMOVUPD (DI)(AX*8), Y4
	VMOVUPD 32(DI)(AX*8), Y6
	VFMADD231PD (SI)(AX*8), Y0, Y4
	VMULPD (R8)(AX*8), Y1, Y5
	VFMADD231PD 32(SI)(AX*8), Y0, Y6
	VMULPD 32(R8)(AX*8), Y1, Y7
	VFMADD231PD (R9)(AX*8), Y2, Y4
	VFMADD231PD (R10)(AX*8), Y3, Y5
	VFMADD231PD 32(R9)(AX*8), Y2, Y6
	VFMADD231PD 32(R10)(AX*8), Y3, Y7
	VADDPD Y5, Y4, Y4
	VADDPD Y7, Y6, Y6
	VMOVUPD Y4, (DI)(AX*8)
	VMOVUPD Y6, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  a4_loop8

a4_tail4setup:
	MOVQ CX, DX
	ANDQ $-4, DX

a4_tail4:
	CMPQ AX, DX
	JGE  a4_tail1
	VMOVUPD (DI)(AX*8), Y4
	VFMADD231PD (SI)(AX*8), Y0, Y4
	VMULPD (R8)(AX*8), Y1, Y5
	VFMADD231PD (R9)(AX*8), Y2, Y4
	VFMADD231PD (R10)(AX*8), Y3, Y5
	VADDPD Y5, Y4, Y4
	VMOVUPD Y4, (DI)(AX*8)
	ADDQ $4, AX
	JMP  a4_tail4

a4_tail1:
	CMPQ AX, CX
	JGE  a4_done
	VMOVSD (DI)(AX*8), X4
	VFMADD231SD (SI)(AX*8), X0, X4
	VFMADD231SD (R8)(AX*8), X1, X4
	VFMADD231SD (R9)(AX*8), X2, X4
	VFMADD231SD (R10)(AX*8), X3, X4
	VMOVSD X4, (DI)(AX*8)
	INCQ AX
	JMP  a4_tail1

a4_done:
	VZEROUPPER
	RET

// func axpy8AVX(c, x *float64, stride int, y *float64, n int)
// y[j] += sum_t c[t]*x[t*stride+j] for t in 0..7, j in [0, n)
TEXT ·axpy8AVX(SB), NOSPLIT, $0-40
	MOVQ c+0(FP), BX
	VBROADCASTSD (BX), Y0
	VBROADCASTSD 8(BX), Y1
	VBROADCASTSD 16(BX), Y2
	VBROADCASTSD 24(BX), Y3
	VBROADCASTSD 32(BX), Y4
	VBROADCASTSD 40(BX), Y5
	VBROADCASTSD 48(BX), Y6
	VBROADCASTSD 56(BX), Y7
	MOVQ x+8(FP), SI
	MOVQ stride+16(FP), BX
	SHLQ $3, BX
	LEAQ (SI)(BX*1), R8
	LEAQ (R8)(BX*1), R9
	LEAQ (R9)(BX*1), R10
	LEAQ (R10)(BX*1), R11
	LEAQ (R11)(BX*1), R12
	LEAQ (R12)(BX*1), R13
	LEAQ (R13)(BX*1), R14
	MOVQ y+24(FP), DI
	MOVQ n+32(FP), CX
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

a8_loop8:
	CMPQ AX, DX
	JGE  a8_tail4setup

	// two y vectors; per vector an FMA chain (Y8/Y10) and a second
	// chain started with a multiply (Y9/Y11) so latency overlaps
	VMOVUPD (DI)(AX*8), Y8
	VMOVUPD 32(DI)(AX*8), Y10
	VFMADD231PD (SI)(AX*8), Y0, Y8
	VMULPD (R8)(AX*8), Y1, Y9
	VFMADD231PD 32(SI)(AX*8), Y0, Y10
	VMULPD 32(R8)(AX*8), Y1, Y11
	VFMADD231PD (R9)(AX*8), Y2, Y8
	VFMADD231PD (R10)(AX*8), Y3, Y9
	VFMADD231PD 32(R9)(AX*8), Y2, Y10
	VFMADD231PD 32(R10)(AX*8), Y3, Y11
	VFMADD231PD (R11)(AX*8), Y4, Y8
	VFMADD231PD (R12)(AX*8), Y5, Y9
	VFMADD231PD 32(R11)(AX*8), Y4, Y10
	VFMADD231PD 32(R12)(AX*8), Y5, Y11
	VFMADD231PD (R13)(AX*8), Y6, Y8
	VFMADD231PD (R14)(AX*8), Y7, Y9
	VFMADD231PD 32(R13)(AX*8), Y6, Y10
	VFMADD231PD 32(R14)(AX*8), Y7, Y11
	VADDPD Y9, Y8, Y8
	VADDPD Y11, Y10, Y10
	VMOVUPD Y8, (DI)(AX*8)
	VMOVUPD Y10, 32(DI)(AX*8)
	ADDQ $8, AX
	JMP  a8_loop8

a8_tail4setup:
	MOVQ CX, DX
	ANDQ $-4, DX

a8_tail4:
	CMPQ AX, DX
	JGE  a8_tail1
	VMOVUPD (DI)(AX*8), Y8
	VFMADD231PD (SI)(AX*8), Y0, Y8
	VMULPD (R8)(AX*8), Y1, Y9
	VFMADD231PD (R9)(AX*8), Y2, Y8
	VFMADD231PD (R10)(AX*8), Y3, Y9
	VFMADD231PD (R11)(AX*8), Y4, Y8
	VFMADD231PD (R12)(AX*8), Y5, Y9
	VFMADD231PD (R13)(AX*8), Y6, Y8
	VFMADD231PD (R14)(AX*8), Y7, Y9
	VADDPD Y9, Y8, Y8
	VMOVUPD Y8, (DI)(AX*8)
	ADDQ $4, AX
	JMP  a8_tail4

a8_tail1:
	CMPQ AX, CX
	JGE  a8_done
	VMOVSD (DI)(AX*8), X8
	VFMADD231SD (SI)(AX*8), X0, X8
	VFMADD231SD (R8)(AX*8), X1, X8
	VFMADD231SD (R9)(AX*8), X2, X8
	VFMADD231SD (R10)(AX*8), X3, X8
	VFMADD231SD (R11)(AX*8), X4, X8
	VFMADD231SD (R12)(AX*8), X5, X8
	VFMADD231SD (R13)(AX*8), X6, X8
	VFMADD231SD (R14)(AX*8), X7, X8
	VMOVSD X8, (DI)(AX*8)
	INCQ AX
	JMP  a8_tail1

a8_done:
	VZEROUPPER
	RET

// func dot4AVX(d, w *float64, stride int, dst *float64, n int)
// dst[t] = sum_j w[t*stride+j]*d[j] for t in 0..3
TEXT ·dot4AVX(SB), NOSPLIT, $0-40
	MOVQ d+0(FP), SI
	MOVQ w+8(FP), DI
	MOVQ stride+16(FP), BX
	SHLQ $3, BX
	LEAQ (DI)(BX*1), R8
	LEAQ (R8)(BX*1), R9
	LEAQ (R9)(BX*1), R10
	MOVQ dst+24(FP), R11
	MOVQ n+32(FP), CX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7
	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-8, DX

d4_loop8:
	CMPQ AX, DX
	JGE  d4_tail4setup
	VMOVUPD (SI)(AX*8), Y8
	VMOVUPD 32(SI)(AX*8), Y9
	VFMADD231PD (DI)(AX*8), Y8, Y0
	VFMADD231PD 32(DI)(AX*8), Y9, Y4
	VFMADD231PD (R8)(AX*8), Y8, Y1
	VFMADD231PD 32(R8)(AX*8), Y9, Y5
	VFMADD231PD (R9)(AX*8), Y8, Y2
	VFMADD231PD 32(R9)(AX*8), Y9, Y6
	VFMADD231PD (R10)(AX*8), Y8, Y3
	VFMADD231PD 32(R10)(AX*8), Y9, Y7
	ADDQ $8, AX
	JMP  d4_loop8

d4_tail4setup:
	MOVQ CX, DX
	ANDQ $-4, DX

d4_tail4:
	CMPQ AX, DX
	JGE  d4_reduce
	VMOVUPD (SI)(AX*8), Y8
	VFMADD231PD (DI)(AX*8), Y8, Y0
	VFMADD231PD (R8)(AX*8), Y8, Y1
	VFMADD231PD (R9)(AX*8), Y8, Y2
	VFMADD231PD (R10)(AX*8), Y8, Y3
	ADDQ $4, AX
	JMP  d4_tail4

d4_reduce:
	// fold the paired chains, then reduce each YMM horizontally
	VADDPD Y4, Y0, Y0
	VADDPD Y5, Y1, Y1
	VADDPD Y6, Y2, Y2
	VADDPD Y7, Y3, Y3
	VEXTRACTF128 $1, Y0, X8
	VADDPD X8, X0, X0
	VHADDPD X0, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPD X8, X1, X1
	VHADDPD X1, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPD X8, X2, X2
	VHADDPD X2, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPD X8, X3, X3
	VHADDPD X3, X3, X3

d4_tail1:
	CMPQ AX, CX
	JGE  d4_done
	VMOVSD (SI)(AX*8), X8
	VFMADD231SD (DI)(AX*8), X8, X0
	VFMADD231SD (R8)(AX*8), X8, X1
	VFMADD231SD (R9)(AX*8), X8, X2
	VFMADD231SD (R10)(AX*8), X8, X3
	INCQ AX
	JMP  d4_tail1

d4_done:
	VMOVSD X0, (R11)
	VMOVSD X1, 8(R11)
	VMOVSD X2, 16(R11)
	VMOVSD X3, 24(R11)
	VZEROUPPER
	RET
