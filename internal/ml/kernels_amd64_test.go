//go:build amd64

package ml

import (
	"math/rand"
	"testing"
)

// TestSIMDKernelsMatchScalar runs the full batched backprop with the AVX2
// kernels and again with the portable scalar kernels and checks the
// results agree to floating-point reassociation tolerance. This is the
// direct correctness check for kernels_amd64.s.
func TestSIMDKernelsMatchScalar(t *testing.T) {
	if !hasSIMD {
		t.Skip("CPU does not support AVX2+FMA")
	}
	defer func() { hasSIMD = true }()
	rng := rand.New(rand.NewSource(23))
	cases := []struct {
		sizes []int
		n     int
	}{
		{[]int{64, 48, 62}, 20},
		{[]int{33, 21, 11}, 7}, // odd widths exercise every kernel tail
		{[]int{5, 3}, 2},       // below the vector width
	}
	for _, tc := range cases {
		m, X, Y := randomBatch(tc.sizes, tc.n, rng)

		hasSIMD = true
		gSIMD := NewGrads(m)
		lossSIMD := m.BackwardWS(X, Y, gSIMD, NewWorkspace())

		hasSIMD = false
		gScalar := NewGrads(m)
		lossScalar := m.BackwardWS(X, Y, gScalar, NewWorkspace())
		hasSIMD = true

		if d := relDiff(lossSIMD, lossScalar); d > 1e-12 {
			t.Errorf("sizes=%v n=%d: loss simd=%v scalar=%v (rel %g)", tc.sizes, tc.n, lossSIMD, lossScalar, d)
		}
		for l := range gSIMD.W {
			for i := range gSIMD.W[l] {
				if d := relDiff(gSIMD.W[l][i], gScalar.W[l][i]); d > 1e-12 {
					t.Fatalf("sizes=%v n=%d: gW[%d][%d] simd=%v scalar=%v (rel %g)", tc.sizes, tc.n, l, i, gSIMD.W[l][i], gScalar.W[l][i], d)
				}
			}
			for i := range gSIMD.B[l] {
				if d := relDiff(gSIMD.B[l][i], gScalar.B[l][i]); d > 1e-12 {
					t.Fatalf("sizes=%v n=%d: gB[%d][%d] simd=%v scalar=%v (rel %g)", tc.sizes, tc.n, l, i, gSIMD.B[l][i], gScalar.B[l][i], d)
				}
			}
		}
	}
}

// TestSIMDKernelUnits checks each assembly kernel against its scalar
// counterpart on ragged lengths that hit the 16-, 8-, 4-wide and scalar
// tail paths.
func TestSIMDKernelUnits(t *testing.T) {
	if !hasSIMD {
		t.Skip("CPU does not support AVX2+FMA")
	}
	defer func() { hasSIMD = true }()
	rng := rand.New(rand.NewSource(29))
	fill := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	for _, n := range []int{1, 3, 4, 5, 7, 8, 11, 16, 17, 37, 62, 64} {
		stride := n + rng.Intn(3)
		x := fill(8 * stride)
		y0 := fill(n)
		y1 := append([]float64(nil), y0...)
		var c8 [8]float64
		copy(c8[:], fill(8))
		c4 := (*[4]float64)(c8[:4])

		hasSIMD = true
		axpy(c8[0], x[:n], y0)
		hasSIMD = false
		axpy(c8[0], x[:n], y1)
		hasSIMD = true
		for j := range y0 {
			if d := relDiff(y0[j], y1[j]); d > 1e-13 {
				t.Fatalf("axpy n=%d j=%d: simd=%v scalar=%v", n, j, y0[j], y1[j])
			}
		}

		y0 = fill(n)
		y1 = append([]float64(nil), y0...)
		hasSIMD = true
		axpyN4(c4, x, stride, y0)
		hasSIMD = false
		axpyN4(c4, x, stride, y1)
		hasSIMD = true
		for j := range y0 {
			if d := relDiff(y0[j], y1[j]); d > 1e-13 {
				t.Fatalf("axpyN4 n=%d j=%d: simd=%v scalar=%v", n, j, y0[j], y1[j])
			}
		}

		y0 = fill(n)
		y1 = append([]float64(nil), y0...)
		hasSIMD = true
		axpyN8(&c8, x, stride, y0)
		hasSIMD = false
		axpyN8(&c8, x, stride, y1)
		hasSIMD = true
		for j := range y0 {
			if d := relDiff(y0[j], y1[j]); d > 1e-13 {
				t.Fatalf("axpyN8 n=%d j=%d: simd=%v scalar=%v", n, j, y0[j], y1[j])
			}
		}

		d := fill(n)
		dst0 := make([]float64, 4)
		dst1 := make([]float64, 4)
		hasSIMD = true
		dotN4(d, x, stride, dst0)
		hasSIMD = false
		dotN4(d, x, stride, dst1)
		hasSIMD = true
		for j := range dst0 {
			if dd := relDiff(dst0[j], dst1[j]); dd > 1e-13 {
				t.Fatalf("dotN4 n=%d t=%d: simd=%v scalar=%v", n, j, dst0[j], dst1[j])
			}
		}
	}
}
