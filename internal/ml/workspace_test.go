package ml

import (
	"math"
	"math/rand"
	"testing"
)

// referenceBackward is the original per-example backprop, kept verbatim as
// the oracle for the batched workspace implementation.
func referenceBackward(m *MLP, X [][]float64, Y []int, g *Grads) float64 {
	n := len(Y)
	if n == 0 {
		return 0
	}
	L := len(m.W)
	loss := 0.0
	acts := make([][]float64, L+1)
	for idx := 0; idx < n; idx++ {
		acts[0] = X[idx]
		for l := 0; l < L; l++ {
			acts[l+1] = m.layerForward(l, acts[l], l+1 < L)
		}
		probs := Softmax(acts[L])
		p := probs[Y[idx]]
		if p < 1e-15 {
			p = 1e-15
		}
		loss += -math.Log(p)
		delta := make([]float64, len(probs))
		copy(delta, probs)
		delta[Y[idx]] -= 1
		for l := L - 1; l >= 0; l-- {
			in, out := m.Sizes[l], m.Sizes[l+1]
			a := acts[l]
			gw, gb := g.W[l], g.B[l]
			for j := 0; j < out; j++ {
				gb[j] += delta[j] / float64(n)
			}
			for i := 0; i < in; i++ {
				if a[i] == 0 {
					continue
				}
				row := gw[i*out : (i+1)*out]
				scale := a[i] / float64(n)
				for j := 0; j < out; j++ {
					row[j] += scale * delta[j]
				}
			}
			if l > 0 {
				w := m.W[l]
				prev := make([]float64, in)
				for i := 0; i < in; i++ {
					if a[i] <= 0 {
						continue
					}
					row := w[i*out : (i+1)*out]
					s := 0.0
					for j := 0; j < out; j++ {
						s += row[j] * delta[j]
					}
					prev[i] = s
				}
				delta = prev
			}
		}
	}
	return loss / float64(n)
}

func randomBatch(sizes []int, n int, rng *rand.Rand) (*MLP, [][]float64, []int) {
	m := NewMLP(sizes, rng)
	X := make([][]float64, n)
	Y := make([]int, n)
	for i := range X {
		X[i] = make([]float64, sizes[0])
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		Y[i] = rng.Intn(sizes[len(sizes)-1])
	}
	return m, X, Y
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d / scale
}

// TestBackwardWSMatchesReference proves the batched, workspace-reusing
// backprop computes the same gradients as the transparent per-example
// implementation across architectures and batch sizes (including odd
// remainders that exercise the scalar kernel tails).
func TestBackwardWSMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		sizes []int
		n     int
	}{
		{[]int{64, 48, 62}, 20},
		{[]int{64, 48, 62}, 1},
		{[]int{40, 24, 35}, 13},
		{[]int{9, 7, 5, 3}, 6},
		{[]int{5, 4}, 3},
	}
	ws := NewWorkspace()
	for _, tc := range cases {
		m, X, Y := randomBatch(tc.sizes, tc.n, rng)
		ref := NewGrads(m)
		refLoss := referenceBackward(m, X, Y, ref)
		got := ws.Grads(m.Sizes)
		gotLoss := m.BackwardWS(X, Y, got, ws)
		if d := relDiff(refLoss, gotLoss); d > 1e-12 {
			t.Errorf("sizes=%v n=%d: loss mismatch ref=%v got=%v (rel %g)", tc.sizes, tc.n, refLoss, gotLoss, d)
		}
		for l := range ref.W {
			for i := range ref.W[l] {
				if d := relDiff(ref.W[l][i], got.W[l][i]); d > 1e-12 {
					t.Fatalf("sizes=%v n=%d: gW[%d][%d] ref=%v got=%v (rel %g)", tc.sizes, tc.n, l, i, ref.W[l][i], got.W[l][i], d)
				}
			}
			for i := range ref.B[l] {
				if d := relDiff(ref.B[l][i], got.B[l][i]); d > 1e-12 {
					t.Fatalf("sizes=%v n=%d: gB[%d][%d] ref=%v got=%v (rel %g)", tc.sizes, tc.n, l, i, ref.B[l][i], got.B[l][i], d)
				}
			}
		}
	}
}

// TestBackwardWorkspaceReuseDeterministic proves a reused (dirty)
// workspace yields bit-identical results to a fresh one.
func TestBackwardWorkspaceReuseDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ws := NewWorkspace()
	// Dirty the workspace with a different architecture and batch size.
	m0, X0, Y0 := randomBatch([]int{30, 17, 9}, 27, rng)
	m0.BackwardWS(X0, Y0, ws.Grads(m0.Sizes), ws)

	m, X, Y := randomBatch([]int{64, 48, 62}, 20, rng)
	reused := ws.Grads(m.Sizes)
	lossReused := m.BackwardWS(X, Y, reused, ws)
	fresh := NewWorkspace()
	g := fresh.Grads(m.Sizes)
	lossFresh := m.BackwardWS(X, Y, g, fresh)
	if lossReused != lossFresh {
		t.Errorf("loss: reused=%v fresh=%v", lossReused, lossFresh)
	}
	for l := range g.W {
		for i := range g.W[l] {
			if g.W[l][i] != reused.W[l][i] {
				t.Fatalf("gW[%d][%d]: reused=%v fresh=%v", l, i, reused.W[l][i], g.W[l][i])
			}
		}
	}
}

// TestStepModelMatchesFlatStep proves the in-place SGD step is
// bit-identical to the legacy Params/Flat/Step/SetParams round trip,
// including momentum, weight decay, and the FedProx proximal term.
func TestStepModelMatchesFlatStep(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, mu := range []float64{0, 0.01} {
		m, X, Y := randomBatch([]int{12, 10, 7}, 9, rng)
		legacy := m.Clone()
		anchor := m.Params()
		// Perturb so the proximal pull is non-zero after the first step.
		for i := range anchor {
			anchor[i] += 0.01 * rng.NormFloat64()
		}
		inPlace := &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
		flat := &SGD{LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4}
		ws := NewWorkspace()
		for step := 0; step < 3; step++ {
			g := ws.Grads(m.Sizes)
			m.BackwardWS(X, Y, g, ws)
			inPlace.StepModel(m, g, mu, anchor)

			lg := NewGrads(legacy)
			legacy.BackwardWS(X, Y, lg, NewWorkspace())
			flatG := lg.Flat()
			params := legacy.Params()
			if mu > 0 {
				for i := range flatG {
					flatG[i] += mu * (params[i] - anchor[i])
				}
			}
			flat.Step(params, flatG)
			legacy.SetParams(params)
		}
		got, want := m.Params(), legacy.Params()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mu=%v: param %d in-place=%v legacy=%v", mu, i, got[i], want[i])
			}
		}
	}
}

// TestPermIntoMatchesRandPerm proves permInto consumes the rng stream
// exactly like rand.Perm, so reusing the buffer cannot shift downstream
// random draws.
func TestPermIntoMatchesRandPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17, 50} {
		a := rand.New(rand.NewSource(99))
		b := rand.New(rand.NewSource(99))
		want := a.Perm(n)
		got := make([]int, n)
		permInto(got, b)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: perm[%d]=%d want %d", n, i, got[i], want[i])
			}
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: rng streams diverged after permutation", n)
		}
	}
}

// TestTrainEpochWSMatchesLegacySemantics runs the wrapper and the
// workspace form side by side from identical starting points and checks
// they produce bit-identical models.
func TestTrainEpochWSMatchesLegacySemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	d := FEMNISTLike(50, rng)
	m1 := NewMLP([]int{64, 48, 62}, rng)
	m2 := m1.Clone()
	r1 := rand.New(rand.NewSource(5))
	r2 := rand.New(rand.NewSource(5))
	ws := NewWorkspace()
	opt1 := ws.Optimizer(0.05, 0.5)
	opt2 := &SGD{LR: 0.05, Momentum: 0.5}
	for e := 0; e < 2; e++ {
		TrainEpochWS(m1, d, 20, opt1, 0, nil, r1, ws)
		TrainEpoch(m2, d, 20, opt2, 0, nil, r2)
	}
	p1, p2 := m1.Params(), m2.Params()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("param %d: workspace=%v wrapper=%v", i, p1[i], p2[i])
		}
	}
}
