// Package ml is a small, dependency-free neural-network training stack.
//
// It stands in for the paper's Keras layer (§6): multi-layer perceptrons
// with ReLU activations and a softmax cross-entropy head, trained by
// mini-batch SGD with momentum and weight decay. Totoro's evaluation
// measures *system* effects — time-to-accuracy under concurrent
// applications, serialization cost, aggregation topology — so any model
// whose loss falls with aggregated training reproduces those effects; the
// paper's ResNet-34 and ShuffleNet V2 are replaced by MLPs of matching
// role (see DESIGN.md §1).
//
// Everything is deterministic given a *rand.Rand, which the experiment
// harness relies on.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a multi-layer perceptron with ReLU hidden layers and a softmax
// cross-entropy output.
type MLP struct {
	// Sizes is [inputDim, hidden..., numClasses].
	Sizes []int
	// W[l] is the (Sizes[l] × Sizes[l+1]) weight matrix, row-major.
	W [][]float64
	// B[l] is the bias vector of layer l.
	B [][]float64
}

// NewMLP creates an MLP with Xavier/Glorot-uniform initialization.
func NewMLP(sizes []int, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("ml: MLP needs at least input and output sizes")
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		limit := math.Sqrt(6.0 / float64(in+out))
		w := make([]float64, in*out)
		for i := range w {
			w[i] = (rng.Float64()*2 - 1) * limit
		}
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float64, out))
	}
	return m
}

// Clone deep-copies the model.
func (m *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), m.Sizes...)}
	for l := range m.W {
		c.W = append(c.W, append([]float64(nil), m.W[l]...))
		c.B = append(c.B, append([]float64(nil), m.B[l]...))
	}
	return c
}

// NumParams returns the total number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l]) + len(m.B[l])
	}
	return n
}

// Params flattens all parameters into one vector (copy).
func (m *MLP) Params() []float64 {
	out := make([]float64, 0, m.NumParams())
	for l := range m.W {
		out = append(out, m.W[l]...)
		out = append(out, m.B[l]...)
	}
	return out
}

// SetParams installs a flat parameter vector produced by Params.
//
//vet:noalloc
func (m *MLP) SetParams(p []float64) {
	if len(p) != m.NumParams() {
		panic(fmt.Sprintf("ml: SetParams length %d want %d", len(p), m.NumParams()))
	}
	off := 0
	for l := range m.W {
		off += copy(m.W[l], p[off:off+len(m.W[l])])
		off += copy(m.B[l], p[off:off+len(m.B[l])])
	}
}

// Forward computes the class logits for one input.
func (m *MLP) Forward(x []float64) []float64 {
	a := x
	for l := range m.W {
		a = m.layerForward(l, a, l+1 < len(m.W))
	}
	return a
}

func (m *MLP) layerForward(l int, a []float64, relu bool) []float64 {
	z := make([]float64, m.Sizes[l+1])
	m.layerForwardInto(l, a, z, relu)
	return z
}

// layerForwardInto computes layer l's output into z (len Sizes[l+1]).
//
//vet:noalloc
func (m *MLP) layerForwardInto(l int, a, z []float64, relu bool) {
	in, out := m.Sizes[l], m.Sizes[l+1]
	z = z[:out]
	copy(z, m.B[l])
	w := m.W[l]
	a = a[:in]
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		axpy(ai, w[i*out:i*out+out], z)
	}
	if relu {
		for j := range z {
			if z[j] < 0 {
				z[j] = 0
			}
		}
	}
}

// Predict returns the argmax class for one input.
func (m *MLP) Predict(x []float64) int {
	logits := m.Forward(x)
	best := 0
	for j := 1; j < len(logits); j++ {
		if logits[j] > logits[best] {
			best = j
		}
	}
	return best
}

// Accuracy evaluates top-1 accuracy over a dataset.
func (m *MLP) Accuracy(d *Dataset) float64 {
	if len(d.Y) == 0 {
		return 0
	}
	hit := 0
	for i := range d.Y {
		if m.Predict(d.X[i]) == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(d.Y))
}

// Softmax converts logits into probabilities (numerically stable).
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	softmaxInto(out, logits)
	return out
}

// softmaxInto is Softmax into a caller-provided buffer (dst may alias
// logits' storage only if identical).
//
//vet:noalloc
func softmaxInto(dst, logits []float64) {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		dst[i] = math.Exp(v - maxv)
		sum += dst[i]
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// Grads holds flat per-layer gradients matching the MLP layout.
type Grads struct {
	W [][]float64
	B [][]float64
}

// NewGrads allocates zeroed gradients for m.
func NewGrads(m *MLP) *Grads { return newGrads(m.Sizes) }

// newGrads allocates zeroed gradients for an architecture.
func newGrads(sizes []int) *Grads {
	g := &Grads{}
	for l := 0; l+1 < len(sizes); l++ {
		g.W = append(g.W, make([]float64, sizes[l]*sizes[l+1]))
		g.B = append(g.B, make([]float64, sizes[l+1]))
	}
	return g
}

// NumParams returns the total number of gradient entries.
func (g *Grads) NumParams() int {
	n := 0
	for l := range g.W {
		n += len(g.W[l]) + len(g.B[l])
	}
	return n
}

// Zero clears the gradients in place for the next batch.
//
//vet:noalloc
func (g *Grads) Zero() {
	for l := range g.W {
		clear(g.W[l])
		clear(g.B[l])
	}
}

// Flat flattens the gradients in Params order.
func (g *Grads) Flat() []float64 {
	out := make([]float64, 0, g.NumParams())
	for l := range g.W {
		out = append(out, g.W[l]...)
		out = append(out, g.B[l]...)
	}
	return out
}

// Backward computes the average cross-entropy loss and its gradients over
// a mini-batch (rows of X with labels Y), accumulating into g. It is a
// thin wrapper over BackwardWS with a throwaway workspace; hot paths hold
// a per-worker Workspace instead.
func (m *MLP) Backward(X [][]float64, Y []int, g *Grads) float64 {
	return m.BackwardWS(X, Y, g, NewWorkspace())
}

// DeltaInto writes this model's parameters minus base into dst, both in
// Params order (the client-update delta, computed without flattening).
//
//vet:noalloc
func (m *MLP) DeltaInto(base, dst []float64) {
	if len(base) != m.NumParams() || len(dst) != len(base) {
		panic(fmt.Sprintf("ml: DeltaInto length %d/%d want %d", len(base), len(dst), m.NumParams()))
	}
	off := 0
	for l := range m.W {
		for _, v := range m.W[l] {
			dst[off] = v - base[off]
			off++
		}
		for _, v := range m.B[l] {
			dst[off] = v - base[off]
			off++
		}
	}
}

// Loss computes the average cross-entropy loss without gradients.
func (m *MLP) Loss(X [][]float64, Y []int) float64 {
	if len(Y) == 0 {
		return 0
	}
	loss := 0.0
	for i := range Y {
		probs := Softmax(m.Forward(X[i]))
		p := probs[Y[i]]
		if p < 1e-15 {
			p = 1e-15
		}
		loss += -math.Log(p)
	}
	return loss / float64(len(Y))
}
