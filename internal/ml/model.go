// Package ml is a small, dependency-free neural-network training stack.
//
// It stands in for the paper's Keras layer (§6): multi-layer perceptrons
// with ReLU activations and a softmax cross-entropy head, trained by
// mini-batch SGD with momentum and weight decay. Totoro's evaluation
// measures *system* effects — time-to-accuracy under concurrent
// applications, serialization cost, aggregation topology — so any model
// whose loss falls with aggregated training reproduces those effects; the
// paper's ResNet-34 and ShuffleNet V2 are replaced by MLPs of matching
// role (see DESIGN.md §1).
//
// Everything is deterministic given a *rand.Rand, which the experiment
// harness relies on.
package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a multi-layer perceptron with ReLU hidden layers and a softmax
// cross-entropy output.
type MLP struct {
	// Sizes is [inputDim, hidden..., numClasses].
	Sizes []int
	// W[l] is the (Sizes[l] × Sizes[l+1]) weight matrix, row-major.
	W [][]float64
	// B[l] is the bias vector of layer l.
	B [][]float64
}

// NewMLP creates an MLP with Xavier/Glorot-uniform initialization.
func NewMLP(sizes []int, rng *rand.Rand) *MLP {
	if len(sizes) < 2 {
		panic("ml: MLP needs at least input and output sizes")
	}
	m := &MLP{Sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		limit := math.Sqrt(6.0 / float64(in+out))
		w := make([]float64, in*out)
		for i := range w {
			w[i] = (rng.Float64()*2 - 1) * limit
		}
		m.W = append(m.W, w)
		m.B = append(m.B, make([]float64, out))
	}
	return m
}

// Clone deep-copies the model.
func (m *MLP) Clone() *MLP {
	c := &MLP{Sizes: append([]int(nil), m.Sizes...)}
	for l := range m.W {
		c.W = append(c.W, append([]float64(nil), m.W[l]...))
		c.B = append(c.B, append([]float64(nil), m.B[l]...))
	}
	return c
}

// NumParams returns the total number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for l := range m.W {
		n += len(m.W[l]) + len(m.B[l])
	}
	return n
}

// Params flattens all parameters into one vector (copy).
func (m *MLP) Params() []float64 {
	out := make([]float64, 0, m.NumParams())
	for l := range m.W {
		out = append(out, m.W[l]...)
		out = append(out, m.B[l]...)
	}
	return out
}

// SetParams installs a flat parameter vector produced by Params.
func (m *MLP) SetParams(p []float64) {
	if len(p) != m.NumParams() {
		panic(fmt.Sprintf("ml: SetParams length %d want %d", len(p), m.NumParams()))
	}
	off := 0
	for l := range m.W {
		off += copy(m.W[l], p[off:off+len(m.W[l])])
		off += copy(m.B[l], p[off:off+len(m.B[l])])
	}
}

// Forward computes the class logits for one input.
func (m *MLP) Forward(x []float64) []float64 {
	a := x
	for l := range m.W {
		a = m.layerForward(l, a, l+1 < len(m.W))
	}
	return a
}

func (m *MLP) layerForward(l int, a []float64, relu bool) []float64 {
	in, out := m.Sizes[l], m.Sizes[l+1]
	z := make([]float64, out)
	copy(z, m.B[l])
	w := m.W[l]
	for i := 0; i < in; i++ {
		ai := a[i]
		if ai == 0 {
			continue
		}
		row := w[i*out : (i+1)*out]
		for j, wij := range row {
			z[j] += ai * wij
		}
	}
	if relu {
		for j := range z {
			if z[j] < 0 {
				z[j] = 0
			}
		}
	}
	return z
}

// Predict returns the argmax class for one input.
func (m *MLP) Predict(x []float64) int {
	logits := m.Forward(x)
	best := 0
	for j := 1; j < len(logits); j++ {
		if logits[j] > logits[best] {
			best = j
		}
	}
	return best
}

// Accuracy evaluates top-1 accuracy over a dataset.
func (m *MLP) Accuracy(d *Dataset) float64 {
	if len(d.Y) == 0 {
		return 0
	}
	hit := 0
	for i := range d.Y {
		if m.Predict(d.X[i]) == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(d.Y))
}

// Softmax converts logits into probabilities (numerically stable).
func Softmax(logits []float64) []float64 {
	maxv := logits[0]
	for _, v := range logits[1:] {
		if v > maxv {
			maxv = v
		}
	}
	out := make([]float64, len(logits))
	sum := 0.0
	for i, v := range logits {
		out[i] = math.Exp(v - maxv)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Grads holds flat per-layer gradients matching the MLP layout.
type Grads struct {
	W [][]float64
	B [][]float64
}

// NewGrads allocates zeroed gradients for m.
func NewGrads(m *MLP) *Grads {
	g := &Grads{}
	for l := range m.W {
		g.W = append(g.W, make([]float64, len(m.W[l])))
		g.B = append(g.B, make([]float64, len(m.B[l])))
	}
	return g
}

// Flat flattens the gradients in Params order.
func (g *Grads) Flat() []float64 {
	var out []float64
	for l := range g.W {
		out = append(out, g.W[l]...)
		out = append(out, g.B[l]...)
	}
	return out
}

// Backward computes the average cross-entropy loss and its gradients over
// a mini-batch (rows of X with labels Y), accumulating into g.
func (m *MLP) Backward(X [][]float64, Y []int, g *Grads) float64 {
	n := len(Y)
	if n == 0 {
		return 0
	}
	L := len(m.W)
	loss := 0.0
	// Per-example backprop; models are small so this is fine and keeps the
	// code transparent.
	acts := make([][]float64, L+1)
	for idx := 0; idx < n; idx++ {
		acts[0] = X[idx]
		for l := 0; l < L; l++ {
			acts[l+1] = m.layerForward(l, acts[l], l+1 < L)
		}
		probs := Softmax(acts[L])
		p := probs[Y[idx]]
		if p < 1e-15 {
			p = 1e-15
		}
		loss += -math.Log(p)
		// delta at output layer.
		delta := make([]float64, len(probs))
		copy(delta, probs)
		delta[Y[idx]] -= 1
		for l := L - 1; l >= 0; l-- {
			in, out := m.Sizes[l], m.Sizes[l+1]
			a := acts[l]
			gw, gb := g.W[l], g.B[l]
			for j := 0; j < out; j++ {
				gb[j] += delta[j] / float64(n)
			}
			for i := 0; i < in; i++ {
				if a[i] == 0 {
					continue
				}
				row := gw[i*out : (i+1)*out]
				scale := a[i] / float64(n)
				for j := 0; j < out; j++ {
					row[j] += scale * delta[j]
				}
			}
			if l > 0 {
				w := m.W[l]
				prev := make([]float64, in)
				for i := 0; i < in; i++ {
					if a[i] <= 0 { // ReLU gate (a == relu(z))
						continue
					}
					row := w[i*out : (i+1)*out]
					s := 0.0
					for j := 0; j < out; j++ {
						s += row[j] * delta[j]
					}
					prev[i] = s
				}
				delta = prev
			}
		}
	}
	return loss / float64(n)
}

// Loss computes the average cross-entropy loss without gradients.
func (m *MLP) Loss(X [][]float64, Y []int) float64 {
	if len(Y) == 0 {
		return 0
	}
	loss := 0.0
	for i := range Y {
		probs := Softmax(m.Forward(X[i]))
		p := probs[Y[i]]
		if p < 1e-15 {
			p = 1e-15
		}
		loss += -math.Log(p)
	}
	return loss / float64(len(Y))
}
