package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSoftmaxSumsToOne(t *testing.T) {
	f := func(a, b, c int16) bool {
		p := Softmax([]float64{float64(a) / 100, float64(b) / 100, float64(c) / 100})
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxStableForLargeLogits(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 999})
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("softmax overflowed")
		}
	}
	if p[1] <= p[0] || p[0] <= p[2] {
		t.Fatal("softmax ordering wrong")
	}
}

func TestParamsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP([]int{5, 7, 3}, rng)
	p := m.Params()
	if len(p) != m.NumParams() || m.NumParams() != 5*7+7+7*3+3 {
		t.Fatalf("NumParams=%d", m.NumParams())
	}
	m2 := NewMLP([]int{5, 7, 3}, rng)
	m2.SetParams(p)
	p2 := m2.Params()
	for i := range p {
		if p[i] != p2[i] {
			t.Fatal("params roundtrip mismatch")
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP([]int{3, 4, 2}, rng)
	c := m.Clone()
	c.W[0][0] += 1
	if m.W[0][0] == c.W[0][0] {
		t.Fatal("clone shares weight storage")
	}
}

// TestGradientCheck compares analytic gradients against central finite
// differences on a tiny model — the canonical backprop correctness test.
func TestGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMLP([]int{4, 6, 3}, rng)
	X := [][]float64{
		{0.5, -1.2, 0.3, 0.9},
		{-0.4, 0.8, -0.1, 0.2},
		{1.1, 0.05, -0.7, -0.3},
	}
	Y := []int{0, 2, 1}
	g := NewGrads(m)
	m.Backward(X, Y, g)
	analytic := g.Flat()
	params := m.Params()
	const eps = 1e-6
	for _, i := range []int{0, 3, 11, 17, len(params) - 1, len(params) / 2} {
		orig := params[i]
		params[i] = orig + eps
		m.SetParams(params)
		lPlus := m.Loss(X, Y)
		params[i] = orig - eps
		m.SetParams(params)
		lMinus := m.Loss(X, Y)
		params[i] = orig
		m.SetParams(params)
		numeric := (lPlus - lMinus) / (2 * eps)
		if math.Abs(numeric-analytic[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("grad mismatch at %d: numeric %v analytic %v", i, numeric, analytic[i])
		}
	}
}

func TestTrainingLearnsClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := SyntheticClusters(5, 16, 1500, 0.4, rng)
	train, test := ds.Split(0.2, rng)
	m := NewMLP([]int{16, 32, 5}, rng)
	before := m.Accuracy(test)
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	for epoch := 0; epoch < 15; epoch++ {
		TrainEpoch(m, train, 20, opt, 0, nil, rng)
	}
	after := m.Accuracy(test)
	if before > 0.5 {
		t.Fatalf("untrained accuracy suspiciously high: %v", before)
	}
	if after < 0.9 {
		t.Fatalf("trained accuracy %v < 0.9", after)
	}
}

func TestTrainEpochReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := SyntheticClusters(4, 8, 400, 0.3, rng)
	m := NewMLP([]int{8, 16, 4}, rng)
	opt := &SGD{LR: 0.05}
	l0 := m.Loss(ds.X, ds.Y)
	for e := 0; e < 5; e++ {
		TrainEpoch(m, ds, 32, opt, 0, nil, rng)
	}
	l1 := m.Loss(ds.X, ds.Y)
	if l1 >= l0 {
		t.Fatalf("loss did not fall: %v -> %v", l0, l1)
	}
}

func TestProximalTermPullsTowardAnchor(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := SyntheticClusters(3, 6, 200, 0.3, rng)
	anchorModel := NewMLP([]int{6, 8, 3}, rng)
	anchor := anchorModel.Params()

	free := anchorModel.Clone()
	prox := anchorModel.Clone()
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(7))
	for e := 0; e < 5; e++ {
		TrainEpoch(free, ds, 16, &SGD{LR: 0.1}, 0, nil, rngA)
		TrainEpoch(prox, ds, 16, &SGD{LR: 0.1}, 1.0, anchor, rngB)
	}
	dFree := l2dist(free.Params(), anchor)
	dProx := l2dist(prox.Params(), anchor)
	if dProx >= dFree {
		t.Fatalf("FedProx term did not constrain drift: prox %v free %v", dProx, dFree)
	}
}

func l2dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := []float64{10, -10}
	g := []float64{0, 0}
	opt := &SGD{LR: 0.1, WeightDecay: 0.5}
	opt.Step(p, g)
	if math.Abs(p[0]) >= 10 || math.Abs(p[1]) >= 10 {
		t.Fatal("weight decay did not shrink parameters")
	}
}

func TestDirichletPartitionCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := SyntheticClusters(10, 4, 2000, 0.5, rng)
	parts := DirichletPartition(ds, 20, 0.5, rng)
	total := 0
	for _, p := range parts {
		total += p.Len()
	}
	if total != ds.Len() {
		t.Fatalf("partition lost examples: %d != %d", total, ds.Len())
	}
}

func TestDirichletAlphaControlsSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := SyntheticClusters(10, 4, 5000, 0.5, rng)
	skew := func(alpha float64) float64 {
		parts := DirichletPartition(ds, 10, alpha, rand.New(rand.NewSource(10)))
		// Mean (over clients) of the max class share within the client.
		total := 0.0
		counted := 0
		for _, p := range parts {
			if p.Len() == 0 {
				continue
			}
			counts := make([]int, ds.NumClasses)
			for _, y := range p.Y {
				counts[y]++
			}
			maxc := 0
			for _, c := range counts {
				if c > maxc {
					maxc = c
				}
			}
			total += float64(maxc) / float64(p.Len())
			counted++
		}
		return total / float64(counted)
	}
	if skew(0.1) <= skew(100.0) {
		t.Fatalf("alpha=0.1 skew %v not above alpha=100 skew %v", skew(0.1), skew(100.0))
	}
}

func TestEncodeDecodeParamsRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		b := EncodeParams(vals)
		got, err := DecodeParams(b)
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if math.Float64bits(got[i]) != math.Float64bits(vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeParamsRejectsGarbage(t *testing.T) {
	if _, err := DecodeParams([]byte{1, 2}); err == nil {
		t.Fatal("short buffer accepted")
	}
	b := EncodeParams([]float64{1, 2, 3})
	if _, err := DecodeParams(b[:len(b)-1]); err == nil {
		t.Fatal("truncated buffer accepted")
	}
}

func TestUntrainedAccuracyNearChance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := SyntheticClusters(10, 16, 2000, 0.5, rng)
	m := NewMLP([]int{16, 16, 10}, rng)
	acc := m.Accuracy(ds)
	if acc > 0.35 {
		t.Fatalf("untrained accuracy %v far above chance", acc)
	}
}

func TestDatasetGeneratorsShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := FEMNISTLike(100, rng)
	if f.NumClasses != 62 || f.Dim != 64 || f.Len() != 100 {
		t.Fatalf("FEMNISTLike shape: %+v", f)
	}
	s := SpeechLike(50, rng)
	if s.NumClasses != 35 || s.Dim != 40 || s.Len() != 50 {
		t.Fatalf("SpeechLike shape: %+v", s)
	}
}

func TestSplitDisjointAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := SyntheticClusters(3, 4, 100, 0.5, rng)
	train, test := ds.Split(0.25, rng)
	if train.Len()+test.Len() != 100 || test.Len() != 25 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
}
