package ml

import "math/rand"

// SGD is a mini-batch stochastic gradient descent optimizer with classical
// momentum and L2 weight decay, operating on flat parameter vectors.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	vel         []float64
}

// Step applies one update: p ← p − lr·(g + wd·p) with momentum.
func (s *SGD) Step(params, grads []float64) {
	if s.vel == nil {
		s.vel = make([]float64, len(params))
	}
	for i := range params {
		g := grads[i] + s.WeightDecay*params[i]
		s.vel[i] = s.Momentum*s.vel[i] - s.LR*g
		params[i] += s.vel[i]
	}
}

// TrainEpoch runs one epoch of mini-batch SGD over the dataset and returns
// the mean training loss. The proximal term μ/2·‖w − w₀‖² (FedProx, §4.3)
// is applied when mu > 0 with anchor w₀ = anchor.
func TrainEpoch(m *MLP, d *Dataset, batch int, opt *SGD, mu float64, anchor []float64, rng *rand.Rand) float64 {
	n := len(d.Y)
	if n == 0 {
		return 0
	}
	if batch <= 0 || batch > n {
		batch = n
	}
	order := rng.Perm(n)
	totalLoss := 0.0
	batches := 0
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		bx := make([][]float64, 0, end-start)
		by := make([]int, 0, end-start)
		for _, idx := range order[start:end] {
			bx = append(bx, d.X[idx])
			by = append(by, d.Y[idx])
		}
		g := NewGrads(m)
		loss := m.Backward(bx, by, g)
		flatG := g.Flat()
		params := m.Params()
		if mu > 0 && anchor != nil {
			for i := range flatG {
				flatG[i] += mu * (params[i] - anchor[i])
			}
		}
		opt.Step(params, flatG)
		m.SetParams(params)
		totalLoss += loss
		batches++
	}
	return totalLoss / float64(batches)
}
