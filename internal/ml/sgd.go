package ml

import "math/rand"

// SGD is a mini-batch stochastic gradient descent optimizer with classical
// momentum and L2 weight decay, operating on flat parameter vectors.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	vel         []float64
}

// Step applies one update: p ← p − lr·(g + wd·p) with momentum.
//
//vet:noalloc amortized
func (s *SGD) Step(params, grads []float64) {
	if len(s.vel) != len(params) {
		s.vel = make([]float64, len(params))
	}
	for i := range params {
		g := grads[i] + s.WeightDecay*params[i]
		s.vel[i] = s.Momentum*s.vel[i] - s.LR*g
		params[i] += s.vel[i]
	}
}

// Reset clears the momentum state so the optimizer (and its velocity
// buffer) can be reused for a fresh client.
//
//vet:noalloc
func (s *SGD) Reset() { clear(s.vel) }

// StepModel applies one update directly to the model's layer slices —
// the same arithmetic as Flat/Params/Step/SetParams without the three
// full-vector copies. The FedProx pull μ·(p − anchor) is folded in when
// mu > 0 (anchor is flat, Params order).
//
//vet:noalloc amortized
func (s *SGD) StepModel(m *MLP, g *Grads, mu float64, anchor []float64) {
	total := m.NumParams()
	if len(s.vel) != total {
		s.vel = make([]float64, total)
	}
	if anchor == nil {
		mu = 0
	}
	off := 0
	for l := range m.W {
		off = s.stepSlice(m.W[l], g.W[l], mu, anchor, off)
		off = s.stepSlice(m.B[l], g.B[l], mu, anchor, off)
	}
}

//vet:noalloc
func (s *SGD) stepSlice(p, g []float64, mu float64, anchor []float64, off int) int {
	vel := s.vel[off : off+len(p)]
	lr, mom, wd := s.LR, s.Momentum, s.WeightDecay
	if mu > 0 {
		anc := anchor[off : off+len(p)]
		for i := range p {
			gi := g[i] + mu*(p[i]-anc[i]) + wd*p[i]
			vel[i] = mom*vel[i] - lr*gi
			p[i] += vel[i]
		}
	} else {
		for i := range p {
			gi := g[i] + wd*p[i]
			vel[i] = mom*vel[i] - lr*gi
			p[i] += vel[i]
		}
	}
	return off + len(p)
}

// TrainEpoch runs one epoch of mini-batch SGD over the dataset and returns
// the mean training loss. The proximal term μ/2·‖w − w₀‖² (FedProx, §4.3)
// is applied when mu > 0 with anchor w₀ = anchor. It is a thin wrapper
// over TrainEpochWS with a throwaway workspace.
func TrainEpoch(m *MLP, d *Dataset, batch int, opt *SGD, mu float64, anchor []float64, rng *rand.Rand) float64 {
	return TrainEpochWS(m, d, batch, opt, mu, anchor, rng, NewWorkspace())
}
