package ml

import (
	"math"
	"math/rand"
)

// Dataset is a labelled classification dataset.
type Dataset struct {
	X          [][]float64
	Y          []int
	Dim        int
	NumClasses int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Y) }

// Subset selects examples by index (shares backing feature slices).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Dim: d.Dim, NumClasses: d.NumClasses}
	for _, i := range idx {
		out.X = append(out.X, d.X[i])
		out.Y = append(out.Y, d.Y[i])
	}
	return out
}

// Split shuffles and divides the dataset into train/test parts.
func (d *Dataset) Split(testFrac float64, rng *rand.Rand) (train, test *Dataset) {
	perm := rng.Perm(d.Len())
	nTest := int(float64(d.Len()) * testFrac)
	test = d.Subset(perm[:nTest])
	train = d.Subset(perm[nTest:])
	return train, test
}

// SyntheticClusters generates a Gaussian-cluster classification problem:
// every class has a mean vector on a sphere, and samples are the mean plus
// isotropic noise. spread controls difficulty (noise σ relative to the
// unit-ish inter-class distances).
func SyntheticClusters(classes, dim, n int, spread float64, rng *rand.Rand) *Dataset {
	means := make([][]float64, classes)
	for c := range means {
		v := make([]float64, dim)
		norm := 0.0
		for i := range v {
			v[i] = rng.NormFloat64()
			norm += v[i] * v[i]
		}
		norm = math.Sqrt(norm)
		for i := range v {
			v[i] = v[i] / norm * 2.0
		}
		means[c] = v
	}
	d := &Dataset{Dim: dim, NumClasses: classes}
	for i := 0; i < n; i++ {
		c := rng.Intn(classes)
		x := make([]float64, dim)
		for j := range x {
			x[j] = means[c][j] + rng.NormFloat64()*spread
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, c)
	}
	return d
}

// FEMNISTLike mirrors the role of the FEMNIST dataset (62 handwriting
// classes) in the paper's image-classification task: same class count, a
// compact feature dimension, and enough overlap that accuracy climbs over
// many rounds rather than instantly.
func FEMNISTLike(n int, rng *rand.Rand) *Dataset {
	return SyntheticClusters(62, 64, n, 0.4, rng)
}

// SpeechLike mirrors the role of the Google Speech Commands dataset
// (35 keyword classes) in the paper's speech-recognition task.
func SpeechLike(n int, rng *rand.Rand) *Dataset {
	return SyntheticClusters(35, 40, n, 0.6, rng)
}

// DirichletPartition splits a dataset across `clients` non-IID shards: for
// every class, the class's examples are distributed to clients with
// proportions drawn from Dirichlet(alpha). Small alpha ⇒ highly skewed
// (each client sees few classes), large alpha ⇒ near-IID. This is the
// standard federated non-IID benchmark construction.
func DirichletPartition(d *Dataset, clients int, alpha float64, rng *rand.Rand) []*Dataset {
	byClass := make([][]int, d.NumClasses)
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	assign := make([][]int, clients)
	for _, idxs := range byClass {
		if len(idxs) == 0 {
			continue
		}
		props := dirichlet(clients, alpha, rng)
		// Convert proportions to contiguous slices of the shuffled class.
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		start := 0
		for c := 0; c < clients; c++ {
			cnt := int(props[c] * float64(len(idxs)))
			if c == clients-1 {
				cnt = len(idxs) - start
			}
			if start+cnt > len(idxs) {
				cnt = len(idxs) - start
			}
			assign[c] = append(assign[c], idxs[start:start+cnt]...)
			start += cnt
		}
	}
	out := make([]*Dataset, clients)
	for c := range out {
		out[c] = d.Subset(assign[c])
	}
	return out
}

// dirichlet samples a probability vector from Dirichlet(alpha,...,alpha)
// via normalized Gamma draws.
func dirichlet(k int, alpha float64, rng *rand.Rand) []float64 {
	out := make([]float64, k)
	sum := 0.0
	for i := range out {
		out[i] = gammaSample(alpha, rng)
		sum += out[i]
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(k)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// gammaSample draws Gamma(shape, 1) using Marsaglia–Tsang, with the
// standard boost for shape < 1.
func gammaSample(shape float64, rng *rand.Rand) float64 {
	if shape < 1 {
		u := rng.Float64()
		return gammaSample(shape+1, rng) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
