package ml

import (
	"math"
	"math/rand"
	"testing"
)

// TestBatchGradientIsMeanOfSingles: the gradient of a batch equals the
// mean of per-example gradients (linearity of the loss mean).
func TestBatchGradientIsMeanOfSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m := NewMLP([]int{6, 8, 4}, rng)
	X := make([][]float64, 5)
	Y := make([]int, 5)
	for i := range X {
		X[i] = make([]float64, 6)
		for j := range X[i] {
			X[i][j] = rng.NormFloat64()
		}
		Y[i] = rng.Intn(4)
	}
	batch := NewGrads(m)
	m.Backward(X, Y, batch)
	batchFlat := batch.Flat()

	mean := make([]float64, len(batchFlat))
	for i := range X {
		g := NewGrads(m)
		m.Backward(X[i:i+1], Y[i:i+1], g)
		for k, v := range g.Flat() {
			mean[k] += v / float64(len(X))
		}
	}
	for k := range mean {
		if math.Abs(mean[k]-batchFlat[k]) > 1e-10*(1+math.Abs(mean[k])) {
			t.Fatalf("batch gradient != mean of singles at %d: %v vs %v", k, batchFlat[k], mean[k])
		}
	}
}

// TestMomentumAcceleratesOnQuadratic: with a constant gradient, momentum
// moves parameters further than plain SGD after a few steps.
func TestMomentumAcceleratesOnQuadratic(t *testing.T) {
	step := func(mom float64) float64 {
		p := []float64{0}
		opt := &SGD{LR: 0.1, Momentum: mom}
		for i := 0; i < 10; i++ {
			opt.Step(p, []float64{1}) // constant gradient pushes p negative
		}
		return -p[0]
	}
	if step(0.9) <= step(0) {
		t.Fatalf("momentum did not accelerate: %v vs %v", step(0.9), step(0))
	}
}

// TestPredictConsistentWithForward: Predict is the argmax of Forward.
func TestPredictConsistentWithForward(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := NewMLP([]int{5, 7, 3}, rng)
	for trial := 0; trial < 100; trial++ {
		x := make([]float64, 5)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		logits := m.Forward(x)
		best := 0
		for j := 1; j < len(logits); j++ {
			if logits[j] > logits[best] {
				best = j
			}
		}
		if m.Predict(x) != best {
			t.Fatal("Predict disagrees with Forward argmax")
		}
	}
}
