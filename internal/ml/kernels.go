package ml

// Kernels for the training hot path. Each public kernel dispatches to an
// AVX2+FMA assembly implementation on amd64 CPUs that support it (see
// kernels_amd64.s) and otherwise to the portable scalar form below. The
// scalar forms unroll with independent accumulators so the CPU can overlap
// floating-point latencies; Go does not auto-vectorize, so on the fallback
// path instruction-level parallelism is where the throughput comes from.
//
// The N-row variants operate on groups of adjacent matrix rows (x is the
// first row, subsequent rows start at multiples of stride) so one pass
// over y amortizes its load/store traffic across 4 or 8 input rows — the
// difference between the memory-bound per-example backprop and the
// compute-bound batched form.

// axpy computes y[j] += a*x[j] over the common length of x and y.
//
//vet:noalloc
func axpy(a float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	if hasSIMD && n >= 4 {
		axpyAVX(a, &x[0], &y[0], n)
		return
	}
	j := 0
	for ; j+4 <= n; j += 4 {
		y[j] += a * x[j]
		y[j+1] += a * x[j+1]
		y[j+2] += a * x[j+2]
		y[j+3] += a * x[j+3]
	}
	for ; j < n; j++ {
		y[j] += a * x[j]
	}
}

// axpyN4 computes y[j] += Σ_t c[t]*x[t*stride+j]: four fused axpys over
// adjacent rows that load and store each y element once instead of four
// times.
//
//vet:noalloc
func axpyN4(c *[4]float64, x []float64, stride int, y []float64) {
	n := len(y)
	_ = x[3*stride+n-1]
	if hasSIMD && n >= 4 {
		axpy4AVX(&c[0], &x[0], stride, &y[0], n)
		return
	}
	x0, x1 := x[:n], x[stride:stride+n]
	x2, x3 := x[2*stride:2*stride+n], x[3*stride:3*stride+n]
	for j := 0; j < n; j++ {
		y[j] += c[0]*x0[j] + c[1]*x1[j] + c[2]*x2[j] + c[3]*x3[j]
	}
}

// axpyN8 computes y[j] += Σ_t c[t]*x[t*stride+j] over eight adjacent rows.
//
//vet:noalloc
func axpyN8(c *[8]float64, x []float64, stride int, y []float64) {
	n := len(y)
	_ = x[7*stride+n-1]
	if hasSIMD && n >= 4 {
		axpy8AVX(&c[0], &x[0], stride, &y[0], n)
		return
	}
	var c0, c1 [4]float64
	copy(c0[:], c[:4])
	copy(c1[:], c[4:])
	axpyN4(&c0, x, stride, y)
	axpyN4(&c1, x[4*stride:], stride, y)
}

// dotN4 computes dst[t] = Σ_j w[t*stride+j]*d[j] for t in 0..3: four dot
// products of d against adjacent rows of w, sharing one pass over d.
//
//vet:noalloc
func dotN4(d []float64, w []float64, stride int, dst []float64) {
	n := len(d)
	_ = w[3*stride+n-1]
	_ = dst[3]
	if hasSIMD && n >= 4 {
		dot4AVX(&d[0], &w[0], stride, &dst[0], n)
		return
	}
	w0, w1 := w[:n], w[stride:stride+n]
	w2, w3 := w[2*stride:2*stride+n], w[3*stride:3*stride+n]
	var s0, s1, s2, s3 float64
	for j := 0; j < n; j++ {
		dj := d[j]
		s0 += w0[j] * dj
		s1 += w1[j] * dj
		s2 += w2[j] * dj
		s3 += w3[j] * dj
	}
	dst[0], dst[1], dst[2], dst[3] = s0, s1, s2, s3
}

// dot computes the inner product of x and y.
//
//vet:noalloc
func dot(x, y []float64) float64 {
	n := len(x)
	y = y[:n]
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= n; j += 4 {
		s0 += x[j] * y[j]
		s1 += x[j+1] * y[j+1]
		s2 += x[j+2] * y[j+2]
		s3 += x[j+3] * y[j+3]
	}
	for ; j < n; j++ {
		s0 += x[j] * y[j]
	}
	return (s0 + s1) + (s2 + s3)
}
