module totoro

go 1.24
