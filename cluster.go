package totoro

import (
	"fmt"
	"math/rand"
	"time"

	"totoro/internal/ids"
	"totoro/internal/ml"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/store"
	"totoro/internal/transport"
	"totoro/internal/wire/codec"
	"totoro/internal/workload"
)

// ClusterConfig describes a simulated Totoro deployment.
type ClusterConfig struct {
	// N is the number of edge nodes.
	N int
	// Seed drives every random choice in the deployment.
	Seed int64
	// Ring configures the overlay (B = log2 fanout).
	Ring ring.Config
	// PubSub configures the forest layer.
	PubSub pubsub.Config
	// Latency is the one-way link latency (default 5ms); LatencyFn
	// overrides it per link when set.
	Latency   time.Duration
	LatencyFn simnet.LatencyFunc
	// Bandwidth is each node's NIC speed in bytes/sec (0 = unlimited).
	Bandwidth int64
	// Cost models local compute.
	Cost workload.CostModel
	// ZoneBits enables the multi-ring zone structure; ZoneOf assigns each
	// node a zone (required when ZoneBits > 0).
	ZoneBits int
	ZoneOf   func(node int) uint64
	// SpeedOf draws a per-node compute speed factor (nil = all 1.0).
	SpeedOf func(node int) float64
	// VirtualNodesOf maps a physical host to the number of logical P2P
	// nodes it runs (the paper's heterogeneity mechanism, §7.5):
	// resource-rich hosts run several logical nodes — owning
	// proportionally more of the ID space and therefore more master/
	// aggregator roles — while all logical nodes of one host share a
	// single compute queue. Nil means one logical node per host; N then
	// counts physical hosts either way.
	VirtualNodesOf func(host int) int
	// Replicas, ReplicaCheckInterval, and FailoverGrace configure master
	// failover on every engine (see Options). Replicas = 0 disables it.
	Replicas             int
	ReplicaCheckInterval time.Duration
	FailoverGrace        time.Duration
	// Durable gives every engine an in-memory durable store (the simnet
	// stand-in for a node's on-disk WAL — byte-identical journals, see
	// internal/store): node state then survives Restart, making
	// crash-restart a first-class churn event. SnapshotEvery is the WAL
	// snapshot cadence (see Options.SnapshotEvery).
	Durable       bool
	SnapshotEvery int
	// FaultyStores wraps every engine's durable store in a fault-injecting
	// wrapper (store.Faulty) so a nemesis schedule can fail disks mid-run;
	// requires Durable. Access the wrappers via FaultyStore.
	FaultyStores bool
	// ExactSizes routes simulated message-size accounting through the v2
	// wire codec (see simnet.Config.ExactSizes).
	ExactSizes bool
	// OnViolation handles invariant violations found by the chaos checker
	// (see simnet.Config.OnViolation; nil panics with the violation).
	OnViolation func(*simnet.InvariantViolation)
}

// Cluster is a whole simulated Totoro deployment: N engines on a
// deterministic virtual network, plus the bookkeeping that evaluates
// model accuracy and records training trajectories.
type Cluster struct {
	Net     *simnet.Network
	Engines []*Engine
	// HostOf maps each engine index to its physical host index.
	HostOf []int

	cfg  ClusterConfig
	rng  *rand.Rand
	apps map[AppID]*clusterApp
	// stores holds each engine's durable store (nil entries when Durable is
	// off); shards remembers which data shard each engine holds per app, so
	// a crash-restarted engine can be handed its data back (the store
	// journals the subscription, the driver owns the bytes).
	stores []store.Store
	faulty []*store.Faulty
	shards []map[AppID]*ml.Dataset
	// onBuild, when set, runs on every engine built after cluster
	// construction (i.e. crash-restart rebuilds) so per-engine hooks — the
	// chaos checker's AckHook in particular — survive a Restart.
	onBuild func(idx int, e *Engine)
	// maintainEvery remembers the StartMaintenance interval so a
	// crash-restarted engine's rebuilt ring node gets its probe loop back.
	maintainEvery time.Duration
}

type clusterApp struct {
	app    *workload.App
	eval   *ml.MLP
	spec   AppSpec
	master int // engine index, resolved lazily
}

// NewCluster builds the deployment: engines with zoned or uniform IDs on
// a statically wired overlay.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.N <= 0 {
		panic("totoro: cluster needs N > 0")
	}
	if cfg.Latency == 0 {
		cfg.Latency = 5 * time.Millisecond
	}
	lat := cfg.LatencyFn
	if lat == nil {
		lat = simnet.ConstLatency(cfg.Latency)
	}
	c := &Cluster{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		apps: make(map[AppID]*clusterApp),
	}
	netCfg := simnet.Config{
		Seed:             cfg.Seed,
		Latency:          lat,
		DefaultBandwidth: cfg.Bandwidth,
		OnViolation:      cfg.OnViolation,
	}
	if cfg.ExactSizes {
		RegisterWire() // exact accounting encodes through the codec registry
		netCfg.Sizer = codec.FrameSize
	}
	c.Net = simnet.New(netCfg)
	var ringNodes []*ring.Node
	logical := 0
	for host := 0; host < cfg.N; host++ {
		virtual := 1
		if cfg.VirtualNodesOf != nil {
			if v := cfg.VirtualNodesOf(host); v > 0 {
				virtual = v
			}
		}
		speed := 1.0
		if cfg.SpeedOf != nil {
			speed = cfg.SpeedOf(host)
		}
		// All logical nodes of one host serialize compute on one queue and
		// split the host NIC.
		queue := &workload.ComputeQueue{}
		for v := 0; v < virtual; v++ {
			addr := transport.Addr(fmt.Sprintf("n%d", logical))
			if virtual > 1 {
				addr = transport.Addr(fmt.Sprintf("n%d.%d", host, v))
			}
			logical++
			id := ids.Random(c.rng)
			if cfg.ZoneBits > 0 && cfg.ZoneOf != nil {
				id = ids.MakeZoned(cfg.ZoneOf(host), cfg.ZoneBits, id)
			}
			// The store outlives the engine: a Restart rebuilds the stack via
			// this closure, and the rebooted engine recovers from the same
			// store a real node would find on its disk.
			var st store.Store
			var fs *store.Faulty
			if cfg.Durable {
				st = store.NewMem()
				if cfg.FaultyStores {
					fs = store.NewFaulty(st)
					st = fs
				}
			}
			idx := len(c.Engines)
			var eng *Engine
			c.Net.AddNode(addr, func(env transport.Env) transport.Handler {
				eng = NewEngine(env, ring.Contact{ID: id, Addr: addr}, Options{
					Ring:                 cfg.Ring,
					PubSub:               cfg.PubSub,
					Cost:                 cfg.Cost,
					Speed:                speed,
					ZoneBits:             cfg.ZoneBits,
					Queue:                queue,
					Eval:                 c.evalApp,
					Replicas:             cfg.Replicas,
					ReplicaCheckInterval: cfg.ReplicaCheckInterval,
					FailoverGrace:        cfg.FailoverGrace,
					Store:                st,
					SnapshotEvery:        cfg.SnapshotEvery,
				})
				if idx < len(c.Engines) {
					c.Engines[idx] = eng // rebuild via Restart: replace the corpse
				}
				if c.onBuild != nil {
					c.onBuild(idx, eng)
				}
				return eng
			})
			if cfg.Bandwidth > 0 && virtual > 1 {
				c.Net.SetBandwidth(addr, cfg.Bandwidth/int64(virtual))
			}
			c.Engines = append(c.Engines, eng)
			c.HostOf = append(c.HostOf, host)
			c.stores = append(c.stores, st)
			c.faulty = append(c.faulty, fs)
			c.shards = append(c.shards, make(map[AppID]*ml.Dataset))
			ringNodes = append(ringNodes, eng.Ring())
		}
	}
	ring.BuildStatic(ringNodes, c.rng)
	return c
}

// evalApp is the accuracy oracle installed into every engine: it scores an
// app's parameters on the app's held-out test set. It is instrumentation
// and consumes no simulated time.
func (c *Cluster) evalApp(app AppID, params []float64) float64 {
	reg, ok := c.apps[app]
	if !ok {
		return 0
	}
	reg.eval.SetParams(params)
	return reg.eval.Accuracy(reg.app.Test)
}

// Deploy registers a workload app, creates its tree from the owner node,
// and subscribes the given worker nodes with their shards (shard i goes to
// workers[i]). It returns the AppID after the tree has settled.
func (c *Cluster) Deploy(app *workload.App, owner int, workers []int) AppID {
	id := NewAppID(app.Name, "cluster")
	spec := SpecFromWorkload(id, app)
	c.apps[id] = &clusterApp{app: app, eval: app.Proto.Clone(), spec: spec, master: -1}
	c.Engines[owner].CreateTree(spec)
	c.settle()
	for i, w := range workers {
		shard := app.Shards[i%len(app.Shards)]
		if err := c.Engines[w].Subscribe(id, shard, spec.ZoneRestricted); err != nil {
			panic(err)
		}
		c.shards[w][id] = shard
	}
	c.settle()
	return id
}

// settle advances the network until quiescent: with keep-alive timers in
// play the event queue never drains, so a bounded window is run instead.
func (c *Cluster) settle() {
	if ka := c.cfg.PubSub.KeepAliveInterval; ka > 0 {
		c.Net.Run(c.Net.Now() + 5*ka)
		return
	}
	c.Net.RunUntilIdle()
}

// DeployOnRandomNodes deploys the app with one worker per shard placed on
// distinct random nodes.
func (c *Cluster) DeployOnRandomNodes(app *workload.App) AppID {
	n := len(c.Engines)
	if len(app.Shards) > n {
		panic("totoro: more shards than nodes")
	}
	perm := c.rng.Perm(n)
	return c.Deploy(app, perm[len(app.Shards)%n], perm[:len(app.Shards)])
}

// Train starts every given app concurrently and runs the simulation to
// completion; it returns each app's trajectory in the same order. With
// keep-alives enabled (periodic timers never drain the event queue) it
// steps time until every app finishes, up to a generous deadline.
func (c *Cluster) Train(appIDs ...AppID) []*workload.Progress {
	if c.cfg.PubSub.KeepAliveInterval > 0 {
		return c.TrainUntil(c.Net.Now()+4*time.Hour, appIDs...)
	}
	for _, id := range appIDs {
		// Any node can issue the start; use the registered owner path via a
		// random engine to exercise routing.
		c.Engines[c.rng.Intn(len(c.Engines))].StartTraining(id)
	}
	c.Net.RunUntilIdle()
	out := make([]*workload.Progress, len(appIDs))
	for i, id := range appIDs {
		out[i] = c.Progress(id)
	}
	return out
}

// TrainUntil starts the apps and advances virtual time in slices until all
// of them complete or the deadline passes — the driver to use when
// keep-alive timers (or churn injected between slices via Hooks) keep the
// event queue busy forever.
func (c *Cluster) TrainUntil(deadline time.Duration, appIDs ...AppID) []*workload.Progress {
	for _, id := range appIDs {
		c.Engines[c.rng.Intn(len(c.Engines))].StartTraining(id)
	}
	c.StepUntilDone(deadline, appIDs...)
	out := make([]*workload.Progress, len(appIDs))
	for i, id := range appIDs {
		out[i] = c.Progress(id)
	}
	return out
}

// StepUntilDone advances time in 100ms slices until every listed app's
// master reports done (or the deadline passes).
func (c *Cluster) StepUntilDone(deadline time.Duration, appIDs ...AppID) {
	for c.Net.Now() < deadline {
		c.Net.Run(c.Net.Now() + 100*time.Millisecond)
		if c.allDone(appIDs) {
			return
		}
	}
}

func (c *Cluster) allDone(appIDs []AppID) bool {
	for _, id := range appIDs {
		m := c.Master(id)
		if m == nil {
			return false
		}
		p, _ := m.Progress(id)
		if p == nil || (p.Done == 0 && !p.Reached) {
			return false
		}
		if p.Done == 0 {
			return false
		}
	}
	return true
}

// Progress finds the app's master and returns its recorded trajectory.
func (c *Cluster) Progress(id AppID) *workload.Progress {
	if m := c.Master(id); m != nil {
		p, _ := m.Progress(id)
		if p.Done == 0 {
			p.Done = c.Net.Now()
		}
		return p
	}
	return nil
}

// Master returns the engine currently mastering the app, or nil. A dead
// node's engine keeps its master state in memory, so only engines whose
// node is alive count — after a failover the promoted successor is
// returned, not the corpse.
func (c *Cluster) Master(id AppID) *Engine {
	reg := c.apps[id]
	if reg != nil && reg.master >= 0 {
		if e := c.Engines[reg.master]; e.IsMaster(id) && c.Net.Alive(e.Self().Addr) {
			return e
		}
	}
	for i, e := range c.Engines {
		if e.IsMaster(id) && c.Net.Alive(e.Self().Addr) {
			if reg != nil {
				reg.master = i
			}
			return e
		}
	}
	return nil
}

// Restart crash-restarts engine i: the node reboots with a rebuilt stack
// (amnesia except for its durable store), then rejoins and resumes. See
// Restarted for the recovery sequence.
func (c *Cluster) Restart(i int) {
	c.Net.Restart(c.Engines[i].Self().Addr)
	c.Restarted(c.Engines[i].Self().Addr)
}

// Restarted completes a crash-restart that the network layer already
// performed (churn in Restart mode calls Network.Restart itself; pass this
// as the churn OnRestart hook). It plays the role a node's init system
// plays in a real deployment: hand the recovered engine its data shards
// (the store journals *that* the node works for an app; the driver owns
// the bytes), point it at a live bootstrap node, and — once the overlay
// join completes — let it resume its recovered roles.
func (c *Cluster) Restarted(addr transport.Addr) {
	idx := -1
	for i, e := range c.Engines {
		if e.Self().Addr == addr {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	eng := c.Engines[idx]
	for _, app := range sortedApps(c.shards[idx]) {
		eng.AttachShard(app, c.shards[idx][app])
	}
	if c.maintainEvery > 0 {
		eng.Ring().StartMaintenance(c.maintainEvery)
	}
	var bootstrap transport.Addr
	for _, a := range c.Net.Addrs() {
		if a != addr && c.Net.Alive(a) {
			bootstrap = a
			break
		}
	}
	if bootstrap == "" {
		return // nobody to rejoin through; the next restart will retry
	}
	eng.Join(bootstrap)
	var poll func()
	poll = func() {
		if !c.Net.Alive(addr) || c.Engines[idx] != eng {
			return // crashed again; its own restart drives recovery
		}
		if !eng.Ring().Joined() {
			c.Net.ScheduleAfter(50*time.Millisecond, poll)
			return
		}
		eng.ResumeAfterRestart()
	}
	c.Net.ScheduleAfter(50*time.Millisecond, poll)
}

// StartMaintenance starts periodic leaf-set maintenance on every engine's
// ring node — required for failover: it is what scrubs a dead master from
// the successors' routing state so ring ownership of the app key moves.
// Note the probe timers keep the event queue busy forever; drive the
// network with Run/StepUntilDone, not RunUntilIdle, after calling this.
func (c *Cluster) StartMaintenance(interval time.Duration) {
	c.maintainEvery = interval
	for _, e := range c.Engines {
		e.Ring().StartMaintenance(interval)
	}
}

// FaultyStore returns engine i's fault-injecting store wrapper, or nil
// when the cluster wasn't built with FaultyStores.
func (c *Cluster) FaultyStore(i int) *store.Faulty { return c.faulty[i] }

// EngineIndex maps a node address to its engine index (-1 if unknown).
func (c *Cluster) EngineIndex(addr transport.Addr) int {
	for i, e := range c.Engines {
		if e.Self().Addr == addr {
			return i
		}
	}
	return -1
}

// Spec returns the registered spec for an app.
func (c *Cluster) Spec(id AppID) (AppSpec, bool) {
	reg, ok := c.apps[id]
	if !ok {
		return AppSpec{}, false
	}
	return reg.spec, true
}
