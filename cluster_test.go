package totoro

import (
	"testing"

	"totoro/internal/ring"
	"totoro/internal/workload"
)

func TestClusterSpecAccessor(t *testing.T) {
	c := testCluster(40, 41)
	app := testApps(1, 41)[0]
	id := c.DeployOnRandomNodes(app)
	spec, ok := c.Spec(id)
	if !ok || spec.Name != app.Name {
		t.Fatalf("Spec(%v)=%+v,%v", id, spec, ok)
	}
	if _, ok := c.Spec(NewAppID("nope", "nope")); ok {
		t.Fatal("unknown app returned a spec")
	}
}

func TestClusterProgressUnknownApp(t *testing.T) {
	c := testCluster(20, 42)
	if p := c.Progress(NewAppID("ghost", "x")); p != nil {
		t.Fatalf("progress for unknown app: %+v", p)
	}
	if m := c.Master(NewAppID("ghost", "x")); m != nil {
		t.Fatal("master for unknown app")
	}
}

func TestMasterCachedAcrossLookups(t *testing.T) {
	c := testCluster(50, 43)
	app := testApps(1, 43)[0]
	app.MaxRounds = 0
	id := c.DeployOnRandomNodes(app)
	m1 := c.Master(id)
	m2 := c.Master(id)
	if m1 == nil || m1 != m2 {
		t.Fatal("master lookup unstable")
	}
}

func TestEngineGlobalParamsCopy(t *testing.T) {
	c := testCluster(50, 44)
	app := testApps(1, 44)[0]
	app.MaxRounds = 2
	app.TargetAccuracy = 0.999
	id := c.DeployOnRandomNodes(app)
	c.Train(id)
	m := c.Master(id)
	p1, ok := m.GlobalParams(id)
	if !ok || len(p1) == 0 {
		t.Fatal("no global params")
	}
	p1[0] += 1000
	p2, _ := m.GlobalParams(id)
	if p2[0] == p1[0] {
		t.Fatal("GlobalParams returned shared storage")
	}
	if _, ok := m.GlobalParams(NewAppID("ghost", "x")); ok {
		t.Fatal("params for unknown app")
	}
	if apps := m.MasterApps(); len(apps) != 1 || apps[0] != id {
		t.Fatalf("MasterApps=%v", apps)
	}
}

func TestDuplicateCreateTreeIsIdempotent(t *testing.T) {
	c := testCluster(40, 45)
	app := testApps(1, 45)[0]
	app.MaxRounds = 0
	id := NewAppID(app.Name, "cluster")
	spec := SpecFromWorkload(id, app)
	c.apps[id] = &clusterApp{app: app, eval: app.Proto.Clone(), spec: spec, master: -1}
	c.Engines[0].CreateTree(spec)
	c.Engines[1].CreateTree(spec) // second creator, same app
	c.Net.RunUntilIdle()
	masters := 0
	for _, e := range c.Engines {
		if e.IsMaster(id) {
			masters++
		}
	}
	if masters != 1 {
		t.Fatalf("masters=%d after duplicate CreateTree", masters)
	}
}

func TestStartTrainingTwiceRunsOnce(t *testing.T) {
	c := testCluster(50, 46)
	app := testApps(1, 46)[0]
	app.MaxRounds = 3
	app.TargetAccuracy = 0.999
	id := c.DeployOnRandomNodes(app)
	c.Engines[0].StartTraining(id)
	c.Engines[1].StartTraining(id)
	c.Net.RunUntilIdle()
	p := c.Progress(id)
	if len(p.Points) != 3 {
		t.Fatalf("rounds=%d want 3 (double start must not double rounds)", len(p.Points))
	}
	for i, pt := range p.Points {
		if pt.Round != i+1 {
			t.Fatalf("round sequence corrupted: %+v", p.Points)
		}
	}
}

func TestZonedClusterBuildsAllZones(t *testing.T) {
	c := NewCluster(ClusterConfig{
		N:        32,
		Seed:     47,
		Ring:     ring.Config{B: 4},
		ZoneBits: 4,
		ZoneOf:   func(i int) uint64 { return uint64(i % 4) },
	})
	counts := map[uint64]int{}
	for _, e := range c.Engines {
		counts[e.Self().ID.ZonePrefix(4)]++
	}
	for z := uint64(0); z < 4; z++ {
		if counts[z] != 8 {
			t.Fatalf("zone %d has %d nodes want 8", z, counts[z])
		}
	}
	_ = workload.DefaultCostModel()
}
