package totoro

import (
	"sort"
	"testing"
	"time"

	"totoro/internal/ids"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

// failoverCluster is a deployment configured for churn survival: reliable
// hops, keep-alive tree repair, semi-synchronous rounds, and master-state
// replication to two successors.
func failoverCluster(seed int64) *Cluster {
	return NewCluster(ClusterConfig{
		N:    60,
		Seed: seed,
		Ring: ring.Config{B: 4, ReliableHops: true, HopAckTimeout: 150 * time.Millisecond},
		PubSub: pubsub.Config{
			KeepAliveInterval: 100 * time.Millisecond,
			KeepAliveTimeout:  300 * time.Millisecond,
			AggTimeout:        2 * time.Second,
		},
		Bandwidth:            2 << 20,
		Replicas:             2,
		ReplicaCheckInterval: 300 * time.Millisecond,
		FailoverGrace:        500 * time.Millisecond,
	})
}

// failoverResult captures one run of the churn/failover scenario.
type failoverResult struct {
	prog         *workload.Progress
	promotions   int
	promoteDelay time.Duration
}

// runFailover trains one app under background churn. With kill set, the
// app's master is killed as soon as two rounds have completed, and the run
// additionally measures how long a successor took to promote itself.
func runFailover(t *testing.T, seed int64, kill bool) failoverResult {
	t.Helper()
	c := failoverCluster(seed)
	app := testApps(1, seed)[0]
	app.MaxRounds = 8
	app.TargetAccuracy = 0.999 // unreachable: every run does all 8 rounds

	id := NewAppID(app.Name, "cluster")
	// Rank engines by closeness to the app key: order[0] is the rendezvous
	// master, the next few are its replica-holding successors. Those stay
	// exempt from background churn — the master dies by our hand, and the
	// test measures failover, not total state loss.
	order := make([]int, len(c.Engines))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return ids.Closer(id, c.Engines[order[a]].Self().ID, c.Engines[order[b]].Self().ID)
	})
	protected := map[int]bool{}
	for _, i := range order[:5] {
		protected[i] = true
	}
	var workers []int
	for i := 0; i < len(c.Engines) && len(workers) < len(app.Shards); i++ {
		if !protected[i] {
			workers = append(workers, i)
		}
	}
	owner := workers[0]
	if got := c.Deploy(app, owner, workers); got != id {
		t.Fatalf("deployed id %s != precomputed %s", got, id)
	}
	c.StartMaintenance(500 * time.Millisecond)

	var exempt []transport.Addr
	for i := range protected {
		exempt = append(exempt, c.Engines[i].Self().Addr)
	}
	for _, w := range workers {
		exempt = append(exempt, c.Engines[w].Self().Addr)
	}
	ch := c.Net.StartChurn(simnet.ChurnConfig{
		Seed:      seed + 7,
		FailEvery: 500 * time.Millisecond,
		Downtime:  3 * time.Second,
		Exempt:    exempt,
	})
	defer ch.Stop()

	c.Engines[owner].StartTraining(id)

	deadline := c.Net.Now() + 10*time.Minute
	var killedAt, promotedAt time.Duration
	var masterAddr transport.Addr
	killed, promoted := false, false
	for c.Net.Now() < deadline {
		c.Net.Run(c.Net.Now() + 100*time.Millisecond)
		if kill && !killed {
			if m := c.Master(id); m != nil {
				if p, ok := m.Progress(id); ok && len(p.Points) >= 2 {
					masterAddr = m.Self().Addr
					c.Net.Fail(masterAddr)
					killed, killedAt = true, c.Net.Now()
				}
			}
		}
		if killed && !promoted {
			if m := c.Master(id); m != nil && m.Self().Addr != masterAddr {
				promoted, promotedAt = true, c.Net.Now()
			}
		}
		if c.allDone([]AppID{id}) {
			break
		}
	}
	if kill {
		if !killed {
			t.Fatal("master never reached two completed rounds")
		}
		if !promoted {
			t.Fatal("no successor promoted itself after the master died")
		}
	}
	prog := c.Progress(id)
	if prog == nil {
		t.Fatal("no progress recorded")
	}
	// Promotion counts are asserted through the telemetry registry — the
	// same numbers a live deployment would serve from /metrics.
	promos := 0
	for _, e := range c.Engines {
		promos += int(e.Metrics().Counter("engine.promotions").Value())
	}
	return failoverResult{prog: prog, promotions: promos, promoteDelay: promotedAt - killedAt}
}

// TestMasterFailoverResumesTraining is the acceptance test for the
// failover tentpole: the master of a live app is killed mid-round under
// background churn; a leaf-set successor must promote itself within
// bounded virtual time, resume from the last replicated round, finish all
// rounds, and land within two accuracy points of the no-kill run.
func TestMasterFailoverResumesTraining(t *testing.T) {
	const seed = 71
	base := runFailover(t, seed, false)
	killRun := runFailover(t, seed, true)

	if base.promotions != 0 {
		t.Fatalf("baseline run promoted %d masters with nobody killed", base.promotions)
	}
	if killRun.promotions < 1 {
		t.Fatalf("promotions = %d, want >= 1", killRun.promotions)
	}
	if killRun.promoteDelay > 5*time.Second {
		t.Fatalf("successor took %v to promote (bound 5s)", killRun.promoteDelay)
	}

	// Training resumed from the replicated round: the trajectory is one
	// strictly increasing round sequence ending at MaxRounds, with no gap
	// and no repeat at the failover point.
	points := killRun.prog.Points
	if len(points) == 0 {
		t.Fatal("kill run recorded no rounds")
	}
	for i, pt := range points {
		if pt.Round != i+1 {
			t.Fatalf("round sequence broken at %d: %+v", i, pt)
		}
	}
	if last := points[len(points)-1].Round; last != 8 {
		t.Fatalf("kill run ended at round %d, want 8", last)
	}

	baseAcc := base.prog.Points[len(base.prog.Points)-1].Accuracy
	killAcc := points[len(points)-1].Accuracy
	diff := baseAcc - killAcc
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.02 {
		t.Fatalf("final accuracy diverged: baseline %.4f vs kill %.4f (|diff| %.4f > 0.02)",
			baseAcc, killAcc, diff)
	}
}

// TestMasterFailoverIsDeterministic replays the kill scenario twice with
// the same seed: the recovered trajectories must be bit-identical.
func TestMasterFailoverIsDeterministic(t *testing.T) {
	const seed = 73
	a := runFailover(t, seed, true)
	b := runFailover(t, seed, true)
	if a.promotions != b.promotions {
		t.Fatalf("promotions differ: %d vs %d", a.promotions, b.promotions)
	}
	if a.promoteDelay != b.promoteDelay {
		t.Fatalf("promotion delay differs: %v vs %v", a.promoteDelay, b.promoteDelay)
	}
	if len(a.prog.Points) != len(b.prog.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(a.prog.Points), len(b.prog.Points))
	}
	for i := range a.prog.Points {
		if a.prog.Points[i] != b.prog.Points[i] {
			t.Fatalf("round %d diverged: %+v vs %+v", i+1, a.prog.Points[i], b.prog.Points[i])
		}
	}
}
