package totoro

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"totoro/internal/fl"
	"totoro/internal/ids"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

func TestNewAppIDDeterministicDistinct(t *testing.T) {
	a := NewAppID("activity", "owner1")
	if a != NewAppID("activity", "owner1") {
		t.Fatal("AppID not deterministic")
	}
	if a == NewAppID("activity", "owner2") || a == NewAppID("fitness", "owner1") {
		t.Fatal("AppID collision")
	}
}

func TestNewZonalAppIDZone(t *testing.T) {
	for zone := uint64(0); zone < 8; zone++ {
		id := NewZonalAppID("app", "o", zone, 3)
		if id.ZonePrefix(3) != zone {
			t.Fatalf("zonal id in zone %d want %d", id.ZonePrefix(3), zone)
		}
	}
}

func TestSpecFromWorkloadMapsPolicies(t *testing.T) {
	app := workload.MakeApps(workload.Params{
		Task: workload.TaskSpeech, Apps: 1, ClientsPerApp: 4, SamplesPerClient: 10, Seed: 1,
	})[0]
	app.Comp = fl.TopK{K: 33}
	spec := SpecFromWorkload(NewAppID(app.Name, "x"), app)
	if spec.Compressor != "topk" || spec.TopK != 33 {
		t.Fatalf("topk not mapped: %+v", spec)
	}
	if len(spec.InitParams) != app.Proto.NumParams() {
		t.Fatal("init params missing")
	}
	app.Comp = fl.QuantizeInt8{}
	if s := SpecFromWorkload(spec.ID, app); s.Compressor != "int8" {
		t.Fatal("int8 not mapped")
	}
	app.Comp = fl.NoCompression{}
	if s := SpecFromWorkload(spec.ID, app); s.Compressor != "" {
		t.Fatal("none not mapped")
	}
}

func TestCompressorResolution(t *testing.T) {
	if _, b := (AppSpec{Compressor: "int8"}).compressor().Apply(make([]float64, 10)); b >= 80 {
		t.Fatal("int8 resolution broken")
	}
	if _, b := (AppSpec{}).compressor().Apply(make([]float64, 10)); b != 80 {
		t.Fatal("default should be dense")
	}
	// topk without budget gets a default.
	c := (AppSpec{Compressor: "topk"}).compressor()
	if tk, ok := c.(fl.TopK); !ok || tk.K != 64 {
		t.Fatalf("topk default: %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown compressor accepted")
		}
	}()
	(AppSpec{Compressor: "zstd"}).compressor()
}

func TestParticipatesFractionAndDeterminism(t *testing.T) {
	app := NewAppID("p", "o")
	hits := 0
	const nodes = 2000
	for i := 0; i < nodes; i++ {
		addr := transport.Addr(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i)))
		got := participates(app, addr, 3, 0.5)
		if got != participates(app, addr, 3, 0.5) {
			t.Fatal("participation not deterministic")
		}
		if got {
			hits++
		}
	}
	frac := float64(hits) / nodes
	if frac < 0.42 || frac > 0.58 {
		t.Fatalf("participation fraction %.3f not near 0.5", frac)
	}
	if participates(app, "x", 1, 0) {
		t.Fatal("0 fraction selected someone")
	}
	if !participates(app, "x", 1, 1) {
		t.Fatal("full participation skipped someone")
	}
}

func TestParticipationVariesByRound(t *testing.T) {
	app := NewAppID("q", "o")
	same := 0
	for r := 1; r <= 32; r++ {
		if participates(app, "node-1", r, 0.5) == participates(app, "node-1", r+1, 0.5) {
			same++
		}
	}
	if same == 32 {
		t.Fatal("selection never changes across rounds")
	}
}

func TestGaussianNoiseStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	delta := make([]float64, 20000)
	noisy := GaussianNoise(delta, 0.5, rng)
	mean, varSum := 0.0, 0.0
	for _, v := range noisy {
		mean += v
	}
	mean /= float64(len(noisy))
	for _, v := range noisy {
		varSum += (v - mean) * (v - mean)
	}
	sd := math.Sqrt(varSum / float64(len(noisy)))
	if math.Abs(mean) > 0.02 || math.Abs(sd-0.5) > 0.02 {
		t.Fatalf("noise mean %.4f sd %.4f want 0 / 0.5", mean, sd)
	}
	// The input must not be mutated.
	for _, v := range delta {
		if v != 0 {
			t.Fatal("GaussianNoise mutated its input")
		}
	}
}

func TestMergeUpdatesAssociativeOnPayloads(t *testing.T) {
	u := func(v float64, samples int) updateAgg {
		return updateAgg{Acc: fl.NewAccum(fl.Update{Delta: []float64{v}, Samples: samples}), Bytes: 32}
	}
	// mergeUpdates owns its left operand (the combiner contract), so each
	// association tree gets freshly built operands.
	left := mergeUpdates(mergeUpdates(u(1, 10), u(2, 20)), u(3, 30)).(updateAgg)
	right := mergeUpdates(u(1, 10), mergeUpdates(u(2, 20), u(3, 30))).(updateAgg)
	if math.Abs(left.Acc.WeightedSum[0]-right.Acc.WeightedSum[0]) > 1e-12 {
		t.Fatal("mergeUpdates not associative")
	}
	if left.Acc.Samples != 60 || left.Acc.Count != 3 {
		t.Fatalf("counters: %+v", left.Acc)
	}
	// Wire size after merging is the dense aggregate.
	if left.Bytes != 24+8*1 {
		t.Fatalf("merged bytes %d", left.Bytes)
	}
}

func TestAppSpecWireSizeTracksModel(t *testing.T) {
	small := AppSpec{Name: "a", Sizes: []int{4, 2}, InitParams: make([]float64, 10)}
	big := AppSpec{Name: "a", Sizes: []int{4, 2}, InitParams: make([]float64, 10000)}
	if small.WireSize() >= big.WireSize() {
		t.Fatal("wire size ignores parameters")
	}
}

// TestSemiSyncRoundDeadline runs an app whose spec sets RoundDeadline while
// one worker is dead: rounds keep flowing at the deadline pace instead of
// stalling.
func TestSemiSyncRoundDeadline(t *testing.T) {
	c := testCluster(60, 21)
	app := testApps(1, 21)[0]
	app.MaxRounds = 5
	app.TargetAccuracy = 0.999
	id := NewAppID(app.Name, "cluster")
	spec := SpecFromWorkload(id, app)
	spec.RoundDeadline = 500 * time.Millisecond
	c.apps[id] = &clusterApp{app: app, eval: app.Proto.Clone(), spec: spec, master: -1}
	c.Engines[0].CreateTree(spec)
	c.Net.RunUntilIdle()
	perm := c.rng.Perm(60)
	for i := range app.Shards {
		if err := c.Engines[perm[i]].Subscribe(id, app.Shards[i], false); err != nil {
			t.Fatal(err)
		}
	}
	c.Net.RunUntilIdle()
	// Kill one worker before training starts: a strict-sync app would
	// stall on round 1 forever.
	c.Net.Fail(c.Engines[perm[0]].Self().Addr)
	c.Engines[1].StartTraining(id)
	c.Net.RunUntilIdle()
	prog := c.Progress(id)
	if len(prog.Points) != 5 {
		t.Fatalf("semi-sync app completed %d rounds want 5", len(prog.Points))
	}
	for _, pt := range prog.Points {
		if pt.Participants >= len(app.Shards) {
			t.Fatalf("round %d claims full participation despite a dead worker", pt.Round)
		}
	}
	_ = ids.ID{}
}
