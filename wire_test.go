package totoro

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"

	"totoro/internal/fl"
	"totoro/internal/ring"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

// TestEngineWireRoundTrip gob-encodes every engine-level message type
// registered by RegisterWire — with all fields populated — and checks it
// survives the trip bit-for-bit. The messages travel inside tcpnet frames
// as `any`, so a field silently dropped by gob (unexported, nil-vs-empty
// asymmetry, unregistered concrete type) would only surface as a corrupted
// live deployment; this pins the contract at the codec level.
func TestEngineWireRoundTrip(t *testing.T) {
	RegisterWire()

	spec := AppSpec{
		ID:             NewAppID("wire-app", "test"),
		Name:           "wire-app",
		Sizes:          []int{4, 8, 3},
		InitParams:     []float64{0.25, -1.5, 3.75},
		Cfg:            fl.ClientConfig{LocalEpochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9, ProxMu: 0.01},
		Participation:  0.8,
		TargetAccuracy: 0.92,
		MaxRounds:      12,
		Compressor:     "topk",
		TopK:           5,
		NoiseSigma:     0.001,
		ZoneRestricted: true,
		TreeFanout:     16,
		RoundDeadline:  2 * time.Second,
		Seed:           424242,
	}
	msgs := []any{
		spec,
		announceMsg{Spec: spec},
		startMsg{App: spec.ID},
		roundStart{
			App:           spec.ID,
			Round:         3,
			Sizes:         spec.Sizes,
			Params:        []float64{1, 2, 3},
			Cfg:           spec.Cfg,
			Participation: 0.5,
			Compressor:    "int8",
			TopK:          7,
			NoiseSigma:    0.002,
			Seed:          7,
		},
		updateAgg{
			Acc:   &fl.Accum{WeightedSum: []float64{0.5, 1.5}, Samples: 40, Count: 4},
			Bytes: 1234,
		},
		replicaMsg{
			Spec:    spec,
			Master:  ring.Contact{ID: spec.ID, Addr: transport.Addr("127.0.0.1:7001")},
			Epoch:   2,
			Round:   5,
			Global:  []float64{9, 8, 7},
			Points:  []workload.AccuracyPoint{{Time: time.Second, Round: 1, Accuracy: 0.4, Participants: 6}},
			Started: true,
			Done:    true,
			Reached: true,
			DoneAt:  90 * time.Second,
		},
	}
	for _, msg := range msgs {
		name := reflect.TypeOf(msg).String()
		var buf bytes.Buffer
		// Encode through an interface field, exactly as tcpnet frames do, so
		// the test fails if a concrete type is missing from RegisterWire.
		type envelope struct{ Msg any }
		if err := gob.NewEncoder(&buf).Encode(envelope{Msg: msg}); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		var out envelope
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(out.Msg, msg) {
			t.Fatalf("%s: round trip mutated the message:\n sent %#v\n got  %#v", name, msg, out.Msg)
		}
	}
}
