package totoro

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"totoro/internal/fl"
	"totoro/internal/ring"
	"totoro/internal/transport"
	"totoro/internal/wire/codec"
	"totoro/internal/workload"
)

// TestEngineWireRoundTrip gob-encodes every engine-level message type
// registered by RegisterWire — with all fields populated — and checks it
// survives the trip bit-for-bit. The messages travel inside tcpnet frames
// as `any`, so a field silently dropped by gob (unexported, nil-vs-empty
// asymmetry, unregistered concrete type) would only surface as a corrupted
// live deployment; this pins the contract at the codec level.
func TestEngineWireRoundTrip(t *testing.T) {
	RegisterWire()

	spec := AppSpec{
		ID:             NewAppID("wire-app", "test"),
		Name:           "wire-app",
		Sizes:          []int{4, 8, 3},
		InitParams:     []float64{0.25, -1.5, 3.75},
		Cfg:            fl.ClientConfig{LocalEpochs: 2, BatchSize: 16, LR: 0.05, Momentum: 0.9, ProxMu: 0.01},
		Participation:  0.8,
		TargetAccuracy: 0.92,
		MaxRounds:      12,
		Compressor:     "topk",
		TopK:           5,
		NoiseSigma:     0.001,
		ZoneRestricted: true,
		TreeFanout:     16,
		RoundDeadline:  2 * time.Second,
		Seed:           424242,
	}
	msgs := []any{
		spec,
		announceMsg{Spec: spec},
		startMsg{App: spec.ID},
		roundStart{
			App:           spec.ID,
			Round:         3,
			Sizes:         spec.Sizes,
			Params:        []float64{1, 2, 3},
			Cfg:           spec.Cfg,
			Participation: 0.5,
			Compressor:    "int8",
			TopK:          7,
			NoiseSigma:    0.002,
			Seed:          7,
		},
		updateAgg{
			Acc:   &fl.Accum{WeightedSum: []float64{0.5, 1.5}, Samples: 40, Count: 4},
			Bytes: 1234,
		},
		replicaMsg{
			Spec:    spec,
			Master:  ring.Contact{ID: spec.ID, Addr: transport.Addr("127.0.0.1:7001")},
			Epoch:   2,
			Round:   5,
			Global:  []float64{9, 8, 7},
			Points:  []workload.AccuracyPoint{{Time: time.Second, Round: 1, Accuracy: 0.4, Participants: 6}},
			Started: true,
			Done:    true,
			Reached: true,
			DoneAt:  90 * time.Second,
		},
	}
	for _, msg := range msgs {
		name := reflect.TypeOf(msg).String()
		var buf bytes.Buffer
		// Encode through an interface field, exactly as tcpnet frames do, so
		// the test fails if a concrete type is missing from RegisterWire.
		type envelope struct{ Msg any }
		if err := gob.NewEncoder(&buf).Encode(envelope{Msg: msg}); err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		var out envelope
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(out.Msg, msg) {
			t.Fatalf("%s: round trip mutated the message:\n sent %#v\n got  %#v", name, msg, out.Msg)
		}
		// The same messages must survive the codec-v2 hot path — via their
		// hand-rolled encoders, not the gob fallback (the tag check below
		// fails if a type silently falls back).
		e := codec.NewEnc()
		e.Value(msg)
		if err := e.Err(); err != nil {
			t.Fatalf("%s: codec encode: %v", name, err)
		}
		if e.Bytes()[0] == codec.TagGob {
			t.Fatalf("%s: fell back to gob; registerCodecs is missing its tag", name)
		}
		d := codec.NewDec(append([]byte(nil), e.Bytes()...))
		got := d.Value()
		e.Free()
		if err := d.Err(); err != nil {
			t.Fatalf("%s: codec decode: %v", name, err)
		}
		if d.Rem() != 0 {
			t.Fatalf("%s: codec left %d trailing bytes", name, d.Rem())
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("%s: codec round trip mutated the message:\n sent %#v\n got  %#v", name, msg, got)
		}
	}
}

// TestWireCodecLossless runs the codec package's randomized certification
// over the full registry — engine-internal tags plus the application tags
// RegisterWire adds — so every registered encoder provably carries every
// exported field. updateAgg's nil-Acc arm is not reachable by randomized
// fill (fillValue always populates pointers), so it is pinned explicitly.
func TestWireCodecLossless(t *testing.T) {
	RegisterWire()
	if err := codec.CertifyLossless(codec.Registered(), rand.New(rand.NewSource(2)), 16); err != nil {
		t.Fatal(err)
	}
	e := codec.NewEnc()
	defer e.Free()
	e.Value(updateAgg{Bytes: 99})
	d := codec.NewDec(e.Bytes())
	if got := d.Value(); d.Err() != nil || !reflect.DeepEqual(got, updateAgg{Bytes: 99}) {
		t.Fatalf("nil-Acc updateAgg round trip: %#v err=%v", got, d.Err())
	}
}
