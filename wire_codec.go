package totoro

import (
	"time"

	"totoro/internal/fl"
	"totoro/internal/wire/codec"
	"totoro/internal/workload"
)

// Codec-v2 registrations for the FL driver's own wire messages. These are
// the hottest application-level payloads in the engine — roundStart ships
// the global model down the tree every round, updateAgg ships the partial
// aggregates up, and replicaMsg replicates master state to the leaf set —
// so they get hand-rolled encoders in the engine's reserved tag range
// instead of riding the gob fallback. RegisterWire installs them together
// with the gob registrations (the fallback must know the same types).
//
// Tags are wire contract: never reuse or renumber.
const (
	tagAppSpec = codec.TagApp + iota
	tagAnnounce
	tagStart
	tagRoundStart
	tagUpdateAgg
	tagReplica
)

func registerCodecs() {
	codec.RegisterCodec(tagAppSpec, AppSpec{},
		func(e *codec.Enc, v any) { encAppSpec(e, v.(AppSpec)) },
		func(d *codec.Dec) any { return decAppSpec(d) })
	codec.RegisterCodec(tagAnnounce, announceMsg{},
		func(e *codec.Enc, v any) { encAppSpec(e, v.(announceMsg).Spec) },
		func(d *codec.Dec) any { return announceMsg{Spec: decAppSpec(d)} })
	codec.RegisterCodec(tagStart, startMsg{},
		func(e *codec.Enc, v any) { e.ID(v.(startMsg).App) },
		func(d *codec.Dec) any { return startMsg{App: d.ID()} })
	codec.RegisterCodec(tagRoundStart, roundStart{},
		func(e *codec.Enc, v any) {
			m := v.(roundStart)
			e.ID(m.App)
			e.Int(m.Round)
			encInts(e, m.Sizes)
			e.Float64s(m.Params)
			encClientConfig(e, m.Cfg)
			e.Float64(m.Participation)
			e.String(m.Compressor)
			e.Int(m.TopK)
			e.Float64(m.NoiseSigma)
			e.Varint(m.Seed)
		},
		func(d *codec.Dec) any {
			return roundStart{
				App: d.ID(), Round: d.Int(), Sizes: decInts(d), Params: d.Float64s(),
				Cfg: decClientConfig(d), Participation: d.Float64(), Compressor: d.String(),
				TopK: d.Int(), NoiseSigma: d.Float64(), Seed: d.Varint(),
			}
		})
	codec.RegisterCodec(tagUpdateAgg, updateAgg{},
		func(e *codec.Enc, v any) {
			m := v.(updateAgg)
			e.Int(m.Bytes)
			e.Bool(m.Acc != nil)
			if m.Acc != nil {
				e.Float64s(m.Acc.WeightedSum)
				e.Int(m.Acc.Samples)
				e.Int(m.Acc.Count)
			}
		},
		func(d *codec.Dec) any {
			m := updateAgg{Bytes: d.Int()}
			if d.Bool() {
				m.Acc = &fl.Accum{WeightedSum: d.Float64s(), Samples: d.Int(), Count: d.Int()}
			}
			return m
		})
	codec.RegisterCodec(tagReplica, replicaMsg{},
		func(e *codec.Enc, v any) { encReplica(e, v.(replicaMsg)) },
		func(d *codec.Dec) any { return decReplica(d) })
	registerWalCodecs()
}

// encReplica/decReplica serialize a full mastership image. Shared between
// the tagReplica network message and the durable WAL records
// (walMaster/walReplica/walSnapshot in durable.go), so a journaled image
// costs exactly what the replicated one does on the wire.
func encReplica(e *codec.Enc, m replicaMsg) {
	encAppSpec(e, m.Spec)
	e.Contact(m.Master)
	e.Int(m.Epoch)
	e.Int(m.Round)
	e.Float64s(m.Global)
	e.Uvarint(uint64(len(m.Points)))
	for _, p := range m.Points {
		e.Varint(int64(p.Time))
		e.Int(p.Round)
		e.Float64(p.Accuracy)
		e.Int(p.Participants)
	}
	e.Bool(m.Started)
	e.Bool(m.Done)
	e.Bool(m.Reached)
	e.Varint(int64(m.DoneAt))
}

func decReplica(d *codec.Dec) replicaMsg {
	m := replicaMsg{
		Spec: decAppSpec(d), Master: d.Contact(), Epoch: d.Int(), Round: d.Int(),
		Global: d.Float64s(),
	}
	if n := d.SliceLen(12); n > 0 {
		m.Points = make([]workload.AccuracyPoint, n)
		for i := range m.Points {
			m.Points[i] = workload.AccuracyPoint{
				Time: time.Duration(d.Varint()), Round: d.Int(),
				Accuracy: d.Float64(), Participants: d.Int(),
			}
		}
	}
	m.Started = d.Bool()
	m.Done = d.Bool()
	m.Reached = d.Bool()
	m.DoneAt = time.Duration(d.Varint())
	return m
}

func encAppSpec(e *codec.Enc, s AppSpec) {
	e.ID(s.ID)
	e.String(s.Name)
	encInts(e, s.Sizes)
	e.Float64s(s.InitParams)
	encClientConfig(e, s.Cfg)
	e.Float64(s.Participation)
	e.Float64(s.TargetAccuracy)
	e.Int(s.MaxRounds)
	e.String(s.Compressor)
	e.Int(s.TopK)
	e.Float64(s.NoiseSigma)
	e.Bool(s.ZoneRestricted)
	e.Int(s.TreeFanout)
	e.Varint(int64(s.RoundDeadline))
	e.Int(s.MinParticipants)
	e.Varint(s.Seed)
}

func decAppSpec(d *codec.Dec) AppSpec {
	return AppSpec{
		ID: d.ID(), Name: d.String(), Sizes: decInts(d), InitParams: d.Float64s(),
		Cfg: decClientConfig(d), Participation: d.Float64(), TargetAccuracy: d.Float64(),
		MaxRounds: d.Int(), Compressor: d.String(), TopK: d.Int(), NoiseSigma: d.Float64(),
		ZoneRestricted: d.Bool(), TreeFanout: d.Int(), RoundDeadline: time.Duration(d.Varint()),
		MinParticipants: d.Int(), Seed: d.Varint(),
	}
}

func encClientConfig(e *codec.Enc, c fl.ClientConfig) {
	e.Int(c.LocalEpochs)
	e.Int(c.BatchSize)
	e.Float64(c.LR)
	e.Float64(c.Momentum)
	e.Float64(c.ProxMu)
}

func decClientConfig(d *codec.Dec) fl.ClientConfig {
	return fl.ClientConfig{
		LocalEpochs: d.Int(), BatchSize: d.Int(), LR: d.Float64(),
		Momentum: d.Float64(), ProxMu: d.Float64(),
	}
}

func encInts(e *codec.Enc, v []int) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Varint(int64(x))
	}
}

func decInts(d *codec.Dec) []int {
	n := d.SliceLen(1)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}
