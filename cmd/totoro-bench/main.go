// totoro-bench regenerates the tables and figures of the paper's
// evaluation (§7). Every experiment is deterministic for a given seed.
//
// Usage:
//
//	totoro-bench -exp all            # everything (minutes)
//	totoro-bench -exp table3 -short  # one experiment, reduced scale
//	totoro-bench -list               # list experiment ids
//
// Experiment ids map to the paper via DESIGN.md §3; measured-vs-paper
// numbers are recorded in EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"totoro/internal/experiments"
)

var experimentsOrder = []string{
	"fig5a", "fig5b", "fig5c", "fig5d",
	"fig6ab", "fig6c", "fig7",
	"table3", "fig10", "fig11", "fig12", "fig13",
	"ablations", "wire", "wal",
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	short := flag.Bool("short", false, "reduced-scale run")
	seed := flag.Int64("seed", 20240422, "experiment seed")
	list := flag.Bool("list", false, "list experiment ids")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experimentsOrder, "\n"))
		return
	}
	o := experiments.Options{Seed: *seed, Short: *short}
	ids := experimentsOrder
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		if !run(id, o) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func run(id string, o experiments.Options) bool {
	switch id {
	case "fig5a":
		fmt.Println("=== Fig 5a: edge zones from distributed binning over the EUA population ===")
		for _, r := range experiments.Fig5aZones(o) {
			fmt.Printf("zone %2d  members %6d  diameter %8.1fms\n",
				r.Zone, r.Members, float64(r.Diameter)/1e6)
		}
	case "fig5b":
		fmt.Println("=== Fig 5b: masters per node, 500 trees over 1000 nodes ===")
		res := experiments.Fig5bMasterDistribution(o)
		for _, r := range res.Rows {
			fmt.Printf("masters=%d  nodes=%4d\n", r.MastersPerNode, r.Nodes)
		}
		fmt.Printf("fraction of nodes rooting <=3 trees: %.4f (paper: 0.995)\n", res.FracAtMost3)
		fmt.Printf("max masters on any node: %d\n", res.MaxMasters)
	case "fig5c":
		fmt.Println("=== Fig 5c: masters scale with per-zone workload ===")
		fmt.Printf("%-5s %6s %5s %8s %6s\n", "zone", "nodes", "apps", "masters@", "max/node")
		for _, r := range experiments.Fig5cMastersPerZone(o) {
			fmt.Printf("%-5d %6d %5d %8d %6d\n",
				r.Zone, r.Nodes, r.Apps, r.DistinctMasterNodes, r.MaxMastersPerNode)
		}
	case "fig5d":
		fmt.Println("=== Fig 5d: per-level branch balance of 17 trees (fanout 8) ===")
		rows := experiments.Fig5dTreeBalance(o)
		cur := -1
		for _, r := range rows {
			if r.Tree != cur {
				cur = r.Tree
				fmt.Printf("\ntree %2d:", r.Tree)
			}
			fmt.Printf("  L%d=%d", r.Level, r.Nodes)
		}
		fmt.Println()
	case "fig6ab":
		fmt.Println("=== Fig 6a/6b: dissemination & aggregation time vs tree size (fanout 16) ===")
		fmt.Printf("%8s %6s %16s %15s\n", "members", "depth", "disseminate(ms)", "aggregate(ms)")
		for _, r := range experiments.Fig6Scale(o, 4) {
			fmt.Printf("%8d %6d %16.1f %15.1f\n",
				r.Members, r.Depth, r.DisseminationMs, r.AggregationMs)
		}
	case "fig6c":
		fmt.Println("=== Fig 6c: dissemination time by tree fanout ===")
		for _, r := range experiments.Fig6cFanout(o) {
			fmt.Printf("fanout %2d  depth %d  dissemination %.1fms\n",
				r.Fanout, r.Depth, r.DisseminationMs)
		}
	case "fig7":
		fmt.Println("=== Fig 7: per-node traffic vs number of dataflow trees ===")
		fmt.Printf("%6s %14s %14s %9s %9s\n", "trees", "TCP B/node", "UDP B/node", "TCP ratio", "UDP ratio")
		for _, r := range experiments.Fig7Traffic(o) {
			fmt.Printf("%6d %14.0f %14.0f %9.2f %9.2f\n",
				r.Trees, r.TCPBytesPerNode, r.UDPBytesPerNode, r.RatioTCP, r.RatioUDP)
		}
	case "table3":
		fmt.Println("=== Table 3: time-to-accuracy speedups vs OpenFL / FedScale ===")
		res := experiments.Table3(o)
		fmt.Printf("%-8s %5s %7s %11s %11s %12s %9s %9s\n",
			"task", "apps", "fanout", "totoro(s)", "openfl(s)", "fedscale(s)", "xOpenFL", "xFedScale")
		for _, r := range res.Rows {
			fmt.Printf("%-8s %5d %7d %11.1f %11.1f %12.1f %8.1fx %8.1fx\n",
				r.Task, r.Apps, r.Fanout, r.TotoroSec, r.OpenFLSec, r.FedScaleSec,
				r.SpeedupOpenFL, r.SpeedupFedScale)
		}
		fmt.Println("\nFig 8/9 accuracy-over-time curve endpoints:")
		for key, curve := range res.Curves {
			if len(curve) == 0 {
				continue
			}
			last := curve[len(curve)-1]
			fmt.Printf("  %-22s points=%3d final mean-acc=%.3f at %.1fs\n",
				key, len(curve), last.MeanAcc, last.Sec)
		}
	case "fig10":
		fmt.Println("=== Fig 10: regret comparison of path-planning policies ===")
		res := experiments.Fig10Regret(o)
		for _, name := range []string{"optimal", "totoro", "next-hop", "end-to-end"} {
			c := res.Curves[name]
			fmt.Printf("%-12s regret@K/4=%8.1f  @K/2=%8.1f  @K=%8.1f\n",
				name, c[len(c)/4], c[len(c)/2], c[len(c)-1])
		}
	case "fig11":
		fmt.Println("=== Fig 11: path-selection frequencies (rank 0 = optimal path) ===")
		for _, g := range experiments.Fig11PathFrequencies(o) {
			fmt.Printf("%-12s best-path rate per window:", g.Policy)
			for _, row := range g.Grid {
				fmt.Printf(" %.2f", row[0])
			}
			fmt.Println()
		}
	case "fig12":
		fmt.Println("=== Fig 12: recovery time with 5% simultaneous failures per tree ===")
		for _, r := range experiments.Fig12Recovery(o) {
			fmt.Printf("trees %3d  failed %3d  recovery %8.1fms  repair-joins %4d\n",
				r.Trees, r.FailedNodes, r.RecoveryMs, r.RepairJoins)
		}
	case "fig13":
		fmt.Println("=== Fig 13: CPU and memory overhead, Totoro vs OpenFL-like ===")
		for _, r := range experiments.Fig13Overhead(o) {
			fmt.Printf("%-8s %-4s cpu %7.3fs  alloc %8.2fMB\n", r.System, r.Phase, r.CPUSec, r.AllocMB)
		}
	case "ablations":
		fmt.Println("=== Ablation: in-network aggregation vs direct-to-root uploads ===")
		for _, r := range experiments.AblationInNetworkAggregation(o) {
			fmt.Printf("members %4d  root-in tree %8dB direct %9dB  time tree %7.1fms direct %7.1fms\n",
				r.Members, r.RootBytesInTree, r.RootBytesInDirect, r.TreeMs, r.DirectMs)
		}
		fmt.Println("\n=== Ablation: multi-ring administrative isolation ===")
		for _, r := range experiments.AblationMultiRing(o) {
			fmt.Printf("%-11s cross-zone %8dB intra-zone %9dB  cross share %.3f\n",
				r.Scheme, r.CrossZoneBytes, r.IntraZoneBytes, r.CrossZoneShare)
		}
		fmt.Println("\n=== Ablation: adaptive bandit relay vs greedy next-hop (distributed §5) ===")
		for _, r := range experiments.AblationAdaptiveRelay(o) {
			fmt.Println(r.String())
		}
		fmt.Println("\n=== Ablation: FedAvg vs FedProx under non-IID skew ===")
		for _, r := range experiments.AblationFedProx(o) {
			fmt.Printf("alpha %5.2f  fedavg %.3f  fedprox %.3f\n", r.Alpha, r.FedAvgAcc, r.FedProxAcc)
		}
	case "wire":
		fmt.Println("=== Wire format v2: codec vs gob (microbench, live TCP traffic, accuracy cost) ===")
		rep := experiments.WireReport{
			Bench:       experiments.WireMicrobench(o),
			Compression: experiments.WireCompressionAccuracy(o),
		}
		traffic, err := experiments.WireTrafficTCP(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wire traffic run failed: %v\n", err)
			os.Exit(1)
		}
		rep.Traffic = traffic
		fmt.Printf("%-18s %-10s %12s %10s %10s %8s\n", "op", "wire", "ns/op", "MB/s", "B/op", "allocs")
		for _, r := range rep.Bench {
			fmt.Printf("%-18s %-10s %12.1f %10.1f %10d %8d\n",
				r.Op, r.Wire, r.NsPerOp, r.MBPerSec, r.BytesPerOp, r.AllocsPerOp)
		}
		fmt.Println("\nlive tcpnet traffic (identical message mix, net.* counter window):")
		for _, r := range rep.Traffic {
			fmt.Printf("  %-4s msgs=%4d bytes=%9d  bytes/msg=%9.1f  decode_errors=%d\n",
				r.Wire, r.Msgs, r.Bytes, r.BytesPerMsg, r.DecodeErrors)
		}
		fmt.Println("\ncompression accuracy cost (same workload, same seeds):")
		for _, r := range rep.Compression {
			fmt.Printf("  %-10s final-acc=%.3f  update=%6dB of %6dB dense  saving=%5.1f%%\n",
				r.Compressor, r.FinalAcc, r.UpdateBytes, r.DenseBytes, 100*r.Saving)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal wire report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_wire.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write BENCH_wire.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\nwrote BENCH_wire.json")
	case "wal":
		fmt.Println("=== Durable store: WAL append cost and cold-recovery time ===")
		rep := experiments.WALReport{Append: experiments.WALAppendBench(o)}
		recovery, err := experiments.WALColdRecovery(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wal recovery run failed: %v\n", err)
			os.Exit(1)
		}
		rep.Recovery = recovery
		fmt.Printf("%-24s %-12s %4s %12s %12s %10s %10s %8s\n",
			"op", "mode", "par", "ns/op", "appends/s", "MB/s", "B/op", "allocs")
		for _, r := range rep.Append {
			mode := "no-sync"
			if r.Sync {
				mode = "fsync"
				if r.Batched {
					mode = "fsync-batch"
				}
			}
			fmt.Printf("%-24s %-12s %4d %12.1f %12.0f %10.1f %10d %8d\n",
				r.Op, mode, r.Par, r.NsPerOp, r.AppendsPerS, r.MBPerSec, r.BytesPerOp, r.AllocsPerOp)
		}
		fmt.Println("\ncold recovery (snapshot + journal tail replay on boot):")
		for _, r := range rep.Recovery {
			fmt.Printf("  tail=%6d records  wal=%9dB  replayed=%6d  recovery=%8.2fms\n",
				r.TailRecords, r.WALBytes, r.Replayed, r.RecoveryMs)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "marshal wal report: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile("BENCH_wal.json", append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write BENCH_wal.json: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\nwrote BENCH_wal.json")
	default:
		return false
	}
	return true
}
