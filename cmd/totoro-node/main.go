// totoro-node runs one live Totoro engine over real TCP — the same
// protocol stack the simulator drives, as an actual networked process.
//
// Start a bootstrap node, then join more nodes to it; every node
// subscribes to a demo topic and, if -publish is given, broadcasts a
// message down the application's dataflow tree once the overlay settles.
//
//	# terminal 1
//	totoro-node -listen 127.0.0.1:7001
//	# terminal 2..n
//	totoro-node -listen 127.0.0.1:7002 -bootstrap 127.0.0.1:7001
//	# any terminal
//	totoro-node -listen 127.0.0.1:7009 -bootstrap 127.0.0.1:7001 \
//	    -publish "model v1 is ready"
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	totoro "totoro"
	"totoro/internal/ids"
	"totoro/internal/obs"
	"totoro/internal/ring"
	"totoro/internal/store"
	"totoro/internal/transport"
	"totoro/internal/transport/tcpnet"
	"totoro/internal/wire"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		bootstrap = flag.String("bootstrap", "", "address of any overlay member (empty = first node)")
		topic     = flag.String("topic", "demo-app", "application topic to subscribe to")
		publish   = flag.String("publish", "", "optional message to broadcast after joining")
		agg       = flag.Int("aggregate", 0, "optional value to contribute to aggregation round 1")
		metrics   = flag.String("metrics", "", "HTTP address serving /metrics, /metrics/text, /metrics/prom, /metrics/trace (empty = off)")
		gobWire   = flag.Bool("gob-wire", false, "send with the legacy gob wire format instead of wire v2 (reads auto-detect either, so mixed fleets interoperate)")
		dataDir   = flag.String("data-dir", "", "directory for the durable store (WAL + snapshots); the node recovers its identity and roles from it on boot (empty = in-memory only)")
		walSync   = flag.Bool("wal-sync", false, "fsync the WAL on every append (durable against power loss, at per-record flush latency)")
		walGroup  = flag.Bool("wal-group-commit", false, "batch concurrent synchronous WAL appends into shared fsyncs (group commit; only meaningful with -wal-sync)")
	)
	flag.Parse()

	totoro.RegisterWire()
	wire.RegisterPayload("")
	wire.RegisterPayload(0)

	var idBytes [16]byte
	if _, err := rand.Read(idBytes[:]); err != nil {
		log.Fatal(err)
	}
	nodeID := ids.FromBytes(idBytes[:])

	// With -data-dir the engine journals to a WAL and, on boot, recovers
	// its ring identity and master/worker roles from the last run. The
	// random nodeID above is only the first-boot fallback; recovery
	// overrides it so the node reclaims its old ring position.
	var st store.Store
	if *dataDir != "" {
		f, err := store.Open(*dataDir, store.FileConfig{Sync: *walSync, GroupCommit: *walGroup})
		if err != nil {
			log.Fatalf("durable store: %v", err)
		}
		st = f
		defer f.Close()
	}

	var engine *totoro.Engine
	node, err := tcpnet.ListenConfig(*listen, tcpnet.Config{GobWire: *gobWire}, func(e transport.Env) transport.Handler {
		engine = totoro.NewEngine(e, ring.Contact{ID: nodeID, Addr: e.Self()},
			totoro.Options{Ring: ring.Config{B: 4}, Store: st})
		engine.SetCallbacks(totoro.Callbacks{
			OnBroadcast: func(app totoro.AppID, obj any, depth int, sub bool) {
				log.Printf("broadcast on %s… (depth %d): %v", app.Short(), depth, obj)
			},
			Combine: func(app totoro.AppID, a, b any) any {
				ai, aok := a.(int)
				bi, bok := b.(int)
				if aok && bok {
					return ai + bi
				}
				return b
			},
			OnAggregate: func(app totoro.AppID, round int, obj any, count int) {
				log.Printf("aggregation round %d complete at root: value=%v from %d contributors",
					round, obj, count)
			},
		})
		return engine
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	recovered := false
	node.Do(func() {
		recovered = engine.Recovered()
		nodeID = engine.Self().ID
	})
	if recovered {
		log.Printf("recovered engine state from %s", *dataDir)
	}
	log.Printf("node %s up, id %s…", node.Addr(), nodeID.Short())

	if *metrics != "" {
		bound, stop, err := obs.StartServer(*metrics, obs.RegistryHandler(node.Metrics()))
		if err != nil {
			log.Fatalf("metrics server: %v", err)
		}
		defer stop()
		log.Printf("telemetry at http://%s/metrics", bound)
	}

	if *bootstrap != "" {
		node.Do(func() { engine.Join(transport.Addr(*bootstrap)) })
		deadline := time.Now().Add(10 * time.Second)
		for {
			joined := false
			node.Do(func() { joined = engine.Ring().Joined() })
			if joined {
				break
			}
			if time.Now().After(deadline) {
				log.Fatal("join timed out")
			}
			time.Sleep(100 * time.Millisecond)
		}
		log.Printf("joined overlay via %s", *bootstrap)
	}
	if recovered {
		// Back on the ring (or running standalone): restart any training
		// rounds the WAL says were in flight when the last run died.
		node.Do(func() { engine.ResumeAfterRestart() })
		log.Printf("resumed recovered roles")
	}

	appID := totoro.NewAppID(*topic, "totoro-node")
	node.Do(func() { engine.SubscribeTopic(appID) })
	log.Printf("subscribed to %q (%s…)", *topic, appID.Short())
	time.Sleep(500 * time.Millisecond)

	if *publish != "" {
		msg := *publish
		node.Do(func() { engine.Broadcast(appID, msg) })
		log.Printf("published %q", msg)
	}
	if *agg != 0 {
		v := *agg
		node.Do(func() { engine.Aggregate(appID, 1, v) })
		log.Printf("contributed %d to aggregation round 1", v)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	fmt.Println("running; ctrl-c to exit")
	<-sig
}
